// Command decoygen generates decoy messages and prints their experiment
// domains, encoded identifiers, and wire bytes — useful for inspecting
// what on-path observers would see, and for feeding external tooling.
//
// Usage:
//
//	decoygen [-zone experiment.domain] [-proto dns|http|tls|all] [-n 3]
//	         [-vp 100.64.0.1] [-dst 77.88.8.8] [-ttl 64] [-hex] [-decode LABEL]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/wire"
)

func main() {
	var (
		zone    = flag.String("zone", "experiment.domain", "experiment zone (wildcarded to honeypots)")
		proto   = flag.String("proto", "all", "decoy protocol: dns, http, tls, or all")
		n       = flag.Int("n", 3, "decoys per protocol")
		vpStr   = flag.String("vp", "100.64.0.1", "vantage point address encoded in identifiers")
		dstStr  = flag.String("dst", "77.88.8.8", "destination address")
		ttl     = flag.Int("ttl", 64, "initial IP TTL encoded in identifiers")
		hexDump = flag.Bool("hex", false, "hex-dump the serialized payloads")
		decode  = flag.String("decode", "", "decode an identifier label instead of generating")
	)
	flag.Parse()

	epoch := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	if *decode != "" {
		codec := identifier.NewCodec(epoch)
		id, err := codec.Decode(*decode)
		if err != nil {
			log.Fatalf("decode: %v", err)
		}
		fmt.Printf("time:  %s\nvp:    %s\ndst:   %s\nttl:   %d\nnonce: %d\n",
			id.Time.Format(time.RFC3339), id.VP, id.Dst, id.TTL, id.Nonce)
		return
	}

	vp, err := wire.ParseAddr(*vpStr)
	if err != nil {
		log.Fatal(err)
	}
	dstAddr, err := wire.ParseAddr(*dstStr)
	if err != nil {
		log.Fatal(err)
	}

	var protos []decoy.Protocol
	switch *proto {
	case "dns":
		protos = []decoy.Protocol{decoy.DNS}
	case "http":
		protos = []decoy.Protocol{decoy.HTTP}
	case "tls":
		protos = []decoy.Protocol{decoy.TLS}
	case "all":
		protos = decoy.Protocols
	default:
		log.Fatalf("unknown protocol %q", *proto)
	}

	gen := decoy.NewGenerator(*zone, epoch)
	now := epoch.Add(time.Hour)
	for _, p := range protos {
		port := map[decoy.Protocol]uint16{decoy.DNS: 53, decoy.HTTP: 80, decoy.TLS: 443}[p]
		for i := 0; i < *n; i++ {
			d, err := gen.Generate(p, now.Add(time.Duration(i)*time.Second), vp,
				wire.Endpoint{Addr: dstAddr, Port: port}, uint8(*ttl))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-4s  %s  ->  %s  (%d bytes)\n", p, d.Domain, d.Dst, len(d.Payload))
			if *hexDump {
				fmt.Println(hex.Dump(d.Payload))
			}
		}
	}
}
