// Command shadowmeterd is the campaign control plane: a long-running
// daemon that accepts measurement campaigns over HTTP/JSON, splits each
// trial plan into worker-leased slices, runs them through the ordinary
// deterministic data plane into per-campaign stores, and serves live
// progress by re-exporting the `-watch` observability plane per
// campaign.
//
//	shadowmeterd [-addr HOST:PORT] [-root DIR] [-workers N]
//	             [-lease DUR] [-reap DUR]
//
// Endpoints:
//
//	GET  /healthz                  liveness
//	GET  /campaigns                queue listing (JSON)
//	POST /campaigns                submit {"seed","trials","scale","slice_size","workers"}
//	GET  /campaigns/{id}           one campaign + slice states (JSON)
//	POST /campaigns/{id}/extend    {"trials": N} grows the plan in place
//	GET  /campaigns/{id}/progress  stream bus (JSON poll / SSE)
//	GET  /campaigns/{id}/campaign  live slice snapshot
//	GET  /campaigns/{id}/metrics   Prometheus text
//
// The queue lives in <root>/state.json (atomic-publish on every
// transition), so restarting the daemon resumes exactly where it
// stopped: done slices stay done, slices leased by the dead process
// return to pending, and their already-persisted trials are served from
// the campaign store on re-run. SIGINT/SIGTERM drains gracefully —
// in-flight slices finish, stores close, the queue checkpoints — then
// the daemon exits 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shadowmeter/internal/sched"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:0", "HTTP listen address (port 0 picks a free port, announced on stderr)")
		root    = flag.String("root", "shadowmeterd-root", "state directory: queue state.json plus one store per campaign")
		workers = flag.Int("workers", 2, "concurrent slice workers")
		lease   = flag.Duration("lease", 10*time.Minute, "worker lease on a slice before it is requeued (0 disables expiry)")
		reap    = flag.Duration("reap", 30*time.Second, "how often expired leases are swept back to pending")
	)
	flag.Parse()

	sc, err := sched.NewScheduler(*root, time.Now, *lease)
	if err != nil {
		log.Fatalf("shadowmeterd: %v", err)
	}
	d, err := sched.NewDaemon(sched.DaemonOptions{
		Sched:   sc,
		Root:    *root,
		Workers: *workers,
		Clock:   time.Now,
		Log:     os.Stderr,
	})
	if err != nil {
		log.Fatalf("shadowmeterd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("shadowmeterd: listen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "shadowmeterd: serving on http://%s (root %s, %d workers)\n", ln.Addr(), *root, *workers)

	d.Start()
	go func() {
		if err := http.Serve(ln, d.Handler()); err != nil {
			// Serve always returns non-nil; after the drain closes the
			// listener this is the normal shutdown path.
			fmt.Fprintf(os.Stderr, "shadowmeterd: http server stopped: %v\n", err)
		}
	}()

	// The scheduler is wall-clock-free by design; the daemon owns the
	// one real ticker that sweeps expired leases back to pending.
	if *reap > 0 && *lease > 0 {
		ticker := time.NewTicker(*reap)
		defer ticker.Stop()
		go func() {
			for range ticker.C {
				n, err := sc.Reap()
				if n > 0 {
					fmt.Fprintf(os.Stderr, "shadowmeterd: requeued %d expired lease(s)\n", n)
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "shadowmeterd: reap: %v\n", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "shadowmeterd: %v: draining (in-flight slices finish, queue persists)\n", s)
	if err := ln.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "shadowmeterd: closing listener: %v\n", err)
	}
	if err := d.Drain(); err != nil {
		log.Fatalf("shadowmeterd: drain: %v", err)
	}
	fmt.Fprintln(os.Stderr, "shadowmeterd: drained, exiting")
}
