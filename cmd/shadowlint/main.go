// Command shadowlint runs the repo-specific determinism analyzers over
// the module. It is built only on the standard library (go/parser,
// go/ast, go/types, go/token) — no external analysis framework.
//
// Usage:
//
//	shadowlint [-json] [-list] [-p N] [packages...]
//
// Package patterns are module-relative ("./...", "internal/wire",
// "./cmd/tracer"); the default is "./...". Analysis is whole-program:
// all packages load through one type-checker, then analyze on -p
// concurrent workers (default GOMAXPROCS); output is byte-identical at
// any -p. Exit status is 1 when any finding is reported, 2 on a load or
// usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"shadowmeter/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic object per line plus a summary line")
	list := flag.Bool("list", false, "list the analyzers and exit")
	workers := flag.Int("p", 0, "per-package analysis workers (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shadowlint [-json] [-list] [-p N] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	loader, err := lint.Open(root)
	if err != nil {
		fail(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fail(err)
	}
	diags, err := lint.Run(loader, paths, analyzers, *workers)
	if err != nil {
		fail(err)
	}
	for _, d := range diags {
		if *jsonOut {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			obj := map[string]any{
				"file": rel, "line": d.Pos.Line, "col": d.Pos.Column,
				"analyzer": d.Analyzer, "message": d.Message,
			}
			if d.Root != "" {
				obj["root"] = d.Root
			}
			enc, err := json.Marshal(obj)
			if err != nil {
				fail(err)
			}
			fmt.Println(string(enc))
		} else {
			fmt.Println(d)
		}
	}
	if *jsonOut {
		enc, err := json.Marshal(map[string]any{
			"packages": len(paths), "analyzers": len(analyzers), "findings": len(diags),
		})
		if err != nil {
			fail(err)
		}
		fmt.Println(string(enc))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("shadowlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
