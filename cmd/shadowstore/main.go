// Command shadowstore inspects and compares durable campaign stores
// written by shadowmeter -out: the longitudinal layer of the
// reproduction, where the paper's days-later replay behaviors become
// measurable across runs.
//
// Usage:
//
//	shadowstore list DIR...                     campaign summaries
//	shadowstore show [-trial N] [-stats] DIR    per-trial headlines, or one full record
//	shadowstore tail [-interval D] DIR          follow a (live) campaign's trial log
//	shadowstore diff [-all] DIR_A DIR_B         headline deltas (Figure 3 ratios, Table 2/3 counts)
//	shadowstore retention [-min-delay D] [-from D] [-to D] DIR...
//	                                            cross-campaign multi-use/delay analysis
//	shadowstore compact DIR                     rewrite the log: newest record per trial, drop dead bytes
//	shadowstore merge DST SRC...                fold shard stores into one fresh campaign
//
// Every command except compact and merge opens campaigns read-only:
// inspecting a live campaign never repairs (or otherwise touches) its
// log under the writer. compact is the one deliberate in-place writer —
// never run it while the campaign's batch runner is live. merge writes
// only its fresh destination; sources are read without ever being
// opened as stores.
//
// The summary commands (show's table, diff, windowed retention) are
// served from the store's columnar headline sidecar, and show -trial
// reads one record through the offset index: on an indexed campaign
// they touch kilobytes, not the event log (verify with show -stats).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	fs2 "io/fs" // fs is the conventional FlagSet name in this file
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"shadowmeter/internal/analysis"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/runstore"
)

func usage() {
	fmt.Fprintf(os.Stderr, `shadowstore — inspect durable shadowmeter campaign stores

  shadowstore list DIR...                     campaign summaries
  shadowstore show [-trial N] [-stats] DIR    per-trial headlines, or one full record
  shadowstore tail [-interval D] DIR          follow a (live) campaign's trial log
  shadowstore diff [-all] DIR_A DIR_B         headline deltas between two campaigns
  shadowstore retention [-min-delay D] [-from D] [-to D] DIR...
                                              cross-campaign multi-use/delay analysis
  shadowstore compact DIR                     rewrite the log: newest record per trial
  shadowstore merge DST SRC...                fold shard stores into one fresh campaign
`)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("shadowstore: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "show":
		err = cmdShow(args)
	case "tail":
		err = cmdTail(args)
	case "diff":
		err = cmdDiff(args)
	case "retention":
		err = cmdRetention(args)
	case "compact":
		err = cmdCompact(args)
	case "merge":
		err = cmdMerge(args)
	case "help", "-h", "-help", "--help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// openCampaign opens one campaign directory read-only.
func openCampaign(dir string) (*runstore.Store, error) {
	return runstore.OpenReadOnly(dir, nil)
}

func cmdList(dirs []string) error {
	if len(dirs) == 0 {
		return fmt.Errorf("list: need at least one campaign directory")
	}
	for _, dir := range dirs {
		st, err := openCampaign(dir)
		if err != nil {
			return err
		}
		man := st.Manifest()
		extra := ""
		if l := man.ShardLabel(); l != "" {
			extra = "  [" + l + "]"
		}
		if st.Stats().TornTailTruncations > 0 {
			extra += "  [torn tail]"
		}
		fmt.Printf("%-30s v%d  scale=%-6s  seeds %d..%d  records %d/%d  config %.12s%s\n",
			dir, man.Version, man.Scale, man.BaseSeed, man.BaseSeed+int64(man.Trials)-1,
			st.Len(), man.Trials, man.ConfigHash, extra)
		if err := st.Close(); err != nil {
			return err
		}
	}
	return nil
}

// printStoreStats emits one machine-greppable stderr line with the
// store's read-side counters next to the log size, so CI can assert the
// indexed paths stay O(record): an indexed `show -trial N` reads the
// sidecars plus one frame, never the whole log.
func printStoreStats(st *runstore.Store, dir string) {
	stats := st.Stats()
	var logSize int64
	if fi, err := os.Stat(runstore.LogPath(dir)); err == nil {
		logSize = fi.Size()
	}
	fmt.Fprintf(os.Stderr, "store stats: bytes_read %d log_size %d index_hits %d index_rebuilds %d records_read %d\n",
		stats.BytesRead, logSize, stats.IndexHits, stats.IndexRebuilds, stats.RecordsRead)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	trial := fs.Int("trial", -1, "dump the full JSON record of one trial instead of the summary table")
	showStats := fs.Bool("stats", false, "print store read counters (bytes_read, index_hits, ...) to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("show: need exactly one campaign directory")
	}
	st, err := openCampaign(fs.Arg(0))
	if err != nil {
		return err
	}
	defer st.Close()
	if *showStats {
		defer printStoreStats(st, fs.Arg(0))
	}

	if *trial >= 0 {
		rec, ok, err := st.Get(*trial)
		if err != nil {
			return fmt.Errorf("show: %w", err)
		}
		if !ok {
			return fmt.Errorf("show: trial %d is not stored in %s", *trial, fs.Arg(0))
		}
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}

	man := st.Manifest()
	prov := ""
	switch {
	case man.ShardCount > 0:
		// The shard's trial window, derived the same way the runner
		// derives it: [i·T/N, (i+1)·T/N).
		from := man.Trials * man.ShardIndex / man.ShardCount
		to := man.Trials * (man.ShardIndex + 1) / man.ShardCount
		prov = fmt.Sprintf("\n  shard %d/%d of the trial plan (trials %d..%d)", man.ShardIndex, man.ShardCount, from, to-1)
	case man.MergedFrom > 0:
		prov = fmt.Sprintf("\n  merged from %d shard stores", man.MergedFrom)
	}
	fmt.Printf("campaign %s\n  store version %d, scale %s, config %s%s\n  seeds %d..%d, records %d/%d\n\n",
		fs.Arg(0), man.Version, man.Scale, man.ConfigHash, prov,
		man.BaseSeed, man.BaseSeed+int64(man.Trials)-1, st.Len(), man.Trials)
	fmt.Printf("%5s %8s %12s %10s %12s %10s %8s\n",
		"trial", "seed", "sent_decoys", "captures", "unsolicited", "observers", "events")
	// The summary table is served from the columnar headline sidecar:
	// no trial frame is ever decoded.
	for _, row := range st.Headlines() {
		fmt.Printf("%5d %8d %12.0f %10.0f %12.0f %10.0f %8d\n",
			row.Trial, row.Seed,
			row.Headline["sent_decoys"], row.Headline["captures"],
			row.Headline["unsolicited"], row.Headline["observer_addrs"], row.Events)
	}
	return nil
}

// cmdCompact is the one shadowstore command that writes: it opens the
// campaign writable and rewrites its log keeping the newest valid
// record per trial, dropping torn bytes, superseded duplicates, and
// foreign-config frames. Never run it under a live batch runner.
func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("compact: need exactly one campaign directory")
	}
	dir := fs.Arg(0)
	st, err := runstore.Open(dir, nil)
	if err != nil {
		return err
	}
	cs, err := st.Compact()
	if err != nil {
		st.Close() //shadowlint:ignore droppederr compaction error is the primary failure
		return fmt.Errorf("compact: %w", err)
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Printf("compacted %s: kept %d records, dropped %d frames, %d -> %d bytes (reclaimed %d)\n",
		dir, cs.Kept, cs.DroppedFrames, cs.BytesBefore, cs.BytesAfter, cs.Reclaimed)
	return nil
}

// cmdMerge folds shard stores into one fresh campaign directory — the
// fan-in of the `shadowmeter -shard i/N` data plane. It writes only the
// destination; sources are read as raw logs (never opened as stores),
// so merging never mutates a shard, even one still being written.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("merge: need a destination and at least one source: merge DST SRC...")
	}
	dst, srcs := fs.Arg(0), fs.Args()[1:]
	man, ms, err := runstore.Merge(dst, srcs, nil)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	fmt.Printf("merged %d shard store(s) into %s: %d/%d trials, %d bytes (superseded %d, dropped %d, torn bytes %d)\n",
		ms.Sources, dst, ms.Records, man.Trials, ms.Bytes, ms.Superseded, ms.Dropped, ms.TornBytes)
	return nil
}

// cmdTail follows a campaign's trial log as its batch runner appends to
// it: every record already stored is printed immediately, then the log
// is polled and each newly completed trial printed as it lands, until
// the campaign holds all the trials its manifest promises.
//
// The follower is strictly read-only — it never opens a Store, so it
// can never trigger the writable-mode torn-tail repair under a live
// writer. A half-appended frame at the tail simply fails to decode on
// this poll and decodes on a later one; a writer restart that truncates
// a torn tail only removes bytes the follower never accepted as valid.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval for new records")
	follow := fs.Bool("follow", true, "poll until the campaign completes; -follow=false prints the stored trials and exits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("tail: need exactly one campaign directory")
	}
	dir := fs.Arg(0)
	man, err := runstore.ReadManifest(dir)
	if err != nil {
		return err
	}
	if !runstore.VersionSupported(man.Version) {
		return fmt.Errorf("tail: campaign %s has store version %d; this build speaks versions up to %d", dir, man.Version, runstore.StoreVersion)
	}
	fmt.Printf("tailing campaign %s\n  scale %s, config %.12s, seeds %d..%d, %d trials expected\n\n",
		dir, man.Scale, man.ConfigHash, man.BaseSeed, man.BaseSeed+int64(man.Trials)-1, man.Trials)
	fmt.Printf("%5s %8s %12s %10s %12s %10s %8s\n",
		"trial", "seed", "sent_decoys", "captures", "unsolicited", "observers", "events")

	printed := 0
	for {
		data, err := os.ReadFile(runstore.LogPath(dir))
		if err != nil && !errors.Is(err, fs2.ErrNotExist) {
			return fmt.Errorf("tail: reading trial log: %w", err)
		}
		recs, _ := runstore.DecodeRecords(data)
		// Valid frames are append-only (repair only ever removes the torn,
		// never-decoded tail), so everything past `printed` is new.
		for _, rec := range recs[min(printed, len(recs)):] {
			fmt.Printf("%5d %8d %12.0f %10.0f %12.0f %10.0f %8d\n",
				rec.Trial, rec.Seed,
				rec.Headline["sent_decoys"], rec.Headline["captures"],
				rec.Headline["unsolicited"], rec.Headline["observer_addrs"], len(rec.Events))
		}
		printed = max(printed, len(recs))
		if printed >= man.Trials {
			fmt.Printf("\ncampaign complete: %d/%d trials stored\n", printed, man.Trials)
			return nil
		}
		if !*follow {
			fmt.Printf("\ncampaign in progress: %d/%d trials stored\n", printed, man.Trials)
			return nil
		}
		time.Sleep(*interval)
	}
}

// means folds headline rows into one value per headline key. Rows come
// from the columnar sidecar, so diffing two campaigns reads kilobytes
// of summaries, never the event logs.
func means(rows []runstore.HeadlineRow) map[string]float64 {
	sums := make(map[string]float64)
	for _, row := range rows {
		for k, v := range row.Headline {
			sums[k] += v
		}
	}
	// Keys missing from some trials contribute 0, exactly like the batch
	// runner's aggregate.
	for k := range sums {
		sums[k] /= float64(len(rows))
	}
	return sums
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	all := fs.Bool("all", false, "print unchanged headline keys too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: need exactly two campaign directories")
	}
	dirA, dirB := fs.Arg(0), fs.Arg(1)
	stA, err := openCampaign(dirA)
	if err != nil {
		return err
	}
	defer stA.Close()
	stB, err := openCampaign(dirB)
	if err != nil {
		return err
	}
	defer stB.Close()

	manA, manB := stA.Manifest(), stB.Manifest()
	fmt.Printf("A: %s  (seeds %d.., %d records, config %.12s)\n", dirA, manA.BaseSeed, stA.Len(), manA.ConfigHash)
	fmt.Printf("B: %s  (seeds %d.., %d records, config %.12s)\n", dirB, manB.BaseSeed, stB.Len(), manB.ConfigHash)
	if manA.ConfigHash != manB.ConfigHash {
		fmt.Println("note: campaigns ran different configurations; deltas mix config and seed effects")
	}
	if stA.Len() == 0 || stB.Len() == 0 {
		return fmt.Errorf("diff: both campaigns need at least one stored trial")
	}

	mA, mB := means(stA.Headlines()), means(stB.Headlines())
	keys := make(map[string]bool, len(mA)+len(mB))
	for k := range mA {
		keys[k] = true
	}
	for k := range mB {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	// Campaign totals first, then the per-artifact families — the same
	// reading order as the paper (Figure 3, then Tables 2 and 3).
	rank := func(k string) int {
		switch {
		case !strings.Contains(k, "/"):
			return 0
		case strings.HasPrefix(k, "figure3_ratio/"):
			return 1
		case strings.HasPrefix(k, "dest_ratio/"):
			return 2
		case strings.HasPrefix(k, "table2_located/"):
			return 3
		case strings.HasPrefix(k, "table3_observers/"):
			return 4
		default:
			return 5
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return rank(sorted[i]) < rank(sorted[j]) })

	fmt.Printf("\n%-44s %14s %14s %14s\n", "headline (mean per trial)", "A", "B", "delta")
	changed := 0
	for _, k := range sorted {
		a, b := mA[k], mB[k]
		if a == b && !*all {
			continue
		}
		if a != b {
			changed++
		}
		fmt.Printf("%-44s %14.6g %14.6g %+14.6g\n", k, a, b, b-a)
	}
	fmt.Printf("\n%d of %d headline keys differ\n", changed, len(sorted))
	return nil
}

// protoFromName maps a stored protocol name back to its decoy.Protocol.
func protoFromName(name string) (decoy.Protocol, bool) {
	for _, p := range decoy.Protocols {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// eventsOf reconstructs the minimal correlate.Unsolicited slice the
// retention analyses consume from a campaign's stored event records,
// restricted to replay delays inside [from, to] (to <= 0 means
// unbounded above). Trials whose delay range cannot intersect the
// window are pruned from the columnar sidecar without reading their
// log frames; events whose protocol names this build does not know
// (e.g. a store written by a newer build) are counted, not dropped
// silently.
func eventsOf(st *runstore.Store, from, to time.Duration) (events []correlate.Unsolicited, skipped int, err error) {
	fromNS, toNS := int64(from), int64(to)
	for _, row := range st.Headlines() {
		if !row.OverlapsDelayWindow(fromNS, toNS) {
			continue
		}
		rec, ok, err := st.Get(row.Trial)
		if err != nil {
			return nil, skipped, err
		}
		if !ok {
			continue
		}
		for _, ev := range rec.Events {
			if ev.DelayNS < fromNS || (toNS > 0 && ev.DelayNS > toNS) {
				continue
			}
			sp, ok := protoFromName(ev.SentProto)
			if !ok {
				skipped++
				continue
			}
			cp, ok := protoFromName(ev.CaptureProto)
			if !ok {
				skipped++
				continue
			}
			events = append(events, correlate.Unsolicited{
				Sent:    &correlate.Sent{Label: ev.Label, Protocol: sp, DstName: ev.DstName},
				Capture: honeypot.Capture{Protocol: cp},
				Delay:   time.Duration(ev.DelayNS),
			})
		}
	}
	return events, skipped, nil
}

func printRetention(label string, events []correlate.Unsolicited, minDelay time.Duration) {
	mu := analysis.MultiUseStats(events, minDelay)
	fmt.Printf("%s\n  unsolicited events: %d\n  decoys with events after %s: %d (>3 events: %.1f%%, >10: %.1f%%)\n",
		label, len(events), minDelay, mu.DecoysWithLateEvents,
		100*mu.FractionOver3, 100*mu.FractionOver10)
	day := (24 * time.Hour).Seconds()
	for _, p := range decoy.Protocols {
		cdf := analysis.DelayCDF(events, p, nil)
		if cdf.N() == 0 {
			continue
		}
		fmt.Printf("  %-5s delay CDF (n=%d): <=1min %.1f%%  <=1h %.1f%%  <=1d %.1f%%  <=10d %.1f%%\n",
			p, cdf.N(), 100*cdf.At(60), 100*cdf.At(3600), 100*cdf.At(day), 100*cdf.At(10*day))
	}
}

func cmdRetention(args []string) error {
	fs := flag.NewFlagSet("retention", flag.ExitOnError)
	minDelay := fs.Duration("min-delay", time.Hour, "multi-use threshold: count decoys still replayed after this delay (paper: 1h)")
	from := fs.Duration("from", 0, "only analyze events with replay delay >= this (delay-window slice, e.g. 1h)")
	to := fs.Duration("to", 0, "only analyze events with replay delay <= this (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("retention: need at least one campaign directory")
	}
	if *from < 0 || *to < 0 {
		return fmt.Errorf("retention: -from and -to must be non-negative durations")
	}
	if *to > 0 && *from > *to {
		return fmt.Errorf("retention: -from %s is after -to %s", *from, *to)
	}
	if *from > 0 || *to > 0 {
		fmt.Printf("delay window: %s .. %s\n\n", *from, windowTop(*to))
	}
	var combined []correlate.Unsolicited
	totalSkipped := 0
	for _, dir := range fs.Args() {
		st, err := openCampaign(dir)
		if err != nil {
			return err
		}
		events, skipped, err := eventsOf(st, *from, *to)
		if err != nil {
			st.Close() //shadowlint:ignore droppederr read error is the primary failure
			return fmt.Errorf("retention: %s: %w", dir, err)
		}
		if err := st.Close(); err != nil {
			return err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "shadowstore: warning: %s: skipped %d events with unknown protocol names (store written by a different build?)\n", dir, skipped)
			totalSkipped += skipped
		}
		printRetention("campaign "+dir, events, *minDelay)
		combined = append(combined, events...)
	}
	if fs.NArg() > 1 {
		fmt.Println()
		printRetention(fmt.Sprintf("combined (%d campaigns)", fs.NArg()), combined, *minDelay)
		if totalSkipped > 0 {
			fmt.Fprintf(os.Stderr, "shadowstore: warning: %d events skipped in total; combined stats undercount\n", totalSkipped)
		}
	}
	return nil
}

// windowTop renders the -to bound, where 0 means unbounded.
func windowTop(to time.Duration) string {
	if to <= 0 {
		return "∞"
	}
	return to.String()
}
