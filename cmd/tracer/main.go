// Command tracer demonstrates Phase II in isolation: it builds the
// simulated world, finds one problematic path via a burst of Phase I-style
// decoys, then runs the hop-by-hop TTL sweep and prints each hop, the
// ICMP-revealed router, and where the observer was located.
//
// Usage:
//
//	tracer [-seed N] [-proto dns|http|tls] [-dst Yandex]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shadowmeter/internal/core"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/traceroute"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "world seed")
		protoStr = flag.String("proto", "dns", "decoy protocol to trace: dns, http or tls")
		dstName  = flag.String("dst", "", "destination name filter (e.g. Yandex, 114DNS); empty = first problematic path")
	)
	flag.Parse()

	var proto decoy.Protocol
	switch *protoStr {
	case "dns":
		proto = decoy.DNS
	case "http":
		proto = decoy.HTTP
	case "tls":
		proto = decoy.TLS
	default:
		log.Fatalf("unknown protocol %q", *protoStr)
	}

	cfg := core.Config{Seed: *seed, VPsPerGlobalProvider: 6, VPsPerCNProvider: 4, WebSites: 60, DNSRounds: 2}
	e := core.NewExperiment(cfg)
	e.ScreenPairResolvers()
	fmt.Fprintln(os.Stderr, "running phase I to find problematic paths...")
	e.RunPhaseI()

	// Pick a problematic path for the requested protocol.
	var target *correlate.Unsolicited
	for i := range e.EventsPhaseI {
		u := &e.EventsPhaseI[i]
		if u.Sent.Protocol != proto {
			continue
		}
		if *dstName != "" && u.Sent.DstName != *dstName {
			continue
		}
		target = u
		break
	}
	if target == nil {
		log.Fatalf("no problematic %s path found (try another -dst or seed)", proto)
	}
	fmt.Printf("problematic path: VP %s -> %s (%s), combination %s, delay %s\n\n",
		target.Sent.VP, target.Sent.Dst, target.Sent.DstName, target.Combination, target.Delay)

	// Run Phase II on every problematic path (the engine needs honeypot
	// evidence from the sweeps themselves).
	e.RunPhaseII()

	// Find the analyzed sweep for our path.
	var res *traceroute.Result
	for i := range e.SweepResults {
		r := &e.SweepResults[i]
		if r.Sweep.VP.Addr == target.Sent.VP && r.Sweep.Dst.Addr == target.Sent.Dst.Addr && r.Sweep.Proto == proto {
			res = r
			break
		}
	}
	if res == nil {
		log.Fatal("no sweep result for the selected path (sweep cap hit?)")
	}

	fmt.Printf("hop-by-hop sweep (%d probes, destination %d hops away):\n", len(res.Sweep.Probes), res.DestDistance)
	for hop := 1; hop <= res.DestDistance && hop <= 24; hop++ {
		addr := res.Sweep.HopAddr(hop)
		line := fmt.Sprintf("  hop %2d  ", hop)
		if addr.IsZero() {
			line += "* (no ICMP response)"
		} else {
			line += addr.String()
			if as := e.World.Topo.ASOf(addr); as != nil {
				line += "  " + as.String()
			}
		}
		if hop == res.ObserverHop && !res.AtDestination {
			line += "   <== OBSERVER (first leaking TTL)"
		}
		fmt.Println(line)
	}
	switch {
	case res.ObserverHop == 0:
		fmt.Println("\nno leak during the sweep — observation not reproducible on this path")
	case res.AtDestination:
		fmt.Printf("\nobserver located AT THE DESTINATION (normalized position 10)\n")
	default:
		fmt.Printf("\nobserver located %d hops from the VP (normalized position %d), router %s\n",
			res.ObserverHop, res.NormalizedHop, res.ObserverAddr)
	}
}
