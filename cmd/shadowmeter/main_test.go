package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins the flag-interaction contract: exactly one
// document on stdout per mode, no flag silently ignored, no campaign
// without a store.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    options
		wantErr string // substring of the error, "" = valid
	}{
		{"single run defaults", options{trials: 1}, ""},
		{"single run with json-stats and metrics", options{trials: 1, jsonStats: true, metrics: true}, ""},
		{"plain batch", options{trials: 4}, ""},
		{"batch with merged telemetry", options{trials: 4, metricsJSON: true}, ""},
		{"campaign", options{trials: 4, out: "camp"}, ""},
		{"campaign of one", options{trials: 1, out: "camp"}, ""},
		{"campaign resume", options{trials: 4, out: "camp", resume: true}, ""},
		{"campaign compact", options{trials: 4, out: "camp", compact: true}, ""},
		{"campaign resume and compact", options{trials: 4, out: "camp", resume: true, compact: true}, ""},
		{"mitigations alone", options{trials: 1, mitigations: true}, ""},
		{"mitigations with phase1-only tolerated", options{trials: 1, mitigations: true, phase1Only: true}, ""},
		{"batch with watch", options{trials: 4, watch: "127.0.0.1:0"}, ""},
		{"campaign of one with watch", options{trials: 1, out: "camp", watch: "127.0.0.1:0"}, ""},
		{"batch with occupancy json", options{trials: 4, occupancyJSON: "occ.json"}, ""},
		{"batch with flight dir", options{trials: 4, flightDir: "dumps"}, ""},
		{"fully observed campaign", options{trials: 4, out: "camp", watch: ":0", occupancyJSON: "occ.json", flightDir: "dumps", metricsJSON: true}, ""},
		{"shard campaign", options{trials: 4, out: "camp", shard: "0/2"}, ""},
		{"last shard", options{trials: 4, out: "camp", shard: "1/2"}, ""},
		{"one shard per trial", options{trials: 4, out: "camp", shard: "3/4"}, ""},
		{"degenerate single shard", options{trials: 4, out: "camp", shard: "0/1"}, ""},
		{"shard resume", options{trials: 4, out: "camp", shard: "1/2", resume: true}, ""},

		{"resume without out", options{trials: 4, resume: true}, "-resume requires -out"},
		{"shard without out", options{trials: 4, shard: "0/2"}, "-shard requires -out"},
		{"shard not a fraction", options{trials: 4, out: "camp", shard: "2"}, "malformed"},
		{"shard with garbage", options{trials: 4, out: "camp", shard: "0/2x"}, "malformed"},
		{"shard empty halves", options{trials: 4, out: "camp", shard: "/"}, "malformed"},
		{"shard zero shards", options{trials: 4, out: "camp", shard: "0/0"}, "at least 1"},
		{"shard negative count", options{trials: 4, out: "camp", shard: "0/-2"}, "at least 1"},
		{"shard index at count", options{trials: 4, out: "camp", shard: "2/2"}, "out of range"},
		{"shard index past count", options{trials: 4, out: "camp", shard: "5/2"}, "out of range"},
		{"shard negative index", options{trials: 4, out: "camp", shard: "-1/2"}, "out of range"},
		{"more shards than trials", options{trials: 2, out: "camp", shard: "0/4"}, "at least one shard would be empty"},
		{"compact without out", options{trials: 4, compact: true}, "-compact requires -out"},
		{"single run with watch", options{trials: 1, watch: "127.0.0.1:0"}, "-watch requires batch mode"},
		{"single run with occupancy json", options{trials: 1, occupancyJSON: "occ.json"}, "-occupancy-json requires batch mode"},
		{"single run with flight dir", options{trials: 1, flightDir: "dumps"}, "-flight-dir requires batch mode"},
		{"mitigations with watch", options{trials: 1, mitigations: true, watch: ":0"}, "-mitigations"},
		{"mitigations with out", options{trials: 1, out: "camp", mitigations: true}, "-mitigations"},
		{"batch with phase1-only", options{trials: 4, phase1Only: true}, "-phase1-only"},
		{"campaign with phase1-only", options{trials: 1, out: "camp", phase1Only: true}, "-phase1-only"},
		{"batch with json-stats", options{trials: 4, jsonStats: true}, "-json-stats"},
		{"campaign with json-stats", options{trials: 1, out: "camp", jsonStats: true}, "-json-stats"},
		{"batch with metrics table", options{trials: 4, metrics: true}, "-metrics is incompatible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestBatchMode(t *testing.T) {
	if (options{trials: 1}).batch() {
		t.Error("trials=1 without -out must run the single-run path")
	}
	if !(options{trials: 2}).batch() {
		t.Error("trials=2 must run the batch path")
	}
	if !(options{trials: 1, out: "camp"}).batch() {
		t.Error("-out must force batch mode even for one trial")
	}
}
