// Command shadowmeter runs the full traffic-shadowing experiment against
// the simulated Internet and prints the complete report: every table and
// figure of the paper, regenerated from honeypot and traceroute evidence.
//
// Usage:
//
//	shadowmeter [-seed N] [-scale small|medium|full] [-intercepted N]
//	            [-phase1-only] [-json-stats] [-metrics] [-metrics-json]
//	            [-progress N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"shadowmeter/internal/core"
	"shadowmeter/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "experiment seed (world, traffic and exhibitor schedules derive from it)")
		scale       = flag.String("scale", "small", "experiment geometry: small, medium, or full (paper-sized: 4,364 VPs)")
		intercepted = flag.Int("intercepted", 0, "install DNS-interception ground truth on N VP-hosting ASes (Appendix E demo)")
		phase1Only  = flag.Bool("phase1-only", false, "stop after the Phase I landscape (skip tracerouting)")
		jsonStats   = flag.Bool("json-stats", false, "append machine-readable summary statistics as JSON")
		mitigations = flag.Bool("mitigations", false, "run the encryption mitigation study (ECH, DoH) instead of the main experiment")
		metrics     = flag.Bool("metrics", false, "append the telemetry summary table to stderr after the report")
		metricsJSON = flag.Bool("metrics-json", false, "print ONLY the telemetry export as JSON on stdout (byte-identical for identical seeds)")
		progressN   = flag.Int64("progress", 0, "report progress to stderr every N simulation events (0 disables)")
	)
	flag.Parse()

	if *mitigations {
		fmt.Fprintln(os.Stderr, "running mitigation study (baseline / TLS+ECH / DNS-over-HTTPS)...")
		fmt.Println(core.RenderMitigationStudy(core.MitigationStudy(*seed)))
		return
	}

	cfg := core.Config{Seed: *seed, InterceptedVPASes: *intercepted}
	switch *scale {
	case "small":
		cfg.Scale = core.ScaleSmall
	case "medium":
		cfg.Scale = core.ScaleMedium
	case "full":
		cfg.Scale = core.ScaleFull
	default:
		log.Fatalf("unknown scale %q (want small, medium or full)", *scale)
	}

	started := time.Now()
	e := core.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "world built: %d VPs after screening, %d DNS destinations, %d web sites (%.1fs)\n",
		len(e.World.Platform.VPs), len(e.World.DNSDests), len(e.World.Web.Sites), time.Since(started).Seconds())

	if *progressN > 0 {
		// Progress is event-count paced (deterministic points); only this
		// sink reads the wall clock, and only onto stderr.
		prog := e.Telemetry().Progress
		prog.Every = *progressN
		prog.Sink = func(u telemetry.Update) {
			fmt.Fprintf(os.Stderr, "progress: phase=%-8s events=%-12d pending=%-8d virtual=%s wall=%.1fs\n",
				u.Phase, u.Events, u.Pending, u.Virtual.Format(time.RFC3339), time.Since(started).Seconds())
		}
	}

	e.ScreenPairResolvers()
	fmt.Fprintf(os.Stderr, "pair-resolver screening: %d tested, %d removed\n",
		e.PairReport.Tested, e.PairReport.Removed)

	t1 := time.Now()
	e.RunPhaseI()
	fmt.Fprintf(os.Stderr, "phase I complete: %d unsolicited events (%.1fs)\n",
		len(e.EventsPhaseI), time.Since(t1).Seconds())

	if !*phase1Only {
		t2 := time.Now()
		e.RunPhaseII()
		fmt.Fprintf(os.Stderr, "phase II complete: %d sweeps analyzed (%.1fs)\n",
			len(e.SweepResults), time.Since(t2).Seconds())
	}

	report := e.Compile()
	if *metricsJSON {
		// Stdout carries ONLY the telemetry export: piping two same-seed
		// runs through diff is the documented determinism check.
		os.Stdout.Write(e.Telemetry().ExportJSON())
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	if *jsonStats {
		// Machine-readable reproduction artifact.
		out, err := report.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		if *metrics {
			e.Telemetry().WriteText(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	fmt.Println(report.Render())
	if *metrics {
		e.Telemetry().WriteText(os.Stderr)
	}
}
