// Command shadowmeter runs the full traffic-shadowing experiment against
// the simulated Internet and prints the complete report: every table and
// figure of the paper, regenerated from honeypot and traceroute evidence.
//
// Usage:
//
//	shadowmeter [-seed N] [-scale small|medium|full] [-intercepted N]
//	            [-trials N] [-workers W] [-out DIR] [-shard i/N]
//	            [-resume] [-compact]
//	            [-phase1-only] [-json-stats] [-cold-topology]
//	            [-metrics] [-metrics-json] [-progress N]
//	            [-watch ADDR] [-occupancy-json PATH] [-flight-dir DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"shadowmeter/internal/core"
	"shadowmeter/internal/runner"
	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/watch"
)

// options are the parsed command-line settings that interact; kept in a
// struct so flag-combination rules are testable.
type options struct {
	trials        int
	out           string
	shard         string
	resume        bool
	phase1Only    bool
	jsonStats     bool
	metrics       bool
	metricsJSON   bool
	mitigations   bool
	compact       bool
	watch         string
	occupancyJSON string
	flightDir     string
}

// batch reports whether the run goes through the multi-trial campaign
// runner. -out forces batch mode even for one trial: a persisted trial
// is a campaign of size one, with batch (aggregate JSON) output.
func (o options) batch() bool { return o.trials > 1 || o.out != "" }

// validate enforces the flag-interaction contract. Batch stdout carries
// exactly one document — the aggregate batch JSON, or with -metrics-json
// the merged telemetry export — so flags that would smuggle a second
// document (or silently do nothing) are rejected rather than defined
// by accident.
// parseShard parses a -shard value "i/N" into a shard index and count.
// The geometry must be well-formed here; whether it matches an existing
// store is checked against the manifest when the store opens.
func parseShard(s string) (index, count int, err error) {
	is, ns, ok := strings.Cut(s, "/")
	var ierr, nerr error
	if ok {
		index, ierr = strconv.Atoi(is)
		count, nerr = strconv.Atoi(ns)
	}
	if !ok || ierr != nil || nerr != nil {
		return 0, 0, fmt.Errorf("-shard %q is malformed: want i/N, e.g. -shard 0/4 for the first of four shards", s)
	}
	if count <= 0 {
		return 0, 0, fmt.Errorf("-shard %q has no shards: the shard count N must be at least 1", s)
	}
	if index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q is out of range: the shard index must be in 0..%d for %d shards", s, count-1, count)
	}
	return index, count, nil
}

func (o options) validate() error {
	if o.shard != "" {
		_, count, err := parseShard(o.shard)
		if err != nil {
			return err
		}
		if o.out == "" {
			return fmt.Errorf("-shard requires -out DIR: a shard's slice of the campaign lands in its own store, to be folded with `shadowstore merge`")
		}
		if count > o.trials {
			return fmt.Errorf("-shard %s splits %d trials across %d shards: at least one shard would be empty; use at most -trials shards", o.shard, o.trials, count)
		}
	}
	if o.resume && o.out == "" {
		return fmt.Errorf("-resume requires -out DIR: there is no campaign to resume without a store")
	}
	if o.compact && o.out == "" {
		return fmt.Errorf("-compact requires -out DIR: there is no campaign log to compact without a store")
	}
	if o.out != "" && o.mitigations {
		return fmt.Errorf("-out is incompatible with -mitigations: only main-experiment trials are persisted")
	}
	if o.mitigations {
		if o.watch != "" || o.occupancyJSON != "" || o.flightDir != "" {
			return fmt.Errorf("-watch, -occupancy-json and -flight-dir are incompatible with -mitigations: the observability plane watches the main-experiment campaign runner")
		}
		return nil // remaining rules govern the main experiment
	}
	if o.batch() {
		if o.phase1Only {
			return fmt.Errorf("-phase1-only is incompatible with batch mode (-trials > 1 or -out): stored and aggregated trials always run both phases")
		}
		if o.jsonStats {
			return fmt.Errorf("-json-stats is incompatible with batch mode (-trials > 1 or -out): batch stdout already carries the aggregate batch JSON; use -metrics-json for the merged telemetry export")
		}
		if o.metrics {
			return fmt.Errorf("-metrics is incompatible with batch mode (-trials > 1 or -out): per-trial telemetry is merged; use -metrics-json for the merged export")
		}
		return nil
	}
	// The observability plane rides beside the campaign runner; single
	// runs have nothing for it to observe.
	if o.watch != "" {
		return fmt.Errorf("-watch requires batch mode (-trials > 1 or -out): the observability plane watches a campaign")
	}
	if o.occupancyJSON != "" {
		return fmt.Errorf("-occupancy-json requires batch mode (-trials > 1 or -out): occupancy is a property of the worker pool")
	}
	if o.flightDir != "" {
		return fmt.Errorf("-flight-dir requires batch mode (-trials > 1 or -out): the flight recorder rides on the campaign monitor")
	}
	return nil
}

func main() {
	var (
		seed        = flag.Int64("seed", 42, "experiment seed (world, traffic and exhibitor schedules derive from it)")
		scale       = flag.String("scale", "small", "experiment geometry: small, medium, or full (paper-sized: 4,364 VPs)")
		intercepted = flag.Int("intercepted", 0, "install DNS-interception ground truth on N VP-hosting ASes (Appendix E demo)")
		trials      = flag.Int("trials", 1, "independent trials to run (seed, seed+1, ...); >1 prints the aggregate batch JSON")
		workers     = flag.Int("workers", 0, "concurrent trial worlds (0 = one per trial); affects wall time only, never output")
		out         = flag.String("out", "", "campaign directory: durably persist each completed trial (implies batch output, even for -trials 1)")
		shard       = flag.String("shard", "", "run only slice i/N of the trial plan into the -out shard store (e.g. 0/2 and 1/2 partition the plan; fold with `shadowstore merge`)")
		resume      = flag.Bool("resume", false, "serve trials already stored in the -out campaign instead of re-running them (byte-identical output)")
		compact     = flag.Bool("compact", false, "compact the -out campaign log after the batch: newest record per trial, dead bytes dropped")
		phase1Only  = flag.Bool("phase1-only", false, "stop after the Phase I landscape (skip tracerouting)")
		jsonStats   = flag.Bool("json-stats", false, "append machine-readable summary statistics as JSON (single runs only)")
		mitigations = flag.Bool("mitigations", false, "run the encryption mitigation study (ECH, DoH) instead of the main experiment")
		metrics     = flag.Bool("metrics", false, "append the telemetry summary table to stderr after the report (single runs only)")
		metricsJSON = flag.Bool("metrics-json", false, "print ONLY the telemetry export as JSON on stdout; in batch mode, the merged per-trial export (byte-identical for identical seeds)")
		progressN   = flag.Int64("progress", 0, "single run: report progress to stderr every N simulation events; batch: any N > 0 prints one stderr line per completed trial (0 disables)")
		coldTopo    = flag.Bool("cold-topology", false, "rebuild the topology from scratch for every trial instead of sharing a blueprint (output must be byte-identical either way)")
		watchAddr   = flag.String("watch", "", "serve the live observability plane on ADDR (/healthz, /campaign, /progress, /metrics, /debug/pprof); batch mode only, provably inert")
		occJSON     = flag.String("occupancy-json", "", "write the worker-occupancy report (busy/idle/merge-wait per worker, trial wall-time histogram) to PATH after the batch")
		flightDir   = flag.String("flight-dir", "", "flight-recorder dump directory for panicking or slow trials (default: the -out campaign directory)")
	)
	flag.Parse()

	opts := options{
		trials: *trials, out: *out, shard: *shard, resume: *resume, compact: *compact,
		phase1Only: *phase1Only, jsonStats: *jsonStats,
		metrics: *metrics, metricsJSON: *metricsJSON,
		mitigations: *mitigations,
		watch:       *watchAddr, occupancyJSON: *occJSON, flightDir: *flightDir,
	}
	if err := opts.validate(); err != nil {
		log.Fatal(err)
	}

	if *mitigations {
		fmt.Fprintln(os.Stderr, "running mitigation study (baseline / TLS+ECH / DNS-over-HTTPS)...")
		fmt.Println(core.RenderMitigationStudy(core.MitigationStudy(*seed)))
		return
	}

	cfg := core.Config{Seed: *seed, InterceptedVPASes: *intercepted}
	switch *scale {
	case "small":
		cfg.Scale = core.ScaleSmall
	case "medium":
		cfg.Scale = core.ScaleMedium
	case "full":
		cfg.Scale = core.ScaleFull
	default:
		log.Fatalf("unknown scale %q (want small, medium or full)", *scale)
	}

	if opts.batch() {
		shardIndex, shardCount := 0, 0
		if *shard != "" {
			// validate already vetted the geometry; re-parse for the values.
			shardIndex, shardCount, _ = parseShard(*shard)
		}
		runBatch(batchParams{
			trials: *trials, workers: *workers, baseSeed: *seed,
			cfg: cfg, scaleName: *scale,
			shardIndex: shardIndex, shardCount: shardCount,
			metricsJSON: *metricsJSON, outDir: *out, resume: *resume, compact: *compact,
			coldTopo:  *coldTopo,
			watchAddr: *watchAddr, occupancyPath: *occJSON,
			flightDir: *flightDir, progress: *progressN > 0,
		})
		return
	}

	started := time.Now()
	e := core.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "world built: %d VPs after screening, %d DNS destinations, %d web sites (%.1fs)\n",
		len(e.World.Platform.VPs), len(e.World.DNSDests), len(e.World.Web.Sites), time.Since(started).Seconds())

	if *progressN > 0 {
		// Progress is event-count paced (deterministic points); only this
		// sink reads the wall clock, and only onto stderr.
		prog := e.Telemetry().Progress
		prog.Every = *progressN
		prog.Sink = func(u telemetry.Update) {
			fmt.Fprintf(os.Stderr, "progress: phase=%-8s events=%-12d pending=%-8d virtual=%s wall=%.1fs\n",
				u.Phase, u.Events, u.Pending, u.Virtual.Format(time.RFC3339), time.Since(started).Seconds())
		}
	}

	e.ScreenPairResolvers()
	fmt.Fprintf(os.Stderr, "pair-resolver screening: %d tested, %d removed\n",
		e.PairReport.Tested, e.PairReport.Removed)

	t1 := time.Now()
	e.RunPhaseI()
	fmt.Fprintf(os.Stderr, "phase I complete: %d unsolicited events (%.1fs)\n",
		len(e.EventsPhaseI), time.Since(t1).Seconds())

	if !*phase1Only {
		t2 := time.Now()
		e.RunPhaseII()
		fmt.Fprintf(os.Stderr, "phase II complete: %d sweeps analyzed (%.1fs)\n",
			len(e.SweepResults), time.Since(t2).Seconds())
	}

	report := e.Compile()
	if *metricsJSON {
		// Stdout carries ONLY the telemetry export: piping two same-seed
		// runs through diff is the documented determinism check.
		os.Stdout.Write(e.Telemetry().ExportJSON())
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	if *jsonStats {
		// Machine-readable reproduction artifact.
		out, err := report.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		if *metrics {
			e.Telemetry().WriteText(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	fmt.Println(report.Render())
	if *metrics {
		e.Telemetry().WriteText(os.Stderr)
	}
}

// batchParams bundles everything a campaign run needs; the flag surface
// grew past the point where a positional parameter list stays readable.
type batchParams struct {
	trials   int
	workers  int
	baseSeed int64
	cfg      core.Config
	// scaleName annotates the store manifest and campaign snapshot.
	scaleName string
	// shardIndex/shardCount select slice shardIndex/shardCount of the
	// trial plan (shardCount 0 = unsharded: the whole plan).
	shardIndex  int
	shardCount  int
	metricsJSON bool
	outDir      string
	resume      bool
	compact     bool
	coldTopo    bool
	// watchAddr, when non-empty, serves the observability plane there.
	watchAddr string
	// occupancyPath, when non-empty, receives the worker-occupancy JSON.
	occupancyPath string
	// flightDir overrides the flight-recorder directory (default outDir).
	flightDir string
	// progress prints one stderr line per completed trial.
	progress bool
}

// observed reports whether the run needs a campaign monitor. A plain
// unpersisted batch stays monitor-free — the check.sh watch-on/off diff
// compares a genuinely bare pipeline against a fully observed one — but
// a persisted campaign (-out) always gets one, so a panicking trial
// leaves a flight dump beside the store it interrupted.
func (p batchParams) observed() bool {
	return p.watchAddr != "" || p.occupancyPath != "" || p.flightDir != "" || p.progress || p.outDir != ""
}

// stalledCheckInterval paces the in-flight slow-trial watchdog. The
// ticker lives here, not in internal/ — wall-clock scheduling is a cmd/
// concern (and the simclock analyzer holds internal packages to that).
const stalledCheckInterval = 2 * time.Second

// runBatch executes a multi-trial campaign and prints the aggregate
// batch JSON (per-trial headlines + cross-trial mean/min/max). With
// -metrics-json, stdout instead carries only the merged telemetry
// export, diffable against other runs of the same seeds. With -out,
// every completed trial is durably persisted as it finishes; with
// -resume, trials already stored are served from the campaign store —
// per-seed determinism makes the two paths byte-identical on stdout.
//
// The observability plane (-watch, -occupancy-json, -progress, the
// flight recorder) attaches a Monitor to the runner; the monitor only
// ever sees copies and snapshots, so stdout stays byte-identical with
// the plane on or off.
func runBatch(p batchParams) {
	started := time.Now()
	rcfg := runner.Config{Trials: p.trials, Workers: p.workers, BaseSeed: p.baseSeed, Core: p.cfg, ColdTopology: p.coldTopo}
	span := runner.Slice{From: 0, To: p.trials}
	if p.shardCount > 0 {
		span = runner.ShardSlice(p.trials, p.shardIndex, p.shardCount)
		rcfg.Slice = span
	}

	var st *runstore.Store
	if p.outDir != "" {
		man := runstore.Manifest{
			Version:    runstore.StoreVersion,
			ConfigHash: runner.CampaignHash(p.cfg),
			BaseSeed:   p.baseSeed,
			Trials:     p.trials,
			Scale:      p.scaleName,
			ShardIndex: p.shardIndex,
			ShardCount: p.shardCount,
		}
		var err error
		st, err = runstore.OpenOrCreate(p.outDir, man, telemetry.NewSet())
		if err != nil {
			log.Fatalf("opening campaign store: %v", err)
		}
		if !p.resume && st.Len() > 0 {
			log.Fatalf("campaign %s already holds %d trial records; pass -resume to continue it or point -out at a fresh directory", p.outDir, st.Len())
		}
		if n := st.Stats().TornTailTruncations; n > 0 {
			fmt.Fprintf(os.Stderr, "store %s: truncated %d torn tail record(s) left by an interrupted run\n", p.outDir, n)
		}
		rcfg.Store, rcfg.Resume = st, p.resume
	}

	var mon *runner.Monitor
	var repDone chan struct{}
	stop := make(chan struct{})
	if p.observed() {
		flightDir := p.flightDir
		if flightDir == "" {
			flightDir = p.outDir // panics in a persisted campaign leave evidence beside it
		}
		bus := telemetry.NewBus(time.Now, 0)
		mon = runner.NewMonitor(runner.MonitorOptions{
			Clock:     time.Now,
			Bus:       bus,
			FlightDir: flightDir,
			Scale:     p.scaleName,
		})
		rcfg.Monitor = mon

		if p.watchAddr != "" {
			ln, err := net.Listen("tcp", p.watchAddr)
			if err != nil {
				log.Fatalf("-watch %s: %v", p.watchAddr, err)
			}
			// check.sh and operators parse this line for the resolved port.
			fmt.Fprintf(os.Stderr, "watch: serving on http://%s\n", ln.Addr())
			srv := &watch.Server{Monitor: mon, Bus: bus}
			go func() {
				if err := http.Serve(ln, srv.Handler()); err != nil {
					select {
					case <-stop: // campaign over; listener closed under us
					default:
						fmt.Fprintf(os.Stderr, "watch: server stopped: %v\n", err)
					}
				}
			}()
			defer ln.Close()
		}
		if p.progress {
			rep := &telemetry.Reporter{Bus: bus, Total: span.To - span.From, W: os.Stderr, Clock: time.Now}
			repDone = make(chan struct{})
			go func() {
				defer close(repDone)
				rep.Run(stop)
			}()
		}
		// In-flight slow-trial watchdog: internal/ cannot own a ticker
		// (deterministic pipeline), so cmd/ paces the checks.
		go func() {
			tick := time.NewTicker(stalledCheckInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					mon.CheckStalled()
				}
			}
		}()
		// SIGQUIT: flight-dump every in-flight trial, then restore the
		// default handler so a second SIGQUIT still gets the Go runtime's
		// goroutine dump.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			select {
			case <-stop:
			case <-quit:
				n := mon.DumpInflight("sigquit")
				fmt.Fprintf(os.Stderr, "watch: SIGQUIT: wrote %d flight dump(s)\n", n)
				signal.Stop(quit)
			}
		}()
	}

	// Report the effective pool, not the requested one: -workers larger
	// than the window clamps, and every speedup series divides by this.
	effWorkers := runner.EffectiveWorkers(span.To-span.From, p.workers)
	if p.shardCount > 0 {
		fmt.Fprintf(os.Stderr, "running shard %d/%d of %d trials: trials %d..%d (seeds %d..%d), %d worker(s)...\n",
			p.shardIndex, p.shardCount, p.trials, span.From, span.To-1,
			p.baseSeed+int64(span.From), p.baseSeed+int64(span.To)-1, effWorkers)
	} else {
		fmt.Fprintf(os.Stderr, "running %d trials (seeds %d..%d), %d worker(s)...\n",
			p.trials, p.baseSeed, p.baseSeed+int64(p.trials)-1, effWorkers)
	}
	res := runner.Run(rcfg)
	close(stop)
	if repDone != nil {
		<-repDone // let the reporter drain its final "trials N/N" line
	}

	if mon != nil {
		if err := mon.FlightErr(); err != nil {
			fmt.Fprintf(os.Stderr, "watch: flight recorder: %v\n", err)
		}
		if p.occupancyPath != "" {
			b, err := mon.OccupancyJSON()
			if err == nil {
				err = os.WriteFile(p.occupancyPath, b, 0o644)
			}
			if err != nil {
				log.Fatalf("-occupancy-json %s: %v", p.occupancyPath, err)
			}
		}
	}

	if st != nil {
		if res.StoreErr != nil {
			log.Fatalf("persisting trials: %v", res.StoreErr)
		}
		if p.compact {
			cs, err := st.Compact()
			if err != nil {
				log.Fatalf("compacting campaign store: %v", err)
			}
			fmt.Fprintf(os.Stderr, "store %s: compacted, kept %d records, %d -> %d bytes (reclaimed %d)\n",
				p.outDir, cs.Kept, cs.BytesBefore, cs.BytesAfter, cs.Reclaimed)
		}
		if err := st.Close(); err != nil {
			log.Fatalf("closing campaign store: %v", err)
		}
		s := st.Stats()
		fmt.Fprintf(os.Stderr, "store %s: records written %d, resume hits %d, torn-tail truncations %d\n",
			p.outDir, s.RecordsWritten, s.ResumeHits, s.TornTailTruncations)
	}

	if p.metricsJSON {
		os.Stdout.Write(res.MergedTelemetryJSON())
		printBatchFooter(started, res)
		return
	}
	out, err := res.JSON()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
	printBatchFooter(started, res)
}

// printBatchFooter closes the batch's stderr narrative: wall time plus
// the streaming consumer's peak-heap high-water, the number the
// memory-flat gate tracks (also exported via -occupancy-json).
func printBatchFooter(started time.Time, res *runner.Result) {
	fmt.Fprintf(os.Stderr, "total wall time: %.1fs, peak heap %.1f MB\n",
		time.Since(started).Seconds(), float64(res.PeakHeapBytes)/(1<<20))
}
