// Command shadowmeter runs the full traffic-shadowing experiment against
// the simulated Internet and prints the complete report: every table and
// figure of the paper, regenerated from honeypot and traceroute evidence.
//
// Usage:
//
//	shadowmeter [-seed N] [-scale small|medium|full] [-intercepted N]
//	            [-trials N] [-workers W] [-phase1-only] [-json-stats]
//	            [-metrics] [-metrics-json] [-progress N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"shadowmeter/internal/core"
	"shadowmeter/internal/runner"
	"shadowmeter/internal/telemetry"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "experiment seed (world, traffic and exhibitor schedules derive from it)")
		scale       = flag.String("scale", "small", "experiment geometry: small, medium, or full (paper-sized: 4,364 VPs)")
		intercepted = flag.Int("intercepted", 0, "install DNS-interception ground truth on N VP-hosting ASes (Appendix E demo)")
		trials      = flag.Int("trials", 1, "independent trials to run (seed, seed+1, ...); >1 prints the aggregate batch JSON")
		workers     = flag.Int("workers", 0, "concurrent trial worlds (0 = one per trial); affects wall time only, never output")
		phase1Only  = flag.Bool("phase1-only", false, "stop after the Phase I landscape (skip tracerouting)")
		jsonStats   = flag.Bool("json-stats", false, "append machine-readable summary statistics as JSON")
		mitigations = flag.Bool("mitigations", false, "run the encryption mitigation study (ECH, DoH) instead of the main experiment")
		metrics     = flag.Bool("metrics", false, "append the telemetry summary table to stderr after the report")
		metricsJSON = flag.Bool("metrics-json", false, "print ONLY the telemetry export as JSON on stdout (byte-identical for identical seeds)")
		progressN   = flag.Int64("progress", 0, "report progress to stderr every N simulation events (0 disables)")
	)
	flag.Parse()

	if *mitigations {
		fmt.Fprintln(os.Stderr, "running mitigation study (baseline / TLS+ECH / DNS-over-HTTPS)...")
		fmt.Println(core.RenderMitigationStudy(core.MitigationStudy(*seed)))
		return
	}

	cfg := core.Config{Seed: *seed, InterceptedVPASes: *intercepted}
	switch *scale {
	case "small":
		cfg.Scale = core.ScaleSmall
	case "medium":
		cfg.Scale = core.ScaleMedium
	case "full":
		cfg.Scale = core.ScaleFull
	default:
		log.Fatalf("unknown scale %q (want small, medium or full)", *scale)
	}

	if *trials > 1 {
		if *phase1Only {
			log.Fatal("-phase1-only is incompatible with -trials > 1 (the batch runner always runs both phases)")
		}
		runBatch(*trials, *workers, *seed, cfg, *metricsJSON)
		return
	}

	started := time.Now()
	e := core.NewExperiment(cfg)
	fmt.Fprintf(os.Stderr, "world built: %d VPs after screening, %d DNS destinations, %d web sites (%.1fs)\n",
		len(e.World.Platform.VPs), len(e.World.DNSDests), len(e.World.Web.Sites), time.Since(started).Seconds())

	if *progressN > 0 {
		// Progress is event-count paced (deterministic points); only this
		// sink reads the wall clock, and only onto stderr.
		prog := e.Telemetry().Progress
		prog.Every = *progressN
		prog.Sink = func(u telemetry.Update) {
			fmt.Fprintf(os.Stderr, "progress: phase=%-8s events=%-12d pending=%-8d virtual=%s wall=%.1fs\n",
				u.Phase, u.Events, u.Pending, u.Virtual.Format(time.RFC3339), time.Since(started).Seconds())
		}
	}

	e.ScreenPairResolvers()
	fmt.Fprintf(os.Stderr, "pair-resolver screening: %d tested, %d removed\n",
		e.PairReport.Tested, e.PairReport.Removed)

	t1 := time.Now()
	e.RunPhaseI()
	fmt.Fprintf(os.Stderr, "phase I complete: %d unsolicited events (%.1fs)\n",
		len(e.EventsPhaseI), time.Since(t1).Seconds())

	if !*phase1Only {
		t2 := time.Now()
		e.RunPhaseII()
		fmt.Fprintf(os.Stderr, "phase II complete: %d sweeps analyzed (%.1fs)\n",
			len(e.SweepResults), time.Since(t2).Seconds())
	}

	report := e.Compile()
	if *metricsJSON {
		// Stdout carries ONLY the telemetry export: piping two same-seed
		// runs through diff is the documented determinism check.
		os.Stdout.Write(e.Telemetry().ExportJSON())
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	if *jsonStats {
		// Machine-readable reproduction artifact.
		out, err := report.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		if *metrics {
			e.Telemetry().WriteText(os.Stderr)
		}
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	fmt.Println(report.Render())
	if *metrics {
		e.Telemetry().WriteText(os.Stderr)
	}
}

// runBatch executes a multi-trial campaign and prints the aggregate
// batch JSON (per-trial headlines + cross-trial mean/min/max). With
// -metrics-json, stdout instead carries only the merged telemetry
// export, diffable against other runs of the same seeds.
func runBatch(trials, workers int, baseSeed int64, cfg core.Config, metricsJSON bool) {
	started := time.Now()
	fmt.Fprintf(os.Stderr, "running %d trials (seeds %d..%d)...\n", trials, baseSeed, baseSeed+int64(trials)-1)
	res := runner.Run(runner.Config{Trials: trials, Workers: workers, BaseSeed: baseSeed, Core: cfg})
	if metricsJSON {
		os.Stdout.Write(res.MergedTelemetryJSON())
		fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
		return
	}
	out, err := res.JSON()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
	fmt.Fprintf(os.Stderr, "total wall time: %.1fs\n", time.Since(started).Seconds())
}
