// Command honeypotd runs a real-network honeypot: the authoritative DNS
// server for the experiment zone (answering every name under it with the
// honey-website addresses) plus the honey HTTP site, both on actual
// sockets. Captures stream to stdout as they arrive.
//
// Usage:
//
//	honeypotd [-zone experiment.domain] [-dns 127.0.0.1:5353]
//	          [-http 127.0.0.1:8080] [-web 127.0.0.1] [-location LAB]
//
// Send it a query to see a capture:
//
//	dig @127.0.0.1 -p 5353 test123.www.experiment.domain
//	curl -H 'Host: test123.www.experiment.domain' http://127.0.0.1:8080/admin/
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/wire"
)

func main() {
	var (
		zone     = flag.String("zone", "experiment.domain", "experiment zone to serve authoritatively")
		dnsAddr  = flag.String("dns", "127.0.0.1:5353", "DNS listen address (empty to disable)")
		httpAddr = flag.String("http", "127.0.0.1:8080", "HTTP listen address (empty to disable)")
		tlsAddr  = flag.String("tls", "", "TLS ClientHello listen address (empty to disable)")
		webAddrs = flag.String("web", "127.0.0.1", "comma-separated A-record targets for the wildcard")
		location = flag.String("location", "LAB", "location tag recorded in captures")
		metrics  = flag.String("metrics", "", "serve Prometheus text metrics at http://ADDR/metrics (empty to disable)")
	)
	flag.Parse()

	var addrs []wire.Addr
	for _, s := range strings.Split(*webAddrs, ",") {
		a, err := wire.ParseAddr(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad -web address %q: %v", s, err)
		}
		addrs = append(addrs, a)
	}

	hp := honeypot.NewRealNet(*zone, *location, addrs)
	hp.Clock = time.Now
	boundDNS, boundHTTP, err := hp.Start(*dnsAddr, *httpAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer hp.Close()
	boundTLS := "(off)"
	if *tlsAddr != "" {
		boundTLS, err = hp.StartTLS(*tlsAddr)
		if err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("honeypot up: zone=%s dns=%s http=%s tls=%s", *zone, boundDNS, boundHTTP, boundTLS)

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			hp.Telemetry.WritePrometheus(w)
		})
		srv := &http.Server{Addr: *metrics, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics listener: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("metrics on http://%s/metrics", *metrics)
	}

	// Stream captures.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	seen := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			caps := hp.Log.Snapshot()
			for _, c := range caps[seen:] {
				fmt.Printf("%s  %-4s  from=%-21s  domain=%s  path=%s\n",
					c.Time.Format(time.RFC3339), c.Protocol, c.Source, c.Domain, c.HTTPPath)
			}
			seen = len(caps)
		case <-stop:
			log.Printf("shutting down: %d captures total", hp.Log.Len())
			return
		}
	}
}
