module shadowmeter

go 1.22
