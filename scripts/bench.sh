#!/usr/bin/env bash
# Benchmark snapshot: runs the registry-backed benchmarks with -benchmem
# and writes a machine-readable BENCH_<YYYYMMDD>.json so the perf
# trajectory (e.g. the netsim zero-alloc pass) is tracked in-repo instead
# of only in commit messages.
#
#   scripts/bench.sh                # writes BENCH_<today>.json in the repo root
#   scripts/bench.sh out.json       # custom output path
#   BENCH_TIME=100ms scripts/bench.sh   # faster, noisier
#   BENCH_PKGS="./internal/netsim" scripts/bench.sh   # subset
#
# Compare two snapshots with e.g.:
#   jq -s '[.[0].benchmarks, .[1].benchmarks]' BENCH_A.json BENCH_B.json
set -euo pipefail
cd "$(dirname "$0")/.."

# The registry-backed benches: netsim/wire hot paths plus the multi-trial
# runner throughput baseline.
read -r -a pkgs <<<"${BENCH_PKGS:-./internal/netsim ./internal/wire ./internal/runner}"
benchtime=${BENCH_TIME:-1s}
stamp=$(date +%Y%m%d)
out=${1:-BENCH_${stamp}.json}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench (${pkgs[*]}, benchtime $benchtime)"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" "${pkgs[@]}" | tee "$tmp"

# Lint wall time: the whole-program engine promises a full-tree pass well
# under the 30s acceptance ceiling; track it next to the benchmarks.
echo "== shadowlint wall time"
go build -o /tmp/shadowlint.bench ./cmd/shadowlint
lint_start=$(date +%s.%N)
/tmp/shadowlint.bench ./...
lint_end=$(date +%s.%N)
rm -f /tmp/shadowlint.bench
lint_wall=$(awk -v a="$lint_start" -v b="$lint_end" 'BEGIN {printf "%.3f", b - a}')
echo "shadowlint ./... took ${lint_wall}s"

# Worker occupancy: where a real multi-worker campaign's wall time goes
# (busy / idle / merge-wait per worker, per-trial wall histogram, slow
# dumps). BenchmarkTrials measures throughput; this measures the Amdahl
# shape behind it — a trials_speedup_w4 near 1 with high merge_wait
# means stragglers, with high idle means queue starvation.
echo "== worker occupancy (4 trials, 2 workers)"
occ=$(mktemp)
campdir=$(mktemp -d)
trap 'rm -f "$tmp" "$occ"; rm -rf "$campdir"' EXIT
go build -o /tmp/shadowmeter.bench ./cmd/shadowmeter
# -out persists the batch as a campaign so the store timings below run
# against a real log; -compact leaves it in its steady state (indexed
# sidecars published, no dead bytes).
/tmp/shadowmeter.bench -seed 7 -trials "${BENCH_OCC_TRIALS:-4}" -workers 2 \
    -occupancy-json "$occ" -out "$campdir/camp" -compact >/dev/null 2>&1
rm -f /tmp/shadowmeter.bench

# Store read-path wall time: an indexed open + summary table (sidecars
# only) and an indexed open + single-record fetch (sidecars plus one
# frame seek). Both are O(record), not O(log) — tracked here so an index
# regression shows up as a wall-time step.
echo "== store open/show wall time"
go build -o /tmp/shadowstore.bench ./cmd/shadowstore
t0=$(date +%s.%N)
/tmp/shadowstore.bench show "$campdir/camp" >/dev/null
t1=$(date +%s.%N)
/tmp/shadowstore.bench show -trial 0 "$campdir/camp" >/dev/null
t2=$(date +%s.%N)
rm -f /tmp/shadowstore.bench
store_show_wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN {printf "%.3f", b - a}')
store_get_wall=$(awk -v a="$t1" -v b="$t2" 'BEGIN {printf "%.3f", b - a}')
echo "shadowstore show took ${store_show_wall}s, show -trial 0 took ${store_get_wall}s"

# Shard data plane wall time: the same campaign run unsharded vs as two
# shards run back-to-back plus a `shadowstore merge`. On this
# single-process host the shards cannot overlap, so sharded-vs-unsharded
# tracks pure fan-out overhead (two store opens, two blueprints);
# shard_merge_seconds tracks the fold itself, which reads raw frames and
# should stay well under a trial's wall time.
echo "== shard fan-out / merge wall time"
go build -o /tmp/shadowmeter.bench ./cmd/shadowmeter
go build -o /tmp/shadowstore.bench ./cmd/shadowstore
s0=$(date +%s.%N)
/tmp/shadowmeter.bench -seed 7 -trials 4 -workers 2 -out "$campdir/unsharded" >/dev/null 2>&1
s1=$(date +%s.%N)
/tmp/shadowmeter.bench -seed 7 -trials 4 -workers 2 -shard 0/2 -out "$campdir/shard0" >/dev/null 2>&1
/tmp/shadowmeter.bench -seed 7 -trials 4 -workers 2 -shard 1/2 -out "$campdir/shard1" >/dev/null 2>&1
s2=$(date +%s.%N)
/tmp/shadowstore.bench merge "$campdir/folded" "$campdir/shard0" "$campdir/shard1" >/dev/null
s3=$(date +%s.%N)
rm -f /tmp/shadowmeter.bench /tmp/shadowstore.bench
unsharded_wall=$(awk -v a="$s0" -v b="$s1" 'BEGIN {printf "%.3f", b - a}')
sharded_wall=$(awk -v a="$s1" -v b="$s2" 'BEGIN {printf "%.3f", b - a}')
merge_wall=$(awk -v a="$s2" -v b="$s3" 'BEGIN {printf "%.3f", b - a}')
echo "unsharded 4 trials took ${unsharded_wall}s, 2 shards took ${sharded_wall}s, merge took ${merge_wall}s"

# Host shape: speedup series are meaningless without knowing how many
# cores the batch had to spread over, so record both the physical count
# and the scheduler's view.
num_cpu=$(nproc)
gomaxprocs=${GOMAXPROCS:-$num_cpu}

awk -v date="$stamp" -v goversion="$(go version | awk '{print $3}')" -v lintwall="$lint_wall" \
    -v numcpu="$num_cpu" -v maxprocs="$gomaxprocs" '
/^Benchmark/ {
    name = $1; ns = ""; bytes = "0"; allocs = "0"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        else if ($i == "B/op") bytes = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (name ~ /^BenchmarkTrials\/workers=1/) w1 = ns
    if (name ~ /^BenchmarkTrials\/workers=2/) w2 = ns
    if (name ~ /^BenchmarkTrials\/workers=4/) w4 = ns
    row = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs)
    body = (body == "" ? row : body ",\n" row)
}
END {
    # trials_speedup_wN: how much faster the N-worker batch runs the same
    # trials than the serial one (>1 means parallelism pays; ~1 on a
    # single-CPU host no matter how clean the runner is). The per-worker-
    # count series makes scaling curvature visible, not just the endpoint.
    speedup = ""
    if (w1 != "" && w2 != "" && w2 + 0 > 0)
        speedup = speedup sprintf(",\n  \"trials_speedup_w2\": %.3f", w1 / w2)
    if (w1 != "" && w4 != "" && w4 + 0 > 0)
        speedup = speedup sprintf(",\n  \"trials_speedup_w4\": %.3f", w1 / w4)
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"num_cpu\": %s,\n  \"gomaxprocs\": %s,\n  \"lint_wall_seconds\": %s%s,\n  \"benchmarks\": [\n%s\n  ]\n}\n", date, goversion, numcpu, maxprocs, lintwall, speedup, body
}' "$tmp" >"$out"

# Fold the occupancy report and wall timings in: the whole occupancy
# object under worker_occupancy, slow_trial_dumps hoisted to the top
# level for cheap trending, the streaming consumer's peak heap normalized
# per trial (the memory-flat trajectory number), and the store read-path
# and shard data-plane wall times beside the lint wall time.
jq --slurpfile occ "$occ" \
    --argjson trials "${BENCH_OCC_TRIALS:-4}" \
    --argjson show "$store_show_wall" --argjson get "$store_get_wall" \
    --argjson unsharded "$unsharded_wall" --argjson sharded "$sharded_wall" \
    --argjson merge "$merge_wall" \
    '. + {worker_occupancy: $occ[0], slow_trial_dumps: $occ[0].slow_trial_dumps,
          peak_heap_mb_per_trial: (($occ[0].peak_heap_bytes // 0) / ($trials * 1048576) * 1000 | round / 1000),
          store_show_seconds: $show, store_show_trial_seconds: $get,
          unsharded_campaign_seconds: $unsharded, sharded_campaign_seconds: $sharded,
          shard_merge_seconds: $merge}' \
    "$out" >"$out.tmp" && mv "$out.tmp" "$out"

echo "wrote $out"
