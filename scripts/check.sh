#!/usr/bin/env bash
# Repo gate: formatting, vet, shadowlint, build, and race-enabled tests.
#
#   scripts/check.sh            # fast gate (~1 min): races everything but internal/core
#   CHECK_FULL=1 scripts/check.sh  # adds go test -race ./internal/core (~3 min)
#
# Run it from anywhere inside the repo; it cds to the module root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== shadowlint"
go run ./cmd/shadowlint ./...

echo "== go build"
go build ./...

echo "== go test -race (fast packages)"
# internal/core is the full end-to-end world and takes minutes under the
# race detector; every other internal package races in seconds. The
# lint repo test inside this set re-runs shadowlint, so regressions are
# caught twice over.
mapfile -t fast < <(go list ./internal/... | grep -v '/internal/core$')
go test -race "${fast[@]}"

if [ "${CHECK_FULL:-0}" = "1" ]; then
    echo "== go test -race ./internal/core (full)"
    go test -race ./internal/core
fi

echo "== telemetry determinism smoke"
# The -metrics-json contract: identical seed+scale must produce
# byte-identical exports across separate processes. A diff here usually
# means a map-iteration order leaked into the event schedule.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/shadowmeter" ./cmd/shadowmeter
"$tmpdir/shadowmeter" -seed 7 -scale small -metrics-json >"$tmpdir/run1.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -scale small -metrics-json >"$tmpdir/run2.json" 2>/dev/null
if ! cmp -s "$tmpdir/run1.json" "$tmpdir/run2.json"; then
    echo "telemetry export is not deterministic for the same seed:" >&2
    diff "$tmpdir/run1.json" "$tmpdir/run2.json" >&2 || true
    exit 1
fi

echo "== benchmark smoke (netsim, wire)"
# -benchtime=1x compiles and runs each benchmark once: catches bitrot in
# the registry-backed events/sec reporting without measuring anything.
go test -run '^$' -bench . -benchtime=1x ./internal/netsim ./internal/wire

echo "check.sh: all gates passed"
