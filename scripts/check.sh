#!/usr/bin/env bash
# Repo gate: formatting, vet, shadowlint, build, and race-enabled tests.
#
#   scripts/check.sh            # fast gate (~1 min): races everything but internal/core
#   CHECK_FULL=1 scripts/check.sh  # adds go test -race ./internal/core (~3 min)
#
# Run it from anywhere inside the repo; it cds to the module root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== shadowlint"
go run ./cmd/shadowlint ./...

echo "== shadowlint -json determinism smoke"
# Whole-program analysis runs on per-package workers; the diagnostic
# stream (and the trailing summary object) must be byte-identical at any
# worker count, mirroring the telemetry export contract.
lint1=$(mktemp) && lint2=$(mktemp)
go run ./cmd/shadowlint -json -p 1 ./... >"$lint1"
go run ./cmd/shadowlint -json -p 8 ./... >"$lint2"
if ! cmp -s "$lint1" "$lint2"; then
    echo "shadowlint -json output depends on worker count:" >&2
    diff "$lint1" "$lint2" >&2 || true
    rm -f "$lint1" "$lint2"
    exit 1
fi
rm -f "$lint1" "$lint2"

echo "== go build"
go build ./...

echo "== go test -race (fast packages)"
# internal/core is the full end-to-end world and takes minutes under the
# race detector; every other internal package races in seconds. The
# lint repo test inside this set re-runs shadowlint, so regressions are
# caught twice over.
mapfile -t fast < <(go list ./internal/... | grep -v '/internal/core$')
go test -race "${fast[@]}"

if [ "${CHECK_FULL:-0}" = "1" ]; then
    echo "== go test -race ./internal/core (full)"
    go test -race ./internal/core
fi

echo "== telemetry determinism smoke"
# The -metrics-json contract: identical seed+scale must produce
# byte-identical exports across separate processes. A diff here usually
# means a map-iteration order leaked into the event schedule.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/shadowmeter" ./cmd/shadowmeter
"$tmpdir/shadowmeter" -seed 7 -scale small -metrics-json >"$tmpdir/run1.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -scale small -metrics-json >"$tmpdir/run2.json" 2>/dev/null
if ! cmp -s "$tmpdir/run1.json" "$tmpdir/run2.json"; then
    echo "telemetry export is not deterministic for the same seed:" >&2
    diff "$tmpdir/run1.json" "$tmpdir/run2.json" >&2 || true
    exit 1
fi

echo "== multi-trial determinism smoke"
# The batch runner contract: the same seeds must produce byte-identical
# merged output at any worker count. A diff here means worker scheduling
# leaked into a trial's world or into the merge order.
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 1 >"$tmpdir/batch1.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 >"$tmpdir/batch2.json" 2>/dev/null
if ! cmp -s "$tmpdir/batch1.json" "$tmpdir/batch2.json"; then
    echo "batch output depends on worker count:" >&2
    diff "$tmpdir/batch1.json" "$tmpdir/batch2.json" >&2 || true
    exit 1
fi

echo "== blueprint determinism smoke"
# The shared-blueprint contract: worlds instantiated from one topology
# blueprint must be byte-identical to worlds cold-built per trial. A diff
# here means blueprint sharing leaked state between trials.
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -cold-topology >"$tmpdir/batch3.json" 2>/dev/null
if ! cmp -s "$tmpdir/batch1.json" "$tmpdir/batch3.json"; then
    echo "blueprint-shared batch differs from cold-built topology:" >&2
    diff "$tmpdir/batch1.json" "$tmpdir/batch3.json" >&2 || true
    exit 1
fi

echo "== runstore checkpoint/resume smoke"
# The resume-determinism contract: a batch persisted with -out, torn at
# the tail (simulating a crash mid-append), then resumed must produce
# stdout byte-identical to the uninterrupted run, with the surviving
# trials served from the store — verified via runstore_resume_hits_total
# surfaced on stderr.
go build -o "$tmpdir/shadowstore" ./cmd/shadowstore
# The multi-trial smoke above already produced the uninterrupted
# reference run for these seeds: batch2.json (seed 7, 2 trials).
cp "$tmpdir/batch2.json" "$tmpdir/cold.json"
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -out "$tmpdir/camp" >"$tmpdir/warm.json" 2>/dev/null
if ! cmp -s "$tmpdir/cold.json" "$tmpdir/warm.json"; then
    echo "-out changed batch stdout:" >&2
    diff "$tmpdir/cold.json" "$tmpdir/warm.json" >&2 || true
    exit 1
fi
truncate -s -7 "$tmpdir/camp/trials.log" # tear the tail record mid-write
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -out "$tmpdir/camp" -resume \
    >"$tmpdir/resumed.json" 2>"$tmpdir/resume.err"
if ! cmp -s "$tmpdir/cold.json" "$tmpdir/resumed.json"; then
    echo "resumed batch differs from cold run:" >&2
    diff "$tmpdir/cold.json" "$tmpdir/resumed.json" >&2 || true
    exit 1
fi
if ! grep -q "resume hits 1" "$tmpdir/resume.err"; then
    echo "expected 1 resume hit (runstore_resume_hits_total); stderr was:" >&2
    cat "$tmpdir/resume.err" >&2
    exit 1
fi
if ! grep -q "torn-tail truncations 1" "$tmpdir/resume.err"; then
    echo "expected 1 torn-tail truncation; stderr was:" >&2
    cat "$tmpdir/resume.err" >&2
    exit 1
fi

echo "== shadowstore smoke"
"$tmpdir/shadowstore" list "$tmpdir/camp" >/dev/null
"$tmpdir/shadowstore" show "$tmpdir/camp" >/dev/null
"$tmpdir/shadowstore" show -trial 0 "$tmpdir/camp" >/dev/null
"$tmpdir/shadowstore" diff "$tmpdir/camp" "$tmpdir/camp" >/dev/null
"$tmpdir/shadowstore" retention "$tmpdir/camp" >/dev/null
"$tmpdir/shadowstore" retention -from 1s -to 240h "$tmpdir/camp" >/dev/null

echo "== watch plane smoke"
# The observability contract, both halves: the plane is LIVE (its
# endpoints answer over HTTP mid-campaign) and INERT (batch stdout is
# byte-identical with the plane on and off). The watched run reuses the
# multi-trial smoke's seeds, so its stdout must match batch2.json.
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 \
    -watch 127.0.0.1:0 -progress 1 -occupancy-json "$tmpdir/occ.json" \
    >"$tmpdir/watch.json" 2>"$tmpdir/watch.err" &
watch_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(awk -F'http://' '/watch: serving on/ {print $2; exit}' "$tmpdir/watch.err")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "watch server never announced its address; stderr was:" >&2
    cat "$tmpdir/watch.err" >&2
    exit 1
fi
curl -fsS "http://$addr/healthz" | grep -q '^ok$'
curl -fsS "http://$addr/campaign" | grep -q '"trials": 2'
curl -fsS "http://$addr/metrics" | grep -q '^watch_trials_total 2$'
curl -fsS "http://$addr/progress" | grep -q '"type": "campaign_started"'
wait "$watch_pid"
if ! cmp -s "$tmpdir/batch2.json" "$tmpdir/watch.json"; then
    echo "-watch changed batch stdout (the plane must be inert):" >&2
    diff "$tmpdir/batch2.json" "$tmpdir/watch.json" >&2 || true
    exit 1
fi
if ! grep -q "progress: trials 2/2 (100%)" "$tmpdir/watch.err"; then
    echo "batch -progress never reported completion; stderr was:" >&2
    cat "$tmpdir/watch.err" >&2
    exit 1
fi
if ! grep -q '"busy_fraction"' "$tmpdir/occ.json"; then
    echo "-occupancy-json report is missing worker occupancy:" >&2
    cat "$tmpdir/occ.json" >&2
    exit 1
fi

echo "== watch merged-telemetry inertness smoke"
# Same contract for the other stdout document: -metrics-json must be
# byte-identical with and without the plane.
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -metrics-json >"$tmpdir/mtj_bare.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -metrics-json -watch 127.0.0.1:0 >"$tmpdir/mtj_watch.json" 2>/dev/null
if ! cmp -s "$tmpdir/mtj_bare.json" "$tmpdir/mtj_watch.json"; then
    echo "-watch changed the merged telemetry export:" >&2
    diff "$tmpdir/mtj_bare.json" "$tmpdir/mtj_watch.json" >&2 || true
    exit 1
fi

echo "== compact-then-resume smoke"
# The compaction contract: rewriting the log (newest valid record per
# trial, dead bytes dropped) must not change what a resumed batch
# prints — stdout and the merged telemetry export stay byte-identical
# to the uninterrupted run, with every trial served from the store.
"$tmpdir/shadowstore" compact "$tmpdir/camp" | grep -q "compacted"
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -out "$tmpdir/camp" -resume \
    >"$tmpdir/compacted_resume.json" 2>"$tmpdir/compact.err"
if ! cmp -s "$tmpdir/cold.json" "$tmpdir/compacted_resume.json"; then
    echo "batch resumed over a compacted store differs from cold run:" >&2
    diff "$tmpdir/cold.json" "$tmpdir/compacted_resume.json" >&2 || true
    exit 1
fi
if ! grep -q "resume hits 2" "$tmpdir/compact.err"; then
    echo "expected 2 resume hits over the compacted store; stderr was:" >&2
    cat "$tmpdir/compact.err" >&2
    exit 1
fi
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -out "$tmpdir/camp" -resume -metrics-json \
    >"$tmpdir/mtj_compacted.json" 2>/dev/null
if ! cmp -s "$tmpdir/mtj_bare.json" "$tmpdir/mtj_compacted.json"; then
    echo "merged telemetry resumed over a compacted store differs from bare run:" >&2
    diff "$tmpdir/mtj_bare.json" "$tmpdir/mtj_compacted.json" >&2 || true
    exit 1
fi

echo "== store O(1) indexed-read smoke"
# The offset-index contract: `show -trial N` on an indexed campaign
# reads the sidecar files plus one record frame, never the whole log.
# An 8-trial campaign (persisted with -compact to exercise that flag)
# makes one frame a small fraction of the log; -stats surfaces the
# store's read counters on stderr for the assertion.
"$tmpdir/shadowmeter" -seed 7 -trials 8 -out "$tmpdir/camp8" -compact >/dev/null 2>/dev/null
"$tmpdir/shadowstore" show -trial 3 -stats "$tmpdir/camp8" >/dev/null 2>"$tmpdir/show.err"
read -r bytes_read log_size index_hits index_rebuilds < \
    <(awk '/^store stats:/ {print $4, $6, $8, $10}' "$tmpdir/show.err")
if [ -z "${bytes_read:-}" ] || [ -z "${log_size:-}" ]; then
    echo "show -stats printed no store stats line; stderr was:" >&2
    cat "$tmpdir/show.err" >&2
    exit 1
fi
if [ "$((bytes_read * 4))" -ge "$log_size" ]; then
    echo "indexed show read $bytes_read bytes of a $log_size-byte log — not O(record)" >&2
    exit 1
fi
if [ "$index_hits" -eq 0 ] || [ "$index_rebuilds" -ne 0 ]; then
    echo "indexed show did not use the sidecar index (hits=$index_hits rebuilds=$index_rebuilds)" >&2
    exit 1
fi

echo "== shadowstore tail smoke"
# Tail of a completed campaign prints every stored record and exits;
# -follow=false on the same store takes the single-pass path.
"$tmpdir/shadowstore" tail "$tmpdir/camp" | grep -q "campaign complete: 2/2"
"$tmpdir/shadowstore" tail -follow=false "$tmpdir/camp" >/dev/null

echo "== shard fan-out / merge determinism smoke"
# The shard-union invariant: run a campaign as two shards, fold them
# with `shadowstore merge`, and a batch resumed from the merged store
# must be byte-identical to the unsharded run — stdout and the merged
# telemetry export alike — with every trial served from the store.
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 >"$tmpdir/cold4.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 -shard 0/2 -out "$tmpdir/shard0" >/dev/null 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 -shard 1/2 -out "$tmpdir/shard1" >/dev/null 2>/dev/null
"$tmpdir/shadowstore" list "$tmpdir/shard0" | grep -q 'shard 0/2'
"$tmpdir/shadowstore" merge "$tmpdir/mergedcamp" "$tmpdir/shard0" "$tmpdir/shard1" | grep -q "merged 2 shard"
"$tmpdir/shadowstore" show "$tmpdir/mergedcamp" | grep -q "merged from 2 shard stores"
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 -out "$tmpdir/mergedcamp" -resume \
    >"$tmpdir/sharded.json" 2>"$tmpdir/sharded.err"
if ! cmp -s "$tmpdir/cold4.json" "$tmpdir/sharded.json"; then
    echo "batch resumed from merged shards differs from the unsharded run:" >&2
    diff "$tmpdir/cold4.json" "$tmpdir/sharded.json" >&2 || true
    exit 1
fi
if ! grep -q "resume hits 4" "$tmpdir/sharded.err"; then
    echo "expected all 4 trials served from the merged store; stderr was:" >&2
    cat "$tmpdir/sharded.err" >&2
    exit 1
fi
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 -metrics-json >"$tmpdir/mtj_cold4.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 4 -workers 2 -out "$tmpdir/mergedcamp" -resume -metrics-json \
    >"$tmpdir/mtj_sharded.json" 2>/dev/null
if ! cmp -s "$tmpdir/mtj_cold4.json" "$tmpdir/mtj_sharded.json"; then
    echo "merged telemetry from merged shards differs from the unsharded run:" >&2
    diff "$tmpdir/mtj_cold4.json" "$tmpdir/mtj_sharded.json" >&2 || true
    exit 1
fi

echo "== campaign extension smoke"
# The extension contract: re-running the merged campaign with a larger
# -trials upgrades the manifest in place (no mismatch error) and the
# result is byte-identical to a cold run at the larger count, with the
# original trials served from the store.
"$tmpdir/shadowmeter" -seed 7 -trials 6 -workers 2 >"$tmpdir/cold6.json" 2>/dev/null
"$tmpdir/shadowmeter" -seed 7 -trials 6 -workers 2 -out "$tmpdir/mergedcamp" -resume \
    >"$tmpdir/extended.json" 2>"$tmpdir/extend.err"
if ! cmp -s "$tmpdir/cold6.json" "$tmpdir/extended.json"; then
    echo "extended campaign differs from the cold run at the larger count:" >&2
    diff "$tmpdir/cold6.json" "$tmpdir/extended.json" >&2 || true
    exit 1
fi
if ! grep -q "resume hits 4" "$tmpdir/extend.err"; then
    echo "expected the 4 pre-extension trials served from the store; stderr was:" >&2
    cat "$tmpdir/extend.err" >&2
    exit 1
fi

echo "== shadowmeterd control-plane smoke"
# The daemon contract: submit a campaign over HTTP, watch it complete,
# then SIGTERM drains gracefully (exit 0, queue persisted as done).
go build -o "$tmpdir/shadowmeterd" ./cmd/shadowmeterd
"$tmpdir/shadowmeterd" -addr 127.0.0.1:0 -root "$tmpdir/fleet" -workers 1 \
    2>"$tmpdir/daemon.err" &
daemon_pid=$!
daddr=""
for _ in $(seq 1 100); do
    daddr=$(awk -F'http://' '/shadowmeterd: serving on/ {split($2, a, " "); print a[1]; exit}' "$tmpdir/daemon.err")
    [ -n "$daddr" ] && break
    sleep 0.1
done
if [ -z "$daddr" ]; then
    echo "shadowmeterd never announced its address; stderr was:" >&2
    cat "$tmpdir/daemon.err" >&2
    exit 1
fi
curl -fsS "http://$daddr/healthz" | grep -q '^ok$'
cid=$(curl -fsS -X POST -d '{"seed":7,"trials":2,"slice_size":1}' "http://$daddr/campaigns" | jq -r .id)
if [ -z "$cid" ] || [ "$cid" = "null" ]; then
    echo "campaign submission returned no id" >&2
    exit 1
fi
state=""
for _ in $(seq 1 300); do
    state=$(curl -fsS "http://$daddr/campaigns/$cid" | jq -r .state)
    [ "$state" = "done" ] && break
    [ "$state" = "failed" ] && break
    sleep 0.2
done
if [ "$state" != "done" ]; then
    echo "campaign $cid ended as '$state', want done; daemon stderr was:" >&2
    cat "$tmpdir/daemon.err" >&2
    exit 1
fi
curl -fsS "http://$daddr/campaigns/$cid/progress" | grep -q '"type": "campaign_started"'
curl -fsS "http://$daddr/campaigns" | grep -q "\"$cid\""
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "shadowmeterd exited non-zero after SIGTERM; stderr was:" >&2
    cat "$tmpdir/daemon.err" >&2
    exit 1
fi
grep -q "drained" "$tmpdir/daemon.err"
grep -q '"state": "done"' "$tmpdir/fleet/state.json"
# The daemon's campaign store is an ordinary campaign: resumable,
# byte-identical to the same seeds run by hand.
fleet_dir=$(jq -r '.campaigns[0].dir' "$tmpdir/fleet/state.json")
"$tmpdir/shadowmeter" -seed 7 -trials 2 -workers 2 -out "$fleet_dir" -resume \
    >"$tmpdir/fleet_resume.json" 2>"$tmpdir/fleet_resume.err"
if ! cmp -s "$tmpdir/batch2.json" "$tmpdir/fleet_resume.json"; then
    echo "daemon-run campaign differs from the same seeds run by hand:" >&2
    diff "$tmpdir/batch2.json" "$tmpdir/fleet_resume.json" >&2 || true
    exit 1
fi
if ! grep -q "resume hits 2" "$tmpdir/fleet_resume.err"; then
    echo "expected both daemon-run trials served from its store; stderr was:" >&2
    cat "$tmpdir/fleet_resume.err" >&2
    exit 1
fi

echo "== benchmark smoke (netsim, wire)"
# -benchtime=1x compiles and runs each benchmark once: catches bitrot in
# the registry-backed events/sec reporting without measuring anything.
go test -run '^$' -bench . -benchtime=1x ./internal/netsim ./internal/wire

echo "== netsim allocation gate"
# The forward path is pooled (events + flights, one scratch decode): it
# must stay at single-digit allocs per delivered packet or multi-trial
# throughput regresses. Baseline after the zero-alloc pass: 1 alloc/op.
allocs=$(go test -run '^$' -bench BenchmarkPacketForwarding -benchmem ./internal/netsim |
    awk '/BenchmarkPacketForwarding/ {print $(NF-1)}')
echo "BenchmarkPacketForwarding: $allocs allocs/op"
if [ -z "$allocs" ] || [ "$allocs" -gt 7 ]; then
    echo "forward-path allocations regressed: $allocs allocs/op (gate: 7)" >&2
    exit 1
fi

echo "== trials allocation + multi-core speedup gates"
# The multi-trial runner went through two campaign-scale allocation
# sweeps (owned-buffer injection, single-allocation packet builders,
# sniff fast paths, per-world encode scratch, interning — then scratch
# DNS decode/response reuse, pooled UDP waiters, per-worker netsim
# arenas, and static HTTP header atoms): an 8-trial batch sits around
# 3.35M allocs, down from ~9.8M before the sweeps. The ceiling leaves
# a few percent headroom for noise while catching any real regression.
bench_out=$(go test -run '^$' -bench 'BenchmarkTrials/workers=(1|4)$' -benchmem -benchtime 1x ./internal/runner)
allocs=$(echo "$bench_out" | awk '/workers=1/ {print $(NF-1)}')
echo "BenchmarkTrials/workers=1: $allocs allocs/op"
if [ -z "$allocs" ] || [ "$allocs" -gt 3500000 ]; then
    echo "trial-loop allocations regressed: $allocs allocs/op (gate: 3500000)" >&2
    exit 1
fi

# Multi-core speedup: the streaming consumer must not serialize the
# worker pool. Gated only where parallelism can physically pay — on a
# single-CPU host w4/w1 hovers around 1.0 by construction and the gate
# would measure the scheduler, not the runner.
num_cpu=$(nproc)
w1=$(echo "$bench_out" | awk '/workers=1/ {print $3}')
w4=$(echo "$bench_out" | awk '/workers=4/ {print $3}')
if [ "$num_cpu" -ge 4 ]; then
    speedup=$(awk -v a="$w1" -v b="$w4" 'BEGIN {printf "%.3f", a / b}')
    echo "trials_speedup_w4 = $speedup (w1 ${w1} ns/op, w4 ${w4} ns/op, $num_cpu CPUs)"
    if awk -v s="$speedup" 'BEGIN {exit !(s < 0.97)}'; then
        echo "multi-core speedup regressed: trials_speedup_w4 = $speedup (gate: >= 0.97 on a >=4-CPU host)" >&2
        exit 1
    fi
else
    echo "trials_speedup_w4 gate skipped: host has $num_cpu CPU(s), needs >= 4"
fi

echo "check.sh: all gates passed"
