#!/usr/bin/env bash
# Repo gate: formatting, vet, shadowlint, build, and race-enabled tests.
#
#   scripts/check.sh            # fast gate (~1 min): races everything but internal/core
#   CHECK_FULL=1 scripts/check.sh  # adds go test -race ./internal/core (~3 min)
#
# Run it from anywhere inside the repo; it cds to the module root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== shadowlint"
go run ./cmd/shadowlint ./...

echo "== go build"
go build ./...

echo "== go test -race (fast packages)"
# internal/core is the full end-to-end world and takes minutes under the
# race detector; every other internal package races in seconds. The
# lint repo test inside this set re-runs shadowlint, so regressions are
# caught twice over.
mapfile -t fast < <(go list ./internal/... | grep -v '/internal/core$')
go test -race "${fast[@]}"

if [ "${CHECK_FULL:-0}" = "1" ]; then
    echo "== go test -race ./internal/core (full)"
    go test -race ./internal/core
fi

echo "check.sh: all gates passed"
