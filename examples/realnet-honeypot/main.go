// Real-network honeypot: starts the authoritative DNS server and honey
// website on loopback sockets, plays the role of a traffic-shadowing
// exhibitor against them (a DNS lookup followed by an HTTP path-
// enumeration probe), and prints the resulting capture log — the same
// servers cmd/honeypotd runs for real deployments.
//
//	go run ./examples/realnet-honeypot
package main

import (
	"fmt"
	"net"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/wire"
)

func main() {
	hp := honeypot.NewRealNet("experiment.domain", "LOOPBACK", []wire.Addr{wire.MustParseAddr("127.0.0.1")})
	hp.Clock = time.Now
	dnsAddr, httpAddr, err := hp.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer hp.Close()
	fmt.Printf("honeypot listening: DNS %s, HTTP %s\n\n", dnsAddr, httpAddr)

	// Forge a decoy-style experiment domain.
	codec := identifier.NewCodec(time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC))
	label, err := codec.Encode(identifier.ID{
		Time: time.Date(2024, 3, 2, 12, 0, 0, 0, time.UTC),
		VP:   wire.MustParseAddr("100.64.0.1"),
		Dst:  wire.MustParseAddr("77.88.8.8"),
		TTL:  64, Nonce: 1234,
	})
	if err != nil {
		panic(err)
	}
	domain := label + ".www.experiment.domain"
	fmt.Printf("playing a shadowing exhibitor re-using retained domain:\n  %s\n\n", domain)

	// 1. The exhibitor resolves the retained name (arrives at our auth).
	conn, err := net.Dial("udp", dnsAddr)
	if err != nil {
		panic(err)
	}
	q := dnswire.NewQuery(9, domain, dnswire.TypeA)
	payload, _ := q.Encode()
	conn.Write(payload)
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, err := conn.Read(buf)
	conn.Close()
	if err != nil {
		panic(err)
	}
	resp, _ := dnswire.Decode(buf[:n])
	fmt.Printf("DNS answer: %d A record(s), first -> %s\n", len(resp.Answers), resp.Answers[0].Addr)

	// 2. It then probes the honey website with a path-enumeration request.
	tc, err := net.Dial("tcp", httpAddr)
	if err != nil {
		panic(err)
	}
	tc.Write(httpwire.NewGET(domain, "/wp-login.php").Encode())
	tc.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, _ = tc.Read(buf)
	tc.Close()
	httpResp, _ := httpwire.ParseResponse(buf[:n])
	fmt.Printf("HTTP answer: %d %s\n\n", httpResp.StatusCode, httpResp.Status)

	// 3. The honeypot logged both arrivals — with the identifier decoded.
	fmt.Println("capture log:")
	for _, c := range hp.Log.Snapshot() {
		fmt.Printf("  %-4s from %-21s domain=%s path=%s\n", c.Protocol, c.Source, c.Domain, c.HTTPPath)
		if c.Label != "" {
			if id, err := codec.Decode(c.Label); err == nil {
				fmt.Printf("        identifier: sent %s from VP %s toward %s (TTL %d)\n",
					id.Time.Format(time.RFC3339), id.VP, id.Dst, id.TTL)
			}
		}
	}
}
