// Mitigations: reproduce the paper's Discussion-section analysis — what do
// TLS Encrypted Client Hello and DNS-over-HTTPS actually change about
// traffic shadowing? (Spoiler, per the paper: the wire goes dark, the
// destinations keep collecting.)
//
//	go run ./examples/mitigations
package main

import (
	"fmt"

	"shadowmeter"
)

func main() {
	fmt.Println("running three mini-campaigns in identical worlds (seed 11)...")
	results := shadowmeter.MitigationStudy(11)
	fmt.Println()
	fmt.Println(shadowmeter.RenderMitigationStudy(results))

	var base, ech, doh, odoh shadowmeter.MitigationResult
	for _, r := range results {
		switch r.Mode {
		case shadowmeter.MitigationNone:
			base = r
		case shadowmeter.MitigationECH:
			ech = r
		case shadowmeter.MitigationDoH:
			doh = r
		case shadowmeter.MitigationODoH:
			odoh = r
		}
	}
	fmt.Printf("on-wire extractions eliminated by ECH: %d -> %d\n", base.OnWireObservations, ech.OnWireObservations)
	fmt.Printf("destination shadowing surviving ECH:   %d problematic paths\n", ech.ProblematicPaths)
	fmt.Printf("resolver shadowing surviving DoH:      %d problematic paths, %d events\n",
		doh.ProblematicPaths, doh.UnsolicitedEvents)
	fmt.Printf("origin visibility under ODoH:          %d distinct clients -> %d (the relay)\n",
		base.DistinctClientsSeen, odoh.DistinctClientsSeen)
}
