// Locate observers: a minimal, fully hand-wired demonstration of Phase II.
// We build a 6-router path, plant a DPI exhibitor at hop 4, run the
// hop-by-hop TTL sweep, and show how the minimum leaking TTL plus ICMP
// evidence pins the observer to its exact router — without ever reading
// the device's state.
//
//	go run ./examples/locate-observers
package main

import (
	"fmt"
	"time"

	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/observer"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/traceroute"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

func main() {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

	// A 6-hop path from the vantage point to a web server.
	routers := make([]*netsim.Router, 6)
	for i := range routers {
		routers[i] = &netsim.Router{
			Name: fmt.Sprintf("r%d", i+1),
			Addr: wire.AddrFrom(10, 0, byte(i+1), 1),
		}
	}
	n := netsim.New(netsim.Config{Start: start, Path: func(src, dst wire.Addr) []*netsim.Router {
		return routers
	}})

	// Honeypot: authoritative DNS + honey website.
	registry := resolversim.NewRegistry()
	codec := identifier.NewCodec(start)
	sites := []*honeypot.Site{{
		Location: "US",
		AuthAddr: wire.MustParseAddr("198.51.100.1"),
		WebAddr:  wire.MustParseAddr("198.51.100.2"),
	}}
	hp := honeypot.Deploy(n, honeypot.Config{Zone: "experiment.domain", Codec: codec}, sites, registry)

	// The destination web server (never shadows).
	web := netsim.NewHost(n, wire.MustParseAddr("203.0.113.80"))
	web.ServeTCP(80, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		return []byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	})

	// GROUND TRUTH: a DPI device at hop 4 sniffing HTTP Host headers and
	// resolving every newly-observed domain via the honeypot's auth server.
	origin := observer.Origin{
		Host:     netsim.NewHost(n, wire.MustParseAddr("192.0.2.66")),
		Resolver: sites[0].AuthAddr,
	}
	observer.NewDevice(observer.Profile{
		Name:          "demo-dpi",
		Watch:         map[decoy.Protocol]bool{decoy.HTTP: true},
		OncePerDomain: true,
		Rules: []observer.ProbeRule{{
			Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 1},
			Delay: observer.DelayDist{Ranges: []observer.DelayRange{{Min: 2 * time.Hour, Max: 2 * time.Hour, Weight: 1}}},
		}},
	}, []observer.Origin{origin}, 99, routers[3])
	fmt.Println("ground truth: DPI exhibitor planted at hop 4 (the pipeline below never reads it)")

	// The vantage point and the measurement pipeline.
	prov := &vantage.Provider{Name: "demo", Market: vantage.Global}
	vpAddr := wire.MustParseAddr("100.64.0.1")
	vp := &vantage.VP{Provider: prov, Host: netsim.NewHost(n, vpAddr), Addr: vpAddr}

	gen := decoy.NewGenerator("experiment.domain", start)
	engine := traceroute.NewEngine(gen)
	engine.MaxTTL = 12

	// Phase II: TTL sweep toward the web server over HTTP.
	dst := wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.80"), Port: 80}
	sweep, err := engine.Sweep(n, vp, dst, decoy.HTTP)
	if err != nil {
		panic(err)
	}
	n.RunUntilIdle()

	// Correlate: which probe labels re-appeared at the honeypot?
	corr := correlate.New(codec)
	for _, p := range sweep.Probes {
		corr.AddSent(&correlate.Sent{
			Label: p.Label, Domain: p.Domain, Protocol: decoy.HTTP,
			VP: vp.Addr, Dst: dst, DstName: "demo-web", Time: p.SentAt, TTL: p.TTL,
			Phase: correlate.PhaseII,
		})
	}
	events := corr.Classify(hp.Log.Snapshot())
	fmt.Printf("honeypot captured %d unsolicited requests bearing sweep identifiers\n\n", len(events))

	res := traceroute.Analyze(sweep, correlate.LeakedLabels(events))
	fmt.Printf("sweep evidence (destination %d hops away):\n", res.DestDistance)
	leaked := correlate.LeakedLabels(events)
	labels := sweep.Labels()
	for ttl := 1; ttl <= 8; ttl++ {
		mark := " "
		for label, lt := range labels {
			if int(lt) == ttl && leaked[label] {
				mark = "LEAKED"
			}
		}
		hop := sweep.HopAddr(ttl)
		hopStr := "(destination reached)"
		if !hop.IsZero() {
			hopStr = hop.String()
		}
		fmt.Printf("  TTL %2d  hop %-20s %s\n", ttl, hopStr, mark)
	}

	fmt.Printf("\n==> observer located at hop %d (router %s), normalized position %d/10\n",
		res.ObserverHop, res.ObserverAddr, res.NormalizedHop)
	if res.ObserverHop == 4 {
		fmt.Println("    matches the planted ground truth exactly.")
	}

	// Bonus: decode one leaked identifier to show what it carries.
	for label := range leaked {
		id, err := codec.Decode(label)
		if err == nil {
			fmt.Printf("\nsample leaked identifier %q decodes to:\n", label)
			fmt.Printf("    sent %s from VP %s toward %s with initial TTL %d\n",
				id.Time.Format(time.RFC3339), id.VP, id.Dst, id.TTL)
		}
		break
	}
}
