// DNS shadowing deep-dive: send one batch of DNS decoys toward every
// public resolver of Table 4 and watch how different operators treat the
// retained query names — immediate benign retries, next-day re-queries,
// or full HTTP probing campaigns against the honey website.
//
//	go run ./examples/dns-shadowing
package main

import (
	"fmt"
	"sort"
	"time"

	"shadowmeter/internal/core"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/stats"
)

func main() {
	cfg := core.Config{
		Seed:                 7,
		VPsPerGlobalProvider: 6,
		VPsPerCNProvider:     4,
		WebSites:             20, // we only care about DNS here
		DNSRounds:            3,
	}
	e := core.NewExperiment(cfg)
	e.ScreenPairResolvers()
	fmt.Printf("platform: %d VPs after screening; sending DNS decoys to %d destinations...\n",
		len(e.World.Platform.VPs), len(e.World.DNSDests))
	e.RunPhaseI()

	// Group unsolicited events by destination resolver.
	type agg struct {
		events   int
		subMin   int
		afterDay int
		http     int
	}
	byDst := map[string]*agg{}
	for _, u := range e.EventsPhaseI {
		if u.Sent.Protocol != decoy.DNS {
			continue
		}
		g := byDst[u.Sent.DstName]
		if g == nil {
			g = &agg{}
			byDst[u.Sent.DstName] = g
		}
		g.events++
		if u.Delay < time.Minute {
			g.subMin++
		}
		if u.Delay > 24*time.Hour {
			g.afterDay++
		}
		if u.Capture.Protocol == decoy.HTTP || u.Capture.Protocol == decoy.TLS {
			g.http++
		}
	}

	names := make([]string, 0, len(byDst))
	for n := range byDst {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return byDst[names[i]].events > byDst[names[j]].events })

	tb := stats.NewTable("\nUnsolicited requests triggered by DNS decoys, per destination",
		"Destination", "Events", "<1min", ">1day", "HTTP(S) probes")
	for _, n := range names {
		g := byDst[n]
		tb.AddRow(n, g.events,
			stats.FormatPercent(float64(g.subMin)/float64(g.events)),
			stats.FormatPercent(float64(g.afterDay)/float64(g.events)),
			g.http)
	}
	fmt.Println(tb.String())

	fmt.Println("reading the table:")
	fmt.Println(" - most resolvers only repeat queries within seconds (benign retries);")
	fmt.Println(" - Resolver_h members (Yandex, 114DNS, OneDNS, DNSPAI, VERCARA) re-use")
	fmt.Println("   names hours or days later, and Yandex/114DNS probe the honey site")
	fmt.Println("   over HTTP(S) — the paper's Section 5.1 case studies;")
	fmt.Println(" - roots, TLDs and the self-built control resolver never re-appear.")

	// Show a few concrete late HTTP probes.
	fmt.Println("\nsample unsolicited HTTP probes (DNS decoy -> later HTTP fetch):")
	shown := 0
	for _, u := range e.EventsPhaseI {
		if u.Combination != "DNS-HTTP" || shown >= 5 {
			continue
		}
		fmt.Printf("  %s after %-14s GET %-16s from %s\n",
			u.Sent.DstName, u.Delay.Truncate(time.Minute), u.Capture.HTTPPath, u.Capture.Source.Addr)
		shown++
	}
}
