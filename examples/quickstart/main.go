// Quickstart: run the complete traffic-shadowing experiment at small scale
// and print the headline findings — the fastest way to see the library
// reproduce the paper's results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"shadowmeter"
)

func main() {
	fmt.Println("running the full experiment (small scale, seed 1)...")
	report := shadowmeter.Run(shadowmeter.Config{Seed: 1})

	fmt.Println()
	fmt.Println("=== headline findings ===")
	fmt.Printf("problematic-path ratio toward Yandex:  %.0f%%\n", report.DestRatios["Yandex"]*100)
	fmt.Printf("problematic-path ratio toward Google:  %.0f%%\n", report.DestRatios["Google"]*100)
	fmt.Printf("problematic-path ratio toward a.root:  %.0f%%\n", report.DestRatios["a.root"]*100)
	fmt.Println()

	for _, row := range report.Table2 {
		fmt.Printf("%-4s observers at destination: %.1f%%  (mid-path: %.1f%%)\n",
			row.Protocol, row.Share[9], 100-row.Share[9])
	}
	fmt.Println()
	fmt.Printf("distinct on-wire observer addresses: %d (%.0f%% in CN)\n",
		report.TotalObserverAddrs(), report.CNObserverFraction()*100)
	fmt.Printf("decoys with >3 unsolicited requests after 1h: %.0f%%\n",
		report.MultiUse.FractionOver3*100)
	fmt.Printf("Yandex DNS decoys re-appearing over HTTP/HTTPS: %.0f%%\n",
		report.HTTPishShare["Yandex"]*100)
	fmt.Printf("exploit payloads in unsolicited traffic: %d (paper found none)\n",
		report.Incentives51.ExploitMatches+report.Incentives52.ExploitMatches)
	fmt.Println()
	fmt.Println("run `go run ./cmd/shadowmeter` for the full table/figure report.")
}
