package shadowmeter_test

import (
	"strings"
	"testing"

	"shadowmeter"
)

// TestPublicAPI exercises the façade exactly as the README shows it.
func TestPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	report := shadowmeter.Run(shadowmeter.Config{
		Seed:                 3,
		VPsPerGlobalProvider: 4,
		VPsPerCNProvider:     2,
		WebSites:             60,
		DNSRounds:            2,
		MaxSweepsPerProtocol: 120,
	})
	out := report.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Figure 7") {
		t.Fatalf("incomplete report:\n%.400s", out)
	}
	if report.DestRatios["Yandex"] == 0 {
		t.Error("no Yandex shadowing recovered through the public API")
	}
}

// TestStepwiseAPI drives the phases individually.
func TestStepwiseAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	e := shadowmeter.NewExperiment(shadowmeter.Config{
		Seed:                 4,
		VPsPerGlobalProvider: 3,
		VPsPerCNProvider:     2,
		WebSites:             40,
		DNSRounds:            1,
		MaxSweepsPerProtocol: 60,
	})
	e.ScreenPairResolvers()
	e.RunPhaseI()
	if len(e.EventsPhaseI) == 0 {
		t.Fatal("phase I produced no unsolicited events")
	}
	e.RunPhaseII()
	report := e.Compile()
	if report.Figure4.N() == 0 {
		t.Error("no temporal data compiled")
	}
}
