// Benchmark harness: one benchmark per table and figure of the paper.
//
// Each benchmark regenerates its artifact from a shared experiment run
// (the expensive campaign executes once; the benchmark measures the
// analysis/rendering stage and prints the regenerated rows/series on the
// first iteration). Run with:
//
//	go test -bench=. -benchmem
//
// The printed output is the reproduction: compare it against the paper
// using EXPERIMENTS.md's per-experiment index.
package shadowmeter_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"shadowmeter"

	"shadowmeter/internal/analysis"
	"shadowmeter/internal/core"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/stats"
	"shadowmeter/internal/traceroute"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

var (
	expOnce   sync.Once
	sharedExp *core.Experiment
	sharedRep *shadowmeter.Report
)

// experiment runs the shared campaign once for all benchmarks.
func experiment(b *testing.B) (*core.Experiment, *shadowmeter.Report) {
	b.Helper()
	expOnce.Do(func() {
		e := core.NewExperiment(core.Config{Seed: 42})
		e.ScreenPairResolvers()
		e.RunPhaseI()
		e.RunPhaseII()
		sharedExp = e
		sharedRep = e.Compile()
	})
	return sharedExp, sharedRep
}

func printOnce(b *testing.B, i int, format string, args ...interface{}) {
	if i == 0 && !testing.Short() {
		b.Logf(format, args...)
	}
}

// BenchmarkTable1_PlatformCapabilities regenerates Table 1: the VPN
// measurement platform's providers/IPs/ASes/regions split.
func BenchmarkTable1_PlatformCapabilities(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := e.World.Platform.Capabilities()
		if len(rows) != 3 {
			b.Fatal("table 1 shape")
		}
		printOnce(b, i, "Table 1: %+v", rows)
	}
}

// BenchmarkFigure3_ProblematicPaths regenerates Figure 3: ratio of
// problematic client-server paths per VP country and protocol.
func BenchmarkFigure3_ProblematicPaths(b *testing.B) {
	e, _ := experiment(b)
	an := &analysis.Analyzer{Geo: e.World.Topo.Geo, Blocklist: e.World.Blocklist, Signatures: e.World.Signatures}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := an.Figure3(e.EventsPhaseI, e.Universe)
		if len(rows) == 0 {
			b.Fatal("no figure 3 rows")
		}
		printOnce(b, i, "Figure 3 (first rows): %+v", rows[:3])
	}
}

// BenchmarkTable2_ObserverLocation regenerates Table 2: normalized
// observer positions per protocol from Phase II evidence.
func BenchmarkTable2_ObserverLocation(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table2(e.SweepResults)
		if len(rows) == 0 {
			b.Fatal("no table 2 rows")
		}
		printOnce(b, i, "\n%s", analysis.RenderTable2(rows))
	}
}

// BenchmarkTable3_ObserverASes regenerates Table 3: top networks of
// on-path observers from ICMP-revealed addresses.
func BenchmarkTable3_ObserverASes(b *testing.B) {
	e, _ := experiment(b)
	an := &analysis.Analyzer{Geo: e.World.Topo.Geo}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, addrs := an.Table3(e.SweepResults, 3)
		if len(rows) == 0 {
			b.Fatal("no table 3 rows")
		}
		printOnce(b, i, "\n%s(distinct observers: %d protocols)", analysis.RenderTable3(rows), len(addrs))
	}
}

// BenchmarkFigure4_DNSTemporalCDF regenerates Figure 4: the CDF of
// decoy-to-unsolicited intervals for DNS decoys to Resolver_h.
func BenchmarkFigure4_DNSTemporalCDF(b *testing.B) {
	e, _ := experiment(b)
	rh := map[string]bool{}
	for _, n := range resolversim.ResolverH {
		rh[n] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cdf := analysis.DelayCDF(e.EventsPhaseI, decoy.DNS, rh)
		if cdf.N() == 0 {
			b.Fatal("empty CDF")
		}
		printOnce(b, i, "Figure 4: n=%d <=1min:%.2f <=1d:%.2f <=10d:%.2f",
			cdf.N(), cdf.At(60), cdf.At(86400), cdf.At(10*86400))
	}
}

// BenchmarkFigure5_ProtocolBreakdown regenerates Figure 5: per-destination
// combination x delay-bucket breakdown for DNS decoys.
func BenchmarkFigure5_ProtocolBreakdown(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, perDst := analysis.Figure5(e.EventsPhaseI)
		if len(cells) == 0 || len(perDst) == 0 {
			b.Fatal("empty figure 5")
		}
		printOnce(b, i, "Figure 5: %d cells over %d destinations", len(cells), len(perDst))
	}
}

// BenchmarkFigure6_OriginASes regenerates Figure 6: origin ASes of
// unsolicited DNS queries plus blocklist overlap.
func BenchmarkFigure6_OriginASes(b *testing.B) {
	e, _ := experiment(b)
	an := &analysis.Analyzer{Geo: e.World.Topo.Geo, Blocklist: e.World.Blocklist}
	rh := map[string]bool{}
	for _, n := range resolversim.ResolverH {
		rh[n] = true
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reports := an.Figure6(e.EventsPhaseI, rh, 6)
		if len(reports) == 0 {
			b.Fatal("no figure 6 reports")
		}
		printOnce(b, i, "Figure 6: %d destinations, first=%+v", len(reports), reports[0].TopASes[0])
	}
}

// BenchmarkFigure7_HTTPTLSTemporalCDF regenerates Figure 7: retention
// intervals for HTTP and TLS decoys.
func BenchmarkFigure7_HTTPTLSTemporalCDF(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		http := analysis.DelayCDF(e.EventsPhaseI, decoy.HTTP, nil)
		tls := analysis.DelayCDF(e.EventsPhaseI, decoy.TLS, nil)
		if http.N() == 0 || tls.N() == 0 {
			b.Fatal("empty figure 7")
		}
		printOnce(b, i, "Figure 7: HTTP n=%d <=1d:%.2f; TLS n=%d <=1d:%.2f",
			http.N(), http.At(86400), tls.N(), tls.At(86400))
	}
}

// BenchmarkTable4_DNSDestinations regenerates Table 4: the DNS destination
// list (20 public resolvers, control, 13 roots, 2 TLDs).
func BenchmarkTable4_DNSDestinations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("Table 4", "Type", "Name", "IP")
		for _, r := range resolversim.PublicResolvers {
			tb.AddRow("Public resolver", r.Name, r.Addr.String())
		}
		for _, r := range resolversim.RootServers {
			tb.AddRow("Root", r.Name, r.Addr.String())
		}
		for _, t := range resolversim.TLDServers {
			tb.AddRow("TLD", "."+t.Zone, t.Addr.String())
		}
		if tb.NumRows() != 35 {
			b.Fatal("table 4 shape")
		}
	}
}

// BenchmarkTable5_VPNProviders regenerates Table 5: the VPN provider
// listing (screening foils excluded).
func BenchmarkTable5_VPNProviders(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("Table 5", "Market", "Provider", "URL")
		kept := 0
		for _, p := range vantage.Providers {
			if p.ResetsTTL || p.Residential {
				continue
			}
			tb.AddRow(p.Market.String(), p.Name, p.URL)
			kept++
		}
		if kept != 19 {
			b.Fatal("table 5 shape")
		}
	}
}

// BenchmarkTable6_PlatformSurvey regenerates Table 6: the measurement
// platform capability matrix (this platform's row).
func BenchmarkTable6_PlatformSurvey(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := stats.NewTable("Table 6 (this work's row)",
			"Platform", "VolunteerFree", "Resi", "#VP", "CC", "AS", "DNS", "HTTP", "TLS", "TTL")
		caps := e.World.Platform.Capabilities()
		tb.AddRow("This work", "yes", "no", caps[2].IPs,
			len(e.World.Platform.CountryCodes()), caps[2].ASes, "yes", "yes", "yes", "yes")
		if tb.NumRows() != 1 {
			b.Fatal("table 6 shape")
		}
	}
}

// BenchmarkSection51_MultiUse regenerates the §5.1 multi-use statistic
// (decoys with >3 / >10 unsolicited requests an hour after emission).
func BenchmarkSection51_MultiUse(b *testing.B) {
	e, _ := experiment(b)
	rh := map[string]bool{}
	for _, n := range resolversim.ResolverH {
		rh[n] = true
	}
	_ = rh
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := analysis.MultiUseStats(e.EventsPhaseI, time.Hour)
		if m.DecoysWithLateEvents == 0 {
			b.Fatal("no multi-use data")
		}
		printOnce(b, i, "§5.1 multi-use: >3=%.2f >10=%.2f", m.FractionOver3, m.FractionOver10)
	}
}

// BenchmarkSection51_ProbingIncentives regenerates the §5.1 payload
// analysis: enumeration share, exploit matches, blocklist overlap.
func BenchmarkSection51_ProbingIncentives(b *testing.B) {
	e, _ := experiment(b)
	an := &analysis.Analyzer{Geo: e.World.Topo.Geo, Blocklist: e.World.Blocklist, Signatures: e.World.Signatures}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc := an.ProbingIncentives(e.EventsPhaseI, decoy.DNS)
		if inc.ExploitMatches != 0 {
			b.Fatal("exploits found; paper found none")
		}
		printOnce(b, i, "§5.1 incentives: enum=%.2f blockHTTP=%.2f blockHTTPS=%.2f",
			inc.EnumerationFraction, inc.HTTPBlocklisted, inc.HTTPSBlocklisted)
	}
}

// BenchmarkSection52_ObserverBehaviour regenerates the §5.2 per-AS
// behaviour summary and top-5 coverage.
func BenchmarkSection52_ObserverBehaviour(b *testing.B) {
	_, r := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cov := analysis.TopNCoverage(r.Behaviours, 5)
		if len(r.Behaviours) > 0 && cov == 0 {
			b.Fatal("no coverage")
		}
		printOnce(b, i, "§5.2 top-5 coverage: %.2f over %d ASes", cov, len(r.Behaviours))
	}
}

// BenchmarkSection52_ProbingIncentives regenerates the §5.2 payload
// analysis for HTTP/TLS decoys.
func BenchmarkSection52_ProbingIncentives(b *testing.B) {
	e, _ := experiment(b)
	an := &analysis.Analyzer{Geo: e.World.Topo.Geo, Blocklist: e.World.Blocklist, Signatures: e.World.Signatures}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inc := an.ProbingIncentives(e.EventsPhaseI, decoy.HTTP)
		printOnce(b, i, "§5.2 incentives (HTTP decoys): enum=%.2f", inc.EnumerationFraction)
	}
}

// BenchmarkAppendixE_NoiseMitigation regenerates the Appendix E screening
// outcome: pair-resolver interception removal plus provider exclusions.
func BenchmarkAppendixE_NoiseMitigation(b *testing.B) {
	e, _ := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		excluded := e.World.Platform.Excluded()
		if len(excluded) != 2 {
			b.Fatal("screening foils not excluded")
		}
		printOnce(b, i, "Appendix E: %d providers excluded, %d VPs removed by pair-resolver test",
			len(excluded), e.PairReport.Removed)
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblation_IdentifierCodec measures the identifier encode+decode
// round trip — the per-decoy overhead of the correlation design.
func BenchmarkAblation_IdentifierCodec(b *testing.B) {
	codec := identifier.NewCodec(time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC))
	id := identifier.ID{
		Time: time.Date(2024, 3, 10, 0, 0, 0, 0, time.UTC),
		VP:   wire.AddrFrom(100, 64, 0, 1), Dst: wire.AddrFrom(77, 88, 8, 8), TTL: 64,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id.Nonce = uint16(i)
		label, err := codec.Encode(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(label); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_TracerouteMaxTTL measures sweep cost as a function of
// the TTL ceiling (the paper uses 64; the simulated world needs ~24).
func BenchmarkAblation_TracerouteMaxTTL(b *testing.B) {
	for _, maxTTL := range []int{8, 24, 64} {
		b.Run(fmt.Sprintf("ttl%d", maxTTL), func(b *testing.B) {
			benchSweep(b, maxTTL)
		})
	}
}

func benchSweep(b *testing.B, maxTTL int) {
	start := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	e := core.NewExperiment(core.Config{
		Seed: 9, VPsPerGlobalProvider: 1, VPsPerCNProvider: 1, WebSites: 10,
		DNSRounds: 1, TracerouteMaxTTL: maxTTL,
	})
	vp := e.World.Platform.VPs[0]
	gen := decoy.NewGenerator("bench.zone", start)
	engine := traceroute.NewEngine(gen)
	engine.MaxTTL = maxTTL
	dst := wire.Endpoint{Addr: resolversim.PublicResolvers[0].Addr, Port: 53}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Sweep(e.World.Net, vp, dst, decoy.DNS); err != nil {
			b.Fatal(err)
		}
		e.World.Net.RunUntilIdle()
	}
}

// BenchmarkAblation_ClassificationThroughput measures honeypot-log
// classification over the full campaign's capture volume.
func BenchmarkAblation_ClassificationThroughput(b *testing.B) {
	e, _ := experiment(b)
	caps := e.World.Honeypots.Log.Snapshot()
	codec := identifier.NewCodec(e.World.Cfg.Start)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh correlator each iteration: classification is stateful.
		c := freshCorrelator(e, codec)
		c.Classify(caps)
	}
	b.SetBytes(int64(len(caps)))
}

// freshCorrelator rebuilds a correlator carrying the same send log.
func freshCorrelator(e *core.Experiment, codec *identifier.Codec) *correlate.Correlator {
	c := correlate.New(codec)
	seen := make(map[string]bool)
	for _, cap := range e.World.Honeypots.Log.Snapshot() {
		if cap.Label == "" || seen[cap.Label] {
			continue
		}
		seen[cap.Label] = true
		if s, ok := e.Correlator.SentByLabel(cap.Label); ok {
			c.AddSent(s)
		}
	}
	return c
}

// BenchmarkFullReportRender measures rendering the entire report.
func BenchmarkFullReportRender(b *testing.B) {
	_, r := experiment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(r.Render()) == 0 {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkAblation_Mitigations runs the Discussion-section mitigation
// study (baseline vs TLS+ECH vs DNS-over-HTTPS).
func BenchmarkAblation_Mitigations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results := core.MitigationStudy(11)
		if len(results) != 4 {
			b.Fatal("study shape")
		}
		printOnce(b, i, "\n%s", core.RenderMitigationStudy(results))
	}
}
