package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// formatFloat renders a float deterministically (shortest round-trip
// form, matching strconv across platforms).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshalling a string never fails; keep the export total anyway.
		return `"?"`
	}
	return string(b)
}

// ExportJSON renders the whole Set — metrics and span aggregates — as
// one JSON object with stable key order. The object is built by hand
// (sorted names, deterministic float formatting) so identical runs emit
// byte-identical payloads: diffing two exports IS the determinism test.
func (s *Set) ExportJSON() []byte {
	var b bytes.Buffer
	b.WriteString("{\n  \"metrics\": {")
	metrics := s.Registry.Snapshot()
	for i, m := range metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.WriteString(jsonString(m.Name))
		b.WriteString(": ")
		writeMetricJSON(&b, m)
	}
	if len(metrics) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("},\n  \"spans\": {")
	spans := s.Tracer.Summary()
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    %s: {\"count\": %d, \"events\": %d, \"virtual_seconds\": %s}",
			jsonString(sp.Name), sp.Count, sp.Events, formatFloat(sp.Total.Seconds()))
	}
	if len(spans) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("}\n}\n")
	return b.Bytes()
}

func writeMetricJSON(b *bytes.Buffer, m Metric) {
	switch {
	case m.Hist != nil:
		fmt.Fprintf(b, "{\"count\": %d, \"sum\": %s, \"buckets\": {", m.Hist.Count, formatFloat(m.Hist.Sum))
		for i, c := range m.Hist.Counts {
			if i > 0 {
				b.WriteString(", ")
			}
			bound := "+Inf"
			if i < len(m.Hist.Bounds) {
				bound = formatFloat(m.Hist.Bounds[i])
			}
			fmt.Fprintf(b, "%s: %d", jsonString(bound), c)
		}
		b.WriteString("}}")
	case m.LabelName != "":
		b.WriteByte('{')
		for i, c := range m.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%s: %d", jsonString(c.Label), c.Value)
		}
		b.WriteByte('}')
	default:
		fmt.Fprintf(b, "%d", m.Value)
	}
}

// WriteText renders a human-readable summary table of all metrics and
// span aggregates, in the same deterministic order as ExportJSON.
func (s *Set) WriteText(w io.Writer) {
	fmt.Fprintf(w, "telemetry summary\n-----------------\n")
	for _, m := range s.Registry.Snapshot() {
		switch {
		case m.Hist != nil:
			fmt.Fprintf(w, "%-9s %-44s count=%d sum=%s\n", "histogram", m.Name, m.Hist.Count, formatFloat(m.Hist.Sum))
			cum := int64(0)
			for i, c := range m.Hist.Counts {
				if c == 0 {
					cum += c
					continue
				}
				cum += c
				bound := "+Inf"
				if i < len(m.Hist.Bounds) {
					bound = formatFloat(m.Hist.Bounds[i])
				}
				fmt.Fprintf(w, "%-9s   le %-8s %12d (cum %d)\n", "", bound, c, cum)
			}
		case m.LabelName != "":
			for _, c := range m.Children {
				fmt.Fprintf(w, "%-9s %-44s %12d\n", m.Kind, fmt.Sprintf("%s{%s=%s}", m.Name, m.LabelName, c.Label), c.Value)
			}
			if len(m.Children) == 0 {
				fmt.Fprintf(w, "%-9s %-44s %12s\n", m.Kind, m.Name+"{"+m.LabelName+"=...}", "(empty)")
			}
		default:
			fmt.Fprintf(w, "%-9s %-44s %12d\n", m.Kind, m.Name, m.Value)
		}
	}
	spans := s.Tracer.Summary()
	if len(spans) == 0 {
		return
	}
	fmt.Fprintf(w, "\nspans (virtual time)\n--------------------\n")
	for _, sp := range spans {
		fmt.Fprintf(w, "%-30s count=%-6d events=%-8d total=%s\n", sp.Name, sp.Count, sp.Events, sp.Total)
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, labeled children, and
// cumulative histogram buckets.
func (s *Set) WritePrometheus(w io.Writer) {
	WritePrometheusMetrics(w, s.Registry.Snapshot())
}

// WritePrometheusMetrics renders an exported metric slice — a registry
// snapshot or a MergeSnapshots result — in the Prometheus text format.
// The watch plane serves merged-so-far campaign metrics through this.
func WritePrometheusMetrics(w io.Writer, metrics []Metric) {
	for _, m := range metrics {
		if m.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind)
		switch {
		case m.Hist != nil:
			cum := int64(0)
			for i, c := range m.Hist.Counts {
				cum += c
				bound := "+Inf"
				if i < len(m.Hist.Bounds) {
					bound = formatFloat(m.Hist.Bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, bound, cum)
			}
			fmt.Fprintf(w, "%s_sum %s\n", m.Name, formatFloat(m.Hist.Sum))
			fmt.Fprintf(w, "%s_count %d\n", m.Name, m.Hist.Count)
		case m.LabelName != "":
			for _, c := range m.Children {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", m.Name, m.LabelName, c.Label, c.Value)
			}
		default:
			fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
	}
}
