package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the streaming half of the observability layer: a bounded,
// sequence-numbered event bus the multi-trial runner publishes campaign
// milestones into (campaign_started, trial_started/finished, worker
// busy/idle transitions, store appends, flight-recorder dumps) and the
// live watch plane (internal/watch, shadowmeter -watch) reads back out.
//
// The bus is deliberately on the *side* of the deterministic pipeline:
// publishers hand over copies, consumers receive copies, and nothing a
// consumer does can block or reorder a trial. Publish never blocks — the
// ring evicts its oldest event and slow subscribers drop — so attaching
// a watcher to a campaign cannot perturb its output (the byte-identical
// batch-JSON contract is CI-enforced with -watch on and off).

// Stream event types, in roughly the order a campaign emits them.
const (
	EventCampaignStarted  = "campaign_started"
	EventWorkerBusy       = "worker_busy"
	EventTrialStarted     = "trial_started"
	EventTrialFinished    = "trial_finished"
	EventWorkerIdle       = "worker_idle"
	EventStoreAppended    = "store_appended"
	EventFlightDump       = "flight_dump"
	EventCampaignFinished = "campaign_finished"
)

// StreamEvent is one bus message. Fields are a union across event types;
// unused ones stay at their zero value and are elided from JSON where
// that cannot be confused with real data. Trial and Worker use -1 for
// "not applicable" because 0 is a valid index for both.
type StreamEvent struct {
	// Seq is the bus-assigned sequence number, dense and strictly
	// increasing per bus. Gaps on the consumer side mean eviction.
	Seq uint64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// WallNS stamps the publish instant (bus clock, Unix nanoseconds).
	WallNS int64 `json:"wall_ns"`

	Trial  int   `json:"trial"`
	Worker int   `json:"worker"`
	Seed   int64 `json:"seed,omitempty"`

	// Completed/Total carry monotonic campaign progress on
	// trial_finished and campaign_* events.
	Completed int `json:"completed,omitempty"`
	Total     int `json:"total,omitempty"`

	// Resumed marks a trial served from the campaign store.
	Resumed bool `json:"resumed,omitempty"`
	// WallSeconds is the trial's wall-clock duration on trial_finished.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// VirtualSeconds is the trial's summed span duration in virtual time.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	// Headline carries the trial's scalar headline stats (campaign
	// totals only — per-country/per-protocol families stay in the batch
	// JSON) on trial_finished.
	Headline map[string]float64 `json:"headline,omitempty"`
	// LogOffset/LogBytes locate the persisted record's frame in the
	// campaign log on store_appended events. LogBytes > 0 marks the
	// pair as present (the first record legitimately lands at offset 0).
	LogOffset int64 `json:"log_offset,omitempty"`
	LogBytes  int64 `json:"log_bytes,omitempty"`
	// Detail is a free-form annotation (flight-dump reason, store path).
	Detail string `json:"detail,omitempty"`
}

// DefaultBusCapacity bounds the ring when NewBus is given no capacity.
const DefaultBusCapacity = 4096

// BusStats is a snapshot of the bus's self-accounting.
type BusStats struct {
	// Published counts every event ever accepted.
	Published int64 `json:"published"`
	// Evicted counts ring slots overwritten before any poller could have
	// read them at the current capacity (the poll-side drop counter).
	Evicted int64 `json:"evicted"`
	// SubscriberDropped counts events not delivered to some subscriber
	// because its channel was full (the push-side drop counter).
	SubscriberDropped int64 `json:"subscriber_dropped"`
	// Subscribers is the current subscriber count.
	Subscribers int `json:"subscribers"`
}

// Bus is a bounded broadcast ring. Publishing is cheap (one mutex, one
// ring write, one non-blocking send per subscriber) and never blocks;
// overflow is recorded in drop counters instead of backpressure, because
// the publisher is the measurement hot path and the consumers are
// best-effort observers.
type Bus struct {
	// Clock stamps events. Installed by cmd/ binaries (time.Now); nil
	// stamps the zero time. The bus clock feeds only the live plane,
	// never deterministic output.
	clock Clock

	mu      sync.Mutex
	ring    []StreamEvent
	next    uint64 // seq assigned to the next published event
	evicted int64
	subs    map[*Subscriber]bool

	published  atomic.Int64
	subDropped atomic.Int64
}

// NewBus creates a bus with the given ring capacity (<= 0 means
// DefaultBusCapacity) stamping events with clock (nil stamps zero).
func NewBus(clock Clock, capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultBusCapacity
	}
	return &Bus{
		clock: clock,
		ring:  make([]StreamEvent, capacity),
		subs:  make(map[*Subscriber]bool),
	}
}

// Publish assigns the event a sequence number and timestamp, stores it
// in the ring (evicting the oldest event when full), and offers it to
// every subscriber without blocking. It returns the assigned sequence
// number.
func (b *Bus) Publish(ev StreamEvent) uint64 {
	if b.clock != nil {
		ev.WallNS = b.clock().UnixNano()
	}
	b.mu.Lock()
	ev.Seq = b.next
	b.next++
	slot := ev.Seq % uint64(len(b.ring))
	if ev.Seq >= uint64(len(b.ring)) {
		b.evicted++ // the slot held the event len(ring) seqs ago
	}
	b.ring[slot] = ev
	// Deliver under the lock so every subscriber sees events in seq
	// order; the sends are non-blocking, so the critical section stays
	// bounded by the subscriber count.
	for s := range b.subs {
		select {
		case s.c <- ev:
		default:
			s.dropped.Add(1)
			b.subDropped.Add(1)
		}
	}
	b.mu.Unlock()

	b.published.Add(1)
	return ev.Seq
}

// Since returns every retained event with Seq >= seq in order, the
// sequence number to poll from next, and how many requested events were
// already evicted from the ring (0 when the caller kept up).
func (b *Bus) Since(seq uint64) (events []StreamEvent, next uint64, missed uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	oldest := uint64(0)
	if b.next > uint64(len(b.ring)) {
		oldest = b.next - uint64(len(b.ring))
	}
	from := seq
	if from < oldest {
		missed = oldest - from
		from = oldest
	}
	for s := from; s < b.next; s++ {
		events = append(events, b.ring[s%uint64(len(b.ring))])
	}
	return events, b.next, missed
}

// Recent returns up to n of the newest retained events in order.
func (b *Bus) Recent(n int) []StreamEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		return nil
	}
	from := uint64(0)
	if b.next > uint64(n) {
		from = b.next - uint64(n)
	}
	if b.next > uint64(len(b.ring)) && from < b.next-uint64(len(b.ring)) {
		from = b.next - uint64(len(b.ring))
	}
	out := make([]StreamEvent, 0, b.next-from)
	for s := from; s < b.next; s++ {
		out = append(out, b.ring[s%uint64(len(b.ring))])
	}
	return out
}

// Stats snapshots the bus accounting.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	evicted := b.evicted
	subscribers := len(b.subs)
	b.mu.Unlock()
	return BusStats{
		Published:         b.published.Load(),
		Evicted:           evicted,
		SubscriberDropped: b.subDropped.Load(),
		Subscribers:       subscribers,
	}
}

// Subscriber is one push-mode consumer. Read events from C; a full
// channel makes the bus drop (counted), never block.
type Subscriber struct {
	// C delivers events in publish order, minus any dropped.
	C <-chan StreamEvent

	c       chan StreamEvent
	dropped atomic.Int64
}

// Dropped reports how many events this subscriber missed because its
// channel was full at publish time.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Subscribe registers a push consumer with the given channel buffer
// (<= 0 means 64). The caller must Unsubscribe when done.
func (b *Bus) Subscribe(buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = 64
	}
	s := &Subscriber{c: make(chan StreamEvent, buffer)}
	s.C = s.c
	b.mu.Lock()
	b.subs[s] = true
	b.mu.Unlock()
	return s
}

// Unsubscribe removes the subscriber and closes its channel, so a
// consumer ranging over C terminates.
func (b *Bus) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	registered := b.subs[s]
	delete(b.subs, s)
	b.mu.Unlock()
	if registered {
		close(s.c)
	}
}

// wallOf converts an event timestamp back to a time.Time.
func wallOf(ev StreamEvent) time.Time { return time.Unix(0, ev.WallNS) }
