package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Tracer records spans (named intervals) and events stamped with the
// time supplied by its Clock. On the simulation path the clock is
// netsim's virtual time, so a two-month campaign traces as two months of
// virtual duration regardless of wall-clock speed — and traces are
// byte-identical across runs with the same seed.
type Tracer struct {
	// Clock stamps span starts and ends. Nil stamps the zero time (spans
	// still count; durations are zero).
	Clock Clock

	mu   sync.Mutex
	agg  map[string]*SpanStats
	recs []SpanRecord
	// MaxRecords bounds the retained per-span records (aggregates are
	// always kept). 0 means DefaultMaxRecords.
	MaxRecords int
}

// DefaultMaxRecords bounds retained span records unless overridden.
const DefaultMaxRecords = 4096

// SpanStats aggregates all spans of one name.
type SpanStats struct {
	Name   string
	Count  int64
	Events int64
	// Total is the summed span duration in the tracer's time domain
	// (virtual time on the simulation path).
	Total time.Duration
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Name       string
	Start, End time.Time
	Events     int64
}

// NewTracer creates a tracer over clock (nil is allowed; see Clock).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{Clock: clock, agg: make(map[string]*SpanStats)}
}

func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Time{}
}

// Start opens a span. The caller must End it; spans may nest freely
// (they are independent intervals, not a stack).
func (t *Tracer) Start(name string) *Span {
	return &Span{tr: t, name: name, start: t.now()}
}

// Span is one open interval.
type Span struct {
	tr     *Tracer
	name   string
	start  time.Time
	events int64
	done   bool
}

// Event counts one notable occurrence inside the span.
func (s *Span) Event() { s.events++ }

// End closes the span, folds it into the per-name aggregate, and returns
// its duration. Ending twice is a no-op.
func (s *Span) End() time.Duration {
	if s.done {
		return 0
	}
	s.done = true
	end := s.tr.now()
	d := end.Sub(s.start)
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.agg[s.name]
	if !ok {
		st = &SpanStats{Name: s.name}
		t.agg[s.name] = st
	}
	st.Count++
	st.Events += s.events
	st.Total += d
	max := t.MaxRecords
	if max == 0 {
		max = DefaultMaxRecords
	}
	if len(t.recs) < max {
		t.recs = append(t.recs, SpanRecord{Name: s.name, Start: s.start, End: end, Events: s.events})
	}
	return d
}

// Summary returns the per-name aggregates sorted by name.
func (t *Tracer) Summary() []SpanStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStats, 0, len(t.agg))
	for _, st := range t.agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Records returns the retained finished spans in completion order.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.recs...)
}
