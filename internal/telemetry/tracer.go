package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Tracer records spans (named intervals) and events stamped with the
// time supplied by its Clock. On the simulation path the clock is
// netsim's virtual time, so a two-month campaign traces as two months of
// virtual duration regardless of wall-clock speed — and traces are
// byte-identical across runs with the same seed.
type Tracer struct {
	// Clock stamps span starts and ends. Nil stamps the zero time (spans
	// still count; durations are zero).
	Clock Clock

	mu   sync.Mutex
	agg  map[string]*SpanStats
	recs []SpanRecord
	// MaxRecords bounds the retained per-span records (aggregates are
	// always kept). 0 means DefaultMaxRecords.
	MaxRecords int

	// recent is a rolling ring of the last DefaultRecentSpans finished
	// spans — unlike recs, which stops appending once full, the ring
	// always holds the newest spans. It feeds the flight recorder: when
	// a trial is dumped (panic, slow-trial watchdog, SIGQUIT) the ring
	// is the "what was this world doing" record.
	recent     []SpanRecord
	recentNext int
	recentFull bool
}

// DefaultMaxRecords bounds retained span records unless overridden.
const DefaultMaxRecords = 4096

// DefaultRecentSpans sizes the rolling last-N span ring kept for flight
// dumps.
const DefaultRecentSpans = 256

// SpanStats aggregates all spans of one name.
type SpanStats struct {
	Name   string
	Count  int64
	Events int64
	// Total is the summed span duration in the tracer's time domain
	// (virtual time on the simulation path).
	Total time.Duration
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Name       string
	Start, End time.Time
	Events     int64
}

// NewTracer creates a tracer over clock (nil is allowed; see Clock).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{Clock: clock, agg: make(map[string]*SpanStats)}
}

func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Time{}
}

// Start opens a span. The caller must End it; spans may nest freely
// (they are independent intervals, not a stack).
func (t *Tracer) Start(name string) *Span {
	return &Span{tr: t, name: name, start: t.now()}
}

// Span is one open interval.
type Span struct {
	tr     *Tracer
	name   string
	start  time.Time
	events int64
	done   bool
}

// Event counts one notable occurrence inside the span.
func (s *Span) Event() { s.events++ }

// End closes the span, folds it into the per-name aggregate, and returns
// its duration. Ending twice is a no-op.
func (s *Span) End() time.Duration {
	if s.done {
		return 0
	}
	s.done = true
	end := s.tr.now()
	d := end.Sub(s.start)
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.agg[s.name]
	if !ok {
		st = &SpanStats{Name: s.name}
		t.agg[s.name] = st
	}
	st.Count++
	st.Events += s.events
	st.Total += d
	max := t.MaxRecords
	if max == 0 {
		max = DefaultMaxRecords
	}
	rec := SpanRecord{Name: s.name, Start: s.start, End: end, Events: s.events}
	if len(t.recs) < max {
		t.recs = append(t.recs, rec)
	}
	if t.recent == nil {
		t.recent = make([]SpanRecord, DefaultRecentSpans)
	}
	t.recent[t.recentNext] = rec
	t.recentNext++
	if t.recentNext == len(t.recent) {
		t.recentNext, t.recentFull = 0, true
	}
	return d
}

// Summary returns the per-name aggregates sorted by name.
func (t *Tracer) Summary() []SpanStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStats, 0, len(t.agg))
	for _, st := range t.agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Records returns the retained finished spans in completion order.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.recs...)
}

// Recent returns the rolling last-N finished spans in completion order
// (oldest first). Safe to call from any goroutine — the flight recorder
// reads a live world's tracer this way while its event loop runs.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recent == nil {
		return nil
	}
	if !t.recentFull {
		return append([]SpanRecord(nil), t.recent[:t.recentNext]...)
	}
	out := make([]SpanRecord, 0, len(t.recent))
	out = append(out, t.recent[t.recentNext:]...)
	out = append(out, t.recent[:t.recentNext]...)
	return out
}
