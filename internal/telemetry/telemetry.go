// Package telemetry is the observability layer of the measurement
// pipeline: a stdlib-only, allocation-light metrics registry (counters,
// gauges, fixed-bucket histograms), an event tracer stamped with virtual
// netsim time, and a progress reporter driven by simulation-event count.
//
// Determinism is a design constraint, not an afterthought. Metric updates
// on the simulation path are plain integer increments (the event loop is
// single-goroutine); the real-network honeypot path uses the sync/atomic
// variants. The tracer never reads the wall clock — it takes a Clock
// function, and only cmd/ binaries and internal/honeypot's RealNet supply
// time.Now. Exports are emitted in sorted key order, so two runs with the
// same seed produce byte-identical output: the telemetry export doubles as
// a determinism regression test for the whole pipeline.
//
// Three exporters ship: a human-readable summary table (WriteText), a
// single JSON object with stable key order (ExportJSON), and the
// Prometheus text exposition format (WritePrometheus) served by
// cmd/honeypotd.
package telemetry

import "time"

// Clock supplies timestamps to the tracer and progress reporter. On the
// simulation path this is netsim's virtual clock (Network.Now); only
// real-network entry points (cmd/, internal/honeypot RealNet) thread
// time.Now.
type Clock func() time.Time

// Set bundles the three observability objects threaded through one
// pipeline run. A single Set is shared by the network simulator, the
// traceroute engine, the honeypots, the correlator, and the experiment
// driver, so one export covers the whole pipeline.
type Set struct {
	Registry *Registry
	Tracer   *Tracer
	Progress *Progress
}

// NewSet creates an empty Set. The tracer's clock starts unset (spans
// are stamped with the zero time); callers that own a clock — the world
// builder with netsim virtual time, cmd/ tools with time.Now — assign
// Tracer.Clock before starting spans.
func NewSet() *Set {
	return &Set{
		Registry: NewRegistry(),
		Tracer:   NewTracer(nil),
		Progress: &Progress{},
	}
}
