package telemetry

import "time"

// Progress is the periodic heartbeat of a long simulation run, driven by
// simulation-event count rather than wall time: the event loop calls
// Tick once per dispatched event, and every Every events the Sink fires
// with a snapshot. Because the cadence is event-count based, the
// reporting points are deterministic — only the Sink (installed by cmd/
// binaries) touches the wall clock, typically to print a rate.
type Progress struct {
	// Every is the reporting period in events. 0 disables reporting
	// (Tick degrades to a single increment).
	Every int64
	// Sink consumes updates. Nil disables reporting.
	Sink func(Update)

	phase  string
	events int64
}

// Update is one progress snapshot.
type Update struct {
	// Phase is the pipeline phase label set by the driver ("phase1").
	Phase string
	// Events is the total dispatched simulation events so far.
	Events int64
	// Virtual is the simulator's current virtual time.
	Virtual time.Time
	// Pending is the event-queue depth at the reporting point.
	Pending int
}

// SetPhase labels subsequent updates.
func (p *Progress) SetPhase(name string) { p.phase = name }

// Phase reports the current phase label.
func (p *Progress) Phase() string { return p.phase }

// Events reports total ticks so far.
func (p *Progress) Events() int64 { return p.events }

// Tick records one dispatched event and fires the sink on period
// boundaries. Called from the single-goroutine event loop; the fast path
// is one increment and one comparison.
func (p *Progress) Tick(virtual time.Time, pending int) {
	p.events++
	if p.Every <= 0 || p.Sink == nil || p.events%p.Every != 0 {
		return
	}
	p.Sink(Update{Phase: p.phase, Events: p.events, Virtual: virtual, Pending: pending})
}
