package telemetry

import (
	"fmt"
	"io"
	"time"
)

// Progress is the periodic heartbeat of a long simulation run, driven by
// simulation-event count rather than wall time: the event loop calls
// Tick once per dispatched event, and every Every events the Sink fires
// with a snapshot. Because the cadence is event-count based, the
// reporting points are deterministic — only the Sink (installed by cmd/
// binaries) touches the wall clock, typically to print a rate.
type Progress struct {
	// Every is the reporting period in events. 0 disables reporting
	// (Tick degrades to a single increment).
	Every int64
	// Sink consumes updates. Nil disables reporting.
	Sink func(Update)

	phase  string
	events int64
}

// Update is one progress snapshot.
type Update struct {
	// Phase is the pipeline phase label set by the driver ("phase1").
	Phase string
	// Events is the total dispatched simulation events so far.
	Events int64
	// Virtual is the simulator's current virtual time.
	Virtual time.Time
	// Pending is the event-queue depth at the reporting point.
	Pending int
}

// SetPhase labels subsequent updates.
func (p *Progress) SetPhase(name string) { p.phase = name }

// Phase reports the current phase label.
func (p *Progress) Phase() string { return p.phase }

// Events reports total ticks so far.
func (p *Progress) Events() int64 { return p.events }

// Tick records one dispatched event and fires the sink on period
// boundaries. Called from the single-goroutine event loop; the fast path
// is one increment and one comparison.
func (p *Progress) Tick(virtual time.Time, pending int) {
	p.events++
	if p.Every <= 0 || p.Sink == nil || p.events%p.Every != 0 {
		return
	}
	p.Sink(Update{Phase: p.phase, Events: p.events, Virtual: virtual, Pending: pending})
}

// Reporter renders campaign progress from the stream bus: one line per
// newly completed trial, with a wall-clock ETA extrapolated from the
// completion rate. Unlike the event-count Progress above (which paces on
// raw simulation events and so under-reports near slow trials), the
// Reporter is monotonic by construction — trial_finished events carry
// the campaign's completed count, and lines are emitted only when that
// count advances, so dropped or transposed bus events can never make
// progress appear to move backwards.
//
// The Reporter writes to the io.Writer it is given; cmd/ binaries pass
// stderr, keeping progress chatter out of piped JSON output.
type Reporter struct {
	// Bus is the campaign stream to follow.
	Bus *Bus
	// Total is the campaign trial count (for percentages and ETA).
	Total int
	// W receives one line per completion. Callers pass stderr.
	W io.Writer
	// Clock supplies wall time for elapsed/ETA. Nil uses event stamps
	// only.
	Clock Clock

	last int
}

// Run subscribes to the bus and reports until stop closes. It is meant
// to run on its own goroutine; it never blocks the publisher (the bus
// drops on overflow) and the monotonic guard makes drops harmless.
func (r *Reporter) Run(stop <-chan struct{}) {
	sub := r.Bus.Subscribe(256)
	defer r.Bus.Unsubscribe(sub)
	var start time.Time
	if r.Clock != nil {
		start = r.Clock()
	}
	for {
		select {
		case <-stop:
			// Drain what the bus already delivered so the final
			// "trials N/N" line is not lost to the shutdown race.
			for {
				select {
				case ev, ok := <-sub.C:
					if !ok {
						return
					}
					r.maybeReport(ev, start)
				default:
					return
				}
			}
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			r.maybeReport(ev, start)
		}
	}
}

func (r *Reporter) maybeReport(ev StreamEvent, start time.Time) {
	if ev.Type != EventTrialFinished || ev.Completed <= r.last {
		return
	}
	r.last = ev.Completed
	r.report(ev, start)
}

func (r *Reporter) report(ev StreamEvent, start time.Time) {
	total := r.Total
	if total <= 0 {
		total = ev.Total
	}
	now := wallOf(ev)
	if r.Clock != nil {
		now = r.Clock()
	}
	elapsed := now.Sub(start).Seconds()
	if start.IsZero() {
		elapsed = 0
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(ev.Completed) / float64(total)
	}
	line := fmt.Sprintf("progress: trials %d/%d (%.0f%%) elapsed %.1fs",
		ev.Completed, total, pct, elapsed)
	if ev.Completed > 0 && ev.Completed < total && elapsed > 0 {
		eta := elapsed / float64(ev.Completed) * float64(total-ev.Completed)
		line += fmt.Sprintf(" eta %.1fs", eta)
	}
	fmt.Fprintln(r.W, line)
}
