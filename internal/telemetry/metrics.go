package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count, updated lock-free on the
// single-goroutine simulation path. Use AtomicCounter for code that runs
// on real-network goroutines.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be non-negative for the export to stay meaningful).
func (c *Counter) Add(d int64) { c.v += d }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v }

// AtomicCounter is the sync/atomic counter for the real-network honeypot
// path, where captures arrive on concurrent goroutines.
type AtomicCounter struct{ v atomic.Int64 }

// Inc adds one.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *AtomicCounter) Add(d int64) { c.v.Add(d) }

// Value reads the current count.
func (c *AtomicCounter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value (queue depth, fleet size).
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v }

// Histogram is a fixed-bucket distribution. Buckets are defined once at
// registration by their upper bounds; Observe is a linear scan over a
// small bounds slice and never allocates.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (inclusive)
	counts []int64   // len(bounds)+1; the last bucket is +Inf
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// snapshot copies the histogram state.
func (h *Histogram) snapshot() *HistogramSnapshot {
	return &HistogramSnapshot{
		Bounds: h.bounds, // bounds are immutable after registration
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// HistogramSnapshot is an exported copy of a histogram's state. Counts
// are per-bucket (not cumulative); Counts[len(Bounds)] is the +Inf
// bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// CounterVec is a family of counters distinguished by one label value
// (classification rule, router name). Child creation takes a lock; hot
// paths should call With once and cache the returned *Counter.
type CounterVec struct {
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the counter for a label value, creating it on first use.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[label]
	if !ok {
		c = &Counter{}
		v.children[label] = c
	}
	return c
}

// labels returns the registered label values in sorted order.
func (v *CounterVec) labels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.children))
	for l := range v.children {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Kind distinguishes metric families in exports.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Registry holds metrics registered once and updated for the lifetime of
// a run. Registration is idempotent: asking for an existing name with
// the same kind returns the existing handle, so independently constructed
// components can share one registry without coordination. A name re-used
// with a different kind panics — that is a programming error.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

type entry struct {
	name, help, labelName string
	kind                  Kind
	counter               *Counter
	atomicCounter         *AtomicCounter
	gauge                 *Gauge
	hist                  *Histogram
	vec                   *CounterVec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, kind Kind) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, e.kind))
		}
		return e, false
	}
	e := &entry{name: name, help: help, kind: kind}
	r.entries[name] = e
	return e, true
}

// Counter registers (or returns) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	e, fresh := r.register(name, help, KindCounter)
	if fresh {
		e.counter = &Counter{}
	}
	if e.counter == nil {
		panic(fmt.Sprintf("telemetry: counter %q already registered with a different shape", name))
	}
	return e.counter
}

// AtomicCounter registers (or returns) an atomic counter.
func (r *Registry) AtomicCounter(name, help string) *AtomicCounter {
	e, fresh := r.register(name, help, KindCounter)
	if fresh {
		e.atomicCounter = &AtomicCounter{}
	}
	if e.atomicCounter == nil {
		panic(fmt.Sprintf("telemetry: counter %q already registered with a different shape", name))
	}
	return e.atomicCounter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e, fresh := r.register(name, help, KindGauge)
	if fresh {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram registers (or returns) a fixed-bucket histogram. bounds must
// be strictly increasing upper bounds; they are captured at first
// registration and ignored on idempotent re-registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly increasing", name))
		}
	}
	e, fresh := r.register(name, help, KindHistogram)
	if fresh {
		e.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
	}
	return e.hist
}

// CounterVec registers (or returns) a one-label counter family.
// labelName is the label key used in exports ("rule", "router").
func (r *Registry) CounterVec(name, help, labelName string) *CounterVec {
	e, fresh := r.register(name, help, KindCounter)
	if fresh {
		e.labelName = labelName
		e.vec = &CounterVec{children: make(map[string]*Counter)}
	}
	if e.vec == nil {
		panic(fmt.Sprintf("telemetry: counter %q already registered with a different shape", name))
	}
	return e.vec
}

// Metric is one exported metric family: a scalar value, or — when
// LabelName is non-empty — a set of labeled children, or a histogram.
type Metric struct {
	Name, Help string
	Kind       Kind
	LabelName  string
	Value      int64 // scalar counter/gauge value
	Children   []Child
	Hist       *HistogramSnapshot
}

// Child is one labeled member of a counter family.
type Child struct {
	Label string
	Value int64
}

// Snapshot copies every registered metric, sorted by name (children
// sorted by label), so iteration order — and therefore every export —
// is deterministic.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Help: e.help, Kind: e.kind, LabelName: e.labelName}
		switch {
		case e.counter != nil:
			m.Value = e.counter.Value()
		case e.atomicCounter != nil:
			m.Value = e.atomicCounter.Value()
		case e.gauge != nil:
			m.Value = e.gauge.Value()
		case e.hist != nil:
			m.Hist = e.hist.snapshot()
		case e.vec != nil:
			for _, label := range e.vec.labels() {
				m.Children = append(m.Children, Child{Label: label, Value: e.vec.With(label).Value()})
			}
		}
		out = append(out, m)
	}
	return out
}
