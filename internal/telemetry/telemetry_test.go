package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

var base = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help")
	b := reg.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("re-registering the same counter must return the same handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared handle must see the increment")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a plain counter as a vec must panic")
		}
	}()
	reg.CounterVec("x_total", "", "label")
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the high-water mark: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax did not raise: %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	snap := h.snapshot()
	// Bounds are inclusive upper limits: 0.5 and 1 land in le=1; 2 and 10
	// in le=10; 11 in le=100; 1000 overflows to +Inf.
	want := []int64{2, 2, 1, 1}
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], snap.Counts)
		}
	}
	if snap.Count != 6 || snap.Sum != 1024.5 {
		t.Fatalf("count=%d sum=%v", snap.Count, snap.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds must panic")
		}
	}()
	reg.Histogram("h", "", []float64{1, 1})
}

func TestCounterVecChildren(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("v_total", "", "rule")
	vec.With("b").Add(2)
	vec.With("a").Inc()
	if vec.With("b") != vec.With("b") {
		t.Fatal("With must return a stable child handle")
	}
	var m Metric
	for _, s := range reg.Snapshot() {
		if s.Name == "v_total" {
			m = s
		}
	}
	if m.LabelName != "rule" || len(m.Children) != 2 {
		t.Fatalf("snapshot = %+v", m)
	}
	// Children sorted by label.
	if m.Children[0].Label != "a" || m.Children[0].Value != 1 ||
		m.Children[1].Label != "b" || m.Children[1].Value != 2 {
		t.Fatalf("children = %+v", m.Children)
	}
}

func TestTracerAggregatesVirtualTime(t *testing.T) {
	now := base
	tr := NewTracer(func() time.Time { return now })
	sp := tr.Start("phase:test")
	sp.Event()
	sp.Event()
	now = now.Add(90 * time.Second)
	if d := sp.End(); d != 90*time.Second {
		t.Fatalf("span duration = %v", d)
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("double End must be a no-op, got %v", d)
	}
	sp2 := tr.Start("phase:test")
	now = now.Add(10 * time.Second)
	sp2.End()

	sum := tr.Summary()
	if len(sum) != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	st := sum[0]
	if st.Count != 2 || st.Events != 2 || st.Total != 100*time.Second {
		t.Fatalf("stats = %+v", st)
	}
	if recs := tr.Records(); len(recs) != 2 || recs[0].Events != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestTracerRecordRetentionBounded(t *testing.T) {
	tr := NewTracer(nil)
	tr.MaxRecords = 3
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Records()); got != 3 {
		t.Fatalf("retained %d records, want 3", got)
	}
	if tr.Summary()[0].Count != 10 {
		t.Fatal("aggregates must keep counting past the record cap")
	}
}

func TestProgressCadence(t *testing.T) {
	var fired []Update
	p := &Progress{Every: 3, Sink: func(u Update) { fired = append(fired, u) }}
	p.SetPhase("phase1")
	for i := 0; i < 10; i++ {
		p.Tick(base.Add(time.Duration(i)*time.Second), i)
	}
	if len(fired) != 3 {
		t.Fatalf("sink fired %d times, want 3", len(fired))
	}
	if fired[0].Events != 3 || fired[2].Events != 9 {
		t.Fatalf("updates = %+v", fired)
	}
	if fired[0].Phase != "phase1" || fired[0].Pending != 2 {
		t.Fatalf("first update = %+v", fired[0])
	}
	if p.Events() != 10 {
		t.Fatalf("events = %d", p.Events())
	}
}

func TestProgressDisabled(t *testing.T) {
	p := &Progress{} // Every=0: Tick degrades to a counter
	for i := 0; i < 5; i++ {
		p.Tick(base, 0)
	}
	if p.Events() != 5 {
		t.Fatalf("events = %d", p.Events())
	}
}

// buildSet populates a set with every metric shape.
func buildSet() *Set {
	s := NewSet()
	now := base
	s.Tracer.Clock = func() time.Time { return now }
	c := s.Registry.Counter("b_total", "a counter")
	c.Add(41)
	c.Inc()
	s.Registry.Gauge("a_gauge", "a gauge").Set(7)
	s.Registry.Histogram("c_hist", "a histogram", []float64{1, 10}).Observe(3)
	vec := s.Registry.CounterVec("d_total", "a vec", "rule")
	vec.With("2").Inc()
	vec.With("1").Add(3)
	sp := s.Tracer.Start("phase:x")
	now = now.Add(time.Minute)
	sp.End()
	return s
}

func TestExportJSONDeterministic(t *testing.T) {
	a, b := buildSet().ExportJSON(), buildSet().ExportJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("exports differ:\n%s\n---\n%s", a, b)
	}
	out := string(a)
	// Metric names appear in sorted order regardless of registration order.
	if strings.Index(out, `"a_gauge"`) > strings.Index(out, `"b_total"`) ||
		strings.Index(out, `"b_total"`) > strings.Index(out, `"c_hist"`) {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
	for _, want := range []string{
		`"b_total": 42`,
		`"a_gauge": 7`,
		`"c_hist": {"count": 1, "sum": 3, "buckets": {"1": 0, "10": 1, "+Inf": 0}}`,
		`"d_total": {"1": 3, "2": 1}`,
		`"phase:x": {"count": 1, "events": 0, "virtual_seconds": 60}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestWriteText(t *testing.T) {
	var b bytes.Buffer
	buildSet().WriteText(&b)
	out := b.String()
	for _, want := range []string{"b_total", "a_gauge", "c_hist", `d_total{rule=1}`, "phase:x"} {
		if !strings.Contains(out, want) {
			t.Errorf("text summary missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	var b bytes.Buffer
	buildSet().WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge",
		"# TYPE c_hist histogram",
		"a_gauge 7",
		"b_total 42",
		`c_hist_bucket{le="1"} 0`,
		`c_hist_bucket{le="10"} 1`,
		`c_hist_bucket{le="+Inf"} 1`, // cumulative
		"c_hist_sum 3",
		"c_hist_count 1",
		`d_total{rule="1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestAtomicCounter(t *testing.T) {
	reg := NewRegistry()
	c := reg.AtomicCounter("rn_total", "")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("atomic counter = %d, want 4000", c.Value())
	}
}
