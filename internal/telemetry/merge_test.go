package telemetry

import (
	"bytes"
	"testing"
	"time"
)

func trialSnapshot(counter, peak int64, rule1 int64, obs float64) []Metric {
	reg := NewRegistry()
	reg.Counter("events_total", "h").Add(counter)
	reg.Gauge("queue_peak", "h").SetMax(peak)
	reg.CounterVec("unsolicited_total", "h", "rule").With("1").Add(rule1)
	reg.Histogram("delay_seconds", "h", []float64{1, 10}).Observe(obs)
	return reg.Snapshot()
}

func TestMergeSnapshots(t *testing.T) {
	a := trialSnapshot(5, 100, 2, 0.5)
	b := trialSnapshot(7, 40, 3, 30)

	merged := MergeSnapshots(a, b)
	byName := map[string]Metric{}
	for _, m := range merged {
		byName[m.Name] = m
	}
	if got := byName["events_total"].Value; got != 12 {
		t.Errorf("counter sum = %d, want 12", got)
	}
	if got := byName["queue_peak"].Value; got != 100 {
		t.Errorf("gauge max = %d, want 100", got)
	}
	ch := byName["unsolicited_total"].Children
	if len(ch) != 1 || ch[0].Label != "1" || ch[0].Value != 5 {
		t.Errorf("children = %+v, want rule 1 = 5", ch)
	}
	h := byName["delay_seconds"].Hist
	if h == nil || h.Count != 2 || h.Sum != 30.5 {
		t.Fatalf("hist = %+v, want count 2 sum 30.5", h)
	}
	// 0.5 lands in the first bucket (<=1), 30 in the +Inf bucket.
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Errorf("bucket counts = %v", h.Counts)
	}

	// Sorted by name, like Registry.Snapshot.
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Name >= merged[i].Name {
			t.Fatalf("merged snapshot not sorted: %q >= %q", merged[i-1].Name, merged[i].Name)
		}
	}
}

func TestMergeSnapshotsDisjointChildren(t *testing.T) {
	mk := func(label string, v int64) []Metric {
		reg := NewRegistry()
		reg.CounterVec("taps_total", "h", "router").With(label).Add(v)
		return reg.Snapshot()
	}
	merged := MergeSnapshots(mk("r2", 4), mk("r1", 3))
	if len(merged) != 1 {
		t.Fatalf("merged = %+v", merged)
	}
	ch := merged[0].Children
	if len(ch) != 2 || ch[0].Label != "r1" || ch[0].Value != 3 || ch[1].Label != "r2" || ch[1].Value != 4 {
		t.Errorf("children = %+v, want sorted r1=3, r2=4", ch)
	}
}

func TestMergeSpans(t *testing.T) {
	a := []SpanStats{{Name: "phase1", Count: 1, Events: 10, Total: time.Second}}
	b := []SpanStats{
		{Name: "phase1", Count: 1, Events: 5, Total: 2 * time.Second},
		{Name: "phase2", Count: 2, Events: 1, Total: time.Minute},
	}
	merged := MergeSpans(a, b)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged[0].Name != "phase1" || merged[0].Count != 2 || merged[0].Events != 15 || merged[0].Total != 3*time.Second {
		t.Errorf("phase1 = %+v", merged[0])
	}
	if merged[1].Name != "phase2" || merged[1].Count != 2 {
		t.Errorf("phase2 = %+v", merged[1])
	}
}

func TestExportMergedJSONMatchesSetShape(t *testing.T) {
	// Merging a single trial must reproduce that trial's own export
	// byte-for-byte: the merged format is the same format.
	set := NewSet()
	set.Registry.Counter("events_total", "h").Add(3)
	set.Registry.Histogram("delay_seconds", "h", []float64{1}).Observe(0.25)
	single := set.ExportJSON()
	merged := ExportMergedJSON(MergeSnapshots(set.Registry.Snapshot()), MergeSpans(set.Tracer.Summary()))
	if !bytes.Equal(single, merged) {
		t.Errorf("merged export diverges from Set.ExportJSON:\n--- set\n%s\n--- merged\n%s", single, merged)
	}
}
