package telemetry

import (
	"bytes"
	"fmt"
	"sort"
)

// This file merges telemetry across independent trial worlds. Each world
// owns a private Set (per-seed determinism depends on that isolation);
// the multi-trial runner snapshots every world after it finishes and
// folds the snapshots into one cross-trial view. Merge semantics follow
// the metric kinds: counters and histogram buckets are extensive
// quantities and sum; gauges in this codebase are high-water marks and
// take the max.

// MergeSnapshots folds per-trial registry snapshots into one combined
// snapshot, sorted by name (children by label) like Registry.Snapshot.
// Metric identity is the name; Help/Kind/LabelName come from the first
// snapshot that mentions the metric. Histograms with differing bucket
// bounds keep the first bounds and sum only count/sum — a shape mismatch
// across same-binary trials would be a programming error, not data.
func MergeSnapshots(snaps ...[]Metric) []Metric {
	byName := make(map[string]*Metric)
	order := make([]string, 0)
	for _, snap := range snaps {
		for i := range snap {
			m := &snap[i]
			acc, ok := byName[m.Name]
			if !ok {
				cp := cloneMetric(m)
				byName[m.Name] = cp
				order = append(order, m.Name)
				continue
			}
			mergeInto(acc, m)
		}
	}
	sort.Strings(order)
	out := make([]Metric, 0, len(order))
	for _, name := range order {
		m := byName[name]
		sort.Slice(m.Children, func(i, j int) bool { return m.Children[i].Label < m.Children[j].Label })
		out = append(out, *m)
	}
	return out
}

func cloneMetric(m *Metric) *Metric {
	cp := *m
	cp.Children = append([]Child(nil), m.Children...)
	if m.Hist != nil {
		cp.Hist = &HistogramSnapshot{
			Bounds: append([]float64(nil), m.Hist.Bounds...),
			Counts: append([]int64(nil), m.Hist.Counts...),
			Sum:    m.Hist.Sum,
			Count:  m.Hist.Count,
		}
	}
	return &cp
}

func mergeInto(acc *Metric, m *Metric) {
	switch {
	case m.Hist != nil:
		if acc.Hist == nil {
			acc.Hist = cloneMetric(m).Hist
			return
		}
		acc.Hist.Sum += m.Hist.Sum
		acc.Hist.Count += m.Hist.Count
		if len(acc.Hist.Counts) == len(m.Hist.Counts) {
			for i, c := range m.Hist.Counts {
				acc.Hist.Counts[i] += c
			}
		}
	case m.LabelName != "" || len(m.Children) > 0:
		for _, c := range m.Children {
			idx := -1
			for i := range acc.Children {
				if acc.Children[i].Label == c.Label {
					idx = i
					break
				}
			}
			if idx < 0 {
				acc.Children = append(acc.Children, c)
			} else {
				acc.Children[idx].Value += c.Value
			}
		}
	case m.Kind == KindGauge:
		if m.Value > acc.Value {
			acc.Value = m.Value
		}
	default:
		acc.Value += m.Value
	}
}

// MergeSpans folds per-trial tracer summaries by span name: counts,
// event totals, and virtual durations sum. Output is sorted by name.
func MergeSpans(summaries ...[]SpanStats) []SpanStats {
	byName := make(map[string]*SpanStats)
	names := make([]string, 0)
	for _, sum := range summaries {
		for _, sp := range sum {
			acc, ok := byName[sp.Name]
			if !ok {
				cp := sp
				byName[sp.Name] = &cp
				names = append(names, sp.Name)
				continue
			}
			acc.Count += sp.Count
			acc.Events += sp.Events
			acc.Total += sp.Total
		}
	}
	sort.Strings(names)
	out := make([]SpanStats, 0, len(names))
	for _, name := range names {
		out = append(out, *byName[name])
	}
	return out
}

// ExportMergedJSON renders a merged snapshot and span summary in exactly
// the shape of Set.ExportJSON, so the multi-trial export stays diffable
// against single-trial ones and byte-identical across same-seed runs.
func ExportMergedJSON(metrics []Metric, spans []SpanStats) []byte {
	var b bytes.Buffer
	b.WriteString("{\n  \"metrics\": {")
	for i, m := range metrics {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    ")
		b.WriteString(jsonString(m.Name))
		b.WriteString(": ")
		writeMetricJSON(&b, m)
	}
	if len(metrics) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("},\n  \"spans\": {")
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    %s: {\"count\": %d, \"events\": %d, \"virtual_seconds\": %s}",
			jsonString(sp.Name), sp.Count, sp.Events, formatFloat(sp.Total.Seconds()))
	}
	if len(spans) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("}\n}\n")
	return b.Bytes()
}
