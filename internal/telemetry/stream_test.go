package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBusSequencesAndSince(t *testing.T) {
	b := NewBus(nil, 8)
	for i := 0; i < 5; i++ {
		seq := b.Publish(StreamEvent{Type: EventTrialStarted, Trial: i})
		if seq != uint64(i) {
			t.Fatalf("publish %d assigned seq %d", i, seq)
		}
	}
	events, next, missed := b.Since(0)
	if len(events) != 5 || next != 5 || missed != 0 {
		t.Fatalf("Since(0) = %d events, next %d, missed %d; want 5, 5, 0", len(events), next, missed)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i) || ev.Trial != i {
			t.Fatalf("event %d out of order: seq %d trial %d", i, ev.Seq, ev.Trial)
		}
	}
	if tail, _, _ := b.Since(3); len(tail) != 2 || tail[0].Seq != 3 {
		t.Fatalf("Since(3) = %+v; want seqs 3, 4", tail)
	}
}

// The ring must overflow by eviction, never by blocking: Publish past
// capacity keeps returning immediately, the drop shows up in Evicted,
// and Since reports exactly how much of a lagging poller's window is
// gone.
func TestBusOverflowEvictsWithoutBlocking(t *testing.T) {
	const capacity, published = 8, 20
	b := NewBus(nil, capacity)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < published; i++ {
			b.Publish(StreamEvent{Type: EventStoreAppended, Trial: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full ring")
	}
	st := b.Stats()
	if st.Published != published {
		t.Fatalf("Published = %d, want %d", st.Published, published)
	}
	if want := int64(published - capacity); st.Evicted != want {
		t.Fatalf("Evicted = %d, want %d", st.Evicted, want)
	}
	events, next, missed := b.Since(0)
	if missed != published-capacity {
		t.Fatalf("Since(0) missed = %d, want %d", missed, published-capacity)
	}
	if len(events) != capacity || next != published {
		t.Fatalf("Since(0) = %d events next %d, want %d retained next %d", len(events), next, capacity, published)
	}
	if events[0].Seq != published-capacity {
		t.Fatalf("oldest retained seq = %d, want %d", events[0].Seq, published-capacity)
	}
}

// A subscriber that stops reading must cost the publisher nothing: the
// hot path keeps returning, and the loss is visible on both the
// subscriber's own counter and the bus aggregate.
func TestBusSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := NewBus(nil, 64)
	sub := b.Subscribe(2) // tiny buffer, and nobody reading
	defer b.Unsubscribe(sub)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			b.Publish(StreamEvent{Type: EventWorkerBusy, Worker: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a full subscriber channel")
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscriber Dropped = %d, want 8", got)
	}
	if st := b.Stats(); st.SubscriberDropped != 8 {
		t.Fatalf("bus SubscriberDropped = %d, want 8", st.SubscriberDropped)
	}
	// The 2 buffered events arrived in order.
	first := <-sub.C
	second := <-sub.C
	if first.Seq != 0 || second.Seq != 1 {
		t.Fatalf("buffered seqs = %d, %d; want 0, 1", first.Seq, second.Seq)
	}
}

func TestBusConcurrentPublishOrdering(t *testing.T) {
	b := NewBus(nil, 1024)
	sub := b.Subscribe(1024)
	defer b.Unsubscribe(sub)
	var wg sync.WaitGroup
	const publishers, each = 4, 50
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Publish(StreamEvent{Type: EventTrialFinished, Worker: p, Trial: i})
			}
		}(p)
	}
	wg.Wait()
	if st := b.Stats(); st.SubscriberDropped != 0 {
		t.Fatalf("unexpected drops: %d", st.SubscriberDropped)
	}
	last := int64(-1)
	for i := 0; i < publishers*each; i++ {
		ev := <-sub.C
		if int64(ev.Seq) <= last {
			t.Fatalf("subscriber saw seq %d after %d", ev.Seq, last)
		}
		last = int64(ev.Seq)
	}
}

func TestBusRecent(t *testing.T) {
	b := NewBus(nil, 4)
	for i := 0; i < 10; i++ {
		b.Publish(StreamEvent{Trial: i})
	}
	recent := b.Recent(3)
	if len(recent) != 3 || recent[0].Trial != 7 || recent[2].Trial != 9 {
		t.Fatalf("Recent(3) = %+v; want trials 7..9", recent)
	}
	// Asking past capacity returns what the ring still holds.
	if all := b.Recent(100); len(all) != 4 {
		t.Fatalf("Recent(100) = %d events, want 4 (ring capacity)", len(all))
	}
}

// The reporter must be monotonic even when the bus reorders nothing but
// its channel drops events: lines appear only when the completed count
// advances, and the final N/N line survives the shutdown race.
func TestReporterMonotonicAndFinalLine(t *testing.T) {
	b := NewBus(nil, 0)
	var buf bytes.Buffer
	rep := &Reporter{Bus: b, Total: 3, W: &buf}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(stop) }()
	for b.Stats().Subscribers == 0 { // wait until Run has subscribed
		time.Sleep(time.Millisecond)
	}

	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	for i, completed := range []int{1, 1, 2, 2, 3} { // duplicates simulate out-of-order/redundant delivery
		b.Publish(StreamEvent{
			Type: EventTrialFinished, Trial: i, Completed: completed, Total: 3,
			WallNS: base + int64(i)*int64(time.Second),
		})
	}
	close(stop)
	<-done

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("reporter wrote %d lines, want 3 (monotonic):\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[2], "trials 3/3 (100%)") {
		t.Fatalf("final line = %q, want trials 3/3", lines[2])
	}
}
