package sched

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shadowmeter/internal/core"
	"shadowmeter/internal/runner"
	"shadowmeter/internal/runstore"
)

// tinyCore mirrors the runner tests' fast-but-complete geometry so
// daemon campaigns finish in milliseconds.
func tinyCore() core.Config {
	return core.Config{
		VPsPerGlobalProvider: 2,
		VPsPerCNProvider:     1,
		WebSites:             30,
		WebASes:              8,
		DNSRounds:            1,
		MaxSweepsPerProtocol: 40,
	}
}

func tinyCoreConfig(s Spec) (core.Config, error) {
	// Delegate scale-name validation, then swap in the fast geometry.
	if _, err := DefaultCoreConfig(s); err != nil {
		return core.Config{}, err
	}
	return tinyCore(), nil
}

func newTestDaemon(t *testing.T, root string, workers int, cc func(Spec) (core.Config, error)) (*Daemon, *httptest.Server) {
	t.Helper()
	sc, err := NewScheduler(root, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(DaemonOptions{Sched: sc, Root: root, Workers: workers, CoreConfig: cc})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// waitState polls GET /campaigns/{id} until the campaign reaches want.
// Polling lives in the test, not the daemon — the control plane itself
// never sleeps.
func waitState(t *testing.T, ts *httptest.Server, id string, want CampaignState) campaignView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, b := getBody(t, ts.URL+"/campaigns/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /campaigns/%s = %d: %s", id, code, b)
		}
		var v campaignView
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("decoding campaign: %v\n%s", err, b)
		}
		if v.State == want {
			return v
		}
		if v.State == StateFailed && want != StateFailed {
			t.Fatalf("campaign %s failed: %s", id, v.Failure)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return campaignView{}
}

func TestDaemonHTTPLifecycle(t *testing.T) {
	root := t.TempDir()
	d, ts := newTestDaemon(t, root, 2, tinyCoreConfig)
	d.Start()
	defer func() {
		if err := d.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	if code, b := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz = %d %q", code, b)
	}

	// Bad submissions are refused before touching the queue.
	if code, _ := postJSON(t, ts.URL+"/campaigns", `{not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/campaigns", `{"trials":2,"scale":"galactic"}`); code != http.StatusBadRequest {
		t.Errorf("unknown scale = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/campaigns", `{"trials":2,"bogus":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/campaigns", `{"trials":0}`); code != http.StatusBadRequest {
		t.Errorf("zero trials = %d, want 400", code)
	}

	code, b := postJSON(t, ts.URL+"/campaigns", `{"seed":21,"trials":4,"slice_size":2,"workers":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, b)
	}
	var c campaignView
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatal(err)
	}
	if c.ID == "" || len(c.Slices) != 2 || c.ConfigHash == "" || c.Dir == "" {
		t.Fatalf("submitted campaign = %+v", c)
	}

	done := waitState(t, ts, c.ID, StateDone)
	if done.CompletedTrials != 4 {
		t.Errorf("completed_trials = %d, want 4", done.CompletedTrials)
	}

	// The campaign store is complete, closed, and resumable.
	st, err := runstore.OpenReadOnly(done.Dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 4 {
		t.Errorf("store holds %d records, want 4", st.Len())
	}
	man := st.Manifest()
	if man.ConfigHash != c.ConfigHash || man.BaseSeed != 21 || man.Trials != 4 {
		t.Errorf("store manifest = %+v", man)
	}

	// Listing shows the campaign; unknown IDs are 404s on every route.
	if code, b := getBody(t, ts.URL+"/campaigns"); code != http.StatusOK || !strings.Contains(string(b), c.ID) {
		t.Errorf("list = %d %s", code, b)
	}
	if code, _ := getBody(t, ts.URL+"/campaigns/nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown campaign = %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/campaigns/nope/progress"); code != http.StatusNotFound {
		t.Errorf("GET unknown progress = %d, want 404", code)
	}

	// The observability plane is live per campaign: the stream bus
	// replays the trial events, and the watch metrics render.
	code, b = getBody(t, ts.URL+"/campaigns/"+c.ID+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress = %d: %s", code, b)
	}
	var poll struct {
		Events  []json.RawMessage `json:"events"`
		NextSeq uint64            `json:"next_seq"`
	}
	if err := json.Unmarshal(b, &poll); err != nil {
		t.Fatal(err)
	}
	if len(poll.Events) == 0 || poll.NextSeq == 0 {
		t.Errorf("progress poll returned %d events next_seq=%d, want a replayed stream", len(poll.Events), poll.NextSeq)
	}
	if code, b := getBody(t, ts.URL+"/campaigns/"+c.ID+"/metrics"); code != http.StatusOK || !strings.Contains(string(b), "watch_bus_published_total") {
		t.Errorf("metrics = %d %s", code, b)
	}
}

// TestDaemonDrainRestart is satellite #3's contract: SIGTERM (whose
// handler is exactly Drain) lets the in-flight slice finish and
// persists the queue; a fresh daemon over the same root completes the
// campaign, resuming the finished slice's trials from the store.
func TestDaemonDrainRestart(t *testing.T) {
	root := t.TempDir()

	// The core-config hook doubles as a slice gate. It runs once per
	// submit (for the config hash) and once per slice; with one worker
	// and one submission, call #2 is slice 0 — park it there until the
	// test has initiated the drain.
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	gated := func(Spec) (core.Config, error) {
		if calls.Add(1) == 2 {
			close(started)
			<-release
		}
		return tinyCore(), nil
	}

	d1, ts1 := newTestDaemon(t, root, 1, gated)
	d1.Start()
	code, b := postJSON(t, ts1.URL+"/campaigns", `{"seed":9,"trials":4,"slice_size":2,"workers":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, b)
	}
	var c campaignView
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatal(err)
	}

	<-started // slice 0 is in flight
	drained := make(chan error, 1)
	go func() { drained <- d1.Drain() }()
	close(release) // SIGTERM arrived mid-slice; let the slice finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The drain finished the in-flight slice (graceful, not aborted) and
	// left the rest pending on disk.
	mid, ok := mustScheduler(t, root).Get(c.ID)
	if !ok {
		t.Fatalf("campaign %s not persisted", c.ID)
	}
	if mid.Slices[0].State != SliceDone {
		t.Fatalf("in-flight slice after drain = %s, want done", mid.Slices[0].State)
	}
	if mid.Slices[1].State != SlicePending {
		t.Fatalf("queued slice after drain = %s, want pending", mid.Slices[1].State)
	}

	// Restart: a fresh daemon over the same root completes the plan.
	d2, ts2 := newTestDaemon(t, root, 1, tinyCoreConfig)
	d2.Start()
	defer func() {
		if err := d2.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	done := waitState(t, ts2, c.ID, StateDone)
	if done.CompletedTrials != 4 {
		t.Errorf("completed_trials after restart = %d, want 4", done.CompletedTrials)
	}

	st, err := runstore.OpenReadOnly(done.Dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 4 {
		t.Errorf("store holds %d records, want 4", st.Len())
	}
}

func mustScheduler(t *testing.T, root string) *Scheduler {
	t.Helper()
	sc, err := NewScheduler(root, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestDaemonExtendEndToEnd grows a finished campaign over HTTP and
// checks the acceptance bar: the extended store serves a resumed batch
// byte-identical to a cold run at the larger count.
func TestDaemonExtendEndToEnd(t *testing.T) {
	root := t.TempDir()
	d, ts := newTestDaemon(t, root, 2, tinyCoreConfig)
	d.Start()
	defer func() {
		if err := d.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	code, b := postJSON(t, ts.URL+"/campaigns", `{"seed":33,"trials":2,"slice_size":1,"workers":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, b)
	}
	var c campaignView
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, c.ID, StateDone)

	// Refusals: shrink, no-op, unknown campaign, bad body.
	if code, b := postJSON(t, ts.URL+"/campaigns/"+c.ID+"/extend", `{"trials":2}`); code != http.StatusBadRequest {
		t.Errorf("no-op extension = %d: %s", code, b)
	}
	if code, _ := postJSON(t, ts.URL+"/campaigns/nope/extend", `{"trials":9}`); code != http.StatusNotFound {
		t.Errorf("extending unknown campaign = %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/campaigns/"+c.ID+"/extend", `{oops`); code != http.StatusBadRequest {
		t.Errorf("malformed extension = %d, want 400", code)
	}

	code, b = postJSON(t, ts.URL+"/campaigns/"+c.ID+"/extend", `{"trials":4}`)
	if code != http.StatusOK {
		t.Fatalf("extend = %d: %s", code, b)
	}
	done := waitState(t, ts, c.ID, StateDone)
	if done.Trials != 4 || done.CompletedTrials != 4 {
		t.Fatalf("extended campaign = trials %d completed %d, want 4/4", done.Trials, done.CompletedTrials)
	}

	man, err := runstore.ReadManifest(done.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Trials != 4 {
		t.Errorf("store manifest trials = %d, want 4 (extension upgrades in place)", man.Trials)
	}

	// Byte-identity with the cold run at the larger count: resume the
	// extended store and every trial must be a store hit.
	cold := runner.Run(runner.Config{Trials: 4, Workers: 2, BaseSeed: 33, Core: tinyCore()})
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	st, err := runstore.OpenOrCreate(done.Dir, runstore.Manifest{
		Version:    runstore.StoreVersion,
		ConfigHash: c.ConfigHash,
		BaseSeed:   33,
		Trials:     4,
		Scale:      "small",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	resumed := runner.Run(runner.Config{Trials: 4, Workers: 2, BaseSeed: 33, Core: tinyCore(), Store: st, Resume: true})
	if resumed.StoreErr != nil {
		t.Fatal(resumed.StoreErr)
	}
	resumedJSON, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, resumedJSON) {
		t.Error("extended campaign store diverges from the cold run at the larger count")
	}
	if hits := st.Stats().ResumeHits; hits != 4 {
		t.Errorf("resume hits = %d, want 4 (every trial served from the extended store)", hits)
	}
}
