// Package sched is the campaign control plane behind cmd/shadowmeterd:
// a persistent campaign queue, a scheduler that splits each campaign's
// trial plan into disjoint slices keyed by its config hash + base seed,
// and worker-lease tracking with timeout → requeue.
//
// The scheduler is deliberately wall-clock-free: all timing comes from
// an injected telemetry.Clock, and waiting workers block on a condition
// variable rather than polling, so the package stays inside the
// simclock determinism contract and tests can drive lease expiry with a
// manual clock. The daemon (cmd/shadowmeterd) owns the real ticker that
// calls Reap.
//
// Queue state is persisted to <dir>/state.json through the runstore
// atomic-publish path on every transition, so a daemon restart — or a
// SIGTERM drain — resumes exactly where it stopped: done slices stay
// done (their trial records are in the campaign store; the runner
// resumes them for free), and slices leased by the dead process return
// to pending.
package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
)

// Spec is a submitted campaign configuration — the JSON body of
// POST /campaigns.
type Spec struct {
	// Seed is the campaign base seed; trial t runs with Seed + t.
	Seed int64 `json:"seed"`
	// Trials is the campaign trial plan size.
	Trials int `json:"trials"`
	// Scale names the experiment geometry (small, medium, full).
	Scale string `json:"scale,omitempty"`
	// SliceSize is the number of trials per worker lease; 0 leases the
	// whole plan as one slice.
	SliceSize int `json:"slice_size,omitempty"`
	// Workers is the per-slice world parallelism (runner workers);
	// 0 means 1.
	Workers int `json:"workers,omitempty"`
}

// SliceState is one slice's position in the lease lifecycle.
type SliceState string

const (
	SlicePending SliceState = "pending"
	SliceLeased  SliceState = "leased"
	SliceDone    SliceState = "done"
)

// CampaignState is the campaign state machine: queued → running → done,
// with failed as the absorbing error state.
type CampaignState string

const (
	StateQueued  CampaignState = "queued"
	StateRunning CampaignState = "running"
	StateDone    CampaignState = "done"
	StateFailed  CampaignState = "failed"
)

// Slice is one leasable window [From, To) of a campaign's trial plan.
type Slice struct {
	From  int        `json:"from"`
	To    int        `json:"to"`
	State SliceState `json:"state"`
	// Worker names the current (or last) leaseholder.
	Worker string `json:"worker,omitempty"`
	// DeadlineNS is the lease expiry (unix nanoseconds on the
	// scheduler's clock); past it, Reap returns the slice to pending.
	DeadlineNS int64 `json:"lease_deadline_ns,omitempty"`
	// Attempts counts leases handed out for this slice — more than one
	// means a lease expired or a daemon died mid-slice.
	Attempts int `json:"attempts,omitempty"`
}

// Campaign is one queued measurement campaign.
type Campaign struct {
	ID string `json:"id"`
	Spec
	// ConfigHash fingerprints the trial configuration — the same
	// runstore hash the campaign store manifest carries, so slices of
	// one campaign land in one store and foreign records are refused.
	ConfigHash string `json:"config_hash"`
	// Dir is the campaign store directory.
	Dir   string        `json:"dir"`
	State CampaignState `json:"state"`
	// SubmittedNS stamps submission (scheduler clock).
	SubmittedNS int64   `json:"submitted_ns,omitempty"`
	Slices      []Slice `json:"slices"`
	// Failure records why the campaign entered StateFailed.
	Failure string `json:"failure,omitempty"`
}

// CompletedTrials sums the trials of done slices.
func (c *Campaign) CompletedTrials() int {
	n := 0
	for _, s := range c.Slices {
		if s.State == SliceDone {
			n += s.To - s.From
		}
	}
	return n
}

// stateFile is the persisted queue image.
type stateFile struct {
	NextID    int         `json:"next_id"`
	Campaigns []*Campaign `json:"campaigns"`
}

const stateName = "state.json"

// Scheduler owns the campaign queue. All methods are safe for
// concurrent use.
type Scheduler struct {
	dir   string
	clock telemetry.Clock
	lease time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	order    []string
	byID     map[string]*Campaign
	nextID   int
	draining bool
}

// NewScheduler opens (or initializes) the queue persisted in dir.
// clock supplies lease timestamps — cmd/ passes time.Now, tests a
// manual clock; nil disables lease expiry (deadlines stay zero).
// lease is how long a worker may hold a slice before Reap requeues it;
// <= 0 also disables expiry.
//
// Slices left leased by a previous process return to pending here: the
// leaseholder died with that process, and any trials it completed are
// already in the campaign store, so the re-run resumes them for free.
func NewScheduler(dir string, clock telemetry.Clock, lease time.Duration) (*Scheduler, error) {
	if clock == nil {
		clock = func() time.Time { return time.Time{} }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: creating state dir: %w", err)
	}
	s := &Scheduler{dir: dir, clock: clock, lease: lease, byID: make(map[string]*Campaign)}
	s.cond = sync.NewCond(&s.mu)
	b, err := os.ReadFile(s.statePath())
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("sched: reading queue state: %w", err)
	}
	var st stateFile
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("sched: corrupt queue state %s: %w", s.statePath(), err)
	}
	s.nextID = st.NextID
	for _, c := range st.Campaigns {
		for i := range c.Slices {
			if c.Slices[i].State == SliceLeased {
				c.Slices[i].State = SlicePending
				c.Slices[i].DeadlineNS = 0
			}
		}
		refreshStateLocked(c)
		s.order = append(s.order, c.ID)
		s.byID[c.ID] = c
	}
	return s, nil
}

func (s *Scheduler) statePath() string { return s.dir + "/" + stateName }

// refreshStateLocked recomputes a campaign's state from its slices.
// Failed is absorbing; done means every slice done; running means some
// slice is leased; queued otherwise.
func refreshStateLocked(c *Campaign) {
	if c.State == StateFailed {
		return
	}
	done, leased := 0, 0
	for _, sl := range c.Slices {
		switch sl.State {
		case SliceDone:
			done++
		case SliceLeased:
			leased++
		}
	}
	switch {
	case done == len(c.Slices):
		c.State = StateDone
	case leased > 0:
		c.State = StateRunning
	default:
		c.State = StateQueued
	}
}

// persistLocked publishes the queue image atomically. Every state
// transition goes through it before the transition is visible to
// callers, so the on-disk queue is never behind a decision a worker
// already acted on.
func (s *Scheduler) persistLocked() error {
	st := stateFile{NextID: s.nextID}
	for _, id := range s.order {
		st.Campaigns = append(st.Campaigns, s.byID[id])
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("sched: encoding queue state: %w", err)
	}
	b = append(b, '\n')
	if err := runstore.PublishFile(s.dir, stateName, b); err != nil {
		return fmt.Errorf("sched: persisting queue state: %w", err)
	}
	return nil
}

// Persist publishes the current queue image — the drain path's final
// checkpoint (transitions already persist themselves).
func (s *Scheduler) Persist() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}

// planSlices splits [0, trials) into contiguous slices of at most
// sliceSize trials (0 = one slice for the whole plan).
func planSlices(trials, sliceSize int) []Slice {
	if sliceSize <= 0 || sliceSize > trials {
		sliceSize = trials
	}
	var out []Slice
	for from := 0; from < trials; from += sliceSize {
		to := from + sliceSize
		if to > trials {
			to = trials
		}
		out = append(out, Slice{From: from, To: to, State: SlicePending})
	}
	return out
}

// Submit queues a campaign. configHash and dir come from the daemon
// (which owns the core-config mapping); the scheduler records them so
// every lease carries the full identity a worker needs.
func (s *Scheduler) Submit(spec Spec, configHash, dir string) (Campaign, error) {
	if spec.Trials < 1 {
		return Campaign{}, fmt.Errorf("sched: campaign needs at least 1 trial, got %d", spec.Trials)
	}
	if spec.SliceSize < 0 || spec.Workers < 0 {
		return Campaign{}, fmt.Errorf("sched: slice_size and workers must be non-negative")
	}
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Campaign{}, fmt.Errorf("sched: daemon is draining; not accepting campaigns")
	}
	s.nextID++
	c := &Campaign{
		ID:         fmt.Sprintf("c%d", s.nextID),
		Spec:       spec,
		ConfigHash: configHash,
		Dir:        dir,
		State:      StateQueued,
		Slices:     planSlices(spec.Trials, spec.SliceSize),
	}
	if !now.IsZero() {
		c.SubmittedNS = now.UnixNano()
	}
	s.order = append(s.order, c.ID)
	s.byID[c.ID] = c
	if err := s.persistLocked(); err != nil {
		delete(s.byID, c.ID)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		return Campaign{}, err
	}
	s.cond.Broadcast()
	return copyCampaign(c), nil
}

// Extend grows a campaign's trial plan — same config hash and base
// seed, more trials. The new window [old, new) is queued as fresh
// slices; a done (or failed) campaign goes back to queued and its
// store manifest is upgraded by the worker's OpenOrCreate when the
// first new slice runs.
func (s *Scheduler) Extend(id string, trials int) (Campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return Campaign{}, fmt.Errorf("sched: no campaign %q", id)
	}
	if trials <= c.Trials {
		return Campaign{}, fmt.Errorf("sched: campaign %s already plans %d trials; extension must grow the plan (got %d)", id, c.Trials, trials)
	}
	prevTrials, prevState, prevFailure := c.Trials, c.State, c.Failure
	prevLen := len(c.Slices)
	size := c.SliceSize
	if size <= 0 {
		size = trials - c.Trials // one slice for the whole new window
	}
	for from := c.Trials; from < trials; from += size {
		to := from + size
		if to > trials {
			to = trials
		}
		c.Slices = append(c.Slices, Slice{From: from, To: to, State: SlicePending})
	}
	c.Trials = trials
	// Extension un-fails a campaign: the operator is explicitly asking
	// for more work, so the error state resets and the new (plus any
	// still-pending) slices become leasable again.
	c.State = StateQueued
	c.Failure = ""
	refreshStateLocked(c)
	if err := s.persistLocked(); err != nil {
		c.Trials, c.State, c.Failure = prevTrials, prevState, prevFailure
		c.Slices = c.Slices[:prevLen]
		return Campaign{}, err
	}
	s.cond.Broadcast()
	return copyCampaign(c), nil
}

// expireLocked requeues leases whose deadline passed. Returns how many
// it returned to pending.
func (s *Scheduler) expireLocked(now time.Time) int {
	if now.IsZero() {
		return 0
	}
	n := 0
	for _, id := range s.order {
		c := s.byID[id]
		for i := range c.Slices {
			sl := &c.Slices[i]
			if sl.State == SliceLeased && sl.DeadlineNS > 0 && now.UnixNano() > sl.DeadlineNS {
				sl.State = SlicePending
				sl.DeadlineNS = 0
				n++
			}
		}
		if n > 0 {
			refreshStateLocked(c)
		}
	}
	return n
}

// Reap requeues expired leases and wakes waiting workers. The daemon
// calls it from a wall-clock ticker (the scheduler itself never
// schedules time). Returns the number of slices requeued; the error is
// a failed state persist — the requeue itself stands either way, since
// a restart re-derives it (leased → pending).
func (s *Scheduler) Reap() (int, error) {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.expireLocked(now)
	if n == 0 {
		return 0, nil
	}
	err := s.persistLocked()
	s.cond.Broadcast()
	return n, err
}

// Lease hands the first pending slice (campaign submission order, then
// slice order) to worker, stamping the lease deadline. ok is false when
// nothing is pending.
func (s *Scheduler) Lease(worker string) (Campaign, Slice, bool) {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.leaseLocked(worker, now)
}

func (s *Scheduler) leaseLocked(worker string, now time.Time) (Campaign, Slice, bool) {
	s.expireLocked(now)
	for _, id := range s.order {
		c := s.byID[id]
		if c.State == StateFailed || c.State == StateDone {
			continue
		}
		for i := range c.Slices {
			sl := &c.Slices[i]
			if sl.State != SlicePending {
				continue
			}
			sl.State = SliceLeased
			sl.Worker = worker
			sl.Attempts++
			sl.DeadlineNS = 0
			if !now.IsZero() && s.lease > 0 {
				sl.DeadlineNS = now.Add(s.lease).UnixNano()
			}
			refreshStateLocked(c)
			if err := s.persistLocked(); err != nil {
				// Roll the lease back rather than hand out work the
				// on-disk queue does not know about.
				sl.State = SlicePending
				sl.Worker = ""
				sl.Attempts--
				sl.DeadlineNS = 0
				refreshStateLocked(c)
				return Campaign{}, Slice{}, false
			}
			return copyCampaign(c), *sl, true
		}
	}
	return Campaign{}, Slice{}, false
}

// WaitLease blocks until a slice is available (returning it like Lease)
// or the scheduler is draining (ok false) — the daemon worker loop's
// entry point. Waking happens on submit, extend, requeue, and drain;
// there is no polling.
func (s *Scheduler) WaitLease(worker string) (Campaign, Slice, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return Campaign{}, Slice{}, false
		}
		if c, sl, ok := s.leaseLocked(worker, s.clock()); ok {
			return c, sl, true
		}
		s.cond.Wait()
	}
}

// Complete marks a leased slice done; when it was the campaign's last,
// the campaign completes.
func (s *Scheduler) Complete(id string, from int) error {
	return s.finish(id, from, "")
}

// Fail returns a slice to pending and moves its campaign to failed,
// recording why. The campaign stops leasing until an Extend (or daemon
// operator intervention) requeues it; the failed slice itself stays
// pending so a retry after the cause is fixed re-runs only it.
func (s *Scheduler) Fail(id string, from int, reason string) error {
	if reason == "" {
		reason = "slice failed"
	}
	return s.finish(id, from, reason)
}

func (s *Scheduler) finish(id string, from int, failure string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("sched: no campaign %q", id)
	}
	for i := range c.Slices {
		sl := &c.Slices[i]
		if sl.From != from {
			continue
		}
		if sl.State != SliceLeased {
			return fmt.Errorf("sched: campaign %s slice %d..%d is %s, not leased", id, sl.From, sl.To, sl.State)
		}
		sl.DeadlineNS = 0
		if failure == "" {
			sl.State = SliceDone
		} else {
			sl.State = SlicePending
			c.State = StateFailed
			c.Failure = failure
		}
		refreshStateLocked(c)
		if err := s.persistLocked(); err != nil {
			return err
		}
		s.cond.Broadcast()
		return nil
	}
	return fmt.Errorf("sched: campaign %s has no slice starting at trial %d", id, from)
}

// Drain stops handing out leases: every WaitLease returns ok=false once
// its worker finishes the slice it holds. Submissions are refused while
// draining.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Draining reports whether Drain was called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Get returns a copy of one campaign.
func (s *Scheduler) Get(id string) (Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byID[id]
	if !ok {
		return Campaign{}, false
	}
	return copyCampaign(c), true
}

// Campaigns returns a copy of the queue in submission order.
func (s *Scheduler) Campaigns() []Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Campaign, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, copyCampaign(s.byID[id]))
	}
	return out
}

func copyCampaign(c *Campaign) Campaign {
	cp := *c
	cp.Slices = append([]Slice(nil), c.Slices...)
	return cp
}
