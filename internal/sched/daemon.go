package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"

	"shadowmeter/internal/core"
	"shadowmeter/internal/runner"
	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/watch"
)

// DaemonOptions configures a Daemon.
type DaemonOptions struct {
	// Sched is the campaign queue (required).
	Sched *Scheduler
	// Root is where campaign stores land: campaign cN runs in
	// <Root>/cN (required).
	Root string
	// Workers is how many slices run concurrently; <= 0 means 1.
	Workers int
	// Clock stamps monitor occupancy and bus events. cmd/ passes
	// time.Now; nil disables timing, keeping only completion tracking.
	Clock telemetry.Clock
	// Log receives one line per control-plane event; nil discards.
	Log io.Writer
	// CoreConfig maps a submitted spec onto the per-trial experiment
	// template (its Seed is overwritten per trial). nil means
	// DefaultCoreConfig — the CLI's scale-name mapping. Tests inject a
	// tiny geometry here so daemon campaigns finish in milliseconds.
	CoreConfig func(Spec) (core.Config, error)
	// BusCapacity sizes each campaign's stream-bus ring; 0 means the
	// telemetry default.
	BusCapacity int
}

// DefaultCoreConfig maps a spec's scale name onto the experiment
// geometry, mirroring shadowmeter's -scale flag.
func DefaultCoreConfig(spec Spec) (core.Config, error) {
	var cfg core.Config
	switch spec.Scale {
	case "", "small":
		cfg.Scale = core.ScaleSmall
	case "medium":
		cfg.Scale = core.ScaleMedium
	case "full":
		cfg.Scale = core.ScaleFull
	default:
		return core.Config{}, fmt.Errorf("unknown scale %q (want small, medium or full)", spec.Scale)
	}
	return cfg, nil
}

// Daemon executes the queue: a worker pool that leases slices from the
// scheduler and runs them through the ordinary runner data plane, plus
// the HTTP control surface (submit, inspect, extend, live progress).
//
// Each campaign gets ONE shared store handle for the daemon's lifetime
// — two handles on the same directory would fight over the append log's
// durable end — and one stream bus, so GET /campaigns/{id}/progress is
// the same observability plane `shadowmeter -watch` serves, re-exported
// per campaign.
type Daemon struct {
	sched      *Scheduler
	root       string
	workers    int
	clock      telemetry.Clock
	coreConfig func(Spec) (core.Config, error)
	busCap     int

	logMu sync.Mutex
	logw  io.Writer

	mu     sync.Mutex
	stores map[string]*runstore.Store
	buses  map[string]*telemetry.Bus
	mons   map[string]*runner.Monitor

	wg      sync.WaitGroup
	started bool
}

// NewDaemon wires a daemon over a scheduler. Call Start to launch the
// worker pool and Handler for the HTTP surface.
func NewDaemon(o DaemonOptions) (*Daemon, error) {
	if o.Sched == nil {
		return nil, errors.New("sched: daemon needs a scheduler")
	}
	if o.Root == "" {
		return nil, errors.New("sched: daemon needs a campaign root directory")
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 1
	}
	logw := o.Log
	if logw == nil {
		logw = io.Discard
	}
	cc := o.CoreConfig
	if cc == nil {
		cc = DefaultCoreConfig
	}
	return &Daemon{
		sched:      o.Sched,
		root:       o.Root,
		workers:    workers,
		clock:      o.Clock,
		coreConfig: cc,
		busCap:     o.BusCapacity,
		logw:       logw,
		stores:     make(map[string]*runstore.Store),
		buses:      make(map[string]*telemetry.Bus),
		mons:       make(map[string]*runner.Monitor),
	}, nil
}

func (d *Daemon) logf(format string, args ...any) {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	fmt.Fprintf(d.logw, format+"\n", args...)
}

// Start launches the worker pool. Idempotent.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	for w := 0; w < d.workers; w++ {
		d.wg.Add(1)
		go d.runWorker(fmt.Sprintf("w%d", w))
	}
}

func (d *Daemon) runWorker(name string) {
	defer d.wg.Done()
	for {
		c, sl, ok := d.sched.WaitLease(name)
		if !ok {
			return // draining
		}
		d.logf("worker %s: leased campaign %s trials %d..%d", name, c.ID, sl.From, sl.To-1)
		if err := d.runSlice(c, sl); err != nil {
			d.logf("worker %s: campaign %s trials %d..%d failed: %v", name, c.ID, sl.From, sl.To-1, err)
			if ferr := d.sched.Fail(c.ID, sl.From, err.Error()); ferr != nil {
				d.logf("worker %s: recording failure: %v", name, ferr)
			}
			continue
		}
		if err := d.sched.Complete(c.ID, sl.From); err != nil {
			d.logf("worker %s: completing slice: %v", name, err)
			continue
		}
		d.logf("worker %s: campaign %s trials %d..%d done", name, c.ID, sl.From, sl.To-1)
		if cur, found := d.sched.Get(c.ID); found && cur.State == StateDone {
			d.finishCampaign(cur)
		}
	}
}

// runSlice runs one leased window through the runner against the
// campaign's shared store. Resume is always on: a slice requeued after
// a lease expiry (or a daemon restart) serves its already-persisted
// trials from the store instead of re-running them.
func (d *Daemon) runSlice(c Campaign, sl Slice) error {
	cfg, err := d.coreConfig(c.Spec)
	if err != nil {
		return err
	}
	st, err := d.campaignStore(c)
	if err != nil {
		return err
	}
	mon := runner.NewMonitor(runner.MonitorOptions{
		Clock: d.clock,
		Bus:   d.busFor(c.ID),
		Scale: c.Scale,
	})
	d.mu.Lock()
	d.mons[c.ID] = mon
	d.mu.Unlock()
	res := runner.Run(runner.Config{
		Trials:   c.Trials,
		Workers:  c.Workers,
		BaseSeed: c.Seed,
		Core:     cfg,
		Store:    st,
		Resume:   true,
		Slice:    runner.Slice{From: sl.From, To: sl.To},
		Monitor:  mon,
	})
	return res.StoreErr
}

// campaignStore returns the campaign's shared store handle, opening it
// on first use. When an extension grew the plan since the handle was
// opened, the manifest is upgraded in place before more trials land.
func (d *Daemon) campaignStore(c Campaign) (*runstore.Store, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.stores[c.ID]; ok {
		if st.Manifest().Trials < c.Trials {
			if err := st.ExtendTrials(c.Trials); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	st, err := runstore.OpenOrCreate(c.Dir, runstore.Manifest{
		Version:    runstore.StoreVersion,
		ConfigHash: c.ConfigHash,
		BaseSeed:   c.Seed,
		Trials:     c.Trials,
		Scale:      c.Scale,
	}, telemetry.NewSet())
	if err != nil {
		return nil, err
	}
	d.stores[c.ID] = st
	return st, nil
}

// busFor returns (creating on first use) a campaign's stream bus.
// Created at submission so a watcher can subscribe before the first
// slice runs.
func (d *Daemon) busFor(id string) *telemetry.Bus {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.buses[id]; ok {
		return b
	}
	b := telemetry.NewBus(d.clock, d.busCap)
	d.buses[id] = b
	return b
}

// finishCampaign closes the completed campaign's store, publishing its
// sidecars. The bus and monitor stay for late watchers.
func (d *Daemon) finishCampaign(c Campaign) {
	d.mu.Lock()
	st := d.stores[c.ID]
	delete(d.stores, c.ID)
	d.mu.Unlock()
	if st != nil {
		if err := st.Close(); err != nil {
			d.logf("campaign %s: closing store: %v", c.ID, err)
		}
	}
	d.logf("campaign %s: done (%d trials in %s)", c.ID, c.Trials, c.Dir)
}

// Drain is the SIGTERM path: stop handing out leases, let in-flight
// slices finish, close every open store, and checkpoint the queue.
// Blocks until the worker pool exits.
func (d *Daemon) Drain() error {
	d.sched.Drain()
	d.wg.Wait()
	d.mu.Lock()
	stores := d.stores
	d.stores = make(map[string]*runstore.Store)
	d.mu.Unlock()
	var errs []error
	for id, st := range stores {
		if err := st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("campaign %s: closing store: %w", id, err))
		}
	}
	if err := d.sched.Persist(); err != nil {
		errs = append(errs, err)
	}
	d.logf("drained: in-flight slices finished, queue state persisted")
	return errors.Join(errs...)
}

// campaignView is the JSON shape of a campaign in API responses:
// the queue record plus derived progress.
type campaignView struct {
	Campaign
	CompletedTrials int `json:"completed_trials"`
}

func view(c Campaign) campaignView {
	return campaignView{Campaign: c, CompletedTrials: c.CompletedTrials()}
}

// Handler builds the control-plane route table:
//
//	GET  /healthz                  liveness ("ok")
//	GET  /campaigns                the queue, submission order (JSON)
//	POST /campaigns                submit a Spec; 202 + campaign (JSON)
//	GET  /campaigns/{id}           one campaign (JSON)
//	POST /campaigns/{id}/extend    {"trials": N} grows the plan
//	GET  /campaigns/{id}/progress  stream bus: JSON poll or SSE
//	GET  /campaigns/{id}/campaign  live slice snapshot (watch plane)
//	GET  /campaigns/{id}/metrics   Prometheus text (watch plane)
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /campaigns", d.handleList)
	mux.HandleFunc("POST /campaigns", d.handleSubmit)
	mux.HandleFunc("GET /campaigns/{id}", d.handleGet)
	mux.HandleFunc("POST /campaigns/{id}/extend", d.handleExtend)
	mux.HandleFunc("GET /campaigns/{id}/progress", d.planeHandler("/progress"))
	mux.HandleFunc("GET /campaigns/{id}/campaign", d.planeHandler("/campaign"))
	mux.HandleFunc("GET /campaigns/{id}/metrics", d.planeHandler("/metrics"))
	return mux
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// writeJSON sends a JSON document. A write error means the client hung
// up mid-response; there is nowhere else to report it, so the handler
// just stops.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(b, '\n')); err != nil {
		return
	}
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	all := d.sched.Campaigns()
	views := make([]campaignView, 0, len(all))
	for _, c := range all {
		views = append(views, view(c))
	}
	writeJSON(w, http.StatusOK, views)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad campaign spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Scale == "" {
		spec.Scale = "small"
	}
	cfg, err := d.coreConfig(spec)
	if err != nil {
		http.Error(w, "bad campaign spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	hash := runner.CampaignHash(cfg)
	// The directory is keyed by config hash + seed, so re-submitting the
	// same campaign resumes its store instead of colliding.
	dir := filepath.Join(d.root, fmt.Sprintf("%s-seed%d", hash, spec.Seed))
	c, err := d.sched.Submit(spec, hash, dir)
	if err != nil {
		code := http.StatusBadRequest
		if d.sched.Draining() {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	d.busFor(c.ID)
	d.logf("campaign %s: submitted (%d trials, seed %d, scale %s) -> %s", c.ID, c.Trials, c.Seed, c.Scale, c.Dir)
	writeJSON(w, http.StatusAccepted, view(c))
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := d.sched.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such campaign", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, view(c))
}

// extendRequest is the JSON body of POST /campaigns/{id}/extend.
type extendRequest struct {
	Trials int `json:"trials"`
}

func (d *Daemon) handleExtend(w http.ResponseWriter, r *http.Request) {
	var req extendRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad extension request: "+err.Error(), http.StatusBadRequest)
		return
	}
	id := r.PathValue("id")
	c, err := d.sched.Extend(id, req.Trials)
	if err != nil {
		code := http.StatusBadRequest
		if _, ok := d.sched.Get(id); !ok {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	d.logf("campaign %s: extended to %d trials", c.ID, c.Trials)
	writeJSON(w, http.StatusOK, view(c))
}

// planeHandler re-exports one campaign's observability plane (the same
// endpoints `shadowmeter -watch` serves) under /campaigns/{id}/...,
// backed by that campaign's bus and its most recent slice monitor.
func (d *Daemon) planeHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := d.sched.Get(id); !ok {
			http.Error(w, "no such campaign", http.StatusNotFound)
			return
		}
		d.mu.Lock()
		srv := &watch.Server{Monitor: d.mons[id], Bus: d.buses[id]}
		d.mu.Unlock()
		r2 := r.Clone(r.Context())
		r2.URL.Path = endpoint
		srv.Handler().ServeHTTP(w, r2)
	}
}
