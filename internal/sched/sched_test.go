package sched

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is a race-safe settable clock for driving lease expiry.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestPlanSlices(t *testing.T) {
	cases := []struct {
		trials, size int
		want         []Slice
	}{
		{4, 0, []Slice{{From: 0, To: 4, State: SlicePending}}},
		{4, 4, []Slice{{From: 0, To: 4, State: SlicePending}}},
		{4, 2, []Slice{{From: 0, To: 2, State: SlicePending}, {From: 2, To: 4, State: SlicePending}}},
		{5, 2, []Slice{{From: 0, To: 2, State: SlicePending}, {From: 2, To: 4, State: SlicePending}, {From: 4, To: 5, State: SlicePending}}},
		{1, 10, []Slice{{From: 0, To: 1, State: SlicePending}}},
	}
	for _, tc := range cases {
		got := planSlices(tc.trials, tc.size)
		if len(got) != len(tc.want) {
			t.Errorf("planSlices(%d, %d) = %d slices, want %d", tc.trials, tc.size, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("planSlices(%d, %d)[%d] = %+v, want %+v", tc.trials, tc.size, i, got[i], tc.want[i])
			}
		}
	}
}

func TestSubmitLeaseComplete(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(Spec{Seed: 7, Trials: 4, SliceSize: 2}, "hash-a", "dir-a")
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == "" || c.State != StateQueued || len(c.Slices) != 2 {
		t.Fatalf("submitted campaign = %+v", c)
	}

	c1, sl1, ok := s.Lease("w0")
	if !ok || c1.ID != c.ID || sl1.From != 0 || sl1.To != 2 {
		t.Fatalf("first lease = %+v %+v %v", c1, sl1, ok)
	}
	if c1.State != StateRunning {
		t.Errorf("campaign state after lease = %s, want running", c1.State)
	}
	c2, sl2, ok := s.Lease("w1")
	if !ok || sl2.From != 2 {
		t.Fatalf("second lease = %+v %v", sl2, ok)
	}
	if _, _, ok := s.Lease("w2"); ok {
		t.Fatal("third lease succeeded with no pending slices")
	}

	if err := s.Complete(c1.ID, sl1.From); err != nil {
		t.Fatal(err)
	}
	mid, _ := s.Get(c.ID)
	if mid.State != StateRunning || mid.CompletedTrials() != 2 {
		t.Fatalf("mid-campaign = %s completed %d, want running/2", mid.State, mid.CompletedTrials())
	}
	if err := s.Complete(c2.ID, sl2.From); err != nil {
		t.Fatal(err)
	}
	done, _ := s.Get(c.ID)
	if done.State != StateDone || done.CompletedTrials() != 4 {
		t.Fatalf("finished campaign = %s completed %d, want done/4", done.State, done.CompletedTrials())
	}

	// Completing a non-leased slice is a protocol error.
	if err := s.Complete(c.ID, 0); err == nil {
		t.Error("completing an already-done slice succeeded")
	}
	if err := s.Complete("nope", 0); err == nil {
		t.Error("completing an unknown campaign succeeded")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Trials: 0}, "h", "d"); err == nil {
		t.Error("zero-trial campaign accepted")
	}
	if _, err := s.Submit(Spec{Trials: 2, SliceSize: -1}, "h", "d"); err == nil {
		t.Error("negative slice size accepted")
	}
}

func TestLeaseExpiryReap(t *testing.T) {
	clk := newManualClock()
	s, err := NewScheduler(t.TempDir(), clk.Now, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(Spec{Seed: 1, Trials: 2}, "h", "d")
	if err != nil {
		t.Fatal(err)
	}
	_, sl, ok := s.Lease("w0")
	if !ok || sl.DeadlineNS == 0 || sl.Attempts != 1 {
		t.Fatalf("lease = %+v ok=%v, want deadline stamped and 1 attempt", sl, ok)
	}

	// Within the lease: nothing to reap, nothing to lease.
	if n, err := s.Reap(); n != 0 || err != nil {
		t.Fatalf("early Reap = %d, %v", n, err)
	}
	if _, _, ok := s.Lease("w1"); ok {
		t.Fatal("leased a slice that is already held")
	}

	// Past the lease: the slice returns to pending and re-leases with a
	// second attempt.
	clk.Advance(2 * time.Minute)
	n, err := s.Reap()
	if n != 1 || err != nil {
		t.Fatalf("Reap = %d, %v, want 1 requeued", n, err)
	}
	got, _ := s.Get(c.ID)
	if got.State != StateQueued || got.Slices[0].State != SlicePending {
		t.Fatalf("after reap: campaign %s slice %s, want queued/pending", got.State, got.Slices[0].State)
	}
	_, sl2, ok := s.Lease("w1")
	if !ok || sl2.Attempts != 2 || sl2.Worker != "w1" {
		t.Fatalf("re-lease = %+v ok=%v, want attempt 2 by w1", sl2, ok)
	}

	// The original holder finishing after expiry is refused: its lease
	// is gone (w1 holds the slice now, so Complete still works by From —
	// the protocol error shows up as the slice being done twice).
	if err := s.Complete(c.ID, sl2.From); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(c.ID, sl.From); err == nil {
		t.Error("stale leaseholder completed a slice that already finished")
	}
}

func TestZeroClockDisablesExpiry(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Trials: 1}, "h", "d"); err != nil {
		t.Fatal(err)
	}
	if _, sl, ok := s.Lease("w0"); !ok || sl.DeadlineNS != 0 {
		t.Fatalf("lease under zero clock = %+v ok=%v, want no deadline", sl, ok)
	}
	if n, err := s.Reap(); n != 0 || err != nil {
		t.Fatalf("Reap under zero clock = %d, %v, want 0", n, err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewScheduler(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s1.Submit(Spec{Seed: 3, Trials: 4, SliceSize: 2}, "hash-x", "dir-x")
	if err != nil {
		t.Fatal(err)
	}
	_, sl, ok := s1.Lease("w0")
	if !ok {
		t.Fatal("lease failed")
	}
	if err := s1.Complete(c.ID, sl.From); err != nil {
		t.Fatal(err)
	}
	// Second slice is leased when the process "dies".
	if _, _, ok := s1.Lease("w0"); !ok {
		t.Fatal("second lease failed")
	}

	// Restart: the done slice stays done, the leased slice returns to
	// pending, identity and ID allocation survive.
	s2, err := NewScheduler(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(c.ID)
	if !ok {
		t.Fatalf("campaign %s lost across restart", c.ID)
	}
	if got.ConfigHash != "hash-x" || got.Dir != "dir-x" || got.Seed != 3 {
		t.Errorf("campaign identity drifted: %+v", got)
	}
	if got.Slices[0].State != SliceDone {
		t.Errorf("done slice reloaded as %s", got.Slices[0].State)
	}
	if got.Slices[1].State != SlicePending || got.Slices[1].DeadlineNS != 0 {
		t.Errorf("leased slice reloaded as %+v, want pending with no deadline", got.Slices[1])
	}
	if got.State != StateQueued {
		t.Errorf("campaign state reloaded as %s, want queued", got.State)
	}
	c2, err := s2.Submit(Spec{Trials: 1}, "h2", "d2")
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID == c.ID {
		t.Errorf("restart reused campaign ID %s", c2.ID)
	}
}

func TestExtend(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(Spec{Seed: 5, Trials: 2, SliceSize: 2}, "h", "d")
	if err != nil {
		t.Fatal(err)
	}
	_, sl, _ := s.Lease("w0")
	if err := s.Complete(c.ID, sl.From); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(c.ID); got.State != StateDone {
		t.Fatalf("campaign = %s, want done", got.State)
	}

	// Shrink and no-op extensions are refused.
	if _, err := s.Extend(c.ID, 2); err == nil || !strings.Contains(err.Error(), "must grow") {
		t.Errorf("same-size extension: %v", err)
	}
	if _, err := s.Extend(c.ID, 1); err == nil {
		t.Error("shrinking extension accepted")
	}
	if _, err := s.Extend("nope", 4); err == nil {
		t.Error("extending an unknown campaign succeeded")
	}

	// Growth re-queues the campaign with fresh slices over the new
	// window, honoring the original slice size.
	ext, err := s.Extend(c.ID, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Trials != 6 || ext.State != StateQueued || len(ext.Slices) != 3 {
		t.Fatalf("extended campaign = %+v", ext)
	}
	if ext.Slices[1] != (Slice{From: 2, To: 4, State: SlicePending}) || ext.Slices[2] != (Slice{From: 4, To: 6, State: SlicePending}) {
		t.Errorf("extension slices = %+v", ext.Slices[1:])
	}
	if ext.CompletedTrials() != 2 {
		t.Errorf("completed trials after extension = %d, want 2 (original slice stays done)", ext.CompletedTrials())
	}
}

func TestFailAndExtendRequeues(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Submit(Spec{Trials: 2, SliceSize: 1}, "h", "d")
	if err != nil {
		t.Fatal(err)
	}
	_, sl, _ := s.Lease("w0")
	if err := s.Fail(c.ID, sl.From, "store exploded"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(c.ID)
	if got.State != StateFailed || got.Failure != "store exploded" {
		t.Fatalf("failed campaign = %s %q", got.State, got.Failure)
	}
	if got.Slices[0].State != SlicePending {
		t.Errorf("failed slice = %s, want pending (retryable)", got.Slices[0].State)
	}
	// Failed campaigns stop leasing — even though a slice is pending.
	if _, _, ok := s.Lease("w0"); ok {
		t.Fatal("leased a slice from a failed campaign")
	}
	// Extension un-fails: the operator asked for more work.
	ext, err := s.Extend(c.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ext.State != StateQueued || ext.Failure != "" {
		t.Fatalf("extended-after-failure campaign = %s %q, want queued with no failure", ext.State, ext.Failure)
	}
	if _, _, ok := s.Lease("w0"); !ok {
		t.Fatal("extension did not make the campaign leasable again")
	}
}

func TestDrain(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Spec{Trials: 1}, "h", "d"); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, _, ok := s.WaitLease("w0"); ok {
		t.Fatal("WaitLease handed out a slice while draining")
	}
	if _, err := s.Submit(Spec{Trials: 1}, "h", "d"); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("submit while draining: %v", err)
	}
}

func TestWaitLeaseWakesOnSubmit(t *testing.T) {
	s, err := NewScheduler(t.TempDir(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	type lease struct {
		c  Campaign
		ok bool
	}
	got := make(chan lease, 1)
	go func() {
		c, _, ok := s.WaitLease("w0")
		got <- lease{c, ok}
	}()
	// The worker is (about to be) parked on the condition variable; a
	// submission must wake it.
	c, err := s.Submit(Spec{Trials: 1}, "h", "d")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case l := <-got:
		if !l.ok || l.c.ID != c.ID {
			t.Fatalf("woken lease = %+v", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitLease never woke after submit")
	}
}
