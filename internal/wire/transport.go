package wire

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a decoded UDP header (RFC 768).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload []byte
}

// SerializeTo writes header+payload into buf with a computed checksum over
// the IPv4 pseudo-header (src/dst needed for that). It returns bytes written.
func (u *UDP) SerializeTo(buf []byte, src, dst Addr, payload []byte) (int, error) {
	n := UDPHeaderLen + len(payload)
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for UDP datagram: %d < %d", len(buf), n)
	}
	if n > 0xFFFF {
		return 0, fmt.Errorf("wire: UDP datagram too large: %d", n)
	}
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(n))
	buf[6], buf[7] = 0, 0
	copy(buf[UDPHeaderLen:], payload)
	cs := transportChecksum(src, dst, ProtoUDP, buf[:n])
	if cs == 0 {
		cs = 0xFFFF // RFC 768: transmitted all-ones when computed zero
	}
	binary.BigEndian.PutUint16(buf[6:8], cs)
	return n, nil
}

// Serialize allocates and returns the wire bytes.
func (u *UDP) Serialize(src, dst Addr, payload []byte) ([]byte, error) {
	buf := make([]byte, UDPHeaderLen+len(payload))
	n, err := u.SerializeTo(buf, src, dst, payload)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// DecodeFromBytes parses a UDP datagram into u. If src/dst are non-zero the
// checksum is verified against the pseudo-header.
func (u *UDP) DecodeFromBytes(data []byte, src, dst Addr) error {
	if len(data) < UDPHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(data) {
		return ErrBadHeader
	}
	if !src.IsZero() && u.Checksum != 0 {
		if transportChecksum(src, dst, ProtoUDP, data[:u.Length]) != 0 {
			return ErrBadChecksum
		}
	}
	u.payload = data[UDPHeaderLen:u.Length] //shadowlint:ignore sliceretain documented zero-copy decoder: payload aliases the caller buffer
	return nil
}

// Payload returns the datagram payload.
func (u *UDP) Payload() []byte { return u.payload }

// TCPHeaderLen is the TCP header length without options; the simulator
// emits no options.
const TCPHeaderLen = 20

// TCP flag bits.
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
)

// TCP is a decoded TCP header (RFC 9293, options ignored).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16

	payload []byte
}

// SerializeTo writes header+payload into buf with a computed checksum.
func (t *TCP) SerializeTo(buf []byte, src, dst Addr, payload []byte) (int, error) {
	n := TCPHeaderLen + len(payload)
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for TCP segment: %d < %d", len(buf), n)
	}
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = 5 << 4 // data offset: 5 words
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	buf[16], buf[17] = 0, 0
	buf[18], buf[19] = 0, 0 // urgent pointer unused
	copy(buf[TCPHeaderLen:], payload)
	cs := transportChecksum(src, dst, ProtoTCP, buf[:n])
	binary.BigEndian.PutUint16(buf[16:18], cs)
	return n, nil
}

// Serialize allocates and returns the wire bytes.
func (t *TCP) Serialize(src, dst Addr, payload []byte) ([]byte, error) {
	buf := make([]byte, TCPHeaderLen+len(payload))
	n, err := t.SerializeTo(buf, src, dst, payload)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// DecodeFromBytes parses a TCP segment into t, verifying the checksum when
// src is non-zero.
func (t *TCP) DecodeFromBytes(data []byte, src, dst Addr) error {
	if len(data) < TCPHeaderLen {
		return ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen || off > len(data) {
		return ErrBadHeader
	}
	if !src.IsZero() {
		if transportChecksum(src, dst, ProtoTCP, data) != 0 {
			return ErrBadChecksum
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.payload = data[off:] //shadowlint:ignore sliceretain documented zero-copy decoder: payload aliases the caller buffer
	return nil
}

// Payload returns the segment payload.
func (t *TCP) Payload() []byte { return t.payload }

// FlagString renders TCP flags as e.g. "SYN|ACK".
func (t *TCP) FlagString() string {
	var s string
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if t.Flags&TCPSyn != 0 {
		add("SYN")
	}
	if t.Flags&TCPAck != 0 {
		add("ACK")
	}
	if t.Flags&TCPFin != 0 {
		add("FIN")
	}
	if t.Flags&TCPRst != 0 {
		add("RST")
	}
	if t.Flags&TCPPsh != 0 {
		add("PSH")
	}
	if s == "" {
		s = "none"
	}
	return s
}
