package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IPProto is the IPv4 protocol number.
type IPProto uint8

// Protocol numbers used by the simulator.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// String names the protocol.
func (p IPProto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// IPv4HeaderLen is the length of an IPv4 header without options. The
// simulator never emits options.
const IPv4HeaderLen = 20

// Common errors returned by decoders.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: not an IPv4 packet")
	ErrBadChecksum = errors.New("wire: bad checksum")
	ErrBadHeader   = errors.New("wire: malformed header")
)

// IPv4 is a decoded IPv4 header. Fields follow RFC 791. It doubles as a
// DecodingLayer: DecodeFromBytes fills the struct in place without
// allocating, so a single IPv4 value can be reused across packets.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol IPProto
	Checksum uint16
	Src, Dst Addr

	payload []byte
}

// IPv4 flag bits.
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// SerializeTo writes the header followed by payload into buf, which must be
// at least SerializedLen bytes. TotalLen and Checksum are computed; the
// caller's values for those fields are ignored. It returns the number of
// bytes written.
func (h *IPv4) SerializeTo(buf []byte, payload []byte) (int, error) {
	n := IPv4HeaderLen + len(payload)
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for IPv4 packet: %d < %d", len(buf), n)
	}
	if err := h.SerializeHeader(buf, len(payload)); err != nil {
		return 0, err
	}
	copy(buf[IPv4HeaderLen:], payload)
	return n, nil
}

// SerializeHeader writes only the 20-byte header into buf, assuming
// payloadLen payload bytes already sit (or will sit) at
// buf[IPv4HeaderLen:]. This is the single-allocation build path: the
// transport layer serializes in place first, then the header slots in
// front without re-copying the payload.
func (h *IPv4) SerializeHeader(buf []byte, payloadLen int) error {
	n := IPv4HeaderLen + payloadLen
	if len(buf) < IPv4HeaderLen {
		return fmt.Errorf("wire: buffer too small for IPv4 header: %d < %d", len(buf), IPv4HeaderLen)
	}
	if n > 0xFFFF {
		return fmt.Errorf("wire: IPv4 packet too large: %d", n)
	}
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(n))
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOff&0x1FFF)
	buf[8] = h.TTL
	buf[9] = uint8(h.Protocol)
	buf[10], buf[11] = 0, 0
	copy(buf[12:16], h.Src[:])
	copy(buf[16:20], h.Dst[:])
	cs := Checksum(buf[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(buf[10:12], cs)
	return nil
}

// Serialize allocates and returns the wire bytes of header+payload.
func (h *IPv4) Serialize(payload []byte) ([]byte, error) {
	buf := make([]byte, IPv4HeaderLen+len(payload))
	n, err := h.SerializeTo(buf, payload)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// DecodeFromBytes parses an IPv4 packet into h, validating version, lengths
// and the header checksum. The payload is aliased (not copied) from data.
func (h *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrBadHeader
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:4])
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(data) {
		return ErrBadHeader
	}
	h.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1FFF
	h.TTL = data[8]
	h.Protocol = IPProto(data[9])
	h.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	h.payload = data[ihl:h.TotalLen] //shadowlint:ignore sliceretain documented zero-copy decoder: payload aliases the caller buffer
	return nil
}

// Payload returns the bytes after the header, valid until the buffer passed
// to DecodeFromBytes is reused.
func (h *IPv4) Payload() []byte { return h.payload }

// DecrementTTL rewrites the TTL and incrementally updates the header
// checksum in the serialized packet pkt, per RFC 1624. It returns the new
// TTL value, or an error if the packet is too short. This is the router
// fast path: no re-serialization of the packet is needed per hop.
func DecrementTTL(pkt []byte) (uint8, error) {
	if len(pkt) < IPv4HeaderLen {
		return 0, ErrTruncated
	}
	old := pkt[8]
	if old == 0 {
		return 0, errors.New("wire: TTL already zero")
	}
	pkt[8] = old - 1
	// RFC 1624 incremental update: HC' = ~(~HC + ~m + m')
	// where m is the old 16-bit word containing TTL, m' the new one.
	oldWord := uint16(old)<<8 | uint16(pkt[9])
	newWord := uint16(pkt[8])<<8 | uint16(pkt[9])
	hc := binary.BigEndian.Uint16(pkt[10:12])
	sum := uint32(^hc) + uint32(^oldWord&0xFFFF) + uint32(newWord)
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	binary.BigEndian.PutUint16(pkt[10:12], ^uint16(sum))
	return pkt[8], nil
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the IPv4 pseudo-header partial sum used by the
// TCP and UDP checksums.
func pseudoHeaderSum(src, dst Addr, proto IPProto, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// transportChecksum computes a TCP/UDP checksum including the pseudo-header.
func transportChecksum(src, dst Addr, proto IPProto, segment []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, proto, len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
