package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("114.114.114.114")
	if err != nil {
		t.Fatal(err)
	}
	if a != AddrFrom(114, 114, 114, 114) {
		t.Errorf("ParseAddr = %v", a)
	}
	if a.String() != "114.114.114.114" {
		t.Errorf("String = %q", a.String())
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.256", "a.b.c.d", "-1.2.3.4"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestAddrRoundTripUint32(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrSlash24(t *testing.T) {
	a := MustParseAddr("1.1.1.1")
	b := MustParseAddr("1.1.1.4")
	c := MustParseAddr("1.1.2.1")
	if !a.SameSlash24(b) {
		t.Error("1.1.1.1 and 1.1.1.4 should share a /24")
	}
	if a.SameSlash24(c) {
		t.Error("1.1.1.1 and 1.1.2.1 should not share a /24")
	}
	if a.Slash24() != MustParseAddr("1.1.1.0") {
		t.Errorf("Slash24 = %v", a.Slash24())
	}
}

func TestRandomAddrIn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := MustParseAddr("10.20.0.0")
	for i := 0; i < 200; i++ {
		a := RandomAddrIn(rng, base, 16)
		if a[0] != 10 || a[1] != 20 {
			t.Fatalf("address %v escaped 10.20.0.0/16", a)
		}
		if a == base || a == MustParseAddr("10.20.255.255") {
			t.Fatalf("network/broadcast address generated: %v", a)
		}
	}
	if got := RandomAddrIn(rng, base, 32); got != base {
		t.Errorf("/32 should return base, got %v", got)
	}
}

func TestFlowCanonicalSymmetric(t *testing.T) {
	f := Flow{
		Proto: ProtoTCP,
		Src:   Endpoint{MustParseAddr("1.2.3.4"), 1234},
		Dst:   Endpoint{MustParseAddr("5.6.7.8"), 80},
	}
	if f.Canonical() != f.Reverse().Canonical() {
		t.Error("Canonical not symmetric")
	}
	if f.Reverse().Reverse() != f {
		t.Error("double Reverse should be identity")
	}
}

func TestFlowCanonicalProperty(t *testing.T) {
	f := func(a1, a2 uint32, p1, p2 uint16, proto uint8) bool {
		fl := Flow{
			Proto: IPProto(proto),
			Src:   Endpoint{AddrFromUint32(a1), p1},
			Dst:   Endpoint{AddrFromUint32(a2), p2},
		}
		return fl.Canonical() == fl.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x10, ID: 0xBEEF, Flags: FlagDF, TTL: 64,
		Protocol: ProtoUDP,
		Src:      MustParseAddr("192.0.2.1"),
		Dst:      MustParseAddr("198.51.100.2"),
	}
	payload := []byte("hello, shadowing")
	raw, err := h.Serialize(payload)
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || got.Protocol != ProtoUDP || got.ID != 0xBEEF {
		t.Errorf("decoded header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload(), payload) {
		t.Errorf("payload mismatch: %q", got.Payload())
	}
	if int(got.TotalLen) != len(raw) {
		t.Errorf("TotalLen = %d, want %d", got.TotalLen, len(raw))
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4{TTL: 10, Protocol: ProtoUDP, Src: AddrFrom(1, 2, 3, 4), Dst: AddrFrom(5, 6, 7, 8)}
	raw, err := h.Serialize([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	raw[12] ^= 0xFF // corrupt source address
	var got IPv4
	if err := got.DecodeFromBytes(raw); err != ErrBadChecksum {
		t.Errorf("corrupted packet decoded: err = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4
	if err := h.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	v6 := make([]byte, 40)
	v6[0] = 0x60
	if err := h.DecodeFromBytes(v6); err != ErrBadVersion {
		t.Errorf("v6: %v", err)
	}
}

func TestDecrementTTL(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: ProtoUDP, Src: AddrFrom(10, 0, 0, 1), Dst: AddrFrom(10, 0, 0, 2)}
	raw, err := h.Serialize([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for want := uint8(63); want > 0; want-- {
		ttl, err := DecrementTTL(raw)
		if err != nil {
			t.Fatal(err)
		}
		if ttl != want {
			t.Fatalf("TTL = %d, want %d", ttl, want)
		}
		// The incremental checksum must keep the header valid at every hop.
		var got IPv4
		if err := got.DecodeFromBytes(raw); err != nil {
			t.Fatalf("header invalid after decrement to %d: %v", want, err)
		}
	}
	if ttl, err := DecrementTTL(raw); err != nil || ttl != 0 {
		t.Fatalf("final decrement: ttl=%d err=%v", ttl, err)
	}
	if _, err := DecrementTTL(raw); err == nil {
		t.Error("decrementing TTL 0 should error")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	src, dst := AddrFrom(1, 1, 1, 1), AddrFrom(9, 9, 9, 9)
	u := UDP{SrcPort: 53533, DstPort: 53}
	payload := []byte("dns query bytes")
	raw, err := u.Serialize(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got UDP
	if err := got.DecodeFromBytes(raw, src, dst); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53533 || got.DstPort != 53 {
		t.Errorf("ports = %d,%d", got.SrcPort, got.DstPort)
	}
	if !bytes.Equal(got.Payload(), payload) {
		t.Errorf("payload = %q", got.Payload())
	}
	// Checksum must fail if payload corrupted.
	raw[len(raw)-1] ^= 0xFF
	if err := got.DecodeFromBytes(raw, src, dst); err != ErrBadChecksum {
		t.Errorf("corrupt UDP: err = %v, want ErrBadChecksum", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	src, dst := AddrFrom(10, 1, 1, 1), AddrFrom(172, 16, 0, 1)
	tc := TCP{SrcPort: 40000, DstPort: 443, Seq: 1000, Ack: 2000, Flags: TCPSyn | TCPAck, Window: 1024}
	payload := []byte("client hello")
	raw, err := tc.Serialize(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	var got TCP
	if err := got.DecodeFromBytes(raw, src, dst); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1000 || got.Ack != 2000 || got.Flags != TCPSyn|TCPAck {
		t.Errorf("decoded TCP mismatch: %+v", got)
	}
	if !bytes.Equal(got.Payload(), payload) {
		t.Errorf("payload = %q", got.Payload())
	}
	if got.FlagString() != "SYN|ACK" {
		t.Errorf("FlagString = %q", got.FlagString())
	}
}

func TestICMPTimeExceededRoundTrip(t *testing.T) {
	// Build an original UDP probe, then the Time Exceeded quoting it.
	src := Endpoint{AddrFrom(100, 64, 0, 1), 33434}
	dst := Endpoint{AddrFrom(8, 8, 8, 8), 53}
	probe, err := BuildUDP(src, dst, 3, 0x1234, []byte("probe payload longer than 8 bytes"))
	if err != nil {
		t.Fatal(err)
	}
	te := NewTimeExceeded(probe)
	raw, err := BuildICMP(AddrFrom(10, 0, 0, 254), src.Addr, 64, 1, te, te.Payload())
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.ICMP == nil || pkt.ICMP.Type != ICMPTimeExceeded {
		t.Fatalf("not a time exceeded: %+v", pkt)
	}
	quoted, err := pkt.ICMP.QuotedIPv4()
	if err != nil {
		t.Fatal(err)
	}
	if quoted.Src != src.Addr || quoted.Dst != dst.Addr || quoted.ID != 0x1234 {
		t.Errorf("quoted header mismatch: %+v", quoted)
	}
	if len(quoted.Payload()) != 8 {
		t.Errorf("quote should carry exactly 8 payload bytes, got %d", len(quoted.Payload()))
	}
}

func TestICMPQuoteOnlyForErrors(t *testing.T) {
	m := &ICMP{Type: ICMPEchoRequest}
	if _, err := m.QuotedIPv4(); err == nil {
		t.Error("echo request should not have a quoted packet")
	}
}

func TestParserDecodeReuse(t *testing.T) {
	var p Parser
	var pkt Packet
	udpRaw, _ := BuildUDP(Endpoint{AddrFrom(1, 1, 1, 1), 1}, Endpoint{AddrFrom(2, 2, 2, 2), 53}, 64, 1, []byte("a"))
	tcpRaw, _ := BuildTCP(Endpoint{AddrFrom(3, 3, 3, 3), 2}, Endpoint{AddrFrom(4, 4, 4, 4), 80}, 64, 2, TCPSyn, 0, 0, nil)
	if err := p.Decode(udpRaw, &pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.UDP == nil || pkt.TCP != nil {
		t.Fatal("expected UDP layer")
	}
	if err := p.Decode(tcpRaw, &pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.TCP == nil || pkt.UDP != nil {
		t.Fatal("expected TCP layer after reuse")
	}
	if pkt.Flow().Dst.Port != 80 {
		t.Errorf("flow dst port = %d", pkt.Flow().Dst.Port)
	}
}

func TestBuildRoundTripProperty(t *testing.T) {
	f := func(srcA, dstA uint32, srcP, dstP uint16, ttl uint8, payload []byte) bool {
		if ttl == 0 {
			ttl = 1
		}
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		src := Endpoint{AddrFromUint32(srcA), srcP}
		dst := Endpoint{AddrFromUint32(dstA), dstP}
		raw, err := BuildUDP(src, dst, ttl, 7, payload)
		if err != nil {
			return false
		}
		pkt, err := Decode(raw)
		if err != nil {
			return false
		}
		return pkt.IP.Src == src.Addr && pkt.IP.Dst == dst.Addr &&
			pkt.UDP.SrcPort == srcP && pkt.UDP.DstPort == dstP &&
			bytes.Equal(pkt.TransportPayload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 section 3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestProtoString(t *testing.T) {
	if ProtoUDP.String() != "UDP" || ProtoTCP.String() != "TCP" || ProtoICMP.String() != "ICMP" {
		t.Error("proto names wrong")
	}
	if IPProto(99).String() != "proto(99)" {
		t.Errorf("unknown proto = %q", IPProto(99).String())
	}
}

func BenchmarkParserDecode(b *testing.B) {
	raw, _ := BuildUDP(Endpoint{AddrFrom(1, 1, 1, 1), 5353}, Endpoint{AddrFrom(8, 8, 8, 8), 53}, 64, 1, bytes.Repeat([]byte("q"), 64))
	var p Parser
	var pkt Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Decode(raw, &pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrementTTL(b *testing.B) {
	raw, _ := BuildUDP(Endpoint{AddrFrom(1, 1, 1, 1), 5353}, Endpoint{AddrFrom(8, 8, 8, 8), 53}, 255, 1, []byte("x"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if raw[8] <= 1 {
			raw[8] = 255
			// restore checksum validity by full reserialize
			var h IPv4
			h.TTL = 255
			h.Protocol = ProtoUDP
			h.Src, h.Dst = AddrFrom(1, 1, 1, 1), AddrFrom(8, 8, 8, 8)
			nraw, _ := h.Serialize(raw[IPv4HeaderLen:])
			copy(raw, nraw)
		}
		if _, err := DecrementTTL(raw); err != nil {
			b.Fatal(err)
		}
	}
}
