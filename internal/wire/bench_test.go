package wire

import (
	"testing"

	"shadowmeter/internal/telemetry"
)

// benchCounter registers a fresh throughput counter for one benchmark so
// the reported rate comes out of the telemetry registry rather than a
// loose loop variable — the same read path the simulator's -metrics
// export uses.
func benchCounter(name string) (*telemetry.Registry, *telemetry.Counter) {
	reg := telemetry.NewRegistry()
	return reg, reg.Counter(name, "packets processed by the benchmark loop")
}

// reportRate converts a registry counter into an ops/sec benchmark
// metric, asserting along the way that every loop iteration was counted.
func reportRate(b *testing.B, reg *telemetry.Registry, name, unit string) {
	b.Helper()
	var total int64
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			total = int64(m.Value)
		}
	}
	if total != int64(b.N) {
		b.Fatalf("registry counted %d %s, benchmark ran %d iterations", total, name, b.N)
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, unit)
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	reg, built := benchCounter("wire_bench_packets_built_total")
	src := Endpoint{AddrFrom(10, 0, 0, 1), 40000}
	dst := Endpoint{AddrFrom(8, 8, 8, 8), 53}
	payload := []byte("shadowmeter-probe-payload-0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := BuildUDP(src, dst, 64, uint16(i), payload)
		if err != nil {
			b.Fatal(err)
		}
		if len(raw) == 0 {
			b.Fatal("empty packet")
		}
		built.Inc()
	}
	b.StopTimer()
	reportRate(b, reg, "wire_bench_packets_built_total", "packets/sec")
}

func BenchmarkDecode(b *testing.B) {
	reg, decoded := benchCounter("wire_bench_packets_decoded_total")
	raw, err := BuildUDP(
		Endpoint{AddrFrom(10, 0, 0, 1), 40000},
		Endpoint{AddrFrom(8, 8, 8, 8), 53},
		64, 7, []byte("shadowmeter-probe-payload-0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt, err := Decode(raw)
		if err != nil {
			b.Fatal(err)
		}
		if pkt.UDP == nil {
			b.Fatal("decoded packet lost its UDP layer")
		}
		decoded.Inc()
	}
	b.StopTimer()
	reportRate(b, reg, "wire_bench_packets_decoded_total", "packets/sec")
}
