// Package wire implements the packet wire formats used throughout the
// shadowmeter simulator: IPv4, UDP, TCP, and ICMP headers with real
// serialization, checksumming, and layered decoding in the style of
// gopacket's DecodingLayerParser (decode into caller-owned structs, no
// per-packet allocation on the hot path).
//
// The simulator moves real bytes: every decoy is serialized to its wire
// representation before it traverses the simulated Internet, and every
// on-path observer parses those bytes the way a DPI device would. This
// keeps the measurement pipeline honest — honeypots and observers can only
// act on what is actually visible in the packet.
package wire

import (
	"fmt"
	"math/rand"
)

// Addr is an IPv4 address. It is a comparable value type so it can key maps
// (flow tables, observer retention stores, geo databases).
type Addr [4]byte

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// ParseAddr parses dotted-quad notation. It returns the zero Addr and an
// error on malformed input.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var parts [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &parts[0], &parts[1], &parts[2], &parts[3])
	if err != nil || n != 4 {
		return a, fmt.Errorf("wire: malformed IPv4 address %q", s)
	}
	for i, p := range parts {
		if p < 0 || p > 255 {
			return a, fmt.Errorf("wire: IPv4 octet out of range in %q", s)
		}
		a[i] = byte(p)
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and static
// tables (e.g. the public-resolver list).
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether a is the unspecified address 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// Uint32 returns the address as a big-endian uint32.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// AddrFromUint32 converts a big-endian uint32 into an Addr.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Slash24 returns the /24 network containing a (last octet zeroed). The
// pair-resolver interception heuristic (Appendix E) relies on two addresses
// in the same /24 sharing a forwarding path.
func (a Addr) Slash24() Addr { return Addr{a[0], a[1], a[2], 0} }

// SameSlash24 reports whether a and b share a /24.
func (a Addr) SameSlash24(b Addr) bool { return a.Slash24() == b.Slash24() }

// RandomAddrIn returns a uniformly random host address inside the /prefix
// network rooted at base, using rng. Host bits of base must be zero for the
// result to stay in the network; network and broadcast addresses are
// avoided for /31 and wider.
func RandomAddrIn(rng *rand.Rand, base Addr, prefix int) Addr {
	if prefix < 0 || prefix > 32 {
		panic("wire: invalid prefix length")
	}
	hostBits := 32 - prefix
	if hostBits == 0 {
		return base
	}
	span := uint32(1) << uint(hostBits)
	var host uint32
	if span > 2 {
		host = 1 + uint32(rng.Intn(int(span-2))) // skip network & broadcast
	} else {
		host = uint32(rng.Intn(int(span)))
	}
	return AddrFromUint32(base.Uint32() | host)
}

// Endpoint is an (address, port) pair.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// String renders addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow identifies a transport flow by protocol and both endpoints. It is
// comparable and symmetric-hashable via Canonical.
type Flow struct {
	Proto    IPProto
	Src, Dst Endpoint
}

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src} }

// Canonical returns a direction-independent representative of the flow
// (the lexicographically smaller of f and f.Reverse()), so both directions
// of a conversation map to the same key.
func (f Flow) Canonical() Flow {
	r := f.Reverse()
	if less(f, r) {
		return f
	}
	return r
}

func less(a, b Flow) bool {
	au, bu := a.Src.Addr.Uint32(), b.Src.Addr.Uint32()
	if au != bu {
		return au < bu
	}
	if a.Src.Port != b.Src.Port {
		return a.Src.Port < b.Src.Port
	}
	au, bu = a.Dst.Addr.Uint32(), b.Dst.Addr.Uint32()
	if au != bu {
		return au < bu
	}
	return a.Dst.Port < b.Dst.Port
}

// String renders "proto src->dst".
func (f Flow) String() string {
	return fmt.Sprintf("%s %s->%s", f.Proto, f.Src, f.Dst)
}
