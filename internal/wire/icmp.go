package wire

import (
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the simulator.
const (
	ICMPEchoReply    uint8 = 0
	ICMPDestUnreach  uint8 = 3
	ICMPEchoRequest  uint8 = 8
	ICMPTimeExceeded uint8 = 11
)

// ICMPHeaderLen is the fixed part of an ICMP message.
const ICMPHeaderLen = 8

// ICMP is a decoded ICMP message (RFC 792). For Time Exceeded and
// Destination Unreachable, Payload carries the original IP header plus the
// first 8 bytes of its payload, which is how traceroute correlates an error
// with the probe that caused it.
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     uint32 // type-specific: id/seq for echo, unused for errors

	payload []byte
}

// SerializeTo writes the message into buf with a computed checksum.
func (m *ICMP) SerializeTo(buf []byte, payload []byte) (int, error) {
	n := ICMPHeaderLen + len(payload)
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for ICMP message: %d < %d", len(buf), n)
	}
	buf[0] = m.Type
	buf[1] = m.Code
	buf[2], buf[3] = 0, 0
	binary.BigEndian.PutUint32(buf[4:8], m.Rest)
	copy(buf[ICMPHeaderLen:], payload)
	cs := Checksum(buf[:n])
	binary.BigEndian.PutUint16(buf[2:4], cs)
	return n, nil
}

// Serialize allocates and returns the wire bytes.
func (m *ICMP) Serialize(payload []byte) ([]byte, error) {
	buf := make([]byte, ICMPHeaderLen+len(payload))
	n, err := m.SerializeTo(buf, payload)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// DecodeFromBytes parses an ICMP message and verifies its checksum.
func (m *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPHeaderLen {
		return ErrTruncated
	}
	if Checksum(data) != 0 {
		return ErrBadChecksum
	}
	m.Type = data[0]
	m.Code = data[1]
	m.Checksum = binary.BigEndian.Uint16(data[2:4])
	m.Rest = binary.BigEndian.Uint32(data[4:8])
	m.payload = data[ICMPHeaderLen:] //shadowlint:ignore sliceretain documented zero-copy decoder: payload aliases the caller buffer
	return nil
}

// Payload returns the bytes after the fixed header.
func (m *ICMP) Payload() []byte { return m.payload }

// TimeExceededQuoteLen is how much of the offending packet a router quotes
// in a Time Exceeded message: the IP header plus 8 bytes (RFC 792).
const TimeExceededQuoteLen = IPv4HeaderLen + 8

// NewTimeExceeded builds the ICMP Time Exceeded (TTL expired in transit)
// message a router emits when it decrements a packet's TTL to zero. The
// quoted packet is truncated to TimeExceededQuoteLen.
func NewTimeExceeded(original []byte) *ICMP {
	quote := original
	if len(quote) > TimeExceededQuoteLen {
		quote = quote[:TimeExceededQuoteLen]
	}
	m := &ICMP{Type: ICMPTimeExceeded, Code: 0}
	m.payload = append([]byte(nil), quote...)
	return m
}

// QuotedIPv4 extracts the quoted original IPv4 header from an ICMP error
// message payload. Traceroute uses the quoted (src, dst, ID) triple to map
// an error back to the probe that triggered it.
func (m *ICMP) QuotedIPv4() (*IPv4, error) {
	if m.Type != ICMPTimeExceeded && m.Type != ICMPDestUnreach {
		return nil, fmt.Errorf("wire: ICMP type %d carries no quoted packet", m.Type)
	}
	if len(m.payload) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	var quoted IPv4
	// The quote is truncated, so TotalLen generally exceeds what is present;
	// decode header fields manually without the length/checksum validation
	// DecodeFromBytes performs on complete packets.
	data := m.payload
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return nil, ErrBadHeader
	}
	quoted.TOS = data[1]
	quoted.TotalLen = binary.BigEndian.Uint16(data[2:4])
	quoted.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	quoted.Flags = uint8(ff >> 13)
	quoted.FragOff = ff & 0x1FFF
	quoted.TTL = data[8]
	quoted.Protocol = IPProto(data[9])
	copy(quoted.Src[:], data[12:16])
	copy(quoted.Dst[:], data[16:20])
	quoted.payload = data[ihl:]
	return &quoted, nil
}
