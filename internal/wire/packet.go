package wire

import "fmt"

// Packet is a fully decoded packet as seen by simulator devices: the IPv4
// header plus exactly one transport layer. Decoded transport payloads alias
// the raw buffer.
type Packet struct {
	IP   IPv4
	UDP  *UDP
	TCP  *TCP
	ICMP *ICMP

	raw []byte
}

// Parser decodes packets into reusable layer storage, in the style of
// gopacket's DecodingLayerParser: one Parser per goroutine, zero
// allocations per packet on the happy path.
type Parser struct {
	udp  UDP
	tcp  TCP
	icmp ICMP
}

// Decode parses data into pkt. pkt retains references into data; the caller
// must not reuse data while pkt is live. The transport pointer fields are
// owned by the Parser and overwritten by the next Decode call.
func (p *Parser) Decode(data []byte, pkt *Packet) error {
	pkt.UDP, pkt.TCP, pkt.ICMP = nil, nil, nil
	pkt.raw = data //shadowlint:ignore sliceretain documented zero-copy parser: pkt aliases data until the next Decode
	if err := pkt.IP.DecodeFromBytes(data); err != nil {
		return err
	}
	payload := pkt.IP.Payload()
	switch pkt.IP.Protocol {
	case ProtoUDP:
		if err := p.udp.DecodeFromBytes(payload, pkt.IP.Src, pkt.IP.Dst); err != nil {
			return fmt.Errorf("udp: %w", err)
		}
		pkt.UDP = &p.udp
	case ProtoTCP:
		if err := p.tcp.DecodeFromBytes(payload, pkt.IP.Src, pkt.IP.Dst); err != nil {
			return fmt.Errorf("tcp: %w", err)
		}
		pkt.TCP = &p.tcp
	case ProtoICMP:
		if err := p.icmp.DecodeFromBytes(payload); err != nil {
			return fmt.Errorf("icmp: %w", err)
		}
		pkt.ICMP = &p.icmp
	default:
		return fmt.Errorf("wire: unsupported protocol %d", pkt.IP.Protocol)
	}
	return nil
}

// Decode is a convenience one-shot parse that allocates its own layers.
func Decode(data []byte) (*Packet, error) {
	var p Parser
	var pkt Packet
	if err := p.Decode(data, &pkt); err != nil {
		return nil, err
	}
	// Detach the layer storage from the throwaway parser.
	out := &Packet{IP: pkt.IP, raw: data} //shadowlint:ignore sliceretain documented one-shot decode: Packet aliases data by contract
	switch {
	case pkt.UDP != nil:
		u := *pkt.UDP
		out.UDP = &u
	case pkt.TCP != nil:
		t := *pkt.TCP
		out.TCP = &t
	case pkt.ICMP != nil:
		m := *pkt.ICMP
		out.ICMP = &m
	}
	return out, nil
}

// Raw returns the serialized bytes the packet was decoded from.
func (pkt *Packet) Raw() []byte { return pkt.raw }

// Flow returns the transport flow of the packet. ICMP packets report port 0
// on both sides.
func (pkt *Packet) Flow() Flow {
	f := Flow{Proto: pkt.IP.Protocol}
	f.Src.Addr, f.Dst.Addr = pkt.IP.Src, pkt.IP.Dst
	switch {
	case pkt.UDP != nil:
		f.Src.Port, f.Dst.Port = pkt.UDP.SrcPort, pkt.UDP.DstPort
	case pkt.TCP != nil:
		f.Src.Port, f.Dst.Port = pkt.TCP.SrcPort, pkt.TCP.DstPort
	}
	return f
}

// TransportPayload returns the application payload, regardless of transport.
func (pkt *Packet) TransportPayload() []byte {
	switch {
	case pkt.UDP != nil:
		return pkt.UDP.Payload()
	case pkt.TCP != nil:
		return pkt.TCP.Payload()
	case pkt.ICMP != nil:
		return pkt.ICMP.Payload()
	}
	return nil
}

// BuildUDP serializes a complete IPv4/UDP packet in a single allocation:
// the transport layer serializes in place behind the header slot, so the
// payload is copied exactly once.
func BuildUDP(src, dst Endpoint, ttl uint8, id uint16, payload []byte) ([]byte, error) {
	udp := UDP{SrcPort: src.Port, DstPort: dst.Port}
	buf := make([]byte, IPv4HeaderLen+UDPHeaderLen+len(payload))
	if _, err := udp.SerializeTo(buf[IPv4HeaderLen:], src.Addr, dst.Addr, payload); err != nil {
		return nil, err
	}
	ip := IPv4{TTL: ttl, Protocol: ProtoUDP, ID: id, Src: src.Addr, Dst: dst.Addr, Flags: FlagDF}
	if err := ip.SerializeHeader(buf, len(buf)-IPv4HeaderLen); err != nil {
		return nil, err
	}
	return buf, nil
}

// BuildTCP serializes a complete IPv4/TCP packet in a single allocation.
func BuildTCP(src, dst Endpoint, ttl uint8, id uint16, flags uint8, seq, ack uint32, payload []byte) ([]byte, error) {
	tcp := TCP{SrcPort: src.Port, DstPort: dst.Port, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	buf := make([]byte, IPv4HeaderLen+TCPHeaderLen+len(payload))
	if _, err := tcp.SerializeTo(buf[IPv4HeaderLen:], src.Addr, dst.Addr, payload); err != nil {
		return nil, err
	}
	ip := IPv4{TTL: ttl, Protocol: ProtoTCP, ID: id, Src: src.Addr, Dst: dst.Addr, Flags: FlagDF}
	if err := ip.SerializeHeader(buf, len(buf)-IPv4HeaderLen); err != nil {
		return nil, err
	}
	return buf, nil
}

// BuildICMP serializes a complete IPv4/ICMP packet in a single allocation.
func BuildICMP(src, dst Addr, ttl uint8, id uint16, msg *ICMP, msgPayload []byte) ([]byte, error) {
	buf := make([]byte, IPv4HeaderLen+ICMPHeaderLen+len(msgPayload))
	if _, err := msg.SerializeTo(buf[IPv4HeaderLen:], msgPayload); err != nil {
		return nil, err
	}
	ip := IPv4{TTL: ttl, Protocol: ProtoICMP, ID: id, Src: src, Dst: dst}
	if err := ip.SerializeHeader(buf, len(buf)-IPv4HeaderLen); err != nil {
		return nil, err
	}
	return buf, nil
}
