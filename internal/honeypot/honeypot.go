// Package honeypot implements the capture infrastructure of the
// experiment: authoritative DNS servers for the experiment zone (wildcard
// records resolving every decoy domain to honey web servers) and the honey
// HTTP/HTTPS sites those records point at.
//
// Honeypots only *log*. Deciding whether an arriving request is
// unsolicited — the three classification rules of Section 3 — is the
// correlation stage's job (internal/correlate), which consumes the capture
// log together with the decoy send log.
package honeypot

import (
	"fmt"
	"sync"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

// Capture is one request logged by a honeypot.
type Capture struct {
	Time     time.Time
	Location string         // honeypot site, e.g. "US"
	Protocol decoy.Protocol // protocol of the arriving request
	Source   wire.Endpoint
	Domain   string // experiment domain carried by the request
	Label    string // left-most label (encoded identifier)
	HTTPPath string // HTTP(S) only
	Payload  string // request head for signature matching
	DNSType  uint16 // DNS only
}

// Log is a thread-safe append-only capture log shared by all honeypot
// sites.
type Log struct {
	mu       sync.Mutex
	captures []Capture
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Append adds one capture.
func (l *Log) Append(c Capture) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.captures = append(l.captures, c)
}

// Snapshot copies the log contents.
func (l *Log) Snapshot() []Capture {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Capture(nil), l.captures...)
}

// Len reports the number of captures.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.captures)
}

// Site is one honeypot location: an authoritative DNS server and a honey
// web server.
type Site struct {
	Location string
	AuthAddr wire.Addr
	WebAddr  wire.Addr
}

// Config parameterizes a honeypot deployment.
type Config struct {
	// Zone is the experiment domain (wildcarded to the honeypots).
	Zone string
	// RecordTTL is the wildcard DNS record TTL; the paper uses 3600s.
	RecordTTL uint32
	// Codec decodes identifier labels for pre-filtering; optional.
	Codec *identifier.Codec
	// Telemetry receives capture counters. Nil creates a private set so
	// the handlers never nil-check.
	Telemetry *telemetry.Set
}

// Deployment is the set of honeypot sites plus their shared log.
type Deployment struct {
	Zone  string
	Sites []*Site
	Log   *Log

	recordTTL uint32
	codec     *identifier.Codec
	webAddrs  []wire.Addr

	mu          sync.Mutex
	homepage    int64 // visits to the documented experiment homepage
	unparseable int64

	// enc is reply-encode scratch. Handlers run on the world's single
	// event-loop goroutine, and the packet builder copies the bytes before
	// the next query can arrive, so one per-deployment encoder is safe.
	//
	//shadowlint:eventloop
	enc dnswire.Encoder
	// dec and resp are decode/reply scratch under the same single-
	// goroutine contract: handleDNS fully consumes the query (the name
	// strings it retains in Captures are fresh allocations) and encodes
	// the reply before returning, so both messages are dead by the time
	// the next query arrives and their section arrays can be recycled.
	//
	//shadowlint:eventloop
	dec dnswire.Message
	//shadowlint:eventloop
	resp dnswire.Message

	m deploymentMetrics
}

type deploymentMetrics struct {
	captures       *telemetry.CounterVec // by protocol
	capturesDNS    *telemetry.Counter    // cached children of captures
	capturesHTTP   *telemetry.Counter
	capturesTLS    *telemetry.Counter
	unparseable    *telemetry.Counter
	homepageVisits *telemetry.Counter
}

func newDeploymentMetrics(reg *telemetry.Registry) deploymentMetrics {
	captures := reg.CounterVec("honeypot_captures_total", "requests logged by honeypot sites", "protocol")
	return deploymentMetrics{
		captures:       captures,
		capturesDNS:    captures.With("dns"),
		capturesHTTP:   captures.With("http"),
		capturesTLS:    captures.With("tls"),
		unparseable:    reg.Counter("honeypot_unparseable_total", "malformed arrivals at honeypot sites"),
		homepageVisits: reg.Counter("honeypot_homepage_visits_total", "fetches of the experiment homepage"),
	}
}

// HomepageHTML is served at "/" — the paper documents the experiment and a
// contact address on the honey site's homepage (Appendix A).
const HomepageHTML = `<html><head><title>Network Measurement Experiment</title></head>
<body><h1>Internet Traffic Shadowing Measurement</h1>
<p>This server is part of an academic measurement experiment studying
unsolicited re-use of network traffic data. No personal data is collected.
Contact: research@experiment.invalid</p></body></html>`

// Deploy builds sites at the given locations, registers their hosts on the
// network, installs the zone delegation, and returns the deployment.
// Addresses are supplied by the caller (core allocates them in hosting
// ASes of the right countries).
func Deploy(n *netsim.Network, cfg Config, sites []*Site, registry interface {
	Delegate(zone string, auth wire.Addr)
}) *Deployment {
	ttl := cfg.RecordTTL
	if ttl == 0 {
		ttl = 3600
	}
	tele := cfg.Telemetry
	if tele == nil {
		tele = telemetry.NewSet()
	}
	d := &Deployment{
		Zone:      dnswire.Canonical(cfg.Zone),
		Sites:     sites,
		Log:       NewLog(),
		recordTTL: ttl,
		codec:     cfg.Codec,
		m:         newDeploymentMetrics(tele.Registry),
	}
	for _, s := range sites {
		d.webAddrs = append(d.webAddrs, s.WebAddr)
	}
	for _, s := range sites {
		s := s
		auth := netsim.NewHost(n, s.AuthAddr)
		auth.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
			return d.handleDNS(n, s, from, payload)
		})
		web := netsim.NewHost(n, s.WebAddr)
		web.ServeTCP(80, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
			return d.handleHTTP(n, s, from, payload)
		})
		web.ServeTCP(443, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
			return d.handleTLS(n, s, from, payload)
		})
	}
	// All sites serve the zone; the first is the registered primary.
	if len(sites) > 0 && registry != nil {
		registry.Delegate(d.Zone, sites[0].AuthAddr)
	}
	return d
}

// handleDNS answers authoritative queries for the experiment zone with the
// wildcard A records pointing at the honey web servers, logging every
// arrival.
func (d *Deployment) handleDNS(n *netsim.Network, s *Site, from wire.Endpoint, payload []byte) []byte {
	q := &d.dec
	if err := dnswire.DecodeInto(q, payload); err != nil || q.Header.QR || len(q.Questions) == 0 {
		d.countUnparseable()
		return nil
	}
	name := q.QName()
	if !dnswire.IsSubdomain(name, d.Zone) {
		dnswire.ResponseInto(&d.resp, q, dnswire.RcodeRefused)
		raw, err := d.resp.AppendEncode(&d.enc)
		if err != nil {
			return nil
		}
		return raw
	}
	d.Log.Append(Capture{
		Time: n.Now(), Location: s.Location, Protocol: decoy.DNS,
		Source: from, Domain: name, Label: firstIdentifierLabel(name),
		DNSType: q.QType(),
	})
	d.m.capturesDNS.Inc()
	resp := &d.resp
	dnswire.ResponseInto(resp, q, dnswire.RcodeNoError)
	resp.Header.AA = true
	if q.QType() == dnswire.TypeA || q.QType() == dnswire.TypeANY {
		// Rotate the answer order by name hash so probe traffic spreads
		// over the three sites.
		start := nameHash(name) % len(d.webAddrs)
		for i := 0; i < len(d.webAddrs); i++ {
			addr := d.webAddrs[(start+i)%len(d.webAddrs)]
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeA, TTL: d.recordTTL, Addr: addr,
			})
		}
	}
	raw, err := resp.AppendEncode(&d.enc)
	if err != nil {
		return nil
	}
	return raw
}

// handleHTTP serves the honey website and logs the request.
func (d *Deployment) handleHTTP(n *netsim.Network, s *Site, from wire.Endpoint, payload []byte) []byte {
	req, err := httpwire.ParseRequest(payload)
	if err != nil {
		d.countUnparseable()
		return httpwire.NewResponse(400, "bad request").Encode()
	}
	host := dnswire.Canonical(req.Host())
	d.Log.Append(Capture{
		Time: n.Now(), Location: s.Location, Protocol: decoy.HTTP,
		Source: from, Domain: host, Label: firstIdentifierLabel(host),
		HTTPPath: req.Path, Payload: requestHead(req),
	})
	d.m.capturesHTTP.Inc()
	if req.Path == "/" {
		d.mu.Lock()
		d.homepage++
		d.mu.Unlock()
		d.m.homepageVisits.Inc()
		return httpwire.NewResponse(200, HomepageHTML).Encode()
	}
	return httpwire.NewResponse(404, "not found").Encode()
}

// handleTLS answers ClientHellos with a minimal ServerHello and logs SNI.
func (d *Deployment) handleTLS(n *netsim.Network, s *Site, from wire.Endpoint, payload []byte) []byte {
	ch, err := tlswire.ParseClientHello(payload)
	if err != nil {
		d.countUnparseable()
		return nil
	}
	name := dnswire.Canonical(ch.ServerName)
	d.Log.Append(Capture{
		Time: n.Now(), Location: s.Location, Protocol: decoy.TLS,
		Source: from, Domain: name, Label: firstIdentifierLabel(name),
		Payload: "CLIENTHELLO sni=" + name,
	})
	d.m.capturesTLS.Inc()
	sh := tlswire.ServerHello{Version: tlswire.VersionTLS12, CipherSuite: 0x1301}
	copy(sh.Random[:], name) // deterministic, content-derived
	return sh.Encode()
}

// HomepageVisits reports how many times "/" was fetched.
func (d *Deployment) HomepageVisits() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.homepage
}

// Unparseable reports malformed arrivals.
func (d *Deployment) Unparseable() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.unparseable
}

func (d *Deployment) countUnparseable() {
	d.mu.Lock()
	d.unparseable++
	d.mu.Unlock()
	d.m.unparseable.Inc()
}

// firstIdentifierLabel extracts the left-most label if it is shaped like an
// encoded identifier, else "".
func firstIdentifierLabel(name string) string {
	label := dnswire.FirstLabel(name)
	if identifier.IsIdentifierLabel(label) {
		return label
	}
	return ""
}

func requestHead(req *httpwire.Request) string {
	return fmt.Sprintf("%s %s %s host=%s", req.Method, req.Path, req.Proto, req.Host())
}

func nameHash(s string) int {
	h := 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ int(s[i])) * 16777619 & 0x7FFFFFFF
	}
	return h
}
