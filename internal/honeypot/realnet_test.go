package honeypot

import (
	"net"
	"strings"
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

func startRealNet(t *testing.T) (*RealNet, string, string) {
	t.Helper()
	rn := NewRealNet("experiment.domain", "TEST", []wire.Addr{wire.MustParseAddr("127.0.0.1")})
	dnsAddr, httpAddr, err := rn.Start("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rn.Close)
	return rn, dnsAddr, httpAddr
}

func TestRealNetDNSOverUDP(t *testing.T) {
	rn, dnsAddr, _ := startRealNet(t)
	conn, err := net.Dial("udp", dnsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	name := label(t) + ".www.experiment.domain"
	q := dnswire.NewQuery(77, name, dnswire.TypeA)
	payload, _ := q.Encode()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.AA || len(resp.Answers) != 1 || resp.Answers[0].Addr != wire.MustParseAddr("127.0.0.1") {
		t.Fatalf("response = %+v", resp)
	}
	caps := rn.Log.Snapshot()
	if len(caps) != 1 || caps[0].Protocol != decoy.DNS || caps[0].Domain != name || caps[0].Label == "" {
		t.Fatalf("captures = %+v", caps)
	}
}

func TestRealNetHTTPOverTCP(t *testing.T) {
	rn, _, httpAddr := startRealNet(t)
	conn, err := net.Dial("tcp", httpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	name := label(t) + ".www.experiment.domain"
	req := httpwire.NewGET(name, "/.git/config").Encode()
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 8192)
	n, _ := conn.Read(buf)
	resp, err := httpwire.ParseResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	caps := rn.Log.Snapshot()
	if len(caps) != 1 || caps[0].HTTPPath != "/.git/config" {
		t.Fatalf("captures = %+v", caps)
	}
}

func TestRealNetHomepage(t *testing.T) {
	rn, _, httpAddr := startRealNet(t)
	conn, err := net.Dial("tcp", httpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(httpwire.NewGET("visitor.example", "/").Encode())
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 16384)
	n, _ := conn.Read(buf)
	if !strings.Contains(string(buf[:n]), "measurement experiment") {
		t.Error("homepage should document the experiment")
	}
	_ = rn
}

func TestRealNetRefusesOutOfZone(t *testing.T) {
	rn, _, _ := startRealNet(t)
	q := dnswire.NewQuery(5, "www.elsewhere.tld", dnswire.TypeA)
	payload, _ := q.Encode()
	resp := rn.HandleDNSQuery(payload, wire.MustParseAddr("10.0.0.1"), 5555)
	m, err := dnswire.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %d", m.Header.Rcode)
	}
	if rn.Log.Len() != 0 {
		t.Error("out-of-zone query logged")
	}
}

func TestRealNetDoubleStart(t *testing.T) {
	rn, _, _ := startRealNet(t)
	if _, _, err := rn.Start("127.0.0.1:0", ""); err == nil {
		t.Error("second Start should fail")
	}
}

func TestRealNetTLSOverTCP(t *testing.T) {
	rn, _, _ := startRealNet(t)
	tlsAddr, err := rn.StartTLS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", tlsAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	name := label(t) + ".www.experiment.domain"
	var rnd [32]byte
	ch := tlswire.NewClientHello(name, rnd)
	payload, _ := ch.Encode()
	conn.Write(payload)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tlswire.ParseServerHello(buf[:n]); err != nil {
		t.Fatalf("no ServerHello: %v", err)
	}
	caps := rn.Log.Snapshot()
	if len(caps) != 1 || caps[0].Protocol != decoy.TLS || caps[0].Domain != name || caps[0].Label == "" {
		t.Fatalf("captures = %+v", caps)
	}
}

func TestRealNetTLSWithECH(t *testing.T) {
	rn, _, _ := startRealNet(t)
	name := label(t) + ".www.experiment.domain"
	var rnd [32]byte
	ch := tlswire.NewClientHelloECH(name, rnd)
	payload, _ := ch.Encode()
	// Handler-level test: the honeypot (a terminating server) decrypts ECH.
	resp := rn.HandleClientHello(payload, wire.Endpoint{Addr: wire.MustParseAddr("10.0.0.9"), Port: 1})
	if resp == nil {
		t.Fatal("no ServerHello for ECH hello")
	}
	caps := rn.Log.Snapshot()
	if len(caps) != 1 || caps[0].Domain != name {
		t.Fatalf("captures = %+v", caps)
	}
}
