package honeypot

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

// RealNet is the honeypot deployed on actual network sockets: an
// authoritative DNS server on UDP and the honey website on TCP, sharing
// the simulator honeypot's zone logic and capture log. cmd/honeypotd wraps
// it; the realnet example drives it over loopback.
type RealNet struct {
	Zone string
	Log  *Log
	// WebAddrs are the A records the wildcard answers with.
	WebAddrs []wire.Addr
	// RecordTTL is the wildcard record TTL (default 3600).
	RecordTTL uint32
	Location  string
	// Clock stamps captures and connection deadlines. Callers running on
	// the real network thread time.Now in (cmd/honeypotd, the realnet
	// example); tests may inject a fixed clock for reproducible logs.
	Clock func() time.Time
	// Telemetry owns the real-network metrics. Captures arrive on
	// concurrent goroutines, so all handles are AtomicCounters.
	Telemetry *telemetry.Set

	m       realNetMetrics
	mu      sync.Mutex
	udp     *net.UDPConn
	tcp     net.Listener
	tls     net.Listener
	closed  bool
	wg      sync.WaitGroup
	started bool
}

type realNetMetrics struct {
	capturesDNS  *telemetry.AtomicCounter
	capturesHTTP *telemetry.AtomicCounter
	capturesTLS  *telemetry.AtomicCounter
	unparseable  *telemetry.AtomicCounter
	homepage     *telemetry.AtomicCounter
}

// NewRealNet builds a real-network honeypot for zone.
func NewRealNet(zone, location string, webAddrs []wire.Addr) *RealNet {
	tele := telemetry.NewSet()
	reg := tele.Registry
	return &RealNet{
		Zone:      dnswire.Canonical(zone),
		Log:       NewLog(),
		WebAddrs:  webAddrs,
		RecordTTL: 3600,
		Location:  location,
		Telemetry: tele,
		m: realNetMetrics{
			capturesDNS:  reg.AtomicCounter("honeypot_captures_dns_total", "DNS queries captured on real sockets"),
			capturesHTTP: reg.AtomicCounter("honeypot_captures_http_total", "HTTP requests captured on real sockets"),
			capturesTLS:  reg.AtomicCounter("honeypot_captures_tls_total", "TLS ClientHellos captured on real sockets"),
			unparseable:  reg.AtomicCounter("honeypot_unparseable_total", "malformed arrivals on real sockets"),
			homepage:     reg.AtomicCounter("honeypot_homepage_visits_total", "fetches of the experiment homepage"),
		},
	}
}

// now returns the capture timestamp source. The fallback is the one
// deliberate wall-clock read in internal/: a real-socket honeypot runs
// on real time by definition, and a zero Clock must not stamp captures
// with the zero time.
func (r *RealNet) now() time.Time {
	if r.Clock != nil {
		return r.Clock()
	}
	return time.Now() //shadowlint:ignore simclock real-socket honeypot fallback; simulation code threads Clock instead
}

// closeQuietly releases a socket during teardown or an error unwind; by
// then the capture log is already safe, so close errors carry no signal.
func closeQuietly(c io.Closer) {
	_ = c.Close() //shadowlint:ignore droppederr teardown close errors carry no signal
}

// Start binds the DNS server to dnsAddr (e.g. "127.0.0.1:5353") and the
// web server to httpAddr (e.g. "127.0.0.1:8080") and serves until Close.
// Either address may be empty to skip that listener. It returns the bound
// addresses. Use StartTLS afterwards to also accept TLS ClientHellos.
func (r *RealNet) Start(dnsAddr, httpAddr string) (boundDNS, boundHTTP string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return "", "", errors.New("honeypot: already started")
	}
	if dnsAddr != "" {
		ua, err := net.ResolveUDPAddr("udp", dnsAddr)
		if err != nil {
			return "", "", fmt.Errorf("honeypot: resolve %q: %w", dnsAddr, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			return "", "", fmt.Errorf("honeypot: listen udp: %w", err)
		}
		r.udp = conn
		boundDNS = conn.LocalAddr().String()
		r.wg.Add(1)
		go r.serveDNS(conn)
	}
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			if r.udp != nil {
				closeQuietly(r.udp)
			}
			return "", "", fmt.Errorf("honeypot: listen tcp: %w", err)
		}
		r.tcp = ln
		boundHTTP = ln.Addr().String()
		r.wg.Add(1)
		go r.serveHTTP(ln)
	}
	r.started = true
	return boundDNS, boundHTTP, nil
}

// StartTLS binds a third listener that speaks the TLS handshake front: it
// parses ClientHellos (clear-text SNI or ECH), logs the server name, and
// answers with a minimal ServerHello — the real-socket counterpart of the
// simulated honey site's port 443.
func (r *RealNet) StartTLS(addr string) (bound string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tls != nil {
		return "", errors.New("honeypot: TLS already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("honeypot: listen tls: %w", err)
	}
	r.tls = ln
	r.wg.Add(1)
	go r.serveTLS(ln)
	return ln.Addr().String(), nil
}

func (r *RealNet) serveTLS(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.isClosed() {
				return
			}
			continue
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			if err := conn.SetDeadline(r.now().Add(10 * time.Second)); err != nil {
				return
			}
			buf := make([]byte, 16<<10)
			n, err := conn.Read(buf)
			if err != nil || n == 0 {
				return
			}
			if resp := r.HandleClientHello(buf[:n], remoteAddr(conn)); resp != nil {
				_, _ = conn.Write(resp) //shadowlint:ignore droppederr best-effort reply; the capture is already logged
			}
		}()
	}
}

// HandleClientHello implements the TLS front over raw record bytes.
func (r *RealNet) HandleClientHello(raw []byte, src wire.Endpoint) []byte {
	ch, err := tlswire.ParseClientHello(raw)
	if err != nil {
		r.m.unparseable.Inc()
		return nil
	}
	name := ch.ServerName
	if name == "" {
		name, _ = ch.ECHServerName()
	}
	name = dnswire.Canonical(name)
	r.Log.Append(Capture{
		Time: r.now(), Location: r.Location, Protocol: decoy.TLS,
		Source: src, Domain: name, Label: firstIdentifierLabel(name),
		Payload: "CLIENTHELLO sni=" + name,
	})
	r.m.capturesTLS.Inc()
	sh := tlswire.ServerHello{Version: tlswire.VersionTLS12, CipherSuite: 0x1301}
	copy(sh.Random[:], name)
	return sh.Encode()
}

// Close stops all listeners and waits for the serve loops to exit.
func (r *RealNet) Close() {
	r.mu.Lock()
	r.closed = true
	if r.udp != nil {
		closeQuietly(r.udp)
	}
	if r.tcp != nil {
		closeQuietly(r.tcp)
	}
	if r.tls != nil {
		closeQuietly(r.tls)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *RealNet) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *RealNet) serveDNS(conn *net.UDPConn) {
	defer r.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			if r.isClosed() {
				return
			}
			continue
		}
		resp := r.HandleDNSQuery(buf[:n], addrOf(from.IP), uint16(from.Port))
		if resp != nil {
			_, _ = conn.WriteToUDP(resp, from) //shadowlint:ignore droppederr best-effort reply; the capture is already logged
		}
	}
}

// HandleDNSQuery implements the authoritative logic over raw message
// bytes; exposed for tests and for embedding in custom servers.
func (r *RealNet) HandleDNSQuery(payload []byte, src wire.Addr, srcPort uint16) []byte {
	q, err := dnswire.Decode(payload)
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		r.m.unparseable.Inc()
		return nil
	}
	name := q.QName()
	if !dnswire.IsSubdomain(name, r.Zone) {
		resp := dnswire.NewResponse(q, dnswire.RcodeRefused)
		raw, err := resp.Encode()
		if err != nil {
			return nil
		}
		return raw
	}
	r.Log.Append(Capture{
		Time: r.now(), Location: r.Location, Protocol: decoy.DNS,
		Source: wire.Endpoint{Addr: src, Port: srcPort},
		Domain: name, Label: firstIdentifierLabel(name), DNSType: q.QType(),
	})
	r.m.capturesDNS.Inc()
	resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
	resp.Header.AA = true
	if q.QType() == dnswire.TypeA || q.QType() == dnswire.TypeANY {
		for _, a := range r.WebAddrs {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeA, TTL: r.RecordTTL, Addr: a,
			})
		}
	}
	raw, err := resp.Encode()
	if err != nil {
		return nil
	}
	return raw
}

func (r *RealNet) serveHTTP(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.isClosed() {
				return
			}
			continue
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.handleHTTPConn(conn)
		}()
	}
}

func (r *RealNet) handleHTTPConn(conn net.Conn) {
	if err := conn.SetDeadline(r.now().Add(10 * time.Second)); err != nil {
		return
	}
	head, err := readHTTPHead(conn)
	if err != nil {
		return
	}
	resp := r.HandleHTTPRequest(head, remoteAddr(conn))
	_, _ = conn.Write(resp) //shadowlint:ignore droppederr best-effort reply; the capture is already logged
}

// HandleHTTPRequest implements the honey-website logic over raw request
// bytes.
func (r *RealNet) HandleHTTPRequest(raw []byte, src wire.Endpoint) []byte {
	req, err := httpwire.ParseRequest(raw)
	if err != nil {
		r.m.unparseable.Inc()
		return httpwire.NewResponse(400, "bad request").Encode()
	}
	host := dnswire.Canonical(req.Host())
	r.Log.Append(Capture{
		Time: r.now(), Location: r.Location, Protocol: decoy.HTTP,
		Source: src, Domain: host, Label: firstIdentifierLabel(host),
		HTTPPath: req.Path, Payload: requestHead(req),
	})
	r.m.capturesHTTP.Inc()
	if req.Path == "/" {
		r.m.homepage.Inc()
		return httpwire.NewResponse(200, HomepageHTML).Encode()
	}
	return httpwire.NewResponse(404, "not found").Encode()
}

// readHTTPHead reads a request until the end of headers plus any
// Content-Length body (bounded at 64 KiB).
func readHTTPHead(conn net.Conn) ([]byte, error) {
	var buf []byte
	tmp := make([]byte, 2048)
	for len(buf) < 64<<10 {
		n, err := conn.Read(tmp)
		if n > 0 {
			buf = append(buf, tmp[:n]...)
			if i := strings.Index(string(buf), "\r\n\r\n"); i >= 0 {
				// Head complete; httpwire handles short bodies tolerantly
				// for GETs (no Content-Length).
				return buf, nil
			}
		}
		if err != nil {
			if err == io.EOF && len(buf) > 0 {
				return buf, nil
			}
			return nil, err
		}
	}
	return buf, nil
}

func addrOf(ip net.IP) wire.Addr {
	var a wire.Addr
	if v4 := ip.To4(); v4 != nil {
		copy(a[:], v4)
	}
	return a
}

func remoteAddr(conn net.Conn) wire.Endpoint {
	var ep wire.Endpoint
	if tcp, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		ep.Addr = addrOf(tcp.IP)
		ep.Port = uint16(tcp.Port)
	}
	return ep
}
