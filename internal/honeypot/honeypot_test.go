package honeypot

import (
	"strings"
	"sync"
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

var (
	t0    = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	codec = identifier.NewCodec(t0)
)

func deploy(t *testing.T) (*netsim.Network, *Deployment, *resolversim.Registry) {
	t.Helper()
	n := netsim.New(netsim.Config{Start: t0})
	registry := resolversim.NewRegistry()
	sites := []*Site{
		{Location: "US", AuthAddr: wire.MustParseAddr("198.51.100.1"), WebAddr: wire.MustParseAddr("198.51.100.2")},
		{Location: "DE", AuthAddr: wire.MustParseAddr("198.51.101.1"), WebAddr: wire.MustParseAddr("198.51.101.2")},
		{Location: "SG", AuthAddr: wire.MustParseAddr("198.51.102.1"), WebAddr: wire.MustParseAddr("198.51.102.2")},
	}
	d := Deploy(n, Config{Zone: "experiment.domain", Codec: codec}, sites, registry)
	return n, d, registry
}

func label(t *testing.T) string {
	t.Helper()
	l, err := codec.Encode(identifier.ID{Time: t0.Add(time.Hour), VP: wire.AddrFrom(1, 2, 3, 4), Dst: wire.AddrFrom(5, 6, 7, 8), TTL: 64, Nonce: 7})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestZoneDelegated(t *testing.T) {
	_, d, registry := deploy(t)
	zone, auth, ok := registry.AuthFor("x.www.experiment.domain")
	if !ok || zone != "experiment.domain" {
		t.Fatalf("delegation missing: %q %v", zone, ok)
	}
	if auth != d.Sites[0].AuthAddr {
		t.Errorf("auth = %v", auth)
	}
}

func TestDNSWildcardAnswer(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	name := label(t) + ".www.experiment.domain"
	q := dnswire.NewQuery(9, name, dnswire.TypeA)
	payload, _ := q.Encode()
	var resp *dnswire.Message
	client.SendUDPRequest(n, wire.Endpoint{Addr: d.Sites[0].AuthAddr, Port: 53}, payload, netsim.UDPRequestOpts{
		OnReply: func(n *netsim.Network, raw []byte) { resp, _ = dnswire.Decode(raw) },
	})
	n.RunUntilIdle()
	if resp == nil {
		t.Fatal("no response")
	}
	if !resp.Header.AA || resp.Header.Rcode != dnswire.RcodeNoError {
		t.Errorf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 3 {
		t.Fatalf("answers = %d, want 3 (all web addrs)", len(resp.Answers))
	}
	webAddrs := map[wire.Addr]bool{}
	for _, a := range resp.Answers {
		if a.TTL != 3600 {
			t.Errorf("record TTL = %d, want 3600", a.TTL)
		}
		webAddrs[a.Addr] = true
	}
	for _, s := range d.Sites {
		if !webAddrs[s.WebAddr] {
			t.Errorf("missing web addr %v", s.WebAddr)
		}
	}
	// The arrival is logged with the identifier label extracted.
	caps := d.Log.Snapshot()
	if len(caps) != 1 {
		t.Fatalf("captures = %d", len(caps))
	}
	if caps[0].Protocol != decoy.DNS || caps[0].Domain != name || caps[0].Label == "" {
		t.Errorf("capture = %+v", caps[0])
	}
}

func TestDNSOutOfZoneRefused(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	q := dnswire.NewQuery(9, "www.not-ours.tld", dnswire.TypeA)
	payload, _ := q.Encode()
	var rcode uint8 = 255
	client.SendUDPRequest(n, wire.Endpoint{Addr: d.Sites[0].AuthAddr, Port: 53}, payload, netsim.UDPRequestOpts{
		OnReply: func(n *netsim.Network, raw []byte) {
			if m, err := dnswire.Decode(raw); err == nil {
				rcode = m.Header.Rcode
			}
		},
	})
	n.RunUntilIdle()
	if rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %d, want REFUSED", rcode)
	}
	if d.Log.Len() != 0 {
		t.Error("out-of-zone query should not be logged")
	}
}

func TestHTTPCaptureAndHomepage(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	name := label(t) + ".www.experiment.domain"

	var body []byte
	req := httpwire.NewGET(name, "/").Encode()
	client.SendTCPRequest(n, wire.Endpoint{Addr: d.Sites[1].WebAddr, Port: 80}, req, netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, payload []byte) { body = payload },
	})
	n.RunUntilIdle()
	resp, err := httpwire.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "measurement experiment") {
		t.Errorf("homepage = %d %q", resp.StatusCode, resp.Body)
	}
	if d.HomepageVisits() != 1 {
		t.Errorf("homepage visits = %d", d.HomepageVisits())
	}

	// Enumeration path gets 404 and is logged with the path.
	req = httpwire.NewGET(name, "/admin/").Encode()
	client.SendTCPRequest(n, wire.Endpoint{Addr: d.Sites[1].WebAddr, Port: 80}, req, netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, payload []byte) { body = payload },
	})
	n.RunUntilIdle()
	resp, err = httpwire.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("enumeration path status = %d", resp.StatusCode)
	}
	caps := d.Log.Snapshot()
	if len(caps) != 2 {
		t.Fatalf("captures = %d", len(caps))
	}
	if caps[1].HTTPPath != "/admin/" || caps[1].Location != "DE" || caps[1].Protocol != decoy.HTTP {
		t.Errorf("capture = %+v", caps[1])
	}
}

func TestTLSCapture(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	name := label(t) + ".www.experiment.domain"
	var rnd [32]byte
	ch := tlswire.NewClientHello(name, rnd)
	payload, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	client.SendTCPRequest(n, wire.Endpoint{Addr: d.Sites[2].WebAddr, Port: 443}, payload, netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, resp []byte) { got = resp },
	})
	n.RunUntilIdle()
	if _, err := tlswire.ParseServerHello(got); err != nil {
		t.Fatalf("no valid ServerHello: %v", err)
	}
	caps := d.Log.Snapshot()
	if len(caps) != 1 || caps[0].Protocol != decoy.TLS || caps[0].Domain != name {
		t.Fatalf("captures = %+v", caps)
	}
	if caps[0].Location != "SG" || caps[0].Label == "" {
		t.Errorf("capture = %+v", caps[0])
	}
}

func TestUnparseableCounted(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	client.SendTCPRequest(n, wire.Endpoint{Addr: d.Sites[0].WebAddr, Port: 443}, []byte("not a clienthello"), netsim.TCPRequestOpts{Timeout: time.Second})
	n.RunUntilIdle()
	if d.Unparseable() != 1 {
		t.Errorf("unparseable = %d", d.Unparseable())
	}
}

func TestAnswerRotationSpreadsLoad(t *testing.T) {
	n, d, _ := deploy(t)
	client := netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))
	first := make(map[wire.Addr]int)
	for i := 0; i < 30; i++ {
		l, err := codec.Encode(identifier.ID{Time: t0.Add(time.Duration(i) * time.Minute), Nonce: uint16(i)})
		if err != nil {
			t.Fatal(err)
		}
		q := dnswire.NewQuery(uint16(i), l+".www.experiment.domain", dnswire.TypeA)
		payload, _ := q.Encode()
		client.SendUDPRequest(n, wire.Endpoint{Addr: d.Sites[0].AuthAddr, Port: 53}, payload, netsim.UDPRequestOpts{
			OnReply: func(n *netsim.Network, raw []byte) {
				if m, err := dnswire.Decode(raw); err == nil && len(m.Answers) > 0 {
					first[m.Answers[0].Addr]++
				}
			},
		})
	}
	n.RunUntilIdle()
	if len(first) < 2 {
		t.Errorf("answer rotation ineffective: %v", first)
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	log := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				log.Append(Capture{Location: "X", Domain: "d"})
			}
		}(g)
	}
	wg.Wait()
	if log.Len() != 4000 {
		t.Errorf("Len = %d, want 4000", log.Len())
	}
	snap := log.Snapshot()
	snap[0].Location = "mutated"
	if log.Snapshot()[0].Location == "mutated" {
		t.Error("Snapshot must copy")
	}
}
