// Package probe implements the active reconnaissance of Section 5.2
// ("Open ports of observers on the wire"): scanning the ICMP-revealed
// observer addresses for open ports and grabbing banners, to infer what
// kind of devices the observers are. The paper finds 92% of observers
// expose no ports, with BGP (179) the most common among the rest —
// indicating inter-network routing devices.
package probe

import (
	"sort"
	"sync"
	"time"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

// DefaultPorts is the scan set: common management/service ports plus BGP.
var DefaultPorts = []uint16{21, 22, 23, 53, 80, 179, 443, 8080}

// PortResult is one (port, outcome) of a scan.
type PortResult struct {
	Port   uint16
	Open   bool
	Banner string
}

// HostResult aggregates one target's scan.
type HostResult struct {
	Addr    wire.Addr
	Results []PortResult
}

// OpenPorts lists the open ports, ascending.
func (h HostResult) OpenPorts() []uint16 {
	var out []uint16
	for _, r := range h.Results {
		if r.Open {
			out = append(out, r.Port)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scanner drives scans from one source host.
type Scanner struct {
	Host *netsim.Host
	// Timeout per connection attempt (virtual time). 0 means 2s.
	Timeout time.Duration
	// Ports to scan; nil means DefaultPorts.
	Ports []uint16
}

// Scan probes every target on every port, runs the network to completion,
// and returns per-host results in input order.
func (s *Scanner) Scan(n *netsim.Network, targets []wire.Addr) []HostResult {
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	ports := s.Ports
	if ports == nil {
		ports = DefaultPorts
	}

	var mu sync.Mutex
	results := make([]HostResult, len(targets))
	for i, t := range targets {
		results[i] = HostResult{Addr: t, Results: make([]PortResult, len(ports))}
		for j, port := range ports {
			results[i].Results[j] = PortResult{Port: port}
			i, j := i, j
			s.Host.SendTCPRequest(n, wire.Endpoint{Addr: t, Port: port}, []byte("\r\n"), netsim.TCPRequestOpts{
				Timeout: timeout,
				OnResponse: func(n *netsim.Network, payload []byte) {
					mu.Lock()
					results[i].Results[j].Open = true
					results[i].Results[j].Banner = bannerString(payload)
					mu.Unlock()
				},
			})
		}
	}
	n.RunUntilIdle()
	return results
}

func bannerString(payload []byte) string {
	const max = 64
	if len(payload) > max {
		payload = payload[:max]
	}
	out := make([]byte, 0, len(payload))
	for _, b := range payload {
		if b >= 0x20 && b < 0x7F {
			out = append(out, b)
		}
	}
	return string(out)
}

// BGPBanner returns a TCPApp emitting a BGP-ish banner, installed on the
// router addresses of observers that expose port 179 (core wires this in
// as ground truth; the scanner then discovers it blind).
func BGPBanner(routerName string) netsim.TCPApp {
	return func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		return []byte("BGP-4 " + routerName + " AS-BORDER ready")
	}
}

// Summary aggregates a scan campaign for reporting.
type Summary struct {
	Targets       int
	NoOpenPorts   int
	PortOpenCount map[uint16]int
}

// Summarize computes the §5.2 statistics from scan results.
func Summarize(results []HostResult) Summary {
	sum := Summary{Targets: len(results), PortOpenCount: make(map[uint16]int)}
	for _, h := range results {
		open := h.OpenPorts()
		if len(open) == 0 {
			sum.NoOpenPorts++
			continue
		}
		for _, p := range open {
			sum.PortOpenCount[p]++
		}
	}
	return sum
}

// MostCommonPort returns the port open on the most targets (0 when none).
func (s Summary) MostCommonPort() uint16 {
	var best uint16
	bestN := 0
	ports := make([]uint16, 0, len(s.PortOpenCount))
	for p := range s.PortOpenCount {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	for _, p := range ports {
		if n := s.PortOpenCount[p]; n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

// NoOpenFraction is the fraction of targets with no open ports.
func (s Summary) NoOpenFraction() float64 {
	if s.Targets == 0 {
		return 0
	}
	return float64(s.NoOpenPorts) / float64(s.Targets)
}
