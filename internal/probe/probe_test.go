package probe

import (
	"strings"
	"testing"
	"time"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestScanFindsBGPRouter(t *testing.T) {
	n := netsim.New(netsim.Config{Start: t0})

	// Target 1: a border router exposing BGP.
	bgpAddr := wire.MustParseAddr("10.0.0.1")
	bgpHost := netsim.NewHost(n, bgpAddr)
	bgpHost.ServeTCP(179, BGPBanner("cn-gw-1"))

	// Target 2: totally closed (no host registered).
	closedAddr := wire.MustParseAddr("10.0.0.2")

	// Target 3: a web thing on 80.
	webAddr := wire.MustParseAddr("10.0.0.3")
	webHost := netsim.NewHost(n, webAddr)
	webHost.ServeTCP(80, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		return []byte("HTTP/1.1 200 OK\r\n\r\n")
	})

	scanner := &Scanner{Host: netsim.NewHost(n, wire.MustParseAddr("100.64.0.1"))}
	results := scanner.Scan(n, []wire.Addr{bgpAddr, closedAddr, webAddr})
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if open := results[0].OpenPorts(); len(open) != 1 || open[0] != 179 {
		t.Errorf("bgp target open = %v", open)
	}
	found := false
	for _, r := range results[0].Results {
		if r.Port == 179 && strings.Contains(r.Banner, "BGP-4 cn-gw-1") {
			found = true
		}
	}
	if !found {
		t.Error("BGP banner missing")
	}
	if open := results[1].OpenPorts(); len(open) != 0 {
		t.Errorf("closed target open = %v", open)
	}
	if open := results[2].OpenPorts(); len(open) != 1 || open[0] != 80 {
		t.Errorf("web target open = %v", open)
	}
}

func TestSummarize(t *testing.T) {
	results := []HostResult{
		{Addr: wire.AddrFrom(1, 1, 1, 1), Results: []PortResult{{Port: 179, Open: true}}},
		{Addr: wire.AddrFrom(1, 1, 1, 2), Results: []PortResult{{Port: 22, Open: false}}},
		{Addr: wire.AddrFrom(1, 1, 1, 3), Results: []PortResult{{Port: 179, Open: true}, {Port: 22, Open: true}}},
		{Addr: wire.AddrFrom(1, 1, 1, 4), Results: nil},
	}
	s := Summarize(results)
	if s.Targets != 4 || s.NoOpenPorts != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.MostCommonPort() != 179 {
		t.Errorf("most common = %d", s.MostCommonPort())
	}
	if got := s.NoOpenFraction(); got != 0.5 {
		t.Errorf("no-open fraction = %v", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.MostCommonPort() != 0 || s.NoOpenFraction() != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestBannerString(t *testing.T) {
	if got := bannerString([]byte("abc\r\ndef")); got != "abcdef" {
		t.Errorf("banner = %q", got)
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	if got := bannerString(long); len(got) != 64 {
		t.Errorf("banner length = %d", len(got))
	}
}

func TestScanCustomPorts(t *testing.T) {
	n := netsim.New(netsim.Config{Start: t0})
	target := wire.MustParseAddr("10.0.0.9")
	host := netsim.NewHost(n, target)
	host.ServeTCP(9999, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte { return []byte("odd") })
	scanner := &Scanner{Host: netsim.NewHost(n, wire.MustParseAddr("100.64.0.1")), Ports: []uint16{9999}}
	results := scanner.Scan(n, []wire.Addr{target})
	if open := results[0].OpenPorts(); len(open) != 1 || open[0] != 9999 {
		t.Errorf("open = %v", open)
	}
}
