package identifier

// Interner deduplicates experiment-domain strings. One decoy emission
// makes its domain reappear many times — resolver retries, recursion to
// the honeypot, and the exhibitors' own probe traffic all carry the same
// name past the same observation points — and every sniff re-allocates an
// identical string. An interner returns one canonical instance instead,
// and InternBytes makes the hit path allocation-free (the map lookup on a
// []byte key does not copy).
//
// Not safe for concurrent use. Give each single-goroutine consumer (a DPI
// device, a world's event loop) its own; tables are bounded by the
// distinct domains one trial emits.
type Interner struct {
	m map[string]string
}

// Intern returns the canonical instance of s, storing s on first sight.
func (in *Interner) Intern(s string) string {
	if c, ok := in.m[s]; ok {
		return c
	}
	if in.m == nil {
		in.m = make(map[string]string, 64)
	}
	in.m[s] = s
	return s
}

// InternBytes returns the canonical string for b, copying b only on first
// sight.
func (in *Interner) InternBytes(b []byte) string {
	if c, ok := in.m[string(b)]; ok {
		return c
	}
	if in.m == nil {
		in.m = make(map[string]string, 64)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// Len reports how many distinct strings are interned.
func (in *Interner) Len() int { return len(in.m) }
