package identifier

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"shadowmeter/internal/wire"
)

var epoch = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestRoundTrip(t *testing.T) {
	c := NewCodec(epoch)
	id := ID{
		Time:  epoch.Add(42 * time.Hour),
		VP:    wire.AddrFrom(100, 64, 3, 7),
		Dst:   wire.AddrFrom(77, 88, 8, 8),
		TTL:   17,
		Nonce: 9982,
	}
	label, err := c.Encode(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(label)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(id.Time) || got.VP != id.VP || got.Dst != id.Dst || got.TTL != id.TTL || got.Nonce != id.Nonce {
		t.Errorf("round trip mismatch: %+v != %+v", got, id)
	}
}

func TestLabelShape(t *testing.T) {
	c := NewCodec(epoch)
	label, err := c.Encode(ID{Time: epoch, Nonce: 9982})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(label, "-9982") {
		t.Errorf("label should end with decimal nonce: %q", label)
	}
	if len(label) != EncodedLen+5 {
		t.Errorf("label length = %d, want %d", len(label), EncodedLen+5)
	}
	// DNS label limit.
	if len(label) > 63 {
		t.Errorf("label exceeds 63 octets: %d", len(label))
	}
	for _, r := range label {
		if !strings.ContainsRune(alphabet+"-0123456789", r) {
			t.Errorf("non DNS-safe rune %q in label", r)
		}
	}
	if !IsIdentifierLabel(label) {
		t.Error("IsIdentifierLabel rejected a valid label")
	}
}

func TestBeforeEpoch(t *testing.T) {
	c := NewCodec(epoch)
	if _, err := c.Encode(ID{Time: epoch.Add(-time.Second)}); err != ErrBeforeEpoch {
		t.Errorf("want ErrBeforeEpoch, got %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	c := NewCodec(epoch)
	label, err := c.Encode(ID{Time: epoch.Add(time.Hour), VP: wire.AddrFrom(1, 2, 3, 4), TTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Flip each symbol of the body; every single-symbol corruption must be
	// caught by the CRC (or produce an invalid-symbol error).
	body := label[:EncodedLen]
	for i := 0; i < len(body); i++ {
		mut := []byte(body)
		if mut[i] == 'a' {
			mut[i] = 'b'
		} else {
			mut[i] = 'a'
		}
		if _, err := c.Decode(string(mut)); err == nil {
			t.Errorf("corruption at %d not detected", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := NewCodec(epoch)
	if _, err := c.Decode("short"); err != ErrBadLength {
		t.Errorf("short: %v", err)
	}
	bad := strings.Repeat("A", EncodedLen) // uppercase not in alphabet
	if _, err := c.Decode(bad); err != ErrBadSymbol {
		t.Errorf("bad symbol: %v", err)
	}
	if IsIdentifierLabel("www") || IsIdentifierLabel(bad) {
		t.Error("IsIdentifierLabel accepted invalid labels")
	}
}

func TestSuffixIgnored(t *testing.T) {
	c := NewCodec(epoch)
	id := ID{Time: epoch.Add(time.Minute), Nonce: 7}
	label, err := c.Encode(id)
	if err != nil {
		t.Fatal(err)
	}
	body := label[:EncodedLen]
	for _, variant := range []string{body, body + "-0000", body + "-junk"} {
		got, err := c.Decode(variant)
		if err != nil {
			t.Errorf("Decode(%q): %v", variant, err)
			continue
		}
		if got.Nonce != 7 {
			t.Errorf("nonce = %d", got.Nonce)
		}
	}
}

func TestUniquenessAcrossNonces(t *testing.T) {
	c := NewCodec(epoch)
	seen := make(map[string]bool)
	id := ID{Time: epoch.Add(time.Hour), VP: wire.AddrFrom(9, 9, 9, 9), Dst: wire.AddrFrom(8, 8, 8, 8), TTL: 64}
	for n := 0; n < 5000; n++ {
		id.Nonce = uint16(n)
		label, err := c.Encode(id)
		if err != nil {
			t.Fatal(err)
		}
		if seen[label] {
			t.Fatalf("duplicate label at nonce %d", n)
		}
		seen[label] = true
	}
}

func TestRoundTripProperty(t *testing.T) {
	c := NewCodec(epoch)
	f := func(secs uint32, vp, dst uint32, ttl uint8, nonce uint16) bool {
		id := ID{
			Time:  epoch.Add(time.Duration(secs%(86400*365)) * time.Second),
			VP:    wire.AddrFromUint32(vp),
			Dst:   wire.AddrFromUint32(dst),
			TTL:   ttl,
			Nonce: nonce,
		}
		label, err := c.Encode(id)
		if err != nil {
			return false
		}
		got, err := c.Decode(label)
		if err != nil {
			return false
		}
		return got.Time.Equal(id.Time) && got.VP == id.VP && got.Dst == id.Dst &&
			got.TTL == id.TTL && got.Nonce == id.Nonce
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCRC16Vector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("crc16 = %#x, want 0x29b1", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	c := NewCodec(epoch)
	id := ID{Time: epoch.Add(time.Hour), VP: wire.AddrFrom(1, 2, 3, 4), Dst: wire.AddrFrom(5, 6, 7, 8), TTL: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id.Nonce = uint16(i)
		if _, err := c.Encode(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	c := NewCodec(epoch)
	label, _ := c.Encode(ID{Time: epoch.Add(time.Hour), VP: wire.AddrFrom(1, 2, 3, 4), TTL: 64, Nonce: 42})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(label); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAblationNoCollisions is the codec-width ablation DESIGN.md calls out:
// across a large random sample of identifier inputs, encoded labels must be
// injective (a collision would silently merge two decoys' evidence).
func TestAblationNoCollisions(t *testing.T) {
	if testing.Short() {
		t.Skip("large sample")
	}
	c := NewCodec(epoch)
	rng := rand.New(rand.NewSource(77))
	seen := make(map[string][5]uint32, 200000)
	for i := 0; i < 200000; i++ {
		id := ID{
			Time:  epoch.Add(time.Duration(rng.Int63n(60*24)) * time.Hour),
			VP:    wire.AddrFromUint32(rng.Uint32()),
			Dst:   wire.AddrFromUint32(rng.Uint32()),
			TTL:   uint8(rng.Intn(64) + 1),
			Nonce: uint16(rng.Intn(1 << 16)),
		}
		label, err := c.Encode(id)
		if err != nil {
			t.Fatal(err)
		}
		key := [5]uint32{uint32(id.Time.Unix()), id.VP.Uint32(), id.Dst.Uint32(), uint32(id.TTL), uint32(id.Nonce)}
		if prev, ok := seen[label]; ok && prev != key {
			t.Fatalf("collision: %q encodes both %v and %v", label, prev, key)
		}
		seen[label] = key
	}
}
