// Package identifier implements the decoy-specific identifier string that
// forms the left-most label of every experiment domain (Section 3 of the
// paper): an encoding of (time sent, vantage-point address, destination
// address, initial IP TTL) plus a nonce and checksum.
//
// The identifier makes every decoy domain globally unique, so any later
// appearance of the domain is attributable to exactly one decoy emission —
// this is what lets honeypots compute retention intervals, recover the
// original client-server path, and (during Phase II tracerouting) know the
// initial TTL of the probe that leaked.
//
// Wire layout (15 bytes, base32-encoded to a 24-character DNS label):
//
//	[0:4]   seconds since the experiment epoch (big endian)
//	[4:8]   vantage point IPv4 address
//	[8:12]  destination IPv4 address
//	[12]    initial IP TTL
//	[13:15] nonce
//
// followed by a 2-byte CRC-16/CCITT of bytes [0:15], then everything is
// base32-encoded. A "-NNNN" decimal suffix of the nonce is appended for
// human readability, mirroring the "g6d8jjkut5obc4-9982" shape shown in
// the paper; the decoder ignores it.
package identifier

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"shadowmeter/internal/wire"
)

// ID is a decoded decoy identifier.
type ID struct {
	Time  time.Time // emission time (second granularity)
	VP    wire.Addr // vantage point (source) address
	Dst   wire.Addr // destination address
	TTL   uint8     // initial IP TTL of the decoy
	Nonce uint16
}

// Codec encodes and decodes identifiers relative to a fixed experiment
// epoch. The epoch bounds the encodable window to ~136 years, far beyond
// any campaign.
type Codec struct {
	Epoch time.Time
}

// NewCodec returns a codec anchored at epoch (truncated to seconds).
func NewCodec(epoch time.Time) *Codec {
	return &Codec{Epoch: epoch.Truncate(time.Second)}
}

const (
	payloadLen = 15
	totalLen   = payloadLen + 2 // + CRC16
	// EncodedLen is the length of the base32 body of an identifier label.
	EncodedLen = (totalLen*8 + 4) / 5 // 28 chars
)

// Errors returned by Decode.
var (
	ErrBadLength   = errors.New("identifier: wrong encoded length")
	ErrBadChecksum = errors.New("identifier: checksum mismatch")
	ErrBadSymbol   = errors.New("identifier: invalid base32 symbol")
	ErrBeforeEpoch = errors.New("identifier: time before codec epoch")
)

// Encode renders the identifier as a DNS-safe label.
func (c *Codec) Encode(id ID) (string, error) {
	secs := id.Time.Unix() - c.Epoch.Unix()
	if secs < 0 {
		return "", ErrBeforeEpoch
	}
	if secs > 0xFFFFFFFF {
		return "", fmt.Errorf("identifier: time overflows epoch window")
	}
	var buf [totalLen]byte
	buf[0] = byte(secs >> 24)
	buf[1] = byte(secs >> 16)
	buf[2] = byte(secs >> 8)
	buf[3] = byte(secs)
	copy(buf[4:8], id.VP[:])
	copy(buf[8:12], id.Dst[:])
	buf[12] = id.TTL
	buf[13] = byte(id.Nonce >> 8)
	buf[14] = byte(id.Nonce)
	crc := crc16(buf[:payloadLen])
	buf[15] = byte(crc >> 8)
	buf[16] = byte(crc)
	// Label = base32 body, '-', 4 decimal nonce digits: one allocation.
	var out [EncodedLen + 5]byte
	n := appendBase32(out[:0], buf[:])
	suffix := id.Nonce % 10000
	out[len(n)] = '-'
	out[len(n)+1] = byte('0' + suffix/1000%10)
	out[len(n)+2] = byte('0' + suffix/100%10)
	out[len(n)+3] = byte('0' + suffix/10%10)
	out[len(n)+4] = byte('0' + suffix%10)
	return string(out[:len(n)+5]), nil
}

// Decode parses a label produced by Encode. The decimal suffix, if present,
// is ignored; integrity rests on the checksum.
func (c *Codec) Decode(label string) (ID, error) {
	if i := strings.IndexByte(label, '-'); i >= 0 {
		label = label[:i]
	}
	if len(label) != EncodedLen {
		return ID{}, ErrBadLength
	}
	var raw [EncodedLen * 5 / 8]byte
	buf, err := decodeBase32(label, raw[:0])
	if err != nil {
		return ID{}, err
	}
	if len(buf) < totalLen {
		return ID{}, ErrBadLength
	}
	want := uint16(buf[15])<<8 | uint16(buf[16])
	if crc16(buf[:payloadLen]) != want {
		return ID{}, ErrBadChecksum
	}
	var id ID
	secs := int64(buf[0])<<24 | int64(buf[1])<<16 | int64(buf[2])<<8 | int64(buf[3])
	id.Time = time.Unix(c.Epoch.Unix()+secs, 0).UTC()
	copy(id.VP[:], buf[4:8])
	copy(id.Dst[:], buf[8:12])
	id.TTL = buf[12]
	id.Nonce = uint16(buf[13])<<8 | uint16(buf[14])
	return id, nil
}

// IsIdentifierLabel reports whether label has the shape of an encoded
// identifier (without validating the checksum). Honeypots use this as a
// cheap pre-filter before full decoding.
func IsIdentifierLabel(label string) bool {
	if i := strings.IndexByte(label, '-'); i >= 0 {
		label = label[:i]
	}
	if len(label) != EncodedLen {
		return false
	}
	for i := 0; i < len(label); i++ {
		if alphabetRev[label[i]] < 0 {
			return false
		}
	}
	return true
}

// DNS-safe base32 alphabet (RFC 4648 lowercase).
const alphabet = "abcdefghijklmnopqrstuvwxyz234567"

var alphabetRev = func() [256]int8 {
	var rev [256]int8
	for i := range rev {
		rev[i] = -1
	}
	for i := 0; i < len(alphabet); i++ {
		rev[alphabet[i]] = int8(i)
	}
	return rev
}()

func appendBase32(out, data []byte) []byte {
	var acc uint32
	var bits uint
	for _, b := range data {
		acc = acc<<8 | uint32(b)
		bits += 8
		for bits >= 5 {
			bits -= 5
			out = append(out, alphabet[acc>>bits&0x1F])
		}
	}
	if bits > 0 {
		out = append(out, alphabet[acc<<(5-bits)&0x1F])
	}
	return out
}

// decodeBase32 appends the decoded bytes of s to out; a caller passing a
// stack-backed slice with capacity len(s)*5/8 gets an allocation-free
// decode.
func decodeBase32(s string, out []byte) ([]byte, error) {
	var acc uint32
	var bits uint
	for i := 0; i < len(s); i++ {
		v := alphabetRev[s[i]]
		if v < 0 {
			return nil, ErrBadSymbol
		}
		acc = acc<<5 | uint32(v)
		bits += 5
		if bits >= 8 {
			bits -= 8
			out = append(out, byte(acc>>bits))
		}
	}
	return out, nil
}

// crc16 computes CRC-16/CCITT-FALSE.
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
