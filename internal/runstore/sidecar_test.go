package runstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"testing"

	"shadowmeter/internal/telemetry"
)

// TestStaleIndexRebuild: sidecars stamped with a different log size are
// caches gone stale, not errors — the store falls back to a full scan,
// counts the rebuild, and (writable) republishes fresh sidecars.
func TestStaleIndexRebuild(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Shrink the log behind the sidecars' back: they now describe frames
	// past the end of the file.
	offs, err := LogOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(LogPath(dir), offs[2]); err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("stale-index open sees %d records, want 2", r.Len())
	}
	if n := counterValue(t, set, "runstore_index_rebuilds_total"); n != 1 {
		t.Errorf("index_rebuilds = %d, want 1", n)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Close republished the sidecars; the next open is indexed again.
	set2 := telemetry.NewSet()
	r2, err := Open(dir, set2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Len() != 2 {
		t.Errorf("reopen after rebuild sees %d records, want 2", r2.Len())
	}
	if n := counterValue(t, set2, "runstore_index_rebuilds_total"); n != 0 {
		t.Errorf("index_rebuilds on reopen = %d, want 0", n)
	}
	if n := counterValue(t, set2, "runstore_index_hits_total"); n == 0 {
		t.Error("index_hits on reopen = 0, want indexed open")
	}
}

// TestCorruptLengthFrame: a frame header whose length field is garbage
// (huge, would wrap to negative on 32-bit ints) must be rejected by
// bound and treated as a torn tail — never sized into an allocation.
func TestCorruptLengthFrame(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A frame claiming a ~4 GiB payload, backed by 4 bytes.
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], recordMagic)
	binary.BigEndian.PutUint32(hdr[4:8], 0xFFFFFF00)
	binary.BigEndian.PutUint32(hdr[8:12], 0)
	appendRaw(t, dir, append(hdr[:], 'j', 'u', 'n', 'k'))

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatalf("open over corrupt length field: %v", err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Errorf("store sees %d records, want 1", r.Len())
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 1 {
		t.Errorf("torn_tail = %d, want 1 (corrupt frame truncated)", n)
	}
	if got, ok, err := r.Get(0); err != nil || !ok || got.Seed != 100 {
		t.Errorf("Get(0) = %+v, %v, %v", got, ok, err)
	}
}

// TestV1ReadCompat: a campaign written by the v1 layout — manifest
// version 1, bare log, no sidecar files — must open, read, and resume
// under the v2 build.
func TestV1ReadCompat(t *testing.T) {
	dir := t.TempDir() + "/camp"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man := testManifest()
	man.Version = 1
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	var log []byte
	for i := 0; i < 2; i++ {
		log = append(log, frameBytes(t, testRecord(i))...)
	}
	if err := os.WriteFile(LogPath(dir), log, 0o644); err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatalf("opening v1 campaign: %v", err)
	}
	if r.Manifest().Version != 1 {
		t.Errorf("manifest version = %d, want 1 preserved", r.Manifest().Version)
	}
	recs, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Seed != 101 {
		t.Fatalf("v1 records = %d", len(recs))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A v2 build resuming the campaign presents a v2 manifest; the
	// version field is normalized in the compatibility check, so the
	// campaign continues rather than being refused or recreated.
	want := testManifest() // Version: StoreVersion
	rw, err := OpenOrCreate(dir, want, nil)
	if err != nil {
		t.Fatalf("OpenOrCreate on v1 campaign with v2 manifest: %v", err)
	}
	if rw.Len() != 2 {
		t.Fatalf("resumable v1 campaign holds %d records, want 2", rw.Len())
	}
	if err := rw.Append(testRecord(2)); err != nil {
		t.Fatalf("appending to v1 campaign: %v", err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Len() != 3 {
		t.Errorf("v1 campaign holds %d records after v2 append, want 3", rr.Len())
	}
}

// TestVersionSupported pins the compatibility window.
func TestVersionSupported(t *testing.T) {
	if !VersionSupported(1) || !VersionSupported(StoreVersion) {
		t.Error("supported versions rejected")
	}
	if VersionSupported(0) || VersionSupported(StoreVersion+1) {
		t.Error("unsupported versions accepted")
	}
}

// bigRecord pads a record with enough event payload that whole-log
// reads and single-frame reads are orders of magnitude apart.
func bigRecord(trial int) TrialRecord {
	rec := testRecord(trial)
	rec.Events = nil
	for i := 0; i < 40; i++ {
		rec.Events = append(rec.Events, EventRecord{
			Label:        fmt.Sprintf("decoy-%d-%d", trial, i),
			SentProto:    "DNS",
			CaptureProto: "HTTP",
			DstName:      strings.Repeat("x", 120),
			DelayNS:      int64(i) * 1e9,
		})
	}
	return rec
}

// TestIndexedReadsAreO1 is the O(1)-seek acceptance test: on a
// 100-trial campaign, an indexed open plus one Get must read the
// sidecars and one frame — a small fraction of the log — and never
// trigger a scan.
func TestIndexedReadsAreO1(t *testing.T) {
	dir := t.TempDir() + "/camp"
	man := testManifest()
	man.Trials = 100
	s, err := Create(dir, man, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Append(bigRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, ok, err := r.Get(57); err != nil || !ok || got.Trial != 57 {
		t.Fatalf("Get(57) = %+v, %v, %v", got, ok, err)
	}
	stats := r.Stats()
	if stats.IndexRebuilds != 0 {
		t.Errorf("index_rebuilds = %d, want 0", stats.IndexRebuilds)
	}
	if stats.IndexHits == 0 {
		t.Error("index_hits = 0, want indexed lookups")
	}
	if stats.RecordsRead != 1 {
		t.Errorf("records_read = %d, want 1 (only the requested frame decodes)", stats.RecordsRead)
	}
	// Sidecars plus one frame must stay well under the log: the 4x
	// margin keeps the assertion meaningful without being brittle.
	if stats.BytesRead*4 >= fi.Size() {
		t.Errorf("indexed open+Get read %d bytes of a %d-byte log — not O(record)", stats.BytesRead, fi.Size())
	}
}
