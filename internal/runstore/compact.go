// Compaction: rewrite trials.log keeping the newest valid record per
// trial, dropping superseded frames, torn bytes, and orphaned records,
// then publish the result atomically and republish the sidecar index.
//
// The normal append path can no longer create mid-log garbage (failed
// appends roll back to the durable end), but compaction still has to
// assume the worst — logs written by older builds, logs concatenated by
// hand, disks that lied — so its scan resynchronizes on the frame magic
// after a bad frame instead of giving up, salvaging every record the
// plain reader would strand.
package runstore

import (
	"fmt"
	"os"
)

// CompactStats reports what one compaction pass did.
type CompactStats struct {
	// Kept is the number of records in the compacted log.
	Kept int
	// DroppedFrames counts decodable frames that were not kept:
	// superseded duplicates of a trial and records from a foreign
	// configuration.
	DroppedFrames int
	// BytesBefore/BytesAfter are the log sizes around the pass;
	// Reclaimed is their difference (superseded frames plus torn or
	// otherwise undecodable bytes).
	BytesBefore int64
	BytesAfter  int64
	Reclaimed   int64
}

// Compact rewrites the campaign log keeping only the newest valid
// record per trial, in trial order. Frame bytes are copied verbatim —
// records are never re-encoded — and the new log is published exactly
// like the manifest: tmp-file + fsync + rename + dir-fsync, so a crash
// at any point leaves either the old log or the new one, never a mix.
// Both sidecars are republished afterwards, so every read on the
// compacted store is an indexed seek. Requires a writable store.
func (s *Store) Compact() (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats
	if s.readonly {
		return st, fmt.Errorf("runstore: campaign %s is open read-only", s.dir)
	}
	if s.log == nil {
		return st, fmt.Errorf("runstore: campaign %s is closed", s.dir)
	}
	// Torn bytes from a failed append would read as "reclaimable" noise;
	// drop them first so the scan sees the log the index describes.
	if err := s.rollbackLocked(); err != nil {
		return st, err
	}

	data, err := os.ReadFile(LogPath(s.dir))
	if err != nil {
		return st, fmt.Errorf("runstore: reading log for compaction: %w", err)
	}
	s.m.bytesRead.Add(int64(len(data)))
	st.BytesBefore = int64(len(data))

	kept, dropped := salvageFrames(data, s.manifest.ConfigHash)
	st.DroppedFrames = dropped
	st.Kept = len(kept)

	// Assemble the compacted log in trial order and remember where each
	// frame will land.
	var out []byte
	frames := make(map[int]FrameRef, len(kept))
	rows := make(map[int]HeadlineRow, len(kept))
	for _, f := range kept {
		frames[f.rec.Trial] = FrameRef{Off: int64(len(out)), Len: f.ref.Len}
		rows[f.rec.Trial] = rowFrom(f.rec)
		out = append(out, data[f.ref.Off:f.ref.Off+f.ref.Len]...)
	}
	st.BytesAfter = int64(len(out))
	st.Reclaimed = st.BytesBefore - st.BytesAfter

	if err := publishFile(s.dir, logName, out); err != nil {
		return st, err
	}
	// The open handles still point at the replaced inode; swap them for
	// the published log before anything else reads or appends.
	nf, err := os.OpenFile(LogPath(s.dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The store can no longer append safely; close it rather than
		// leave handles on the dead inode.
		s.closeHandlesLocked()
		return st, fmt.Errorf("runstore: reopening compacted log: %w", err)
	}
	if err := s.log.Close(); err != nil {
		s.log = nf
		return st, fmt.Errorf("runstore: closing pre-compaction log handle: %w", err)
	}
	s.log = nf
	if s.rd != nil {
		if err := s.rd.Close(); err != nil {
			s.rd = nil
			return st, fmt.Errorf("runstore: closing pre-compaction read handle: %w", err)
		}
		s.rd = nil
	}

	s.frames = frames
	s.rows = rows
	s.end = st.BytesAfter
	s.m.compactions.Inc()
	s.m.compactedBytes.Add(st.Reclaimed)
	if err := s.publishSidecarsLocked(); err != nil {
		return st, err
	}
	return st, nil
}

// closeHandlesLocked drops both file handles, marking the store closed.
// Used on unrecoverable errors mid-compaction; close errors are
// secondary to the one the caller is already returning.
func (s *Store) closeHandlesLocked() {
	if s.log != nil {
		_ = s.log.Close() //shadowlint:ignore droppederr caller is returning the primary error
		s.log = nil
	}
	if s.rd != nil {
		_ = s.rd.Close() //shadowlint:ignore droppederr caller is returning the primary error
		s.rd = nil
	}
	s.closed = true
}

// savedFrame is one salvageable record located in the old log.
type savedFrame struct {
	rec TrialRecord
	ref FrameRef
}

// salvageFrames walks the whole log — resynchronizing on the frame
// magic after any bad frame rather than stopping like the plain reader
// — and returns the newest valid record per trial whose config hash
// belongs to this campaign, in trial order. dropped counts decodable
// frames not kept (superseded duplicates, foreign configurations);
// undecodable bytes are dropped silently, they were never records.
func salvageFrames(data []byte, wantHash string) (kept []savedFrame, dropped int) {
	newest := make(map[int]savedFrame)
	off := 0
	for off+headerSize <= len(data) {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			// Not a frame boundary: resynchronize at the next magic.
			next := indexOfMagic(data, off+1)
			if next < 0 {
				break
			}
			off = next
			continue
		}
		if rec.ConfigHash != wantHash {
			dropped++
		} else {
			if _, dup := newest[rec.Trial]; dup {
				dropped++ // the earlier frame is superseded
			}
			// Later offset wins: appends only ever go forward, so file
			// order is recency order.
			newest[rec.Trial] = savedFrame{rec: rec, ref: FrameRef{Off: int64(off), Len: int64(n)}}
		}
		off += n
	}
	for _, t := range sortedTrials(newest) {
		kept = append(kept, newest[t])
	}
	return kept, dropped
}
