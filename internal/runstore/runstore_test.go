package runstore

import (
	"os"
	"strings"
	"testing"

	"shadowmeter/internal/telemetry"
)

func testManifest() Manifest {
	return Manifest{Version: StoreVersion, ConfigHash: "cfg-abc", BaseSeed: 100, Trials: 4, Scale: "small"}
}

func testRecord(trial int) TrialRecord {
	return TrialRecord{
		Trial:      trial,
		Seed:       100 + int64(trial),
		ConfigHash: "cfg-abc",
		Headline:   map[string]float64{"captures": float64(10 * trial), "sent_decoys": 42.5},
		Events: []EventRecord{
			{Label: "lbl", SentProto: "DNS", CaptureProto: "HTTP", DstName: "Yandex", DelayNS: int64(trial) * 1e9},
		},
		Metrics: []telemetry.Metric{{Name: "netsim_packets_sent_total", Kind: telemetry.KindCounter, Value: int64(trial)}},
		Spans:   []telemetry.SpanStats{{Name: "phase1", Count: 1, Events: 7}},
	}
}

// counterValue digs a scalar counter out of a telemetry set.
func counterValue(t *testing.T, set *telemetry.Set, name string) int64 {
	t.Helper()
	for _, m := range set.Registry.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Manifest() != testManifest() {
		t.Errorf("manifest = %+v, want %+v", r.Manifest(), testManifest())
	}
	recs, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Trial != i || rec.Seed != 100+int64(i) {
			t.Errorf("record %d: trial=%d seed=%d", i, rec.Trial, rec.Seed)
		}
		if rec.Headline["captures"] != float64(10*i) || rec.Headline["sent_decoys"] != 42.5 {
			t.Errorf("record %d headline = %v", i, rec.Headline)
		}
		if len(rec.Events) != 1 || rec.Events[0].DstName != "Yandex" || rec.Events[0].DelayNS != int64(i)*1e9 {
			t.Errorf("record %d events = %+v", i, rec.Events)
		}
		if len(rec.Metrics) != 1 || rec.Metrics[0].Value != int64(i) {
			t.Errorf("record %d metrics = %+v", i, rec.Metrics)
		}
		if len(rec.Spans) != 1 || rec.Spans[0].Events != 7 {
			t.Errorf("record %d spans = %+v", i, rec.Spans)
		}
	}
	if got, ok, err := r.Get(1); err != nil || !ok || got.Seed != 101 {
		t.Errorf("Get(1) = %+v, %v, %v", got, ok, err)
	}
	if r.Has(3) {
		t.Error("Has(3) = true for unstored trial")
	}
	// The reopen was served by the sidecar index (no open-time decode);
	// Records() read 3 frames and Get(1) one more.
	if n := counterValue(t, set, "runstore_records_read_total"); n != 4 {
		t.Errorf("records_read = %d, want 4", n)
	}
	if n := counterValue(t, set, "runstore_index_rebuilds_total"); n != 0 {
		t.Errorf("index_rebuilds = %d, want 0 (sidecars were published on Close)", n)
	}
	if n := counterValue(t, set, "runstore_index_hits_total"); n == 0 {
		t.Error("index_hits = 0, want indexed open + lookups")
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 0 {
		t.Errorf("torn_tail = %d, want 0", n)
	}
}

// TestTornTailRecovery is the crash model: a record torn mid-write must
// be detected, counted, and truncated away, leaving every completed
// record intact and the log appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop 5 bytes off the tail, as a crash between
	// write and sync would.
	logp := LogPath(dir)
	fi, err := os.Stat(logp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logp, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatalf("open after tear: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("got %d records after tear, want 2", r.Len())
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 1 {
		t.Errorf("runstore_torn_tail_total = %d, want 1", n)
	}

	// The truncated log must accept the replacement record and read back
	// clean: recovery is complete, not just tolerated.
	if err := r.Append(testRecord(2)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	rr, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Len() != 3 {
		t.Errorf("got %d records after recovery append, want 3", rr.Len())
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 1 {
		t.Errorf("torn counter moved after recovery: %d", n)
	}
}

// TestReadOnlyLeavesTornTail: inspection must never repair a live
// campaign under its writer.
func TestReadOnlyLeavesTornTail(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logp := LogPath(dir)
	fi, err := os.Stat(logp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logp, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	set := telemetry.NewSet()
	r, err := OpenReadOnly(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Errorf("read-only open sees %d records, want 1", r.Len())
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 1 {
		t.Errorf("torn counter = %d, want 1", n)
	}
	if err := r.Append(testRecord(2)); err == nil {
		t.Error("Append on read-only store did not fail")
	}
	after, err := os.Stat(logp)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != fi.Size()-3 {
		t.Errorf("read-only open changed the log size: %d -> %d", fi.Size()-3, after.Size())
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err == nil {
		t.Error("duplicate trial append did not fail")
	}
	bad := testRecord(1)
	bad.ConfigHash = "other"
	if err := s.Append(bad); err == nil {
		t.Error("config-hash mismatch append did not fail")
	}
}

func TestOpenOrCreate(t *testing.T) {
	dir := t.TempDir() + "/camp"
	man := testManifest()
	s, err := OpenOrCreate(dir, man, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same manifest: opens and sees the record.
	again, err := OpenOrCreate(dir, man, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 1 {
		t.Errorf("reopened campaign has %d records, want 1", again.Len())
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}

	// Any manifest drift must refuse: a campaign is one configuration.
	drift := man
	drift.ConfigHash = "cfg-xyz"
	if _, err := OpenOrCreate(dir, drift, nil); err == nil {
		t.Error("config-hash drift did not fail")
	}
	// A larger trial plan over the same config is a campaign extension:
	// the stored manifest upgrades in place instead of refusing.
	grown := man
	grown.Trials = 8
	ext, err := OpenOrCreate(dir, grown, nil)
	if err != nil {
		t.Fatalf("campaign extension refused: %v", err)
	}
	if got := ext.Manifest().Trials; got != 8 {
		t.Errorf("extended manifest trials = %d, want 8", got)
	}
	if ext.Stats().ManifestExtensions != 1 {
		t.Errorf("extensions counter = %d, want 1", ext.Stats().ManifestExtensions)
	}
	if err := ext.Close(); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadManifest(dir); err != nil || m.Trials != 8 {
		t.Errorf("persisted manifest = %+v (%v), want trials 8", m, err)
	}

	// Shrinking the plan must refuse: the original 4-trial manifest no
	// longer matches the extended campaign.
	if _, err := OpenOrCreate(dir, man, nil); err == nil {
		t.Error("trial-plan shrink did not fail")
	}

	// Shard geometry is identity, not provenance: a shard-flavored
	// manifest over an unsharded campaign must refuse with the
	// geometry-specific message.
	sharded := grown
	sharded.ShardIndex, sharded.ShardCount = 0, 2
	if _, err := OpenOrCreate(dir, sharded, nil); err == nil {
		t.Error("shard-geometry drift did not fail")
	} else if !strings.Contains(err.Error(), "shard 0/2") || !strings.Contains(err.Error(), "unsharded") {
		t.Errorf("shard-geometry error not actionable: %v", err)
	}

	// Create on an existing campaign must refuse too.
	if _, err := Create(dir, man, nil); err == nil {
		t.Error("Create over existing campaign did not fail")
	}
}

func TestVersionMismatch(t *testing.T) {
	dir := t.TempDir() + "/camp"
	man := testManifest()
	man.Version = StoreVersion + 1
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Error("version mismatch did not fail")
	}
}

func TestLogOffsets(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	offs, err := LogOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 3 || offs[0] != 0 {
		t.Fatalf("offsets = %v", offs)
	}

	// Truncating at offs[k] keeps exactly the first k records.
	if err := os.Truncate(LogPath(dir), offs[2]); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Errorf("after truncate at offs[2]: %d records, want 2", r.Len())
	}
}

func TestHashJSON(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := HashJSON(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashJSON(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := HashJSON(cfg{2, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("equal configs hash unequal")
	}
	if h1 == h3 {
		t.Error("distinct configs hash equal")
	}
	if len(h1) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(h1))
	}
}
