// Merge: fold shard stores into one campaign directory.
//
// The shard data plane (`shadowmeter -shard i/N`) leaves one store per
// worker, each holding a disjoint slice of the trial plan. Merge walks
// every source log with the same salvage scan compaction uses —
// resynchronizing on the frame magic, so a torn shard log costs at most
// its torn record — and assembles the newest valid record per trial
// across all sources, copying frame bytes verbatim (records are never
// re-encoded, so the merged store is byte-identical to one written by
// an unsharded run). The merged log and sidecars are published first
// and the manifest last, through the same atomic tmp+fsync+rename path
// as every other campaign artifact: until the manifest lands, the
// destination "holds no campaign", so a crash mid-merge can never leave
// a half-campaign that opens.
package runstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"

	"shadowmeter/internal/telemetry"
)

// MergeStats reports what one merge pass did.
type MergeStats struct {
	// Sources is the number of source stores folded.
	Sources int
	// Records is the number of trial records in the merged log.
	Records int
	// Superseded counts decodable frames replaced by a newer record for
	// the same trial — a duplicate within one source, or an overlapping
	// trial where a later-listed source wins (sources are recency-ordered
	// by argument position, like file order within one log).
	Superseded int
	// Dropped counts decodable frames that belong to a foreign campaign:
	// wrong config hash, a seed off the campaign's seed plan, or a trial
	// index outside every source's plan.
	Dropped int
	// TornBytes is the total undecodable source bytes skipped over.
	TornBytes int64
	// Bytes is the merged log size.
	Bytes int64
}

// Merge folds the source campaign stores into a fresh campaign at dst.
// Every source must carry the same config hash, base seed, and scale —
// shard stores of one campaign — and dst must not already hold a
// campaign. The merged trial plan is the largest source plan; the
// merged manifest carries MergedFrom provenance and clears any shard
// geometry. Sources are read without opening them as stores, so merging
// never mutates a shard (a live worker's store is safe to lose a race
// with — its in-flight record simply does not decode yet).
func Merge(dst string, srcs []string, set *telemetry.Set) (Manifest, MergeStats, error) {
	var st MergeStats
	if len(srcs) == 0 {
		return Manifest{}, st, fmt.Errorf("runstore: merge needs at least one source store")
	}
	man := Manifest{Version: StoreVersion, MergedFrom: len(srcs)}
	for i, src := range srcs {
		sm, err := readManifest(src)
		if err != nil {
			return Manifest{}, st, err
		}
		if !VersionSupported(sm.Version) {
			return Manifest{}, st, fmt.Errorf("runstore: shard %s has store version %d; this build speaks versions 1..%d", src, sm.Version, StoreVersion)
		}
		if i == 0 {
			man.ConfigHash, man.BaseSeed, man.Scale = sm.ConfigHash, sm.BaseSeed, sm.Scale
		} else if sm.ConfigHash != man.ConfigHash || sm.BaseSeed != man.BaseSeed || sm.Scale != man.Scale {
			return Manifest{}, st, fmt.Errorf(
				"runstore: refusing to merge %s into the campaign started from %s: config hash/base seed/scale differ (stored %s seed %d scale %q, expected %s seed %d scale %q) — shards of one campaign share all three",
				src, srcs[0], sm.ConfigHash, sm.BaseSeed, sm.Scale, man.ConfigHash, man.BaseSeed, man.Scale)
		}
		if sm.Trials > man.Trials {
			man.Trials = sm.Trials
		}
	}
	if _, err := os.Stat(ManifestPath(dst)); err == nil {
		return Manifest{}, st, fmt.Errorf("runstore: %s already holds a campaign; merge needs a fresh destination", dst)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return Manifest{}, st, err
	}

	s := newStore(dst, man, set, false)

	// Newest record per trial across all sources: within a source, file
	// order is recency order (appends only go forward); across sources,
	// argument order is — a later-listed shard supersedes an earlier one
	// on overlap, matching compaction's newest-record-wins rule.
	newest := make(map[int][]byte)
	rows := make(map[int]HeadlineRow)
	for _, src := range srcs {
		data, err := os.ReadFile(LogPath(src))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // a shard that never appended has no log yet
			}
			return Manifest{}, st, fmt.Errorf("runstore: reading shard log %s: %w", src, err)
		}
		s.m.bytesRead.Add(int64(len(data)))
		valid, decoded := int64(0), int64(0)
		off := 0
		for off+headerSize <= len(data) {
			rec, n, ok := decodeFrame(data[off:])
			if !ok {
				// Not a frame boundary — torn or corrupt bytes. Resync at
				// the next magic so one bad frame costs one record, not
				// the rest of the shard.
				next := indexOfMagic(data, off+1)
				if next < 0 {
					break
				}
				off = next
				continue
			}
			switch {
			case rec.ConfigHash != man.ConfigHash,
				rec.Seed != man.BaseSeed+int64(rec.Trial),
				rec.Trial < 0 || rec.Trial >= man.Trials:
				st.Dropped++
			default:
				if _, dup := newest[rec.Trial]; dup {
					st.Superseded++
				}
				newest[rec.Trial] = data[off : off+n]
				rows[rec.Trial] = rowFrom(rec)
			}
			valid += int64(n)
			decoded++
			off += n
		}
		st.TornBytes += int64(len(data)) - valid
		s.m.recordsRead.Add(decoded)
	}

	var out []byte
	frames := make(map[int]FrameRef, len(newest))
	for _, t := range sortedTrials(newest) {
		frame := newest[t]
		frames[t] = FrameRef{Off: int64(len(out)), Len: int64(len(frame))}
		out = append(out, frame...)
	}
	st.Sources = len(srcs)
	st.Records = len(frames)
	st.Bytes = int64(len(out))

	if err := os.MkdirAll(dst, 0o755); err != nil {
		return Manifest{}, st, fmt.Errorf("runstore: creating merge destination: %w", err)
	}
	if err := publishFile(dst, logName, out); err != nil {
		return Manifest{}, st, err
	}
	s.end = st.Bytes
	s.frames = frames
	s.rows = rows
	if err := s.publishSidecarsLocked(); err != nil {
		return Manifest{}, st, err
	}
	// The manifest is the commit point: published last, so a crash
	// anywhere above leaves a directory that "holds no campaign".
	if err := writeManifest(dst, man); err != nil {
		return Manifest{}, st, err
	}
	s.m.recordsWritten.Add(int64(st.Records))
	s.m.bytesWritten.Add(st.Bytes)
	return man, st, nil
}
