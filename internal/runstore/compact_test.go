package runstore

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"shadowmeter/internal/telemetry"
)

// frameBytes encodes one record as a raw log frame, for tests that
// plant frames the Store API would refuse (duplicates, foreign configs).
func frameBytes(t *testing.T, rec TrialRecord) []byte {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], recordMagic)
	binary.BigEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame
}

// appendRaw appends raw bytes to a campaign's log behind the store's
// back, simulating a crashed writer or a foreign tool.
func appendRaw(t *testing.T, dir string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFailedAppendRollsBack is the regression test for the mid-log
// corruption bug: a short or failed append used to leave torn bytes in
// the middle of the log, and because frames are not self-synchronizing,
// every record appended afterwards was stranded behind the undecodable
// frame and silently lost on the next open. The store must instead
// track its durable end and truncate back to it before the next append.
func TestFailedAppendRollsBack(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	durable, err := os.Stat(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Inject a short write: half the frame reaches the file, then the
	// write reports failure — the torn-frame crash model, without a crash.
	s.writeHook = func(b []byte) (int, error) {
		n, werr := s.log.Write(b[:len(b)/2])
		if werr != nil {
			return n, werr
		}
		return n, io.ErrShortWrite
	}
	if err := s.Append(testRecord(1)); err == nil {
		t.Fatal("short-write append reported success")
	}
	torn, err := os.Stat(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if torn.Size() <= durable.Size() {
		t.Fatalf("injected short write left no torn bytes (%d <= %d); the test lost its subject", torn.Size(), durable.Size())
	}

	// The next append must truncate the torn bytes away and land its
	// frame at the durable end — not after the garbage.
	s.writeHook = nil
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A from-scratch scan (no sidecars) must see both records and no torn
	// tail: the log is clean, not merely indexed around the damage.
	for _, name := range []string{indexName, headlinesName} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	set := telemetry.NewSet()
	r, err := Open(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Trial != 0 || recs[1].Trial != 1 {
		t.Fatalf("after rollback recovery: %d records", len(recs))
	}
	if n := counterValue(t, set, "runstore_torn_tail_total"); n != 0 {
		t.Errorf("torn_tail = %d, want 0 (rollback truncated before the append)", n)
	}
}

// TestCompactNewestWins: compaction keeps exactly one frame per trial —
// the newest — and drops superseded duplicates and trailing garbage,
// shrinking the file.
func TestCompactNewestWins(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant a newer frame for trial 1 (the API refuses duplicates, a
	// crashed-and-rerun writer does not) plus torn garbage at the tail.
	newer := testRecord(1)
	newer.Headline["captures"] = 777
	appendRaw(t, dir, frameBytes(t, newer))
	appendRaw(t, dir, []byte("torn garbage"))

	before, err := os.Stat(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 2 {
		t.Errorf("kept = %d, want 2", cs.Kept)
	}
	if cs.DroppedFrames != 1 {
		t.Errorf("dropped frames = %d, want 1 (the superseded trial-1 frame)", cs.DroppedFrames)
	}
	if cs.BytesAfter >= before.Size() || cs.Reclaimed <= 0 {
		t.Errorf("compaction did not shrink the log: %d -> %d", before.Size(), cs.BytesAfter)
	}
	got, ok, err := s2.Get(1)
	if err != nil || !ok || got.Headline["captures"] != 777 {
		t.Errorf("Get(1) after compact = %+v, %v, %v; want the newer record", got, ok, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold: the compacted log plus fresh sidecars must agree.
	r, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Errorf("reopened compacted store holds %d records, want 2", r.Len())
	}
	got, ok, err = r.Get(1)
	if err != nil || !ok || got.Headline["captures"] != 777 {
		t.Errorf("reopened Get(1) = %+v, %v, %v", got, ok, err)
	}
}

// TestCompactCleanStoreIsByteStable: compacting a store with nothing to
// drop rewrites the log to identical bytes — frames are copied
// verbatim, never re-encoded, so resumed output stays byte-identical.
func TestCompactCleanStoreIsByteStable(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 3 || cs.DroppedFrames != 0 || cs.Reclaimed != 0 {
		t.Errorf("clean compact stats = %+v", cs)
	}
	after, err := os.ReadFile(LogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("compacting a clean log changed its bytes")
	}
}

// TestCompactCrashSafety: a stale tmp file from a compaction that died
// before its rename must not poison the store — the old log stays
// intact and the next compaction publishes over the debris.
func TestCompactCrashSafety(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := s.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A compaction interrupted before rename leaves <log>.tmp with
	// arbitrary partial content. The real log is untouched by design.
	if err := os.WriteFile(LogPath(dir)+".tmp", []byte("half-written compaction debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatalf("open with stale compaction tmp: %v", err)
	}
	if r.Len() != 2 {
		t.Fatalf("store sees %d records with stale tmp present, want 2", r.Len())
	}
	cs, err := r.Compact()
	if err != nil {
		t.Fatalf("compact over stale tmp: %v", err)
	}
	if cs.Kept != 2 {
		t.Errorf("kept = %d, want 2", cs.Kept)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(LogPath(dir) + ".tmp"); err == nil {
		t.Error("compaction left its tmp file behind")
	}
	rr, err := Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Len() != 2 {
		t.Errorf("store holds %d records after recovery compaction, want 2", rr.Len())
	}
}

// TestCompactReadOnlyRefused: inspection tools must not be able to
// rewrite a campaign through a read-only handle.
func TestCompactReadOnlyRefused(t *testing.T) {
	dir := t.TempDir() + "/camp"
	s, err := Create(dir, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReadOnly(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Compact(); err == nil {
		t.Error("Compact on a read-only store did not fail")
	}
}
