// Sidecar caches: the per-trial frame index (index.bin) and the
// columnar headline file (headlines.col).
//
// Both are pure derivations of trials.log — losing them costs one
// rebuild scan, never data — and both are stamped with the log size
// they were built from, so any append or truncation since publication
// makes them detectably stale. They are published atomically (tmp +
// fsync + rename + dir-fsync) on Close and after Compact, and carry a
// trailing CRC32 so a torn sidecar is treated as stale rather than
// trusted.
//
// index.bin (all integers big-endian):
//
//	u32 magic "SHX1" | u32 version | u64 log size | u32 entry count
//	count × { u64 trial, u64 offset, u64 frame length }
//	u32 CRC32 of everything above
//
// headlines.col is column-major so an analysis touching two of the
// fixed columns (say seed and max delay) reads two contiguous runs:
//
//	u32 magic "SHC1" | u32 version | u64 log size | u32 rows | u32 keys
//	7 fixed i64 columns × rows: trial, seed, vstart, vend,
//	    event count, min delay, max delay
//	keys × { u16 name length, name bytes }   (sorted)
//	keys × { presence bitmap ceil(rows/8), rows × f64 values }
//	u32 CRC32 of everything above
//
// The presence bitmap keeps absent headline keys distinguishable from
// stored zeros, so rows reconstructed from the column file are exactly
// the rows the records would produce.
package runstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

const (
	indexName     = "index.bin"
	headlinesName = "headlines.col"

	indexMagic     = 0x53485831 // "SHX1"
	indexVersion   = 1
	colMagic       = 0x53484331 // "SHC1"
	colVersion     = 1
	maxSidecarSize = 1 << 30
	// maxSidecarEntries bounds decoded row/key counts before they size
	// anything — like maxFramePayload, a corrupt count must not turn
	// into a giant allocation (or an int overflow on 32-bit platforms).
	maxSidecarEntries = 1 << 26
)

// IndexPath returns the frame-index location inside a campaign dir.
func IndexPath(dir string) string { return filepath.Join(dir, indexName) }

// HeadlinesPath returns the columnar headline-file location inside a
// campaign dir.
func HeadlinesPath(dir string) string { return filepath.Join(dir, headlinesName) }

// publishSidecarsLocked writes both sidecars for the current in-memory
// index state. Caller holds s.mu.
func (s *Store) publishSidecarsLocked() error {
	if err := publishFile(s.dir, indexName, encodeIndex(s.end, s.frames)); err != nil {
		return err
	}
	if err := publishFile(s.dir, headlinesName, encodeHeadlines(s.end, s.rows)); err != nil {
		return err
	}
	s.stale = false
	return nil
}

// loadSidecars loads both sidecar files if they exist, parse, carry the
// current log size, and agree with each other; it reports whether the
// in-memory index was populated. Any inconsistency — missing file, CRC
// or size mismatch, frames that do not tile the log — just means
// "rebuild by scanning", never an error: sidecars are caches.
func (s *Store) loadSidecars(logSize int64) bool {
	idxData, err := os.ReadFile(IndexPath(s.dir))
	if err != nil {
		return false
	}
	colData, err := os.ReadFile(HeadlinesPath(s.dir))
	if err != nil {
		return false
	}
	idxSize, frames, err := decodeIndex(idxData)
	if err != nil || idxSize != logSize {
		return false
	}
	colSize, rows, err := decodeHeadlines(colData)
	if err != nil || colSize != logSize {
		return false
	}
	if len(frames) != len(rows) {
		return false
	}
	// The frames must tile [0, logSize) exactly: contiguous, in-bounds,
	// ending at the size the sidecars were stamped with. Anything else
	// means the log changed in a way the size check missed.
	refs := make([]FrameRef, 0, len(frames))
	for t, ref := range frames {
		if _, ok := rows[t]; !ok {
			return false
		}
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Off < refs[j].Off })
	var at int64
	for _, ref := range refs {
		if ref.Off != at || ref.Len <= headerSize {
			return false
		}
		at += ref.Len
	}
	if at != logSize {
		return false
	}
	s.frames = frames
	s.rows = rows
	s.m.bytesRead.Add(int64(len(idxData) + len(colData)))
	return true
}

func encodeIndex(logSize int64, frames map[int]FrameRef) []byte {
	trials := sortedTrials(frames)
	buf := make([]byte, 0, 20+24*len(trials)+4)
	buf = binary.BigEndian.AppendUint32(buf, indexMagic)
	buf = binary.BigEndian.AppendUint32(buf, indexVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(logSize))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(trials)))
	for _, t := range trials {
		ref := frames[t]
		buf = binary.BigEndian.AppendUint64(buf, uint64(t))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ref.Off))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ref.Len))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeIndex(data []byte) (int64, map[int]FrameRef, error) {
	body, err := checkSidecar(data, indexMagic, indexVersion)
	if err != nil {
		return 0, nil, err
	}
	if len(body) < 12 {
		return 0, nil, errors.New("truncated index header")
	}
	logSize := int64(binary.BigEndian.Uint64(body))
	n := int(binary.BigEndian.Uint32(body[8:]))
	body = body[12:]
	if n < 0 || n > maxSidecarEntries || len(body) != 24*n {
		return 0, nil, fmt.Errorf("index entry section is %d bytes, want %d", len(body), 24*n)
	}
	frames := make(map[int]FrameRef, n)
	for i := 0; i < n; i++ {
		e := body[24*i:]
		trial := int(int64(binary.BigEndian.Uint64(e)))
		frames[trial] = FrameRef{
			Off: int64(binary.BigEndian.Uint64(e[8:])),
			Len: int64(binary.BigEndian.Uint64(e[16:])),
		}
	}
	if len(frames) != n {
		return 0, nil, errors.New("duplicate trials in index")
	}
	return logSize, frames, nil
}

func encodeHeadlines(logSize int64, rows map[int]HeadlineRow) []byte {
	trials := sortedTrials(rows)
	n := len(trials)
	keySet := make(map[string]bool)
	for _, t := range trials {
		for k := range rows[t].Headline {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	buf := make([]byte, 0, 24+7*8*n+len(keys)*(8*n+n/8+16)+4)
	buf = binary.BigEndian.AppendUint32(buf, colMagic)
	buf = binary.BigEndian.AppendUint32(buf, colVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(logSize))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, col := range fixedColumns {
		for _, t := range trials {
			buf = binary.BigEndian.AppendUint64(buf, uint64(col.get(rows[t])))
		}
	}
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
	}
	bitmapLen := (n + 7) / 8
	for _, k := range keys {
		bitmap := make([]byte, bitmapLen)
		for i, t := range trials {
			if _, ok := rows[t].Headline[k]; ok {
				bitmap[i/8] |= 1 << (i % 8)
			}
		}
		buf = append(buf, bitmap...)
		for _, t := range trials {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(rows[t].Headline[k]))
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeHeadlines(data []byte) (int64, map[int]HeadlineRow, error) {
	body, err := checkSidecar(data, colMagic, colVersion)
	if err != nil {
		return 0, nil, err
	}
	if len(body) < 16 {
		return 0, nil, errors.New("truncated headline header")
	}
	logSize := int64(binary.BigEndian.Uint64(body))
	n := int(binary.BigEndian.Uint32(body[8:]))
	k := int(binary.BigEndian.Uint32(body[12:]))
	body = body[16:]
	if n < 0 || n > maxSidecarEntries || k < 0 || k > maxSidecarEntries || len(body) < 7*8*n {
		return 0, nil, errors.New("truncated headline columns")
	}
	rowList := make([]HeadlineRow, n)
	for i := range rowList {
		rowList[i].Headline = make(map[string]float64)
	}
	for _, col := range fixedColumns {
		for i := 0; i < n; i++ {
			col.set(&rowList[i], int64(binary.BigEndian.Uint64(body[8*i:])))
		}
		body = body[8*n:]
	}
	keys := make([]string, k)
	for i := range keys {
		if len(body) < 2 {
			return 0, nil, errors.New("truncated key table")
		}
		l := int(binary.BigEndian.Uint16(body))
		if len(body) < 2+l {
			return 0, nil, errors.New("truncated key name")
		}
		keys[i] = string(body[2 : 2+l])
		body = body[2+l:]
	}
	bitmapLen := (n + 7) / 8
	for _, key := range keys {
		if len(body) < bitmapLen+8*n {
			return 0, nil, errors.New("truncated value columns")
		}
		bitmap := body[:bitmapLen]
		vals := body[bitmapLen:]
		for i := 0; i < n; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				rowList[i].Headline[key] = math.Float64frombits(binary.BigEndian.Uint64(vals[8*i:]))
			}
		}
		body = body[bitmapLen+8*n:]
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("%d trailing bytes after value columns", len(body))
	}
	rows := make(map[int]HeadlineRow, n)
	for _, row := range rowList {
		rows[row.Trial] = row
	}
	if len(rows) != n {
		return 0, nil, errors.New("duplicate trials in headline file")
	}
	return logSize, rows, nil
}

// fixedColumns maps the seven per-trial scalar columns to HeadlineRow
// fields, in file order. One table serves encode and decode so the two
// can never disagree on layout.
var fixedColumns = []struct {
	get func(HeadlineRow) int64
	set func(*HeadlineRow, int64)
}{
	{func(r HeadlineRow) int64 { return int64(r.Trial) }, func(r *HeadlineRow, v int64) { r.Trial = int(v) }},
	{func(r HeadlineRow) int64 { return r.Seed }, func(r *HeadlineRow, v int64) { r.Seed = v }},
	{func(r HeadlineRow) int64 { return r.VStartNS }, func(r *HeadlineRow, v int64) { r.VStartNS = v }},
	{func(r HeadlineRow) int64 { return r.VEndNS }, func(r *HeadlineRow, v int64) { r.VEndNS = v }},
	{func(r HeadlineRow) int64 { return int64(r.Events) }, func(r *HeadlineRow, v int64) { r.Events = int(v) }},
	{func(r HeadlineRow) int64 { return r.MinDelayNS }, func(r *HeadlineRow, v int64) { r.MinDelayNS = v }},
	{func(r HeadlineRow) int64 { return r.MaxDelayNS }, func(r *HeadlineRow, v int64) { r.MaxDelayNS = v }},
}

// checkSidecar validates the magic, version and trailing CRC shared by
// both sidecar formats and returns the body between header and CRC.
func checkSidecar(data []byte, magic, version uint32) ([]byte, error) {
	if len(data) < 12 || len(data) > maxSidecarSize {
		return nil, errors.New("implausible sidecar size")
	}
	if binary.BigEndian.Uint32(data) != magic {
		return nil, errors.New("bad magic")
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != version {
		return nil, fmt.Errorf("sidecar version %d, want %d", v, version)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, errors.New("sidecar CRC mismatch")
	}
	return body[8:], nil
}

// sortedTrials returns the map's trial keys in ascending order.
func sortedTrials[V any](m map[int]V) []int {
	trials := make([]int, 0, len(m))
	for t := range m {
		trials = append(trials, t)
	}
	sort.Ints(trials)
	return trials
}
