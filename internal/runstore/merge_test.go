package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// makeShard creates a shard store at dir holding the given trials.
func makeShard(t *testing.T, dir string, man Manifest, trials ...int) {
	t.Helper()
	s, err := Create(dir, man, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if err := s.Append(testRecord(tr)); err != nil {
			t.Fatalf("append %d: %v", tr, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func shardedManifest(index, count int) Manifest {
	m := testManifest()
	m.ShardIndex = index
	m.ShardCount = count
	return m
}

func TestMergeDisjointShards(t *testing.T) {
	base := t.TempDir()
	a, b := filepath.Join(base, "a"), filepath.Join(base, "b")
	makeShard(t, a, shardedManifest(0, 2), 0, 1)
	makeShard(t, b, shardedManifest(1, 2), 2, 3)

	dst := filepath.Join(base, "merged")
	man, st, err := Merge(dst, []string{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.MergedFrom != 2 || man.ShardIndex != 0 || man.ShardCount != 0 {
		t.Errorf("merged manifest provenance = %+v, want merged-from 2 with shard geometry cleared", man)
	}
	if man.ConfigHash != "cfg-abc" || man.BaseSeed != 100 || man.Trials != 4 {
		t.Errorf("merged manifest identity = %+v", man)
	}
	if st.Sources != 2 || st.Records != 4 || st.Superseded != 0 || st.Dropped != 0 || st.TornBytes != 0 {
		t.Errorf("merge stats = %+v", st)
	}

	r, err := OpenReadOnly(dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("merged store holds %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Trial != i || rec.Seed != 100+int64(i) {
			t.Errorf("record %d = trial %d seed %d", i, rec.Trial, rec.Seed)
		}
	}

	// A merged store resumes like any other: the manifest compare
	// normalizes provenance, so the pre-shard manifest matches.
	s2, err := OpenOrCreate(dst, testManifest(), nil)
	if err != nil {
		t.Fatalf("reopening merged store for resume: %v", err)
	}
	if s2.Len() != 4 {
		t.Errorf("reopened merged store holds %d records, want 4", s2.Len())
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeOverlapNewestWins pins the supersede rule for overlapping
// shards: a later-listed source wins, matching compaction's
// newest-record-wins semantics within one log.
func TestMergeOverlapNewestWins(t *testing.T) {
	base := t.TempDir()
	a, b := filepath.Join(base, "a"), filepath.Join(base, "b")
	makeShard(t, a, testManifest(), 0, 1)

	// Shard b re-ran trial 1 with a distinguishable headline.
	s, err := Create(b, testManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(1)
	rec.Headline["captures"] = 999
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(base, "ab")
	_, st, err := Merge(dst, []string{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.Superseded != 1 {
		t.Fatalf("merge stats = %+v, want 2 records with 1 superseded", st)
	}
	r, err := OpenReadOnly(dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, okRec, err := r.Get(1)
	if err != nil || !okRec {
		t.Fatalf("Get(1) = %v %v", okRec, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Headline["captures"] != 999 {
		t.Errorf("trial 1 captures = %v, want 999 (later-listed shard wins)", got.Headline["captures"])
	}

	// Reversing the argument order reverses the winner.
	dst2 := filepath.Join(base, "ba")
	if _, _, err := Merge(dst2, []string{b, a}, nil); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReadOnly(dst2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := r2.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	if got2.Headline["captures"] == 999 {
		t.Error("trial 1 still carries the overlap record with the order reversed")
	}
}

// TestMergeTornShardLog drives the salvage scan: a torn tail costs its
// record, and mid-log garbage costs only the bytes until the next frame
// magic.
func TestMergeTornShardLog(t *testing.T) {
	base := t.TempDir()
	a := filepath.Join(base, "a")
	makeShard(t, a, testManifest(), 0, 1)
	data, err := os.ReadFile(LogPath(a))
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: the final record loses its last bytes.
	torn := filepath.Join(base, "torn")
	makeShard(t, torn, testManifest()) // creates the dir + manifest, empty log
	if err := os.WriteFile(LogPath(torn), data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(base, "from-torn")
	_, st, err := Merge(dst, []string{torn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.TornBytes == 0 {
		t.Errorf("torn-tail merge stats = %+v, want 1 salvaged record and torn bytes", st)
	}

	// Mid-log garbage: both records survive, the junk is skipped.
	_, offs, _ := scanRecords(data)
	if len(offs) != 2 {
		t.Fatalf("fixture has %d records, want 2", len(offs))
	}
	junk := []byte("not a frame")
	mangled := append(append(append([]byte{}, data[:offs[1]]...), junk...), data[offs[1]:]...)
	mid := filepath.Join(base, "mid")
	makeShard(t, mid, testManifest())
	if err := os.WriteFile(LogPath(mid), mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	dst2 := filepath.Join(base, "from-mid")
	_, st2, err := Merge(dst2, []string{mid}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 2 || st2.TornBytes != int64(len(junk)) {
		t.Errorf("mid-log merge stats = %+v, want 2 records and %d torn bytes", st2, len(junk))
	}

	// The salvaged output is clean: byte-identical to merging the
	// pristine shard.
	ref := filepath.Join(base, "from-clean")
	if _, _, err := Merge(ref, []string{a}, nil); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(LogPath(ref))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(LogPath(dst2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("salvaged merge log differs from the clean merge log")
	}
}

// TestMergeV1Shard folds a version-1 shard (no sidecars) — old stores
// remain mergeable, and the output is a current-version store.
func TestMergeV1Shard(t *testing.T) {
	base := t.TempDir()
	a := filepath.Join(base, "a")
	makeShard(t, a, testManifest(), 0, 1)
	v1 := testManifest()
	v1.Version = 1
	if err := writeManifest(a, v1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{indexName, headlinesName} {
		if err := os.Remove(filepath.Join(a, name)); err != nil {
			t.Fatal(err)
		}
	}

	dst := filepath.Join(base, "merged")
	man, st, err := Merge(dst, []string{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != StoreVersion {
		t.Errorf("merged store version = %d, want %d", man.Version, StoreVersion)
	}
	if st.Records != 2 {
		t.Errorf("merged %d records from the v1 shard, want 2", st.Records)
	}

	// A store version from the future is refused, not guessed at.
	future := testManifest()
	future.Version = StoreVersion + 1
	if err := writeManifest(a, future); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Merge(filepath.Join(base, "nope"), []string{a}, nil); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version merge: %v", err)
	}
}

func TestMergeRefusals(t *testing.T) {
	base := t.TempDir()
	a := filepath.Join(base, "a")
	makeShard(t, a, testManifest(), 0, 1)

	// No sources.
	if _, _, err := Merge(filepath.Join(base, "x"), nil, nil); err == nil {
		t.Error("empty merge succeeded")
	}

	// Config-hash mismatch between shards.
	foreign := filepath.Join(base, "foreign")
	fm := testManifest()
	fm.ConfigHash = "cfg-other"
	makeShard(t, foreign, fm)
	_, _, err := Merge(filepath.Join(base, "y"), []string{a, foreign}, nil)
	if err == nil || !strings.Contains(err.Error(), "refusing to merge") {
		t.Errorf("hash-mismatch merge: %v", err)
	}

	// Base-seed mismatch is the same refusal.
	drift := filepath.Join(base, "drift")
	dm := testManifest()
	dm.BaseSeed = 999
	makeShard(t, drift, dm)
	if _, _, err := Merge(filepath.Join(base, "z"), []string{a, drift}, nil); err == nil || !strings.Contains(err.Error(), "refusing to merge") {
		t.Errorf("seed-mismatch merge: %v", err)
	}

	// An existing campaign is never overwritten.
	if _, _, err := Merge(a, []string{a}, nil); err == nil || !strings.Contains(err.Error(), "already holds a campaign") {
		t.Errorf("merge onto existing campaign: %v", err)
	}
}

// TestMergeDropsForeignRecords covers the per-record guard: frames
// whose config hash, seed, or trial index are off the campaign's plan
// are dropped even when the shard manifest claims the right identity.
func TestMergeDropsForeignRecords(t *testing.T) {
	base := t.TempDir()
	good := filepath.Join(base, "good")
	makeShard(t, good, testManifest(), 0, 1)

	// A shard whose log carries records of a different campaign, behind
	// a manifest rewritten to claim this one.
	impostor := filepath.Join(base, "impostor")
	im := testManifest()
	im.ConfigHash = "cfg-other"
	s, err := Create(impostor, im, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(2)
	rec.ConfigHash = "cfg-other"
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(impostor, testManifest()); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(base, "merged")
	_, st, err := Merge(dst, []string{good, impostor}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.Dropped != 1 {
		t.Errorf("merge stats = %+v, want 2 records with 1 foreign frame dropped", st)
	}

	// Off-plan trial indexes drop the same way: shrink a shard's claimed
	// plan so its high trials fall outside the merged plan.
	high := filepath.Join(base, "high")
	makeShard(t, high, testManifest(), 2, 3)
	shrunk := testManifest()
	shrunk.Trials = 2
	if err := writeManifest(high, shrunk); err != nil {
		t.Fatal(err)
	}
	low := filepath.Join(base, "low")
	lm := testManifest()
	lm.Trials = 2
	makeShard(t, low, lm, 0, 1)
	_, st2, err := Merge(filepath.Join(base, "merged2"), []string{low, high}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 2 || st2.Dropped != 2 {
		t.Errorf("off-plan merge stats = %+v, want 2 records with 2 dropped", st2)
	}
}
