// Package runstore is the durable campaign store: an append-only,
// crash-safe on-disk record of a multi-trial measurement campaign.
//
// The paper's headline temporal result — observers replaying shadowed
// identifiers hours to days after the decoy was sent — is longitudinal,
// so campaigns must outlive processes. A campaign is one directory:
//
//	<dir>/manifest.json   versioned manifest: config hash, seed range
//	<dir>/trials.log      length-prefixed, CRC32-checksummed records
//	<dir>/index.bin       per-trial frame offset/length index (cache)
//	<dir>/headlines.col   columnar per-trial headline stats (cache)
//
// The manifest is written via tmp-file + fsync + rename + dir-fsync
// (atomic on POSIX), so a crash never leaves a half-written manifest.
// Trial records are appended to the log and fsynced one at a time; a
// crash mid-append leaves at most one torn record at the tail, which
// the reader detects by checksum and (in writable mode) truncates away.
// A *failed* append (ENOSPC, short write) is rolled back the same way:
// the store tracks the durable end offset and truncates back to it
// before the next append, so torn bytes can never land mid-log where
// they would strand every later record (frames are not
// self-synchronizing). Records before the torn tail are never touched:
// the store loses at most the trial that was being written, never a
// completed one.
//
// index.bin and headlines.col are derived caches, rebuilt from the log
// whenever they are missing or stale (their recorded log size no longer
// matches the file) and republished atomically on Close and Compact.
// With a valid index, Open, resume existence checks and per-trial reads
// are O(1) seeks instead of whole-log scans, and the columnar headline
// file serves cross-campaign diff and time-windowed retention without
// touching the event log at all — index once, O(1) lookups forever.
//
// The store assumes a single writing process per campaign directory (the
// batch runner); readers (cmd/shadowstore) open read-only and repair
// nothing.
package runstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"shadowmeter/internal/telemetry"
)

// StoreVersion is the on-disk layout version new campaigns are created
// with. Store v2 added the sidecar index and columnar headline files;
// the log frame format is unchanged, so v1 campaigns stay readable (see
// VersionSupported). A version from the future is an error, never a
// silent reinterpretation.
const StoreVersion = 2

// hashSchemaVersion tracks the TrialRecord JSON schema, which is what a
// config fingerprint must be tied to — not the directory layout. Store
// v2 changed the layout (sidecar caches) but not the record encoding,
// so fingerprints, and with them resumability, survive the v1→v2 bump.
const hashSchemaVersion = 1

// VersionSupported reports whether this build can read a campaign with
// the given manifest version.
func VersionSupported(v int) bool { return v >= 1 && v <= StoreVersion }

const (
	manifestName = "manifest.json"
	logName      = "trials.log"

	// recordMagic opens every record frame ("SHR1"). A scan that does not
	// find it at a record boundary treats everything from there on as a
	// torn tail.
	recordMagic = 0x53485231
	// headerSize is magic + payload length + payload CRC32, 4 bytes each.
	headerSize = 12

	// maxFramePayload bounds a frame's declared payload length. A
	// corrupt length field must not turn into a multi-GiB allocation —
	// or, where int is 32 bits, a negative slice bound and a panic. Real
	// records are kilobytes to low megabytes; 64 MiB is generous.
	maxFramePayload = 64 << 20
)

// Manifest identifies a campaign. Every field participates in the
// compatibility check on resume: a campaign can only be continued by a
// run with the identical configuration fingerprint and seed plan. (The
// layout Version is carried but normalized in the check, so a v1
// campaign can be resumed by a v2 build.)
type Manifest struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	BaseSeed   int64  `json:"base_seed"`
	Trials     int    `json:"trials"`
	Scale      string `json:"scale"`

	// ShardIndex/ShardCount mark a shard store: one worker's slice
	// [ShardIndex·Trials/ShardCount, (ShardIndex+1)·Trials/ShardCount)
	// of the campaign plan, destined for `shadowstore merge`. Both zero
	// for an unsharded campaign. Shard geometry participates in the
	// resume compatibility check: resuming shard 0/2 as shard 0/4 would
	// silently run the wrong trial window.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`

	// MergedFrom counts the source stores this campaign was folded from
	// by Merge (zero for stores written directly). It is provenance, not
	// identity: the compatibility check normalizes it away, so a merged
	// campaign resumes and extends exactly like a directly-written one.
	MergedFrom int `json:"merged_from,omitempty"`
}

// ShardLabel renders the manifest's shard provenance for display:
// "shard i/N", "merged from N shards", or "" for a plain campaign.
func (m Manifest) ShardLabel() string {
	if m.ShardCount > 0 {
		return fmt.Sprintf("shard %d/%d", m.ShardIndex, m.ShardCount)
	}
	if m.MergedFrom > 0 {
		return fmt.Sprintf("merged from %d shards", m.MergedFrom)
	}
	return ""
}

// EventRecord is one unsolicited request in compact, replayable form —
// exactly the fields the retention analyses (analysis.MultiUseStats,
// analysis.DelayCDF) consume, nothing else.
type EventRecord struct {
	Label        string `json:"label"`
	SentProto    string `json:"sent_proto"`
	CaptureProto string `json:"capture_proto"`
	DstName      string `json:"dst_name"`
	DelayNS      int64  `json:"delay_ns"`
}

// TrialRecord is the persisted outcome of one trial world. Headline,
// Metrics and Spans round-trip losslessly through JSON, so a trial
// served from the store is indistinguishable in batch output from one
// that just ran.
type TrialRecord struct {
	Trial      int                `json:"trial"`
	Seed       int64              `json:"seed"`
	ConfigHash string             `json:"config_hash"`
	Headline   map[string]float64 `json:"headline"`
	// VStartNS/VEndNS bracket the trial's virtual time (Unix
	// nanoseconds): the campaign epoch and the simulator clock when the
	// trial finished. They feed the columnar headline file so
	// time-windowed analyses can place a trial without decoding it.
	// Records written by store v1 carry zeros here.
	VStartNS int64                 `json:"vstart_ns,omitempty"`
	VEndNS   int64                 `json:"vend_ns,omitempty"`
	Events   []EventRecord         `json:"events,omitempty"`
	Metrics  []telemetry.Metric    `json:"metrics,omitempty"`
	Spans    []telemetry.SpanStats `json:"spans,omitempty"`
}

// FrameRef locates one record's frame inside the trial log: Off is the
// frame start and Len the full frame length including the header.
type FrameRef struct {
	Off int64
	Len int64
}

// HeadlineRow is the columnar summary of one stored trial: everything
// the summary table, cross-campaign diff and retention *pruning* need,
// with the full record (events, metrics, spans) left in the log behind
// an O(1) seek. MinDelayNS/MaxDelayNS bracket the trial's unsolicited
// event delays (both zero when the trial has none).
type HeadlineRow struct {
	Trial      int
	Seed       int64
	VStartNS   int64
	VEndNS     int64
	Events     int
	MinDelayNS int64
	MaxDelayNS int64
	Headline   map[string]float64
}

// OverlapsDelayWindow reports whether any of the row's unsolicited
// events can have a replay delay inside [from, to] nanoseconds (to <= 0
// means unbounded above). Rows that cannot are pruned from windowed
// retention without reading their log frames.
func (r HeadlineRow) OverlapsDelayWindow(from, to int64) bool {
	if r.Events == 0 {
		return false
	}
	if r.MaxDelayNS < from {
		return false
	}
	if to > 0 && r.MinDelayNS > to {
		return false
	}
	return true
}

func rowFrom(rec TrialRecord) HeadlineRow {
	row := HeadlineRow{
		Trial:    rec.Trial,
		Seed:     rec.Seed,
		VStartNS: rec.VStartNS,
		VEndNS:   rec.VEndNS,
		Events:   len(rec.Events),
		Headline: rec.Headline,
	}
	for i, ev := range rec.Events {
		if i == 0 || ev.DelayNS < row.MinDelayNS {
			row.MinDelayNS = ev.DelayNS
		}
		if i == 0 || ev.DelayNS > row.MaxDelayNS {
			row.MaxDelayNS = ev.DelayNS
		}
	}
	return row
}

// Stats is a snapshot of the store's telemetry counters.
type Stats struct {
	RecordsWritten      int64
	RecordsRead         int64
	BytesWritten        int64
	BytesRead           int64
	ResumeHits          int64
	TornTailTruncations int64
	IndexHits           int64
	IndexRebuilds       int64
	Compactions         int64
	CompactedBytes      int64
	ManifestExtensions  int64
}

// storeMetrics holds the registered counter handles. Updates happen
// under the store mutex, so the lock-free Counter variant is safe.
type storeMetrics struct {
	recordsWritten *telemetry.Counter
	recordsRead    *telemetry.Counter
	bytesWritten   *telemetry.Counter
	bytesRead      *telemetry.Counter
	resumeHits     *telemetry.Counter
	tornTails      *telemetry.Counter
	indexHits      *telemetry.Counter
	indexRebuilds  *telemetry.Counter
	compactions    *telemetry.Counter
	compactedBytes *telemetry.Counter
	extensions     *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		recordsWritten: reg.Counter("runstore_records_written_total", "trial records appended to the campaign log"),
		recordsRead:    reg.Counter("runstore_records_read_total", "trial records decoded from the campaign log"),
		bytesWritten:   reg.Counter("runstore_bytes_written_total", "bytes appended to the campaign log (frames incl. headers)"),
		bytesRead:      reg.Counter("runstore_bytes_read_total", "log and sidecar bytes read (whole-log scans plus indexed record reads)"),
		resumeHits:     reg.Counter("runstore_resume_hits_total", "trials served from the store instead of re-running"),
		tornTails:      reg.Counter("runstore_torn_tail_total", "torn tail records detected on open (truncated in writable mode)"),
		indexHits:      reg.Counter("runstore_index_hits_total", "opens and record lookups served by the offset index instead of a log scan"),
		indexRebuilds:  reg.Counter("runstore_index_rebuilds_total", "opens that rebuilt the index by scanning the log (sidecars missing or stale)"),
		compactions:    reg.Counter("runstore_compactions_total", "compaction passes over the campaign log"),
		compactedBytes: reg.Counter("runstore_compacted_bytes_total", "log bytes reclaimed by compaction (superseded records, torn and orphaned bytes)"),
		extensions:     reg.Counter("runstore_manifest_extensions_total", "campaign extensions: manifest upgrades to a larger trial plan"),
	}
}

// Store is one open campaign directory.
type Store struct {
	mu       sync.Mutex
	dir      string
	manifest Manifest
	log      *os.File // append handle; nil when read-only or closed
	rd       *os.File // lazy read handle for indexed record reads
	readonly bool
	closed   bool

	// end is the durable end of the log: the offset just past the last
	// fsynced, index-acknowledged record. dirty marks that a failed
	// append may have left torn bytes past end, to be truncated away
	// before anything else is written.
	end   int64
	dirty bool

	frames map[int]FrameRef
	rows   map[int]HeadlineRow
	// stale marks in-memory index state not yet published to the
	// sidecar files (cleared by publishSidecarsLocked).
	stale bool

	// writeHook, when non-nil, replaces the log write in Append — a
	// test seam for injecting short and failed writes.
	writeHook func([]byte) (int, error)

	m storeMetrics
}

func newStore(dir string, man Manifest, set *telemetry.Set, readonly bool) *Store {
	if set == nil {
		set = telemetry.NewSet()
	}
	return &Store{
		dir:      dir,
		manifest: man,
		readonly: readonly,
		frames:   make(map[int]FrameRef),
		rows:     make(map[int]HeadlineRow),
		m:        newStoreMetrics(set.Registry),
	}
}

// ManifestPath returns the manifest location inside a campaign dir.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// LogPath returns the trial-log location inside a campaign dir.
func LogPath(dir string) string { return filepath.Join(dir, logName) }

// Create initializes a fresh campaign directory: manifest via tmp-file +
// rename, then an empty trial log, with the directory fsynced after each
// so neither entry can vanish in a crash. It fails if the directory
// already holds a campaign. A nil telemetry set gets a private one.
func Create(dir string, man Manifest, set *telemetry.Set) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: creating campaign dir: %w", err)
	}
	if _, err := os.Stat(ManifestPath(dir)); err == nil {
		return nil, fmt.Errorf("runstore: campaign already exists in %s (open it instead)", dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	s := newStore(dir, man, set, false)
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: creating trial log: %w", err)
	}
	// The manifest publish synced the directory, but the log creation
	// came after: without its own dir fsync a crash could leave a
	// manifest whose promised log was never made durable.
	if err := f.Sync(); err != nil {
		return nil, closeOnErr(f, fmt.Errorf("runstore: syncing new trial log: %w", err))
	}
	if err := syncDir(dir); err != nil {
		return nil, closeOnErr(f, fmt.Errorf("runstore: syncing campaign dir after log creation: %w", err))
	}
	s.log = f
	return s, nil
}

// Open opens an existing campaign for appending. A torn tail record —
// the residue of a crash mid-append — is detected by checksum, counted
// in runstore_torn_tail_total, and truncated away so the log ends on a
// record boundary again.
func Open(dir string, set *telemetry.Set) (*Store, error) {
	return open(dir, set, false)
}

// OpenReadOnly opens a campaign for inspection. Torn tails are counted
// but the log is left untouched, so inspecting a live campaign never
// races its writer's recovery.
func OpenReadOnly(dir string, set *telemetry.Set) (*Store, error) {
	return open(dir, set, true)
}

func open(dir string, set *telemetry.Set, readonly bool) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !VersionSupported(man.Version) {
		return nil, fmt.Errorf("runstore: campaign %s has store version %d; this build speaks versions 1..%d", dir, man.Version, StoreVersion)
	}
	s := newStore(dir, man, set, readonly)

	var logSize int64
	if fi, err := os.Stat(LogPath(dir)); err == nil {
		logSize = fi.Size()
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstore: stat trial log: %w", err)
	}

	torn := false
	if s.loadSidecars(logSize) {
		// Sidecars current: the index tiles the log exactly, so there is
		// no torn tail and nothing to scan.
		s.end = logSize
		s.m.indexHits.Inc()
	} else {
		// Missing or stale sidecars: one full scan rebuilds the index —
		// the only whole-log read an intact campaign ever pays.
		data, err := os.ReadFile(LogPath(dir))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("runstore: reading trial log: %w", err)
		}
		recs, offs, valid := scanRecords(data)
		s.m.recordsRead.Add(int64(len(recs)))
		s.m.bytesRead.Add(int64(len(data)))
		s.m.indexRebuilds.Inc()
		for i, r := range recs {
			next := valid
			if i+1 < len(offs) {
				next = offs[i+1]
			}
			s.frames[r.Trial] = FrameRef{Off: offs[i], Len: next - offs[i]}
			s.rows[r.Trial] = rowFrom(r)
		}
		s.end = valid
		s.stale = true
		torn = int64(len(data)) > valid
		if torn {
			s.m.tornTails.Inc()
		}
	}
	if readonly {
		return s, nil
	}
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: opening trial log: %w", err)
	}
	if torn {
		// Drop the torn tail so the next append starts on a boundary.
		if err := f.Truncate(s.end); err != nil {
			return nil, closeOnErr(f, fmt.Errorf("runstore: truncating torn tail: %w", err))
		}
		if err := f.Sync(); err != nil {
			return nil, closeOnErr(f, fmt.Errorf("runstore: syncing truncated log: %w", err))
		}
	}
	s.log = f
	return s, nil
}

// OpenOrCreate opens the campaign in dir if one exists — verifying that
// its manifest matches man — and creates it otherwise. The layout
// version and merge provenance are normalized before the comparison: a
// v1 campaign is resumable by a v2 build (the record format is
// unchanged) and a merged campaign is continued like a directly-written
// one. Two mismatches get special treatment: a different shard geometry
// is refused with its own actionable error, and a *larger* trial count
// over an otherwise identical manifest is a campaign extension — the
// stored plan is upgraded in place (see ExtendTrials) and the open
// succeeds.
func OpenOrCreate(dir string, man Manifest, set *telemetry.Set) (*Store, error) {
	if _, err := os.Stat(ManifestPath(dir)); errors.Is(err, fs.ErrNotExist) {
		return Create(dir, man, set)
	} else if err != nil {
		return nil, err
	}
	s, err := Open(dir, set)
	if err != nil {
		return nil, err
	}
	stored := s.manifest
	want := man
	want.Version = stored.Version
	want.MergedFrom = stored.MergedFrom
	if stored == want {
		return s, nil
	}
	if stored.ShardIndex != want.ShardIndex || stored.ShardCount != want.ShardCount {
		err := fmt.Errorf("runstore: campaign %s is %s of its trial plan, requested %s: resuming across shard geometries would run the wrong trial window — rerun with the original -shard value, or fold shards with `shadowstore merge` first",
			dir, geometryLabel(stored), geometryLabel(want))
		return nil, closeOnErr(s.log, err)
	}
	probe := stored
	probe.Trials = want.Trials
	if probe == want {
		// Only the trial count differs: growth is a campaign extension,
		// shrinking is refused (ExtendTrials says why).
		if err := s.ExtendTrials(want.Trials); err != nil {
			return nil, closeOnErr(s.log, err)
		}
		return s, nil
	}
	err = fmt.Errorf("runstore: campaign %s was created with a different configuration: stored %+v, requested %+v", dir, stored, man)
	return nil, closeOnErr(s.log, err)
}

// geometryLabel renders a manifest's shard geometry for error messages.
func geometryLabel(m Manifest) string {
	if m.ShardCount > 0 {
		return fmt.Sprintf("shard %d/%d", m.ShardIndex, m.ShardCount)
	}
	return "unsharded"
}

// ExtendTrials upgrades the campaign to a larger trial plan — campaign
// extension: same config hash, base seed, scale, and shard geometry,
// more trials. Only the manifest changes (republished atomically);
// stored records are untouched, so a resume after extension serves
// every old trial from the store and runs only the new window.
// Shrinking is refused: records past the smaller plan would become
// unreachable by resume while still shaping merge and analysis output.
func (s *Store) ExtendTrials(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readonly {
		return fmt.Errorf("runstore: campaign %s is open read-only", s.dir)
	}
	if s.closed {
		return fmt.Errorf("runstore: campaign %s is closed", s.dir)
	}
	if n < s.manifest.Trials {
		return fmt.Errorf("runstore: campaign %s holds a %d-trial plan; refusing to shrink it to %d — extension only grows a plan (start a fresh campaign for a smaller one)",
			s.dir, s.manifest.Trials, n)
	}
	if n == s.manifest.Trials {
		return nil
	}
	man := s.manifest
	man.Trials = n
	if err := writeManifest(s.dir, man); err != nil {
		return fmt.Errorf("runstore: extending campaign %s to %d trials: %w", s.dir, n, err)
	}
	s.manifest = man
	s.m.extensions.Inc()
	return nil
}

// closeOnErr closes f (when non-nil) while propagating the primary
// error; the close error, rarer and less actionable, is dropped in its
// favor only if the primary is non-nil — which it always is here.
func closeOnErr(f *os.File, primary error) error {
	if f == nil {
		return primary
	}
	if cerr := f.Close(); cerr != nil {
		return errors.Join(primary, cerr)
	}
	return primary
}

// Append durably persists one trial record: a single frame write
// followed by fsync. The record's config hash must match the campaign
// manifest, and each trial index can be stored only once — duplicates
// mean the caller re-ran a trial that resume should have served.
func (s *Store) Append(rec TrialRecord) error {
	_, err := s.AppendIndexed(rec)
	return err
}

// AppendIndexed is Append returning where the record's frame landed in
// the log — the observability plane announces the offset on its
// store_appended events. The returned ref is zero when err is non-nil.
func (s *Store) AppendIndexed(rec TrialRecord) (FrameRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readonly {
		return FrameRef{}, fmt.Errorf("runstore: campaign %s is open read-only", s.dir)
	}
	if s.log == nil {
		return FrameRef{}, fmt.Errorf("runstore: campaign %s is closed", s.dir)
	}
	if rec.ConfigHash != s.manifest.ConfigHash {
		return FrameRef{}, fmt.Errorf("runstore: record config hash %s does not match campaign %s", rec.ConfigHash, s.manifest.ConfigHash)
	}
	if _, dup := s.frames[rec.Trial]; dup {
		return FrameRef{}, fmt.Errorf("runstore: trial %d is already stored in %s", rec.Trial, s.dir)
	}
	if err := s.rollbackLocked(); err != nil {
		return FrameRef{}, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return FrameRef{}, fmt.Errorf("runstore: encoding trial %d: %w", rec.Trial, err)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], recordMagic)
	binary.BigEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	write := s.log.Write
	if s.writeHook != nil {
		write = s.writeHook
	}
	if n, err := write(frame); err != nil || n != len(frame) {
		// The frame may be partly on disk. Mark the log dirty so the
		// next append truncates back to the durable end instead of
		// writing after torn bytes — which would strand every record
		// appended from here on behind an undecodable frame.
		s.dirty = true
		if err == nil {
			err = io.ErrShortWrite
		}
		return FrameRef{}, fmt.Errorf("runstore: appending trial %d (log rolls back to offset %d): %w", rec.Trial, s.end, err)
	}
	if err := s.log.Sync(); err != nil {
		// Durability unknown: treat the frame as not written.
		s.dirty = true
		return FrameRef{}, fmt.Errorf("runstore: syncing trial %d (log rolls back to offset %d): %w", rec.Trial, s.end, err)
	}
	ref := FrameRef{Off: s.end, Len: int64(len(frame))}
	s.frames[rec.Trial] = ref
	s.rows[rec.Trial] = rowFrom(rec)
	s.end += ref.Len
	s.stale = true
	s.m.recordsWritten.Inc()
	s.m.bytesWritten.Add(ref.Len)
	return ref, nil
}

// rollbackLocked truncates the log back to the durable end after a
// failed append left (or may have left) torn bytes past it.
func (s *Store) rollbackLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.log.Truncate(s.end); err != nil {
		return fmt.Errorf("runstore: rolling back failed append (truncate to %d): %w", s.end, err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("runstore: syncing rollback to %d: %w", s.end, err)
	}
	s.dirty = false
	return nil
}

// Get returns the stored record for a trial index, read from the log
// with one O(record) seek through the offset index. A non-nil error
// means the index points at a frame that no longer decodes — store
// corruption, not absence.
func (s *Store) Get(trial int) (TrialRecord, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.frames[trial]
	if !ok {
		return TrialRecord{}, false, nil
	}
	rec, err := s.readFrameLocked(ref)
	if err != nil {
		return TrialRecord{}, true, fmt.Errorf("runstore: reading trial %d: %w", trial, err)
	}
	return rec, true, nil
}

// readFrameLocked reads and decodes one frame via the lazy read handle.
func (s *Store) readFrameLocked(ref FrameRef) (TrialRecord, error) {
	if s.closed {
		return TrialRecord{}, fmt.Errorf("campaign %s is closed", s.dir)
	}
	if s.rd == nil {
		f, err := os.Open(LogPath(s.dir))
		if err != nil {
			return TrialRecord{}, err
		}
		s.rd = f
	}
	buf := make([]byte, ref.Len)
	if _, err := s.rd.ReadAt(buf, ref.Off); err != nil {
		return TrialRecord{}, err
	}
	s.m.bytesRead.Add(ref.Len)
	s.m.indexHits.Inc()
	recs, _, valid := scanRecords(buf)
	if len(recs) != 1 || valid != ref.Len {
		return TrialRecord{}, fmt.Errorf("frame at %d+%d does not decode (log corrupted since indexing?)", ref.Off, ref.Len)
	}
	s.m.recordsRead.Inc()
	return recs[0], nil
}

// Has reports whether a trial index is stored — an O(1) map probe, no
// log read.
func (s *Store) Has(trial int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.frames[trial]
	return ok
}

// Len reports the number of stored trials.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// Headlines returns the columnar summary of every stored trial sorted
// by trial index, served entirely from the in-memory index — no log
// reads. The headline maps are copies; callers may keep them.
func (s *Store) Headlines() []HeadlineRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HeadlineRow, 0, len(s.rows))
	for _, row := range s.rows {
		h := make(map[string]float64, len(row.Headline))
		for k, v := range row.Headline {
			h[k] = v
		}
		row.Headline = h
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trial < out[j].Trial })
	return out
}

// Records returns every stored record sorted by trial index. This reads
// the whole log (one indexed seek per record); callers that only need
// headline stats should use Headlines instead.
func (s *Store) Records() ([]TrialRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	trials := make([]int, 0, len(s.frames))
	for t := range s.frames {
		trials = append(trials, t)
	}
	sort.Ints(trials)
	out := make([]TrialRecord, 0, len(trials))
	for _, t := range trials {
		rec, err := s.readFrameLocked(s.frames[t])
		if err != nil {
			return nil, fmt.Errorf("runstore: reading trial %d: %w", t, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Manifest returns the campaign manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the campaign directory.
func (s *Store) Dir() string { return s.dir }

// NoteResumeHit counts one trial served from the store instead of
// re-running. The runner calls this from worker goroutines, so the
// increment takes the store lock.
func (s *Store) NoteResumeHit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.resumeHits.Inc()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		RecordsWritten:      s.m.recordsWritten.Value(),
		RecordsRead:         s.m.recordsRead.Value(),
		BytesWritten:        s.m.bytesWritten.Value(),
		BytesRead:           s.m.bytesRead.Value(),
		ResumeHits:          s.m.resumeHits.Value(),
		TornTailTruncations: s.m.tornTails.Value(),
		IndexHits:           s.m.indexHits.Value(),
		IndexRebuilds:       s.m.indexRebuilds.Value(),
		Compactions:         s.m.compactions.Value(),
		CompactedBytes:      s.m.compactedBytes.Value(),
		ManifestExtensions:  s.m.extensions.Value(),
	}
}

// Close publishes the sidecar index files (writable stores with
// unpublished appends) and releases the file handles. Safe to call on
// read-only and already-closed stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	if s.log != nil {
		// A failed final append may have left torn bytes; drop them so
		// the on-disk log ends on the durable boundary the sidecars
		// describe.
		if err := s.rollbackLocked(); err != nil {
			errs = append(errs, err)
		} else if s.stale {
			if err := s.publishSidecarsLocked(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := s.log.Close(); err != nil {
			errs = append(errs, err)
		}
		s.log = nil
	}
	if s.rd != nil {
		if err := s.rd.Close(); err != nil {
			errs = append(errs, err)
		}
		s.rd = nil
	}
	s.closed = true
	return errors.Join(errs...)
}

// scanRecords decodes frames until the first torn or corrupt one,
// reporting each record's start offset and how many bytes were valid.
// Everything after the first bad frame is unreachable (frames are not
// self-synchronizing), so a mid-file corruption costs the records behind
// it — which is why Append rolls back failed writes instead of ever
// letting torn bytes land mid-log, and why Compact exists to salvage
// logs that predate that guarantee.
func scanRecords(data []byte) (recs []TrialRecord, offs []int64, valid int64) {
	off := 0
	for {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			break
		}
		recs = append(recs, rec)
		offs = append(offs, int64(off))
		off += n
	}
	return recs, offs, int64(off)
}

// decodeFrame decodes the frame at the start of data, returning the
// record and the frame's total length. ok is false when data does not
// begin with a complete, well-formed frame — a corrupt length field
// (negative on 32-bit ints, or absurdly large) is rejected by bound
// before it can size an allocation or a slice expression.
func decodeFrame(data []byte) (rec TrialRecord, frameLen int, ok bool) {
	if len(data) < headerSize {
		return rec, 0, false
	}
	if binary.BigEndian.Uint32(data) != recordMagic {
		return rec, 0, false
	}
	n32 := binary.BigEndian.Uint32(data[4:])
	if n32 > maxFramePayload {
		return rec, 0, false
	}
	n := int(n32)
	sum := binary.BigEndian.Uint32(data[8:])
	if len(data)-headerSize < n {
		return rec, 0, false
	}
	payload := data[headerSize : headerSize+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, false
	}
	return rec, headerSize + n, true
}

var recordMagicBytes = binary.BigEndian.AppendUint32(nil, recordMagic)

// DecodeRecords decodes every valid record frame at the start of data,
// returning them in file order plus the number of valid bytes consumed.
// Everything from the first torn or corrupt frame on is ignored, which
// makes it safe on a snapshot of a live log: a half-appended tail frame
// simply does not decode yet, and will on a later read. This is the
// read-only follower's primitive (shadowstore tail) — it never opens a
// Store and so can never trigger writable-mode tail repair.
func DecodeRecords(data []byte) ([]TrialRecord, int64) {
	recs, _, valid := scanRecords(data)
	return recs, valid
}

// ReadManifest reads a campaign's manifest without opening its store —
// for tooling that wants the identity and trial plan of a possibly
// still-running campaign with zero interaction with its log.
func ReadManifest(dir string) (Manifest, error) {
	return readManifest(dir)
}

// LogOffsets returns the byte offset of every valid record in a
// campaign's trial log, in file order — a diagnostic for tests and
// tooling (truncating the file at LogOffsets(dir)[k] keeps exactly the
// first k records).
func LogOffsets(dir string) ([]int64, error) {
	data, err := os.ReadFile(LogPath(dir))
	if err != nil {
		return nil, err
	}
	_, offs, _ := scanRecords(data)
	return offs, nil
}

func writeManifest(dir string, man Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	return publishFile(dir, manifestName, b)
}

// publishFile atomically replaces <dir>/<name> with payload: tmp-file
// write, fsync, rename, dir-fsync — the crash-safe publish every
// non-log artifact in the campaign directory (manifest, sidecar index,
// columnar headlines, compacted log) goes through.
func publishFile(dir, name string, payload []byte) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: creating %s tmp: %w", name, err)
	}
	if _, err := f.Write(payload); err != nil {
		return closeOnErr(f, fmt.Errorf("runstore: writing %s: %w", name, err))
	}
	if err := f.Sync(); err != nil {
		return closeOnErr(f, fmt.Errorf("runstore: syncing %s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: closing %s tmp: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("runstore: publishing %s: %w", name, err)
	}
	return syncDir(dir)
}

// PublishFile atomically replaces <dir>/<name> with payload via the
// store's crash-safe publish path (tmp-file, fsync, rename, dir-fsync).
// Exported for the scheduler's queue-state persistence, which must
// survive a daemon crash with the same guarantee the manifest enjoys.
func PublishFile(dir, name string, payload []byte) error {
	return publishFile(dir, name, payload)
}

func readManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Manifest{}, fmt.Errorf("runstore: %s holds no campaign (missing %s)", dir, manifestName)
		}
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return Manifest{}, fmt.Errorf("runstore: corrupt manifest in %s: %w", dir, err)
	}
	return man, nil
}

// syncDir flushes directory metadata so a rename (manifest publish) or
// file creation survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// HashJSON fingerprints any JSON-marshalable configuration value:
// sha256 over a version-salted canonical encoding, rendered as hex.
// Struct field order is fixed at compile time and map keys are sorted by
// encoding/json, so equal values always hash equally.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstore: hashing config: %w", err)
	}
	// The salt ties hashes to the record schema: bumping
	// hashSchemaVersion invalidates stored fingerprints even for
	// identical configs.
	salted := append([]byte(fmt.Sprintf("runstore/v%d\n", hashSchemaVersion)), b...)
	sum := sha256.Sum256(salted)
	return hex.EncodeToString(sum[:]), nil
}

// indexOfMagic returns the offset of the next possible frame start at
// or after from, or -1 — the resynchronization primitive compaction
// uses to salvage records stranded behind a bad frame.
func indexOfMagic(data []byte, from int) int {
	if from > len(data) {
		return -1
	}
	i := bytes.Index(data[from:], recordMagicBytes)
	if i < 0 {
		return -1
	}
	return from + i
}
