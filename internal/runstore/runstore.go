// Package runstore is the durable campaign store: an append-only,
// crash-safe on-disk record of a multi-trial measurement campaign.
//
// The paper's headline temporal result — observers replaying shadowed
// identifiers hours to days after the decoy was sent — is longitudinal,
// so campaigns must outlive processes. A campaign is one directory:
//
//	<dir>/manifest.json   versioned manifest: config hash, seed range
//	<dir>/trials.log      length-prefixed, CRC32-checksummed records
//
// The manifest is written via tmp-file + rename (atomic on POSIX), so a
// crash never leaves a half-written manifest. Trial records are appended
// to the log and fsynced one at a time; a crash mid-append leaves at most
// one torn record at the tail, which the reader detects by checksum and
// (in writable mode) truncates away. Records before the torn tail are
// never touched: the store loses at most the trial that was being
// written, never a completed one.
//
// The store assumes a single writing process per campaign directory (the
// batch runner); readers (cmd/shadowstore) open read-only and repair
// nothing.
package runstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"shadowmeter/internal/telemetry"
)

// StoreVersion is the on-disk format version. Manifests carry it; a
// version mismatch is an error, never a silent reinterpretation.
const StoreVersion = 1

const (
	manifestName = "manifest.json"
	logName      = "trials.log"

	// recordMagic opens every record frame ("SHR1"). A scan that does not
	// find it at a record boundary treats everything from there on as a
	// torn tail.
	recordMagic = 0x53485231
	// headerSize is magic + payload length + payload CRC32, 4 bytes each.
	headerSize = 12
)

// Manifest identifies a campaign. Every field participates in the
// compatibility check on resume: a campaign can only be continued by a
// run with the identical configuration fingerprint and seed plan.
type Manifest struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	BaseSeed   int64  `json:"base_seed"`
	Trials     int    `json:"trials"`
	Scale      string `json:"scale"`
}

// EventRecord is one unsolicited request in compact, replayable form —
// exactly the fields the retention analyses (analysis.MultiUseStats,
// analysis.DelayCDF) consume, nothing else.
type EventRecord struct {
	Label        string `json:"label"`
	SentProto    string `json:"sent_proto"`
	CaptureProto string `json:"capture_proto"`
	DstName      string `json:"dst_name"`
	DelayNS      int64  `json:"delay_ns"`
}

// TrialRecord is the persisted outcome of one trial world. Headline,
// Metrics and Spans round-trip losslessly through JSON, so a trial
// served from the store is indistinguishable in batch output from one
// that just ran.
type TrialRecord struct {
	Trial      int                   `json:"trial"`
	Seed       int64                 `json:"seed"`
	ConfigHash string                `json:"config_hash"`
	Headline   map[string]float64    `json:"headline"`
	Events     []EventRecord         `json:"events,omitempty"`
	Metrics    []telemetry.Metric    `json:"metrics,omitempty"`
	Spans      []telemetry.SpanStats `json:"spans,omitempty"`
}

// Stats is a snapshot of the store's telemetry counters.
type Stats struct {
	RecordsWritten      int64
	RecordsRead         int64
	BytesWritten        int64
	BytesRead           int64
	ResumeHits          int64
	TornTailTruncations int64
}

// storeMetrics holds the registered counter handles. Updates happen
// under the store mutex, so the lock-free Counter variant is safe.
type storeMetrics struct {
	recordsWritten *telemetry.Counter
	recordsRead    *telemetry.Counter
	bytesWritten   *telemetry.Counter
	bytesRead      *telemetry.Counter
	resumeHits     *telemetry.Counter
	tornTails      *telemetry.Counter
}

func newStoreMetrics(reg *telemetry.Registry) storeMetrics {
	return storeMetrics{
		recordsWritten: reg.Counter("runstore_records_written_total", "trial records appended to the campaign log"),
		recordsRead:    reg.Counter("runstore_records_read_total", "trial records decoded when opening the campaign log"),
		bytesWritten:   reg.Counter("runstore_bytes_written_total", "bytes appended to the campaign log (frames incl. headers)"),
		bytesRead:      reg.Counter("runstore_bytes_read_total", "bytes scanned when opening the campaign log"),
		resumeHits:     reg.Counter("runstore_resume_hits_total", "trials served from the store instead of re-running"),
		tornTails:      reg.Counter("runstore_torn_tail_total", "torn tail records detected on open (truncated in writable mode)"),
	}
}

// Store is one open campaign directory.
type Store struct {
	mu       sync.Mutex
	dir      string
	manifest Manifest
	log      *os.File // nil when read-only or closed
	readonly bool
	index    map[int]TrialRecord
	m        storeMetrics
}

func newStore(dir string, man Manifest, set *telemetry.Set, readonly bool) *Store {
	if set == nil {
		set = telemetry.NewSet()
	}
	return &Store{
		dir:      dir,
		manifest: man,
		readonly: readonly,
		index:    make(map[int]TrialRecord),
		m:        newStoreMetrics(set.Registry),
	}
}

// ManifestPath returns the manifest location inside a campaign dir.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// LogPath returns the trial-log location inside a campaign dir.
func LogPath(dir string) string { return filepath.Join(dir, logName) }

// Create initializes a fresh campaign directory: manifest via tmp-file +
// rename, then an empty trial log. It fails if the directory already
// holds a campaign. A nil telemetry set gets a private one.
func Create(dir string, man Manifest, set *telemetry.Set) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: creating campaign dir: %w", err)
	}
	if _, err := os.Stat(ManifestPath(dir)); err == nil {
		return nil, fmt.Errorf("runstore: campaign already exists in %s (open it instead)", dir)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	s := newStore(dir, man, set, false)
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: creating trial log: %w", err)
	}
	s.log = f
	return s, nil
}

// Open opens an existing campaign for appending. A torn tail record —
// the residue of a crash mid-append — is detected by checksum, counted
// in runstore_torn_tail_total, and truncated away so the log ends on a
// record boundary again.
func Open(dir string, set *telemetry.Set) (*Store, error) {
	return open(dir, set, false)
}

// OpenReadOnly opens a campaign for inspection. Torn tails are counted
// but the log is left untouched, so inspecting a live campaign never
// races its writer's recovery.
func OpenReadOnly(dir string, set *telemetry.Set) (*Store, error) {
	return open(dir, set, true)
}

func open(dir string, set *telemetry.Set, readonly bool) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.Version != StoreVersion {
		return nil, fmt.Errorf("runstore: campaign %s has store version %d; this build speaks version %d", dir, man.Version, StoreVersion)
	}
	s := newStore(dir, man, set, readonly)

	data, err := os.ReadFile(LogPath(dir))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("runstore: reading trial log: %w", err)
	}
	recs, _, valid := scanRecords(data)
	s.m.recordsRead.Add(int64(len(recs)))
	s.m.bytesRead.Add(int64(len(data)))
	torn := int64(len(data)) > valid
	if torn {
		s.m.tornTails.Inc()
	}
	for _, r := range recs {
		s.index[r.Trial] = r
	}
	if readonly {
		return s, nil
	}
	f, err := os.OpenFile(LogPath(dir), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: opening trial log: %w", err)
	}
	if torn {
		// Drop the torn tail so the next append starts on a boundary.
		if err := f.Truncate(valid); err != nil {
			return nil, closeOnErr(f, fmt.Errorf("runstore: truncating torn tail: %w", err))
		}
		if err := f.Sync(); err != nil {
			return nil, closeOnErr(f, fmt.Errorf("runstore: syncing truncated log: %w", err))
		}
	}
	s.log = f
	return s, nil
}

// OpenOrCreate opens the campaign in dir if one exists — verifying that
// its manifest matches man exactly — and creates it otherwise.
func OpenOrCreate(dir string, man Manifest, set *telemetry.Set) (*Store, error) {
	if _, err := os.Stat(ManifestPath(dir)); errors.Is(err, fs.ErrNotExist) {
		return Create(dir, man, set)
	} else if err != nil {
		return nil, err
	}
	s, err := Open(dir, set)
	if err != nil {
		return nil, err
	}
	if s.manifest != man {
		err := fmt.Errorf("runstore: campaign %s was created with a different configuration: stored %+v, requested %+v", dir, s.manifest, man)
		return nil, closeOnErr(s.log, err)
	}
	return s, nil
}

// closeOnErr closes f (when non-nil) while propagating the primary
// error; the close error, rarer and less actionable, is dropped in its
// favor only if the primary is non-nil — which it always is here.
func closeOnErr(f *os.File, primary error) error {
	if f == nil {
		return primary
	}
	if cerr := f.Close(); cerr != nil {
		return errors.Join(primary, cerr)
	}
	return primary
}

// Append durably persists one trial record: a single frame write
// followed by fsync. The record's config hash must match the campaign
// manifest, and each trial index can be stored only once — duplicates
// mean the caller re-ran a trial that resume should have served.
func (s *Store) Append(rec TrialRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readonly {
		return fmt.Errorf("runstore: campaign %s is open read-only", s.dir)
	}
	if s.log == nil {
		return fmt.Errorf("runstore: campaign %s is closed", s.dir)
	}
	if rec.ConfigHash != s.manifest.ConfigHash {
		return fmt.Errorf("runstore: record config hash %s does not match campaign %s", rec.ConfigHash, s.manifest.ConfigHash)
	}
	if _, dup := s.index[rec.Trial]; dup {
		return fmt.Errorf("runstore: trial %d is already stored in %s", rec.Trial, s.dir)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: encoding trial %d: %w", rec.Trial, err)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], recordMagic)
	binary.BigEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	if _, err := s.log.Write(frame); err != nil {
		return fmt.Errorf("runstore: appending trial %d: %w", rec.Trial, err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("runstore: syncing trial %d: %w", rec.Trial, err)
	}
	s.index[rec.Trial] = rec
	s.m.recordsWritten.Inc()
	s.m.bytesWritten.Add(int64(len(frame)))
	return nil
}

// Get returns the stored record for a trial index.
func (s *Store) Get(trial int) (TrialRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[trial]
	return rec, ok
}

// Has reports whether a trial index is stored.
func (s *Store) Has(trial int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[trial]
	return ok
}

// Len reports the number of stored trials.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Records returns every stored record sorted by trial index.
func (s *Store) Records() []TrialRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TrialRecord, 0, len(s.index))
	for _, rec := range s.index {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trial < out[j].Trial })
	return out
}

// Manifest returns the campaign manifest.
func (s *Store) Manifest() Manifest { return s.manifest }

// Dir returns the campaign directory.
func (s *Store) Dir() string { return s.dir }

// NoteResumeHit counts one trial served from the store instead of
// re-running. The runner calls this from worker goroutines, so the
// increment takes the store lock.
func (s *Store) NoteResumeHit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.resumeHits.Inc()
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		RecordsWritten:      s.m.recordsWritten.Value(),
		RecordsRead:         s.m.recordsRead.Value(),
		BytesWritten:        s.m.bytesWritten.Value(),
		BytesRead:           s.m.bytesRead.Value(),
		ResumeHits:          s.m.resumeHits.Value(),
		TornTailTruncations: s.m.tornTails.Value(),
	}
}

// Close releases the log file handle. Safe to call on read-only and
// already-closed stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// scanRecords decodes frames until the first torn or corrupt one,
// reporting each record's start offset and how many bytes were valid.
// Everything after the first bad frame is unreachable (frames are not
// self-synchronizing), so a mid-file corruption costs the records behind
// it — the crash model this store defends against only ever tears the
// tail.
func scanRecords(data []byte) (recs []TrialRecord, offs []int64, valid int64) {
	off := 0
	for {
		if len(data)-off < headerSize {
			break
		}
		if binary.BigEndian.Uint32(data[off:]) != recordMagic {
			break
		}
		n := int(binary.BigEndian.Uint32(data[off+4:]))
		sum := binary.BigEndian.Uint32(data[off+8:])
		if len(data)-off-headerSize < n {
			break
		}
		payload := data[off+headerSize : off+headerSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec TrialRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		offs = append(offs, int64(off))
		off += headerSize + n
	}
	return recs, offs, int64(off)
}

// DecodeRecords decodes every valid record frame at the start of data,
// returning them in file order plus the number of valid bytes consumed.
// Everything from the first torn or corrupt frame on is ignored, which
// makes it safe on a snapshot of a live log: a half-appended tail frame
// simply does not decode yet, and will on a later read. This is the
// read-only follower's primitive (shadowstore tail) — it never opens a
// Store and so can never trigger writable-mode tail repair.
func DecodeRecords(data []byte) ([]TrialRecord, int64) {
	recs, _, valid := scanRecords(data)
	return recs, valid
}

// ReadManifest reads a campaign's manifest without opening its store —
// for tooling that wants the identity and trial plan of a possibly
// still-running campaign with zero interaction with its log.
func ReadManifest(dir string) (Manifest, error) {
	return readManifest(dir)
}

// LogOffsets returns the byte offset of every valid record in a
// campaign's trial log, in file order — a diagnostic for tests and
// tooling (truncating the file at LogOffsets(dir)[k] keeps exactly the
// first k records).
func LogOffsets(dir string) ([]int64, error) {
	data, err := os.ReadFile(LogPath(dir))
	if err != nil {
		return nil, err
	}
	_, offs, _ := scanRecords(data)
	return offs, nil
}

func writeManifest(dir string, man Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	tmp := ManifestPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: creating manifest tmp: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		return closeOnErr(f, fmt.Errorf("runstore: writing manifest: %w", err))
	}
	if err := f.Sync(); err != nil {
		return closeOnErr(f, fmt.Errorf("runstore: syncing manifest: %w", err))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: closing manifest tmp: %w", err)
	}
	if err := os.Rename(tmp, ManifestPath(dir)); err != nil {
		return fmt.Errorf("runstore: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

func readManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Manifest{}, fmt.Errorf("runstore: %s holds no campaign (missing %s)", dir, manifestName)
		}
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return Manifest{}, fmt.Errorf("runstore: corrupt manifest in %s: %w", dir, err)
	}
	return man, nil
}

// syncDir flushes directory metadata so a rename (manifest publish) or
// file creation survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// HashJSON fingerprints any JSON-marshalable configuration value:
// sha256 over a version-salted canonical encoding, rendered as hex.
// Struct field order is fixed at compile time and map keys are sorted by
// encoding/json, so equal values always hash equally.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runstore: hashing config: %w", err)
	}
	// The salt ties hashes to the record schema: bumping StoreVersion
	// invalidates stored fingerprints even for identical configs.
	salted := append([]byte(fmt.Sprintf("runstore/v%d\n", StoreVersion)), b...)
	sum := sha256.Sum256(salted)
	return hex.EncodeToString(sum[:]), nil
}
