package websim

import (
	"testing"
	"time"

	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/topology"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func buildFleet(t *testing.T, n int) (*netsim.Network, *topology.Topology, *Fleet) {
	t.Helper()
	topo := topology.Build(topology.Config{Seed: 4})
	net := netsim.New(netsim.Config{Start: t0, Path: topo.PathFunc()})
	f := Build(net, topo, Config{Seed: 4, NumSites: n, NumASes: 10})
	return net, topo, f
}

func TestFleetShape(t *testing.T) {
	_, topo, f := buildFleet(t, 80)
	if len(f.Sites) != 80 {
		t.Fatalf("sites = %d", len(f.Sites))
	}
	asns := f.ASNs()
	if len(asns) == 0 || len(asns) > 10 {
		t.Errorf("ASNs = %d", len(asns))
	}
	countries := map[string]int{}
	for _, s := range f.Sites {
		countries[s.Country]++
		if info, ok := topo.Geo.Lookup(s.Addr); !ok || info.ASN != s.ASN {
			t.Errorf("site %s geo mismatch", s.Domain)
		}
	}
	if countries["US"] == 0 {
		t.Error("no US sites — weights broken")
	}
	for _, asn := range asns {
		if len(f.SitesIn(asn)) == 0 {
			t.Errorf("AS%d has no sites", asn)
		}
	}
	if got := f.CountryOf("US"); len(got) != countries["US"] {
		t.Errorf("CountryOf(US) = %d, want %d", len(got), countries["US"])
	}
}

func TestSiteServesHTTP(t *testing.T) {
	net, topo, f := buildFleet(t, 10)
	site := f.Sites[0]
	clientAS := topo.HostingASes("DE")[0]
	client := netsim.NewHost(net, topo.AllocHostAddr(clientAS))

	var hostSeen string
	site.OnHost = func(n *netsim.Network, host string, client wire.Addr) { hostSeen = host }

	var body []byte
	req := httpwire.NewGET("decoy123.www.experiment.domain", "/").Encode()
	client.SendTCPRequest(net, wire.Endpoint{Addr: site.Addr, Port: 80}, req, netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, payload []byte) { body = payload },
	})
	net.RunUntilIdle()
	resp, err := httpwire.ParseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	// Authentic response despite the Host mismatch (Section 3 footnote 1).
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if hostSeen != "decoy123.www.experiment.domain" {
		t.Errorf("OnHost saw %q", hostSeen)
	}
}

func TestSiteServesTLSAndSNIHook(t *testing.T) {
	net, topo, f := buildFleet(t, 10)
	site := f.Sites[1]
	client := netsim.NewHost(net, topo.AllocHostAddr(topo.HostingASes("FR")[0]))

	var sniSeen string
	site.OnSNI = func(n *netsim.Network, serverName string, client wire.Addr) { sniSeen = serverName }

	var rnd [32]byte
	ch := tlswire.NewClientHello("tlsdecoy.www.experiment.domain", rnd)
	payload, _ := ch.Encode()
	var resp []byte
	client.SendTCPRequest(net, wire.Endpoint{Addr: site.Addr, Port: 443}, payload, netsim.TCPRequestOpts{
		OnResponse: func(n *netsim.Network, p []byte) { resp = p },
	})
	net.RunUntilIdle()
	if _, err := tlswire.ParseServerHello(resp); err != nil {
		t.Fatalf("no ServerHello: %v", err)
	}
	if sniSeen != "tlsdecoy.www.experiment.domain" {
		t.Errorf("OnSNI saw %q", sniSeen)
	}
}

func TestFleetDeterministic(t *testing.T) {
	_, _, f1 := buildFleet(t, 40)
	_, _, f2 := buildFleet(t, 40)
	for i := range f1.Sites {
		if f1.Sites[i].Addr != f2.Sites[i].Addr || f1.Sites[i].ASN != f2.Sites[i].ASN {
			t.Fatalf("site %d differs between identical builds", i)
		}
	}
}
