// Package websim builds the HTTP/TLS destination fleet standing in for the
// Tranco top-1K front-ends the paper targets (2,325 IPs across 234 ASes).
// Decoys complete TCP handshakes with these servers and receive authentic
// responses; traffic shadowing never tampers with the primary exchange.
package websim

import (
	"fmt"
	"math/rand"
	"sort"

	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/topology"
	"shadowmeter/internal/wire"
)

// Site is one web front-end IP.
type Site struct {
	Rank    int    // Tranco-style popularity rank (1 = most popular)
	Domain  string // the site's own domain (not the decoy domain)
	Addr    wire.Addr
	Country string
	ASN     int

	// OnSNI, when set, receives the server name of every ClientHello this
	// site terminates — destination-side TLS shadowing (a majority of TLS
	// observers sit at the destination per Table 2). Assign after Build;
	// the deployed handler reads it live.
	OnSNI func(n *netsim.Network, serverName string, client wire.Addr)
	// OnHost is the HTTP analogue for the small share of HTTP shadowing at
	// the destination.
	OnHost func(n *netsim.Network, host string, client wire.Addr)
}

// Fleet is the deployed destination set.
type Fleet struct {
	Sites []*Site
	byAS  map[int][]*Site
}

// countryWeights steers where front-end IPs live. The mix keeps CN, US and
// CA prominent — the destination countries Figure 3 singles out — plus AD,
// which the paper calls out explicitly.
var countryWeights = []struct {
	country string
	weight  int
}{
	{"US", 30}, {"CN", 15}, {"DE", 8}, {"GB", 6}, {"NL", 5}, {"FR", 5},
	{"JP", 5}, {"CA", 5}, {"SG", 4}, {"IE", 3}, {"AU", 3}, {"KR", 3},
	{"BR", 2}, {"IN", 2}, {"RU", 2}, {"AD", 1}, {"HK", 1},
}

// Config parameterizes fleet construction.
type Config struct {
	Seed int64
	// NumSites is the number of front-end IPs (paper: 2,325). 0 means 200.
	NumSites int
	// NumASes bounds the hosting ASes created (paper: 234). 0 means
	// NumSites/10, minimum 10.
	NumASes int
}

// Build creates NumSites web servers in NumASes hosting ASes and registers
// them on the network.
func Build(n *netsim.Network, topo *topology.Topology, cfg Config) *Fleet {
	numSites := cfg.NumSites
	if numSites <= 0 {
		numSites = 200
	}
	numASes := cfg.NumASes
	if numASes <= 0 {
		numASes = numSites / 10
		if numASes < 10 {
			numASes = 10
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Create hosting ASes with the country mix above.
	var totalW int
	for _, w := range countryWeights {
		totalW += w.weight
	}
	ases := make([]*topology.AS, 0, numASes)
	for i := 0; i < numASes; i++ {
		pick := rng.Intn(totalW)
		country := countryWeights[len(countryWeights)-1].country
		for _, w := range countryWeights {
			pick -= w.weight
			if pick < 0 {
				country = w.country
				break
			}
		}
		ases = append(ases, topo.NewStubAS(fmt.Sprintf("%s-WEB-%d CDN/Hosting", country, i+1), country, true))
	}

	f := &Fleet{byAS: make(map[int][]*Site)}
	for i := 0; i < numSites; i++ {
		as := ases[rng.Intn(len(ases))]
		addr := topo.AllocHostAddr(as)
		site := &Site{
			Rank:    i + 1,
			Domain:  fmt.Sprintf("site-%04d.example", i+1),
			Addr:    addr,
			Country: as.Country,
			ASN:     as.ASN,
		}
		f.Sites = append(f.Sites, site)
		f.byAS[as.ASN] = append(f.byAS[as.ASN], site)
		deploySite(n, site)
	}
	return f
}

// deploySite registers the HTTP and TLS services of one front-end.
func deploySite(n *netsim.Network, site *Site) {
	host := netsim.NewHost(n, site.Addr)
	body := fmt.Sprintf("<html><body>%s (rank %d)</body></html>", site.Domain, site.Rank)
	host.ServeTCP(80, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		if _, err := httpwire.ParseRequest(payload); err != nil {
			return httpwire.NewResponse(400, "bad request").Encode()
		}
		// Top sites answer regardless of Host header (the decoy's Host
		// mismatches the front-end on purpose, see Section 3 footnote 1).
		if req, err := httpwire.ParseRequest(payload); err == nil && site.OnHost != nil {
			site.OnHost(n, req.Host(), from.Addr)
		}
		return httpwire.NewResponse(200, body).Encode()
	})
	host.ServeTCP(443, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		ch, err := tlswire.ParseClientHello(payload)
		if err != nil {
			return nil
		}
		if site.OnSNI != nil {
			// The terminating server sees the name whether it arrived as
			// clear-text SNI or inside ECH — encryption only blinds the
			// wire, not the destination (paper, Discussion).
			name := ch.ServerName
			if name == "" {
				name, _ = ch.ECHServerName()
			}
			if name != "" {
				site.OnSNI(n, name, from.Addr)
			}
		}
		sh := tlswire.ServerHello{Version: tlswire.VersionTLS12, CipherSuite: 0x1302}
		copy(sh.Random[:], site.Domain)
		return sh.Encode()
	})
}

// ASNs lists the distinct hosting ASes actually used, sorted.
func (f *Fleet) ASNs() []int {
	out := make([]int, 0, len(f.byAS))
	for asn := range f.byAS {
		out = append(out, asn)
	}
	sort.Ints(out)
	return out
}

// SitesIn returns the sites hosted in one AS.
func (f *Fleet) SitesIn(asn int) []*Site { return f.byAS[asn] }

// CountryOf returns the sites in a country.
func (f *Fleet) CountryOf(country string) []*Site {
	var out []*Site
	for _, s := range f.Sites {
		if s.Country == country {
			out = append(out, s)
		}
	}
	return out
}
