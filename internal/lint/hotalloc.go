package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc flags fmt.Sprintf in functions reachable from the per-packet
// forwarding path. String formatting allocates on every call, and the
// forwarding path runs once per simulated hop — the allocation sweeps
// that keep BenchmarkTrials flat die by a thousand such cuts.
//
// Roots are declared by annotating a function with a
//
//	//shadowlint:hotpath
//
// directive comment; reachability is the package-local static call
// graph (direct calls and method calls on concrete receivers — calls
// through interfaces or function values are not followed, so hot-path
// entry points behind an interface need their own annotation).
var HotAlloc = &Analyzer{
	Name:    "hotalloc",
	Doc:     "forbid fmt.Sprintf in functions reachable from //shadowlint:hotpath roots",
	Applies: inInternal,
	Run:     runHotAlloc,
}

const hotpathDirective = "shadowlint:hotpath"

func runHotAlloc(p *Package) []Diagnostic {
	// Map every declared function object to its declaration, and collect
	// the annotated roots.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []types.Object
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if hasHotpathDirective(fd) {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Static call graph over the package's declared functions.
	calls := make(map[types.Object][]types.Object)
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeObject(p, call); callee != nil {
				if _, local := decls[callee]; local {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
	}

	// Breadth-first reachability, remembering the root each function was
	// discovered from so findings can say why a helper is hot.
	via := make(map[types.Object]types.Object)
	queue := make([]types.Object, 0, len(roots))
	for _, r := range roots {
		via[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range calls[cur] {
			if _, seen := via[callee]; !seen {
				via[callee] = via[cur]
				queue = append(queue, callee)
			}
		}
	}

	var out []Diagnostic
	for obj, fd := range decls {
		root, hot := via[obj]
		if !hot {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isFmtSprintf(p, call) {
				if obj == root {
					out = append(out, diag(p, call.Pos(), "hotalloc",
						"fmt.Sprintf allocates on the per-packet hot path (%s is a //shadowlint:hotpath root)", obj.Name()))
				} else {
					out = append(out, diag(p, call.Pos(), "hotalloc",
						"fmt.Sprintf allocates on the per-packet hot path (%s is reachable from hot-path root %s)", obj.Name(), root.Name()))
				}
			}
			return true
		})
	}
	return out
}

// hasHotpathDirective reports whether fd's doc comment carries the
// //shadowlint:hotpath marker.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimPrefix(c.Text, "//") == hotpathDirective {
			return true
		}
	}
	return false
}

// calleeObject resolves the function object a call statically targets:
// plain identifiers and method selectors on concrete receivers. Calls
// through interfaces, function values, and builtins resolve to nil.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj()
			}
			return nil
		}
		// Package-qualified call (pkg.Fn) — only local objects matter to
		// the caller, and those come back via Uses.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isFmtSprintf matches a call to the fmt package's Sprintf.
func isFmtSprintf(p *Package, call *ast.CallExpr) bool {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Sprintf" {
		return false
	}
	id, ok := unparen(se.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}
