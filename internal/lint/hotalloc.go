package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags fmt.Sprintf in functions reachable from the per-packet
// forwarding path. String formatting allocates on every call, and the
// forwarding path runs once per simulated hop — the allocation sweeps
// that keep BenchmarkTrials flat die by a thousand such cuts.
//
// Roots are declared by annotating a function with a
//
//	//shadowlint:hotpath
//
// directive comment; reachability is the whole-program static call
// graph (direct calls and method calls on concrete receivers, across
// package boundaries — so pooled helpers in wire/dnswire called from
// netsim hot paths are covered). Calls through interfaces or function
// values are not followed: hot-path entry points behind an interface
// need their own annotation.
var HotAlloc = &Analyzer{
	Name:    "hotalloc",
	Doc:     "forbid fmt.Sprintf in functions reachable from //shadowlint:hotpath roots",
	Applies: inInternal,
	Run:     runHotAlloc,
}

func runHotAlloc(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	forEachFuncNode(prog, p, func(n *Node, body *ast.BlockStmt) {
		root := prog.HotRoot(n)
		if root == nil {
			return
		}
		inspectOwn(body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok || !isFmtSprintf(p, call) {
				return
			}
			if n == root {
				out = append(out, rootedDiag(p, call.Pos(), "hotalloc", root.Name(),
					"fmt.Sprintf allocates on the per-packet hot path (%s is a //shadowlint:hotpath root)", n.Name()))
			} else {
				out = append(out, rootedDiag(p, call.Pos(), "hotalloc", root.Name(),
					"fmt.Sprintf allocates on the per-packet hot path (%s is reachable from hot-path root %s)", n.Name(), root.Name()))
			}
		})
	})
	return out
}

// forEachFuncNode visits every call-graph node whose body lives in p —
// declarations and function literals — with its own body (nested
// literals excluded; they get their own visit).
func forEachFuncNode(prog *Program, p *Package, fn func(n *Node, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if n := prog.FuncNode(p.Info.Defs[fd.Name]); n != nil {
				fn(n, fd.Body)
			}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				if lit, ok := node.(*ast.FuncLit); ok {
					if n := prog.LitNode(lit); n != nil {
						fn(n, lit.Body)
					}
				}
				return true
			})
		}
	}
}

// inspectOwn walks a function body without descending into nested
// function literals, so each expression is attributed to exactly one
// call-graph node.
func inspectOwn(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// calleeObject resolves the function object a call statically targets:
// plain identifiers and method selectors on concrete receivers. Calls
// through interfaces, function values, and builtins resolve to nil.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				return sel.Obj()
			}
			return nil
		}
		// Package-qualified call (pkg.Fn) — only local objects matter to
		// the caller, and those come back via Uses.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isFmtSprintf matches a call to the fmt package's Sprintf.
func isFmtSprintf(p *Package, call *ast.CallExpr) bool {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Sprintf" {
		return false
	}
	id, ok := unparen(se.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}
