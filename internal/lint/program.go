package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive names recognized on declarations (besides the suppression
// form //shadowlint:ignore, which is handled by the engine itself).
// Each attaches to a specific declaration kind:
//
//	hotpath    (func)  per-packet hot-path root for hotalloc
//	eventloop  (func)  event-loop dispatch root for eventloop
//	eventloop  (field) field confined to the event-loop goroutine
//	trialpath  (func)  per-trial code root for crossworld
//	shared     (type)  structure shared across concurrent trial worlds
//	sharedinit (func)  construction-time writer of a shared structure
//	bounded    (field, func, var) label source drawn from a bounded set
const (
	dirHotpath    = "hotpath"
	dirEventloop  = "eventloop"
	dirTrialpath  = "trialpath"
	dirShared     = "shared"
	dirSharedInit = "sharedinit"
	dirBounded    = "bounded"
)

// funcDirectives, fieldDirectives, typeDirectives, varDirectives say
// which directives may attach to which declaration kind.
var (
	funcDirectives  = map[string]bool{dirHotpath: true, dirEventloop: true, dirTrialpath: true, dirSharedInit: true, dirBounded: true}
	fieldDirectives = map[string]bool{dirEventloop: true, dirBounded: true}
	typeDirectives  = map[string]bool{dirShared: true}
	varDirectives   = map[string]bool{dirBounded: true}
)

// Node is one function in the whole-program call graph: a declared
// function or method, or a function literal.
type Node struct {
	Obj  types.Object  // declared func/method; nil for literals
	Lit  *ast.FuncLit  // literal; nil for declarations
	Pkg  *Package      // package containing the body
	Decl *ast.FuncDecl // enclosing declaration (the literal's host for Lit nodes)

	calls []*Node // static edges: direct calls, concrete methods, enclosed literals
	dyn   []*Node // dynamic edges: interface dispatch + signature-matched func values

	goLaunched bool // the function itself is the target of a go statement
	syncsFile  bool // body contains a direct (*os.File).Sync call
}

// Name renders the node for diagnostics.
func (n *Node) Name() string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	if n.Decl != nil {
		return "func literal in " + n.Decl.Name.Name
	}
	return "func literal"
}

// Program is the whole-program analysis state shared by every analyzer:
// all packages loaded through one type-checker (the shared type-fact
// cache), the cross-package call graph, the directive index, and the
// precomputed reachability sets. It is immutable once built, so the
// per-package analysis workers read it concurrently without locks.
type Program struct {
	Loader *Loader
	// Pkgs is every module-local package the loader has seen — analysis
	// targets and their dependencies — sorted by import path.
	Pkgs []*Package

	nodes   map[types.Object]*Node
	litNode map[*ast.FuncLit]*Node
	ordered []*Node // deterministic construction order

	// dirs maps any annotated object (func, struct field, type name,
	// package var) to its shadowlint directives.
	dirs map[types.Object][]string

	// hot/loop/trial map each reachable node to the root it was first
	// discovered from. hot and trial use static edges only; loop follows
	// dynamic edges too, because event-loop work is dispatched through
	// interfaces (netsim.Handler, netsim.Tap) and scheduled closures.
	hot   map[*Node]*Node
	loop  map[*Node]*Node
	trial map[*Node]*Node

	// syncers holds functions that (transitively, via static calls)
	// invoke (*os.File).Sync — what atomicpub accepts as a durability
	// barrier around an os.Rename publish.
	syncers map[*Node]bool

	// directiveDiags holds unknown/misplaced-directive findings keyed by
	// import path; the engine appends them to that package's report.
	directiveDiags map[string][]Diagnostic
}

// NewProgram builds the whole-program state over every package the
// loader has loaded so far (targets plus dependencies). Call it after
// loading the analysis targets.
func NewProgram(l *Loader) *Program {
	prog := &Program{
		Loader:         l,
		nodes:          make(map[types.Object]*Node),
		litNode:        make(map[*ast.FuncLit]*Node),
		dirs:           make(map[types.Object][]string),
		syncers:        make(map[*Node]bool),
		directiveDiags: make(map[string][]Diagnostic),
	}
	for _, p := range l.pkgs {
		prog.Pkgs = append(prog.Pkgs, p)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })

	for _, p := range prog.Pkgs {
		prog.collectDirectives(p)
	}
	b := &graphBuilder{prog: prog}
	for _, p := range prog.Pkgs {
		b.declareNodes(p)
	}
	for _, p := range prog.Pkgs {
		b.buildEdges(p)
	}
	b.resolveDynamic()
	prog.hot = prog.reach(dirHotpath, false)
	prog.loop = prog.reach(dirEventloop, true)
	prog.trial = prog.reach(dirTrialpath, false)
	prog.computeSyncers()
	return prog
}

// Directives returns the shadowlint directives attached to an object's
// declaration (function, struct field, type name, or package var).
func (prog *Program) Directives(obj types.Object) []string {
	return prog.dirs[obj]
}

// HasDirective reports whether obj's declaration carries the directive.
func (prog *Program) HasDirective(obj types.Object, dir string) bool {
	for _, d := range prog.dirs[obj] {
		if d == dir {
			return true
		}
	}
	return false
}

// FuncNode returns the graph node of a declared function, or nil.
func (prog *Program) FuncNode(obj types.Object) *Node { return prog.nodes[obj] }

// LitNode returns the graph node of a function literal, or nil.
func (prog *Program) LitNode(lit *ast.FuncLit) *Node { return prog.litNode[lit] }

// HotRoot reports the hotpath root a node is reachable from (static
// edges), or nil.
func (prog *Program) HotRoot(n *Node) *Node { return prog.hot[n] }

// LoopRoot reports the event-loop root a node is reachable from
// (static + dynamic edges), or nil.
func (prog *Program) LoopRoot(n *Node) *Node { return prog.loop[n] }

// TrialRoot reports the trial-path root a node is reachable from
// (static edges), or nil.
func (prog *Program) TrialRoot(n *Node) *Node { return prog.trial[n] }

// Syncs reports whether the node transitively calls (*os.File).Sync.
func (prog *Program) Syncs(n *Node) bool { return prog.syncers[n] }

// reach runs BFS from every function annotated with dir, remembering
// the root each node was discovered from. Node order and edge order are
// both deterministic, so root attribution is stable across runs and
// worker counts.
func (prog *Program) reach(dir string, dynamic bool) map[*Node]*Node {
	via := make(map[*Node]*Node)
	var queue []*Node
	for _, n := range prog.ordered {
		if n.Obj != nil && prog.HasDirective(n.Obj, dir) {
			via[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		edges := cur.calls
		if dynamic {
			edges = append(append([]*Node(nil), cur.calls...), cur.dyn...)
		}
		for _, next := range edges {
			if _, seen := via[next]; !seen {
				via[next] = via[cur]
				queue = append(queue, next)
			}
		}
	}
	return via
}

// computeSyncers propagates the "calls (*os.File).Sync" fact backwards
// over static edges to a fixpoint.
func (prog *Program) computeSyncers() {
	for _, n := range prog.ordered {
		if n.syncsFile {
			prog.syncers[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.ordered {
			if prog.syncers[n] {
				continue
			}
			for _, c := range n.calls {
				if prog.syncers[c] {
					prog.syncers[n] = true
					changed = true
					break
				}
			}
		}
	}
}

// collectDirectives walks a package's declarations, attaching directive
// comments to their objects and reporting unknown or misplaced ones.
func (prog *Program) collectDirectives(p *Package) {
	consumed := make(map[token.Pos]bool)
	attach := func(obj types.Object, cg *ast.CommentGroup, allowed map[string]bool, where string) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			name, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			consumed[c.Pos()] = true
			if !allowed[name] {
				prog.directiveDiags[p.Path] = append(prog.directiveDiags[p.Path], diag(p, c.Pos(),
					"shadowlint", "directive //shadowlint:%s does not apply to a %s declaration", name, where))
				continue
			}
			if obj != nil {
				prog.dirs[obj] = append(prog.dirs[obj], name)
			}
		}
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				attach(p.Info.Defs[d.Name], d.Doc, funcDirectives, "function")
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						obj := p.Info.Defs[s.Name]
						attach(obj, s.Doc, typeDirectives, "type")
						if len(d.Specs) == 1 {
							attach(obj, d.Doc, typeDirectives, "type")
						}
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, field := range st.Fields.List {
								for _, name := range field.Names {
									attach(p.Info.Defs[name], field.Doc, fieldDirectives, "struct field")
									attach(p.Info.Defs[name], field.Comment, fieldDirectives, "struct field")
								}
							}
						}
					case *ast.ValueSpec:
						var obj types.Object
						if len(s.Names) > 0 {
							obj = p.Info.Defs[s.Names[0]]
						}
						attach(obj, s.Doc, varDirectives, "variable")
						if len(d.Specs) == 1 {
							attach(obj, d.Doc, varDirectives, "variable")
						}
					}
				}
			}
		}
		// Any directive comment not consumed above floats free of a
		// declaration it could annotate — report it so annotations cannot
		// silently rot.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseDirective(c.Text)
				if !ok || consumed[c.Pos()] {
					continue
				}
				prog.directiveDiags[p.Path] = append(prog.directiveDiags[p.Path], diag(p, c.Pos(),
					"shadowlint", "directive //shadowlint:%s is not attached to a declaration that accepts it", name))
			}
		}
	}
}

// parseDirective extracts the name of a //shadowlint:<name> directive
// comment. The suppression form (ignore) and unrelated comments return
// false. Unknown names are returned as-is so the caller can report them
// via the allowed-set check.
func parseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//shadowlint:")
	if !ok {
		return "", false
	}
	name := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name = rest[:i]
	}
	if name == "ignore" || name == "" {
		return "", false
	}
	return name, true
}

// graphBuilder accumulates the call graph over all packages.
type graphBuilder struct {
	prog *Program

	// dynamic-resolution worklists, collected during buildEdges and
	// resolved once all packages are walked.
	ifaceCalls []ifaceCall
	sigCalls   []sigCall
	funcVals   []*Node // address-taken declared functions and all literals

	// pendingGoLits holds go-launched literals whose nodes did not exist
	// yet when the GoStmt was visited (pre-order traversal reaches the
	// statement before the literal).
	pendingGoLits []*ast.FuncLit
}

type ifaceCall struct {
	from   *Node
	method *types.Func
}

type sigCall struct {
	from *Node
	sig  *types.Signature
}

// declareNodes creates a node per function declaration.
func (b *graphBuilder) declareNodes(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			n := &Node{Obj: obj, Pkg: p, Decl: fd}
			b.prog.nodes[obj] = n
			b.prog.ordered = append(b.prog.ordered, n)
		}
	}
}

// buildEdges walks every function body, creating literal nodes and
// recording static edges plus the dynamic-resolution worklists.
func (b *graphBuilder) buildEdges(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root := b.prog.nodes[p.Info.Defs[fd.Name]]
			if root == nil {
				continue
			}
			b.walkBody(p, root, fd)
		}
	}
}

// walkBody traverses one declaration, attributing calls to the innermost
// enclosing function (declaration or literal).
func (b *graphBuilder) walkBody(p *Package, root *Node, fd *ast.FuncDecl) {
	// Pre-pass: the expressions that appear in call position, so function
	// references elsewhere can be recognized as address-taken values.
	callFun := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				callFun[fun] = true
			case *ast.SelectorExpr:
				callFun[fun.Sel] = true
			}
		}
		return true
	})

	cur := root
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if lit, ok := top.(*ast.FuncLit); ok {
				cur = b.enclosingOf(root, lit, stack)
			}
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.FuncLit:
			lit := &Node{Lit: x, Pkg: p, Decl: fd}
			b.prog.litNode[x] = lit
			b.prog.ordered = append(b.prog.ordered, lit)
			// The enclosing function conservatively reaches its literals.
			cur.calls = append(cur.calls, lit)
			b.funcVals = append(b.funcVals, lit)
			cur = lit
		case *ast.GoStmt:
			b.markGoTarget(p, x)
		case *ast.CallExpr:
			b.recordCall(p, cur, x)
		case *ast.Ident:
			if !callFun[x] {
				if fn, ok := p.Info.Uses[x].(*types.Func); ok {
					if target := b.prog.nodes[fn]; target != nil {
						b.funcVals = append(b.funcVals, target)
					}
				}
			}
		}
		return true
	})
}

// enclosingOf finds the node to restore after leaving lit: the nearest
// literal still on the stack, else the declaration's node.
func (b *graphBuilder) enclosingOf(root *Node, lit *ast.FuncLit, stack []ast.Node) *Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if l, ok := stack[i].(*ast.FuncLit); ok {
			return b.prog.litNode[l]
		}
	}
	return root
}

// markGoTarget flags the function a go statement launches.
func (b *graphBuilder) markGoTarget(p *Package, g *ast.GoStmt) {
	switch fun := unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		// Pre-order traversal visits the GoStmt before the literal, so the
		// literal's node may not exist yet; defer the flag to resolve time.
		if n := b.prog.litNode[fun]; n != nil {
			n.goLaunched = true
		} else {
			b.pendingGoLits = append(b.pendingGoLits, fun)
		}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			if n := b.prog.nodes[fn]; n != nil {
				n.goLaunched = true
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := b.prog.nodes[fn]; n != nil {
				n.goLaunched = true
			}
		}
	}
}

// recordCall classifies one call expression: static edge, interface
// dispatch, or indirect function-value call.
func (b *graphBuilder) recordCall(p *Package, from *Node, call *ast.CallExpr) {
	fun := unparen(call.Fun)
	// Type conversions are not calls.
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return
	}
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[x].(type) {
		case *types.Func:
			if target := b.prog.nodes[obj]; target != nil {
				from.calls = append(from.calls, target)
			} else if isOSFileSync(obj) {
				from.syncsFile = true
			}
			return
		case *types.Builtin, nil:
			return
		default:
			// Variable of function type: indirect call.
			b.recordIndirect(p, from, fun)
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if isInterfaceRecv(m) {
					b.ifaceCalls = append(b.ifaceCalls, ifaceCall{from: from, method: m})
					return
				}
				if target := b.prog.nodes[m]; target != nil {
					from.calls = append(from.calls, target)
				} else if isOSFileSync(m) {
					from.syncsFile = true
				}
				return
			case types.FieldVal:
				// Struct field of function type: indirect call.
				b.recordIndirect(p, from, fun)
				return
			}
			return
		}
		// Package-qualified call (pkg.Fn) or qualified var of func type.
		switch obj := p.Info.Uses[x.Sel].(type) {
		case *types.Func:
			if target := b.prog.nodes[obj]; target != nil {
				from.calls = append(from.calls, target)
			} else if isOSFileSync(obj) {
				from.syncsFile = true
			}
		case *types.Var:
			b.recordIndirect(p, from, fun)
		}
		return
	case *ast.FuncLit:
		// Immediately-invoked literal: the enclosing→literal edge added at
		// literal creation already covers it.
		return
	default:
		b.recordIndirect(p, from, fun)
	}
}

// recordIndirect queues an indirect call for signature-matched dynamic
// resolution.
func (b *graphBuilder) recordIndirect(p *Package, from *Node, fun ast.Expr) {
	tv, ok := p.Info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		b.sigCalls = append(b.sigCalls, sigCall{from: from, sig: sig})
	}
}

// resolveDynamic expands the interface and function-value worklists into
// dyn edges, deterministically.
func (b *graphBuilder) resolveDynamic() {
	for _, lit := range b.pendingGoLits {
		if n := b.prog.litNode[lit]; n != nil {
			n.goLaunched = true
		}
	}

	// Interface dispatch: class-hierarchy analysis over the module's
	// named types.
	named := b.namedTypes()
	implCache := make(map[*types.Func][]*Node)
	for _, ic := range b.ifaceCalls {
		impls, ok := implCache[ic.method]
		if !ok {
			impls = b.implementers(ic.method, named)
			implCache[ic.method] = impls
		}
		ic.from.dyn = append(ic.from.dyn, impls...)
	}

	// Indirect calls: any function value (literal or address-taken
	// declaration) with an identical underlying signature may be the
	// callee.
	for _, sc := range b.sigCalls {
		for _, cand := range b.funcVals {
			if types.Identical(sc.sig, candidateSig(cand)) {
				sc.from.dyn = append(sc.from.dyn, cand)
			}
		}
	}
}

// namedTypes collects every named (non-interface) type declared in the
// loaded module packages, in deterministic order.
func (b *graphBuilder) namedTypes() []types.Type {
	var out []types.Type
	for _, p := range b.prog.Pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, t)
		}
	}
	return out
}

// implementers resolves an interface method to the concrete methods of
// module types that satisfy the interface.
func (b *graphBuilder) implementers(m *types.Func, named []types.Type) []*Node {
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Node
	for _, t := range named {
		if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := b.prog.nodes[fn]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// candidateSig returns the underlying signature of a function value.
func candidateSig(n *Node) *types.Signature {
	if n.Obj != nil {
		return n.Obj.Type().Underlying().(*types.Signature)
	}
	if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// isInterfaceRecv reports whether a method's receiver is an interface.
func isInterfaceRecv(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// isOSFileSync matches the (*os.File).Sync method.
func isOSFileSync(fn *types.Func) bool {
	if fn.Name() != "Sync" || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
