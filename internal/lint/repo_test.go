package lint

import "testing"

// TestAllAnalyzersRegistered pins the analyzer roster, so the repo-wide
// clean run below provably covers every analyzer — including the five
// whole-program ones — and a new analyzer cannot be shipped without
// joining the gate.
func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{
		"simclock", "detrand", "droppederr", "sliceretain", "rawprint",
		"hotalloc", "crossworld", "eventloop", "atomicpub", "metriclabel",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", a.Name)
		}
	}
}

// TestRepoIsLintClean runs every analyzer over the whole module, so a
// plain `go test ./...` catches determinism regressions without anyone
// remembering to invoke cmd/shadowlint. The tree must stay at zero
// findings; deliberate exceptions carry //shadowlint:ignore directives
// with written reasons.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short mode")
	}
	l, err := Open("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, paths, All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or add a //shadowlint:ignore <analyzer> <reason> with a written justification")
	}
}
