package lint

import "testing"

// TestRepoIsLintClean runs every analyzer over the whole module, so a
// plain `go test ./...` catches determinism regressions without anyone
// remembering to invoke cmd/shadowlint. The tree must stay at zero
// findings; deliberate exceptions carry //shadowlint:ignore directives
// with written reasons.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module; skipped in -short mode")
	}
	l, err := Open("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, paths, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Log("fix the findings or add a //shadowlint:ignore <analyzer> <reason> with a written justification")
	}
}
