// Package hotsim mimics a forwarding engine: hotalloc must flag
// fmt.Sprintf anywhere reachable from a //shadowlint:hotpath root,
// honor suppressions, and leave cold code alone.
package hotsim

import "fmt"

type engine struct {
	names map[int]string
}

// forward is the per-packet entry point.
//
//shadowlint:hotpath
func (e *engine) forward(id int) string {
	return e.lookup(id) + e.tag(id)
}

// lookup is hot only by reachability from forward.
func (e *engine) lookup(id int) string {
	if n, ok := e.names[id]; ok {
		return n
	}
	n := fmt.Sprintf("router-%d", id) // want hotalloc "reachable from hot-path root forward"
	e.names[id] = n
	return n
}

// tag exercises the escape hatch: the Sprintf below is suppressed.
func (e *engine) tag(id int) string {
	//shadowlint:ignore hotalloc tags are formatted once per topology build in production
	return fmt.Sprintf("tag-%d", id)
}

// direct is itself a root: Sprintf in the root body is flagged too.
//
//shadowlint:hotpath
func direct(id int) string {
	return fmt.Sprintf("d-%d", id) // want hotalloc "direct is a //shadowlint:hotpath root"
}

// coldName is not reachable from any root; formatting here is fine.
func coldName(id int) string {
	return fmt.Sprintf("cold-%d", id)
}
