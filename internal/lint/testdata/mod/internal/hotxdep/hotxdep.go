// Package hotxdep is the dependency side of the cross-package hotalloc
// fixture.
package hotxdep

import "fmt"

// Describe is called from hotx's annotated root.
func Describe(b []byte) string {
	return fmt.Sprintf("%d bytes", len(b)) // want hotalloc "Describe is reachable from hot-path root forward"
}

// Cold is not reachable from any hot path; its Sprintf is fine.
func Cold(b []byte) string {
	return fmt.Sprintf("cold %d", len(b))
}

var _ = Cold
