// Package loopfield exercises the eventloop analyzer: fields annotated
// //shadowlint:eventloop may only be used in code reachable from a
// //shadowlint:eventloop dispatch root, and never from goroutine-
// launched code.
package loopfield

//shadowlint:eventloop // want shadowlint "does not apply to a variable declaration"
var scratchPool []byte

// World owns the single event-loop goroutine.
type World struct {
	// enc is reply-encode scratch, safe only because handlers run on
	// the world's event-loop goroutine.
	//
	//shadowlint:eventloop
	enc []byte

	handlers []func()
}

// Dispatch is the event loop: everything it reaches — including the
// registered func() handlers, via the indirect call — runs on its
// goroutine.
//
//shadowlint:eventloop
func (w *World) Dispatch() {
	for _, fn := range w.handlers {
		fn()
	}
}

// Register queues a handler for the loop.
func (w *World) Register(fn func()) { w.handlers = append(w.handlers, fn) }

// Setup wires a handler; the closure is reachable from Dispatch through
// the signature-matched indirect call, so its scratch use is legal.
func Setup(w *World) {
	w.Register(func() {
		w.enc = append(w.enc[:0], 1)
	})
}

// Stray is called from nowhere the loop reaches.
func Stray(w *World) {
	w.enc = append(w.enc, 2) // want eventloop "not reachable from any //shadowlint:eventloop dispatch root"
}

// Leak hands the scratch to a fresh goroutine.
func Leak(w *World) {
	go w.drain()
}

func (w *World) drain() {
	w.enc = w.enc[:0] // want eventloop "goroutine-launched"
}

// strayButJustified shows a suppressed finding.
func strayButJustified(w *World) {
	w.enc = nil //shadowlint:ignore eventloop fixture keeps one justified reset outside the loop
}

var (
	_ = Setup
	_ = Stray
	_ = Leak
	_ = strayButJustified
	_ = scratchPool
)
