// Package metriclabel exercises the metriclabel analyzer: CounterVec
// label values must be constants or //shadowlint:bounded sources.
package metriclabel

import "fixture/internal/telemetry"

// Router is topology state; its name set is fixed at build time.
type Router struct {
	//shadowlint:bounded
	Name string

	Addr string
}

const ruleDNS = "dns"

// classify maps arbitrary payloads onto a fixed rule set.
//
//shadowlint:bounded
func classify(payload []byte) string {
	if len(payload) > 12 {
		return "dns"
	}
	return "other"
}

func record(vec *telemetry.CounterVec, r *Router, payload []byte) {
	vec.With("http").Inc()
	vec.With(ruleDNS).Inc()
	vec.With(r.Name).Inc()
	vec.With(classify(payload)).Inc()
	vec.With(r.Addr).Inc()          // want metriclabel "unbounded metric label"
	vec.With(string(payload)).Inc() // want metriclabel "unbounded metric label"
}

func recordJustified(vec *telemetry.CounterVec, addr string) {
	vec.With(addr).Inc() //shadowlint:ignore metriclabel fixture keeps one justified per-address child
}

var (
	_ = record
	_ = recordJustified
)
