// Package atomicpub exercises the atomicpub analyzer: every os.Rename
// publish must be fsync-bracketed, and os.WriteFile is forbidden in a
// package that publishes via rename.
package atomicpub

import "os"

// publishGood is the canonical durable publish: write tmp, fsync the
// file, rename, fsync the directory (through a helper).
func publishGood(dir string, data []byte) error {
	tmp := dir + "/manifest.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir+"/manifest.json"); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir flushes directory metadata; callers count as syncing.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

// publishTorn renames without either barrier.
func publishTorn(dir string) error {
	return os.Rename(dir+"/a", dir+"/b") // want atomicpub "not preceded by an fsync" // want atomicpub "not followed by a directory fsync"
}

// publishHalf syncs the file but forgets the directory.
func publishHalf(dir string, f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(dir+"/a", dir+"/b") // want atomicpub "not followed by a directory fsync"
}

// writeDirect is torn-on-crash; forbidden where renames exist.
func writeDirect(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicpub "not atomic"
}

// publishJustified shows a suppressed finding.
func publishJustified(dir string) error {
	//shadowlint:ignore atomicpub fixture keeps one justified non-durable rename
	return os.Rename(dir+"/scratch", dir+"/scratch2")
}

var (
	_ = publishGood
	_ = publishTorn
	_ = publishHalf
	_ = writeDirect
	_ = publishJustified
)
