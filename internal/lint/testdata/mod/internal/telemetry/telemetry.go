// Package telemetry is a miniature stand-in for the real module's
// telemetry package, so metriclabel fixtures can call CounterVec.With.
// The path matters: metriclabel resolves With by its receiver type and
// the internal/telemetry import-path suffix, and exempts this package
// itself.
package telemetry

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// CounterVec is a one-label counter family.
type CounterVec struct{ children map[string]*Counter }

// With returns the counter for a label value, creating it on first use.
func (v *CounterVec) With(label string) *Counter {
	if v.children == nil {
		v.children = make(map[string]*Counter)
	}
	c, ok := v.children[label]
	if !ok {
		c = &Counter{}
		v.children[label] = c
	}
	return c
}
