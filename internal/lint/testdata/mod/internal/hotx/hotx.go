// Package hotx exercises cross-package hotalloc reachability: its
// annotated root calls into internal/hotxdep, whose Sprintf must be
// flagged even though the root lives in another package.
package hotx

import "fixture/internal/hotxdep"

// forward is the per-packet entry point.
//
//shadowlint:hotpath
func forward(b []byte) string {
	return hotxdep.Describe(b)
}

var _ = forward
