// Package errs seeds droppederr violations for the analyzer tests.
package errs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Bad drops errors every way the analyzer knows.
func Bad() int {
	fail()             // want droppederr "error result of fixture/internal/errs.fail is not checked"
	_ = fail()         // want droppederr "error value discarded with _"
	strconv.Atoi("17") // want droppederr "error result of strconv.Atoi is not checked"
	v, _ := pair()     // want droppederr "error result of fixture/internal/errs.pair discarded with _"
	return v
}

// Allowed exercises the fmt.Fprintf-style and never-failing-writer
// allowlists: no findings.
func Allowed() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "x=%d", 1)
	buf.WriteString("ok")
	var sb strings.Builder
	sb.WriteString(buf.String())
	return sb.String()
}

// Deferred closes are idiomatic and exempt.
func Deferred(c io.Closer) {
	defer c.Close()
}

// DeferredLiteral still checks the body of a deferred function literal.
func DeferredLiteral() {
	defer func() {
		fail() // want droppederr "error result of fixture/internal/errs.fail is not checked"
	}()
}

// Handled checks its errors: no findings.
func Handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// Suppressed documents one deliberate best-effort call.
func Suppressed() {
	fail() //shadowlint:ignore droppederr fixture exercises a suppressed best-effort call
}
