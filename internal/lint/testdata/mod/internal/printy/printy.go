// Package printy seeds rawprint violations and suppressions for the
// analyzer tests. The // want markers encode the expected diagnostics.
package printy

import (
	"bytes"
	"fmt"
	"log"
	"os"
)

// Bad writes to the process streams five different ways.
func Bad() {
	fmt.Println("progress!")              // want rawprint "fmt.Println writes to the process streams"
	fmt.Printf("events=%d\n", 7)          // want rawprint "fmt.Printf writes to the process streams"
	log.Printf("events=%d", 7)            // want rawprint "log.Printf writes to the process streams"
	log.Fatalln("giving up")              // want rawprint "log.Fatalln writes to the process streams"
	fmt.Fprintf(os.Stderr, "oops %d", 13) // want rawprint "fmt.Fprintf writes to the process streams"
	fmt.Fprintln(os.Stdout, "done")       // want rawprint "fmt.Fprintln writes to the process streams"
}

// Render writes into an in-memory buffer — the legitimate use of the
// same fmt verbs, so no findings.
func Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "events=%d\n", 7)
	return b.String() + fmt.Sprintf("(%d)", 7)
}

// Suppressed documents a deliberate print with a written reason.
func Suppressed() {
	fmt.Println("banner") //shadowlint:ignore rawprint fixture exercises the rawprint suppression form
}
