// Package staleignore exercises dead-suppression detection: a
// directive that no longer suppresses anything is itself an error.
package staleignore

import "time"

// frozen stopped reading the clock, but kept its suppression.
func frozen() int64 {
	v := int64(42)
	//shadowlint:ignore simclock the clock read moved to the caller // want shadowlint "stale suppression"
	return v
}

// now still reads the clock; its suppression is live and stays silent.
func now() int64 {
	return time.Now().Unix() //shadowlint:ignore simclock fixture keeps one live suppression for contrast
}

var (
	_ = frozen
	_ = now
)
