// Package fakewire seeds sliceretain violations for the analyzer
// tests: it plays the role of a wire-format decoder (the package name
// ends in "wire", so the analyzer is in scope).
package fakewire

import "bytes"

// Frame is an exported decoder result: retained views matter here.
type Frame struct {
	Header []byte
	Body   []byte
	Tail   []byte
}

// cursor is an unexported transient reader: exempt by design.
type cursor struct {
	buf []byte
}

// Decode retains two views of data and copies a third; the unexported
// cursor holding the raw buffer is a transient reader and exempt.
func Decode(data []byte) *Frame {
	f := &Frame{
		Header: data[:4], // want sliceretain "composite literal field retains a sub-slice"
	}
	f.Body = data[4:8] // want sliceretain "field assignment retains a sub-slice"
	c := cursor{buf: data}
	f.Tail = bytes.Clone(c.buf[8:])
	return f
}

// DecodeAlias propagates taint through a local alias and shows the
// append-copy idiom staying clean.
func DecodeAlias(data []byte) Frame {
	view := data[2:]
	var f Frame
	f.Header = view[:2] // want sliceretain "field assignment retains a sub-slice"
	f.Body = append([]byte(nil), view...)
	return f
}

// Index retains a view in a caller-visible map.
func Index(data []byte, m map[string][]byte) {
	m["k"] = data[1:] // want sliceretain "index assignment retains a sub-slice"
}

// ZeroCopy declares its aliasing contract with a suppression.
func ZeroCopy(data []byte) Frame {
	return Frame{Header: data} //shadowlint:ignore sliceretain fixture declares an explicit zero-copy contract
}
