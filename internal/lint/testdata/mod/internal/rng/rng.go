// Package rng seeds detrand violations for the analyzer tests.
package rng

import "math/rand"

// Bad draws from the shared global source.
func Bad(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want detrand "rand.Shuffle draws from the global source"
	return rand.Intn(6)                                                   // want detrand "rand.Intn draws from the global source"
}

// Good builds an injected, seeded generator: the constructors are
// allowed and methods on the instance are deterministic per seed.
func Good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Suppressed keeps one documented global draw.
func Suppressed() float64 {
	return rand.Float64() //shadowlint:ignore detrand fixture exercises a suppressed global draw
}
