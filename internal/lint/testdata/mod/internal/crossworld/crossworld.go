// Package crossworld exercises the crossworld analyzer: shared-type
// fields may be written only in //shadowlint:sharedinit constructors,
// and package-level vars must not be written from
// //shadowlint:trialpath-reachable code.
package crossworld

// Blueprint is shared across concurrently instantiated worlds.
//
//shadowlint:shared
type Blueprint struct {
	specs []int
	idx   map[string]int
}

var trialCount int

// NewBlueprint is the construction phase; its writes are legal.
//
//shadowlint:sharedinit
func NewBlueprint() *Blueprint {
	bp := &Blueprint{idx: make(map[string]int)}
	bp.specs = append(bp.specs, 1)
	bp.idx["a"] = 0
	return bp
}

// Instantiate is per-trial code.
//
//shadowlint:trialpath
func Instantiate(bp *Blueprint) int {
	bp.specs[0] = 2 // want crossworld "outside a //shadowlint:sharedinit constructor"
	trialCount++    // want crossworld "package-level var trialCount from per-trial code"
	return helper(bp)
}

// helper is reachable from the trial root, so its global write is a
// cross-world leak too.
func helper(bp *Blueprint) int {
	trialCount = 3 // want crossworld "reachable from //shadowlint:trialpath root Instantiate"
	return bp.specs[0]
}

// setupOnly is not reachable from any trial root, so the global write
// is setup-phase and legal; the shared-field write still is not.
func setupOnly(bp *Blueprint) {
	trialCount = 0
	bp.idx["b"] = 1 //shadowlint:ignore crossworld fixture keeps a justified construction-order exception
}

var (
	_ = NewBlueprint
	_ = Instantiate
	_ = setupOnly
)
