// Package clock seeds simclock violations and suppressions for the
// analyzer tests. The // want markers encode the expected diagnostics.
package clock

import "time"

// NowFunc proves that taking the function as a value is also flagged.
var NowFunc = time.Now // want simclock "time.Now reads the wall clock"

// Bad reads the wall clock three ways.
func Bad() time.Duration {
	t := time.Now()              // want simclock "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want simclock "time.Sleep reads the wall clock"
	return time.Since(t)         // want simclock "time.Since reads the wall clock"
}

// Deterministic uses only pure time constructors: no findings.
func Deterministic() time.Time {
	return time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Hour)
}

// SuppressedTrailing documents a legitimate wall-clock read inline.
func SuppressedTrailing() time.Time {
	return time.Now() //shadowlint:ignore simclock fixture exercises the trailing suppression form
}

// SuppressedAbove uses the preceding-line suppression form.
func SuppressedAbove() time.Time {
	//shadowlint:ignore simclock fixture exercises the preceding-line suppression form
	return time.Now()
}
