// Package badsup seeds malformed suppression directives. None of them
// may be honored, and each is itself reported by the "shadowlint"
// pseudo-analyzer. The repo test hardcodes exact positions for this
// file, so keep the line numbers stable.
package badsup

import "time"

// MissingReason has a directive with no reason: reported, not honored.
func MissingReason() time.Time {
	//shadowlint:ignore simclock
	return time.Now()
}

// UnknownAnalyzer names an analyzer that does not exist.
func UnknownAnalyzer() time.Time {
	//shadowlint:ignore nosuchanalyzer still gives a reason
	return time.Now()
}

// Naked has no analyzer at all.
func Naked() time.Time {
	//shadowlint:ignore
	return time.Now()
}
