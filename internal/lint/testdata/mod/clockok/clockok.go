// Package clockok sits outside internal/: the determinism analyzers do
// not apply, so its wall-clock read and global rand draw are legal.
package clockok

import (
	"math/rand"
	"time"
)

// Stamp runs on the real network and may read the real clock.
func Stamp() time.Time {
	return time.Now()
}

// Roll may use the global source outside the simulation tree.
func Roll() int {
	return rand.Intn(6)
}
