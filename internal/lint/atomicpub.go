package lint

import (
	"go/ast"
	"go/types"
)

// AtomicPub enforces the runstore durable-publish pattern: a file made
// visible via os.Rename must be fsynced before the rename (so the bytes
// are durable before the name flips) and the containing directory must
// be fsynced after it (so the name flip itself is durable). Concretely,
// every function containing an os.Rename must call (*os.File).Sync —
// directly or through a helper that transitively does — both before and
// after the rename in source order.
//
// In a package that publishes via rename, os.WriteFile is forbidden
// outright: it is not atomic and not durable, so a crash mid-write
// leaves a torn file under the final name.
var AtomicPub = &Analyzer{
	Name:    "atomicpub",
	Doc:     "require fsync-bracketed os.Rename publishes; forbid os.WriteFile in renaming packages",
	Applies: inInternal,
	Run:     runAtomicPub,
}

func runAtomicPub(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	pkgRenames := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isOSPkgCall(p, call, "Rename") {
				pkgRenames = true
			}
			return true
		})
	}

	forEachFuncNode(prog, p, func(n *Node, body *ast.BlockStmt) {
		var renames []*ast.CallExpr
		var syncPos []int // offsets of sync-ish calls, in source order
		inspectOwn(body, func(node ast.Node) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			if isOSPkgCall(p, call, "Rename") {
				renames = append(renames, call)
				return
			}
			if callSyncs(prog, p, call) {
				syncPos = append(syncPos, int(call.Pos()))
			}
		})
		for _, call := range renames {
			before, after := false, false
			for _, pos := range syncPos {
				if pos < int(call.Pos()) {
					before = true
				} else {
					after = true
				}
			}
			if !before {
				out = append(out, diag(p, call.Pos(), "atomicpub",
					"os.Rename publish in %s is not preceded by an fsync of the temp file", n.Name()))
			}
			if !after {
				out = append(out, diag(p, call.Pos(), "atomicpub",
					"os.Rename publish in %s is not followed by a directory fsync", n.Name()))
			}
		}
	})

	if pkgRenames {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok && isOSPkgCall(p, call, "WriteFile") {
					out = append(out, diag(p, call.Pos(), "atomicpub",
						"os.WriteFile is not atomic or durable; write a temp file, fsync, then os.Rename like the package's other publishes"))
				}
				return true
			})
		}
	}
	return out
}

// callSyncs reports whether a call flushes file state: a direct
// (*os.File).Sync, or a call into a module function that transitively
// syncs.
func callSyncs(prog *Program, p *Package, call *ast.CallExpr) bool {
	obj := calleeObject(p, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if isOSFileSync(fn) {
		return true
	}
	if n := prog.FuncNode(fn); n != nil {
		return prog.Syncs(n)
	}
	return false
}

// isOSPkgCall matches a call to a package-level function of os.
func isOSPkgCall(p *Package, call *ast.CallExpr, name string) bool {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != name {
		return false
	}
	fn := pkgLevelFunc(p, se, "os")
	return fn != nil && fn.Name() == name
}
