package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricLabel guards telemetry cardinality before the Prometheus
// endpoint faces a fleet: every CounterVec.With label value must come
// from a bounded set. Accepted sources are constants (string literals,
// named consts), identifiers or fields annotated //shadowlint:bounded
// (e.g. a router name drawn from a fixed topology), and calls to
// functions annotated //shadowlint:bounded (classifiers that map
// arbitrary input onto a fixed rule set). Anything else — a formatted
// string, a packet field, an address — is flagged: per-packet label
// values grow the child map without bound.
//
// The telemetry package itself is exempt: its Snapshot/merge plumbing
// re-feeds already-registered labels through With.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "require bounded CounterVec label values (constants or //shadowlint:bounded sources)",
	Applies: func(relPath string) bool {
		return inInternal(relPath) && relPath != "internal/telemetry"
	},
	Run: runMetricLabel,
}

func runMetricLabel(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if !isCounterVecWith(p, call) {
				return true
			}
			arg := unparen(call.Args[0])
			if boundedLabel(prog, p, arg) {
				return true
			}
			out = append(out, diag(p, arg.Pos(), "metriclabel",
				"unbounded metric label: CounterVec.With argument must be a constant or a //shadowlint:bounded source"))
			return true
		})
	}
	return out
}

// isCounterVecWith matches a method call to telemetry's
// (*CounterVec).With.
func isCounterVecWith(p *Package, call *ast.CallExpr) bool {
	se, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "With" {
		return false
	}
	sel, ok := p.Info.Selections[se]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	m := sel.Obj().(*types.Func)
	if m.Pkg() == nil || !strings.HasSuffix(m.Pkg().Path(), "internal/telemetry") {
		return false
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "CounterVec"
}

// boundedLabel reports whether an expression draws from a bounded set:
// a compile-time constant, a //shadowlint:bounded identifier/field/var,
// or a call to a //shadowlint:bounded function.
func boundedLabel(prog *Program, p *Package, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return true // constant-folded
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil && prog.HasDirective(obj, dirBounded) {
			return true
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[x.Sel]; obj != nil && prog.HasDirective(obj, dirBounded) {
			return true
		}
	case *ast.CallExpr:
		if obj := calleeObject(p, x); obj != nil && prog.HasDirective(obj, dirBounded) {
			return true
		}
	}
	return false
}
