package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// want is one expected diagnostic parsed from a fixture marker of the
// form:
//
//	// want <analyzer> "<message substring>"
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
}

var wantRE = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

// parseWants scans every fixture file in dir for want markers.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, want{file: path, line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

func openFixture(t *testing.T) *Loader {
	t.Helper()
	l, err := Open("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestAnalyzersOnFixtures drives every analyzer over the fixture
// packages and requires an exact match between the emitted diagnostics
// and the // want markers: each finding needs a marker on its exact
// file and line, and each marker must be hit. Cases that exercise
// cross-package reachability list every involved package.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name string
		pkgs []string // module-relative fixture packages, analyzed together
	}{
		{name: "internal/clock", pkgs: []string{"internal/clock"}},
		{name: "internal/rng", pkgs: []string{"internal/rng"}},
		{name: "internal/errs", pkgs: []string{"internal/errs"}},
		{name: "internal/fakewire", pkgs: []string{"internal/fakewire"}},
		{name: "internal/printy", pkgs: []string{"internal/printy"}},
		{name: "internal/hotsim", pkgs: []string{"internal/hotsim"}},
		{name: "internal/hotx", pkgs: []string{"internal/hotx", "internal/hotxdep"}},
		{name: "internal/crossworld", pkgs: []string{"internal/crossworld"}},
		{name: "internal/loopfield", pkgs: []string{"internal/loopfield"}},
		{name: "internal/atomicpub", pkgs: []string{"internal/atomicpub"}},
		{name: "internal/metriclabel", pkgs: []string{"internal/metriclabel"}},
		{name: "internal/staleignore", pkgs: []string{"internal/staleignore"}},
		{name: "clockok", pkgs: []string{"clockok"}}, // outside internal/: zero findings expected
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh loader per case keeps the whole-program graph scoped
			// to the case's packages (plus their deps), so reachability
			// roots in one fixture cannot leak into another.
			l := openFixture(t)
			paths := make([]string, len(tc.pkgs))
			for i, pkg := range tc.pkgs {
				paths[i] = "fixture/" + pkg
			}
			diags, err := Run(l, paths, All(), 0)
			if err != nil {
				t.Fatal(err)
			}
			var wants []want
			for _, pkg := range tc.pkgs {
				wants = append(wants, parseWants(t, filepath.Join("testdata/mod", pkg))...)
			}
			matched := make([]bool, len(wants))
		diag:
			for _, d := range diags {
				for i, w := range wants {
					if matched[i] || d.Analyzer != w.analyzer || d.Pos.Line != w.line {
						continue
					}
					if !strings.HasSuffix(d.Pos.Filename, w.file) {
						continue
					}
					if !strings.Contains(d.Message, w.substr) {
						continue
					}
					matched[i] = true
					continue diag
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for i, w := range wants {
				if !matched[i] {
					t.Errorf("missing diagnostic: %s:%d: %s: ...%s...", w.file, w.line, w.analyzer, w.substr)
				}
			}
		})
	}
}

// TestExactPositions pins line AND column for one finding per analyzer,
// so position reporting cannot silently drift.
func TestExactPositions(t *testing.T) {
	l := openFixture(t)
	diags, err := Run(l, []string{
		"fixture/internal/clock",
		"fixture/internal/rng",
		"fixture/internal/errs",
		"fixture/internal/fakewire",
		"fixture/internal/printy",
		"fixture/internal/hotsim",
	}, All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := filepath.Abs("testdata/mod")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, d := range diags {
		rel, err := filepath.Rel(base, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		got[fmt.Sprintf("%s:%d:%d:%s", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer)] = true
	}
	for _, exact := range []string{
		"internal/clock/clock.go:8:15:simclock",           // var NowFunc = time.Now
		"internal/clock/clock.go:12:7:simclock",           // t := time.Now()
		"internal/rng/rng.go:9:9:detrand",                 // return rand.Intn(6)
		"internal/errs/errs.go:19:2:droppederr",           // fail()
		"internal/errs/errs.go:22:5:droppederr",           // v, _ := pair() (blank ident)
		"internal/fakewire/fakewire.go:24:11:sliceretain", // Header: data[:4]
		"internal/printy/printy.go:14:2:rawprint",         // fmt.Println("progress!")
		"internal/printy/printy.go:18:2:rawprint",         // fmt.Fprintf(os.Stderr, ...)
		"internal/hotsim/hotsim.go:24:7:hotalloc",         // Sprintf reachable from forward
		"internal/hotsim/hotsim.go:39:9:hotalloc",         // Sprintf in the direct root
	} {
		if !got[exact] {
			t.Errorf("expected a diagnostic at exactly %s; got:\n%s", exact, keys(got))
		}
	}
}

func keys(m map[string]bool) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString("  " + k + "\n")
	}
	return sb.String()
}

// TestParallelDeterminism requires byte-identical diagnostics at any
// worker count — the property the check.sh -json smoke holds shadowlint
// to, checked here at the library layer.
func TestParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		l := openFixture(t)
		paths, err := l.Expand([]string{"./..."})
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Run(l, paths, All(), workers)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != serial {
			t.Errorf("diagnostics differ between -p 1 and -p %d:\n%s\nvs\n%s", workers, serial, got)
		}
	}
}

// TestMalformedSuppressions checks that broken directives are reported
// by the "shadowlint" pseudo-analyzer and are NOT honored: the
// wall-clock reads they fail to cover still fire.
func TestMalformedSuppressions(t *testing.T) {
	l := openFixture(t)
	diags, err := Run(l, []string{"fixture/internal/badsup"}, All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%d:%s", d.Pos.Line, d.Pos.Column, d.Analyzer))
	}
	wantExact := []string{
		"11:2:shadowlint", // missing reason
		"12:9:simclock",   // ...and the read it failed to cover
		"17:2:shadowlint", // unknown analyzer
		"18:9:simclock",
		"23:2:shadowlint", // naked directive
		"24:9:simclock",
	}
	if strings.Join(got, " ") != strings.Join(wantExact, " ") {
		t.Errorf("badsup diagnostics:\n got %v\nwant %v", got, wantExact)
	}
	for _, d := range diags {
		if d.Analyzer != "shadowlint" {
			continue
		}
		switch d.Pos.Line {
		case 11:
			if !strings.Contains(d.Message, "missing a reason") {
				t.Errorf("line 11: want missing-reason message, got %q", d.Message)
			}
		case 17:
			if !strings.Contains(d.Message, "unknown analyzer") {
				t.Errorf("line 17: want unknown-analyzer message, got %q", d.Message)
			}
		case 23:
			if !strings.Contains(d.Message, "malformed suppression") {
				t.Errorf("line 23: want malformed message, got %q", d.Message)
			}
		}
	}
}

// TestDiagnosticFormat locks the canonical rendering.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{Analyzer: "simclock", Message: "boom"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: simclock: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestExpand checks pattern resolution against the fixture module.
func TestExpand(t *testing.T) {
	l := openFixture(t)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(paths, " ")
	for _, p := range []string{
		"fixture/clockok",
		"fixture/internal/badsup",
		"fixture/internal/clock",
		"fixture/internal/errs",
		"fixture/internal/fakewire",
		"fixture/internal/rng",
		"fixture/internal/crossworld",
		"fixture/internal/loopfield",
		"fixture/internal/atomicpub",
		"fixture/internal/metriclabel",
	} {
		if !strings.Contains(joined, p) {
			t.Errorf("Expand(./...) missing %s (got %v)", p, paths)
		}
	}
	single, err := l.Expand([]string{"./internal/clock"})
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0] != "fixture/internal/clock" {
		t.Errorf("Expand(./internal/clock) = %v", single)
	}
}
