package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrAllowed lists callees whose error results are
// conventionally ignored: Fprintf-style writers where the destination
// is an in-memory buffer or best-effort stderr logging, and the
// never-failing builder/buffer writers.
var droppedErrAllowed = map[string]bool{
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	// Documented to always return len(p), nil.
	"(*math/rand.Rand).Read": true,
}

// droppedErrAllowedPrefixes allowlists whole receivers whose Write*
// methods are documented to always return a nil error.
var droppedErrAllowedPrefixes = []string{
	"(*bytes.Buffer).",
	"(*strings.Builder).",
}

// DroppedErr flags error results in internal/* that are discarded with
// a blank identifier or never assigned at all. Silently swallowed
// decode and I/O errors are how a measurement pipeline drifts without
// anyone noticing; handle the error or suppress the finding with a
// written reason.
var DroppedErr = &Analyzer{
	Name:    "droppederr",
	Doc:     "forbid _ =-discarded or unassigned error returns in internal packages",
	Applies: inInternal,
	Run:     runDroppedErr,
}

func runDroppedErr(_ *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// defer conn.Close() and fire-and-forget goroutine heads
				// are idiomatic; their direct call is exempt, but their
				// bodies (function literals) are still walked.
				var fun ast.Expr
				if d, ok := n.(*ast.DeferStmt); ok {
					fun = d.Call.Fun
				} else {
					fun = n.(*ast.GoStmt).Call.Fun
				}
				if lit, ok := unparen(fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						out = append(out, droppedErrStmt(p, m)...)
						return true
					})
				}
				return false
			default:
				out = append(out, droppedErrStmt(p, n)...)
				return true
			}
		})
	}
	return out
}

// droppedErrStmt checks one statement node for dropped errors.
func droppedErrStmt(p *Package, n ast.Node) []Diagnostic {
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, ok := unparen(n.X).(*ast.CallExpr)
		if !ok {
			return nil
		}
		tv, ok := p.Info.Types[call]
		if !ok || !hasErrorResult(tv.Type) || allowedDrop(p, call) {
			return nil
		}
		return []Diagnostic{diag(p, call.Pos(), "droppederr",
			"error result of %s is not checked", calleeName(p, call))}
	case *ast.AssignStmt:
		return droppedErrAssign(p, n)
	}
	return nil
}

func droppedErrAssign(p *Package, n *ast.AssignStmt) []Diagnostic {
	var out []Diagnostic
	// v, _ := f() — one call, multiple results.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		call, ok := unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := p.Info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) || allowedDrop(p, call) {
			return nil
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				out = append(out, diag(p, lhs.Pos(), "droppederr",
					"error result of %s discarded with _", calleeName(p, call)))
			}
		}
		return out
	}
	// pairwise assignment: _ = err, _ = f().
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := unparen(n.Rhs[i])
		tv, ok := p.Info.Types[rhs]
		if !ok || !isErrorType(tv.Type) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && allowedDrop(p, call) {
			continue
		}
		out = append(out, diag(p, lhs.Pos(), "droppederr", "error value discarded with _"))
	}
	return out
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// hasErrorResult reports whether a call result type contains an error
// in any position.
func hasErrorResult(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callee resolves the called function object, or nil for indirect or
// built-in calls.
func callee(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func calleeName(p *Package, call *ast.CallExpr) string {
	if fn := callee(p, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}

func allowedDrop(p *Package, call *ast.CallExpr) bool {
	fn := callee(p, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if droppedErrAllowed[full] {
		return true
	}
	for _, prefix := range droppedErrAllowedPrefixes {
		if strings.HasPrefix(full, prefix) {
			return true
		}
	}
	return false
}
