package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rawprintFmt are the fmt package-level functions that write straight to
// the process's stdout.
var rawprintFmt = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

// rawprintLog are the log package-level functions that write to the
// shared default logger (stderr). Fatal*/Panic* additionally terminate
// the process — even worse inside a library.
var rawprintLog = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Output": true,
}

// rawprintFprint are the fmt functions whose first argument selects the
// writer; they are forbidden only when that writer is os.Stdout or
// os.Stderr.
var rawprintFprint = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

// RawPrint forbids writing to the process's stdout/stderr from internal
// simulation packages. Libraries must surface state through the
// telemetry registry/tracer (or returned values) instead of printing:
// stray prints interleave with exporter output, can't be asserted on,
// and break the byte-identical -metrics-json contract when they land on
// stdout. cmd/* and examples/* own the process streams and are exempt.
var RawPrint = &Analyzer{
	Name:    "rawprint",
	Doc:     "forbid fmt.Printf/log.Printf-style writes to stdout/stderr in internal packages; record through internal/telemetry instead",
	Applies: inInternal,
	Run:     runRawPrint,
}

func runRawPrint(_ *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	report := func(n ast.Node, pkg, fn string) {
		out = append(out, diag(p, n.Pos(), "rawprint",
			"%s.%s writes to the process streams; surface this through internal/telemetry (or return it) instead", pkg, fn))
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := pkgLevelFunc(p, sel, "fmt"); fn != nil {
				switch {
				case rawprintFmt[fn.Name()]:
					report(sel, "fmt", fn.Name())
				case rawprintFprint[fn.Name()] && len(call.Args) > 0 && isProcessStream(p, call.Args[0]):
					report(sel, "fmt", fn.Name())
				}
			}
			if fn := pkgLevelFunc(p, sel, "log"); fn != nil && rawprintLog[fn.Name()] {
				report(sel, "log", fn.Name())
			}
			return true
		})
	}
	return out
}

// isProcessStream reports whether expr denotes os.Stdout or os.Stderr.
func isProcessStream(p *Package, expr ast.Expr) bool {
	sel, ok := unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return strings.HasPrefix(v.Name(), "Std") && v.Name() != "Stdin"
}
