package lint

import (
	"go/ast"
	"go/types"
)

// CrossWorld polices the state shared across concurrently instantiated
// trial worlds — the PR 5 bug class, where a blueprint field or package
// global mutated by one trial silently changes what a later trial
// observes, breaking the byte-identical-per-seed contract.
//
// Two rules:
//
//  1. A type annotated //shadowlint:shared is immutable after
//     construction: its fields may be written only inside functions
//     annotated //shadowlint:sharedinit. (Method calls on fields — e.g.
//     a sync.Map publish — are not writes; first-writer-wins publish
//     stays legal.)
//  2. Package-level variables must not be written from code reachable
//     (static call graph) from a //shadowlint:trialpath root — the
//     per-trial instantiate-and-run loop must leave globals untouched.
var CrossWorld = &Analyzer{
	Name:    "crossworld",
	Doc:     "forbid writes to cross-world shared state from per-trial code",
	Applies: inInternal,
	Run:     runCrossWorld,
}

func runCrossWorld(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	forEachFuncNode(prog, p, func(n *Node, body *ast.BlockStmt) {
		trialRoot := prog.TrialRoot(n)
		// Writes inside a //shadowlint:sharedinit constructor are the
		// construction phase the shared annotation promises ends.
		enclosingObj := p.Info.Defs[n.Decl.Name]
		initOK := enclosingObj != nil && prog.HasDirective(enclosingObj, dirSharedInit)
		check := func(lhs ast.Expr, what string) {
			if obj, tn := sharedFieldTarget(prog, p, lhs); obj != nil && !initOK {
				out = append(out, diag(p, lhs.Pos(), "crossworld",
					"%s to field %s of cross-world shared type %s outside a //shadowlint:sharedinit constructor",
					what, obj.Name(), tn.Name()))
				return
			}
			if trialRoot == nil {
				return
			}
			if obj := pkgVarTarget(p, lhs); obj != nil {
				out = append(out, rootedDiag(p, lhs.Pos(), "crossworld", trialRoot.Name(),
					"%s to package-level var %s from per-trial code (%s is reachable from //shadowlint:trialpath root %s)",
					what, obj.Name(), n.Name(), trialRoot.Name()))
			}
		}
		inspectOwn(body, func(node ast.Node) {
			switch x := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					check(lhs, "write")
				}
			case *ast.IncDecStmt:
				check(x.X, "write")
			}
		})
	})
	return out
}

// sharedFieldTarget reports whether lhs writes (possibly through index
// or dereference) a field of a //shadowlint:shared named type, returning
// the field object and the type name.
func sharedFieldTarget(prog *Program, p *Package, lhs ast.Expr) (types.Object, *types.TypeName) {
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = unparen(x.X)
			continue
		case *ast.StarExpr:
			e = unparen(x.X)
			continue
		}
		break
	}
	se, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := p.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, nil
	}
	recv := sel.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil, nil
	}
	tn := named.Obj()
	if !prog.HasDirective(tn, dirShared) {
		return nil, nil
	}
	return sel.Obj(), tn
}

// pkgVarTarget reports whether lhs writes (possibly through index) a
// package-level variable declared in the module, returning its object.
func pkgVarTarget(p *Package, lhs ast.Expr) types.Object {
	e := unparen(lhs)
	for {
		if x, ok := e.(*ast.IndexExpr); ok {
			e = unparen(x.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := p.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	return obj
}
