package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files are excluded: the analyzers enforce determinism
// of the shipped simulation code, while tests are free to exercise real
// sockets and wall-clock deadlines.
type Package struct {
	// Path is the full import path ("shadowmeter/internal/netsim").
	Path string
	// RelPath is the module-relative path ("internal/netsim").
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of a single module rooted at
// Dir. Module-local imports are resolved recursively from source; the
// standard library is type-checked from $GOROOT/src via the stdlib
// "source" importer, so the tool needs nothing outside the standard
// library (the module is deliberately dependency-free).
type Loader struct {
	Dir    string // absolute module root (directory containing go.mod)
	Module string // module path declared in go.mod
	Fset   *token.FileSet

	pkgs    map[string]*Package // memoized loads, by import path
	loading map[string]bool     // cycle detection
	std     types.ImporterFrom
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Open prepares a Loader for the module rooted at dir (the directory
// holding go.mod).
func Open(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: open module: %w", err)
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Dir:     abs,
		Module:  string(m[1]),
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// through the Loader, everything else falls through to the stdlib
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the package at importPath (memoized).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.Module), "/")
	dir := filepath.Join(l.Dir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	p := &Package{
		Path: importPath, RelPath: rel, Dir: dir,
		Fset: l.Fset, Files: files, Pkg: pkg, Info: info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Expand resolves package patterns ("./...", "internal/wire", "./cmd/tracer")
// against the module root into a sorted list of import paths. Directories
// named testdata, vendor, or starting with "." or "_" are never descended
// into.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			root := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			paths, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
			continue
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.Module), "/")
		if rel == "" {
			add(l.Module)
		} else {
			add(l.Module + "/" + filepath.ToSlash(rel))
		}
	}
	sort.Strings(out)
	return out, nil
}

// walk returns the import paths of every directory under rel (module-
// relative) that contains at least one non-test Go file.
func (l *Loader) walk(rel string) ([]string, error) {
	root := filepath.Join(l.Dir, filepath.FromSlash(rel))
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				sub, err := filepath.Rel(l.Dir, path)
				if err != nil {
					return err
				}
				if sub == "." {
					out = append(out, l.Module)
				} else {
					out = append(out, l.Module+"/"+filepath.ToSlash(sub))
				}
				break
			}
		}
		return nil
	})
	return out, err
}
