package lint

import (
	"go/ast"
	"go/types"
)

// wallClock lists the package-level time functions that read or depend
// on the machine's real clock. Pure constructors and conversions
// (time.Date, time.Unix, time.Parse, time.Duration arithmetic) stay
// legal: they are deterministic.
var wallClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Simclock forbids wall-clock reads in internal/* simulation packages.
// Experiment-domain labels encode (time, VP, destination, TTL), and
// correlation replays identical worlds — so the simulated clock owned
// by the netsim event loop must be threaded through instead.
var Simclock = &Analyzer{
	Name:    "simclock",
	Doc:     "forbid time.Now/time.Since/time.Sleep (and friends) in internal simulation packages",
	Applies: inInternal,
	Run:     runSimclock,
}

func runSimclock(_ *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn := pkgLevelFunc(p, sel, "time"); fn != nil && wallClock[fn.Name()] {
				out = append(out, diag(p, sel.Pos(), "simclock",
					"time.%s reads the wall clock; thread the simulated clock (netsim virtual time) instead", fn.Name()))
			}
			return true
		})
	}
	return out
}

// pkgLevelFunc resolves sel to a package-level function of pkgPath, or
// nil if it is anything else (method, type, var, other package).
func pkgLevelFunc(p *Package, sel *ast.SelectorExpr, pkgPath string) *types.Func {
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}
