package lint

import (
	"go/ast"
	"go/types"
)

// EventLoop checks the single-goroutine confinement that makes the
// per-world scratch buffers (reply encoders, probe launch slices) safe
// without locks. A struct field annotated
//
//	//shadowlint:eventloop
//
// may be used only in code reachable from a function annotated
// //shadowlint:eventloop (the netsim dispatch root), and never in code
// that is itself launched on a new goroutine. Reachability follows the
// dynamic call graph — interface dispatch (netsim.Handler, netsim.Tap)
// and signature-matched function values (UDP/TCP service closures,
// scheduled func() thunks) — because that is exactly how the event loop
// reaches handler code.
var EventLoop = &Analyzer{
	Name:    "eventloop",
	Doc:     "confine //shadowlint:eventloop fields to code reachable from the event-loop dispatch root",
	Applies: inInternal,
	Run:     runEventLoop,
}

func runEventLoop(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	type useKey struct {
		field types.Object
		line  int
	}
	seen := make(map[useKey]bool)
	forEachFuncNode(prog, p, func(n *Node, body *ast.BlockStmt) {
		inspectOwn(body, func(node ast.Node) {
			se, ok := node.(*ast.SelectorExpr)
			if !ok {
				return
			}
			field, ok := p.Info.Uses[se.Sel].(*types.Var)
			if !ok || !field.IsField() || !prog.HasDirective(field, dirEventloop) {
				return
			}
			if !n.goLaunched && prog.LoopRoot(n) != nil {
				return // confined correctly
			}
			// One statement often touches the field several times
			// (w.enc = append(w.enc, …)); report each line once.
			key := useKey{field: field, line: p.Fset.Position(se.Pos()).Line}
			if seen[key] {
				return
			}
			seen[key] = true
			if n.goLaunched {
				out = append(out, diag(p, se.Pos(), "eventloop",
					"event-loop-confined field %s used in goroutine-launched %s", field.Name(), n.Name()))
				return
			}
			out = append(out, diag(p, se.Pos(), "eventloop",
				"event-loop-confined field %s used in %s, which is not reachable from any //shadowlint:eventloop dispatch root",
				field.Name(), n.Name()))
		})
	})
	return out
}
