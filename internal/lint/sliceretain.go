package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// SliceRetain checks wire decoders: a function taking a []byte input
// must not store sub-slices of that buffer into struct fields, map
// entries, or composite literals without copying. Decoders hand their
// results to long-lived capture logs while callers recycle receive
// buffers — a retained view silently mutates history. Copy with
// bytes.Clone or append([]byte(nil), s...).
var SliceRetain = &Analyzer{
	Name:    "sliceretain",
	Doc:     "forbid wire decoders from retaining sub-slices of their input buffer without copying",
	Applies: isWirePackage,
	Run:     runSliceRetain,
}

// isWirePackage matches the wire-format packages: internal/wire,
// internal/dnswire, internal/httpwire, internal/tlswire (and any future
// internal/*wire sibling).
func isWirePackage(relPath string) bool {
	return inInternal(relPath) && strings.HasSuffix(path.Base(relPath), "wire")
}

func runSliceRetain(_ *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, sliceRetainFunc(p, fd)...)
		}
	}
	return out
}

func sliceRetainFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	// Taint starts at every []byte parameter.
	taint := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && isByteSlice(obj.Type()) {
				taint[obj] = true
			}
		}
	}
	if len(taint) == 0 {
		return nil
	}

	tainted := func(e ast.Expr) bool { return taintedExpr(p, taint, e) }

	// Propagate taint through local aliases (x := raw[a:b]) to a fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || !tainted(as.Rhs[i]) {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !taint[obj] {
					taint[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []Diagnostic
	retained := func(pos ast.Expr, where string) Diagnostic {
		return diag(p, pos.Pos(), "sliceretain",
			"%s retains a sub-slice of the decoder input buffer; copy it first (bytes.Clone or append([]byte(nil), s...))", where)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				switch l := unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if !exportedStructType(p.Info.Types[l.X].Type) {
						continue
					}
					if tainted(n.Rhs[i]) && isByteSlice(p.Info.Types[n.Rhs[i]].Type) {
						out = append(out, retained(n.Rhs[i], "field assignment"))
					}
				case *ast.IndexExpr:
					if tainted(n.Rhs[i]) && isByteSlice(p.Info.Types[n.Rhs[i]].Type) {
						out = append(out, retained(n.Rhs[i], "index assignment"))
					}
				}
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[n]
			if !ok || !exportedStructType(tv.Type) {
				return true
			}
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if tainted(v) && isByteSlice(p.Info.Types[v].Type) {
					out = append(out, retained(v, "composite literal field"))
				}
			}
		}
		return true
	})
	return out
}

// exportedStructType reports whether t (after pointer dereference) is a
// named, exported struct type — the decoder result shapes that escape
// to callers. Unexported cursor structs (internal readers) are
// transient by construction and exempt.
func exportedStructType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !named.Obj().Exported() {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// taintedExpr reports whether e is a view of a tainted buffer. Calls
// other than append act as sanitizers (bytes.Clone, []byte(string(x)),
// helper copies); append propagates taint through its first argument
// (the result may alias its backing array) and through appended
// []byte elements, but an ellipsis spread of bytes copies and is clean.
func taintedExpr(p *Package, taint map[types.Object]bool, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return taint[p.Info.Uses[e]]
	case *ast.SliceExpr:
		return taintedExpr(p, taint, e.X)
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
				if taintedExpr(p, taint, e.Args[0]) {
					return true
				}
				if e.Ellipsis == 0 {
					for _, arg := range e.Args[1:] {
						if taintedExpr(p, taint, arg) && isByteSlice(p.Info.Types[arg].Type) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
