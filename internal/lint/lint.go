// Package lint implements shadowlint, the repo-specific static-analysis
// pass that keeps the simulation deterministic. It is built only on the
// standard library's go/parser, go/ast, go/types, and go/token — the
// module is deliberately dependency-free.
//
// Six analyzers ship today:
//
//   - simclock: no wall-clock calls (time.Now, time.Since, time.Sleep, …)
//     inside internal/* simulation packages; the world clock from
//     internal/core must be threaded instead.
//   - detrand: no global math/rand functions inside internal/*; inject a
//     seeded *rand.Rand so identical seeds replay identical worlds.
//   - droppederr: no error results discarded with `_ =` or left
//     unassigned in internal/*, with an allowlist for fmt.Fprintf-style
//     writers whose errors are conventionally ignored.
//   - sliceretain: wire decoders (internal/wire, internal/dnswire,
//     internal/httpwire, internal/tlswire) must not retain sub-slices of
//     the input buffer in returned structs without copying.
//   - rawprint: no fmt.Print*/log.Print* (or fmt.Fprint* to os.Stdout/
//     os.Stderr) in internal/* — simulation libraries report through
//     internal/telemetry, only cmd/* owns the process streams.
//   - hotalloc: no fmt.Sprintf in functions reachable from a
//     //shadowlint:hotpath root — the per-packet forwarding path must
//     not format strings.
//
// A finding can be suppressed with a trailing or preceding comment:
//
//	//shadowlint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding at a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical
// "path:line:col: analyzer: message" format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters by module-relative package path ("internal/wire").
	// A nil Applies means the analyzer runs on every package.
	Applies func(relPath string) bool
	Run     func(p *Package) []Diagnostic
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{Simclock, Detrand, DroppedErr, SliceRetain, RawPrint, HotAlloc}
}

// inInternal reports whether relPath is under the module's internal/
// tree — the simulation packages the determinism analyzers police.
// cmd/* and examples/* are exempt: they run on the real network.
func inInternal(relPath string) bool {
	return relPath == "internal" || strings.HasPrefix(relPath, "internal/")
}

// Run loads each import path and applies the analyzers, dropping
// findings covered by //shadowlint:ignore directives. Diagnostics come
// back sorted by file, line, column, analyzer.
func Run(l *Loader, importPaths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, path := range importPaths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		sup, malformed := collectSuppressions(p, known)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(p.RelPath) {
				continue
			}
			for _, d := range a.Run(p) {
				if sup.covers(a.Name, d.Pos) {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

const ignorePrefix = "shadowlint:ignore"

// suppressions maps file → line → analyzer names suppressed on that
// line. A directive covers its own line and the following one, so both
// trailing comments and a comment line directly above the offending
// statement work.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line]["all"]
}

func (s suppressions) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = make(map[int]map[string]bool)
	}
	for _, l := range []int{line, line + 1} {
		if s[file][l] == nil {
			s[file][l] = make(map[string]bool)
		}
		s[file][l][analyzer] = true
	}
}

// collectSuppressions scans a package's comments for
// //shadowlint:ignore directives. Malformed directives — no analyzer,
// an unknown analyzer name, or a missing reason — are returned as
// diagnostics of the pseudo-analyzer "shadowlint" so they cannot
// silently disable anything.
func collectSuppressions(p *Package, known map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var malformed []Diagnostic
	bad := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{
			Pos: p.Fset.Position(pos), Analyzer: "shadowlint", Message: msg,
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "malformed suppression: want //shadowlint:ignore <analyzer> <reason>")
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), fmt.Sprintf("suppression for %q is missing a reason", fields[0]))
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ok := true
				for _, name := range strings.Split(fields[0], ",") {
					if name != "all" && !known[name] {
						bad(c.Pos(), fmt.Sprintf("suppression names unknown analyzer %q", name))
						ok = false
					}
				}
				if !ok {
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					sup.add(pos.Filename, pos.Line, name)
				}
			}
		}
	}
	return sup, malformed
}

// diag is a small helper used by the analyzers.
func diag(p *Package, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
