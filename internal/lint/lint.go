// Package lint implements shadowlint, the repo-specific static-analysis
// pass that keeps the simulation deterministic. It is built only on the
// standard library's go/parser, go/ast, go/types, and go/token — the
// module is deliberately dependency-free.
//
// Analysis is whole-program: every requested package is loaded through
// one shared type-checker, a cross-package call graph is built over the
// result (see Program), and the analyzers then run in parallel, one
// worker per package. Diagnostics are reported in a deterministic order
// regardless of worker count.
//
// Ten analyzers ship today:
//
//   - simclock: no wall-clock calls (time.Now, time.Since, time.Sleep, …)
//     inside internal/* simulation packages; the world clock from
//     internal/core must be threaded instead.
//   - detrand: no global math/rand functions inside internal/*; inject a
//     seeded *rand.Rand so identical seeds replay identical worlds.
//   - droppederr: no error results discarded with `_ =` or left
//     unassigned in internal/*, with an allowlist for fmt.Fprintf-style
//     writers whose errors are conventionally ignored.
//   - sliceretain: wire decoders (internal/wire, internal/dnswire,
//     internal/httpwire, internal/tlswire) must not retain sub-slices of
//     the input buffer in returned structs without copying.
//   - rawprint: no fmt.Print*/log.Print* (or fmt.Fprint* to os.Stdout/
//     os.Stderr) in internal/* — simulation libraries report through
//     internal/telemetry, only cmd/* owns the process streams.
//   - hotalloc: no fmt.Sprintf in functions reachable (cross-package)
//     from a //shadowlint:hotpath root — the per-packet forwarding path
//     must not format strings.
//   - crossworld: state shared across concurrently instantiated trial
//     worlds (//shadowlint:shared types, package-level vars) must not be
//     written from //shadowlint:trialpath-reachable code; writes are
//     allowed only in //shadowlint:sharedinit constructors.
//   - eventloop: fields annotated //shadowlint:eventloop may be used
//     only in code reachable from a //shadowlint:eventloop dispatch
//     root, and never from goroutine-launched code.
//   - atomicpub: every os.Rename publish must be bracketed by fsync —
//     file sync before, directory sync after — and durable stores must
//     not use os.WriteFile in a package that also renames.
//   - metriclabel: telemetry CounterVec label values must come from
//     bounded sources (constants or //shadowlint:bounded declarations),
//     never per-packet strings.
//
// A finding can be suppressed with a trailing or preceding comment:
//
//	//shadowlint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported —
// as is a directive that no longer suppresses anything, so stale
// suppressions cannot linger after the code they excused is gone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding at a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Root names the annotated root that makes the finding apply (the
	// //shadowlint:hotpath or //shadowlint:eventloop function the code is
	// reachable from). Empty for analyzers without reachability
	// provenance.
	Root string
}

// String renders the finding in the canonical
// "path:line:col: analyzer: message" format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package, with the
// whole-program facts available for cross-package reasoning.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters by module-relative package path ("internal/wire").
	// A nil Applies means the analyzer runs on every package.
	Applies func(relPath string) bool
	Run     func(prog *Program, p *Package) []Diagnostic
}

// All returns the full analyzer set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Simclock, Detrand, DroppedErr, SliceRetain, RawPrint,
		HotAlloc, CrossWorld, EventLoop, AtomicPub, MetricLabel,
	}
}

// inInternal reports whether relPath is under the module's internal/
// tree — the simulation packages the determinism analyzers police.
// cmd/* and examples/* are exempt: they run on the real network.
func inInternal(relPath string) bool {
	return relPath == "internal" || strings.HasPrefix(relPath, "internal/")
}

// Run loads every import path through the shared loader, builds the
// whole-program call graph once, and applies the analyzers with up to
// workers concurrent per-package passes (workers < 1 means GOMAXPROCS).
// Findings covered by //shadowlint:ignore directives are dropped, and a
// directive that covers nothing becomes a finding itself. Diagnostics
// come back sorted by file, line, column, analyzer, message — the order
// is byte-stable at any worker count.
func Run(l *Loader, importPaths []string, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	// Loading is sequential: the loader memoizes packages, so this phase
	// is the shared type-fact cache every worker reads from.
	targets := make([]*Package, 0, len(importPaths))
	seen := make(map[string]bool, len(importPaths))
	for _, path := range importPaths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		if !seen[p.Path] {
			seen[p.Path] = true
			targets = append(targets, p)
		}
	}
	prog := NewProgram(l)

	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}
	perPkg := make([][]Diagnostic, len(targets))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				perPkg[i] = analyzePackage(prog, targets[i], analyzers, known)
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// analyzePackage runs every applicable analyzer over one package,
// filters the findings through the package's suppression directives,
// and reports malformed, misplaced, and dead directives. Workers only
// read the immutable Program, so this is safe to call concurrently for
// distinct packages.
func analyzePackage(prog *Program, p *Package, analyzers []*Analyzer, known map[string]bool) []Diagnostic {
	sup, malformed := collectSuppressions(p, known)
	diags := append([]Diagnostic(nil), malformed...)
	diags = append(diags, prog.directiveDiags[p.Path]...)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(p.RelPath) {
			continue
		}
		ran[a.Name] = true
		for _, d := range a.Run(prog, p) {
			if sup.covers(a.Name, d.Pos) {
				continue
			}
			diags = append(diags, d)
		}
	}
	diags = append(diags, sup.dead(ran)...)
	return diags
}

const ignorePrefix = "shadowlint:ignore"

// supEntry is one //shadowlint:ignore directive with a hit counter, so
// directives that stop suppressing anything can be reported as stale.
type supEntry struct {
	pos       token.Position
	analyzers []string // analyzer names, possibly including "all"
	hits      int
}

// suppressions indexes a package's directives by the lines they cover.
// A directive covers its own line and the following one, so both
// trailing comments and a comment line directly above the offending
// statement work.
type suppressions struct {
	entries []*supEntry
	byLine  map[string]map[int][]*supEntry
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: make(map[string]map[int][]*supEntry)}
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	covered := false
	for _, e := range s.byLine[pos.Filename][pos.Line] {
		for _, name := range e.analyzers {
			if name == analyzer || name == "all" {
				e.hits++
				covered = true
			}
		}
	}
	return covered
}

func (s *suppressions) add(file string, line int, pos token.Position, analyzers []string) {
	e := &supEntry{pos: pos, analyzers: analyzers}
	s.entries = append(s.entries, e)
	if s.byLine[file] == nil {
		s.byLine[file] = make(map[int][]*supEntry)
	}
	for _, l := range []int{line, line + 1} {
		s.byLine[file][l] = append(s.byLine[file][l], e)
	}
}

// dead reports directives that suppressed nothing this run. Only
// directives naming an analyzer that actually ran on the package (or
// "all") are judged — a subset run must not condemn directives for
// analyzers it skipped.
func (s *suppressions) dead(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range s.entries {
		if e.hits > 0 {
			continue
		}
		judged := false
		for _, name := range e.analyzers {
			if name == "all" || ran[name] {
				judged = true
				break
			}
		}
		if !judged {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Analyzer: "shadowlint",
			Message: fmt.Sprintf("stale suppression: //shadowlint:ignore %s no longer suppresses anything; delete it",
				strings.Join(e.analyzers, ",")),
		})
	}
	return out
}

// collectSuppressions scans a package's comments for
// //shadowlint:ignore directives. Malformed directives — no analyzer,
// an unknown analyzer name, or a missing reason — are returned as
// diagnostics of the pseudo-analyzer "shadowlint" so they cannot
// silently disable anything.
func collectSuppressions(p *Package, known map[string]bool) (*suppressions, []Diagnostic) {
	sup := newSuppressions()
	var malformed []Diagnostic
	bad := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{
			Pos: p.Fset.Position(pos), Analyzer: "shadowlint", Message: msg,
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "malformed suppression: want //shadowlint:ignore <analyzer> <reason>")
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), fmt.Sprintf("suppression for %q is missing a reason", fields[0]))
					continue
				}
				pos := p.Fset.Position(c.Pos())
				names := strings.Split(fields[0], ",")
				ok := true
				for _, name := range names {
					if name != "all" && !known[name] {
						bad(c.Pos(), fmt.Sprintf("suppression names unknown analyzer %q", name))
						ok = false
					}
				}
				if !ok {
					continue
				}
				sup.add(pos.Filename, pos.Line, pos, names)
			}
		}
	}
	return sup, malformed
}

// diag is a small helper used by the analyzers.
func diag(p *Package, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// rootedDiag is diag plus reachability provenance.
func rootedDiag(p *Package, pos token.Pos, analyzer, root, format string, args ...any) Diagnostic {
	d := diag(p, pos, analyzer, format, args...)
	d.Root = root
	return d
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
