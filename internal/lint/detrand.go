package lint

import (
	"go/ast"
)

// detrandAllowed are the math/rand package-level names that do NOT draw
// from the shared global source: constructors used to build injected,
// seeded generators.
var detrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Detrand forbids the global math/rand functions (rand.Intn,
// rand.Float64, rand.Shuffle, …) in internal/* packages. The global
// source is shared mutable state: any stray draw perturbs every
// subsequent one, so identical seeds stop reproducing identical worlds.
// Construct a seeded *rand.Rand and inject it instead.
var Detrand = &Analyzer{
	Name:    "detrand",
	Doc:     "forbid global math/rand functions in internal packages; require an injected seeded *rand.Rand",
	Applies: inInternal,
	Run:     runDetrand,
}

func runDetrand(_ *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, pkgPath := range []string{"math/rand", "math/rand/v2"} {
				if fn := pkgLevelFunc(p, sel, pkgPath); fn != nil && !detrandAllowed[fn.Name()] {
					out = append(out, diag(p, sel.Pos(), "detrand",
						"rand.%s draws from the global source; inject a seeded *rand.Rand so identical seeds replay identical worlds", fn.Name()))
				}
			}
			return true
		})
	}
	return out
}
