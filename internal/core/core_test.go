package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/topology"
)

// tinyConfig keeps unit runs fast while exercising the full pipeline.
func tinyConfig(seed int64) Config {
	return Config{
		Seed:                 seed,
		VPsPerGlobalProvider: 4,
		VPsPerCNProvider:     2,
		WebSites:             60,
		WebASes:              12,
		DNSRounds:            2,
		MaxSweepsPerProtocol: 150,
	}
}

// fullReport runs one shared experiment for the assertion tests below.
var sharedReport = func() func(t *testing.T) *Report {
	var r *Report
	return func(t *testing.T) *Report {
		t.Helper()
		if r == nil {
			r = Run(Config{Seed: 42})
		}
		return r
	}
}()

func TestWorldConstruction(t *testing.T) {
	w := BuildWorld(tinyConfig(7))
	if len(w.DNSDests) != 36 {
		t.Errorf("DNS destinations = %d, want 36 (20 public + control + 13 roots + 2 TLD)", len(w.DNSDests))
	}
	kinds := map[string]int{}
	for _, d := range w.DNSDests {
		kinds[d.Kind]++
	}
	if kinds["public"] != 20 || kinds["root"] != 13 || kinds["tld"] != 2 || kinds["control"] != 1 {
		t.Errorf("destination kinds = %v", kinds)
	}
	if len(w.Honeypots.Sites) != 3 {
		t.Errorf("honeypot sites = %d", len(w.Honeypots.Sites))
	}
	locs := map[string]bool{}
	for _, s := range w.Honeypots.Sites {
		locs[s.Location] = true
	}
	if !locs["US"] || !locs["DE"] || !locs["SG"] {
		t.Errorf("honeypot locations = %v", locs)
	}
	if len(w.Web.Sites) != 60 {
		t.Errorf("web sites = %d", len(w.Web.Sites))
	}
	if len(w.Platform.VPs) == 0 {
		t.Fatal("no VPs after screening")
	}
	for _, vp := range w.Platform.VPs {
		if vp.Provider.ResetsTTL || vp.Provider.Residential {
			t.Fatalf("foil provider survived screening: %s", vp.Provider.Name)
		}
	}
	if len(w.Devices) == 0 {
		t.Error("no on-path devices deployed")
	}
	// The experiment zone must be delegated to the honeypot.
	if _, auth, ok := w.Registry.AuthFor("x.www." + Zone); !ok || auth != w.Honeypots.Sites[0].AuthAddr {
		t.Error("zone delegation missing")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	cfg := tinyConfig(11)
	a := Run(cfg)
	b := Run(cfg)
	if a.CorrelatorStats != b.CorrelatorStats {
		t.Errorf("correlator stats differ:\n%+v\n%+v", a.CorrelatorStats, b.CorrelatorStats)
	}
	if a.NetStats.PacketsSent != b.NetStats.PacketsSent || a.NetStats.Events != b.NetStats.Events {
		t.Errorf("net stats differ: %+v vs %+v", a.NetStats, b.NetStats)
	}
	if a.TotalObserverAddrs() != b.TotalObserverAddrs() {
		t.Errorf("observer counts differ: %d vs %d", a.TotalObserverAddrs(), b.TotalObserverAddrs())
	}
}

func TestResolverHIsMostSusceptible(t *testing.T) {
	r := sharedReport(t)
	// The five Resolver_h destinations must out-rank every other resolver
	// and no root/TLD/control destination may be problematic at all.
	for _, name := range resolverHNames() {
		if r.DestRatios[name] < 0.4 {
			t.Errorf("Resolver_h member %s ratio = %v, want high", name, r.DestRatios[name])
		}
	}
	if r.DestRatios["Yandex"] < r.DestRatios["Google"] {
		t.Errorf("Yandex (%v) should exceed Google (%v)", r.DestRatios["Yandex"], r.DestRatios["Google"])
	}
	for _, dst := range []string{"a.root", "m.root", ".com", ".org", "self-built"} {
		if got := r.DestRatios[dst]; got != 0 {
			t.Errorf("%s ratio = %v, want 0 (authoritative/control destinations never shadow)", dst, got)
		}
	}
}

func TestDNSShadowingAtDestination(t *testing.T) {
	r := sharedReport(t)
	found := false
	for _, row := range r.Table2 {
		if row.Protocol != decoy.DNS {
			continue
		}
		found = true
		if row.Share[9] < 90 {
			t.Errorf("DNS at-destination share = %v%%, want >90%% (paper: 99.7%%)", row.Share[9])
		}
	}
	if !found {
		t.Fatal("no DNS row in Table 2")
	}
}

func TestHTTPShadowingOnTheWire(t *testing.T) {
	r := sharedReport(t)
	for _, row := range r.Table2 {
		switch row.Protocol {
		case decoy.HTTP:
			if row.Share[9] > 20 {
				t.Errorf("HTTP at-destination = %v%%, want small (paper: 2.3%%)", row.Share[9])
			}
			mid := row.Share[2] + row.Share[3] + row.Share[4] + row.Share[5] + row.Share[6]
			if mid < 70 {
				t.Errorf("HTTP mid-path share = %v%%, want dominant (paper: 97.7%%)", mid)
			}
		case decoy.TLS:
			if row.Share[9] < 30 {
				t.Errorf("TLS at-destination = %v%%, want majority-ish (paper: 65%%)", row.Share[9])
			}
		}
	}
}

func TestObserverNetworksMatchPaper(t *testing.T) {
	r := sharedReport(t)
	// CHINANET backbone must dominate the HTTP and TLS observer tables.
	topHTTP, topTLS := "", ""
	for _, row := range r.Table3 {
		if row.Protocol == decoy.HTTP && topHTTP == "" {
			topHTTP = row.AS
		}
		if row.Protocol == decoy.TLS && topTLS == "" {
			topTLS = row.AS
		}
	}
	if topHTTP != "AS4134" {
		t.Errorf("top HTTP observer AS = %s, want AS4134", topHTTP)
	}
	if topTLS != "AS4134" {
		t.Errorf("top TLS observer AS = %s, want AS4134", topTLS)
	}
	// Most observer addresses are in CN (paper: 79%).
	if got := r.CNObserverFraction(); got < 0.5 {
		t.Errorf("CN observer fraction = %v, want majority", got)
	}
	if r.TotalObserverAddrs() == 0 {
		t.Fatal("no observer addresses recovered")
	}
}

func TestTemporalShape(t *testing.T) {
	r := sharedReport(t)
	// Figure 4: sizable sub-minute mass (retries) and a long multi-day
	// tail for Resolver_h.
	if r.Figure4.N() == 0 {
		t.Fatal("empty Figure 4 CDF")
	}
	subMin := r.Figure4.At(60)
	if subMin < 0.05 || subMin > 0.6 {
		t.Errorf("sub-minute fraction = %v, want bimodal low mode", subMin)
	}
	if after1d := 1 - r.Figure4.At(86400); after1d < 0.3 {
		t.Errorf("after-1-day fraction = %v, want heavy tail", after1d)
	}
	// Figure 7: HTTP decoy data retained shorter than DNS decoy data (the
	// observers sit on routing devices with limited storage).
	if r.Figure7HTTP.N() > 0 && r.Figure4.N() > 0 {
		if r.Figure7HTTP.At(86400) < r.Figure4.At(86400) {
			t.Errorf("HTTP <=1d %v should exceed DNS <=1d %v (shorter retention)",
				r.Figure7HTTP.At(86400), r.Figure4.At(86400))
		}
	}
}

func TestYandexCaseStudy(t *testing.T) {
	r := sharedReport(t)
	// ~half of Yandex DNS decoys yield HTTP/HTTPS probes (paper: 51%).
	share := r.HTTPishShare["Yandex"]
	if share < 0.35 || share > 0.7 {
		t.Errorf("Yandex HTTP-ish share = %v, want ~0.5", share)
	}
	// Data retained for days: >=30%% of Yandex events arrive after one day.
	cdf := r.Figure4PerResolver["Yandex"]
	if cdf.N() == 0 {
		t.Fatal("no Yandex temporal data")
	}
	if tail := 1 - cdf.At(86400); tail < 0.3 {
		t.Errorf("Yandex multi-day tail = %v", tail)
	}
}

func Test114DNSAnycastSplit(t *testing.T) {
	// 114DNS shadows only via CN instances: problematic 114 paths must
	// originate from CN VPs.
	r := sharedReport(t)
	if r.DestRatios["114DNS"] == 0 {
		t.Fatal("no 114DNS shadowing recovered")
	}
	e := NewExperiment(tinyConfig(42))
	e.ScreenPairResolvers()
	e.RunPhaseI()
	addr114 := resolversim.PublicResolvers[18].Addr // 114.114.114.114
	if resolversim.PublicResolvers[18].Name != "114DNS" {
		t.Fatal("catalog order changed")
	}
	for _, u := range e.EventsPhaseI {
		if u.Sent.DstName != "114DNS" || u.Sent.Dst.Addr != addr114 {
			continue
		}
		if u.Capture.Protocol == decoy.DNS && u.Delay < time.Minute {
			continue // benign retries occur for all clients
		}
		if country := e.World.Topo.Geo.Country(u.Sent.VP); country != "CN" {
			t.Errorf("non-CN VP (%s) path to 114DNS shadowed: %+v", country, u.Combination)
		}
	}
}

func TestIncentivesAndIntel(t *testing.T) {
	r := sharedReport(t)
	if r.Incentives51.EnumerationFraction < 0.9 {
		t.Errorf("enumeration fraction = %v, want >= 0.9 (paper: 95%%)", r.Incentives51.EnumerationFraction)
	}
	if r.Incentives51.ExploitMatches != 0 || r.Incentives52.ExploitMatches != 0 {
		t.Error("exploit signatures matched; paper found none")
	}
	if r.Incentives51.HTTPBlocklisted < 0.3 {
		t.Errorf("§5.1 HTTP origin blocklist = %v, want sizable (paper: 57%%)", r.Incentives51.HTTPBlocklisted)
	}
	if r.ProbeSummary.Targets > 0 {
		if r.ProbeSummary.NoOpenFraction() < 0.5 {
			t.Errorf("no-open-port fraction = %v, want most closed (paper: 92%%)", r.ProbeSummary.NoOpenFraction())
		}
		if r.ProbeSummary.MostCommonPort() != 179 {
			t.Errorf("most common port = %d, want 179 (BGP)", r.ProbeSummary.MostCommonPort())
		}
	}
}

func TestMultiUseRecovered(t *testing.T) {
	r := sharedReport(t)
	if r.MultiUse.FractionOver3 < 0.2 {
		t.Errorf(">3-events fraction = %v, want sizable (paper: 51%%)", r.MultiUse.FractionOver3)
	}
	if r.MultiUse.FractionOver10 > 0.15 {
		t.Errorf(">10-events fraction = %v, want small tail (paper: 2.4%%)", r.MultiUse.FractionOver10)
	}
}

func TestInterceptionScreening(t *testing.T) {
	cfg := tinyConfig(5)
	// Tap several VP datacenter ASes so at least one hosts VPs at this
	// fleet size.
	cfg.InterceptedVPASes = 8
	e := NewExperiment(cfg)
	e.ScreenPairResolvers()
	if e.PairReport.Removed == 0 {
		t.Error("interception devices installed but no VPs removed")
	}
	if e.PairReport.Removed >= e.PairReport.Tested {
		t.Error("screening removed everything")
	}
	fired := false
	for _, tap := range e.World.Interceptors {
		if tap.Answered() > 0 {
			fired = true
		}
	}
	if !fired {
		t.Error("interceptor ground truth never fired")
	}
}

func TestTop5ObserverCoverage(t *testing.T) {
	r := sharedReport(t)
	if len(r.Behaviours) > 0 && r.Top5Coverage < 0.8 {
		t.Errorf("top-5 AS coverage = %v, want > 0.8 (paper: >80%%)", r.Top5Coverage)
	}
}

func TestReportRenderComplete(t *testing.T) {
	r := sharedReport(t)
	out := r.Render()
	for _, needle := range []string{
		"Table 1", "Figure 3", "Table 2", "Table 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Section 5.1", "Section 5.2",
		"CHINANET-BACKBONE", "Yandex", "114DNS",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q", needle)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestPlatformCapabilitiesShape(t *testing.T) {
	r := sharedReport(t)
	if len(r.Capabilities) != 3 {
		t.Fatalf("capability rows = %d", len(r.Capabilities))
	}
	if r.Capabilities[0].Providers != 6 || r.Capabilities[1].Providers != 13 {
		t.Errorf("provider counts = %d/%d", r.Capabilities[0].Providers, r.Capabilities[1].Providers)
	}
	if len(r.Excluded) != 2 {
		t.Errorf("excluded providers = %v, want the two foils", r.Excluded)
	}
	if r.Capabilities[0].Regions < 10 {
		t.Errorf("global countries = %d", r.Capabilities[0].Regions)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Start.IsZero() || c.DNSRounds == 0 || c.WebSites == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	full := Config{Scale: ScaleFull}.withDefaults()
	if full.WebSites != 2325 || full.VPsPerGlobalProvider != 363 {
		t.Errorf("full-scale geometry wrong: %+v", full)
	}
}

func TestTopologyExposesObserverASes(t *testing.T) {
	w := BuildWorld(tinyConfig(3))
	for _, asn := range []int{4134, topology.ASNHostRoyale, topology.ASNZenlayer, 4808, topology.ASNRogers, topology.ASNConstantContact} {
		if w.Topo.AS(asn) == nil {
			t.Errorf("AS%d missing from world", asn)
		}
	}
}

func TestRobustToPacketLoss(t *testing.T) {
	// With 2% per-hop loss the pipeline must still find the heavy
	// shadowers and keep clean destinations clean.
	cfg := tinyConfig(13)
	cfg.LossRate = 0.02
	r := Run(cfg)
	if r.NetStats.PacketsLost == 0 {
		t.Fatal("loss knob inert")
	}
	if r.DestRatios["Yandex"] < 0.5 {
		t.Errorf("Yandex ratio under loss = %v", r.DestRatios["Yandex"])
	}
	if r.DestRatios["a.root"] != 0 || r.DestRatios["self-built"] != 0 {
		t.Error("clean destinations became problematic under loss")
	}
}

func TestWeeklySeriesCoversCampaign(t *testing.T) {
	r := sharedReport(t)
	if len(r.Weekly) == 0 {
		t.Fatal("no weekly series")
	}
	total := 0
	for _, pt := range r.Weekly {
		total += pt.Count
	}
	if total == 0 {
		t.Error("weekly series empty despite events")
	}
}

func TestReportJSON(t *testing.T) {
	r := sharedReport(t)
	out, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"dest_ratios", "table2_normalized_hops", "table3_observer_ases",
		"figure4_dns_delay_cdf", "multiuse_over3", "decoys_sent", "weekly_unsolicited"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
	ratios, ok := decoded["dest_ratios"].(map[string]interface{})
	if !ok || ratios["Yandex"].(float64) == 0 {
		t.Error("dest_ratios not exported properly")
	}
}
