// Package core orchestrates the full experiment: it builds the simulated
// world (topology, resolver fleet, web fleet, honeypots, exhibitors — see
// DESIGN.md for the substitution rationale), recruits and screens the VP
// platform, runs Phase I (landscape) and Phase II (observer location), and
// compiles the Report that regenerates every table and figure of the paper.
package core

import (
	"time"

	"shadowmeter/internal/netsim"
	"shadowmeter/internal/topology"
)

// Scale selects an experiment geometry.
type Scale int

// Scales.
const (
	// ScaleSmall is the CI-friendly default: ~100 VPs, ~120 web sites.
	ScaleSmall Scale = iota
	// ScaleMedium: ~400 VPs, ~300 sites.
	ScaleMedium
	// ScaleFull reproduces the paper's geometry: 4,364 VPs, 2,325 sites.
	// Expect minutes of wall clock and gigabytes of RAM.
	ScaleFull
)

// Config parameterizes an Experiment.
type Config struct {
	Seed  int64
	Scale Scale

	// Topo, when non-nil, instantiates the world's topology from a shared
	// campaign blueprint instead of cold-building it per trial. The result
	// is byte-identical to a cold topology.Build with the same Seed (the
	// blueprint replays the seed-dependent draws per world); only the
	// construction cost is shared. Excluded from campaign hashes: it is an
	// execution strategy, not configuration.
	Topo *topology.Blueprint `json:"-"`

	// Arena, when non-nil, recycles the previous world's netsim event and
	// flight pools into this one (the campaign runner keeps one per
	// worker). Like Topo it is an execution strategy with no behavioral
	// effect, so it is excluded from campaign hashes.
	Arena *netsim.Arena `json:"-"`

	// Start anchors the virtual clock and the identifier epoch; zero means
	// 2024-03-01 UTC (the paper's campaign start).
	Start time.Time
	// CampaignDuration is the virtual span over which Phase I decoys are
	// scheduled (paper: 2 months). Zero means 14 virtual days at small
	// scale, 60 at full.
	CampaignDuration time.Duration

	// DNSRounds is how many decoys each VP sends per DNS destination over
	// the campaign. Zero means 3.
	DNSRounds int
	// WebRounds is how many HTTP+TLS decoy pairs each VP sends per web
	// destination. Zero means 1.
	WebRounds int

	// MaxSweepsPerProtocol caps Phase II traceroutes per protocol (the
	// paper sweeps every problematic path; capping bounds runtime at small
	// scale). Zero means 600.
	MaxSweepsPerProtocol int
	// TracerouteMaxTTL bounds Phase II probes (paper: 64). Zero means 24,
	// which exceeds every simulated path length; raise it to mirror the
	// paper exactly at the cost of ~2.7x more Phase II traffic.
	TracerouteMaxTTL int

	// InterceptedVPASes installs DNS-interception devices (Appendix E
	// ground truth) on the edge routers of this many VP-hosting ASes, to
	// exercise the pair-resolver screening. Zero installs none.
	InterceptedVPASes int

	// LossRate injects per-hop packet loss (robustness ablation: the
	// pipeline's shapes must survive real-world loss). Zero disables.
	LossRate float64

	// Overrides for platform/web sizing; zero means scale defaults.
	VPsPerGlobalProvider int
	VPsPerCNProvider     int
	WebSites             int
	WebASes              int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	type sizing struct {
		vpsGlobal, vpsCN, sites, ases int
		campaign                      time.Duration
	}
	var s sizing
	switch c.Scale {
	case ScaleFull:
		s = sizing{363, 168, 2325, 234, 60 * 24 * time.Hour}
	case ScaleMedium:
		s = sizing{40, 16, 300, 40, 30 * 24 * time.Hour}
	default:
		s = sizing{8, 4, 120, 20, 14 * 24 * time.Hour}
	}
	if c.CampaignDuration == 0 {
		c.CampaignDuration = s.campaign
	}
	if c.DNSRounds == 0 {
		c.DNSRounds = 3
	}
	if c.WebRounds == 0 {
		c.WebRounds = 1
	}
	if c.MaxSweepsPerProtocol == 0 {
		c.MaxSweepsPerProtocol = 600
	}
	if c.TracerouteMaxTTL == 0 {
		c.TracerouteMaxTTL = 24
	}
	if c.VPsPerGlobalProvider == 0 {
		c.VPsPerGlobalProvider = s.vpsGlobal
	}
	if c.VPsPerCNProvider == 0 {
		c.VPsPerCNProvider = s.vpsCN
	}
	if c.WebSites == 0 {
		c.WebSites = s.sites
	}
	if c.WebASes == 0 {
		c.WebASes = s.ases
	}
	return c
}

// Zone is the experiment domain all decoys embed.
const Zone = "experiment.domain"
