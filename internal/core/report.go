package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"shadowmeter/internal/analysis"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/pairresolver"
	"shadowmeter/internal/probe"
	"shadowmeter/internal/stats"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

// Report is the compiled outcome of a full experiment: one field (or field
// group) per table/figure of the paper.
type Report struct {
	Config Config

	// Table 1 + Appendix C/E screening.
	Capabilities []vantage.Summary
	Excluded     map[string]string
	PairReport   pairresolver.Report

	// Figure 3.
	Figure3    []analysis.Figure3Row
	DestRatios map[string]float64

	// Figures 4 and 7.
	Figure4            *stats.CDF
	Figure4PerResolver map[string]*stats.CDF
	Figure7HTTP        *stats.CDF
	Figure7TLS         *stats.CDF

	// Figure 5.
	Figure5Cells    []analysis.Figure5Cell
	Figure5PerDst   map[string]map[string]int
	DNSDecoysPerDst map[string]int
	// HTTPishShare is, per destination, the fraction of DNS decoys whose
	// data re-appeared over HTTP or HTTPS (distinct decoys).
	HTTPishShare map[string]float64

	// Figure 6.
	Figure6 []analysis.OriginReport

	// Tables 2 and 3.
	Table2            []analysis.Table2Row
	Table3            []analysis.ObserverASRow
	ObserverAddrs     map[decoy.Protocol][]wire.Addr
	ObserverCountries map[string]int

	// Longitudinal activity (weekly buckets over the campaign).
	Weekly []analysis.SeriesPoint

	// Section 5.1 / 5.2.
	MultiUse     analysis.MultiUse
	Incentives51 analysis.Incentives
	Incentives52 analysis.Incentives
	Behaviours   []analysis.ObserverBehaviour
	Top5Coverage float64
	ProbeSummary probe.Summary

	// Bookkeeping.
	SentCounts      map[decoy.Protocol]int64
	CorrelatorStats correlate.Stats
	NetStats        netsim.Stats
}

// TotalObserverAddrs counts distinct on-wire observer addresses across
// protocols.
func (r *Report) TotalObserverAddrs() int {
	seen := make(map[wire.Addr]bool)
	for _, addrs := range r.ObserverAddrs {
		for _, a := range addrs {
			seen[a] = true
		}
	}
	return len(seen)
}

// CNObserverFraction is the share of observer addresses located in CN
// (paper: 448/572 = 79%).
func (r *Report) CNObserverFraction() float64 {
	total := 0
	for _, n := range r.ObserverCountries {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(r.ObserverCountries["CN"]) / float64(total)
}

// Render produces the full plain-text report: every table and figure.
func (r *Report) Render() string {
	var b strings.Builder
	w := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	w("shadowmeter experiment report")
	w("=============================")
	w("")

	// Table 1.
	t1 := stats.NewTable("Table 1: Capabilities of VPN measurement platform",
		"Segment", "#Provider", "IP", "AS", "Country/Province")
	for _, row := range r.Capabilities {
		t1.AddRow(row.Segment, row.Providers, row.IPs, row.ASes, row.Regions)
	}
	w("%s", t1.String())
	if len(r.Excluded) > 0 {
		w("Providers excluded during screening:")
		keys := sortedKeys(r.Excluded)
		for _, k := range keys {
			w("  - %s: %s", k, r.Excluded[k])
		}
	}
	w("Pair-resolver screening (Appendix E): %d VPs tested, %d removed for DNS interception",
		r.PairReport.Tested, r.PairReport.Removed)
	w("")

	// Figure 3.
	w("Figure 3: Ratio of client-server paths subject to traffic shadowing (top countries per protocol)")
	f3 := stats.NewTable("", "Protocol", "VP country", "Problematic", "Total", "Ratio")
	count := map[decoy.Protocol]int{}
	for _, row := range r.Figure3 {
		if count[row.Protocol] >= 8 || row.Total == 0 {
			continue
		}
		count[row.Protocol]++
		f3.AddRow(row.Protocol.String(), row.Country, row.Problematic, row.Total, stats.FormatPercent(row.Ratio))
	}
	w("%s", f3.String())

	w("Per-destination problematic-path ratios (DNS decoys):")
	type dr struct {
		name  string
		ratio float64
	}
	var drs []dr
	for name, ratio := range r.DestRatios {
		drs = append(drs, dr{name, ratio})
	}
	sort.Slice(drs, func(i, j int) bool {
		if drs[i].ratio != drs[j].ratio {
			return drs[i].ratio > drs[j].ratio
		}
		return drs[i].name < drs[j].name
	})
	for _, d := range drs {
		if d.ratio == 0 {
			continue
		}
		w("  %-12s %s", d.name, stats.FormatPercent(d.ratio))
	}
	w("")

	// Table 2.
	w("%s", analysis.RenderTable2(r.Table2))

	// Table 3.
	w("%s", analysis.RenderTable3(r.Table3))
	w("Distinct on-wire observer addresses: %d (CN share %s)",
		r.TotalObserverAddrs(), stats.FormatPercent(r.CNObserverFraction()))
	w("")

	// Figure 4.
	w("Figure 4: CDF of time between unsolicited requests and initial DNS decoy (Resolver_h)")
	w("%s", renderCDF(r.Figure4))
	w("%s", stats.PlotCDF(r.Figure4, 60, 9))
	for _, name := range sortedCDFKeys(r.Figure4PerResolver) {
		cdf := r.Figure4PerResolver[name]
		if cdf.N() == 0 {
			continue
		}
		w("  %-8s n=%-6d <1min=%s  <1h=%s  <1d=%s  <10d=%s", name, cdf.N(),
			stats.FormatPercent(cdf.At(60)), stats.FormatPercent(cdf.At(3600)),
			stats.FormatPercent(cdf.At(86400)), stats.FormatPercent(cdf.At(10*86400)))
	}
	w("")

	// Figure 5.
	w("Figure 5: Breakdown of DNS decoys per destination (combination x delay bucket)")
	f5 := stats.NewTable("", "Destination", "Combination", "Delay", "Events")
	for _, c := range r.Figure5Cells {
		f5.AddRow(c.Destination, c.Combination, c.DelayBucket, c.Count)
	}
	w("%s", f5.String())
	w("Share of DNS decoys triggering HTTP/HTTPS per destination:")
	for _, name := range sortedKeysF(r.HTTPishShare) {
		share := r.HTTPishShare[name]
		if share == 0 {
			continue
		}
		w("  %-12s %s of %d decoys", name, stats.FormatPercent(share), r.DNSDecoysPerDst[name])
	}
	w("")

	// Figure 6.
	w("Figure 6: Origin ASes of unsolicited requests (DNS decoys to Resolver_h)")
	for _, rep := range r.Figure6 {
		w("  %s (distinct origins %d, blocklisted %s):", rep.Destination, rep.DistinctOrigins,
			stats.FormatPercent(rep.BlocklistedFraction))
		for _, e := range rep.TopASes {
			w("    %-10s %5d (%s)", e.Key, e.Count, stats.FormatPercent(e.Fraction))
		}
	}
	w("")

	// Figure 7.
	w("Figure 7: CDF of time between unsolicited requests and HTTP (/TLS) decoy")
	w("HTTP decoys:")
	w("%s", renderCDF(r.Figure7HTTP))
	w("%s", stats.PlotCDF(r.Figure7HTTP, 60, 7))
	w("TLS decoys:")
	w("%s", renderCDF(r.Figure7TLS))
	w("%s", stats.PlotCDF(r.Figure7TLS, 60, 7))

	// Longitudinal activity.
	if len(r.Weekly) > 0 {
		labels := make([]string, len(r.Weekly))
		values := make([]float64, len(r.Weekly))
		for i, pt := range r.Weekly {
			labels[i] = fmt.Sprintf("week %2d", i+1)
			values[i] = float64(pt.Count)
		}
		w("%s", stats.Bars("Unsolicited requests per campaign week:", labels, values, 40))
	}

	// Section 5.1.
	w("Section 5.1 — multi-use of retained data (>=1h after emission):")
	w("  decoys with late events: %d; >3 events: %s; >10 events: %s",
		r.MultiUse.DecoysWithLateEvents,
		stats.FormatPercent(r.MultiUse.FractionOver3),
		stats.FormatPercent(r.MultiUse.FractionOver10))
	w("Section 5.1 — probing incentives (DNS decoys):")
	w("  HTTP requests %d; path enumeration %s; exploit signatures %d; origin blocklist HTTP %s / HTTPS %s",
		r.Incentives51.HTTPRequests, stats.FormatPercent(r.Incentives51.EnumerationFraction),
		r.Incentives51.ExploitMatches,
		stats.FormatPercent(r.Incentives51.HTTPBlocklisted), stats.FormatPercent(r.Incentives51.HTTPSBlocklisted))
	w("")

	// Section 5.2.
	w("Section 5.2 — HTTP/TLS observer behaviour by AS (top 5 cover %s):", stats.FormatPercent(r.Top5Coverage))
	for i, bh := range r.Behaviours {
		if i >= 5 {
			break
		}
		w("  %-10s paths=%d sameAS-origins=%s combos=%v", bh.AS, bh.PathsObserved,
			stats.FormatPercent(bh.SameASOriginFraction), renderCombos(bh.Combinations))
	}
	w("Section 5.2 — probing incentives (HTTP/TLS decoys): enumeration %s; exploits %d; blocklist HTTP %s / HTTPS %s",
		stats.FormatPercent(r.Incentives52.EnumerationFraction), r.Incentives52.ExploitMatches,
		stats.FormatPercent(r.Incentives52.HTTPBlocklisted), stats.FormatPercent(r.Incentives52.HTTPSBlocklisted))
	w("Section 5.2 — observer open ports: %d scanned, %s with no open ports, most common open port %d",
		r.ProbeSummary.Targets, stats.FormatPercent(r.ProbeSummary.NoOpenFraction()), r.ProbeSummary.MostCommonPort())
	w("")

	// Bookkeeping.
	w("Campaign bookkeeping:")
	w("  decoys sent: DNS=%d HTTP=%d TLS=%d", r.SentCounts[decoy.DNS], r.SentCounts[decoy.HTTP], r.SentCounts[decoy.TLS])
	w("  honeypot captures=%d solicited=%d unsolicited=%d unknown-label=%d",
		r.CorrelatorStats.Captures, r.CorrelatorStats.Solicited, r.CorrelatorStats.Unsolicited, r.CorrelatorStats.UnknownLabel)
	w("  simulator: %d packets sent, %d delivered, %d ICMP, %d events",
		r.NetStats.PacketsSent, r.NetStats.PacketsDelivered, r.NetStats.ICMPSent, r.NetStats.Events)
	return b.String()
}

// renderCDF prints a compact CDF line with the marks the paper discusses.
func renderCDF(c *stats.CDF) string {
	if c == nil || c.N() == 0 {
		return "  (no samples)"
	}
	marks := []struct {
		label string
		at    time.Duration
	}{
		{"1min", time.Minute}, {"1h", time.Hour}, {"1d", 24 * time.Hour},
		{"3d", 3 * 24 * time.Hour}, {"10d", 10 * 24 * time.Hour},
	}
	var parts []string
	for _, m := range marks {
		parts = append(parts, fmt.Sprintf("<=%s:%s", m.label, stats.FormatPercent(c.At(m.at.Seconds()))))
	}
	return fmt.Sprintf("  n=%d  %s", c.N(), strings.Join(parts, "  "))
}

func renderCombos(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysF(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedCDFKeys(m map[string]*stats.CDF) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
