package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"
)

// runExport executes the full pipeline and returns the telemetry export.
func runExport(cfg Config) []byte {
	e := NewExperiment(cfg)
	e.ScreenPairResolvers()
	e.RunPhaseI()
	e.RunPhaseII()
	e.Compile()
	return e.Telemetry().ExportJSON()
}

func TestTelemetryExportDeterministic(t *testing.T) {
	a := runExport(tinyConfig(11))
	b := runExport(tinyConfig(11))
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed telemetry exports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// exportKeys parses an export and returns its sorted top-level metric
// names plus span names — the schema, independent of counted values.
func exportKeys(t *testing.T, raw []byte) []string {
	t.Helper()
	var doc struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
		Spans   map[string]json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, raw)
	}
	var keys []string
	for k := range doc.Metrics {
		keys = append(keys, "metric:"+k)
	}
	for k := range doc.Spans {
		keys = append(keys, "span:"+k)
	}
	sort.Strings(keys)
	return keys
}

func TestTelemetryExportSchemaStableAcrossSeeds(t *testing.T) {
	a := exportKeys(t, runExport(tinyConfig(11)))
	b := exportKeys(t, runExport(tinyConfig(12)))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("different seeds produced different schemas:\nseed 11: %v\nseed 12: %v", a, b)
	}
	// The schema must cover every instrumented subsystem.
	want := map[string]bool{
		"metric:netsim_events_dispatched_total": false,
		"metric:netsim_tap_observes_total":      false,
		"metric:honeypot_captures_total":        false,
		"metric:traceroute_probes_sent_total":   false,
		"metric:correlate_unsolicited_total":    false,
		"metric:correlate_delay_seconds":        false,
		"metric:core_decoys_sent_total":         false,
		"span:phase:screen":                     false,
		"span:phase:phase1":                     false,
		"span:phase:phase2":                     false,
		"span:phase:compile":                    false,
	}
	for _, k := range a {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("export schema missing %s (keys: %v)", k, a)
		}
	}
}

func TestPhaseSpansCarryVirtualTime(t *testing.T) {
	e := NewExperiment(tinyConfig(11))
	e.ScreenPairResolvers()
	e.RunPhaseI()
	var phase1 bool
	for _, sp := range e.Telemetry().Tracer.Summary() {
		if sp.Name == "phase:phase1" {
			phase1 = true
			// Phase I spans the virtual campaign (days), not wall time
			// (milliseconds at this geometry): total must be virtual.
			if sp.Total < 24*time.Hour {
				t.Errorf("phase1 span total = %v, want ≥ 24h of virtual time", sp.Total)
			}
		}
	}
	if !phase1 {
		t.Fatal("no phase:phase1 span recorded")
	}
}
