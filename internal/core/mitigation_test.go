package core

import (
	"strings"
	"testing"
)

func TestMitigationStudy(t *testing.T) {
	results := MitigationStudy(21)
	if len(results) != 4 {
		t.Fatalf("modes = %d", len(results))
	}
	byMode := map[MitigationMode]MitigationResult{}
	for _, r := range results {
		byMode[r.Mode] = r
	}
	base := byMode[MitigationNone]
	ech := byMode[MitigationECH]
	doh := byMode[MitigationDoH]
	odoh := byMode[MitigationODoH]

	if base.OnWireObservations == 0 {
		t.Fatal("baseline produced no on-wire observations — study has no signal")
	}
	// ECH: the wire goes dark for TLS. The only on-wire observations left
	// come from nothing — ECH hellos carry no SNI, and no other decoys run.
	if ech.OnWireObservations != 0 {
		t.Errorf("ECH on-wire observations = %d, want 0", ech.OnWireObservations)
	}
	// ...but destination-side shadowing persists: problematic paths remain.
	if ech.ProblematicPaths == 0 {
		t.Error("ECH removed destination-side shadowing too — wrong model")
	}
	// DoH: the wire sees no QNAMEs either...
	if doh.OnWireObservations != 0 {
		t.Errorf("DoH on-wire observations = %d, want 0", doh.OnWireObservations)
	}
	// ...while the resolvers keep shadowing at scale (the dominant mode).
	if doh.ProblematicPaths == 0 || doh.UnsolicitedEvents == 0 {
		t.Errorf("DoH eliminated resolver-side shadowing: %+v", doh)
	}
	// ODoH: names still leak to the resolvers (events persist)...
	if odoh.UnsolicitedEvents == 0 {
		t.Error("ODoH eliminated shadowing entirely — wrong model")
	}
	if odoh.OnWireObservations != 0 {
		t.Errorf("ODoH on-wire observations = %d, want 0", odoh.OnWireObservations)
	}
	// ...but the resolvers' origin visibility collapses to the single relay
	// (the paper's "split visibility" recommendation).
	if base.DistinctClientsSeen < 20 {
		t.Errorf("baseline distinct clients = %d, want many", base.DistinctClientsSeen)
	}
	if odoh.DistinctClientsSeen > 5 {
		t.Errorf("ODoH distinct clients = %d, want ~1 per Resolver_h member", odoh.DistinctClientsSeen)
	}

	// Encryption must not *increase* shadowing.
	if ech.UnsolicitedEvents > base.UnsolicitedEvents || doh.UnsolicitedEvents > base.UnsolicitedEvents {
		t.Errorf("mitigated runs exceed baseline: base=%d ech=%d doh=%d",
			base.UnsolicitedEvents, ech.UnsolicitedEvents, doh.UnsolicitedEvents)
	}
	out := RenderMitigationStudy(results)
	if !strings.Contains(out, "TLS+ECH") || !strings.Contains(out, "DNS-over-HTTPS") {
		t.Errorf("render incomplete: %q", out)
	}
}
