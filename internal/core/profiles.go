package core

import (
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/observer"
	"shadowmeter/internal/wire"
)

// Ground-truth exhibitor calibration.
//
// Every constant below is justified by a measured datum in the paper; the
// measurement pipeline never reads these values — tests and EXPERIMENTS.md
// verify it re-derives them from honeypot and traceroute evidence alone.

// Path fractions: the share of client paths each destination-side
// shadower retains data for (drives Figure 3's per-destination ratios;
// the paper reports >70% for the top three).
const (
	yandexPathFraction  = 0.99 // ">99% of DNS decoys sent to Yandex are subject" (Fig. 5)
	dns114CNFraction    = 0.85 // "85% of CN VPs to 114DNS" (§1)
	oneDNSPathFraction  = 0.78 // ">70%" (§4)
	dnspaiPathFraction  = 0.62
	vercaraPathFraction = 0.55
)

func d(v time.Duration) time.Duration { return v }

// mix builds a weighted delay mixture.
func mix(ranges ...observer.DelayRange) observer.DelayDist {
	return observer.DelayDist{Ranges: ranges}
}

// yandexProfile: data retained for days, re-used heavily, 51% of decoys
// yield HTTP/HTTPS probes with clear enumeration incentives (§5.1 case I).
func yandexProfile() observer.Profile {
	return observer.Profile{
		Name:          "yandex-dst",
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 0.95, Count: observer.CountDist{Min: 2, Max: 4},
				Delay: mix(
					observer.DelayRange{Min: d(2 * time.Minute), Max: d(24 * time.Hour), Weight: 45},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(12 * 24 * time.Hour), Weight: 55},
				)},
			// Occasional heavy re-use: the ">10 unsolicited requests" tail
			// of §5.1 (2.4% of decoys).
			{Kind: observer.ProbeDNS, Prob: 0.02, Count: observer.CountDist{Min: 9, Max: 12},
				Delay: mix(observer.DelayRange{Min: d(2 * time.Hour), Max: d(10 * 24 * time.Hour), Weight: 1})},
			{Kind: observer.ProbeHTTP, Prob: 0.35, Count: observer.CountDist{Min: 1, Max: 3},
				Delay: mix(observer.DelayRange{Min: d(6 * time.Hour), Max: d(12 * 24 * time.Hour), Weight: 1})},
			{Kind: observer.ProbeHTTPS, Prob: 0.22, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(6 * time.Hour), Max: d(12 * 24 * time.Hour), Weight: 1})},
		},
	}
}

// dns114Profile: the CN anycast instances of 114DNS perform security
// analysis over passive DNS (§5.1 case II): ~50% of decoys yield HTTP(S).
func dns114Profile() observer.Profile {
	return observer.Profile{
		Name:          "114dns-cn-dst",
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 0.90, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(
					observer.DelayRange{Min: d(90 * time.Second), Max: d(time.Hour), Weight: 30},
					observer.DelayRange{Min: d(time.Hour), Max: d(24 * time.Hour), Weight: 40},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(10 * 24 * time.Hour), Weight: 30},
				)},
			{Kind: observer.ProbeHTTP, Prob: 0.85, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(3 * time.Hour), Max: d(8 * 24 * time.Hour), Weight: 1})},
			{Kind: observer.ProbeHTTPS, Prob: 0.50, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(3 * time.Hour), Max: d(8 * 24 * time.Hour), Weight: 1})},
		},
	}
}

// resolverHDNSProfile: OneDNS/DNSPAI re-query names in one day or after
// days — "similar temporal features... possibility of the same exhibitors
// behind" (§5.1).
func resolverHDNSProfile(name string) observer.Profile {
	return observer.Profile{
		Name:          name,
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 3},
				Delay: mix(
					observer.DelayRange{Min: d(time.Hour), Max: d(24 * time.Hour), Weight: 40},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(10 * 24 * time.Hour), Weight: 60},
				)},
			{Kind: observer.ProbeHTTP, Prob: 0.08, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(6 * time.Hour), Max: d(6 * 24 * time.Hour), Weight: 1})},
		},
	}
}

// vercaraProfile: delayed DNS re-queries only.
func vercaraProfile() observer.Profile {
	return observer.Profile{
		Name:          "vercara-dst",
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(
					observer.DelayRange{Min: d(10 * time.Minute), Max: d(24 * time.Hour), Weight: 60},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(5 * 24 * time.Hour), Weight: 40},
				)},
		},
	}
}

// minorResolverProfile: the >1min tail (~5%) seen at resolvers outside
// Resolver_h.
func minorResolverProfile(name string) observer.Profile {
	return observer.Profile{
		Name:          name,
		OncePerDomain: true,
		SampleRate:    0.03,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 1},
				Delay: mix(observer.DelayRange{Min: d(time.Hour), Max: d(2 * 24 * time.Hour), Weight: 1})},
		},
	}
}

// backboneDeviceProfile: the CHINANET on-wire HTTP/TLS observers (§5.2):
// 66% of observed HTTP decoys yield HTTP probes, 17% HTTPS; retention is
// shorter than at destinations (Figure 7) — limited storage on routing
// devices.
func backboneDeviceProfile(name string, watch decoy.Protocol, pathFraction float64, salt uint32) observer.Profile {
	return observer.Profile{
		Name:          name,
		Watch:         map[decoy.Protocol]bool{watch: true},
		PathFraction:  pathFraction,
		PathSalt:      salt,
		OncePerDomain: true, // DPI boxes act on newly-observed domains (§5.2 ISP feedback)
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeHTTP, Prob: 0.66, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(
					observer.DelayRange{Min: d(2 * time.Minute), Max: d(time.Hour), Weight: 50},
					observer.DelayRange{Min: d(time.Hour), Max: d(24 * time.Hour), Weight: 40},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(3 * 24 * time.Hour), Weight: 10},
				)},
			{Kind: observer.ProbeHTTPS, Prob: 0.17, Count: observer.CountDist{Min: 1, Max: 1},
				Delay: mix(observer.DelayRange{Min: d(10 * time.Minute), Max: d(24 * time.Hour), Weight: 1})},
			// Every recorded domain is looked up at least once; this is what
			// makes an observed path detectable in the first place, and it
			// pins Phase II's minimum leaking TTL to the device's own hop.
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(time.Minute), Max: d(6 * time.Hour), Weight: 1})},
		},
	}
}

// borderDeviceProfile: the AS40444/AS29988 devices — every observed HTTP
// decoy yields unsolicited DNS only, from the device's own network (§5.2).
func borderDeviceProfile(name string, pathFraction float64, salt uint32) observer.Profile {
	return observer.Profile{
		Name:          name,
		Watch:         map[decoy.Protocol]bool{decoy.HTTP: true},
		PathFraction:  pathFraction,
		PathSalt:      salt,
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(time.Minute), Max: d(6 * time.Hour), Weight: 1})},
		},
	}
}

// dnsWireDeviceProfile: the rare on-path DNS observers (Table 3's DNS
// section: HostRoyale, China Unicom Beijing, Zenlayer). Tiny path
// coverage keeps Table 2's DNS row at 99.7% destination.
func dnsWireDeviceProfile(name string, salt uint32, resolverDsts map[wire.Addr]bool) observer.Profile {
	return observer.Profile{
		Name:          name,
		Watch:         map[decoy.Protocol]bool{decoy.DNS: true},
		PathFraction:  0.04,
		PathSalt:      salt,
		OncePerDomain: true,
		// These trackers monitor resolver-bound queries only; decoys to
		// roots, TLDs and unknown servers pass unobserved — which is why
		// the paper finds authoritative destinations entirely clean.
		DstFilter: resolverDsts,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 1},
				Delay: mix(observer.DelayRange{Min: d(10 * time.Minute), Max: d(24 * time.Hour), Weight: 1})},
		},
	}
}

// sniDestProfile: destination web servers retaining SNI (the majority TLS
// observer mode in Table 2) — longer retention, DNS lookups plus some HTTP.
func sniDestProfile(name string) observer.Profile {
	return observer.Profile{
		Name:          name,
		OncePerDomain: true,
		Rules: []observer.ProbeRule{
			{Kind: observer.ProbeDNS, Prob: 1, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(
					observer.DelayRange{Min: d(time.Hour), Max: d(24 * time.Hour), Weight: 50},
					observer.DelayRange{Min: d(24 * time.Hour), Max: d(5 * 24 * time.Hour), Weight: 50},
				)},
			{Kind: observer.ProbeHTTP, Prob: 0.30, Count: observer.CountDist{Min: 1, Max: 2},
				Delay: mix(observer.DelayRange{Min: d(2 * time.Hour), Max: d(4 * 24 * time.Hour), Weight: 1})},
		},
	}
}
