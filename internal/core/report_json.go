package core

import (
	"encoding/json"
	"time"

	"shadowmeter/internal/decoy"
)

// JSONSummary is the machine-readable form of a Report: the headline
// quantities of every table and figure, suitable for regression tracking
// and external plotting. Render() remains the human-facing artifact.
type JSONSummary struct {
	Seed  int64  `json:"seed"`
	Scale string `json:"scale"`

	Platform struct {
		GlobalProviders     int `json:"global_providers"`
		CNProviders         int `json:"cn_providers"`
		GlobalIPs           int `json:"global_ips"`
		CNIPs               int `json:"cn_ips"`
		ExcludedByScreening int `json:"excluded_by_screening"`
		RemovedByPairTest   int `json:"removed_by_pair_test"`
	} `json:"platform"`

	DestRatios   map[string]float64 `json:"dest_ratios"`
	HTTPishShare map[string]float64 `json:"httpish_share"`

	Table2 map[string][10]float64 `json:"table2_normalized_hops"`
	Table3 []JSONObserverAS       `json:"table3_observer_ases"`

	ObserverAddrs      int     `json:"observer_addrs"`
	CNObserverFraction float64 `json:"cn_observer_fraction"`

	Figure4 JSONCDF `json:"figure4_dns_delay_cdf"`
	Figure7 struct {
		HTTP JSONCDF `json:"http"`
		TLS  JSONCDF `json:"tls"`
	} `json:"figure7_delay_cdfs"`

	MultiUseOver3  float64 `json:"multiuse_over3"`
	MultiUseOver10 float64 `json:"multiuse_over10"`

	Incentives51 JSONIncentives `json:"incentives_51"`
	Incentives52 JSONIncentives `json:"incentives_52"`

	NoOpenPortFraction float64 `json:"no_open_port_fraction"`
	MostCommonPort     uint16  `json:"most_common_port"`
	Top5Coverage       float64 `json:"top5_coverage"`

	Weekly []int `json:"weekly_unsolicited"`

	DecoysSent map[string]int64 `json:"decoys_sent"`
	Captures   int64            `json:"captures"`
}

// JSONObserverAS is one Table 3 row in JSON form.
type JSONObserverAS struct {
	Protocol string  `json:"protocol"`
	AS       string  `json:"as"`
	Name     string  `json:"name"`
	Count    int     `json:"count"`
	Fraction float64 `json:"fraction"`
}

// JSONCDF carries the standard delay marks of a CDF.
type JSONCDF struct {
	N      int     `json:"n"`
	Sub1m  float64 `json:"le_1min"`
	Sub1h  float64 `json:"le_1h"`
	Sub1d  float64 `json:"le_1d"`
	Sub10d float64 `json:"le_10d"`
}

// JSONIncentives carries a probing-incentive block.
type JSONIncentives struct {
	HTTPRequests    int     `json:"http_requests"`
	Enumeration     float64 `json:"enumeration_fraction"`
	ExploitMatches  int     `json:"exploit_matches"`
	HTTPBlocklisted float64 `json:"http_blocklisted"`
	TLSBlocklisted  float64 `json:"https_blocklisted"`
}

func scaleName(s Scale) string {
	switch s {
	case ScaleFull:
		return "full"
	case ScaleMedium:
		return "medium"
	default:
		return "small"
	}
}

// JSON marshals the report summary (indented).
func (r *Report) JSON() ([]byte, error) {
	var j JSONSummary
	j.Seed = r.Config.Seed
	j.Scale = scaleName(r.Config.Scale)
	if len(r.Capabilities) == 3 {
		j.Platform.GlobalProviders = r.Capabilities[0].Providers
		j.Platform.CNProviders = r.Capabilities[1].Providers
		j.Platform.GlobalIPs = r.Capabilities[0].IPs
		j.Platform.CNIPs = r.Capabilities[1].IPs
	}
	j.Platform.ExcludedByScreening = len(r.Excluded)
	j.Platform.RemovedByPairTest = r.PairReport.Removed
	j.DestRatios = r.DestRatios
	j.HTTPishShare = r.HTTPishShare

	j.Table2 = make(map[string][10]float64)
	for _, row := range r.Table2 {
		j.Table2[row.Protocol.String()] = row.Share
	}
	for _, row := range r.Table3 {
		j.Table3 = append(j.Table3, JSONObserverAS{
			Protocol: row.Protocol.String(), AS: row.AS, Name: row.ASName,
			Count: row.Count, Fraction: row.Fraction,
		})
	}
	j.ObserverAddrs = r.TotalObserverAddrs()
	j.CNObserverFraction = r.CNObserverFraction()

	cdfJSON := func(c interface {
		N() int
		At(float64) float64
	}) JSONCDF {
		if c == nil || c.N() == 0 {
			return JSONCDF{}
		}
		day := (24 * time.Hour).Seconds()
		return JSONCDF{
			N: c.N(), Sub1m: c.At(60), Sub1h: c.At(3600),
			Sub1d: c.At(day), Sub10d: c.At(10 * day),
		}
	}
	j.Figure4 = cdfJSON(r.Figure4)
	j.Figure7.HTTP = cdfJSON(r.Figure7HTTP)
	j.Figure7.TLS = cdfJSON(r.Figure7TLS)

	j.MultiUseOver3 = r.MultiUse.FractionOver3
	j.MultiUseOver10 = r.MultiUse.FractionOver10
	j.Incentives51 = JSONIncentives{
		HTTPRequests: r.Incentives51.HTTPRequests, Enumeration: r.Incentives51.EnumerationFraction,
		ExploitMatches:  r.Incentives51.ExploitMatches,
		HTTPBlocklisted: r.Incentives51.HTTPBlocklisted, TLSBlocklisted: r.Incentives51.HTTPSBlocklisted,
	}
	j.Incentives52 = JSONIncentives{
		HTTPRequests: r.Incentives52.HTTPRequests, Enumeration: r.Incentives52.EnumerationFraction,
		ExploitMatches:  r.Incentives52.ExploitMatches,
		HTTPBlocklisted: r.Incentives52.HTTPBlocklisted, TLSBlocklisted: r.Incentives52.HTTPSBlocklisted,
	}
	j.NoOpenPortFraction = r.ProbeSummary.NoOpenFraction()
	j.MostCommonPort = r.ProbeSummary.MostCommonPort()
	j.Top5Coverage = r.Top5Coverage
	for _, pt := range r.Weekly {
		j.Weekly = append(j.Weekly, pt.Count)
	}
	j.DecoysSent = map[string]int64{
		"dns":  r.SentCounts[decoy.DNS],
		"http": r.SentCounts[decoy.HTTP],
		"tls":  r.SentCounts[decoy.TLS],
	}
	j.Captures = r.CorrelatorStats.Captures
	return json.MarshalIndent(&j, "", "  ")
}
