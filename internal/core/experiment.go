package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"shadowmeter/internal/analysis"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/pairresolver"
	"shadowmeter/internal/probe"
	"shadowmeter/internal/stats"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/traceroute"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

// Experiment drives the two measurement phases over a built World and
// compiles the Report.
type Experiment struct {
	World      *World
	Correlator *correlate.Correlator
	Universe   *analysis.PathUniverse

	// dstTotals counts probed paths per destination name (DNS decoys).
	dstTotals map[string]int
	// dnsDecoysPerDst counts emitted DNS decoys per destination.
	dnsDecoysPerDst map[string]int

	engine        *traceroute.Engine
	sweeps        []*traceroute.Sweep
	SweepResults  []traceroute.Result
	resultsByPath map[correlate.PathKey]traceroute.Result

	EventsPhaseI  []correlate.Unsolicited
	EventsPhaseII []correlate.Unsolicited

	PairReport pairresolver.Report

	processedCaptures int
	sentCounts        map[decoy.Protocol]int64
	vpByAddr          map[wire.Addr]*vantage.VP
	decoysSent        map[decoy.Protocol]*telemetry.Counter
}

// NewExperiment prepares an experiment over a freshly built world.
func NewExperiment(cfg Config) *Experiment {
	w := BuildWorld(cfg)
	e := &Experiment{
		World:           w,
		Correlator:      correlate.New(w.Codec),
		Universe:        analysis.NewPathUniverse(),
		dstTotals:       make(map[string]int),
		dnsDecoysPerDst: make(map[string]int),
		engine:          traceroute.NewEngine(w.Gen),
		resultsByPath:   make(map[correlate.PathKey]traceroute.Result),
		sentCounts:      make(map[decoy.Protocol]int64),
		vpByAddr:        make(map[wire.Addr]*vantage.VP),
	}
	e.engine.MaxTTL = w.Cfg.TracerouteMaxTTL
	e.engine.Telemetry = w.Telemetry
	e.Correlator.Bind(w.Telemetry)
	sentVec := w.Telemetry.Registry.CounterVec("core_decoys_sent_total", "decoys recorded in the send log, by protocol", "protocol")
	e.decoysSent = map[decoy.Protocol]*telemetry.Counter{
		decoy.DNS:  sentVec.With("dns"),
		decoy.HTTP: sentVec.With("http"),
		decoy.TLS:  sentVec.With("tls"),
	}
	for _, vp := range w.Platform.VPs {
		e.vpByAddr[vp.Addr] = vp
	}
	return e
}

// Telemetry exposes the experiment's shared metrics/tracing set.
func (e *Experiment) Telemetry() *telemetry.Set { return e.World.Telemetry }

// phase brackets one pipeline stage: it labels the goroutine for CPU
// profiles (`go tool pprof` groups samples by phase), opens a tracer
// span stamped with virtual time, and tags progress updates.
func (e *Experiment) phase(name string, fn func()) {
	tele := e.World.Telemetry
	tele.Progress.SetPhase(name)
	span := tele.Tracer.Start("phase:" + name)
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) {
		fn()
	})
	span.End()
	tele.Progress.SetPhase("")
}

// ScreenPairResolvers runs the Appendix E pair-resolver screening,
// removing interception-affected VPs before any decoys are sent.
func (e *Experiment) ScreenPairResolvers() {
	e.phase("screen", func() {
		e.PairReport = pairresolver.Screen(e.World.Net, e.World.Platform, e.World.ResolverAddrs, 0)
		// Refresh the VP index after removals.
		e.vpByAddr = make(map[wire.Addr]*vantage.VP)
		for _, vp := range e.World.Platform.VPs {
			e.vpByAddr[vp.Addr] = vp
		}
	})
}

// vpCountry resolves a VP's country for Figure 3 grouping.
func (e *Experiment) vpCountry(vp *vantage.VP) string {
	if vp.Country != "" {
		return vp.Country
	}
	return e.World.Topo.Geo.Country(vp.Addr)
}

// RunPhaseI schedules and executes the landscape campaign: DNS decoys from
// every VP to all 36 DNS destinations, HTTP and TLS decoys to every web
// front-end, spread over the campaign duration under the 2-per-second
// per-target rate limit. It then drains the network (retention delays run
// for virtual days) and classifies the honeypot log.
func (e *Experiment) RunPhaseI() {
	e.phase("phase1", e.runPhaseI)
}

func (e *Experiment) runPhaseI() {
	w := e.World
	cfg := w.Cfg
	pacer := decoy.NewPacer(2)
	start := cfg.Start
	vps := w.Platform.VPs

	// Path universes (denominators for Figure 3).
	for _, vp := range vps {
		country := e.vpCountry(vp)
		e.Universe.VPCountry[vp.Addr] = country
		e.Universe.AddPaths(decoy.DNS, country, len(w.DNSDests))
		e.Universe.AddPaths(decoy.HTTP, country, len(w.Web.Sites))
		e.Universe.AddPaths(decoy.TLS, country, len(w.Web.Sites))
		for _, dst := range w.DNSDests {
			e.dstTotals[dst.Name]++
		}
	}

	// DNS decoys: rounds spread across the campaign.
	for round := 0; round < cfg.DNSRounds; round++ {
		roundStart := start.Add(time.Duration(round) * cfg.CampaignDuration / time.Duration(cfg.DNSRounds))
		for vi, vp := range vps {
			vp := vp
			for di, dst := range w.DNSDests {
				dst := dst
				base := roundStart.Add(time.Duration(vi)*11*time.Second + time.Duration(di)*700*time.Millisecond)
				at := pacer.NextSendTime(base, dst.Addr)
				w.Net.Schedule(at.Sub(start), func() {
					e.sendDNSDecoy(vp, dst)
				})
			}
		}
	}

	// HTTP and TLS decoys toward the web fleet.
	for round := 0; round < cfg.WebRounds; round++ {
		roundStart := start.Add(cfg.CampaignDuration/4 + time.Duration(round)*cfg.CampaignDuration/time.Duration(2*cfg.WebRounds))
		for vi, vp := range vps {
			vp := vp
			for si, site := range w.Web.Sites {
				site := site
				base := roundStart.Add(time.Duration(vi)*7*time.Second + time.Duration(si)*300*time.Millisecond)
				for _, proto := range []decoy.Protocol{decoy.HTTP, decoy.TLS} {
					proto := proto
					at := pacer.NextSendTime(base, site.Addr)
					w.Net.Schedule(at.Sub(start), func() {
						e.sendWebDecoy(vp, site.Addr, site.Domain, proto)
					})
				}
			}
		}
	}

	// Run the campaign and drain all retention-delayed probes.
	w.Net.Run(start.Add(cfg.CampaignDuration))
	w.Net.RunUntilIdle()
	e.EventsPhaseI = e.classifyNew()
}

func (e *Experiment) sendDNSDecoy(vp *vantage.VP, dst DNSDest) {
	w := e.World
	d, err := w.Gen.Generate(decoy.DNS, w.Net.Now(), vp.Addr, wire.Endpoint{Addr: dst.Addr, Port: 53}, 64)
	if err != nil {
		return
	}
	e.recordSentRecursive(d, dst.Name, dst.Kind == "public" || dst.Kind == "control")
	e.dnsDecoysPerDst[dst.Name]++
	vp.SendUDPRequest(w.Net, d.Dst, d.Payload, netsim.UDPRequestOpts{Timeout: 8 * time.Second})
}

func (e *Experiment) sendWebDecoy(vp *vantage.VP, addr wire.Addr, siteName string, proto decoy.Protocol) {
	w := e.World
	port := uint16(80)
	if proto == decoy.TLS {
		port = 443
	}
	d, err := w.Gen.Generate(proto, w.Net.Now(), vp.Addr, wire.Endpoint{Addr: addr, Port: port}, 64)
	if err != nil {
		return
	}
	e.recordSent(d, siteName, correlate.PhaseI)
	vp.SendTCPRequest(w.Net, d.Dst, d.Payload, netsim.TCPRequestOpts{Timeout: 15 * time.Second})
}

func (e *Experiment) recordSent(d *decoy.Decoy, dstName string, phase correlate.Phase) {
	e.sentCounts[d.Protocol]++
	e.decoysSent[d.Protocol].Inc()
	e.Correlator.AddSent(&correlate.Sent{
		Label: d.Label, Domain: d.Domain, Protocol: d.Protocol,
		VP: d.VP, Dst: d.Dst, DstName: dstName,
		Time: d.ID.Time, TTL: d.ID.TTL, Phase: phase,
	})
}

// recordSentRecursive records a Phase I DNS decoy, marking whether one
// authoritative recursion is expected (rule iii's solicited exception).
func (e *Experiment) recordSentRecursive(d *decoy.Decoy, dstName string, recursive bool) {
	e.sentCounts[d.Protocol]++
	e.decoysSent[d.Protocol].Inc()
	e.Correlator.AddSent(&correlate.Sent{
		Label: d.Label, Domain: d.Domain, Protocol: d.Protocol,
		VP: d.VP, Dst: d.Dst, DstName: dstName,
		Time: d.ID.Time, TTL: d.ID.TTL, Phase: correlate.PhaseI,
		ExpectRecursion: recursive,
	})
}

// classifyNew feeds unprocessed honeypot captures to the correlator.
func (e *Experiment) classifyNew() []correlate.Unsolicited {
	caps := e.World.Honeypots.Log.Snapshot()
	fresh := caps[e.processedCaptures:]
	e.processedCaptures = len(caps)
	return e.Correlator.Classify(fresh)
}

// RunPhaseII traceroutes every problematic path found in Phase I (capped
// per protocol), drains the network, classifies the new captures, and
// locates observers by joining sweep probes with leak evidence.
func (e *Experiment) RunPhaseII() {
	e.phase("phase2", e.runPhaseII)
}

func (e *Experiment) runPhaseII() {
	w := e.World
	paths := correlate.PathsWithUnsolicited(e.EventsPhaseI)

	// Deterministic path ordering.
	type job struct {
		key   correlate.PathKey
		proto decoy.Protocol
		name  string
	}
	var jobs []job
	seen := make(map[string]bool)
	for key, events := range paths {
		for _, u := range events {
			id := fmt.Sprintf("%v|%v|%d", key.VP, key.Dst, u.Sent.Protocol)
			if seen[id] {
				continue
			}
			seen[id] = true
			jobs = append(jobs, job{key: key, proto: u.Sent.Protocol, name: u.Sent.DstName})
		}
	}
	// Deterministic shuffle: when the per-protocol cap truncates the job
	// list, the kept subset must sample paths evenly (ordering by VP
	// address would drop every VP allocated late — e.g. the whole CN
	// fleet).
	jobHash := func(j job) uint64 {
		h := uint64(j.key.VP.Uint32())*0x9E3779B97F4A7C15 ^ uint64(j.key.Dst.Uint32())*0xC2B2AE3D27D4EB4F ^ uint64(j.proto)
		h ^= h >> 29
		h *= 0xBF58476D1CE4E5B9
		return h ^ h>>32
	}
	sort.Slice(jobs, func(i, j int) bool {
		a, b := jobs[i], jobs[j]
		if a.proto != b.proto {
			return a.proto < b.proto
		}
		return jobHash(a) < jobHash(b)
	})

	perProto := make(map[decoy.Protocol]int)
	type sweepRef struct {
		sweep *traceroute.Sweep
		key   correlate.PathKey
		name  string
	}
	var refs []sweepRef
	stagger := time.Duration(0)
	for _, j := range jobs {
		if perProto[j.proto] >= w.Cfg.MaxSweepsPerProtocol {
			continue
		}
		vp := e.vpByAddr[j.key.VP]
		if vp == nil {
			continue
		}
		perProto[j.proto]++
		port := uint16(53)
		switch j.proto {
		case decoy.HTTP:
			port = 80
		case decoy.TLS:
			port = 443
		}
		dst := wire.Endpoint{Addr: j.key.Dst, Port: port}
		j := j
		var sweepSlot sweepRef
		refs = append(refs, sweepSlot)
		idx := len(refs) - 1
		stagger += 200 * time.Millisecond
		func(idx int, delay time.Duration) {
			w.Net.Schedule(delay, func() {
				s, err := e.engine.Sweep(w.Net, vp, dst, j.proto)
				if err != nil {
					return
				}
				refs[idx] = sweepRef{sweep: s, key: j.key, name: j.name}
			})
		}(idx, stagger)
	}

	w.Net.RunUntilIdle()

	// Register Phase II probes in the send log, then classify the captures
	// they produced.
	for _, ref := range refs {
		if ref.sweep == nil {
			continue
		}
		e.sweeps = append(e.sweeps, ref.sweep)
		for _, p := range ref.sweep.Probes {
			e.sentCounts[ref.sweep.Proto]++
			e.decoysSent[ref.sweep.Proto].Inc()
			e.Correlator.AddSent(&correlate.Sent{
				Label: p.Label, Domain: p.Domain, Protocol: ref.sweep.Proto,
				VP: ref.sweep.VP.Addr, Dst: ref.sweep.Dst, DstName: ref.name,
				Time: p.SentAt, TTL: p.TTL, Phase: correlate.PhaseII,
			})
		}
	}
	e.EventsPhaseII = e.classifyNew()

	leaked := correlate.LeakedLabels(e.EventsPhaseII)
	for _, u := range e.EventsPhaseI {
		leaked[u.Sent.Label] = true
	}
	for _, ref := range refs {
		if ref.sweep == nil {
			continue
		}
		res := e.engine.Analyze(ref.sweep, leaked)
		e.SweepResults = append(e.SweepResults, res)
		e.resultsByPath[ref.key] = res
	}
}

// Run executes the full experiment and returns the compiled report.
func Run(cfg Config) *Report {
	e := NewExperiment(cfg)
	e.ScreenPairResolvers()
	e.RunPhaseI()
	e.RunPhaseII()
	return e.Compile()
}

// AllEvents concatenates Phase I and Phase II unsolicited events.
func (e *Experiment) AllEvents() []correlate.Unsolicited {
	out := make([]correlate.Unsolicited, 0, len(e.EventsPhaseI)+len(e.EventsPhaseII))
	out = append(out, e.EventsPhaseI...)
	out = append(out, e.EventsPhaseII...)
	return out
}

// Compile runs the full behavioral analysis over collected evidence.
func (e *Experiment) Compile() *Report {
	var r *Report
	e.phase("compile", func() { r = e.compile() })
	return r
}

func (e *Experiment) compile() *Report {
	w := e.World
	an := &analysis.Analyzer{Geo: w.Topo.Geo, Blocklist: w.Blocklist, Signatures: w.Signatures}
	events := e.EventsPhaseI // landscape analysis uses Phase I evidence

	resolverH := make(map[string]bool)
	for _, name := range resolverHNames() {
		resolverH[name] = true
	}

	r := &Report{
		Config:          w.Cfg,
		Capabilities:    w.Platform.Capabilities(),
		Excluded:        w.Platform.Excluded(),
		PairReport:      e.PairReport,
		Figure3:         an.Figure3(events, e.Universe),
		DestRatios:      an.DestinationRatios(events, e.dstTotals),
		Figure4:         analysis.DelayCDF(events, decoy.DNS, resolverH),
		Figure7HTTP:     analysis.DelayCDF(events, decoy.HTTP, nil),
		Figure7TLS:      analysis.DelayCDF(events, decoy.TLS, nil),
		Figure6:         an.Figure6(events, resolverH, 6),
		MultiUse:        analysis.MultiUseStats(filterByDst(events, resolverH), time.Hour),
		Incentives51:    an.ProbingIncentives(events, decoy.DNS),
		Table2:          analysis.Table2(e.SweepResults),
		DNSDecoysPerDst: e.dnsDecoysPerDst,
		SentCounts:      e.sentCounts,
		CorrelatorStats: e.Correlator.Stats(),
		NetStats:        w.Net.Stats(),
	}
	r.Figure5Cells, r.Figure5PerDst = analysis.Figure5(events)
	r.HTTPishShare = analysis.HTTPishDecoyShare(events, e.dnsDecoysPerDst)
	r.Weekly = analysis.TimeSeries(events, w.Cfg.Start, 7*24*time.Hour, -1)

	r.Figure4PerResolver = make(map[string]*stats.CDF)
	for name := range resolverH {
		r.Figure4PerResolver[name] = analysis.DelayCDF(events, decoy.DNS, map[string]bool{name: true})
	}

	r.Table3, r.ObserverAddrs = an.Table3(e.SweepResults, 3)
	r.ObserverCountries = an.ObserverCountryShare(r.ObserverAddrs)

	// §5.2 analysis over HTTP/TLS decoy events.
	webEvents := filterByProto(events, decoy.HTTP, decoy.TLS)
	r.Incentives52 = an.ProbingIncentives(webEvents, -1)
	r.Behaviours = an.ObserverBehaviourByAS(webEvents, e.resultsByPath)
	r.Top5Coverage = analysis.TopNCoverage(r.Behaviours, 5)

	// Port-scan every distinct on-wire observer address (§5.2). Iterate
	// protocols in fixed order — ranging over the map would reorder the
	// scan schedule run to run.
	var targets []wire.Addr
	seen := make(map[wire.Addr]bool)
	for _, proto := range []decoy.Protocol{decoy.DNS, decoy.HTTP, decoy.TLS} {
		for _, a := range r.ObserverAddrs[proto] {
			if !seen[a] {
				seen[a] = true
				targets = append(targets, a)
			}
		}
	}
	if len(targets) > 0 {
		scannerAS := w.Topo.HostingASes("US")[0]
		scanner := &probe.Scanner{Host: netsim.NewHost(w.Net, w.Topo.AllocHostAddr(scannerAS))}
		r.ProbeSummary = probe.Summarize(scanner.Scan(w.Net, targets))
	}
	return r
}

func resolverHNames() []string {
	return []string{"Yandex", "114DNS", "OneDNS", "DNSPAI", "VERCARA"}
}

func filterByDst(events []correlate.Unsolicited, names map[string]bool) []correlate.Unsolicited {
	out := make([]correlate.Unsolicited, 0, len(events))
	for _, u := range events {
		if names[u.Sent.DstName] {
			out = append(out, u)
		}
	}
	return out
}

func filterByProto(events []correlate.Unsolicited, protos ...decoy.Protocol) []correlate.Unsolicited {
	want := make(map[decoy.Protocol]bool)
	for _, p := range protos {
		want[p] = true
	}
	out := make([]correlate.Unsolicited, 0, len(events))
	for _, u := range events {
		if want[u.Sent.Protocol] {
			out = append(out, u)
		}
	}
	return out
}
