package core

import (
	"fmt"
	"strings"
	"time"

	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/stats"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

// MitigationMode selects the decoy encoding for a mitigation-study run.
type MitigationMode int

// Mitigation modes.
const (
	// MitigationNone is the baseline: clear-text QNAME, Host and SNI.
	MitigationNone MitigationMode = iota
	// MitigationECH sends TLS decoys with Encrypted Client Hello.
	MitigationECH
	// MitigationDoH sends DNS decoys over DNS-over-HTTPS.
	MitigationDoH
	// MitigationODoH relays DNS decoys through an Oblivious DoH proxy
	// (RFC 9230): the resolver still sees names, but never client origins.
	MitigationODoH
)

// String names the mode.
func (m MitigationMode) String() string {
	switch m {
	case MitigationECH:
		return "TLS+ECH"
	case MitigationDoH:
		return "DNS-over-HTTPS"
	case MitigationODoH:
		return "Oblivious DoH"
	default:
		return "baseline"
	}
}

// MitigationResult is the outcome of one mode's mini-campaign.
type MitigationResult struct {
	Mode MitigationMode
	// DecoysSent in the studied protocol.
	DecoysSent int
	// OnWireObservations counts ground-truth domain extractions from decoy
	// packets by DPI devices. This is the quantity encryption is supposed
	// to eliminate; the exhibitors' own (clear-text) probe traffic is
	// excluded.
	OnWireObservations int64
	// ProblematicPaths with at least one unsolicited event.
	ProblematicPaths int
	// UnsolicitedEvents across the run.
	UnsolicitedEvents int
	// DistinctClientsSeen is the resolvers' ground-truth view of message
	// origin: how many distinct source addresses the Resolver_h fleet
	// observed. Oblivious transports collapse it to the proxy.
	DistinctClientsSeen int
}

// MitigationStudy quantifies the paper's Discussion: encryption (ECH for
// TLS, DoH for DNS) blinds on-path observers but "does not mitigate data
// collection by the destination server". It runs three fresh worlds from
// the same seed — baseline, ECH, DoH — and reports, per mode, how much the
// wire saw versus how much shadowing still occurred.
func MitigationStudy(seed int64) []MitigationResult {
	modes := []MitigationMode{MitigationNone, MitigationECH, MitigationDoH, MitigationODoH}
	out := make([]MitigationResult, 0, len(modes))
	for _, mode := range modes {
		out = append(out, runMitigationMode(seed, mode))
	}
	return out
}

// runMitigationMode executes one compact campaign: every VP sends one
// decoy of the studied protocol to each relevant destination.
func runMitigationMode(seed int64, mode MitigationMode) MitigationResult {
	cfg := Config{
		Seed:                 seed,
		VPsPerGlobalProvider: 4,
		VPsPerCNProvider:     3,
		WebSites:             60,
		WebASes:              12,
	}
	w := BuildWorld(cfg)
	// DoH must be live on every resolver for the DoH/ODoH modes; enabling
	// it in all modes keeps the worlds identical. The oblivious proxy also
	// exists everywhere, placed in a neutral hosting network.
	for _, svc := range w.resolverServices {
		svc.EnableDoH()
	}
	proxyAddr := w.Topo.AllocHostAddr(w.Topo.HostingASes("CH")[0])
	proxy := resolversim.NewObliviousProxy(w.Net, proxyAddr)
	corr := correlate.New(w.Codec)
	res := MitigationResult{Mode: mode}

	// Tag VP traffic so devices separately count what they extracted from
	// decoys (as opposed to exhibitor probe traffic, which also crosses
	// tapped routers and legitimately remains clear-text).
	vpSet := make(map[wire.Addr]bool, len(w.Platform.VPs))
	for _, vp := range w.Platform.VPs {
		vpSet[vp.Addr] = true
	}
	for _, dev := range w.Devices {
		dev.SetSourceClassifier(func(a wire.Addr) bool { return vpSet[a] })
	}

	start := w.Cfg.Start
	send := func(i int, vp *vantage.VP, dst wire.Endpoint, dstName string, kind string) {
		delay := time.Duration(i) * 150 * time.Millisecond
		w.Net.Schedule(delay, func() {
			var d *decoy.Decoy
			var err error
			now := w.Net.Now()
			switch {
			case mode == MitigationECH:
				d, err = w.Gen.GenerateECH(now, vp.Addr, dst, 64)
			case mode == MitigationDoH:
				d, err = w.Gen.GenerateDoH(now, vp.Addr, dst, 64)
			case mode == MitigationODoH:
				d, err = w.Gen.GenerateODoH(now, vp.Addr, wire.Endpoint{Addr: proxyAddr, Port: 443}, dst.Addr, 64)
			case kind == "dns":
				d, err = w.Gen.Generate(decoy.DNS, now, vp.Addr, dst, 64)
			default:
				d, err = w.Gen.Generate(decoy.TLS, now, vp.Addr, dst, 64)
			}
			if err != nil {
				return
			}
			res.DecoysSent++
			corr.AddSent(&correlate.Sent{
				Label: d.Label, Domain: d.Domain, Protocol: d.Protocol,
				VP: d.VP, Dst: d.Dst, DstName: dstName, Time: d.ID.Time, TTL: 64,
				Phase:           correlate.PhaseI,
				ExpectRecursion: d.Protocol == decoy.DNS,
			})
			switch {
			case d.Protocol == decoy.DNS && !d.Encrypted:
				vp.SendUDPRequest(w.Net, d.Dst, d.Payload, netsim.UDPRequestOpts{Timeout: 8 * time.Second})
			default:
				vp.SendTCPRequest(w.Net, d.Dst, d.Payload, netsim.TCPRequestOpts{Timeout: 15 * time.Second})
			}
		})
	}

	i := 0
	for _, vp := range w.Platform.VPs {
		// The baseline covers both studied protocols so each mitigation row
		// has a same-protocol comparison point.
		if mode == MitigationDoH || mode == MitigationODoH || mode == MitigationNone {
			for _, dst := range w.DNSDests {
				if dst.Kind != "public" {
					continue
				}
				send(i, vp, wire.Endpoint{Addr: dst.Addr, Port: 53}, dst.Name, "dns")
				i++
			}
		}
		if mode == MitigationECH || mode == MitigationNone {
			for _, site := range w.Web.Sites {
				send(i, vp, wire.Endpoint{Addr: site.Addr, Port: 443}, site.Domain, "tls")
				i++
			}
		}
	}
	w.Net.Run(start.Add(30 * 24 * time.Hour))
	w.Net.RunUntilIdle()

	for _, dev := range w.Devices {
		res.OnWireObservations += dev.Stats().ClientExtractions
	}
	events := corr.Classify(w.Honeypots.Log.Snapshot())
	res.UnsolicitedEvents = len(events)
	res.ProblematicPaths = len(correlate.PathsWithUnsolicited(events))
	for _, svc := range w.resolverServices {
		if resolversim.IsResolverH(svc.Name) {
			res.DistinctClientsSeen += svc.DistinctClients()
		}
	}
	_ = proxy
	return res
}

// RenderMitigationStudy formats the study as a table with commentary.
func RenderMitigationStudy(results []MitigationResult) string {
	var b strings.Builder
	tb := stats.NewTable("Mitigation study: what encryption changes (paper, Discussion)",
		"Mode", "Decoys", "On-wire observations", "Problematic paths", "Unsolicited events", "Clients seen by Resolver_h")
	for _, r := range results {
		tb.AddRow(r.Mode.String(), r.DecoysSent, fmt.Sprintf("%d", r.OnWireObservations),
			r.ProblematicPaths, r.UnsolicitedEvents, r.DistinctClientsSeen)
	}
	b.WriteString(tb.String())
	b.WriteString(`
reading the table:
 - TLS+ECH: on-path devices extract nothing from the wire, yet paths stay
   problematic — destination web servers decrypt the inner name and still
   shadow it ("encryption does not mitigate data collection by the
   destination server").
 - DNS-over-HTTPS: QNAMEs disappear from the wire too, but the resolvers —
   the dominant DNS shadowing location (Table 2) — decode every query and
   keep retaining names.
 - Oblivious DoH: names still leak (events remain), but the resolvers'
   origin visibility collapses to the relay — the "split visibility of
   message origin and content" the paper recommends.
`)
	return b.String()
}
