package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/intel"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/observer"
	"shadowmeter/internal/pairresolver"
	"shadowmeter/internal/probe"
	"shadowmeter/internal/resolversim"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/topology"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/websim"
	"shadowmeter/internal/wire"
)

// DNSDest is one DNS decoy destination (Table 4 rows).
type DNSDest struct {
	Name string
	Kind string // "public", "control", "root", "tld"
	Addr wire.Addr
}

// World is the fully wired simulated Internet plus the measurement
// infrastructure deployed on it.
type World struct {
	Cfg  Config
	Net  *netsim.Network
	Topo *topology.Topology
	// Telemetry is the one metrics/tracing set shared by every component
	// of the pipeline (netsim, honeypots, traceroute, correlation, core).
	Telemetry *telemetry.Set

	Registry  *resolversim.Registry
	Honeypots *honeypot.Deployment
	EchoEP    wire.Endpoint
	Web       *websim.Fleet
	Platform  *vantage.Platform

	Blocklist  *intel.Blocklist
	Signatures *intel.SignatureDB
	Codec      *identifier.Codec
	Gen        *decoy.Generator

	// DNSDests is the 36-destination list of Table 4.
	DNSDests []DNSDest
	// ResolverAddrs are just the public-resolver addresses (pair-resolver
	// screening targets).
	ResolverAddrs []wire.Addr

	Interceptors []*pairresolver.InterceptorTap
	// Devices are the deployed on-path exhibitor taps (ground truth, used
	// by tests and ablation benches only — never by the pipeline).
	Devices []*observer.Device
	// resolverServices retains the deployed resolver fleet (DoH enabling,
	// stats inspection in tests).
	resolverServices []*resolversim.Service

	ttlReportAddr wire.Addr
	lastTTL       map[wire.Addr]uint8

	rng *rand.Rand
}

// BuildWorld constructs everything up to (but not including) the decoy
// campaign: topology, DNS ecosystem with shadowing exhibitors, web fleet,
// honeypots, and the screened VP platform.
func BuildWorld(cfg Config) *World {
	cfg = cfg.withDefaults()
	topo := cfg.Topo.InstantiateOrBuild(cfg.Seed)
	w := &World{
		Cfg:        cfg,
		Telemetry:  telemetry.NewSet(),
		Topo:       topo,
		Registry:   resolversim.NewRegistry(),
		Blocklist:  intel.NewBlocklist(),
		Signatures: intel.DefaultSignatureDB(),
		Codec:      identifier.NewCodec(cfg.Start),
		Gen:        decoy.NewGenerator(Zone, cfg.Start),
		lastTTL:    make(map[wire.Addr]uint8),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
	}
	w.Net = netsim.New(netsim.Config{
		Start: cfg.Start, Path: w.Topo.PathFunc(),
		LossRate: cfg.LossRate, LossSeed: cfg.Seed ^ 0x10553,
		Telemetry: w.Telemetry, Arena: cfg.Arena,
	})

	w.deployHoneypots()
	w.deployRootsAndTLDs()
	w.deployResolvers()
	w.deployWebFleet()
	w.deployOnPathDevices()
	w.deployInterceptors()
	w.recruitPlatform()
	return w
}

// deployHoneypots places the three sites (US, DE, SG) and the auxiliary
// echo and TTL-report listeners used for platform screening.
func (w *World) deployHoneypots() {
	locations := []string{"US", "DE", "SG"}
	var sites []*honeypot.Site
	for _, loc := range locations {
		as := w.Topo.HostingASes(loc)[0]
		sites = append(sites, &honeypot.Site{
			Location: loc,
			AuthAddr: w.Topo.AllocHostAddr(as),
			WebAddr:  w.Topo.AllocHostAddr(as),
		})
	}
	w.Honeypots = honeypot.Deploy(w.Net, honeypot.Config{Zone: Zone, RecordTTL: 3600, Codec: w.Codec, Telemetry: w.Telemetry}, sites, w.Registry)

	usAS := w.Topo.HostingASes("US")[0]
	echoAddr := w.Topo.AllocHostAddr(usAS)
	echoHost := netsim.NewHost(w.Net, echoAddr)
	echoHost.ServeTCP(80, vantage.EchoService())
	w.EchoEP = wire.Endpoint{Addr: echoAddr, Port: 80}

	w.ttlReportAddr = w.Topo.AllocHostAddr(usAS)
	w.Net.AddHost(w.ttlReportAddr, netsim.HandlerFunc(func(n *netsim.Network, pkt *wire.Packet) {
		w.lastTTL[pkt.IP.Src] = pkt.IP.TTL
	}))
}

// deployRootsAndTLDs stands up the 13 root and 2 TLD referral servers.
func (w *World) deployRootsAndTLDs() {
	for i, r := range resolversim.RootServers {
		w.Topo.AddServiceAS(394350+i, "Root Server Operator "+r.Name, "US", r.Addr, false)
		resolversim.NewReferralServer(w.Net, r.Name, "", r.Addr)
		w.DNSDests = append(w.DNSDests, DNSDest{Name: r.Name, Kind: "root", Addr: r.Addr})
	}
	for i, t := range resolversim.TLDServers {
		w.Topo.AddServiceAS(394380+i, "TLD Registry ."+t.Zone, "US", t.Addr, false)
		resolversim.NewReferralServer(w.Net, "."+t.Zone, t.Zone, t.Addr)
		w.DNSDests = append(w.DNSDests, DNSDest{Name: "." + t.Zone, Kind: "tld", Addr: t.Addr})
	}
}

// deployResolvers builds the 20 public resolvers of Table 4 (with their
// shadowing ground truth) plus the self-built control resolver.
func (w *World) deployResolvers() {
	for i, pr := range resolversim.PublicResolvers {
		as := w.Topo.AddServiceAS(pr.ASN, pr.ASName, pr.Country, pr.Addr, true)
		svc := resolversim.NewService(w.Net, pr.Name, pr.Addr, w.Registry, w.Topo.Geo)
		w.resolverServices = append(w.resolverServices, svc)
		w.DNSDests = append(w.DNSDests, DNSDest{Name: pr.Name, Kind: "public", Addr: pr.Addr})
		w.ResolverAddrs = append(w.ResolverAddrs, pr.Addr)

		egress := []*netsim.Host{netsim.NewHost(w.Net, w.Topo.AllocHostAddr(as))}
		// Implementation-choice retries: every resolver occasionally
		// re-queries upstream, with operator-specific frequency. These are
		// the benign sub-minute DNS-DNS repeats of Figure 4.
		retries := 1 + int(w.rng.Int63n(2))
		retryProb := 0.15 + w.rng.Float64()*0.35
		inst := &resolversim.Instance{Name: "default", Egress: egress, ExtraRetries: retries, RetryProb: retryProb}

		switch pr.Name {
		case "Yandex":
			ex := observer.NewExhibitor(yandexProfile(), w.securityVendorOrigins("yandex-vendor", 4, 0.50), w.Cfg.Seed+101)
			ex.SetKindOrigins(observer.ProbeDNS, w.googleLookupOrigins(pr.ASN, 3, 0.05))
			inst.Exhibitor = &observer.PathSampledExhibitor{Inner: ex, Fraction: yandexPathFraction, Salt: 11}
		case "OneDNS":
			ex := observer.NewExhibitor(resolverHDNSProfile("onedns-dst"), w.securityVendorOrigins("onedns-vendor", 3, 0.55), w.Cfg.Seed+102)
			ex.SetKindOrigins(observer.ProbeDNS, w.googleLookupOrigins(pr.ASN, 2, 0.05))
			inst.Exhibitor = &observer.PathSampledExhibitor{Inner: ex, Fraction: oneDNSPathFraction, Salt: 13}
		case "DNSPAI":
			ex := observer.NewExhibitor(resolverHDNSProfile("dnspai-dst"), w.securityVendorOrigins("dnspai-vendor", 3, 0.50), w.Cfg.Seed+103)
			ex.SetKindOrigins(observer.ProbeDNS, w.googleLookupOrigins(pr.ASN, 2, 0.05))
			inst.Exhibitor = &observer.PathSampledExhibitor{Inner: ex, Fraction: dnspaiPathFraction, Salt: 17}
		case "VERCARA":
			ex := observer.NewExhibitor(vercaraProfile(), w.googleLookupOrigins(pr.ASN, 3, 0.05), w.Cfg.Seed+104)
			inst.Exhibitor = &observer.PathSampledExhibitor{Inner: ex, Fraction: vercaraPathFraction, Salt: 19}
		case "114DNS":
			// Anycast split (§5.1 case II): CN instances shadow, the
			// default (US) instance does not. The CN exhibitor's probes
			// originate from 4 ASes: CHINANET backbone, a provincial ISP, a
			// cloud platform, and Google lookups.
			cnOrigins := w.cn114Origins()
			ex := observer.NewExhibitor(dns114Profile(), cnOrigins, w.Cfg.Seed+105)
			ex.SetKindOrigins(observer.ProbeHTTP, w.securityVendorOrigins("114-vendor", 3, 0.55))
			ex.SetKindOrigins(observer.ProbeHTTPS, w.securityVendorOrigins("114-vendor-tls", 2, 0.62))
			cn := &resolversim.Instance{
				Name: "cn", Countries: map[string]bool{"CN": true},
				Egress:       []*netsim.Host{netsim.NewHost(w.Net, w.Topo.AllocHostAddr(as))},
				ExtraRetries: retries, RetryProb: retryProb,
				Exhibitor: &observer.PathSampledExhibitor{Inner: ex, Fraction: dns114CNFraction, Salt: 23},
			}
			svc.AddInstance(cn)
		case "DNSPod", "Baidu", "CNNIC":
			inst.Exhibitor = observer.NewExhibitor(minorResolverProfile(pr.Name+"-minor"), w.googleLookupOrigins(pr.ASN, 1, 0), w.Cfg.Seed+int64(200+i))
		}
		svc.AddInstance(inst)
	}

	// Self-built control resolver (never shadows, never retries oddly).
	ctrlAS := w.Topo.HostingASes("DE")[0]
	ctrlAddr := w.Topo.AllocHostAddr(ctrlAS)
	ctrl := resolversim.NewService(w.Net, "self-built", ctrlAddr, w.Registry, w.Topo.Geo)
	ctrl.AddInstance(&resolversim.Instance{
		Name:   "default",
		Egress: []*netsim.Host{netsim.NewHost(w.Net, w.Topo.AllocHostAddr(ctrlAS))},
	})
	w.DNSDests = append(w.DNSDests, DNSDest{Name: "self-built", Kind: "control", Addr: ctrlAddr})
}

// deployWebFleet builds the Tranco-like destination fleet and installs
// destination-side SNI/Host exhibitors on a deterministic subset
// (Table 2: TLS shadowing is mostly at the destination).
func (w *World) deployWebFleet() {
	w.Web = websim.Build(w.Net, w.Topo, websim.Config{
		Seed: w.Cfg.Seed + 7, NumSites: w.Cfg.WebSites, NumASes: w.Cfg.WebASes,
	})
	// Home CN web-hosting ASes round-robin over the populated provinces the
	// paper names (§5.2 case III), so inbound paths traverse their
	// provincial cores.
	cnHomes := []string{
		"Jiangsu", "Guangdong", "Zhejiang", "Shanghai", "Sichuan",
		"Fujian", "Beijing", "Hubei", "Shandong", "Henan",
	}
	cnIdx := 0
	seenCNAS := make(map[int]bool)
	for _, site := range w.Web.Sites {
		if site.Country != "CN" || seenCNAS[site.ASN] {
			continue
		}
		seenCNAS[site.ASN] = true
		if as := w.Topo.AS(site.ASN); as != nil {
			as.Province = cnHomes[cnIdx%len(cnHomes)]
			cnIdx++
		}
	}
	shadowCountries := map[string]bool{"CN": true, "US": true, "CA": true, "AD": true}
	for _, site := range w.Web.Sites {
		if !shadowCountries[site.Country] {
			continue
		}
		// A handful of candidate sites retain SNI for a fraction of their
		// client paths (Table 2: TLS shadowing is 65% at-destination); Host
		// retention at the destination is rarer still (HTTP 2.3% at 10).
		h := site.Rank*2654435761 + int(w.Cfg.Seed)
		if h%7 == 0 {
			ex := observer.NewExhibitor(sniDestProfile(fmt.Sprintf("sni-dst-%d", site.Rank)),
				w.siteOrigins(site, 0.50), w.Cfg.Seed+int64(1000+site.Rank))
			ps := &observer.PathSampledExhibitor{Inner: ex, Fraction: 0.60, Salt: uint32(site.Rank)}
			site.OnSNI = func(n *netsim.Network, serverName string, client wire.Addr) {
				ps.ObserveQuery(n, serverName, client)
			}
		}
		if h%60 == 3 {
			ex := observer.NewExhibitor(sniDestProfile(fmt.Sprintf("host-dst-%d", site.Rank)),
				w.siteOrigins(site, 0.50), w.Cfg.Seed+int64(2000+site.Rank))
			ps := &observer.PathSampledExhibitor{Inner: ex, Fraction: 0.15, Salt: uint32(site.Rank + 7)}
			site.OnHost = func(n *netsim.Network, host string, client wire.Addr) {
				ps.ObserveQuery(n, host, client)
			}
		}
	}
}

// deployOnPathDevices attaches the on-wire DPI exhibitors whose locations
// Table 2/3 and §5.2 describe.
func (w *World) deployOnPathDevices() {
	backbone := w.Topo.ChinanetBackbone()

	// CHINANET backbone: tap two core routers and one international
	// gateway with HTTP/TLS watchers probing from CN ISP origins.
	// HTTP is observed on the wire far more often than TLS (Table 2:
	// 97.7% vs 35% of problematic paths have mid-path observers), so the
	// HTTP taps cover ~3x the client paths the TLS taps do.
	cnOrigins := w.cnISPOrigins(5, 0.32)
	for i, ridx := range []int{0, 1, len(backbone.Routers) - 1} {
		w.Devices = append(w.Devices, observer.NewDevice(
			backboneDeviceProfile(fmt.Sprintf("chinanet-dpi-http-%d", i), decoy.HTTP, 0.16, uint32(31+i)),
			cnOrigins, w.Cfg.Seed+int64(300+i), backbone.Routers[ridx]))
		w.Devices = append(w.Devices, observer.NewDevice(
			backboneDeviceProfile(fmt.Sprintf("chinanet-dpi-tls-%d", i), decoy.TLS, 0.05, uint32(131+i)),
			cnOrigins, w.Cfg.Seed+int64(320+i), backbone.Routers[ridx]))
	}

	// Provincial HTTP observers (Jiangsu x2, Hubei, Shanghai): §5.2 case
	// III — populated provinces, origins in local ISPs.
	for i, asn := range []int{137697, topology.ASNJiangsuBackbone, 58563, 4812} {
		as := w.Topo.AS(asn)
		if as == nil || len(as.Routers) == 0 {
			continue
		}
		origins := w.asOrigins(as, 2, 0.45, wire.Addr{})
		// Provincial DPI sits on the core (uplink) router — the hop that
		// actually carries transit toward the backbone.
		w.Devices = append(w.Devices, observer.NewDevice(
			backboneDeviceProfile(fmt.Sprintf("prov-dpi-http-%d", asn), decoy.HTTP, 0.35, uint32(57+i)),
			origins, w.Cfg.Seed+int64(400+i), as.Routers[len(as.Routers)-1]))
		w.Devices = append(w.Devices, observer.NewDevice(
			backboneDeviceProfile(fmt.Sprintf("prov-dpi-tls-%d", asn), decoy.TLS, 0.12, uint32(157+i)),
			origins, w.Cfg.Seed+int64(430+i), as.Routers[len(as.Routers)-1]))
	}

	// AS40444 and AS29988: HTTP decoys trigger unsolicited DNS only, from
	// the observers' own networks.
	for i, asn := range []int{topology.ASNConstantContact, topology.ASNRogers} {
		as := w.Topo.AS(asn)
		origins := w.asOrigins(as, 2, 0.10, w.Honeypots.Sites[0].AuthAddr)
		w.Devices = append(w.Devices, observer.NewDevice(
			borderDeviceProfile(fmt.Sprintf("border-dpi-%d", asn), 0.15, uint32(71+i)),
			origins, w.Cfg.Seed+int64(500+i), as.Routers[0]))
	}

	// One gateway is a real border router: it answers BGP on 179. The §5.2
	// port scan should find most observers closed and 179 the most common
	// open port.
	gw := backbone.Routers[len(backbone.Routers)-1]
	bgpHost := netsim.NewHost(w.Net, gw.Addr)
	bgpHost.ServeTCP(179, probe.BGPBanner(gw.Name))

	// Rare on-path DNS observers (Table 3 DNS section). They track only
	// resolver-bound queries, so root/TLD/control paths stay clean.
	resolverDsts := make(map[wire.Addr]bool, len(w.ResolverAddrs))
	for _, a := range w.ResolverAddrs {
		resolverDsts[a] = true
	}
	for i, asn := range []int{topology.ASNHostRoyale, 4808, topology.ASNZenlayer} {
		as := w.Topo.AS(asn)
		if as == nil || len(as.Routers) == 0 {
			continue
		}
		origins := w.asOrigins(as, 1, 0.05, w.Honeypots.Sites[0].AuthAddr)
		for r := 0; r < len(as.Routers) && r < 2; r++ {
			w.Devices = append(w.Devices, observer.NewDevice(
				dnsWireDeviceProfile(fmt.Sprintf("dns-dpi-%d-%d", asn, r), uint32(83+i*4+r), resolverDsts),
				origins, w.Cfg.Seed+int64(600+i*4+r), as.Routers[r]))
		}
	}
}

// deployInterceptors installs Appendix E ground truth: DNS interception
// devices on the edge routers of the first N VP-hosting ASes.
func (w *World) deployInterceptors() {
	if w.Cfg.InterceptedVPASes <= 0 {
		return
	}
	installed := 0
	for _, c := range topology.Countries {
		if installed >= w.Cfg.InterceptedVPASes {
			break
		}
		for _, as := range w.Topo.HostingASes(c.Code) {
			if installed >= w.Cfg.InterceptedVPASes {
				break
			}
			// Only VP datacenter ASes: an interceptor on a resolver
			// operator's edge would sit on EVERY client's path to that
			// resolver, not on the access network Appendix E screens for.
			if !strings.Contains(as.Name, "-DC-") && !strings.Contains(as.Name, "IDC") {
				continue
			}
			tap := &pairresolver.InterceptorTap{SpoofAddr: wire.MustParseAddr("203.0.113.99")}
			as.Routers[0].AttachTap(tap)
			w.Interceptors = append(w.Interceptors, tap)
			installed++
		}
	}
}

// recruitPlatform builds, discovers, and screens the VP platform
// (Appendix C/E): residential and TTL-resetting providers are excluded,
// then interception-affected VPs are removed via pair resolvers.
func (w *World) recruitPlatform() {
	w.Platform = vantage.Build(w.Net, w.Topo, vantage.Config{
		Seed:                 w.Cfg.Seed + 3,
		VPsPerGlobalProvider: w.Cfg.VPsPerGlobalProvider,
		VPsPerCNProvider:     w.Cfg.VPsPerCNProvider,
	})
	w.Platform.DiscoverAddresses(w.Net, w.EchoEP, func(a wire.Addr) (string, int, bool, bool) {
		info, ok := w.Topo.Geo.Lookup(a)
		if !ok {
			return "", 0, false, false
		}
		return info.Country, info.ASN, info.Hosting, true
	})
	w.Platform.Screen(w.Net, func(vp *vantage.VP, ttl uint8) (uint8, bool) {
		delete(w.lastTTL, vp.Addr)
		vp.SendUDP(w.Net, wire.Endpoint{Addr: w.ttlReportAddr, Port: 9}, ttl, 1, []byte("ttl-screen"))
		w.Net.RunUntilIdle()
		got, ok := w.lastTTL[vp.Addr]
		return got, ok
	})
}

// securityVendorOrigins creates probe origins in a fresh "security vendor"
// hosting AS; a fraction of their addresses is on the blocklist (the
// paper presumes vendor proxies hit blocklists, §5.1).
func (w *World) securityVendorOrigins(name string, count int, blockedFrac float64) []observer.Origin {
	as := w.Topo.NewStubAS(name+" Security Analytics", "US", true)
	return w.asOrigins(as, count, blockedFrac, wire.Addr{})
}

// googleLookupOrigins creates origins that resolve observed names through
// Google Public DNS — making AS15169 the visible origin of the resulting
// unsolicited queries (Figure 6).
func (w *World) googleLookupOrigins(ownerASN, count int, blockedFrac float64) []observer.Origin {
	as := w.Topo.AS(ownerASN)
	if as == nil {
		as = w.Topo.AS(topology.ASNGoogle)
	}
	return w.asOrigins(as, count, blockedFrac, wire.MustParseAddr("8.8.8.8"))
}

// cn114Origins builds the 4-AS origin mix behind 114DNS probes.
func (w *World) cn114Origins() []observer.Origin {
	var out []observer.Origin
	out = append(out, w.asOrigins(w.Topo.ChinanetBackbone(), 1, 0.02, w.Honeypots.Sites[0].AuthAddr)...)
	if prov := w.Topo.ProvincialAS("Jiangsu"); prov != nil {
		out = append(out, w.asOrigins(prov, 1, 0.08, w.Honeypots.Sites[0].AuthAddr)...)
	}
	if zen := w.Topo.AS(topology.ASNZenlayer); zen != nil {
		out = append(out, w.asOrigins(zen, 1, 0.08, w.Honeypots.Sites[0].AuthAddr)...)
	}
	out = append(out, w.googleLookupOrigins(174001, 1, 0)...)
	return out
}

// cnISPOrigins spreads origins over CHINANET networks ("85% of unsolicited
// requests originate from local ISPs", §5.2 case III).
func (w *World) cnISPOrigins(count int, blockedFrac float64) []observer.Origin {
	var out []observer.Origin
	out = append(out, w.asOrigins(w.Topo.ChinanetBackbone(), (count+1)/2, blockedFrac, w.Honeypots.Sites[0].AuthAddr)...)
	if prov := w.Topo.ProvincialAS("Jiangsu"); prov != nil {
		out = append(out, w.asOrigins(prov, count/2, blockedFrac, w.Honeypots.Sites[0].AuthAddr)...)
	}
	return out
}

// siteOrigins builds origins for a destination-side web exhibitor: hosts
// near the site plus Google lookups.
func (w *World) siteOrigins(site *websim.Site, blockedFrac float64) []observer.Origin {
	as := w.Topo.AS(site.ASN)
	origins := w.asOrigins(as, 1, blockedFrac, wire.MustParseAddr("8.8.8.8"))
	return origins
}

// asOrigins allocates count origin hosts in as. resolver zero means the
// origin queries the honeypot authoritative server directly.
func (w *World) asOrigins(as *topology.AS, count int, blockedFrac float64, resolver wire.Addr) []observer.Origin {
	if as == nil {
		return nil
	}
	if resolver.IsZero() {
		resolver = wire.MustParseAddr("8.8.8.8")
	}
	var out []observer.Origin
	for i := 0; i < count; i++ {
		addr := w.Topo.AllocHostAddr(as)
		if w.rng.Float64() < blockedFrac {
			w.Blocklist.ListAddr(addr, intel.ReasonXBL)
		}
		out = append(out, observer.Origin{
			Host:     netsim.NewHost(w.Net, addr),
			Resolver: resolver,
		})
	}
	return out
}

// AdvanceTo runs the network to a virtual deadline.
func (w *World) AdvanceTo(t time.Time) { w.Net.Run(t) }
