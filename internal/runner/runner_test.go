package runner

import (
	"bytes"
	"runtime"
	"testing"

	"shadowmeter/internal/core"
)

// tinyCore keeps trials fast while exercising the full pipeline.
func tinyCore() core.Config {
	return core.Config{
		VPsPerGlobalProvider: 2,
		VPsPerCNProvider:     1,
		WebSites:             30,
		WebASes:              8,
		DNSRounds:            1,
		MaxSweepsPerProtocol: 40,
	}
}

// TestRunnerDeterminism is the batch-level determinism contract: the
// same seeds must produce byte-identical merged output at any worker
// count. Worker scheduling decides only who runs a trial; the streaming
// consumer folds strictly in trial order, so neither what a trial
// computes nor where its result lands can depend on the pool size.
func TestRunnerDeterminism(t *testing.T) {
	run := func(workers int) (*Result, []byte, []byte) {
		res := Run(Config{Trials: 4, Workers: workers, BaseSeed: 11, Core: tinyCore()})
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, js, res.MergedTelemetryJSON()
	}
	serial, serialJSON, serialTele := run(1)
	if len(serial.Trials) != 4 {
		t.Fatalf("trial count = %d, want 4", len(serial.Trials))
	}
	for _, workers := range []int{4, 16} {
		parallel, parallelJSON, parallelTele := run(workers)
		if !bytes.Equal(serialJSON, parallelJSON) {
			t.Errorf("batch JSON differs between workers=1 and workers=%d:\n--- 1\n%s\n--- %d\n%s", workers, serialJSON, workers, parallelJSON)
		}
		if !bytes.Equal(serialTele, parallelTele) {
			t.Errorf("merged telemetry differs between workers=1 and workers=%d", workers)
		}
		if len(parallel.Trials) != 4 {
			t.Fatalf("workers=%d trial count = %d, want 4", workers, len(parallel.Trials))
		}
		for i, tr := range parallel.Trials {
			if tr.Trial != i || tr.Seed != 11+int64(i) {
				t.Errorf("trial %d: got trial=%d seed=%d", i, tr.Trial, tr.Seed)
			}
			if len(tr.Headline) == 0 || tr.Resumed {
				t.Errorf("trial %d missing headline or wrongly marked resumed", i)
			}
			// The streaming consumer must have dropped the heavy artifacts.
			if tr.Metrics != nil || tr.Spans != nil || tr.Events != nil {
				t.Errorf("trial %d retained heavy artifacts after fold", i)
			}
		}
		if parallel.PeakHeapBytes == 0 {
			t.Errorf("workers=%d recorded no peak heap high-water", workers)
		}
	}
}

// TestBlueprintDeterminism is the shared-topology contract: the same
// campaign config must produce byte-identical batch JSON and merged
// telemetry whether worlds are instantiated from a shared blueprint or
// cold-built per trial, at any worker count. The blueprint may only share
// seed-independent construction; any leak of mutable state between trials
// shows up here as a diff.
func TestBlueprintDeterminism(t *testing.T) {
	small := tinyCore()
	small.WebSites = 20
	small.MaxSweepsPerProtocol = 20
	run := func(workers int, cold bool) ([]byte, []byte) {
		res := Run(Config{Trials: 4, Workers: workers, BaseSeed: 29, Core: small, ColdTopology: cold})
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, res.MergedTelemetryJSON()
	}
	refJSON, refTele := run(1, true) // cold, serial: the reference
	for _, tc := range []struct {
		name    string
		workers int
		cold    bool
	}{
		{"blueprint/workers=1", 1, false},
		{"blueprint/workers=4", 4, false},
		{"cold/workers=4", 4, true},
	} {
		js, tele := run(tc.workers, tc.cold)
		if !bytes.Equal(refJSON, js) {
			t.Errorf("%s: batch JSON differs from cold workers=1", tc.name)
		}
		if !bytes.Equal(refTele, tele) {
			t.Errorf("%s: merged telemetry differs from cold workers=1", tc.name)
		}
	}
}

func TestAggregateStats(t *testing.T) {
	trials := []Trial{
		{Headline: map[string]float64{"a": 1, "b": 4}},
		{Headline: map[string]float64{"a": 3}}, // "b" missing -> 0
	}
	agg := aggregate(trials)
	if a := agg["a"]; a.Mean != 2 || a.Min != 1 || a.Max != 3 || a.Count != 2 {
		t.Errorf("a = %+v", a)
	}
	if b := agg["b"]; b.Mean != 2 || b.Min != 0 || b.Max != 4 || b.Count != 1 {
		t.Errorf("b = %+v", b)
	}
}

// TestAggregateStreamingMatchesBatch drives the online fold through the
// awkward shapes — keys first seen mid-batch, keys vanishing, negative
// values, a key missing everywhere but one trial — and checks it against
// the semantics the batch pass always had.
func TestAggregateStreamingMatchesBatch(t *testing.T) {
	trials := []Trial{
		{Headline: map[string]float64{"pos": 2}},
		{Headline: map[string]float64{"pos": 6, "late": 5, "neg": -3}},
		{Headline: map[string]float64{"pos": 1, "neg": -1}},
	}
	agg := aggregate(trials)
	if p := agg["pos"]; p.Mean != 3 || p.Min != 1 || p.Max != 6 || p.Count != 3 {
		t.Errorf("pos = %+v", p)
	}
	// "late" first appears at trial 1: trials 0 and 2 contribute 0, so the
	// min clamps to 0 even though every observed value is positive.
	if l := agg["late"]; l.Mean != 5.0/3 || l.Min != 0 || l.Max != 5 || l.Count != 1 {
		t.Errorf("late = %+v", l)
	}
	// "neg" is negative where present: the implicit 0 becomes the max.
	if n := agg["neg"]; n.Mean != -4.0/3 || n.Min != -3 || n.Max != 0 || n.Count != 2 {
		t.Errorf("neg = %+v", n)
	}
}

// TestMemoryFlatBatch is the memory-flat acceptance gate: quadrupling the
// trial count must not quadruple the consumer's peak heap, because each
// trial's report, snapshots, and events are dropped as soon as they are
// folded. The 2× margin absorbs GC timing noise while still failing
// decisively if per-trial artifacts are ever retained again (which
// scales the peak roughly linearly in trials).
func TestMemoryFlatBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial batches are slow")
	}
	peak := func(trials int) uint64 {
		runtime.GC() // level the floor so high-waters are comparable
		res := Run(Config{Trials: trials, Workers: 1, BaseSeed: 101, Core: tinyCore()})
		if res.PeakHeapBytes == 0 {
			t.Fatalf("%d-trial batch recorded no peak heap", trials)
		}
		return res.PeakHeapBytes
	}
	peak2 := peak(2)
	peak8 := peak(8)
	if peak8 > 2*peak2 {
		t.Errorf("peak heap grew with trial count: 2 trials = %d bytes, 8 trials = %d bytes (limit 2x)", peak2, peak8)
	}
}

// TestWorkerClampReported: a pool larger than the plan clamps to one
// worker per trial, and both the campaign snapshot and the occupancy
// report must say so — speedup series divide wall times by the worker
// count, so a phantom pool size would corrupt the whole series.
func TestWorkerClampReported(t *testing.T) {
	m := NewMonitor(MonitorOptions{})
	Run(Config{Trials: 2, Workers: 16, BaseSeed: 41, Core: tinyCore(), Monitor: m})
	snap := m.Campaign()
	if snap.Workers != 2 || snap.RequestedWorkers != 16 {
		t.Errorf("campaign workers = %d (requested %d), want 2 (requested 16)", snap.Workers, snap.RequestedWorkers)
	}
	occ := m.Occupancy()
	if occ.EffectiveWorkers != 2 || occ.RequestedWorkers != 16 {
		t.Errorf("occupancy workers = %d effective (requested %d), want 2 (requested 16)", occ.EffectiveWorkers, occ.RequestedWorkers)
	}
	if len(occ.Workers) != 2 {
		t.Errorf("occupancy lists %d workers, want 2", len(occ.Workers))
	}
	if occ.PeakHeapBytes == 0 {
		t.Error("occupancy report missing peak heap high-water")
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	// Distinct seeds must build distinct worlds: if every trial reported
	// identical packet counts the batch would be re-measuring one world.
	res := Run(Config{Trials: 3, Workers: 3, BaseSeed: 5, Core: tinyCore()})
	first := res.Trials[0].Headline["packets_sent"]
	diverged := false
	for _, tr := range res.Trials[1:] {
		if tr.Headline["packets_sent"] != first {
			diverged = true
		}
	}
	if !diverged {
		t.Error("all trials produced identical packet counts; seeds not applied")
	}
}

// BenchmarkTrials is the repo's recorded multi-trial throughput
// baseline: an 8-trial batch through the worker pool, with the shared
// topology blueprint in play exactly as production batches run it.
// Note: per-op numbers are for the whole 8-trial batch; divide by 8 to
// compare against snapshots taken when the benchmark ran 4 trials.
func BenchmarkTrials(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(Config{Trials: 8, Workers: workers, BaseSeed: int64(i * 8), Core: tinyCore()})
			}
		})
	}
}
