package runner

import (
	"bytes"
	"testing"

	"shadowmeter/internal/core"
)

// tinyCore keeps trials fast while exercising the full pipeline.
func tinyCore() core.Config {
	return core.Config{
		VPsPerGlobalProvider: 2,
		VPsPerCNProvider:     1,
		WebSites:             30,
		WebASes:              8,
		DNSRounds:            1,
		MaxSweepsPerProtocol: 40,
	}
}

// TestRunnerDeterminism is the batch-level determinism contract: the
// same seeds must produce byte-identical merged output at any worker
// count. Worker scheduling decides only who runs a trial, never what it
// computes or where its result lands.
func TestRunnerDeterminism(t *testing.T) {
	run := func(workers int) (*Result, []byte, []byte) {
		res := Run(Config{Trials: 4, Workers: workers, BaseSeed: 11, Core: tinyCore()})
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, js, res.MergedTelemetryJSON()
	}
	serial, serialJSON, serialTele := run(1)
	parallel, parallelJSON, parallelTele := run(4)

	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Errorf("batch JSON differs between workers=1 and workers=4:\n--- 1\n%s\n--- 4\n%s", serialJSON, parallelJSON)
	}
	if !bytes.Equal(serialTele, parallelTele) {
		t.Error("merged telemetry differs between workers=1 and workers=4")
	}
	if len(serial.Trials) != 4 || len(parallel.Trials) != 4 {
		t.Fatalf("trial counts = %d/%d, want 4", len(serial.Trials), len(parallel.Trials))
	}
	for i, tr := range parallel.Trials {
		if tr.Trial != i || tr.Seed != 11+int64(i) {
			t.Errorf("trial %d: got trial=%d seed=%d", i, tr.Trial, tr.Seed)
		}
		if tr.Report == nil || len(tr.Metrics) == 0 {
			t.Errorf("trial %d missing report or metrics", i)
		}
	}
}

// TestBlueprintDeterminism is the shared-topology contract: the same
// campaign config must produce byte-identical batch JSON and merged
// telemetry whether worlds are instantiated from a shared blueprint or
// cold-built per trial, at any worker count. The blueprint may only share
// seed-independent construction; any leak of mutable state between trials
// shows up here as a diff.
func TestBlueprintDeterminism(t *testing.T) {
	small := tinyCore()
	small.WebSites = 20
	small.MaxSweepsPerProtocol = 20
	run := func(workers int, cold bool) ([]byte, []byte) {
		res := Run(Config{Trials: 4, Workers: workers, BaseSeed: 29, Core: small, ColdTopology: cold})
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return js, res.MergedTelemetryJSON()
	}
	refJSON, refTele := run(1, true) // cold, serial: the reference
	for _, tc := range []struct {
		name    string
		workers int
		cold    bool
	}{
		{"blueprint/workers=1", 1, false},
		{"blueprint/workers=4", 4, false},
		{"cold/workers=4", 4, true},
	} {
		js, tele := run(tc.workers, tc.cold)
		if !bytes.Equal(refJSON, js) {
			t.Errorf("%s: batch JSON differs from cold workers=1", tc.name)
		}
		if !bytes.Equal(refTele, tele) {
			t.Errorf("%s: merged telemetry differs from cold workers=1", tc.name)
		}
	}
}

func TestAggregateStats(t *testing.T) {
	trials := []Trial{
		{Headline: map[string]float64{"a": 1, "b": 4}},
		{Headline: map[string]float64{"a": 3}}, // "b" missing -> 0
	}
	agg := aggregate(trials)
	if a := agg["a"]; a.Mean != 2 || a.Min != 1 || a.Max != 3 {
		t.Errorf("a = %+v", a)
	}
	if b := agg["b"]; b.Mean != 2 || b.Min != 0 || b.Max != 4 {
		t.Errorf("b = %+v", b)
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	// Distinct seeds must build distinct worlds: if every trial reported
	// identical packet counts the batch would be re-measuring one world.
	res := Run(Config{Trials: 3, Workers: 3, BaseSeed: 5, Core: tinyCore()})
	first := res.Trials[0].Headline["packets_sent"]
	diverged := false
	for _, tr := range res.Trials[1:] {
		if tr.Headline["packets_sent"] != first {
			diverged = true
		}
	}
	if !diverged {
		t.Error("all trials produced identical packet counts; seeds not applied")
	}
}

// BenchmarkTrials is the repo's recorded multi-trial throughput
// baseline: an 8-trial batch through the worker pool, with the shared
// topology blueprint in play exactly as production batches run it.
// Note: per-op numbers are for the whole 8-trial batch; divide by 8 to
// compare against snapshots taken when the benchmark ran 4 trials.
func BenchmarkTrials(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(Config{Trials: 8, Workers: workers, BaseSeed: int64(i * 8), Core: tinyCore()})
			}
		})
	}
}
