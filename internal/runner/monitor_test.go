package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shadowmeter/internal/telemetry"
)

// fakeClock is a hand-advanced wall clock: the watchdog tests need
// "slow" trials without slow tests.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) clock() time.Time        { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// runFastTrials drives trials 0..n-1 through the monitor hooks, each
// taking wall on the fake clock, establishing the watchdog's median.
func runFastTrials(m *Monitor, c *fakeClock, n int, wall time.Duration) {
	for i := 0; i < n; i++ {
		m.trialStarted(0, i, int64(100+i))
		c.advance(wall)
		m.trialFinished(0, i, int64(100+i), false, map[string]float64{"captures": 1}, nil, nil)
	}
}

func readFlight(t *testing.T, dir string, trial int) FlightDump {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "flight-"+jsonName(trial)))
	if err != nil {
		t.Fatalf("flight dump missing: %v", err)
	}
	var d FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("decoding flight dump: %v", err)
	}
	return d
}

func jsonName(trial int) string {
	return string(rune('0'+trial)) + ".json"
}

// The completion-time watchdog: after three 1-second trials set the
// median, a trial 10× slower crosses SlowFactor×median at finish and
// must leave a flight dump on disk.
func TestWatchdogDumpsSlowTrialOnCompletion(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	bus := telemetry.NewBus(c.clock, 0)
	m := NewMonitor(MonitorOptions{Clock: c.clock, Bus: bus, FlightDir: dir})
	m.campaignStarted(CampaignInfo{Trials: 5, Workers: 1})
	m.workerStarted(0)

	runFastTrials(m, c, 3, time.Second)

	m.trialStarted(0, 3, 103)
	c.advance(10 * time.Second) // median 1s, factor 4 → 10s is slow
	m.trialFinished(0, 3, 103, false, nil, nil, nil)

	d := readFlight(t, dir, 3)
	if d.Reason != "slow_trial" || !d.Completed || d.Trial != 3 || d.Seed != 103 {
		t.Fatalf("dump = %+v; want completed slow_trial for trial 3 seed 103", d)
	}
	if d.ElapsedSeconds != 10 {
		t.Fatalf("dump elapsed = %v, want 10", d.ElapsedSeconds)
	}
	if snap := m.Campaign(); snap.SlowTrialDumps != 1 {
		t.Fatalf("SlowTrialDumps = %d, want 1", snap.SlowTrialDumps)
	}
	// The dump event reached the bus.
	events, _, _ := bus.Since(0)
	var sawDump bool
	for _, ev := range events {
		if ev.Type == telemetry.EventFlightDump && ev.Trial == 3 {
			sawDump = true
		}
	}
	if !sawDump {
		t.Fatal("no flight_dump event on the bus")
	}
}

// The in-flight watchdog: CheckStalled must dump a trial that is
// already past the slow threshold without waiting for it to finish, and
// dump it at most once. The dump carries the world's recent spans.
func TestCheckStalledDumpsInflightTrialOnce(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	m := NewMonitor(MonitorOptions{Clock: c.clock, FlightDir: dir})
	m.campaignStarted(CampaignInfo{Trials: 5, Workers: 1})
	m.workerStarted(0)

	runFastTrials(m, c, 3, time.Second)

	m.trialStarted(0, 3, 103)
	set := telemetry.NewSet()
	set.Tracer.Start("phase:screen").End()
	m.attachWorld(3, set)

	c.advance(2 * time.Second)
	if n := m.CheckStalled(); n != 0 {
		t.Fatalf("CheckStalled at 2s dumped %d trials, want 0", n)
	}
	c.advance(18 * time.Second)
	if n := m.CheckStalled(); n != 1 {
		t.Fatalf("CheckStalled at 20s dumped %d trials, want 1", n)
	}
	if n := m.CheckStalled(); n != 0 {
		t.Fatalf("second CheckStalled dumped %d more, want 0 (once per trial)", n)
	}

	d := readFlight(t, dir, 3)
	if d.Completed || d.Reason != "slow_trial" {
		t.Fatalf("dump = %+v; want in-flight slow_trial", d)
	}
	if len(d.RecentSpans) == 0 || d.RecentSpans[0].Name != "phase:screen" {
		t.Fatalf("dump RecentSpans = %+v; want the attached world's span ring", d.RecentSpans)
	}
}

func TestPanicAndSigquitDumps(t *testing.T) {
	dir := t.TempDir()
	c := newFakeClock()
	m := NewMonitor(MonitorOptions{Clock: c.clock, FlightDir: dir})
	m.campaignStarted(CampaignInfo{Trials: 4, Workers: 2})

	m.trialStarted(0, 0, 50)
	c.advance(time.Second)
	m.trialPanicked(0, "boom")
	if d := readFlight(t, dir, 0); d.Reason != "panic: boom" || d.Completed {
		t.Fatalf("panic dump = %+v", d)
	}

	m.trialStarted(1, 1, 51)
	if n := m.DumpInflight("sigquit"); n != 2 {
		t.Fatalf("DumpInflight dumped %d trials, want 2 (trials 0 and 1 in flight)", n)
	}
	if d := readFlight(t, dir, 1); d.Reason != "sigquit" {
		t.Fatalf("sigquit dump = %+v", d)
	}
}

func TestOccupancyAccounting(t *testing.T) {
	c := newFakeClock()
	m := NewMonitor(MonitorOptions{Clock: c.clock})
	m.campaignStarted(CampaignInfo{Trials: 2, Workers: 2})
	m.workerStarted(0)
	m.workerStarted(1)

	// Worker 1 runs one 6-second trial spanning the whole campaign;
	// worker 0 idles 1s, runs a 3-second trial, and exits at t=4,
	// waiting 2s on the straggler.
	m.trialStarted(1, 1, 11)
	c.advance(time.Second)
	m.trialStarted(0, 0, 10)
	c.advance(3 * time.Second)
	m.trialFinished(0, 0, 10, false, nil, nil, nil)
	m.workerExited(0)
	c.advance(2 * time.Second)
	m.trialFinished(1, 1, 11, false, nil, nil, nil)
	m.workerExited(1)
	m.campaignFinished()

	rep := m.Occupancy()
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(rep.Workers))
	}
	w0, w1 := rep.Workers[0], rep.Workers[1]
	if w0.BusySeconds != 3 || w0.IdleSeconds != 1 || w0.MergeWaitSeconds != 2 {
		t.Fatalf("worker 0 = %+v; want busy 3, idle 1, merge-wait 2", w0)
	}
	if got, want := w0.BusyFraction, 0.5; got != want {
		t.Fatalf("worker 0 busy fraction = %v, want %v", got, want)
	}
	if w1.BusySeconds != 6 || w1.MergeWaitSeconds != 0 {
		t.Fatalf("worker 1 = %+v; want busy 6, merge-wait 0", w1)
	}
	if rep.CampaignWallSeconds != 6 {
		t.Fatalf("campaign wall = %v, want 6", rep.CampaignWallSeconds)
	}
	if rep.TrialWallSeconds.Count != 2 || rep.TrialWallSeconds.Sum != 9 {
		t.Fatalf("trial wall distribution = %+v; want count 2 sum 9", rep.TrialWallSeconds)
	}

	b, err := m.OccupancyJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"busy_fraction"`)) || !bytes.Contains(b, []byte(`"merge_wait_seconds"`)) {
		t.Fatalf("occupancy JSON missing fields:\n%s", b)
	}
}

// The inertness contract itself: a monitored batch — bus, occupancy,
// flight recorder, the works — must produce byte-identical batch JSON
// and merged telemetry to a bare one. This is the in-process version of
// check.sh's -watch on/off diff.
func TestMonitorDoesNotPerturbBatchOutput(t *testing.T) {
	cfg := Config{Trials: 3, Workers: 2, BaseSeed: 21, Core: tinyCore()}
	bare := Run(cfg)

	bus := telemetry.NewBus(time.Now, 0)
	mon := NewMonitor(MonitorOptions{Clock: time.Now, Bus: bus, FlightDir: t.TempDir(), Scale: "tiny"})
	sub := bus.Subscribe(0)
	defer bus.Unsubscribe(sub)
	cfg.Monitor = mon
	observed := Run(cfg)

	bareJSON, err := bare.JSON()
	if err != nil {
		t.Fatal(err)
	}
	obsJSON, err := observed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bareJSON, obsJSON) {
		t.Fatal("batch JSON differs with a monitor attached")
	}
	if !bytes.Equal(bare.MergedTelemetryJSON(), observed.MergedTelemetryJSON()) {
		t.Fatal("merged telemetry JSON differs with a monitor attached")
	}

	// And the monitor really observed the campaign while staying inert.
	snap := mon.Campaign()
	if !snap.Finished || snap.Completed != 3 || snap.Bitmap != "111" {
		t.Fatalf("campaign snapshot = %+v; want finished 3/3", snap)
	}
	merged, spans := mon.MergedMetrics()
	if len(merged) == 0 || len(spans) == 0 {
		t.Fatal("monitor merged no telemetry")
	}
	var finished int
	events, _, _ := bus.Since(0)
	for _, ev := range events {
		if ev.Type == telemetry.EventTrialFinished {
			finished++
			if ev.Headline["captures"] == 0 {
				t.Fatalf("trial_finished event missing headline: %+v", ev)
			}
		}
	}
	if finished != 3 {
		t.Fatalf("bus carried %d trial_finished events, want 3", finished)
	}
}
