package runner

import (
	"bytes"
	"os"
	"testing"

	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
)

func testStoreManifest(trials int, baseSeed int64) runstore.Manifest {
	return runstore.Manifest{
		Version:    runstore.StoreVersion,
		ConfigHash: CampaignHash(tinyCore()),
		BaseSeed:   baseSeed,
		Trials:     trials,
		Scale:      "test",
	}
}

// TestResumeDeterminism is the acceptance contract of the store: run a
// campaign with persistence, delete the last records (simulating an
// interrupted batch), resume — and get batch JSON and merged telemetry
// byte-identical to the uninterrupted run, with the surviving trials
// served from the store.
func TestResumeDeterminism(t *testing.T) {
	const trials, baseSeed = 4, 21
	cfg := Config{Trials: trials, Workers: 2, BaseSeed: baseSeed, Core: tinyCore()}

	cold := Run(cfg)
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	coldTele := cold.MergedTelemetryJSON()

	// Warm run: same batch, persisted as it goes by the streaming
	// consumer. Workers=2 also exercises the reorder buffer under -race.
	// The store must not change stdout.
	dir := t.TempDir() + "/camp"
	st, err := runstore.Create(dir, testStoreManifest(trials, baseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Store = st
	warm := Run(warmCfg)
	if warm.StoreErr != nil {
		t.Fatalf("persisting trials: %v", warm.StoreErr)
	}
	warmJSON, err := warm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmJSON, coldJSON) {
		t.Error("persisting a batch changed its JSON output")
	}
	if st.Len() != trials {
		t.Fatalf("store holds %d records, want %d", st.Len(), trials)
	}
	// The Result drops events once folded; the retention record lives in
	// the store, so verify it there.
	for _, tr := range warm.Trials {
		if rec, ok, err := st.Get(tr.Trial); err != nil || !ok || len(rec.Events) == 0 {
			t.Errorf("trial %d persisted no events for retention analysis (ok=%v err=%v)", tr.Trial, ok, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupt: drop the last two records from the log. The streaming
	// consumer persists in trial order, so trials 0 and 1 survive — but
	// resume must not depend on that either way.
	offs, err := runstore.LogOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != trials {
		t.Fatalf("log holds %d records, want %d", len(offs), trials)
	}
	if err := os.Truncate(runstore.LogPath(dir), offs[2]); err != nil {
		t.Fatal(err)
	}

	// Resume: the two surviving trials come from the store, the two
	// dropped ones re-run — and the output is byte-identical to cold.
	set := telemetry.NewSet()
	st2, err := runstore.Open(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := cfg
	resumeCfg.Store = st2
	resumeCfg.Resume = true
	resumed := Run(resumeCfg)
	if resumed.StoreErr != nil {
		t.Fatalf("persisting re-run trials: %v", resumed.StoreErr)
	}
	resumedJSON, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedJSON, coldJSON) {
		t.Errorf("resumed batch JSON differs from cold run:\n--- cold\n%s\n--- resumed\n%s", coldJSON, resumedJSON)
	}
	if tele := resumed.MergedTelemetryJSON(); !bytes.Equal(tele, coldTele) {
		t.Error("resumed merged telemetry differs from cold run")
	}

	stats := st2.Stats()
	if stats.ResumeHits != 2 {
		t.Errorf("resume hits = %d, want 2", stats.ResumeHits)
	}
	if stats.RecordsWritten != 2 {
		t.Errorf("records written on resume = %d, want 2", stats.RecordsWritten)
	}
	served, ran := 0, 0
	for _, tr := range resumed.Trials {
		if tr.Resumed {
			served++
		} else {
			ran++
		}
	}
	if served != 2 || ran != 2 {
		t.Errorf("served=%d ran=%d, want 2/2", served, ran)
	}
	if st2.Len() != trials {
		t.Errorf("store holds %d records after resume, want %d", st2.Len(), trials)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingStoreDeterminism sweeps the worker counts the streaming
// pipeline must be invisible at — 1 (pure serial fold), 4 (reorder
// buffer active), 16 (clamped to the trial count) — against a storeless
// serial reference, both persisting cold and serving the whole batch
// back on resume. Batch JSON and merged telemetry must be byte-identical
// in every cell; run under -race this also proves the consumer fold,
// store appends, and monitor-free paths are race-clean.
func TestStreamingStoreDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep is slow")
	}
	const trials, baseSeed = 4, 61
	cfg := Config{Trials: trials, BaseSeed: baseSeed, Core: tinyCore()}

	ref := Run(cfg) // workers: one per trial
	refJSON, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	refTele := ref.MergedTelemetryJSON()

	for _, workers := range []int{1, 4, 16} {
		dir := t.TempDir() + "/camp"
		st, err := runstore.Create(dir, testStoreManifest(trials, baseSeed), nil)
		if err != nil {
			t.Fatal(err)
		}
		warmCfg := cfg
		warmCfg.Workers = workers
		warmCfg.Store = st
		warm := Run(warmCfg)
		if warm.StoreErr != nil {
			t.Fatalf("workers=%d: persisting trials: %v", workers, warm.StoreErr)
		}
		warmJSON, err := warm.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(warmJSON, refJSON) {
			t.Errorf("workers=%d: persisted batch JSON differs from storeless reference", workers)
		}
		if !bytes.Equal(warm.MergedTelemetryJSON(), refTele) {
			t.Errorf("workers=%d: persisted merged telemetry differs from storeless reference", workers)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		st2, err := runstore.Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		resumeCfg := warmCfg
		resumeCfg.Store = st2
		resumeCfg.Resume = true
		resumed := Run(resumeCfg)
		if resumed.StoreErr != nil {
			t.Fatalf("workers=%d: resume store error: %v", workers, resumed.StoreErr)
		}
		resumedJSON, err := resumed.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resumedJSON, refJSON) {
			t.Errorf("workers=%d: fully resumed batch JSON differs from storeless reference", workers)
		}
		if !bytes.Equal(resumed.MergedTelemetryJSON(), refTele) {
			t.Errorf("workers=%d: fully resumed merged telemetry differs from storeless reference", workers)
		}
		if stats := st2.Stats(); stats.ResumeHits != trials {
			t.Errorf("workers=%d: resume hits = %d, want %d", workers, stats.ResumeHits, trials)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactedResumeDeterminism is the compaction acceptance contract:
// a batch resumed over a compacted store must be byte-identical to the
// cold run — both when compaction ran on a partial campaign before the
// resume filled it, and when a complete campaign is compacted and then
// served entirely from the store.
func TestCompactedResumeDeterminism(t *testing.T) {
	const trials, baseSeed = 3, 51
	cfg := Config{Trials: trials, Workers: 2, BaseSeed: baseSeed, Core: tinyCore()}

	cold := Run(cfg)
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	coldTele := cold.MergedTelemetryJSON()

	dir := t.TempDir() + "/camp"
	st, err := runstore.Create(dir, testStoreManifest(trials, baseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Store = st
	if warm := Run(warmCfg); warm.StoreErr != nil {
		t.Fatalf("persisting trials: %v", warm.StoreErr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupt the campaign (drop the last record), compact the partial
	// store, then resume over the compacted log.
	offs, err := runstore.LogOffsets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(runstore.LogPath(dir), offs[2]); err != nil {
		t.Fatal(err)
	}
	st2, err := runstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Compact(); err != nil {
		t.Fatalf("compacting partial campaign: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	st3, err := runstore.Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := cfg
	resumeCfg.Store = st3
	resumeCfg.Resume = true
	resumed := Run(resumeCfg)
	if resumed.StoreErr != nil {
		t.Fatalf("persisting re-run trials: %v", resumed.StoreErr)
	}
	resumedJSON, err := resumed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedJSON, coldJSON) {
		t.Error("batch resumed over a compacted partial store differs from the cold run")
	}
	if stats := st3.Stats(); stats.ResumeHits != 2 {
		t.Errorf("resume hits over compacted partial store = %d, want 2", stats.ResumeHits)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}

	// Compact the now-complete campaign and serve the whole batch from it.
	st4, err := runstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st4.Compact(); err != nil {
		t.Fatalf("compacting complete campaign: %v", err)
	}
	if err := st4.Close(); err != nil {
		t.Fatal(err)
	}
	st5, err := runstore.Open(dir, telemetry.NewSet())
	if err != nil {
		t.Fatal(err)
	}
	fullCfg := cfg
	fullCfg.Store = st5
	fullCfg.Resume = true
	full := Run(fullCfg)
	if full.StoreErr != nil {
		t.Fatalf("store error on fully resumed batch: %v", full.StoreErr)
	}
	fullJSON, err := full.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullJSON, coldJSON) {
		t.Error("batch served entirely from a compacted store differs from the cold run")
	}
	if tele := full.MergedTelemetryJSON(); !bytes.Equal(tele, coldTele) {
		t.Error("merged telemetry served from a compacted store differs from the cold run")
	}
	if stats := st5.Stats(); stats.ResumeHits != trials {
		t.Errorf("resume hits over compacted complete store = %d, want %d", stats.ResumeHits, trials)
	}
	if err := st5.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeRejectsForeignRecords: a record whose seed or config hash
// does not match the campaign plan must be re-run, not served.
func TestResumeMismatchedSeedReruns(t *testing.T) {
	cfg := Config{Trials: 2, Workers: 1, BaseSeed: 31, Core: tinyCore()}
	dir := t.TempDir() + "/camp"
	man := testStoreManifest(2, 31)
	st, err := runstore.Create(dir, man, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Trial 0 stored under a different seed: stale plan, must not be
	// served even though the trial index matches.
	err = st.Append(runstore.TrialRecord{
		Trial: 0, Seed: 99, ConfigHash: man.ConfigHash,
		Headline: map[string]float64{"captures": 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	resumeCfg := cfg
	resumeCfg.Store = st
	resumeCfg.Resume = true
	res := Run(resumeCfg)
	// The re-run of trial 0 collides with the stale record on Append;
	// that surfaces as a store error rather than silently serving stale
	// data or duplicating the record.
	if res.StoreErr == nil {
		t.Error("stale record did not surface a store error")
	}
	if res.Trials[0].Resumed {
		t.Error("trial with mismatched seed was served from the store")
	}
	if stats := st.Stats(); stats.ResumeHits != 0 {
		t.Errorf("resume hits = %d, want 0", stats.ResumeHits)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
