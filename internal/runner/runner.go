// Package runner executes many independent experiment trials in
// parallel and merges their results deterministically.
//
// Measurement studies in this space need repeated independent
// measurements to separate shadowing signal from routing noise, so the
// reproduction's real unit of work is a batch of trials, not one run.
// Each trial is a complete core experiment world with its own seed,
// telemetry set, and virtual clock, executed on a single goroutine
// exactly as a solo run would be — per-seed determinism is untouched.
// Parallelism exists only *between* worlds.
//
// The batch is a streaming pipeline, not collect-then-aggregate: workers
// hand each completed trial over a channel to a single consumer, which
// reorders by trial index, persists the record, folds the headline into
// the online aggregate and the telemetry into the running merge, then
// drops the trial's heavy artifacts. Peak memory is O(workers), not
// O(trials), and because the consumer folds in strict trial order the
// batch output is byte-identical for any worker count. A ticket
// semaphore (released per fold) keeps the producer from racing ahead of
// a straggling trial, bounding the reorder buffer the same way.
package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"shadowmeter/internal/core"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/topology"
)

// Config parameterizes a multi-trial batch.
type Config struct {
	// Trials is the number of independent worlds. Zero or negative means 1.
	Trials int
	// Workers bounds concurrent worlds. Zero or negative means one worker
	// per trial. The choice affects wall-clock time only, never output.
	Workers int
	// BaseSeed seeds trial t with BaseSeed + t.
	BaseSeed int64
	// Core is the per-trial experiment template; its Seed field is
	// overwritten per trial.
	Core core.Config

	// Store, when non-nil, persists each completed trial as it finishes —
	// the batch becomes a checkpointed campaign that survives
	// interruption. The streaming consumer persists trials as it folds
	// them, so records land in trial order regardless of worker count.
	Store *runstore.Store
	// Resume serves trials whose (trial, seed, config-hash) record is
	// already in Store instead of re-running them. Because trials are
	// per-seed deterministic, a resumed batch produces byte-identical
	// output to a cold run. Requires Store.
	Resume bool

	// Slice restricts the run to a window of the trial plan — the shard
	// data plane. The zero value means the full plan [0, Trials). Trial
	// indexes and seeds stay absolute (trial t is still seeded
	// BaseSeed + t), so the union of disjoint slices is byte-identical
	// to one unsharded run.
	Slice Slice

	// ColdTopology disables the shared topology blueprint, rebuilding the
	// full topology per trial. Output is byte-identical either way — the
	// blueprint only shares seed-independent construction — so this exists
	// for the determinism cross-check (TestBlueprintDeterminism) and as an
	// escape hatch.
	ColdTopology bool

	// Monitor, when non-nil, receives live campaign callbacks: bus
	// events, worker-occupancy accounting, and flight-recorder triggers.
	// The monitor only ever receives copies and snapshots taken by each
	// trial's own goroutine, so batch output is byte-identical with or
	// without it (CI-enforced by the -watch on/off diff in check.sh).
	Monitor *Monitor
}

// Slice is a half-open window [From, To) of a campaign's trial plan.
// The zero value means "the whole plan".
type Slice struct {
	From int
	To   int
}

// ShardSlice splits a trial plan of the given size into count balanced
// contiguous slices and returns the index-th: [i·T/N, (i+1)·T/N). Every
// trial belongs to exactly one shard, and slice sizes differ by at most
// one, so any shard geometry partitions the plan.
func ShardSlice(trials, index, count int) Slice {
	return Slice{From: trials * index / count, To: trials * (index + 1) / count}
}

// EffectiveWorkers is the pool size a batch of trials actually runs
// with: the requested count clamped to one worker per trial (a larger
// pool would only idle). Zero or negative requests one worker per trial.
// Exported so cmd/ can report the real pool without re-deriving the
// clamp.
func EffectiveWorkers(trials, workers int) int {
	if workers <= 0 || workers > trials {
		return trials
	}
	return workers
}

// window normalizes cfg.Slice against the trial count: the zero slice
// (or any out-of-range bound) clamps to the full plan.
func window(trials int, s Slice) Slice {
	if s.From < 0 {
		s.From = 0
	}
	if s.To <= 0 || s.To > trials {
		s.To = trials
	}
	if s.From > s.To {
		s.From = s.To
	}
	return s
}

// Trial is the outcome of one world. In a Result only the identity and
// Headline survive: the heavy artifacts below ride the worker→consumer
// channel and are dropped once persisted and folded, so a batch's memory
// does not grow with its trial count.
type Trial struct {
	Trial int   `json:"trial"`
	Seed  int64 `json:"seed"`
	// Headline flattens the report's aggregation-worthy artifacts into
	// named scalars: Figure 3 ratios keyed "figure3_ratio/<country>/<proto>",
	// Table 2/3 counts keyed "table2_located/<proto>" and
	// "table3_observers/<proto>", and campaign totals.
	Headline map[string]float64 `json:"headline"`

	// Metrics and Spans are the trial's telemetry snapshot. They are the
	// worker→consumer payload; in a Result they are nil (the consumer
	// folds them into the batch-wide merge and drops them).
	Metrics []telemetry.Metric    `json:"-"`
	Spans   []telemetry.SpanStats `json:"-"`

	// Events is the compact unsolicited-event log persisted for
	// cross-campaign retention analysis. Populated only when the batch
	// runs against a store; nil in a Result (read it back from the store).
	Events []runstore.EventRecord `json:"-"`
	// Resumed marks a trial served from the campaign store instead of run.
	Resumed bool `json:"-"`
	// StoreErr records a failed persist of this trial.
	StoreErr error `json:"-"`
}

// Stat is the cross-trial aggregate of one headline scalar.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Count is the number of trials whose headline carries the key. A
	// Count below the batch's trial count means the documented
	// missing-keys-contribute-0 quirk applied to this aggregate.
	Count int `json:"count"`
}

// Result is a completed batch.
type Result struct {
	Trials []Trial `json:"trials"`
	// Aggregate maps each headline key (union across trials; trials
	// missing a key contribute 0) to its mean/min/max.
	Aggregate map[string]Stat `json:"aggregate"`
	// StoreErr is the first per-trial persist failure, if any. The batch
	// output is still complete — every trial ran — but the campaign on
	// disk is missing records and must not be trusted for resume.
	StoreErr error `json:"-"`
	// PeakHeapBytes is the consumer's HeapAlloc high-water mark, sampled
	// once per folded trial — the number the memory-flat gate tracks.
	PeakHeapBytes uint64 `json:"-"`

	mergedMetrics []telemetry.Metric
	mergedSpans   []telemetry.SpanStats
}

// finishedTrial is the worker→consumer hand-off: the trial plus the
// store-record fields that only exist while the world is alive.
type finishedTrial struct {
	Trial
	vStartNS int64
	vEndNS   int64
	ran      bool // false when served from the store on resume
}

// Run executes the batch and blocks until every trial completes.
func Run(cfg Config) *Result {
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	span := window(trials, cfg.Slice)
	n := span.To - span.From
	workers := EffectiveWorkers(n, cfg.Workers)
	hash := ""
	if cfg.Store != nil {
		hash = CampaignHash(cfg.Core)
	}
	if !cfg.ColdTopology && cfg.Core.Topo == nil && n > 1 {
		// One blueprint per campaign: trials share the read-only AS/router
		// graph and geo trie, and instantiate only per-world mutable state.
		// A single trial skips the snapshot — cold build is cheaper once.
		cfg.Core.Topo = topology.NewBlueprint(topology.Config{})
	}

	if m := cfg.Monitor; m != nil {
		info := CampaignInfo{Trials: n, First: span.From, Workers: workers, RequestedWorkers: cfg.Workers, BaseSeed: cfg.BaseSeed, ConfigHash: hash}
		if cfg.Store != nil {
			info.StoreDir = cfg.Store.Dir()
		}
		m.campaignStarted(info)
	}

	// The pipeline. A producer goroutine issues trial indexes, workers run
	// worlds and hand finished trials to the consumer below, which runs on
	// this goroutine and folds in strict trial-index order. The ticket
	// semaphore — acquired per issue, released per fold — bounds
	// issued-but-unfolded trials at 2·workers, so a straggling trial
	// stalls the producer instead of growing the reorder buffer. No
	// deadlock: the oldest outstanding trial is never parked in pending
	// (the consumer folds it on arrival), so it is always either queued or
	// running, and folding it releases a ticket.
	jobs := make(chan int)
	completed := make(chan finishedTrial, workers)
	tickets := make(chan struct{}, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if m := cfg.Monitor; m != nil {
				m.workerStarted(w)
				defer m.workerExited(w)
			}
			// One arena per worker: consecutive worlds on this goroutine
			// recycle event and flight allocations. Arenas are never
			// shared between live worlds, so determinism is untouched.
			arena := &netsim.Arena{}
			for t := range jobs {
				completed <- runTrial(cfg, w, t, hash, arena)
			}
		}(w)
	}
	go func() {
		for t := span.From; t < span.To; t++ {
			tickets <- struct{}{}
			jobs <- t
		}
		close(jobs)
		wg.Wait()
		close(completed)
	}()

	res := &Result{Trials: make([]Trial, n)}
	agg := newHeadlineAgg()
	pending := make(map[int]finishedTrial, 2*workers)
	next := span.From
	var ms runtime.MemStats
	for ft := range completed {
		pending[ft.Trial.Trial] = ft
		for {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			foldTrial(cfg, hash, res, agg, cur, next-span.From)
			next++
			// HeapAlloc high-water, sampled once per fold — the number
			// the memory-flat gate in runner tests and check.sh tracks.
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > res.PeakHeapBytes {
				res.PeakHeapBytes = ms.HeapAlloc
			}
			<-tickets
		}
	}
	res.Aggregate = agg.finalize(n)
	if m := cfg.Monitor; m != nil {
		m.setPeakHeap(res.PeakHeapBytes)
		m.campaignFinished()
	}
	return res
}

// foldTrial is the consumer's per-trial step: persist the record, fold
// the headline and telemetry into the running batch state, then drop the
// heavy artifacts so only the headline-bearing Trial survives.
func foldTrial(cfg Config, hash string, res *Result, agg *headlineAgg, ft finishedTrial, i int) {
	tr := ft.Trial
	if cfg.Store != nil && ft.ran {
		// VStart/VEnd bracket the trial's virtual time: the campaign
		// epoch and the simulator clock at completion. They feed the
		// store's columnar headline file for time-windowed analyses.
		ref, err := cfg.Store.AppendIndexed(runstore.TrialRecord{
			Trial:      tr.Trial,
			Seed:       tr.Seed,
			ConfigHash: hash,
			Headline:   tr.Headline,
			VStartNS:   ft.vStartNS,
			VEndNS:     ft.vEndNS,
			Events:     tr.Events,
			Metrics:    tr.Metrics,
			Spans:      tr.Spans,
		})
		tr.StoreErr = err
		if m := cfg.Monitor; m != nil {
			m.storeAppended(tr.Trial, ref, err)
		}
		if err != nil && res.StoreErr == nil {
			res.StoreErr = fmt.Errorf("trial %d: %w", tr.Trial, err)
		}
	}
	agg.fold(tr.Headline)
	res.mergedMetrics = telemetry.MergeSnapshots(res.mergedMetrics, tr.Metrics)
	res.mergedSpans = telemetry.MergeSpans(res.mergedSpans, tr.Spans)
	tr.Metrics, tr.Spans, tr.Events = nil, nil, nil
	res.Trials[i] = tr
}

// CampaignHash fingerprints the per-trial configuration: everything in
// the core config except the seed, which varies per trial and lives in
// each record instead. Two batches share a campaign store only if their
// hashes match.
func CampaignHash(cfg core.Config) string {
	cfg.Seed = 0
	h, err := runstore.HashJSON(cfg)
	if err != nil {
		// core.Config is plain data (ints, durations, a time.Time); its
		// JSON encoding cannot fail.
		panic(fmt.Sprintf("runner: hashing core config: %v", err))
	}
	return h
}

// runTrial executes one world start to finish on the calling goroutine —
// or, on resume, serves the trial from the store, which is
// indistinguishable in batch output because trials are per-seed
// deterministic. As the per-trial root, nothing it reaches may write
// cross-world shared state (enforced by the crossworld analyzer); the
// monitor hooks hand copies outward, never reach inward.
//
//shadowlint:trialpath
func runTrial(cfg Config, worker, t int, hash string, arena *netsim.Arena) finishedTrial {
	seed := cfg.BaseSeed + int64(t)
	if m := cfg.Monitor; m != nil {
		m.trialStarted(worker, t, seed)
		defer func() {
			// A panicking trial gets a flight dump before the panic
			// propagates — the world's span ring is the crash context.
			if r := recover(); r != nil {
				m.trialPanicked(t, fmt.Sprint(r))
				panic(r)
			}
		}()
	}
	if cfg.Store != nil && cfg.Resume {
		// A Get error means the index points at a frame that no longer
		// decodes; fall through and re-run — the Append collision below
		// then surfaces the store corruption as StoreErr instead of
		// silently dropping it.
		if rec, ok, err := cfg.Store.Get(t); err == nil && ok && rec.Seed == seed && rec.ConfigHash == hash {
			cfg.Store.NoteResumeHit()
			if m := cfg.Monitor; m != nil {
				m.trialFinished(worker, t, seed, true, rec.Headline, rec.Metrics, rec.Spans)
			}
			return finishedTrial{Trial: Trial{
				Trial:    t,
				Seed:     seed,
				Headline: rec.Headline,
				Metrics:  rec.Metrics,
				Spans:    rec.Spans,
				Resumed:  true,
			}}
		}
	}

	coreCfg := cfg.Core
	coreCfg.Seed = seed
	// The worker's arena rides the core config (hash-excluded) down to
	// the world's network, recycling the previous trial's event and
	// flight allocations.
	coreCfg.Arena = arena
	e := core.NewExperiment(coreCfg)
	if m := cfg.Monitor; m != nil {
		m.attachWorld(t, e.Telemetry())
	}
	e.ScreenPairResolvers()
	e.RunPhaseI()
	e.RunPhaseII()
	report := e.Compile()
	tele := e.Telemetry()
	ft := finishedTrial{
		Trial: Trial{
			Trial:    t,
			Seed:     seed,
			Headline: headlineFrom(report),
			Metrics:  tele.Registry.Snapshot(),
			Spans:    tele.Tracer.Summary(),
		},
		vStartNS: e.World.Cfg.Start.UnixNano(),
		vEndNS:   e.World.Net.Now().UnixNano(),
		ran:      true,
	}
	if cfg.Store != nil {
		ft.Events = eventRecords(e.EventsPhaseI)
	}
	if m := cfg.Monitor; m != nil {
		m.trialFinished(worker, t, seed, false, ft.Headline, ft.Metrics, ft.Spans)
	}
	// The world is finished: reclaim its event/flight allocations for
	// this worker's next trial.
	arena.Harvest(e.World.Net)
	return ft
}

// eventRecords compacts the Phase I unsolicited events into the
// replayable form the store persists for retention analysis. Phase II
// events are TTL-limited location probes, not landscape observations,
// so they stay out of the longitudinal record.
func eventRecords(events []correlate.Unsolicited) []runstore.EventRecord {
	out := make([]runstore.EventRecord, 0, len(events))
	for _, u := range events {
		out = append(out, runstore.EventRecord{
			Label:        u.Sent.Label,
			SentProto:    u.Sent.Protocol.String(),
			CaptureProto: u.Capture.Protocol.String(),
			DstName:      u.Sent.DstName,
			DelayNS:      int64(u.Delay),
		})
	}
	return out
}

// headlineFrom flattens one report into the named scalars the batch
// aggregates: campaign totals, the Figure 3 problematic-path ratios, and
// the Table 2/3 observer counts.
func headlineFrom(r *core.Report) map[string]float64 {
	h := map[string]float64{
		"sent_decoys":       float64(r.CorrelatorStats.SentDecoys),
		"captures":          float64(r.CorrelatorStats.Captures),
		"unsolicited":       float64(r.CorrelatorStats.Unsolicited),
		"label_collisions":  float64(r.CorrelatorStats.LabelCollisions),
		"packets_sent":      float64(r.NetStats.PacketsSent),
		"observer_addrs":    float64(r.TotalObserverAddrs()),
		"cn_observer_share": r.CNObserverFraction(),
		"top5_coverage":     r.Top5Coverage,
	}
	for _, row := range r.Figure3 {
		h[fmt.Sprintf("figure3_ratio/%s/%s", row.Country, row.Protocol)] = row.Ratio
	}
	for dst, ratio := range r.DestRatios {
		h["dest_ratio/"+dst] = ratio
	}
	for _, row := range r.Table2 {
		h["table2_located/"+row.Protocol.String()] = float64(row.Count)
	}
	for proto, addrs := range r.ObserverAddrs {
		h["table3_observers/"+proto.String()] = float64(len(addrs))
	}
	return h
}

// headlineAgg folds per-trial headlines into the cross-trial aggregate
// one trial at a time — the streaming replacement for the historical
// whole-batch pass, with bit-identical output. Keys absent from a trial
// contribute 0 to mean, min, and max: adding 0.0 is an exact identity
// for the running sum, so only the present values need summing (in trial
// order, since float addition is not associative), and finalize clamps
// min/max toward 0 for any key missing from at least one trial.
type headlineAgg struct {
	acc map[string]*statAcc
}

// statAcc is one key's running state: exact sum, observed extrema, and
// how many trials carried the key.
type statAcc struct {
	sum, min, max float64
	count         int
}

func newHeadlineAgg() *headlineAgg {
	return &headlineAgg{acc: make(map[string]*statAcc)}
}

// fold merges one trial's headline. Trials must be folded in trial order
// for the sums to be bit-identical across worker counts.
//
//shadowlint:hotpath
func (a *headlineAgg) fold(h map[string]float64) {
	for k, v := range h {
		st := a.acc[k]
		if st == nil {
			a.acc[k] = &statAcc{sum: v, min: v, max: v, count: 1}
			continue
		}
		st.sum += v
		st.count++
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
	}
}

// finalize produces the aggregate for a batch of n folded trials.
func (a *headlineAgg) finalize(n int) map[string]Stat {
	out := make(map[string]Stat, len(a.acc))
	for k, st := range a.acc {
		s := Stat{Mean: st.sum / float64(n), Min: st.min, Max: st.max, Count: st.count}
		if st.count < n {
			// Some trial lacked the key and contributed an implicit 0.
			if s.Min > 0 {
				s.Min = 0
			}
			if s.Max < 0 {
				s.Max = 0
			}
		}
		out[k] = s
	}
	return out
}

// aggregate folds per-trial headlines into mean/min/max per key — the
// batch-shaped wrapper over the streaming fold, kept as the reference
// implementation the determinism tests compare against.
func aggregate(trials []Trial) map[string]Stat {
	agg := newHeadlineAgg()
	for _, t := range trials {
		agg.fold(t.Headline)
	}
	return agg.finalize(len(trials))
}

// JSON renders the batch — per-trial headlines plus the cross-trial
// aggregate — with deterministic key order (encoding/json sorts map
// keys), so identical seeds produce byte-identical output at any worker
// count.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MergedTelemetryJSON folds every trial's telemetry into one export in
// the shape of telemetry.Set.ExportJSON: counters and histogram buckets
// sum across worlds, gauges keep their high-water mark, spans sum. A
// Run-built Result serves the consumer's incrementally merged
// accumulators (the per-trial snapshots are gone); a hand-built Result
// falls back to folding whatever the Trials still carry — pairwise
// left-folds and the whole-batch merge are byte-identical.
func (r *Result) MergedTelemetryJSON() []byte {
	metrics, spans := r.mergedMetrics, r.mergedSpans
	if metrics == nil && spans == nil {
		for _, t := range r.Trials {
			metrics = telemetry.MergeSnapshots(metrics, t.Metrics)
			spans = telemetry.MergeSpans(spans, t.Spans)
		}
	}
	return telemetry.ExportMergedJSON(metrics, spans)
}
