// Package runner executes many independent experiment trials in
// parallel and merges their results deterministically.
//
// Measurement studies in this space need repeated independent
// measurements to separate shadowing signal from routing noise, so the
// reproduction's real unit of work is a batch of trials, not one run.
// Each trial is a complete core experiment world with its own seed,
// telemetry set, and virtual clock, executed on a single goroutine
// exactly as a solo run would be — per-seed determinism is untouched.
// Parallelism exists only *between* worlds: a bounded worker pool picks
// trials off a queue, and results land in a slice indexed by trial
// number, so the merged output is byte-identical for any worker count.
package runner

import (
	"encoding/json"
	"fmt"
	"sync"

	"shadowmeter/internal/core"
	"shadowmeter/internal/correlate"
	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/topology"
)

// Config parameterizes a multi-trial batch.
type Config struct {
	// Trials is the number of independent worlds. Zero or negative means 1.
	Trials int
	// Workers bounds concurrent worlds. Zero or negative means one worker
	// per trial. The choice affects wall-clock time only, never output.
	Workers int
	// BaseSeed seeds trial t with BaseSeed + t.
	BaseSeed int64
	// Core is the per-trial experiment template; its Seed field is
	// overwritten per trial.
	Core core.Config

	// Store, when non-nil, persists each completed trial as it finishes —
	// the batch becomes a checkpointed campaign that survives
	// interruption. Records land in completion order (worker-dependent),
	// but the store indexes by trial number, so resume and the batch
	// output stay deterministic.
	Store *runstore.Store
	// Resume serves trials whose (trial, seed, config-hash) record is
	// already in Store instead of re-running them. Because trials are
	// per-seed deterministic, a resumed batch produces byte-identical
	// output to a cold run. Requires Store.
	Resume bool

	// Slice restricts the run to a window of the trial plan — the shard
	// data plane. The zero value means the full plan [0, Trials). Trial
	// indexes and seeds stay absolute (trial t is still seeded
	// BaseSeed + t), so the union of disjoint slices is byte-identical
	// to one unsharded run.
	Slice Slice

	// ColdTopology disables the shared topology blueprint, rebuilding the
	// full topology per trial. Output is byte-identical either way — the
	// blueprint only shares seed-independent construction — so this exists
	// for the determinism cross-check (TestBlueprintDeterminism) and as an
	// escape hatch.
	ColdTopology bool

	// Monitor, when non-nil, receives live campaign callbacks: bus
	// events, worker-occupancy accounting, and flight-recorder triggers.
	// The monitor only ever receives copies and snapshots taken by each
	// trial's own goroutine, so batch output is byte-identical with or
	// without it (CI-enforced by the -watch on/off diff in check.sh).
	Monitor *Monitor
}

// Slice is a half-open window [From, To) of a campaign's trial plan.
// The zero value means "the whole plan".
type Slice struct {
	From int
	To   int
}

// ShardSlice splits a trial plan of the given size into count balanced
// contiguous slices and returns the index-th: [i·T/N, (i+1)·T/N). Every
// trial belongs to exactly one shard, and slice sizes differ by at most
// one, so any shard geometry partitions the plan.
func ShardSlice(trials, index, count int) Slice {
	return Slice{From: trials * index / count, To: trials * (index + 1) / count}
}

// window normalizes cfg.Slice against the trial count: the zero slice
// (or any out-of-range bound) clamps to the full plan.
func window(trials int, s Slice) Slice {
	if s.From < 0 {
		s.From = 0
	}
	if s.To <= 0 || s.To > trials {
		s.To = trials
	}
	if s.From > s.To {
		s.From = s.To
	}
	return s
}

// Trial is the outcome of one world.
type Trial struct {
	Trial int   `json:"trial"`
	Seed  int64 `json:"seed"`
	// Headline flattens the report's aggregation-worthy artifacts into
	// named scalars: Figure 3 ratios keyed "figure3_ratio/<country>/<proto>",
	// Table 2/3 counts keyed "table2_located/<proto>" and
	// "table3_observers/<proto>", and campaign totals.
	Headline map[string]float64 `json:"headline"`

	// Full per-trial artifacts, retained for callers but kept out of the
	// batch JSON (a Report does not round-trip compactly). Report is nil
	// for trials served from the store on resume.
	Report  *core.Report          `json:"-"`
	Metrics []telemetry.Metric    `json:"-"`
	Spans   []telemetry.SpanStats `json:"-"`

	// Events is the compact unsolicited-event log persisted for
	// cross-campaign retention analysis. Populated only when the batch
	// runs against a store.
	Events []runstore.EventRecord `json:"-"`
	// StoreErr records a failed persist of this trial.
	StoreErr error `json:"-"`
}

// Stat is the cross-trial aggregate of one headline scalar.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Result is a completed batch.
type Result struct {
	Trials []Trial `json:"trials"`
	// Aggregate maps each headline key (union across trials; trials
	// missing a key contribute 0) to its mean/min/max.
	Aggregate map[string]Stat `json:"aggregate"`
	// StoreErr is the first per-trial persist failure, if any. The batch
	// output is still complete — every trial ran — but the campaign on
	// disk is missing records and must not be trusted for resume.
	StoreErr error `json:"-"`
}

// Run executes the batch and blocks until every trial completes.
func Run(cfg Config) *Result {
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	span := window(trials, cfg.Slice)
	n := span.To - span.From
	workers := cfg.Workers
	if workers <= 0 || workers > n {
		workers = n
	}
	hash := ""
	if cfg.Store != nil {
		hash = CampaignHash(cfg.Core)
	}
	if !cfg.ColdTopology && cfg.Core.Topo == nil && n > 1 {
		// One blueprint per campaign: trials share the read-only AS/router
		// graph and geo trie, and instantiate only per-world mutable state.
		// A single trial skips the snapshot — cold build is cheaper once.
		cfg.Core.Topo = topology.NewBlueprint(topology.Config{})
	}

	if m := cfg.Monitor; m != nil {
		info := CampaignInfo{Trials: n, First: span.From, Workers: workers, BaseSeed: cfg.BaseSeed, ConfigHash: hash}
		if cfg.Store != nil {
			info.StoreDir = cfg.Store.Dir()
		}
		m.campaignStarted(info)
	}

	results := make([]Trial, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if m := cfg.Monitor; m != nil {
				m.workerStarted(w)
				defer m.workerExited(w)
			}
			for t := range jobs {
				results[t-span.From] = runTrial(cfg, w, t, hash)
			}
		}(w)
	}
	for t := span.From; t < span.To; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	if m := cfg.Monitor; m != nil {
		m.campaignFinished()
	}

	res := &Result{Trials: results, Aggregate: aggregate(results)}
	for _, tr := range results {
		if tr.StoreErr != nil {
			res.StoreErr = fmt.Errorf("trial %d: %w", tr.Trial, tr.StoreErr)
			break
		}
	}
	return res
}

// CampaignHash fingerprints the per-trial configuration: everything in
// the core config except the seed, which varies per trial and lives in
// each record instead. Two batches share a campaign store only if their
// hashes match.
func CampaignHash(cfg core.Config) string {
	cfg.Seed = 0
	h, err := runstore.HashJSON(cfg)
	if err != nil {
		// core.Config is plain data (ints, durations, a time.Time); its
		// JSON encoding cannot fail.
		panic(fmt.Sprintf("runner: hashing core config: %v", err))
	}
	return h
}

// runTrial executes one world start to finish on the calling goroutine —
// or, on resume, serves the trial from the store, which is
// indistinguishable in batch output because trials are per-seed
// deterministic. As the per-trial root, nothing it reaches may write
// cross-world shared state (enforced by the crossworld analyzer); the
// monitor hooks hand copies outward, never reach inward.
//
//shadowlint:trialpath
func runTrial(cfg Config, worker, t int, hash string) Trial {
	seed := cfg.BaseSeed + int64(t)
	if m := cfg.Monitor; m != nil {
		m.trialStarted(worker, t, seed)
		defer func() {
			// A panicking trial gets a flight dump before the panic
			// propagates — the world's span ring is the crash context.
			if r := recover(); r != nil {
				m.trialPanicked(t, fmt.Sprint(r))
				panic(r)
			}
		}()
	}
	if cfg.Store != nil && cfg.Resume {
		// A Get error means the index points at a frame that no longer
		// decodes; fall through and re-run — the Append collision below
		// then surfaces the store corruption as StoreErr instead of
		// silently dropping it.
		if rec, ok, err := cfg.Store.Get(t); err == nil && ok && rec.Seed == seed && rec.ConfigHash == hash {
			cfg.Store.NoteResumeHit()
			if m := cfg.Monitor; m != nil {
				m.trialFinished(worker, t, seed, true, rec.Headline, rec.Metrics, rec.Spans)
			}
			return Trial{
				Trial:    t,
				Seed:     seed,
				Headline: rec.Headline,
				Metrics:  rec.Metrics,
				Spans:    rec.Spans,
				Events:   rec.Events,
			}
		}
	}

	coreCfg := cfg.Core
	coreCfg.Seed = seed
	e := core.NewExperiment(coreCfg)
	if m := cfg.Monitor; m != nil {
		m.attachWorld(t, e.Telemetry())
	}
	e.ScreenPairResolvers()
	e.RunPhaseI()
	e.RunPhaseII()
	report := e.Compile()
	tele := e.Telemetry()
	tr := Trial{
		Trial:    t,
		Seed:     seed,
		Headline: headlineFrom(report),
		Report:   report,
		Metrics:  tele.Registry.Snapshot(),
		Spans:    tele.Tracer.Summary(),
	}
	if cfg.Store != nil {
		tr.Events = eventRecords(e.EventsPhaseI)
		// VStart/VEnd bracket the trial's virtual time: the campaign
		// epoch and the simulator clock at completion. They feed the
		// store's columnar headline file for time-windowed analyses.
		ref, err := cfg.Store.AppendIndexed(runstore.TrialRecord{
			Trial:      t,
			Seed:       seed,
			ConfigHash: hash,
			Headline:   tr.Headline,
			VStartNS:   e.World.Cfg.Start.UnixNano(),
			VEndNS:     e.World.Net.Now().UnixNano(),
			Events:     tr.Events,
			Metrics:    tr.Metrics,
			Spans:      tr.Spans,
		})
		tr.StoreErr = err
		if m := cfg.Monitor; m != nil {
			m.storeAppended(t, ref, err)
		}
	}
	if m := cfg.Monitor; m != nil {
		m.trialFinished(worker, t, seed, false, tr.Headline, tr.Metrics, tr.Spans)
	}
	return tr
}

// eventRecords compacts the Phase I unsolicited events into the
// replayable form the store persists for retention analysis. Phase II
// events are TTL-limited location probes, not landscape observations,
// so they stay out of the longitudinal record.
func eventRecords(events []correlate.Unsolicited) []runstore.EventRecord {
	out := make([]runstore.EventRecord, 0, len(events))
	for _, u := range events {
		out = append(out, runstore.EventRecord{
			Label:        u.Sent.Label,
			SentProto:    u.Sent.Protocol.String(),
			CaptureProto: u.Capture.Protocol.String(),
			DstName:      u.Sent.DstName,
			DelayNS:      int64(u.Delay),
		})
	}
	return out
}

// headlineFrom flattens one report into the named scalars the batch
// aggregates: campaign totals, the Figure 3 problematic-path ratios, and
// the Table 2/3 observer counts.
func headlineFrom(r *core.Report) map[string]float64 {
	h := map[string]float64{
		"sent_decoys":       float64(r.CorrelatorStats.SentDecoys),
		"captures":          float64(r.CorrelatorStats.Captures),
		"unsolicited":       float64(r.CorrelatorStats.Unsolicited),
		"label_collisions":  float64(r.CorrelatorStats.LabelCollisions),
		"packets_sent":      float64(r.NetStats.PacketsSent),
		"observer_addrs":    float64(r.TotalObserverAddrs()),
		"cn_observer_share": r.CNObserverFraction(),
		"top5_coverage":     r.Top5Coverage,
	}
	for _, row := range r.Figure3 {
		h[fmt.Sprintf("figure3_ratio/%s/%s", row.Country, row.Protocol)] = row.Ratio
	}
	for dst, ratio := range r.DestRatios {
		h["dest_ratio/"+dst] = ratio
	}
	for _, row := range r.Table2 {
		h["table2_located/"+row.Protocol.String()] = float64(row.Count)
	}
	for proto, addrs := range r.ObserverAddrs {
		h["table3_observers/"+proto.String()] = float64(len(addrs))
	}
	return h
}

// aggregate folds per-trial headlines into mean/min/max per key. The
// mean sums in trial order, so the result is bit-identical across runs
// and worker counts.
func aggregate(trials []Trial) map[string]Stat {
	keys := make(map[string]bool)
	for _, t := range trials {
		for k := range t.Headline {
			keys[k] = true
		}
	}
	out := make(map[string]Stat, len(keys))
	for k := range keys {
		var sum float64
		st := Stat{}
		for i, t := range trials {
			v := t.Headline[k] // missing key contributes 0
			sum += v
			if i == 0 || v < st.Min {
				st.Min = v
			}
			if i == 0 || v > st.Max {
				st.Max = v
			}
		}
		st.Mean = sum / float64(len(trials))
		out[k] = st
	}
	return out
}

// JSON renders the batch — per-trial headlines plus the cross-trial
// aggregate — with deterministic key order (encoding/json sorts map
// keys), so identical seeds produce byte-identical output at any worker
// count.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MergedTelemetryJSON folds every trial's telemetry into one export in
// the shape of telemetry.Set.ExportJSON: counters and histogram buckets
// sum across worlds, gauges keep their high-water mark, spans sum.
func (r *Result) MergedTelemetryJSON() []byte {
	snaps := make([][]telemetry.Metric, 0, len(r.Trials))
	spans := make([][]telemetry.SpanStats, 0, len(r.Trials))
	for _, t := range r.Trials {
		snaps = append(snaps, t.Metrics)
		spans = append(spans, t.Spans)
	}
	return telemetry.ExportMergedJSON(telemetry.MergeSnapshots(snaps...), telemetry.MergeSpans(spans...))
}
