package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shadowmeter/internal/runstore"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func shardManifest(trials int, baseSeed int64, index, count int) runstore.Manifest {
	m := testStoreManifest(trials, baseSeed)
	m.ShardIndex = index
	m.ShardCount = count
	return m
}

// TestShardSlice pins the partition math: every geometry covers the
// plan exactly once with balanced contiguous windows.
func TestShardSlice(t *testing.T) {
	for trials := 1; trials <= 9; trials++ {
		for count := 1; count <= trials; count++ {
			covered := make([]int, trials)
			prevTo := 0
			for i := 0; i < count; i++ {
				s := ShardSlice(trials, i, count)
				if s.From != prevTo {
					t.Fatalf("ShardSlice(%d, %d, %d).From = %d, want %d (contiguous)", trials, i, count, s.From, prevTo)
				}
				if size := s.To - s.From; size < trials/count || size > trials/count+1 {
					t.Errorf("ShardSlice(%d, %d, %d) has %d trials, want balanced", trials, i, count, size)
				}
				for tr := s.From; tr < s.To; tr++ {
					covered[tr]++
				}
				prevTo = s.To
			}
			if prevTo != trials {
				t.Fatalf("ShardSlice(%d, _, %d) ends at %d, want %d", trials, count, prevTo, trials)
			}
			for tr, n := range covered {
				if n != 1 {
					t.Errorf("trials=%d count=%d: trial %d covered %d times", trials, count, tr, n)
				}
			}
		}
	}
}

// TestShardUnionDeterminism is the PR's acceptance invariant: partition
// a campaign into N shard stores, fold them with Merge, and the merged
// store is indistinguishable from the unsharded run — batch JSON and
// merged telemetry byte-identical to the cold run (every trial a store
// hit), every record equal to the unsharded warm store's, and the
// merged log byte-identical to a serial unsharded campaign log.
func TestShardUnionDeterminism(t *testing.T) {
	const trials, baseSeed = 4, 51
	cfg := Config{Trials: trials, Workers: 2, BaseSeed: baseSeed, Core: tinyCore()}

	cold := Run(cfg)
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	coldTele := cold.MergedTelemetryJSON()

	// Serial unsharded campaign: appends land in trial order, the byte
	// reference for merged logs.
	serialDir := filepath.Join(t.TempDir(), "serial")
	serialStore, err := runstore.Create(serialDir, testStoreManifest(trials, baseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := cfg
	serialCfg.Workers = 1
	serialCfg.Store = serialStore
	if res := Run(serialCfg); res.StoreErr != nil {
		t.Fatal(res.StoreErr)
	}
	if err := serialStore.Close(); err != nil {
		t.Fatal(err)
	}
	serialLog, err := os.ReadFile(filepath.Join(serialDir, "trials.log"))
	if err != nil {
		t.Fatal(err)
	}
	serialRecords := readAllRecords(t, serialDir)

	for _, count := range []int{1, 2, trials} {
		base := t.TempDir()
		var shardDirs []string
		for i := 0; i < count; i++ {
			shardDirs = append(shardDirs, filepath.Join(base, fmt.Sprintf("shard%d", i)))
		}
		for i := 0; i < count; i++ {
			st, err := runstore.Create(shardDirs[i], shardManifest(trials, baseSeed, i, count), nil)
			if err != nil {
				t.Fatal(err)
			}
			scfg := cfg
			scfg.Store = st
			scfg.Slice = ShardSlice(trials, i, count)
			if res := Run(scfg); res.StoreErr != nil {
				t.Fatalf("shard %d/%d: %v", i, count, res.StoreErr)
			}
			want := scfg.Slice.To - scfg.Slice.From
			if st.Len() != want {
				t.Fatalf("shard %d/%d holds %d records, want %d", i, count, st.Len(), want)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}

		merged := filepath.Join(base, "merged")
		man, stats, err := runstore.Merge(merged, shardDirs, nil)
		if err != nil {
			t.Fatalf("merging %d shards: %v", count, err)
		}
		if man.Trials != trials || man.MergedFrom != count || man.ShardCount != 0 {
			t.Errorf("merged manifest = %+v", man)
		}
		if stats.Records != trials || stats.Dropped != 0 || stats.Superseded != 0 {
			t.Errorf("merge stats for %d shards = %+v", count, stats)
		}

		// Byte-level: the merged log equals the serial unsharded log.
		mergedLog, err := os.ReadFile(filepath.Join(merged, "trials.log"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mergedLog, serialLog) {
			t.Errorf("%d-shard merged log differs from the unsharded serial log", count)
		}

		// Record-level: every trial equal to the unsharded warm store's.
		for i, rec := range readAllRecords(t, merged) {
			if rec.Trial != serialRecords[i].Trial || rec.Seed != serialRecords[i].Seed ||
				!bytes.Equal(mustJSON(t, rec), mustJSON(t, serialRecords[i])) {
				t.Errorf("%d-shard merge: record %d differs from the unsharded store", count, i)
			}
		}

		// Output-level: resuming the merged store reproduces the cold
		// batch byte-for-byte without running a single trial.
		st, err := runstore.OpenOrCreate(merged, testStoreManifest(trials, baseSeed), nil)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Store = st
		rcfg.Resume = true
		res := Run(rcfg)
		if res.StoreErr != nil {
			t.Fatal(res.StoreErr)
		}
		gotJSON, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, coldJSON) {
			t.Errorf("%d-shard merge: resumed batch JSON differs from the cold run", count)
		}
		if !bytes.Equal(res.MergedTelemetryJSON(), coldTele) {
			t.Errorf("%d-shard merge: resumed merged telemetry differs from the cold run", count)
		}
		if hits := st.Stats().ResumeHits; hits != trials {
			t.Errorf("%d-shard merge: resume hits = %d, want %d", count, hits, trials)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCampaignExtension grows a finished 2-trial campaign to 4 trials
// via the manifest-upgrade path and checks the result is byte-identical
// to a cold 4-trial run, with the original trials served from the store.
func TestCampaignExtension(t *testing.T) {
	const baseSeed = 77
	dir := filepath.Join(t.TempDir(), "camp")
	st, err := runstore.Create(dir, testStoreManifest(2, baseSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res := Run(Config{Trials: 2, Workers: 2, BaseSeed: baseSeed, Core: tinyCore(), Store: st}); res.StoreErr != nil {
		t.Fatal(res.StoreErr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-opening with a larger plan is an extension, not a mismatch.
	ext, err := runstore.OpenOrCreate(dir, testStoreManifest(4, baseSeed), nil)
	if err != nil {
		t.Fatalf("extension refused: %v", err)
	}
	if ext.Manifest().Trials != 4 {
		t.Fatalf("extended manifest trials = %d, want 4", ext.Manifest().Trials)
	}
	res := Run(Config{Trials: 4, Workers: 2, BaseSeed: baseSeed, Core: tinyCore(), Store: ext, Resume: true})
	if res.StoreErr != nil {
		t.Fatal(res.StoreErr)
	}
	extJSON, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if hits := ext.Stats().ResumeHits; hits != 2 {
		t.Errorf("resume hits = %d, want 2 (the original trials)", hits)
	}
	if err := ext.Close(); err != nil {
		t.Fatal(err)
	}

	cold := Run(Config{Trials: 4, Workers: 2, BaseSeed: baseSeed, Core: tinyCore()})
	coldJSON, err := cold.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(extJSON, coldJSON) {
		t.Error("extended campaign output differs from the cold run at the larger count")
	}
	if res.MergedTelemetryJSON() == nil || !bytes.Equal(res.MergedTelemetryJSON(), cold.MergedTelemetryJSON()) {
		t.Error("extended campaign merged telemetry differs from the cold run")
	}
}

func readAllRecords(t *testing.T, dir string) []runstore.TrialRecord {
	t.Helper()
	st, err := runstore.OpenReadOnly(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs, err := st.Records()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}
