// Live campaign observability: the Monitor rides beside the worker pool
// and turns its milestones into three products — a stream of bus events
// for shadowmeter -watch, per-worker occupancy accounting for the
// multi-core diagnostics in BENCH_*.json, and flight-recorder dumps when
// a trial panics, runs suspiciously long, or the operator sends SIGQUIT.
//
// The monitor is strictly read-beside: runner hooks hand it copies
// (headline maps, metric snapshots taken by the trial's own goroutine),
// and every consumer-facing method returns fresh copies or merges of
// those snapshots. Nothing the monitor — or anything reading it — does
// can change a trial's result, which is why batch output is
// byte-identical with the live plane on or off (CI-enforced).
package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"shadowmeter/internal/runstore"
	"shadowmeter/internal/telemetry"
)

// MonitorOptions configures a Monitor.
type MonitorOptions struct {
	// Clock supplies wall time for occupancy and watchdog accounting.
	// cmd/ binaries pass time.Now; nil disables timing (all durations
	// zero) but keeps the event stream and completion tracking.
	Clock telemetry.Clock
	// Bus, when non-nil, receives the campaign event stream.
	Bus *telemetry.Bus
	// FlightDir, when non-empty, is where flight dumps land as
	// flight-<trial>.json. Empty disables the flight recorder.
	FlightDir string
	// SlowFactor is the watchdog threshold: a trial is "slow" when its
	// wall time exceeds SlowFactor × the rolling median of completed
	// trials. <= 0 means DefaultSlowFactor.
	SlowFactor float64
	// Scale annotates the campaign snapshot (cosmetic; the runner does
	// not know the CLI's scale name).
	Scale string
}

// DefaultSlowFactor is the watchdog's slow-trial multiplier over the
// rolling median trial wall time.
const DefaultSlowFactor = 4.0

// watchdogMinSamples is how many completed trials the watchdog needs
// before it trusts the median enough to call anything slow.
const watchdogMinSamples = 3

// trialWallBounds buckets per-trial wall seconds for the occupancy
// histogram (upper bounds, seconds).
var trialWallBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// CampaignInfo identifies the campaign being observed.
type CampaignInfo struct {
	// Trials counts the trials this run executes. For shard/slice runs
	// that is the window length, not the campaign's full plan.
	Trials int `json:"trials"`
	// First is the absolute index of the first trial in this run's
	// window — non-zero for shard runs, whose plan is
	// [First, First+Trials). Bus events and the Inflight list carry
	// absolute trial indexes; the bitmap covers only the window.
	First int `json:"first_trial,omitempty"`
	// Workers is the effective pool size: the requested count clamped to
	// the window's trial count (a pool larger than the plan would idle).
	Workers int `json:"workers"`
	// RequestedWorkers is the -workers value as configured, before the
	// clamp; 0 means "one per trial". When it differs from Workers the
	// clamp fired — visible here and in the occupancy report so speedup
	// series never divide by a phantom worker count.
	RequestedWorkers int    `json:"requested_workers,omitempty"`
	BaseSeed         int64  `json:"base_seed"`
	ConfigHash       string `json:"config_hash,omitempty"`
	Scale            string `json:"scale,omitempty"`
	StoreDir         string `json:"store_dir,omitempty"`
}

// CampaignSnapshot is the /campaign view: identity plus live progress.
type CampaignSnapshot struct {
	CampaignInfo
	// Completed counts finished trials (monotonic).
	Completed int `json:"completed"`
	// Pending counts trials not yet handed to a worker.
	Pending int `json:"pending"`
	// Inflight lists trial indexes currently running, sorted.
	Inflight []int `json:"inflight"`
	// Bitmap is one character per trial: '1' done, 'r' running, '0'
	// pending — the completion bitmap at a glance.
	Bitmap string `json:"bitmap"`
	// ElapsedSeconds is wall time since the campaign started.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ETASeconds extrapolates remaining wall time from the completion
	// rate; -1 while unknown (nothing completed yet, or no clock).
	ETASeconds float64 `json:"eta_seconds"`
	// ResumedTrials counts trials served from the campaign store.
	ResumedTrials int `json:"resumed_trials"`
	// SlowTrialDumps counts watchdog-triggered flight dumps.
	SlowTrialDumps int  `json:"slow_trial_dumps"`
	Finished       bool `json:"finished"`
}

// WorkerOccupancy is one worker's time budget over the campaign.
type WorkerOccupancy struct {
	Worker int `json:"worker"`
	// Trials this worker ran (including resume-served ones).
	Trials int `json:"trials"`
	// BusySeconds is wall time spent inside trials.
	BusySeconds float64 `json:"busy_seconds"`
	// IdleSeconds is wall time between trials (queue waits).
	IdleSeconds float64 `json:"idle_seconds"`
	// MergeWaitSeconds is wall time between this worker's exit and the
	// slowest worker finishing — the straggler cost Amdahl charges the
	// whole pool for.
	MergeWaitSeconds float64 `json:"merge_wait_seconds"`
	// BusyFraction is BusySeconds over the worker's whole campaign span
	// (busy + idle + merge wait).
	BusyFraction float64 `json:"busy_fraction"`
}

// Distribution is a rendered fixed-bucket histogram (JSON-tagged so the
// occupancy report marshals with stable lower-case keys).
type Distribution struct {
	// Bounds are inclusive upper bounds; Counts has one extra +Inf
	// bucket at the end.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// OccupancyReport is the worker-occupancy product exported into
// BENCH_*.json as "worker_occupancy": where the campaign's wall time
// actually went, per worker, plus the per-trial wall-time distribution.
type OccupancyReport struct {
	Workers             []WorkerOccupancy `json:"workers"`
	TrialWallSeconds    Distribution      `json:"trial_wall_seconds"`
	CampaignWallSeconds float64           `json:"campaign_wall_seconds"`
	SlowTrialDumps      int               `json:"slow_trial_dumps"`
	// EffectiveWorkers is the clamped pool size the campaign actually ran
	// with (see CampaignInfo.RequestedWorkers for the pre-clamp value).
	EffectiveWorkers int `json:"effective_workers"`
	// RequestedWorkers echoes the configured -workers value (0 = one per
	// trial) so the occupancy JSON is self-describing about the clamp.
	RequestedWorkers int `json:"requested_workers"`
	// PeakHeapBytes is the streaming consumer's HeapAlloc high-water mark
	// over the campaign — the memory-flat number bench.sh normalizes into
	// peak_heap_mb_per_trial.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// FlightDump is the flight recorder's crash/slow-trial artifact: what a
// world was doing (its recent span ring and span aggregates) plus the
// campaign context around it (recent bus events), written to
// <FlightDir>/flight-<trial>.json.
type FlightDump struct {
	Trial  int    `json:"trial"`
	Seed   int64  `json:"seed"`
	Worker int    `json:"worker"`
	Reason string `json:"reason"`
	// WallNS stamps the dump (monitor clock).
	WallNS int64 `json:"wall_ns"`
	// ElapsedSeconds is how long the trial had been running at dump
	// time (or its final duration for completion-time dumps).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Completed reports whether the trial had finished when dumped.
	Completed bool `json:"completed"`
	// RecentSpans is the world's rolling last-N finished spans.
	RecentSpans []telemetry.SpanRecord `json:"recent_spans,omitempty"`
	// SpanSummary is the world's per-name span aggregate.
	SpanSummary []telemetry.SpanStats `json:"span_summary,omitempty"`
	// BusEvents is the newest slice of the campaign stream.
	BusEvents []telemetry.StreamEvent `json:"bus_events,omitempty"`
}

// flightDumpBusEvents bounds the campaign-stream excerpt in a dump.
const flightDumpBusEvents = 64

type inflightTrial struct {
	worker int
	seed   int64
	start  time.Time
	tele   *telemetry.Set // nil until the world is built (and for resumed trials)
	dumped bool           // the watchdog dumps each trial at most once
}

type workerClock struct {
	started        bool
	startWall      time.Time
	lastTransition time.Time
	exitWall       time.Time
	exited         bool
	busy, idle     float64
	trials         int
}

// Monitor observes one campaign. All methods are safe for concurrent
// use; runner hooks call the unexported ones, the watch plane and cmd/
// call the exported snapshot/dump methods.
type Monitor struct {
	clock      telemetry.Clock
	bus        *telemetry.Bus
	flightDir  string
	slowFactor float64
	scale      string

	mu        sync.Mutex
	info      CampaignInfo
	startWall time.Time
	endWall   time.Time
	finished  bool
	started   int
	completed int
	resumed   int
	done      []bool
	running   []bool
	inflight  map[int]*inflightTrial
	durations []float64 // completed trial wall seconds, completion order
	wallHist  []int64   // len(trialWallBounds)+1
	wallSum   float64
	// mergedMetrics/mergedSpans are the completed trials' telemetry,
	// folded incrementally in completion order as each trial finishes —
	// O(metric universe) retained, not O(trials) snapshots.
	mergedMetrics []telemetry.Metric
	mergedSpans   []telemetry.SpanStats
	peakHeap      uint64
	workers       []workerClock
	slowDumps     int
	flightErr     error // first flight-write failure, surfaced via FlightErr
}

// NewMonitor creates a Monitor. The zero MonitorOptions is valid (no
// clock, no bus, no flight recorder — only completion tracking).
func NewMonitor(opts MonitorOptions) *Monitor {
	factor := opts.SlowFactor
	if factor <= 0 {
		factor = DefaultSlowFactor
	}
	return &Monitor{
		clock:      opts.Clock,
		bus:        opts.Bus,
		flightDir:  opts.FlightDir,
		slowFactor: factor,
		scale:      opts.Scale,
		inflight:   make(map[int]*inflightTrial),
		wallHist:   make([]int64, len(trialWallBounds)+1),
	}
}

// Bus returns the stream bus the monitor publishes to (nil if none).
func (m *Monitor) Bus() *telemetry.Bus { return m.bus }

func (m *Monitor) now() time.Time {
	if m.clock == nil {
		return time.Time{}
	}
	return m.clock()
}

func (m *Monitor) publish(ev telemetry.StreamEvent) {
	if m.bus != nil {
		m.bus.Publish(ev)
	}
}

// campaignStarted records identity and opens the worker clocks.
func (m *Monitor) campaignStarted(info CampaignInfo) {
	now := m.now()
	m.mu.Lock()
	info.Scale = m.scale
	m.info = info
	m.startWall = now
	m.done = make([]bool, info.Trials)
	m.running = make([]bool, info.Trials)
	m.workers = make([]workerClock, info.Workers)
	m.mu.Unlock()
	m.publish(telemetry.StreamEvent{
		Type: telemetry.EventCampaignStarted, Trial: -1, Worker: -1,
		Seed: info.BaseSeed, Total: info.Trials,
		Detail: info.ConfigHash,
	})
}

// campaignFinished closes the books: merge-wait is charged per worker as
// the gap between its own exit and the slowest worker's.
func (m *Monitor) campaignFinished() {
	now := m.now()
	m.mu.Lock()
	m.endWall = now
	m.finished = true
	completed, total := m.completed, m.info.Trials
	m.mu.Unlock()
	m.publish(telemetry.StreamEvent{
		Type: telemetry.EventCampaignFinished, Trial: -1, Worker: -1,
		Completed: completed, Total: total,
	})
}

func (m *Monitor) workerStarted(w int) {
	now := m.now()
	m.mu.Lock()
	if w < len(m.workers) {
		m.workers[w] = workerClock{started: true, startWall: now, lastTransition: now}
	}
	m.mu.Unlock()
}

func (m *Monitor) workerExited(w int) {
	now := m.now()
	m.mu.Lock()
	if w < len(m.workers) && m.workers[w].started {
		wc := &m.workers[w]
		wc.idle += now.Sub(wc.lastTransition).Seconds()
		wc.lastTransition = now
		wc.exitWall = now
		wc.exited = true
	}
	m.mu.Unlock()
}

// trialStarted flips the worker to busy and registers the in-flight
// trial for the watchdog and flight recorder.
func (m *Monitor) trialStarted(worker, trial int, seed int64) {
	now := m.now()
	m.mu.Lock()
	m.started++
	if i := trial - m.info.First; i >= 0 && i < len(m.running) {
		m.running[i] = true
	}
	m.inflight[trial] = &inflightTrial{worker: worker, seed: seed, start: now}
	if worker < len(m.workers) && m.workers[worker].started {
		wc := &m.workers[worker]
		wc.idle += now.Sub(wc.lastTransition).Seconds()
		wc.lastTransition = now
	}
	m.mu.Unlock()
	m.publish(telemetry.StreamEvent{Type: telemetry.EventWorkerBusy, Trial: trial, Worker: worker, Seed: seed})
	m.publish(telemetry.StreamEvent{Type: telemetry.EventTrialStarted, Trial: trial, Worker: worker, Seed: seed})
}

// attachWorld hands the monitor a live world's telemetry set so a
// mid-flight dump can read its span ring. Only the tracer is touched
// from outside the world's goroutine — it is mutex-guarded, unlike the
// registry's lock-free simulation-path counters.
func (m *Monitor) attachWorld(trial int, tele *telemetry.Set) {
	m.mu.Lock()
	if t, ok := m.inflight[trial]; ok {
		t.tele = tele
	}
	m.mu.Unlock()
}

// storeAppended reports a persisted trial record, carrying where its
// frame landed in the campaign log (zero ref on a failed append).
func (m *Monitor) storeAppended(trial int, ref runstore.FrameRef, err error) {
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	m.publish(telemetry.StreamEvent{
		Type: telemetry.EventStoreAppended, Trial: trial, Worker: -1, Detail: detail,
		LogOffset: ref.Off, LogBytes: ref.Len,
	})
}

// scalarHeadline keeps only the campaign-total keys (no '/'-separated
// per-country/per-protocol families) for compact bus events.
func scalarHeadline(h map[string]float64) map[string]float64 {
	out := make(map[string]float64, 8)
	for k, v := range h {
		if !strings.Contains(k, "/") {
			out[k] = v
		}
	}
	return out
}

// trialFinished is the monitor's busiest hook: occupancy accounting,
// completion bookkeeping, the completion-time watchdog check, and the
// trial_finished/worker_idle bus events.
func (m *Monitor) trialFinished(worker, trial int, seed int64, resumed bool, headline map[string]float64, metrics []telemetry.Metric, spans []telemetry.SpanStats) {
	now := m.now()
	var virtual float64
	for _, sp := range spans {
		virtual += sp.Total.Seconds()
	}

	m.mu.Lock()
	var dur float64
	t := m.inflight[trial]
	if t != nil && m.clock != nil {
		dur = now.Sub(t.start).Seconds()
	}
	if i := trial - m.info.First; i >= 0 && i < len(m.done) {
		m.done[i] = true
		m.running[i] = false
	}
	m.completed++
	if resumed {
		m.resumed++
	}
	completed := m.completed
	// Watchdog, completion-time edition: compare against the median of
	// the trials that finished before this one.
	slow := false
	if t != nil && !t.dumped && m.clock != nil &&
		len(m.durations) >= watchdogMinSamples && dur > m.slowFactor*median(m.durations) {
		slow = true
		t.dumped = true
		m.slowDumps++
	}
	m.durations = append(m.durations, dur)
	m.wallSum += dur
	m.wallHist[bucketOf(dur)]++
	// Fold this trial's snapshot into the running merge and let the
	// snapshot go — retaining every per-trial copy until scrape time is
	// exactly the O(trials) growth the streaming pipeline removed.
	m.mergedMetrics = telemetry.MergeSnapshots(m.mergedMetrics, metrics)
	m.mergedSpans = telemetry.MergeSpans(m.mergedSpans, spans)
	if worker < len(m.workers) && m.workers[worker].started {
		wc := &m.workers[worker]
		wc.busy += now.Sub(wc.lastTransition).Seconds()
		wc.lastTransition = now
		wc.trials++
	}
	var dump *FlightDump
	if slow {
		dump = m.flightDumpLocked(trial, t, "slow_trial", dur, true)
	}
	delete(m.inflight, trial)
	total := m.info.Trials
	m.mu.Unlock()

	if dump != nil {
		m.writeFlight(dump)
	}
	m.publish(telemetry.StreamEvent{
		Type: telemetry.EventTrialFinished, Trial: trial, Worker: worker, Seed: seed,
		Completed: completed, Total: total, Resumed: resumed,
		WallSeconds: dur, VirtualSeconds: virtual,
		Headline: scalarHeadline(headline),
	})
	m.publish(telemetry.StreamEvent{Type: telemetry.EventWorkerIdle, Trial: trial, Worker: worker})
}

// trialPanicked is called from the runTrial recover path before the
// panic is re-raised: dump whatever the world recorded.
func (m *Monitor) trialPanicked(trial int, detail string) {
	m.mu.Lock()
	t := m.inflight[trial]
	var dump *FlightDump
	if t != nil {
		elapsed := 0.0
		if m.clock != nil {
			elapsed = m.now().Sub(t.start).Seconds()
		}
		dump = m.flightDumpLocked(trial, t, "panic: "+detail, elapsed, false)
	}
	m.mu.Unlock()
	if dump != nil {
		m.writeFlight(dump)
	}
}

// median of a non-empty slice (copy-sorts; n is campaign-sized).
func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func bucketOf(sec float64) int {
	i := 0
	for i < len(trialWallBounds) && sec > trialWallBounds[i] {
		i++
	}
	return i
}

// CheckStalled is the in-flight half of the slow-trial watchdog: cmd/
// drives it from a wall-clock ticker, and any running trial whose
// elapsed time already exceeds SlowFactor × the rolling median gets a
// flight dump without waiting for it to finish (it may never). Each
// trial is dumped at most once. Returns the number of dumps written.
func (m *Monitor) CheckStalled() int {
	if m.clock == nil {
		return 0
	}
	now := m.now()
	m.mu.Lock()
	var dumps []*FlightDump
	if len(m.durations) >= watchdogMinSamples {
		limit := m.slowFactor * median(m.durations)
		for trial, t := range m.inflight {
			elapsed := now.Sub(t.start).Seconds()
			if !t.dumped && elapsed > limit {
				t.dumped = true
				m.slowDumps++
				dumps = append(dumps, m.flightDumpLocked(trial, t, "slow_trial", elapsed, false))
			}
		}
	}
	m.mu.Unlock()
	for _, d := range dumps {
		m.writeFlight(d)
	}
	return len(dumps)
}

// DumpInflight flight-dumps every running trial — the SIGQUIT handler's
// "what is this campaign doing right now". Returns the dump count.
func (m *Monitor) DumpInflight(reason string) int {
	now := m.now()
	m.mu.Lock()
	var dumps []*FlightDump
	trials := make([]int, 0, len(m.inflight))
	for trial := range m.inflight {
		trials = append(trials, trial)
	}
	sort.Ints(trials)
	for _, trial := range trials {
		t := m.inflight[trial]
		elapsed := 0.0
		if m.clock != nil {
			elapsed = now.Sub(t.start).Seconds()
		}
		dumps = append(dumps, m.flightDumpLocked(trial, t, reason, elapsed, false))
	}
	m.mu.Unlock()
	for _, d := range dumps {
		m.writeFlight(d)
	}
	return len(dumps)
}

// flightDumpLocked assembles a dump under m.mu. The tracer reads are
// safe from any goroutine (the tracer is mutex-guarded); the world's
// registry is deliberately NOT read — its simulation-path counters are
// lock-free and racing them from here would trip the race detector.
func (m *Monitor) flightDumpLocked(trial int, t *inflightTrial, reason string, elapsed float64, completed bool) *FlightDump {
	d := &FlightDump{
		Trial: trial, Seed: t.seed, Worker: t.worker, Reason: reason,
		ElapsedSeconds: elapsed, Completed: completed,
	}
	if m.clock != nil {
		d.WallNS = m.now().UnixNano()
	}
	if t.tele != nil {
		d.RecentSpans = t.tele.Tracer.Recent()
		d.SpanSummary = t.tele.Tracer.Summary()
	}
	if m.bus != nil {
		d.BusEvents = m.bus.Recent(flightDumpBusEvents)
	}
	return d
}

// writeFlight persists a dump (best effort: the flight recorder must
// never fail a campaign) and announces it on the bus.
func (m *Monitor) writeFlight(d *FlightDump) {
	if m.flightDir == "" {
		return
	}
	err := func() error {
		if err := os.MkdirAll(m.flightDir, 0o755); err != nil {
			return err
		}
		b, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		return os.WriteFile(filepath.Join(m.flightDir, fmt.Sprintf("flight-%d.json", d.Trial)), b, 0o644)
	}()
	m.mu.Lock()
	if err != nil && m.flightErr == nil {
		m.flightErr = err
	}
	m.mu.Unlock()
	m.publish(telemetry.StreamEvent{
		Type: telemetry.EventFlightDump, Trial: d.Trial, Worker: d.Worker,
		Seed: d.Seed, WallSeconds: d.ElapsedSeconds, Detail: d.Reason,
	})
}

// FlightErr reports the first flight-dump write failure, if any.
func (m *Monitor) FlightErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flightErr
}

// Campaign snapshots live progress for /campaign and the reporter.
func (m *Monitor) Campaign() CampaignSnapshot {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := CampaignSnapshot{
		CampaignInfo:   m.info,
		Completed:      m.completed,
		Pending:        m.info.Trials - m.started,
		ResumedTrials:  m.resumed,
		SlowTrialDumps: m.slowDumps,
		Finished:       m.finished,
		ETASeconds:     -1,
	}
	bitmap := make([]byte, len(m.done))
	for i := range m.done {
		switch {
		case m.done[i]:
			bitmap[i] = '1'
		case m.running[i]:
			bitmap[i] = 'r'
		default:
			bitmap[i] = '0'
		}
	}
	s.Bitmap = string(bitmap)
	for trial := range m.inflight {
		s.Inflight = append(s.Inflight, trial)
	}
	sort.Ints(s.Inflight)
	if m.clock != nil && !m.startWall.IsZero() {
		end := now
		if m.finished {
			end = m.endWall
		}
		s.ElapsedSeconds = end.Sub(m.startWall).Seconds()
		if m.completed > 0 && m.completed < m.info.Trials {
			s.ETASeconds = s.ElapsedSeconds / float64(m.completed) * float64(m.info.Trials-m.completed)
		}
		if m.finished || m.completed == m.info.Trials {
			s.ETASeconds = 0
		}
	}
	return s
}

// MergedMetrics returns the completed trials' telemetry merged so far —
// the /metrics payload. Only snapshots taken by each trial's own
// goroutine at completion ever enter the fold, so scraping a live
// campaign never races a running world; the single-argument re-merge
// deep-copies the accumulators so callers cannot alias monitor state.
func (m *Monitor) MergedMetrics() ([]telemetry.Metric, []telemetry.SpanStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return telemetry.MergeSnapshots(m.mergedMetrics), telemetry.MergeSpans(m.mergedSpans)
}

// setPeakHeap records the consumer's HeapAlloc high-water mark at
// campaign end, surfacing it through the occupancy report.
func (m *Monitor) setPeakHeap(bytes uint64) {
	m.mu.Lock()
	m.peakHeap = bytes
	m.mu.Unlock()
}

// Occupancy renders the worker-occupancy report. Call it after the
// campaign finishes for final numbers (merge-wait needs the slowest
// worker's exit); calling mid-campaign reports progress so far.
func (m *Monitor) Occupancy() *OccupancyReport {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	end := now
	if m.finished {
		end = m.endWall
	}
	rep := &OccupancyReport{
		TrialWallSeconds: Distribution{
			Bounds: append([]float64(nil), trialWallBounds...),
			Counts: append([]int64(nil), m.wallHist...),
			Sum:    m.wallSum,
			Count:  int64(len(m.durations)),
		},
		SlowTrialDumps:   m.slowDumps,
		EffectiveWorkers: m.info.Workers,
		RequestedWorkers: m.info.RequestedWorkers,
		PeakHeapBytes:    m.peakHeap,
	}
	if m.clock != nil && !m.startWall.IsZero() {
		rep.CampaignWallSeconds = end.Sub(m.startWall).Seconds()
	}
	for w := range m.workers {
		wc := m.workers[w]
		occ := WorkerOccupancy{Worker: w, Trials: wc.trials, BusySeconds: wc.busy, IdleSeconds: wc.idle}
		if wc.exited && end.After(wc.exitWall) {
			occ.MergeWaitSeconds = end.Sub(wc.exitWall).Seconds()
		}
		if span := occ.BusySeconds + occ.IdleSeconds + occ.MergeWaitSeconds; span > 0 {
			occ.BusyFraction = occ.BusySeconds / span
		}
		rep.Workers = append(rep.Workers, occ)
	}
	return rep
}

// OccupancyJSON renders the occupancy report for -occupancy-json.
func (m *Monitor) OccupancyJSON() ([]byte, error) {
	b, err := json.MarshalIndent(m.Occupancy(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
