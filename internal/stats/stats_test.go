package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.N() != 0 {
		t.Fatalf("N() = %d, want 0", c.N())
	}
	if got := c.At(10); got != 0 {
		t.Errorf("At(10) = %v, want 0", got)
	}
	if got := c.Percentile(50); got != 0 {
		t.Errorf("Percentile(50) = %v, want 0", got)
	}
	if c.Points(0) != nil {
		t.Errorf("Points on empty CDF should be nil")
	}
}

func TestCDFBasic(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 3, 4} {
		c.Add(v)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Percentile(50); got != 2 {
		t.Errorf("Percentile(50) = %v, want 2", got)
	}
	if got := c.Percentile(100); got != 4 {
		t.Errorf("Percentile(100) = %v, want 4", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("Percentile(0) = %v, want 1", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", c.Min(), c.Max())
	}
}

func TestCDFAddAfterQuery(t *testing.T) {
	var c CDF
	c.Add(5)
	if got := c.At(5); got != 1 {
		t.Fatalf("At(5) = %v, want 1", got)
	}
	c.Add(1) // must re-sort transparently
	if got := c.At(1); got != 0.5 {
		t.Fatalf("At(1) after second Add = %v, want 0.5", got)
	}
}

func TestCDFDuration(t *testing.T) {
	var c CDF
	c.AddDuration(90 * time.Second)
	if got := c.At(90); got != 1 {
		t.Errorf("At(90s) = %v, want 1", got)
	}
	if got := c.At(89); got != 0 {
		t.Errorf("At(89s) = %v, want 0", got)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3} {
		c.Add(v)
	}
	pts := c.Points(0)
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("Points X not strictly ascending at %d: %v <= %v", i, pts[i].X, pts[i-1].X)
		}
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("Points Y not non-decreasing at %d", i)
		}
	}
	if last := pts[len(pts)-1]; last.Y != 1 {
		t.Errorf("final CDF point Y = %v, want 1", last.Y)
	}
}

func TestCDFPointsDownsample(t *testing.T) {
	var c CDF
	for i := 0; i < 1000; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("downsampled Points len = %d, want 10", len(pts))
	}
	if pts[0].X != 0 || pts[9].X != 999 {
		t.Errorf("downsampled endpoints = %v, %v; want 0 and 999", pts[0].X, pts[9].X)
	}
}

func TestCDFPropertyAtMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			c.Add(v)
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPropertyPercentileInRange(t *testing.T) {
	f := func(vals []float64, p uint8) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			c.Add(v)
		}
		if c.N() == 0 {
			return c.Percentile(float64(p%101)) == 0
		}
		got := c.Percentile(float64(p % 101))
		return got >= c.Min() && got <= c.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 20)
	for _, v := range []float64{-5, 0, 5, 10, 15, 20, 25} {
		h.Add(v)
	}
	// buckets: [<10 incl. underflow]=3 (-5,0,5), [10,20)=2 (10,15), [>=20]=2 (20,25)
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if got := h.Bucket(0); got != 3 {
		t.Errorf("Bucket(0) = %d, want 3", got)
	}
	if got := h.Bucket(1); got != 2 {
		t.Errorf("Bucket(1) = %d, want 2", got)
	}
	if got := h.Bucket(2); got != 2 {
		t.Errorf("Bucket(2) = %d, want 2", got)
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("one edge", func() { NewHistogram(1) })
	mustPanic("descending", func() { NewHistogram(2, 1) })
	mustPanic("equal", func() { NewHistogram(1, 1) })
}

func TestHistogramPropertyConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-100, -10, 0, 10, 100)
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		var sum int64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == int64(n) && h.Total() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterRanking(t *testing.T) {
	c := NewCounter()
	c.AddN("AS4134", 172)
	c.AddN("AS58563", 40)
	c.AddN("AS137697", 24)
	c.Add("AS1")
	top := c.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) len = %d", len(top))
	}
	if top[0].Key != "AS4134" || top[0].Count != 172 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != "AS58563" {
		t.Errorf("top[1] = %+v", top[1])
	}
	wantFrac := 172.0 / 237.0
	if math.Abs(top[0].Fraction-wantFrac) > 1e-12 {
		t.Errorf("Fraction = %v, want %v", top[0].Fraction, wantFrac)
	}
	if c.Len() != 4 || c.Total() != 237 {
		t.Errorf("Len/Total = %d/%d", c.Len(), c.Total())
	}
}

func TestCounterTieBreak(t *testing.T) {
	c := NewCounter()
	c.AddN("b", 5)
	c.AddN("a", 5)
	top := c.Top(0)
	if top[0].Key != "a" || top[1].Key != "b" {
		t.Errorf("tie-break order wrong: %+v", top)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X: demo", "Name", "Count")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22)
	out := tb.String()
	if !strings.Contains(out, "Table X: demo") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "Name") || !strings.Contains(out, "Count") {
		t.Errorf("missing headers: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Errorf("missing rows: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d, want 5: %q", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {100, "100"}, {99.7, "99.7"}, {2.5, "2.5"},
		{0.028, "0.03"}, {0.5, "0.50"}, {0.0042, "0.0042"}, {1234, "1234"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.997); got != "99.7%" {
		t.Errorf("FormatPercent(0.997) = %q", got)
	}
	if got := FormatPercent(0.5); got != "50%" {
		t.Errorf("FormatPercent(0.5) = %q", got)
	}
}

func TestDelayBucket(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{10 * time.Second, "<1min"},
		{time.Minute, "1min-1h"},
		{59 * time.Minute, "1min-1h"},
		{time.Hour, "1h-1d"},
		{23 * time.Hour, "1h-1d"},
		{24 * time.Hour, ">1d"},
		{10 * 24 * time.Hour, ">1d"},
	}
	for _, tc := range cases {
		if got := DelayBucket(tc.d); got != tc.want {
			t.Errorf("DelayBucket(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestPlotCDF(t *testing.T) {
	var c CDF
	for _, v := range []float64{10, 60, 3600, 86400, 864000} {
		c.Add(v)
	}
	out := PlotCDF(&c, 40, 8)
	if !strings.Contains(out, "*") {
		t.Error("no curve drawn")
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Errorf("missing axis labels:\n%s", out)
	}
	if !strings.Contains(out, "10d") {
		t.Errorf("missing max tick:\n%s", out)
	}
	if got := PlotCDF(nil, 0, 0); got != "(no samples)\n" {
		t.Errorf("nil CDF = %q", got)
	}
	var empty CDF
	if got := PlotCDF(&empty, 0, 0); got != "(no samples)\n" {
		t.Errorf("empty CDF = %q", got)
	}
}

func TestBars(t *testing.T) {
	out := Bars("demo", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "##########") {
		t.Errorf("bars:\n%s", out)
	}
	// Zero-max must not panic or divide by zero.
	out = Bars("", []string{"x"}, []float64{0}, 10)
	if !strings.Contains(out, "x") {
		t.Errorf("zero bars:\n%s", out)
	}
}

func TestHumanSeconds(t *testing.T) {
	cases := map[float64]string{30: "30s", 120: "2m", 7200: "2h", 172800: "2d"}
	for in, want := range cases {
		if got := humanSeconds(in); got != want {
			t.Errorf("humanSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
