// Package stats provides the small statistical toolkit used by the
// shadowmeter analysis pipeline: empirical CDFs, histograms, percentiles,
// counters with ranked output, and plain-text table rendering.
//
// Everything in this package is deterministic and allocation-conscious; the
// analysis stage processes millions of (decoy, unsolicited-request) pairs
// per experiment and renders every table and figure of the paper from these
// primitives.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddDuration appends a time.Duration sample, stored in seconds.
func (c *CDF) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// N reports the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns the empirical CDF evaluated at x: the fraction of samples <= x.
// It returns 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	// sort.SearchFloat64s returns the first index with samples[i] >= x;
	// we want the count of samples <= x.
	i := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > x })
	return float64(i) / float64(len(c.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using nearest-rank.
// It returns 0 for an empty CDF.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

// Min returns the smallest sample, or 0 if empty.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Mean returns the arithmetic mean, or 0 if empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Points returns (x, F(x)) pairs suitable for plotting, sampled at each
// distinct value. For large sample counts it downsamples to at most max
// points (max <= 0 means no limit).
func (c *CDF) Points(max int) []Point {
	if len(c.samples) == 0 {
		return nil
	}
	c.ensureSorted()
	n := len(c.samples)
	var pts []Point
	for i := 0; i < n; i++ {
		if i+1 < n && c.samples[i+1] == c.samples[i] {
			continue // emit only the last occurrence of each distinct value
		}
		pts = append(pts, Point{X: c.samples[i], Y: float64(i+1) / float64(n)})
	}
	if max > 0 && len(pts) > max {
		ds := make([]Point, 0, max)
		step := float64(len(pts)-1) / float64(max-1)
		for i := 0; i < max; i++ {
			ds = append(ds, pts[int(math.Round(float64(i)*step))])
		}
		pts = ds
	}
	return pts
}

// Point is a single (x, y) coordinate of a rendered curve.
type Point struct {
	X, Y float64
}

// Histogram counts samples into caller-defined bucket edges.
// A sample v lands in bucket i when edges[i] <= v < edges[i+1]; values below
// the first edge land in bucket 0 and values at or above the last edge land
// in the final (overflow) bucket.
type Histogram struct {
	edges  []float64
	counts []int64
	total  int64
}

// NewHistogram builds a histogram with the given ascending bucket edges.
// It panics if fewer than two edges are supplied or edges are not strictly
// ascending, because that is always a programming error.
func NewHistogram(edges ...float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: NewHistogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly ascending")
		}
	}
	return &Histogram{
		edges:  append([]float64(nil), edges...),
		counts: make([]int64, len(edges)), // len(edges)-1 interior + 1 overflow
	}
}

// Add counts one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	i := sort.SearchFloat64s(h.edges, v)
	// SearchFloat64s returns first index with edges[i] >= v.
	if i < len(h.edges) && h.edges[i] == v {
		// exact edge hit belongs to the bucket starting at that edge
		h.counts[i]++
		return
	}
	if i == 0 {
		h.counts[0]++
		return
	}
	h.counts[i-1]++
}

// Total reports the number of samples added.
func (h *Histogram) Total() int64 { return h.total }

// Bucket reports the count in bucket i (0-based; the final index is the
// overflow bucket for samples >= the last edge).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// NumBuckets reports the number of buckets, including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Fraction reports bucket i's share of all samples (0 when empty).
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Counter tallies occurrences of string keys and produces ranked output.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int64) {
	c.counts[key] += n
	c.total += n
}

// Get returns the count for key.
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int64 { return c.total }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Entry is one ranked counter row.
type Entry struct {
	Key      string
	Count    int64
	Fraction float64
}

// Top returns the n highest-count entries, ties broken by key for
// determinism. n <= 0 returns all entries.
func (c *Counter) Top(n int) []Entry {
	entries := make([]Entry, 0, len(c.counts))
	for k, v := range c.counts {
		var f float64
		if c.total > 0 {
			f = float64(v) / float64(c.total)
		}
		entries = append(entries, Entry{Key: k, Count: v, Fraction: f})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
	if n > 0 && len(entries) > n {
		entries = entries[:n]
	}
	return entries
}

// Table renders aligned plain-text tables, in the style of the paper's
// tables, to embed in reports and bench output.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// FormatPercent renders a fraction in [0,1] as a percentage string.
func FormatPercent(f float64) string {
	return FormatFloat(f*100) + "%"
}

// DurationBucketer maps durations to the delay buckets the paper uses in
// Figure 5 ("<1min", "1min-1h", "1h-1d", ">1d").
type DurationBucketer struct{}

// Bucket names, in ascending delay order.
var DelayBuckets = []string{"<1min", "1min-1h", "1h-1d", ">1d"}

// DelayBucket classifies a decoy-to-unsolicited interval.
func DelayBucket(d time.Duration) string {
	switch {
	case d < time.Minute:
		return DelayBuckets[0]
	case d < time.Hour:
		return DelayBuckets[1]
	case d < 24*time.Hour:
		return DelayBuckets[2]
	default:
		return DelayBuckets[3]
	}
}
