package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// PlotCDF renders an ASCII plot of the CDF over a logarithmic time axis —
// the report's stand-in for the paper's Figure 4/7 curves. Samples are
// interpreted as seconds. width and height bound the canvas (sensible
// defaults when <= 0).
func PlotCDF(c *CDF, width, height int) string {
	if c == nil || c.N() == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 10
	}
	minX := c.Min()
	if minX < 1 {
		minX = 1 // clamp to 1s for the log axis
	}
	maxX := c.Max()
	if maxX <= minX {
		maxX = minX * 10
	}
	logMin, logMax := math.Log10(minX), math.Log10(maxX)

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := math.Pow(10, logMin+(logMax-logMin)*float64(col)/float64(width-1))
		y := c.At(x)
		row := int(math.Round((1 - y) * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}

	var b strings.Builder
	for i, row := range grid {
		frac := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%5.0f%% |%s|\n", frac*100, string(row))
	}
	b.WriteString("       ")
	b.WriteString(strings.Repeat("-", width+2))
	b.WriteByte('\n')
	// Tick labels at both ends and the middle.
	mid := math.Pow(10, (logMin+logMax)/2)
	left := humanSeconds(minX)
	midS := humanSeconds(mid)
	right := humanSeconds(maxX)
	pad := width - len(left) - len(midS) - len(right)
	if pad < 2 {
		pad = 2
	}
	fmt.Fprintf(&b, "       %s%s%s%s%s\n", left,
		strings.Repeat(" ", pad/2), midS, strings.Repeat(" ", pad-pad/2), right)
	return b.String()
}

// humanSeconds renders a duration in seconds compactly ("30s", "2h", "3d").
func humanSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%.0fm", d.Minutes())
	case d < 24*time.Hour:
		return fmt.Sprintf("%.0fh", d.Hours())
	default:
		return fmt.Sprintf("%.0fd", d.Hours()/24)
	}
}

// Bars renders a labeled horizontal bar chart (used for Table 2 style
// distributions and time series).
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		fmt.Fprintf(&b, "  %-*s %s %s\n", labelW, labels[i],
			strings.Repeat("#", n), FormatFloat(v))
	}
	return b.String()
}
