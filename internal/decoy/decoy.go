// Package decoy generates the DNS, HTTP, and TLS decoy traffic described in
// Section 3 of the paper. Every decoy embeds a unique experiment domain
//
//	<identifier>.www.<experiment zone>
//
// whose left-most label encodes (time, VP address, destination address,
// initial TTL) via internal/identifier. Wildcard DNS for the experiment
// zone points at the honeypots, so any later use of the domain — over any
// protocol — arrives at infrastructure we control.
package decoy

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/tlswire"
	"shadowmeter/internal/wire"
)

// Protocol identifies a decoy (or unsolicited-request) protocol.
type Protocol int

// Decoy protocols, in the paper's order.
const (
	DNS Protocol = iota
	HTTP
	TLS
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case DNS:
		return "DNS"
	case HTTP:
		return "HTTP"
	case TLS:
		return "TLS"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Protocols lists all decoy protocols.
var Protocols = []Protocol{DNS, HTTP, TLS}

// Decoy is one generated decoy message, ready to emit.
type Decoy struct {
	Protocol Protocol
	ID       identifier.ID
	Label    string // encoded identifier (left-most domain label)
	Domain   string // full experiment domain
	VP       wire.Addr
	Dst      wire.Endpoint
	// Payload is the serialized application message: a DNS query, an HTTP
	// GET, or a TLS ClientHello.
	Payload []byte
	// DNSQueryID is the DNS transaction ID (DNS decoys only), used by the
	// control resolver and interception heuristics.
	DNSQueryID uint16
	// Encrypted marks mitigation-mode decoys: TLS with ECH (no clear-text
	// SNI) or DNS over HTTPS (query wrapped for the resolver's port 443).
	Encrypted bool
}

// Generator builds decoys for one experiment zone.
type Generator struct {
	codec *identifier.Codec
	zone  string // experiment zone, e.g. "experiment.domain"

	mu    sync.Mutex
	nonce uint16
}

// NewGenerator creates a generator. zone is the registered experiment
// domain; epoch anchors identifier timestamps and must match the honeypot
// codec.
func NewGenerator(zone string, epoch time.Time) *Generator {
	return &Generator{codec: identifier.NewCodec(epoch), zone: dnswire.Canonical(zone)}
}

// Zone returns the experiment zone.
func (g *Generator) Zone() string { return g.zone }

// Codec exposes the identifier codec (shared with honeypots in tests).
func (g *Generator) Codec() *identifier.Codec { return g.codec }

// Generate builds one decoy for proto from vp to dst with the given initial
// TTL at virtual time now.
func (g *Generator) Generate(proto Protocol, now time.Time, vp wire.Addr, dst wire.Endpoint, ttl uint8) (*Decoy, error) {
	g.mu.Lock()
	g.nonce++
	nonce := g.nonce
	g.mu.Unlock()

	id := identifier.ID{Time: now, VP: vp, Dst: dst.Addr, TTL: ttl, Nonce: nonce}
	label, err := g.codec.Encode(id)
	if err != nil {
		return nil, fmt.Errorf("decoy: %w", err)
	}
	domain := label + ".www." + g.zone
	d := &Decoy{
		Protocol: proto, ID: id, Label: label, Domain: domain,
		VP: vp, Dst: dst,
	}
	switch proto {
	case DNS:
		d.DNSQueryID = nonce ^ uint16(id.Time.Unix())
		q := dnswire.NewQuery(d.DNSQueryID, domain, dnswire.TypeA)
		d.Payload, err = q.Encode()
		if err != nil {
			return nil, fmt.Errorf("decoy: encode DNS: %w", err)
		}
	case HTTP:
		d.Payload = httpwire.NewGET(domain, "/").Encode()
	case TLS:
		ch := tlswire.NewClientHello(domain, clientRandom(id))
		d.Payload, err = ch.Encode()
		if err != nil {
			return nil, fmt.Errorf("decoy: encode TLS: %w", err)
		}
	default:
		return nil, fmt.Errorf("decoy: unknown protocol %v", proto)
	}
	return d, nil
}

// GenerateECH builds a TLS decoy whose server name travels only inside the
// encrypted_client_hello extension — nothing for on-path observers to
// sniff, while the terminating server still sees the domain. Part of the
// mitigation study motivated by the paper's Discussion.
func (g *Generator) GenerateECH(now time.Time, vp wire.Addr, dst wire.Endpoint, ttl uint8) (*Decoy, error) {
	d, err := g.Generate(TLS, now, vp, dst, ttl)
	if err != nil {
		return nil, err
	}
	ch := tlswire.NewClientHelloECH(d.Domain, clientRandom(d.ID))
	d.Payload, err = ch.Encode()
	if err != nil {
		return nil, err
	}
	d.Encrypted = true
	return d, nil
}

// GenerateDoH builds a DNS decoy carried over DNS-over-HTTPS: the query is
// wrapped in an RFC 8484 POST toward the resolver's port 443, so on-path
// devices see neither a QNAME nor a meaningful Host header — but the
// resolver still decodes (and may retain) the name.
func (g *Generator) GenerateDoH(now time.Time, vp wire.Addr, dst wire.Endpoint, ttl uint8) (*Decoy, error) {
	d, err := g.Generate(DNS, now, vp, dst, ttl)
	if err != nil {
		return nil, err
	}
	req := &httpwire.Request{
		Method: "POST",
		Path:   "/dns-query",
		Headers: map[string]string{
			"host":         "doh." + g.zone, // names the resolver, not the decoy
			"content-type": "application/dns-message",
			"accept":       "application/dns-message",
		},
		Body: d.Payload,
	}
	d.Payload = req.Encode()
	d.Dst.Port = 443
	d.Encrypted = true
	return d, nil
}

// GenerateODoH builds a DNS decoy relayed through an Oblivious DoH proxy
// (RFC 9230, recommended by the paper's Discussion): the query travels to
// proxy, which forwards it to resolver from its own address. The resolver
// still decodes (and may retain) the name but never learns the client.
func (g *Generator) GenerateODoH(now time.Time, vp wire.Addr, proxy wire.Endpoint, resolver wire.Addr, ttl uint8) (*Decoy, error) {
	d, err := g.Generate(DNS, now, vp, wire.Endpoint{Addr: resolver, Port: 53}, ttl)
	if err != nil {
		return nil, err
	}
	req := &httpwire.Request{
		Method: "POST",
		Path:   "/odoh",
		Headers: map[string]string{
			"host":         "odoh-proxy." + g.zone,
			"content-type": "application/oblivious-dns-message",
			"odoh-target":  resolver.String(),
		},
		Body: d.Payload,
	}
	d.Payload = req.Encode()
	d.Dst = wire.Endpoint{Addr: proxy.Addr, Port: 443}
	d.Encrypted = true
	return d, nil
}

// clientRandom derives a deterministic 32-byte client random from the
// identifier, keeping TLS decoys reproducible without a global RNG.
func clientRandom(id identifier.ID) [32]byte {
	var seed [16]byte
	secs := id.Time.Unix()
	seed[0] = byte(secs >> 24)
	seed[1] = byte(secs >> 16)
	seed[2] = byte(secs >> 8)
	seed[3] = byte(secs)
	copy(seed[4:8], id.VP[:])
	copy(seed[8:12], id.Dst[:])
	seed[12] = id.TTL
	seed[13] = byte(id.Nonce >> 8)
	seed[14] = byte(id.Nonce)
	return sha256.Sum256(seed[:])
}

// ExtractDomain pulls the experiment domain out of a decoy-protocol message
// as an on-path observer would: QNAME for DNS, Host header for HTTP, SNI
// for TLS. It returns ok=false when the payload does not parse or carries
// no domain.
func ExtractDomain(proto Protocol, payload []byte) (string, bool) {
	return extractDomain(proto, payload, nil)
}

func extractDomain(proto Protocol, payload []byte, in *identifier.Interner) (string, bool) {
	switch proto {
	case DNS:
		if in != nil {
			return dnswire.QueryNameInterned(payload, in)
		}
		return dnswire.QueryNameFromBytes(payload)
	case HTTP:
		host, ok := httpwire.HostFromBytes(payload)
		if !ok || host == "" {
			return "", false
		}
		return canonicalInterned(host, in), true
	case TLS:
		name, err := tlswire.SNIFromBytes(payload)
		if err != nil {
			return "", false
		}
		return canonicalInterned(name, in), true
	}
	return "", false
}

func canonicalInterned(name string, in *identifier.Interner) string {
	c := dnswire.Canonical(name)
	if in != nil {
		return in.Intern(c)
	}
	return c
}

// SniffDomain inspects an arbitrary transport payload on ports (srcPort,
// dstPort) and extracts a domain if the payload is one of the three decoy
// protocols. This is the generic DPI routine observer taps run.
func SniffDomain(dstPort uint16, payload []byte) (string, Protocol, bool) {
	var s Sniffer
	return s.sniff(dstPort, payload, nil)
}

// Sniffer is a per-consumer DPI scratch: SniffDomain plus an intern table,
// so the same experiment domain crossing one observation point repeatedly
// (resolver retries, probe traffic) is materialized once. Not safe for
// concurrent use — one per tap device.
type Sniffer struct {
	in identifier.Interner
}

// SniffDomain is like the package-level SniffDomain with interning.
func (s *Sniffer) SniffDomain(dstPort uint16, payload []byte) (string, Protocol, bool) {
	return s.sniff(dstPort, payload, &s.in)
}

func (s *Sniffer) sniff(dstPort uint16, payload []byte, in *identifier.Interner) (string, Protocol, bool) {
	switch dstPort {
	case 53:
		if d, ok := extractDomain(DNS, payload, in); ok {
			return d, DNS, true
		}
	case 80:
		if d, ok := extractDomain(HTTP, payload, in); ok {
			return d, HTTP, true
		}
	case 443:
		if d, ok := extractDomain(TLS, payload, in); ok {
			return d, TLS, true
		}
	}
	return "", 0, false
}

// Pacer enforces the ethics rate limit of Section A: at most `Rate` decoys
// per second toward any single target. NextSendTime returns the earliest
// virtual time a new decoy may be emitted to the target, and reserves it.
type Pacer struct {
	mu       sync.Mutex
	interval time.Duration
	last     map[wire.Addr]time.Time
}

// NewPacer builds a pacer allowing ratePerSecond packets per target-second.
func NewPacer(ratePerSecond float64) *Pacer {
	if ratePerSecond <= 0 {
		ratePerSecond = 2
	}
	return &Pacer{
		interval: time.Duration(float64(time.Second) / ratePerSecond),
		last:     make(map[wire.Addr]time.Time),
	}
}

// NextSendTime reserves and returns the next allowed emission time toward
// target, no earlier than now.
func (p *Pacer) NextSendTime(now time.Time, target wire.Addr) time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := now
	if last, ok := p.last[target]; ok {
		if next := last.Add(p.interval); next.After(t) {
			t = next
		}
	}
	p.last[target] = t
	return t
}
