package decoy

import (
	"strings"
	"testing"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/httpwire"
	"shadowmeter/internal/wire"
)

var (
	epoch = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	vp    = wire.MustParseAddr("100.64.1.2")
	dst   = wire.Endpoint{Addr: wire.MustParseAddr("77.88.8.8"), Port: 53}
)

func gen() *Generator { return NewGenerator("experiment.domain", epoch) }

func TestGenerateDNS(t *testing.T) {
	g := gen()
	d, err := g.Generate(DNS, epoch.Add(time.Hour), vp, dst, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(d.Domain, ".www.experiment.domain") {
		t.Errorf("domain = %q", d.Domain)
	}
	msg, err := dnswire.Decode(d.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.QName() != d.Domain {
		t.Errorf("QNAME = %q, want %q", msg.QName(), d.Domain)
	}
	if msg.QType() != dnswire.TypeA || !msg.Header.RD {
		t.Errorf("query shape: %+v", msg.Header)
	}
	// The identifier must round-trip through the codec.
	id, err := g.Codec().Decode(d.Label)
	if err != nil {
		t.Fatal(err)
	}
	if id.VP != vp || id.Dst != dst.Addr || id.TTL != 64 {
		t.Errorf("identifier = %+v", id)
	}
}

func TestGenerateHTTP(t *testing.T) {
	g := gen()
	d, err := g.Generate(HTTP, epoch.Add(time.Minute), vp, wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.1"), Port: 80}, 32)
	if err != nil {
		t.Fatal(err)
	}
	domain, ok := ExtractDomain(HTTP, d.Payload)
	if !ok || domain != d.Domain {
		t.Errorf("extracted %q, want %q", domain, d.Domain)
	}
}

func TestGenerateTLS(t *testing.T) {
	g := gen()
	d, err := g.Generate(TLS, epoch.Add(time.Minute), vp, wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.1"), Port: 443}, 16)
	if err != nil {
		t.Fatal(err)
	}
	domain, ok := ExtractDomain(TLS, d.Payload)
	if !ok || domain != d.Domain {
		t.Errorf("extracted %q, want %q", domain, d.Domain)
	}
}

func TestTLSRandomDeterministic(t *testing.T) {
	g1, g2 := gen(), gen()
	d1, err := g1.Generate(TLS, epoch.Add(time.Minute), vp, dst, 16)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.Generate(TLS, epoch.Add(time.Minute), vp, dst, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1.Payload) != string(d2.Payload) {
		t.Error("same inputs should produce identical TLS decoys")
	}
}

func TestDomainsUnique(t *testing.T) {
	g := gen()
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		d, err := g.Generate(DNS, epoch.Add(time.Duration(i)*time.Second), vp, dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[d.Domain] {
			t.Fatalf("duplicate domain at %d: %s", i, d.Domain)
		}
		seen[d.Domain] = true
	}
}

func TestTTLEncodedPerDecoy(t *testing.T) {
	g := gen()
	for ttl := uint8(1); ttl <= 64; ttl += 7 {
		d, err := g.Generate(DNS, epoch.Add(time.Hour), vp, dst, ttl)
		if err != nil {
			t.Fatal(err)
		}
		id, err := g.Codec().Decode(d.Label)
		if err != nil {
			t.Fatal(err)
		}
		if id.TTL != ttl {
			t.Errorf("TTL = %d, want %d", id.TTL, ttl)
		}
	}
}

func TestExtractDomainRejects(t *testing.T) {
	if _, ok := ExtractDomain(DNS, []byte("junk")); ok {
		t.Error("junk DNS accepted")
	}
	if _, ok := ExtractDomain(HTTP, []byte("junk")); ok {
		t.Error("junk HTTP accepted")
	}
	if _, ok := ExtractDomain(TLS, []byte("junk")); ok {
		t.Error("junk TLS accepted")
	}
	// A DNS response (QR=1) is not a decoy-shaped query.
	g := gen()
	d, _ := g.Generate(DNS, epoch, vp, dst, 64)
	msg, _ := dnswire.Decode(d.Payload)
	resp := dnswire.NewResponse(msg, dnswire.RcodeNoError)
	raw, _ := resp.Encode()
	if _, ok := ExtractDomain(DNS, raw); ok {
		t.Error("DNS response should not extract as decoy")
	}
}

func TestSniffDomainPortDispatch(t *testing.T) {
	g := gen()
	dDNS, _ := g.Generate(DNS, epoch, vp, dst, 64)
	dHTTP, _ := g.Generate(HTTP, epoch, vp, dst, 64)
	dTLS, _ := g.Generate(TLS, epoch, vp, dst, 64)

	if dom, proto, ok := SniffDomain(53, dDNS.Payload); !ok || proto != DNS || dom != dDNS.Domain {
		t.Errorf("port 53 sniff: %q %v %v", dom, proto, ok)
	}
	if dom, proto, ok := SniffDomain(80, dHTTP.Payload); !ok || proto != HTTP || dom != dHTTP.Domain {
		t.Errorf("port 80 sniff: %q %v %v", dom, proto, ok)
	}
	if dom, proto, ok := SniffDomain(443, dTLS.Payload); !ok || proto != TLS || dom != dTLS.Domain {
		t.Errorf("port 443 sniff: %q %v %v", dom, proto, ok)
	}
	// Wrong port: no extraction.
	if _, _, ok := SniffDomain(22, dDNS.Payload); ok {
		t.Error("port 22 should not sniff")
	}
	if _, _, ok := SniffDomain(80, dDNS.Payload); ok {
		t.Error("DNS bytes on port 80 should not parse as HTTP")
	}
}

func TestPacerRateLimit(t *testing.T) {
	p := NewPacer(2) // 2/s -> 500ms interval
	target := dst.Addr
	now := epoch
	t1 := p.NextSendTime(now, target)
	t2 := p.NextSendTime(now, target)
	t3 := p.NextSendTime(now, target)
	if !t1.Equal(now) {
		t.Errorf("t1 = %v", t1)
	}
	if d := t2.Sub(t1); d != 500*time.Millisecond {
		t.Errorf("t2-t1 = %v", d)
	}
	if d := t3.Sub(t2); d != 500*time.Millisecond {
		t.Errorf("t3-t2 = %v", d)
	}
	// A different target is not throttled.
	other := wire.MustParseAddr("8.8.8.8")
	if got := p.NextSendTime(now, other); !got.Equal(now) {
		t.Errorf("other target delayed: %v", got)
	}
}

func TestPacerAdvancesWithClock(t *testing.T) {
	p := NewPacer(2)
	target := dst.Addr
	p.NextSendTime(epoch, target)
	// If the clock has moved past the reserved slot, no delay is added.
	later := epoch.Add(10 * time.Second)
	if got := p.NextSendTime(later, target); !got.Equal(later) {
		t.Errorf("got %v, want %v", got, later)
	}
}

func TestProtocolString(t *testing.T) {
	if DNS.String() != "DNS" || HTTP.String() != "HTTP" || TLS.String() != "TLS" {
		t.Error("protocol names")
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Error("unknown protocol name")
	}
}

func BenchmarkGenerateDNS(b *testing.B) {
	g := gen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(DNS, epoch.Add(time.Duration(i)), vp, dst, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSniffDomainTLS(b *testing.B) {
	g := gen()
	d, _ := g.Generate(TLS, epoch, vp, dst, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, ok := SniffDomain(443, d.Payload); !ok {
			b.Fatal("sniff failed")
		}
	}
}

func TestGenerateECHHidesDomainFromWire(t *testing.T) {
	g := gen()
	d, err := g.GenerateECH(epoch.Add(time.Hour), vp, wire.Endpoint{Addr: wire.MustParseAddr("203.0.113.1"), Port: 443}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Encrypted || d.Protocol != TLS {
		t.Errorf("decoy = %+v", d)
	}
	// DPI extraction must fail on the wire bytes.
	if _, _, ok := SniffDomain(443, d.Payload); ok {
		t.Error("ECH decoy leaked a domain to DPI")
	}
	if strings.Contains(string(d.Payload), d.Label) {
		t.Error("identifier label appears in clear text")
	}
}

func TestGenerateDoHHidesQNAMEFromWire(t *testing.T) {
	g := gen()
	d, err := g.GenerateDoH(epoch.Add(time.Hour), vp, wire.Endpoint{Addr: wire.MustParseAddr("77.88.8.8"), Port: 53}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Encrypted || d.Protocol != DNS || d.Dst.Port != 443 {
		t.Errorf("decoy = %+v", d)
	}
	// Port-443 DPI tries TLS and fails; port-53 DPI never sees it.
	if _, _, ok := SniffDomain(443, d.Payload); ok {
		t.Error("DoH decoy leaked a domain to DPI")
	}
	// The envelope parses as HTTP with the resolver-facing host, not the
	// decoy domain.
	req, err := httpwire.ParseRequest(d.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Path != "/dns-query" {
		t.Errorf("envelope = %s %s", req.Method, req.Path)
	}
	if strings.Contains(req.Host(), d.Label) {
		t.Error("Host header carries the decoy label")
	}
	// The resolver can recover the inner query.
	msg, err := dnswire.Decode(req.Body)
	if err != nil {
		t.Fatal(err)
	}
	if msg.QName() != d.Domain {
		t.Errorf("inner QNAME = %q, want %q", msg.QName(), d.Domain)
	}
}
