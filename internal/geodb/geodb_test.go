package geodb

import (
	"sync"
	"testing"

	"shadowmeter/internal/wire"
)

func TestLookupLongestPrefix(t *testing.T) {
	db := New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Register(wire.MustParseAddr("1.0.0.0"), 8, Info{Country: "US", ASN: 100, ASName: "Coarse"}))
	must(db.Register(wire.MustParseAddr("1.2.0.0"), 16, Info{Country: "CN", ASN: 4134, ASName: "CHINANET-BACKBONE"}))
	must(db.Register(wire.MustParseAddr("1.2.3.0"), 24, Info{Country: "CN", ASN: 4808, ASName: "China Unicom Beijing", Hosting: true}))

	cases := []struct {
		addr    string
		wantASN int
	}{
		{"1.9.9.9", 100},
		{"1.2.9.9", 4134},
		{"1.2.3.9", 4808},
	}
	for _, tc := range cases {
		info, ok := db.Lookup(wire.MustParseAddr(tc.addr))
		if !ok {
			t.Errorf("Lookup(%s) not found", tc.addr)
			continue
		}
		if info.ASN != tc.wantASN {
			t.Errorf("Lookup(%s).ASN = %d, want %d", tc.addr, info.ASN, tc.wantASN)
		}
	}
	if _, ok := db.Lookup(wire.MustParseAddr("9.9.9.9")); ok {
		t.Error("unregistered address should miss")
	}
}

func TestConvenienceLookups(t *testing.T) {
	db := New()
	if err := db.Register(wire.MustParseAddr("77.88.8.0"), 24, Info{Country: "RU", ASN: 13238, ASName: "Yandex"}); err != nil {
		t.Fatal(err)
	}
	a := wire.MustParseAddr("77.88.8.8")
	if db.Country(a) != "RU" {
		t.Errorf("Country = %q", db.Country(a))
	}
	if db.ASOf(a) != "AS13238" {
		t.Errorf("ASOf = %q", db.ASOf(a))
	}
	b := wire.MustParseAddr("8.8.8.8")
	if db.Country(b) != "" || db.ASOf(b) != "" {
		t.Error("unknown address should return empty strings")
	}
}

func TestRegisterOverwrite(t *testing.T) {
	db := New()
	a := wire.MustParseAddr("10.0.0.0")
	if err := db.Register(a, 8, Info{Country: "AA", ASN: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(a, 8, Info{Country: "BB", ASN: 2}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	if db.Country(wire.MustParseAddr("10.1.2.3")) != "BB" {
		t.Error("overwrite not applied")
	}
}

func TestRegisterInvalidPrefix(t *testing.T) {
	db := New()
	if err := db.Register(wire.Addr{}, -1, Info{}); err == nil {
		t.Error("negative prefix should fail")
	}
	if err := db.Register(wire.Addr{}, 33, Info{}); err == nil {
		t.Error("prefix > 32 should fail")
	}
}

func TestDefaultRoute(t *testing.T) {
	db := New()
	if err := db.Register(wire.Addr{}, 0, Info{Country: "ZZ", ASN: 65535}); err != nil {
		t.Fatal(err)
	}
	if db.Country(wire.MustParseAddr("200.1.2.3")) != "ZZ" {
		t.Error("/0 should match everything")
	}
}

func TestHostPrefix(t *testing.T) {
	db := New()
	host := wire.MustParseAddr("198.51.100.7")
	if err := db.Register(host, 32, Info{Country: "DE", ASN: 7}); err != nil {
		t.Fatal(err)
	}
	if db.Country(host) != "DE" {
		t.Error("/32 exact match failed")
	}
	if _, ok := db.Lookup(wire.MustParseAddr("198.51.100.8")); ok {
		t.Error("/32 should not match neighbors")
	}
}

func TestCountries(t *testing.T) {
	db := New()
	db.Register(wire.MustParseAddr("1.0.0.0"), 8, Info{Country: "US"})
	db.Register(wire.MustParseAddr("2.0.0.0"), 8, Info{Country: "CN"})
	db.Register(wire.MustParseAddr("3.0.0.0"), 8, Info{Country: "CN"})
	got := db.Countries()
	if len(got) != 2 || got[0] != "CN" || got[1] != "US" {
		t.Errorf("Countries = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				base := wire.AddrFrom(byte(g), byte(i), 0, 0)
				if err := db.Register(base, 16, Info{Country: "XX", ASN: g*1000 + i}); err != nil {
					t.Error(err)
					return
				}
				db.Lookup(base)
			}
		}(g)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Errorf("Len = %d, want 800", db.Len())
	}
}

func BenchmarkLookup(b *testing.B) {
	db := New()
	for i := 0; i < 1000; i++ {
		db.Register(wire.AddrFrom(byte(i>>4), byte(i<<4), 0, 0), 16, Info{Country: "XX", ASN: i})
	}
	addr := wire.MustParseAddr("10.160.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(addr)
	}
}
