// Package geodb provides the IP-to-(country, AS, hosting) database the
// pipeline uses in place of commercial services like ip-api and IPinfo.
// The simulated topology registers every prefix it allocates; lookups use
// longest-prefix match over a binary trie, the same structure a production
// geo database would use.
package geodb

import (
	"fmt"
	"sort"
	"sync"

	"shadowmeter/internal/wire"
)

// Info describes the network an address belongs to.
type Info struct {
	Country string // ISO 3166-1 alpha-2, e.g. "CN"
	ASN     int    // autonomous system number
	ASName  string // e.g. "CHINANET-BACKBONE"
	Hosting bool   // true for datacenter/cloud prefixes ("hosting" label)
}

// AS renders the ASN in the conventional "AS4134" form.
func (i Info) AS() string { return fmt.Sprintf("AS%d", i.ASN) }

// DB is a longest-prefix-match IP metadata database. It is safe for
// concurrent lookups after registration completes; registration itself is
// also mutex-guarded so builders may populate it from multiple goroutines.
//
// A DB may be layered: Overlay returns a database whose lookups fall back
// to a frozen base trie shared (lock-free) by many overlays, which is how
// worlds instantiated from one topology blueprint share the read-only
// prefix table while keeping per-world registrations private.
type DB struct {
	mu   sync.RWMutex
	root *trieNode
	n    int

	// frozen marks the trie immutable: Register fails and lookups skip the
	// lock, making concurrent reads from many worlds contention-free.
	frozen bool
	// base, when non-nil, is a frozen DB consulted as a fallback layer;
	// longest-prefix match spans both tries.
	base *DB
}

type trieNode struct {
	child [2]*trieNode
	info  *Info
}

// New returns an empty database.
func New() *DB {
	return &DB{root: &trieNode{}}
}

// Freeze marks the database immutable. Subsequent Register calls fail, and
// lookups no longer take the read lock — frozen tries are safe to share
// across any number of goroutines without contention. Freeze must complete
// before the DB is shared; it is not itself safe to race with lookups.
func (db *DB) Freeze() {
	db.mu.Lock()
	db.frozen = true
	db.mu.Unlock()
}

// Overlay returns a new empty database layered over db, which must already
// be frozen (so concurrent instantiations never write the shared base).
// Registrations land in the overlay; lookups take the longest prefix across
// both layers, the overlay winning length ties.
func (db *DB) Overlay() *DB {
	db.mu.RLock()
	frozen := db.frozen
	db.mu.RUnlock()
	if !frozen {
		panic("geodb: Overlay requires a frozen base (call Freeze first)")
	}
	return &DB{root: &trieNode{}, base: db}
}

// Register associates the prefix base/plen with info. Registering the same
// prefix twice overwrites the earlier entry.
func (db *DB) Register(base wire.Addr, plen int, info Info) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("geodb: invalid prefix length %d", plen)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.frozen {
		return fmt.Errorf("geodb: register %v/%d: database is frozen", base, plen)
	}
	node := db.root
	v := base.Uint32()
	for i := 0; i < plen; i++ {
		bit := v >> (31 - uint(i)) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	if node.info == nil {
		db.n++
	}
	ic := info
	node.info = &ic
	return nil
}

// Lookup returns the most specific registered prefix covering addr,
// considering the frozen base layer (if any) under the overlay.
func (db *DB) Lookup(addr wire.Addr) (Info, bool) {
	best, bestLen := db.lookupLocal(addr)
	if db.base != nil {
		if info, plen := db.base.lookupLocal(addr); info != nil && plen > bestLen {
			best = info
		}
	}
	if best == nil {
		return Info{}, false
	}
	return *best, true
}

// lookupLocal walks only this layer's trie, returning the deepest match and
// its prefix length (-1 when absent). Frozen tries are read without locking.
func (db *DB) lookupLocal(addr wire.Addr) (*Info, int) {
	if !db.frozen {
		db.mu.RLock()
		defer db.mu.RUnlock()
	}
	node := db.root
	v := addr.Uint32()
	var best *Info
	bestLen := -1
	for i := 0; i < 32 && node != nil; i++ {
		if node.info != nil {
			best = node.info
			bestLen = i
		}
		bit := v >> (31 - uint(i)) & 1
		node = node.child[bit]
	}
	if node != nil && node.info != nil {
		best = node.info
		bestLen = 32
	}
	return best, bestLen
}

// Country is a convenience lookup returning "" when unknown.
func (db *DB) Country(addr wire.Addr) string {
	info, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return info.Country
}

// ASOf is a convenience lookup returning "" when unknown.
func (db *DB) ASOf(addr wire.Addr) string {
	info, ok := db.Lookup(addr)
	if !ok {
		return ""
	}
	return info.AS()
}

// Len reports the number of registered prefixes, including any base layer.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := db.n
	if db.base != nil {
		n += db.base.Len()
	}
	return n
}

// Countries returns the sorted set of distinct countries registered.
func (db *DB) Countries() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[string]bool)
	var walk func(*trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.info != nil {
			set[n.info.Country] = true
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(db.root)
	if db.base != nil {
		for _, c := range db.base.Countries() {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
