// Package correlate joins honeypot captures with the decoy send log and
// applies the paper's three unsolicited-request rules (Section 3):
//
// An incoming request bearing decoy data is unsolicited if
//
//	i)   request and decoy protocols differ (that data was never sent over
//	     the request protocol); or
//	ii)  the request protocol is HTTP or TLS (no HTTP/TLS decoys are ever
//	     sent to the honeypots); or
//	iii) the request protocol is DNS and the unique query name already
//	     appeared in an earlier DNS query (the initial decoy's recursion).
//
// The output — one Unsolicited record per flagged capture, tied back to
// the decoy that planted the data — is what every table and figure of the
// behavioral analysis consumes.
package correlate

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/wire"
)

// Phase tags which experiment phase emitted a decoy.
type Phase int

// Experiment phases.
const (
	PhaseI  Phase = 1 // landscape scan
	PhaseII Phase = 2 // hop-by-hop traceroute
)

// Sent is the send-log record of one decoy emission.
type Sent struct {
	Label    string
	Domain   string
	Protocol decoy.Protocol
	VP       wire.Addr
	Dst      wire.Endpoint
	DstName  string // human name of the destination (resolver name, site)
	Time     time.Time
	TTL      uint8
	Phase    Phase
	// ExpectRecursion marks DNS decoys sent to recursive resolvers in
	// Phase I: exactly one authoritative query (the resolver answering the
	// waiting client) is solicited. Phase II TTL-limited probes and decoys
	// to non-recursive destinations expect none, so even the first DNS
	// re-appearance of their names is unsolicited — the "initial decoy" of
	// rule iii is the probe itself, known from the send log.
	ExpectRecursion bool
}

// PathKey identifies a client-server path.
type PathKey struct {
	VP  wire.Addr
	Dst wire.Addr
}

// Unsolicited is one classified unsolicited request.
type Unsolicited struct {
	Capture honeypot.Capture
	Sent    *Sent
	// Delay is the interval between decoy emission and this request.
	Delay time.Duration
	// Combination is the paper's Decoy-Request label, e.g. "DNS-HTTP".
	Combination string
	// Rule records which classification rule fired (1, 2 or 3).
	Rule int
}

// Correlator accumulates the send log and classifies captures.
type Correlator struct {
	codec *identifier.Codec

	mu      sync.Mutex
	sent    map[string]*Sent // by label
	dnsSeen map[string]int   // label -> count of DNS captures seen so far
	stats   Stats
	m       correlatorMetrics
}

type correlatorMetrics struct {
	captures       *telemetry.Counter
	solicited      *telemetry.Counter
	unknownLabel   *telemetry.Counter
	crcRejected    *telemetry.Counter
	labelCollision *telemetry.Counter
	unsolicited    *telemetry.CounterVec // by rule
	rule1          *telemetry.Counter    // cached children of unsolicited
	rule2          *telemetry.Counter
	rule3          *telemetry.Counter
	delay          *telemetry.Histogram
}

// delayBounds bucket the decoy-to-reuse interval in seconds: 1s, 10s,
// 1m, 10m, 1h, 6h, 1d, 3d, 10d — the resolution behind the paper's
// delay CDF (Figure 4), which spans seconds to days.
var delayBounds = []float64{1, 10, 60, 600, 3600, 21600, 86400, 259200, 864000}

func newCorrelatorMetrics(reg *telemetry.Registry) correlatorMetrics {
	unsolicited := reg.CounterVec("correlate_unsolicited_total", "captures classified unsolicited, by rule", "rule")
	return correlatorMetrics{
		captures:       reg.Counter("correlate_captures_total", "honeypot captures processed by the correlator"),
		solicited:      reg.Counter("correlate_solicited_total", "captures explained by expected recursion"),
		unknownLabel:   reg.Counter("correlate_unknown_label_total", "captures whose label matches no sent decoy"),
		crcRejected:    reg.Counter("correlate_checksum_rejected_total", "identifier-shaped labels failing the CRC"),
		labelCollision: reg.Counter("correlate_label_collisions_total", "send-log records dropped because their label was already live"),
		unsolicited:    unsolicited,
		rule1:          unsolicited.With("1"),
		rule2:          unsolicited.With("2"),
		rule3:          unsolicited.With("3"),
		delay:          reg.Histogram("correlate_delay_seconds", "interval between decoy emission and unsolicited re-use", delayBounds),
	}
}

// Stats summarizes correlation outcomes.
type Stats struct {
	SentDecoys       int64
	Captures         int64
	UnknownLabel     int64 // captures whose label matches no sent decoy
	Solicited        int64 // first DNS appearance of a DNS decoy
	Unsolicited      int64
	ChecksumRejected int64 // identifier-shaped labels failing the CRC
	LabelCollisions  int64 // send records dropped because the label was already live
}

// New creates a correlator sharing the experiment's identifier codec.
// Metrics land in a private telemetry set; call Bind to share one.
func New(codec *identifier.Codec) *Correlator {
	return &Correlator{
		codec:   codec,
		sent:    make(map[string]*Sent),
		dnsSeen: make(map[string]int),
		m:       newCorrelatorMetrics(telemetry.NewRegistry()),
	}
}

// Bind re-homes the correlator's metrics in the given shared set.
// Call before classification; counts recorded earlier stay in the
// private registry.
func (c *Correlator) Bind(set *telemetry.Set) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = newCorrelatorMetrics(set.Registry)
}

// AddSent records one decoy emission. The identifier nonce is a uint16,
// so at campaign scale two live decoys can share a label; the first
// record wins — replacing it would misattribute every later capture of
// the older decoy to the newer emission.
func (c *Correlator) AddSent(s *Sent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.sent[s.Label]; dup {
		c.stats.LabelCollisions++
		c.m.labelCollision.Inc()
		return
	}
	c.sent[s.Label] = s
	c.stats.SentDecoys++
}

// SentByLabel looks up the send record for a label.
func (c *Correlator) SentByLabel(label string) (*Sent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sent[label]
	return s, ok
}

// Stats snapshots the counters.
func (c *Correlator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Classify processes captures in timestamp order and returns the
// unsolicited ones. It may be called once with the full log or
// incrementally with batches; rule iii state (first-DNS-appearance) is
// retained across calls.
func (c *Correlator) Classify(captures []honeypot.Capture) []Unsolicited {
	// Honeypot logs are appended in virtual-time order, so the capture
	// batch is almost always already sorted — skip the defensive copy then.
	ordered := captures
	if !sort.SliceIsSorted(captures, func(i, j int) bool { return captures[i].Time.Before(captures[j].Time) }) {
		ordered = append([]honeypot.Capture(nil), captures...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time.Before(ordered[j].Time) })
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Unsolicited, 0, len(ordered))
	for _, cap := range ordered {
		c.stats.Captures++
		c.m.captures.Inc()
		if cap.Label == "" {
			c.stats.UnknownLabel++
			c.m.unknownLabel.Inc()
			continue
		}
		if _, err := c.codec.Decode(cap.Label); err != nil {
			c.stats.ChecksumRejected++
			c.m.crcRejected.Inc()
			continue
		}
		sent, ok := c.sent[cap.Label]
		if !ok {
			c.stats.UnknownLabel++
			c.m.unknownLabel.Inc()
			continue
		}

		rule := 0
		switch {
		case cap.Protocol == decoy.HTTP || cap.Protocol == decoy.TLS:
			rule = 2
		case cap.Protocol != sent.Protocol:
			rule = 1
		case cap.Protocol == decoy.DNS:
			c.dnsSeen[cap.Label]++
			if !sent.ExpectRecursion || c.dnsSeen[cap.Label] > 1 {
				rule = 3
			}
		}
		if rule == 0 {
			c.stats.Solicited++
			c.m.solicited.Inc()
			continue
		}
		c.stats.Unsolicited++
		switch rule {
		case 1:
			c.m.rule1.Inc()
		case 2:
			c.m.rule2.Inc()
		case 3:
			c.m.rule3.Inc()
		}
		delay := cap.Time.Sub(sent.Time)
		c.m.delay.Observe(delay.Seconds())
		out = append(out, Unsolicited{
			Capture:     cap,
			Sent:        sent,
			Delay:       delay,
			Combination: combination(sent.Protocol, cap.Protocol),
			Rule:        rule,
		})
	}
	return out
}

// combinations precomputes every Decoy-Request label so classification
// never formats strings; TLS arrivals at the web honeypot are "HTTPS" in
// the paper's terminology.
var combinations = [3][3]string{
	decoy.DNS:  {decoy.DNS: "DNS-DNS", decoy.HTTP: "DNS-HTTP", decoy.TLS: "DNS-HTTPS"},
	decoy.HTTP: {decoy.DNS: "HTTP-DNS", decoy.HTTP: "HTTP-HTTP", decoy.TLS: "HTTP-HTTPS"},
	decoy.TLS:  {decoy.DNS: "TLS-DNS", decoy.HTTP: "TLS-HTTP", decoy.TLS: "TLS-HTTPS"},
}

// combination renders the paper's Decoy-Request label, e.g. "DNS-HTTP".
func combination(sent, req decoy.Protocol) string {
	if sent >= 0 && int(sent) < len(combinations) && req >= 0 && int(req) < len(combinations[sent]) {
		return combinations[sent][req]
	}
	name := req.String()
	if req == decoy.TLS {
		name = "HTTPS"
	}
	return fmt.Sprintf("%s-%s", sent, name)
}

// PathsWithUnsolicited groups unsolicited requests by the originating
// client-server path — the unit Figure 3 counts.
func PathsWithUnsolicited(events []Unsolicited) map[PathKey][]Unsolicited {
	out := make(map[PathKey][]Unsolicited)
	for _, u := range events {
		k := PathKey{VP: u.Sent.VP, Dst: u.Sent.Dst.Addr}
		out[k] = append(out[k], u)
	}
	return out
}

// LeakedLabels extracts the set of decoy labels that triggered unsolicited
// requests — the evidence traceroute.Analyze consumes.
func LeakedLabels(events []Unsolicited) map[string]bool {
	out := make(map[string]bool, len(events))
	for _, u := range events {
		out[u.Sent.Label] = true
	}
	return out
}

// PerDecoyCounts tallies unsolicited requests per decoy label, optionally
// restricted to those arriving at least minDelay after emission (the §5.1
// multi-use analysis uses minDelay = 1h).
func PerDecoyCounts(events []Unsolicited, minDelay time.Duration) map[string]int {
	out := make(map[string]int)
	for _, u := range events {
		if u.Delay >= minDelay {
			out[u.Sent.Label]++
		}
	}
	return out
}
