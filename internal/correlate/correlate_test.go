package correlate

import (
	"testing"
	"time"

	"shadowmeter/internal/decoy"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/identifier"
	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/wire"
)

var (
	epoch = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	codec = identifier.NewCodec(epoch)
	vp    = wire.MustParseAddr("100.64.0.1")
	dst   = wire.Endpoint{Addr: wire.MustParseAddr("77.88.8.8"), Port: 53}
)

func mkSent(t *testing.T, proto decoy.Protocol, nonce uint16) *Sent {
	t.Helper()
	id := identifier.ID{Time: epoch, VP: vp, Dst: dst.Addr, TTL: 64, Nonce: nonce}
	label, err := codec.Encode(id)
	if err != nil {
		t.Fatal(err)
	}
	return &Sent{
		Label: label, Domain: label + ".www.experiment.domain",
		Protocol: proto, VP: vp, Dst: dst, DstName: "Yandex",
		Time: epoch, TTL: 64, Phase: PhaseI,
		ExpectRecursion: proto == decoy.DNS, // Phase I decoys to a resolver
	}
}

func TestPhaseIIProbeFirstDNSUnsolicited(t *testing.T) {
	// A TTL-limited Phase II probe never reaches the resolver, so no
	// recursion is expected: even the first DNS re-appearance of its name
	// is unsolicited (the probe itself is rule iii's "earlier query").
	c := New(codec)
	s := mkSent(t, decoy.DNS, 99)
	s.Phase = PhaseII
	s.TTL = 4
	s.ExpectRecursion = false
	c.AddSent(s)
	got := c.Classify([]honeypot.Capture{capture(s, decoy.DNS, epoch.Add(30*time.Minute))})
	if len(got) != 1 || got[0].Rule != 3 {
		t.Fatalf("got = %+v", got)
	}
}

func capture(s *Sent, proto decoy.Protocol, at time.Time) honeypot.Capture {
	return honeypot.Capture{
		Time: at, Location: "US", Protocol: proto,
		Source: wire.Endpoint{Addr: wire.MustParseAddr("8.8.4.4"), Port: 3333},
		Domain: s.Domain, Label: s.Label,
	}
}

func TestRule3RepeatedDNS(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 1)
	c.AddSent(s)
	caps := []honeypot.Capture{
		capture(s, decoy.DNS, epoch.Add(time.Second)),   // solicited recursion
		capture(s, decoy.DNS, epoch.Add(5*time.Second)), // unsolicited repeat
		capture(s, decoy.DNS, epoch.Add(48*time.Hour)),  // unsolicited, days later
	}
	got := c.Classify(caps)
	if len(got) != 2 {
		t.Fatalf("unsolicited = %d, want 2", len(got))
	}
	for _, u := range got {
		if u.Rule != 3 || u.Combination != "DNS-DNS" {
			t.Errorf("event = %+v", u)
		}
	}
	if got[1].Delay != 48*time.Hour {
		t.Errorf("delay = %v", got[1].Delay)
	}
	st := c.Stats()
	if st.Solicited != 1 || st.Unsolicited != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRule2HTTPAtHoneypot(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 2)
	c.AddSent(s)
	got := c.Classify([]honeypot.Capture{capture(s, decoy.HTTP, epoch.Add(10*24*time.Hour))})
	if len(got) != 1 || got[0].Rule != 2 || got[0].Combination != "DNS-HTTP" {
		t.Fatalf("got = %+v", got)
	}
}

func TestHTTPSCombinationName(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.HTTP, 3)
	c.AddSent(s)
	got := c.Classify([]honeypot.Capture{capture(s, decoy.TLS, epoch.Add(time.Hour))})
	if len(got) != 1 || got[0].Combination != "HTTP-HTTPS" {
		t.Fatalf("got = %+v", got)
	}
}

func TestRule1CrossProtocolDNS(t *testing.T) {
	// A TLS decoy's domain showing up as a DNS query: rule i (protocols
	// differ) — even the first DNS appearance is unsolicited.
	c := New(codec)
	s := mkSent(t, decoy.TLS, 4)
	c.AddSent(s)
	got := c.Classify([]honeypot.Capture{capture(s, decoy.DNS, epoch.Add(time.Minute))})
	if len(got) != 1 || got[0].Rule != 1 || got[0].Combination != "TLS-DNS" {
		t.Fatalf("got = %+v", got)
	}
}

func TestUnknownLabelIgnored(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 5)
	// Never AddSent: capture with a valid label that was never emitted.
	got := c.Classify([]honeypot.Capture{capture(s, decoy.HTTP, epoch.Add(time.Hour))})
	if len(got) != 0 {
		t.Fatalf("got = %+v", got)
	}
	if c.Stats().UnknownLabel != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestChecksumRejected(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 6)
	c.AddSent(s)
	cap := capture(s, decoy.HTTP, epoch.Add(time.Hour))
	// Corrupt the label plausibly (still identifier-shaped).
	mut := []byte(cap.Label)
	if mut[0] == 'a' {
		mut[0] = 'b'
	} else {
		mut[0] = 'a'
	}
	cap.Label = string(mut)
	got := c.Classify([]honeypot.Capture{cap})
	if len(got) != 0 || c.Stats().ChecksumRejected != 1 {
		t.Fatalf("got=%d stats=%+v", len(got), c.Stats())
	}
}

func TestOutOfOrderCapturesSorted(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 7)
	c.AddSent(s)
	// Later repeat listed first: sorting must still classify the earliest
	// DNS capture as the solicited one.
	caps := []honeypot.Capture{
		capture(s, decoy.DNS, epoch.Add(time.Hour)),
		capture(s, decoy.DNS, epoch.Add(time.Second)),
	}
	got := c.Classify(caps)
	if len(got) != 1 {
		t.Fatalf("unsolicited = %d, want 1", len(got))
	}
	if got[0].Delay != time.Hour {
		t.Errorf("the repeat (1h) should be unsolicited, got delay %v", got[0].Delay)
	}
}

func TestIncrementalClassification(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 8)
	c.AddSent(s)
	first := c.Classify([]honeypot.Capture{capture(s, decoy.DNS, epoch.Add(time.Second))})
	if len(first) != 0 {
		t.Fatalf("first batch flagged: %+v", first)
	}
	second := c.Classify([]honeypot.Capture{capture(s, decoy.DNS, epoch.Add(time.Hour))})
	if len(second) != 1 || second[0].Rule != 3 {
		t.Fatalf("rule-iii state lost across batches: %+v", second)
	}
}

func TestPathsWithUnsolicited(t *testing.T) {
	c := New(codec)
	s1 := mkSent(t, decoy.DNS, 9)
	s2 := mkSent(t, decoy.DNS, 10)
	s2.VP = wire.MustParseAddr("100.64.0.2")
	c.AddSent(s1)
	c.AddSent(s2)
	events := c.Classify([]honeypot.Capture{
		capture(s1, decoy.HTTP, epoch.Add(time.Hour)),
		capture(s2, decoy.HTTP, epoch.Add(time.Hour)),
		capture(s1, decoy.TLS, epoch.Add(2*time.Hour)),
	})
	paths := PathsWithUnsolicited(events)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	k1 := PathKey{VP: s1.VP, Dst: s1.Dst.Addr}
	if len(paths[k1]) != 2 {
		t.Errorf("path1 events = %d", len(paths[k1]))
	}
}

func TestLeakedLabelsAndPerDecoyCounts(t *testing.T) {
	c := New(codec)
	s := mkSent(t, decoy.DNS, 11)
	c.AddSent(s)
	events := c.Classify([]honeypot.Capture{
		capture(s, decoy.DNS, epoch.Add(time.Second)),    // solicited
		capture(s, decoy.DNS, epoch.Add(30*time.Minute)), // unsolicited, <1h
		capture(s, decoy.HTTP, epoch.Add(2*time.Hour)),
		capture(s, decoy.HTTP, epoch.Add(3*time.Hour)),
		capture(s, decoy.TLS, epoch.Add(4*time.Hour)),
	})
	leaked := LeakedLabels(events)
	if !leaked[s.Label] || len(leaked) != 1 {
		t.Errorf("leaked = %v", leaked)
	}
	counts := PerDecoyCounts(events, time.Hour)
	if counts[s.Label] != 3 {
		t.Errorf("counts(>=1h) = %d, want 3", counts[s.Label])
	}
	all := PerDecoyCounts(events, 0)
	if all[s.Label] != 4 {
		t.Errorf("counts(all) = %d, want 4", all[s.Label])
	}
}

func TestLabelCollisionKeepsFirstRecord(t *testing.T) {
	// The identifier nonce is a uint16, so two live decoys can share a
	// label at campaign scale. The first record must win: replacing it
	// would misattribute every later capture of the older decoy.
	c := New(codec)
	set := telemetry.NewSet()
	c.Bind(set)
	first := mkSent(t, decoy.DNS, 12)
	dup := mkSent(t, decoy.DNS, 12) // same nonce -> same label
	dup.DstName = "impostor"
	dup.Time = epoch.Add(time.Hour)
	c.AddSent(first)
	c.AddSent(dup)

	st := c.Stats()
	if st.SentDecoys != 1 {
		t.Errorf("SentDecoys = %d, want 1 (dup must not count)", st.SentDecoys)
	}
	if st.LabelCollisions != 1 {
		t.Errorf("LabelCollisions = %d, want 1", st.LabelCollisions)
	}
	got, ok := c.SentByLabel(first.Label)
	if !ok || got.DstName != first.DstName || !got.Time.Equal(first.Time) {
		t.Fatalf("SentByLabel = %+v, want the first record kept", got)
	}
	for _, m := range set.Registry.Snapshot() {
		if m.Name == "correlate_label_collisions_total" {
			if m.Value != 1 {
				t.Errorf("collision counter = %d, want 1", m.Value)
			}
			return
		}
	}
	t.Error("correlate_label_collisions_total not registered in bound set")
}

func BenchmarkClassify(b *testing.B) {
	c := New(codec)
	var caps []honeypot.Capture
	for i := 0; i < 1000; i++ {
		id := identifier.ID{Time: epoch, VP: vp, Dst: dst.Addr, TTL: 64, Nonce: uint16(i)}
		label, _ := codec.Encode(id)
		s := &Sent{Label: label, Domain: label + ".www.experiment.domain", Protocol: decoy.DNS, VP: vp, Dst: dst, Time: epoch}
		c.AddSent(s)
		caps = append(caps, honeypot.Capture{
			Time: epoch.Add(time.Duration(i) * time.Second), Protocol: decoy.HTTP,
			Domain: s.Domain, Label: s.Label,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(caps)
	}
}
