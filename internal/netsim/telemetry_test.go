package netsim

import (
	"testing"
	"time"

	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/wire"
)

// countTap counts observed packets.
type countTap struct{ seen int }

func (c *countTap) Observe(*Network, *Router, *wire.Packet) { c.seen++ }

// sendThrough pushes one UDP packet from src to dst and drains the net.
func sendThrough(t *testing.T, n *Network, src, dst wire.Addr) {
	t.Helper()
	raw, err := wire.BuildUDP(
		wire.Endpoint{Addr: src, Port: 4000},
		wire.Endpoint{Addr: dst, Port: 53}, 64, 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SendPacket(raw); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
}

func TestTapsReturnsCopy(t *testing.T) {
	r := &Router{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)}
	n := New(Config{Start: t0, Path: linearPath(r)})
	dst := wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))

	attached := &countTap{}
	r.AttachTap(attached)

	// Appending to the returned slice must not register the new tap.
	rogue := &countTap{}
	got := r.Taps()
	got = append(got, rogue)
	_ = got

	sendThrough(t, n, wire.AddrFrom(100, 0, 0, 1), dst)

	if attached.seen != 1 {
		t.Errorf("attached tap saw %d packets, want 1", attached.seen)
	}
	if rogue.seen != 0 {
		t.Errorf("tap appended to Taps() result saw %d packets, want 0 (internal slice leaked)", rogue.seen)
	}
	if len(r.Taps()) != 1 {
		t.Errorf("router has %d taps, want 1", len(r.Taps()))
	}
}

// metricValue extracts a scalar metric by name from a snapshot.
func metricValue(t *testing.T, reg *telemetry.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

func TestEventLoopMetrics(t *testing.T) {
	r := &Router{Name: "core-1", Addr: wire.AddrFrom(10, 0, 0, 1)}
	set := telemetry.NewSet()
	n := New(Config{Start: t0, Path: linearPath(r), Telemetry: set})
	if n.Telemetry() != set {
		t.Fatal("Telemetry() should return the configured set")
	}

	tap := &countTap{}
	r.AttachTap(tap)
	dst := wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))

	sendThrough(t, n, wire.AddrFrom(100, 0, 0, 1), dst)

	reg := set.Registry
	if got := metricValue(t, reg, "netsim_packets_sent_total"); got != 1 {
		t.Errorf("packets_sent = %d, want 1", got)
	}
	if got := metricValue(t, reg, "netsim_packets_delivered_total"); got != 1 {
		t.Errorf("packets_delivered = %d, want 1", got)
	}
	if got := metricValue(t, reg, "netsim_packets_forwarded_total"); got != 1 {
		t.Errorf("packets_forwarded = %d, want 1", got)
	}
	disp := metricValue(t, reg, "netsim_events_dispatched_total")
	sched := metricValue(t, reg, "netsim_events_scheduled_total")
	if disp == 0 || disp != sched {
		t.Errorf("events dispatched=%d scheduled=%d, want equal and nonzero", disp, sched)
	}
	if got := set.Progress.Events(); got != disp {
		t.Errorf("progress events = %d, want %d", got, disp)
	}

	// The tap-observe family carries the router name label.
	for _, m := range reg.Snapshot() {
		if m.Name != "netsim_tap_observes_total" {
			continue
		}
		if len(m.Children) != 1 || m.Children[0].Label != "core-1" || m.Children[0].Value != 1 {
			t.Errorf("tap_observes children = %+v", m.Children)
		}
	}
}

func TestPrivateSetFallback(t *testing.T) {
	// No Telemetry in the config: the network creates its own set, so the
	// hot path never nil-checks and callers can still read the counters.
	n := New(Config{Start: t0})
	n.Schedule(time.Second, func() {})
	n.RunUntilIdle()
	if n.Telemetry() == nil {
		t.Fatal("Telemetry() must not be nil without an injected set")
	}
	if got := metricValue(t, n.Telemetry().Registry, "netsim_events_dispatched_total"); got != 1 {
		t.Errorf("events_dispatched = %d, want 1", got)
	}
}

// BenchmarkEventLoop measures raw dispatch throughput; events/sec derives
// from the shared registry counter rather than a local tally, so the
// bench also exercises the instrumented hot path.
func BenchmarkEventLoop(b *testing.B) {
	set := telemetry.NewSet()
	n := New(Config{Start: t0, Telemetry: set})
	reg := set.Registry
	dispatched := reg.Counter("netsim_events_dispatched_total", "")
	start := dispatched.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tick func()
		left := 100
		tick = func() {
			left--
			if left > 0 {
				n.Schedule(time.Millisecond, tick)
			}
		}
		n.Schedule(time.Millisecond, tick)
		n.RunUntilIdle()
	}
	b.StopTimer()
	total := dispatched.Value() - start
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkPacketForwarding measures end-to-end delivery through a
// three-router path with the telemetry counters live.
func BenchmarkPacketForwarding(b *testing.B) {
	routers := []*Router{
		{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Name: "r3", Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	set := telemetry.NewSet()
	n := New(Config{Start: t0, Path: linearPath(routers...), Telemetry: set})
	dst := wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))
	raw, err := wire.BuildUDP(
		wire.Endpoint{Addr: wire.AddrFrom(100, 0, 0, 1), Port: 4000},
		wire.Endpoint{Addr: dst, Port: 53}, 64, 1, []byte("payload"))
	if err != nil {
		b.Fatal(err)
	}
	delivered := set.Registry.Counter("netsim_packets_delivered_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.SendPacket(raw); err != nil {
			b.Fatal(err)
		}
		n.RunUntilIdle()
	}
	b.StopTimer()
	if delivered.Value() != int64(b.N) {
		b.Fatalf("delivered %d packets, want %d", delivered.Value(), b.N)
	}
}
