package netsim

import (
	"testing"
	"time"

	"shadowmeter/internal/wire"
)

func twoRouterNet() (*Network, []*Router) {
	routers := []*Router{
		{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)},
	}
	n := New(Config{Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers }})
	return n, routers
}

func TestUDPRequestResponse(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	server := NewHost(n, wire.AddrFrom(192, 0, 2, 53))
	server.ServeUDP(53, func(n *Network, from wire.Endpoint, payload []byte) []byte {
		return append([]byte("re:"), payload...)
	})

	var reply []byte
	client.SendUDPRequest(n, wire.Endpoint{Addr: server.Addr, Port: 53}, []byte("query"), UDPRequestOpts{
		OnReply: func(n *Network, payload []byte) { reply = payload },
	})
	n.RunUntilIdle()
	if string(reply) != "re:query" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestUDPTimeout(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	// No server registered at destination.
	timedOut := false
	replied := false
	client.SendUDPRequest(n, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 53}, []byte("q"), UDPRequestOpts{
		Timeout:   2 * time.Second,
		OnReply:   func(*Network, []byte) { replied = true },
		OnTimeout: func(*Network) { timedOut = true },
	})
	n.RunUntilIdle()
	if !timedOut || replied {
		t.Errorf("timedOut=%v replied=%v", timedOut, replied)
	}
}

func TestUDPNoDoubleCallback(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	server := NewHost(n, wire.AddrFrom(192, 0, 2, 53))
	server.ServeUDP(53, func(n *Network, from wire.Endpoint, payload []byte) []byte { return payload })
	calls := 0
	client.SendUDPRequest(n, wire.Endpoint{Addr: server.Addr, Port: 53}, []byte("q"), UDPRequestOpts{
		Timeout:   time.Second,
		OnReply:   func(*Network, []byte) { calls++ },
		OnTimeout: func(*Network) { calls += 100 },
	})
	n.RunUntilIdle()
	if calls != 1 {
		t.Errorf("calls = %d, want exactly 1 (reply only)", calls)
	}
}

func TestTCPRequestResponse(t *testing.T) {
	n, routers := twoRouterNet()
	tap := &recordingTap{}
	routers[0].AttachTap(tap)

	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	server := NewHost(n, wire.AddrFrom(203, 0, 113, 80))
	server.ServeTCP(80, func(n *Network, from wire.Endpoint, payload []byte) []byte {
		return append([]byte("HTTP/1.1 200 OK\r\n\r\n"), payload...)
	})

	var resp []byte
	client.SendTCPRequest(n, wire.Endpoint{Addr: server.Addr, Port: 80}, []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"), TCPRequestOpts{
		OnResponse: func(n *Network, payload []byte) { resp = payload },
	})
	n.RunUntilIdle()
	if len(resp) == 0 || string(resp[:15]) != "HTTP/1.1 200 OK" {
		t.Fatalf("resp = %q", resp)
	}
	// The tap must have seen the handshake (SYN, ACK, data) client-side
	// packets plus any request payload — at least 3 observations.
	if len(tap.seen) < 3 {
		t.Errorf("tap observed %d packets, want >= 3 (handshake + data)", len(tap.seen))
	}
	foundPayload := false
	for _, s := range tap.seen {
		if len(s) > 0 && s[:3] == "GET" {
			foundPayload = true
		}
	}
	if !foundPayload {
		t.Error("tap never saw the request payload on the wire")
	}
}

func TestTCPFailNoServer(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	failed := false
	client.SendTCPRequest(n, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 80}, []byte("x"), TCPRequestOpts{
		Timeout: time.Second,
		OnFail:  func(*Network) { failed = true },
	})
	n.RunUntilIdle()
	if !failed {
		t.Error("handshake to nonexistent server should fail")
	}
}

func TestSendRawTCPPayload(t *testing.T) {
	n, routers := twoRouterNet()
	tap := &recordingTap{}
	routers[1].AttachTap(tap)
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	// No handshake: single data packet with limited TTL (Phase II mode).
	client.SendRawTCPPayload(n, wire.Endpoint{Addr: wire.AddrFrom(203, 0, 113, 80), Port: 443}, 2, 77, []byte("clienthello-bytes"))
	n.RunUntilIdle()
	if len(tap.seen) != 1 || tap.seen[0] != "clienthello-bytes" {
		t.Fatalf("tap saw %v", tap.seen)
	}
	// TTL=2 expired exactly at r2: the data packet never reached a server,
	// and the only delivery is the ICMP error back to the client.
	if s := n.Stats(); s.TTLExpired != 1 || s.PacketsDelivered != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHostICMPHook(t *testing.T) {
	n, routers := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	var from wire.Addr
	client.OnICMP(func(n *Network, pkt *wire.Packet) { from = pkt.IP.Src })
	client.SendUDPOneShot(n, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 53}, 1, 5, []byte("ttl1"))
	n.RunUntilIdle()
	if from != routers[0].Addr {
		t.Errorf("ICMP from %v, want %v", from, routers[0].Addr)
	}
}

func TestHostUnmatchedHook(t *testing.T) {
	n, _ := twoRouterNet()
	host := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	var unmatched int
	host.OnUnmatched = func(n *Network, pkt *wire.Packet) { unmatched++ }
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(5, 5, 5, 5), Port: 999}, wire.Endpoint{Addr: host.Addr, Port: 31337}, 64, 1, []byte("scan"))
	n.SendPacket(raw)
	n.RunUntilIdle()
	if unmatched != 1 {
		t.Errorf("unmatched = %d", unmatched)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	seen := make(map[uint16]bool)
	for i := 0; i < 100; i++ {
		p := client.SendUDPRequest(n, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 53}, nil, UDPRequestOpts{Timeout: time.Millisecond})
		if seen[p] {
			t.Fatalf("port %d reused", p)
		}
		seen[p] = true
	}
}

func TestConcurrentUDPRequestsSameDst(t *testing.T) {
	n, _ := twoRouterNet()
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	server := NewHost(n, wire.AddrFrom(192, 0, 2, 53))
	server.ServeUDP(53, func(n *Network, from wire.Endpoint, payload []byte) []byte { return payload })
	got := make(map[string]bool)
	for _, q := range []string{"a", "b", "c"} {
		q := q
		client.SendUDPRequest(n, wire.Endpoint{Addr: server.Addr, Port: 53}, []byte(q), UDPRequestOpts{
			OnReply: func(n *Network, payload []byte) { got[string(payload)] = true },
		})
	}
	n.RunUntilIdle()
	if len(got) != 3 {
		t.Errorf("got %v, want 3 distinct replies", got)
	}
}

func BenchmarkEndToEndUDP(b *testing.B) {
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers }})
	client := NewHost(n, wire.AddrFrom(100, 0, 0, 1))
	server := NewHost(n, wire.AddrFrom(192, 0, 2, 53))
	server.ServeUDP(53, func(n *Network, from wire.Endpoint, payload []byte) []byte { return payload })
	payload := []byte("benchmark query payload")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		client.SendUDPRequest(n, wire.Endpoint{Addr: server.Addr, Port: 53}, payload, UDPRequestOpts{})
		n.RunUntilIdle()
	}
}
