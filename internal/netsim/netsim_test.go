package netsim

import (
	"testing"
	"time"

	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func linearPath(routers ...*Router) PathFunc {
	return func(src, dst wire.Addr) []*Router { return routers }
}

func TestScheduleOrdering(t *testing.T) {
	n := New(Config{Start: t0})
	var order []int
	n.Schedule(2*time.Second, func() { order = append(order, 2) })
	n.Schedule(1*time.Second, func() { order = append(order, 1) })
	n.Schedule(1*time.Second, func() { order = append(order, 10) }) // FIFO among equals
	n.Schedule(3*time.Second, func() { order = append(order, 3) })
	n.RunUntilIdle()
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := n.Now(); !got.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
}

func TestRunDeadline(t *testing.T) {
	n := New(Config{Start: t0})
	ran := 0
	n.Schedule(time.Second, func() { ran++ })
	n.Schedule(time.Hour, func() { ran++ })
	n.Run(t0.Add(time.Minute))
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if !n.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("Now = %v, want deadline", n.Now())
	}
	n.RunUntilIdle()
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestPacketDelivery(t *testing.T) {
	r1 := &Router{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)}
	r2 := &Router{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)}
	n := New(Config{Start: t0, Path: linearPath(r1, r2)})

	dst := wire.AddrFrom(192, 0, 2, 1)
	var got []byte
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) {
		got = append([]byte(nil), pkt.TransportPayload()...)
	}))

	raw, err := wire.BuildUDP(
		wire.Endpoint{Addr: wire.AddrFrom(100, 0, 0, 1), Port: 5000},
		wire.Endpoint{Addr: dst, Port: 53}, 64, 1, []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SendPacket(raw); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if string(got) != "query" {
		t.Fatalf("payload = %q", got)
	}
	s := n.Stats()
	if s.PacketsSent != 1 || s.PacketsDelivered != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTTLExpiryGeneratesICMP(t *testing.T) {
	routers := []*Router{
		{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Name: "r3", Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{Start: t0, Path: linearPath(routers...)})

	src := wire.AddrFrom(100, 0, 0, 1)
	dst := wire.AddrFrom(192, 0, 2, 1)
	delivered := false
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered = true }))

	var icmpFrom wire.Addr
	var quotedID uint16
	n.AddHost(src, HandlerFunc(func(n *Network, pkt *wire.Packet) {
		if pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPTimeExceeded {
			icmpFrom = pkt.IP.Src
			if q, err := pkt.ICMP.QuotedIPv4(); err == nil {
				quotedID = q.ID
			}
		}
	}))

	// TTL=2: expires at the second router.
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 4000}, wire.Endpoint{Addr: dst, Port: 53}, 2, 0xCAFE, []byte("probe"))
	n.SendPacket(raw)
	n.RunUntilIdle()

	if delivered {
		t.Error("packet with TTL=2 should not reach destination behind 3 routers")
	}
	if icmpFrom != routers[1].Addr {
		t.Errorf("ICMP from %v, want %v", icmpFrom, routers[1].Addr)
	}
	if quotedID != 0xCAFE {
		t.Errorf("quoted IP ID = %#x, want 0xCAFE", quotedID)
	}
	if n.Stats().TTLExpired != 1 || n.Stats().ICMPSent != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestTTLReachability(t *testing.T) {
	// Exactly TTL = hops+1 is needed to reach the destination.
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	for ttl := uint8(1); ttl <= 5; ttl++ {
		n := New(Config{Start: t0, Path: linearPath(routers...)})
		src, dst := wire.AddrFrom(100, 0, 0, 1), wire.AddrFrom(192, 0, 2, 1)
		delivered := false
		n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered = true }))
		raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, ttl, 1, nil)
		n.SendPacket(raw)
		n.RunUntilIdle()
		want := ttl >= 4
		if delivered != want {
			t.Errorf("TTL=%d delivered=%v, want %v", ttl, delivered, want)
		}
	}
}

func TestICMPSilentRouter(t *testing.T) {
	r := &Router{Addr: wire.AddrFrom(10, 0, 0, 1), ICMPSilent: true}
	n := New(Config{Start: t0, Path: linearPath(r)})
	src := wire.AddrFrom(100, 0, 0, 1)
	gotICMP := false
	n.AddHost(src, HandlerFunc(func(n *Network, pkt *wire.Packet) { gotICMP = pkt.ICMP != nil }))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 2}, 1, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	if gotICMP {
		t.Error("silent router must not answer")
	}
	if n.Stats().TTLExpired != 1 || n.Stats().ICMPSent != 0 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

type recordingTap struct {
	seen []string
	ttls []uint8
}

func (rt *recordingTap) Observe(n *Network, at *Router, pkt *wire.Packet) {
	rt.seen = append(rt.seen, string(pkt.TransportPayload()))
	rt.ttls = append(rt.ttls, pkt.IP.TTL)
}

func TestTapObservesBeforeTTLCheck(t *testing.T) {
	tap := &recordingTap{}
	r1 := &Router{Addr: wire.AddrFrom(10, 0, 0, 1)}
	r2 := &Router{Addr: wire.AddrFrom(10, 0, 0, 2)}
	r2.AttachTap(tap)
	n := New(Config{Start: t0, Path: linearPath(r1, r2)})
	src, dst := wire.AddrFrom(100, 0, 0, 1), wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(src, HandlerFunc(func(*Network, *wire.Packet) {}))

	// TTL=2 expires exactly at r2; the tap must still see it.
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 2, 1, []byte("sniffme"))
	n.SendPacket(raw)
	n.RunUntilIdle()
	if len(tap.seen) != 1 || tap.seen[0] != "sniffme" {
		t.Fatalf("tap saw %v", tap.seen)
	}
	if tap.ttls[0] != 1 {
		t.Errorf("observed TTL = %d, want 1 (decremented once at r1)", tap.ttls[0])
	}

	// TTL=1 expires at r1; r2's tap must NOT see it.
	tap.seen = nil
	raw, _ = wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 1, 2, []byte("hidden"))
	n.SendPacket(raw)
	n.RunUntilIdle()
	if len(tap.seen) != 0 {
		t.Errorf("tap at hop 2 saw a TTL=1 packet: %v", tap.seen)
	}
}

func TestNoHandlerCounted(t *testing.T) {
	n := New(Config{Start: t0})
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1}, wire.Endpoint{Addr: wire.AddrFrom(2, 2, 2, 2), Port: 2}, 64, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	if n.Stats().NoHandler != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestSendPacketRejectsGarbage(t *testing.T) {
	n := New(Config{Start: t0})
	if err := n.SendPacket([]byte("junk")); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestVirtualTimeLatency(t *testing.T) {
	routers := []*Router{{Addr: wire.AddrFrom(10, 0, 0, 1)}, {Addr: wire.AddrFrom(10, 0, 0, 2)}}
	n := New(Config{Start: t0, Path: linearPath(routers...), HopLatency: 10 * time.Millisecond})
	dst := wire.AddrFrom(192, 0, 2, 1)
	var at time.Time
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { at = n.Now() }))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 64, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	// 2 router hops + final delivery = 3 latency units.
	if want := t0.Add(30 * time.Millisecond); !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestMaxEventsBound(t *testing.T) {
	n := New(Config{Start: t0})
	n.SetMaxEvents(10)
	var boom func(d time.Duration)
	boom = func(d time.Duration) {
		n.Schedule(d, func() { boom(d + time.Millisecond) })
	}
	boom(time.Millisecond)
	processed := n.RunUntilIdle()
	if processed != 10 {
		t.Errorf("processed = %d, want 10 (bounded)", processed)
	}
}

func TestRunClockStopsAtMaxEvents(t *testing.T) {
	// When the maxEvents safety valve breaks the loop, the clock must stay
	// at the last dispatched event: fast-forwarding to the deadline would
	// leave the survivors stamped in the past for the next run.
	n := New(Config{Start: t0})
	n.SetMaxEvents(1)
	n.Schedule(time.Second, func() {})
	n.Schedule(2*time.Second, func() {})
	deadline := t0.Add(time.Hour)
	if got := n.Run(deadline); got != 1 {
		t.Fatalf("processed = %d, want 1", got)
	}
	if !n.Now().Equal(t0.Add(time.Second)) {
		t.Fatalf("Now = %v, want %v (not the deadline)", n.Now(), t0.Add(time.Second))
	}

	// The surviving event still dispatches at its own timestamp.
	n.SetMaxEvents(0)
	var at time.Time
	n.Schedule(5*time.Second, func() { at = n.Now() })
	n.RunUntilIdle()
	if want := t0.Add(time.Second + 5*time.Second); !at.Equal(want) {
		t.Errorf("late event ran at %v, want %v", at, want)
	}

	// A clean drain to the deadline still fast-forwards.
	n2 := New(Config{Start: t0})
	n2.SetMaxEvents(10)
	n2.Schedule(time.Second, func() {})
	n2.Run(deadline)
	if !n2.Now().Equal(deadline) {
		t.Errorf("drained run: Now = %v, want deadline %v", n2.Now(), deadline)
	}
}

func TestICMPReturnLatencyProportional(t *testing.T) {
	// Phase II infers observer distance from per-TTL RTTs, so the ICMP
	// return trip must scale with how far the probe got: arrival at
	// send + 2*TTL*hopLatency, strictly increasing across the sweep.
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
		{Addr: wire.AddrFrom(10, 0, 0, 4)},
	}
	const hop = 10 * time.Millisecond
	var prev time.Duration
	for ttl := uint8(1); ttl <= 4; ttl++ {
		n := New(Config{Start: t0, Path: linearPath(routers...), HopLatency: hop})
		src := wire.AddrFrom(100, 0, 0, 1)
		var rtt time.Duration
		n.AddHost(src, HandlerFunc(func(n *Network, pkt *wire.Packet) {
			if pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPTimeExceeded {
				rtt = n.Now().Sub(t0)
			}
		}))
		raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1},
			wire.Endpoint{Addr: wire.AddrFrom(192, 0, 2, 1), Port: 2}, ttl, 1, nil)
		n.SendPacket(raw)
		n.RunUntilIdle()
		want := 2 * time.Duration(ttl) * hop
		if rtt != want {
			t.Errorf("TTL=%d: RTT = %v, want %v", ttl, rtt, want)
		}
		if rtt <= prev {
			t.Errorf("TTL=%d: RTT %v not greater than previous %v", ttl, rtt, prev)
		}
		prev = rtt
	}
}

func TestNoRouteNotDeliveredHopFree(t *testing.T) {
	// A nil path from the topology means "no route" even when the
	// destination is a registered host: delivering hop-free would bypass
	// every tap and the topology's own verdict.
	tap := &recordingTap{}
	r := &Router{Addr: wire.AddrFrom(10, 0, 0, 1)}
	r.AttachTap(tap)
	n := New(Config{Start: t0, Path: func(src, dst wire.Addr) []*Router { return nil }})
	dst := wire.AddrFrom(192, 0, 2, 1)
	delivered := false
	n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) { delivered = true }))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(100, 0, 0, 1), Port: 1},
		wire.Endpoint{Addr: dst, Port: 2}, 64, 1, nil)
	if err := n.SendPacket(raw); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if delivered {
		t.Error("unroutable packet was delivered hop-free to a registered host")
	}
	if len(tap.seen) != 0 {
		t.Errorf("tap saw %v for an unroutable packet", tap.seen)
	}
	s := n.Stats()
	if s.NoRoute != 1 || s.PacketsDelivered != 0 {
		t.Errorf("stats = %+v, want NoRoute=1 Delivered=0", s)
	}
}

func TestForwardPathAllocationFree(t *testing.T) {
	// The event and flight pools keep the steady-state forward path nearly
	// allocation-free: one alloc for the packet copy in SendPacket plus
	// heap-slice noise, nothing per hop.
	routers := []*Router{
		{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Name: "r3", Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{Start: t0, Path: linearPath(routers...)})
	dst := wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(100, 0, 0, 1), Port: 1},
		wire.Endpoint{Addr: dst, Port: 2}, 64, 1, []byte("payload"))
	// Warm the pools and the per-router tap-counter cache.
	for i := 0; i < 10; i++ {
		n.Inject(raw)
		n.RunUntilIdle()
	}
	avg := testing.AllocsPerRun(100, func() {
		n.Inject(raw)
		n.RunUntilIdle()
	})
	if avg > 4 {
		t.Errorf("forward path allocates %.1f allocs/send, want <= 4", avg)
	}
}

func TestPacketLossInjection(t *testing.T) {
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{
		Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers },
		LossRate: 0.3, LossSeed: 7,
	})
	dst := wire.AddrFrom(192, 0, 2, 1)
	delivered := 0
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered++ }))
	const sent = 500
	for i := 0; i < sent; i++ {
		raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1},
			wire.Endpoint{Addr: dst, Port: 2}, 64, uint16(i+1), nil)
		n.SendPacket(raw)
	}
	n.RunUntilIdle()
	s := n.Stats()
	if s.PacketsLost == 0 {
		t.Fatal("no loss injected")
	}
	if delivered == 0 {
		t.Fatal("everything lost at 30% per-hop rate")
	}
	// Per-hop loss 0.3 over 3 hops => survival ~0.343; allow wide noise.
	frac := float64(delivered) / float64(sent)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("delivery fraction = %v, want ~0.34", frac)
	}
	if s.PacketsLost+int64(delivered) > int64(sent) {
		// Lost counts per-hop drops of distinct packets only; a packet lost
		// at hop 1 is never re-dropped.
		t.Errorf("loss accounting off: lost=%d delivered=%d", s.PacketsLost, delivered)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int64 {
		routers := []*Router{{Addr: wire.AddrFrom(10, 0, 0, 1)}}
		n := New(Config{Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers },
			LossRate: 0.5, LossSeed: 3})
		dst := wire.AddrFrom(192, 0, 2, 1)
		n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))
		for i := 0; i < 200; i++ {
			raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1},
				wire.Endpoint{Addr: dst, Port: 2}, 64, uint16(i+1), nil)
			n.SendPacket(raw)
		}
		n.RunUntilIdle()
		return n.Stats().PacketsLost
	}
	if a, b := run(), run(); a != b {
		t.Errorf("loss not deterministic: %d vs %d", a, b)
	}
}
