package netsim

import (
	"testing"
	"time"

	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func linearPath(routers ...*Router) PathFunc {
	return func(src, dst wire.Addr) []*Router { return routers }
}

func TestScheduleOrdering(t *testing.T) {
	n := New(Config{Start: t0})
	var order []int
	n.Schedule(2*time.Second, func() { order = append(order, 2) })
	n.Schedule(1*time.Second, func() { order = append(order, 1) })
	n.Schedule(1*time.Second, func() { order = append(order, 10) }) // FIFO among equals
	n.Schedule(3*time.Second, func() { order = append(order, 3) })
	n.RunUntilIdle()
	want := []int{1, 10, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := n.Now(); !got.Equal(t0.Add(3 * time.Second)) {
		t.Errorf("Now = %v", got)
	}
}

func TestRunDeadline(t *testing.T) {
	n := New(Config{Start: t0})
	ran := 0
	n.Schedule(time.Second, func() { ran++ })
	n.Schedule(time.Hour, func() { ran++ })
	n.Run(t0.Add(time.Minute))
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if !n.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("Now = %v, want deadline", n.Now())
	}
	n.RunUntilIdle()
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestPacketDelivery(t *testing.T) {
	r1 := &Router{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)}
	r2 := &Router{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)}
	n := New(Config{Start: t0, Path: linearPath(r1, r2)})

	dst := wire.AddrFrom(192, 0, 2, 1)
	var got []byte
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) {
		got = append([]byte(nil), pkt.TransportPayload()...)
	}))

	raw, err := wire.BuildUDP(
		wire.Endpoint{Addr: wire.AddrFrom(100, 0, 0, 1), Port: 5000},
		wire.Endpoint{Addr: dst, Port: 53}, 64, 1, []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SendPacket(raw); err != nil {
		t.Fatal(err)
	}
	n.RunUntilIdle()
	if string(got) != "query" {
		t.Fatalf("payload = %q", got)
	}
	s := n.Stats()
	if s.PacketsSent != 1 || s.PacketsDelivered != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTTLExpiryGeneratesICMP(t *testing.T) {
	routers := []*Router{
		{Name: "r1", Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Name: "r2", Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Name: "r3", Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{Start: t0, Path: linearPath(routers...)})

	src := wire.AddrFrom(100, 0, 0, 1)
	dst := wire.AddrFrom(192, 0, 2, 1)
	delivered := false
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered = true }))

	var icmpFrom wire.Addr
	var quotedID uint16
	n.AddHost(src, HandlerFunc(func(n *Network, pkt *wire.Packet) {
		if pkt.ICMP != nil && pkt.ICMP.Type == wire.ICMPTimeExceeded {
			icmpFrom = pkt.IP.Src
			if q, err := pkt.ICMP.QuotedIPv4(); err == nil {
				quotedID = q.ID
			}
		}
	}))

	// TTL=2: expires at the second router.
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 4000}, wire.Endpoint{Addr: dst, Port: 53}, 2, 0xCAFE, []byte("probe"))
	n.SendPacket(raw)
	n.RunUntilIdle()

	if delivered {
		t.Error("packet with TTL=2 should not reach destination behind 3 routers")
	}
	if icmpFrom != routers[1].Addr {
		t.Errorf("ICMP from %v, want %v", icmpFrom, routers[1].Addr)
	}
	if quotedID != 0xCAFE {
		t.Errorf("quoted IP ID = %#x, want 0xCAFE", quotedID)
	}
	if n.Stats().TTLExpired != 1 || n.Stats().ICMPSent != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestTTLReachability(t *testing.T) {
	// Exactly TTL = hops+1 is needed to reach the destination.
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	for ttl := uint8(1); ttl <= 5; ttl++ {
		n := New(Config{Start: t0, Path: linearPath(routers...)})
		src, dst := wire.AddrFrom(100, 0, 0, 1), wire.AddrFrom(192, 0, 2, 1)
		delivered := false
		n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered = true }))
		raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, ttl, 1, nil)
		n.SendPacket(raw)
		n.RunUntilIdle()
		want := ttl >= 4
		if delivered != want {
			t.Errorf("TTL=%d delivered=%v, want %v", ttl, delivered, want)
		}
	}
}

func TestICMPSilentRouter(t *testing.T) {
	r := &Router{Addr: wire.AddrFrom(10, 0, 0, 1), ICMPSilent: true}
	n := New(Config{Start: t0, Path: linearPath(r)})
	src := wire.AddrFrom(100, 0, 0, 1)
	gotICMP := false
	n.AddHost(src, HandlerFunc(func(n *Network, pkt *wire.Packet) { gotICMP = pkt.ICMP != nil }))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: wire.AddrFrom(9, 9, 9, 9), Port: 2}, 1, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	if gotICMP {
		t.Error("silent router must not answer")
	}
	if n.Stats().TTLExpired != 1 || n.Stats().ICMPSent != 0 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

type recordingTap struct {
	seen []string
	ttls []uint8
}

func (rt *recordingTap) Observe(n *Network, at *Router, pkt *wire.Packet) {
	rt.seen = append(rt.seen, string(pkt.TransportPayload()))
	rt.ttls = append(rt.ttls, pkt.IP.TTL)
}

func TestTapObservesBeforeTTLCheck(t *testing.T) {
	tap := &recordingTap{}
	r1 := &Router{Addr: wire.AddrFrom(10, 0, 0, 1)}
	r2 := &Router{Addr: wire.AddrFrom(10, 0, 0, 2)}
	r2.AttachTap(tap)
	n := New(Config{Start: t0, Path: linearPath(r1, r2)})
	src, dst := wire.AddrFrom(100, 0, 0, 1), wire.AddrFrom(192, 0, 2, 1)
	n.AddHost(src, HandlerFunc(func(*Network, *wire.Packet) {}))

	// TTL=2 expires exactly at r2; the tap must still see it.
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 2, 1, []byte("sniffme"))
	n.SendPacket(raw)
	n.RunUntilIdle()
	if len(tap.seen) != 1 || tap.seen[0] != "sniffme" {
		t.Fatalf("tap saw %v", tap.seen)
	}
	if tap.ttls[0] != 1 {
		t.Errorf("observed TTL = %d, want 1 (decremented once at r1)", tap.ttls[0])
	}

	// TTL=1 expires at r1; r2's tap must NOT see it.
	tap.seen = nil
	raw, _ = wire.BuildUDP(wire.Endpoint{Addr: src, Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 1, 2, []byte("hidden"))
	n.SendPacket(raw)
	n.RunUntilIdle()
	if len(tap.seen) != 0 {
		t.Errorf("tap at hop 2 saw a TTL=1 packet: %v", tap.seen)
	}
}

func TestNoHandlerCounted(t *testing.T) {
	n := New(Config{Start: t0})
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1}, wire.Endpoint{Addr: wire.AddrFrom(2, 2, 2, 2), Port: 2}, 64, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	if n.Stats().NoHandler != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestSendPacketRejectsGarbage(t *testing.T) {
	n := New(Config{Start: t0})
	if err := n.SendPacket([]byte("junk")); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestVirtualTimeLatency(t *testing.T) {
	routers := []*Router{{Addr: wire.AddrFrom(10, 0, 0, 1)}, {Addr: wire.AddrFrom(10, 0, 0, 2)}}
	n := New(Config{Start: t0, Path: linearPath(routers...), HopLatency: 10 * time.Millisecond})
	dst := wire.AddrFrom(192, 0, 2, 1)
	var at time.Time
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { at = n.Now() }))
	raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1}, wire.Endpoint{Addr: dst, Port: 2}, 64, 1, nil)
	n.SendPacket(raw)
	n.RunUntilIdle()
	// 2 router hops + final delivery = 3 latency units.
	if want := t0.Add(30 * time.Millisecond); !at.Equal(want) {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestMaxEventsBound(t *testing.T) {
	n := New(Config{Start: t0})
	n.SetMaxEvents(10)
	var boom func(d time.Duration)
	boom = func(d time.Duration) {
		n.Schedule(d, func() { boom(d + time.Millisecond) })
	}
	boom(time.Millisecond)
	processed := n.RunUntilIdle()
	if processed != 10 {
		t.Errorf("processed = %d, want 10 (bounded)", processed)
	}
}

func TestPacketLossInjection(t *testing.T) {
	routers := []*Router{
		{Addr: wire.AddrFrom(10, 0, 0, 1)},
		{Addr: wire.AddrFrom(10, 0, 0, 2)},
		{Addr: wire.AddrFrom(10, 0, 0, 3)},
	}
	n := New(Config{
		Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers },
		LossRate: 0.3, LossSeed: 7,
	})
	dst := wire.AddrFrom(192, 0, 2, 1)
	delivered := 0
	n.AddHost(dst, HandlerFunc(func(n *Network, pkt *wire.Packet) { delivered++ }))
	const sent = 500
	for i := 0; i < sent; i++ {
		raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1},
			wire.Endpoint{Addr: dst, Port: 2}, 64, uint16(i+1), nil)
		n.SendPacket(raw)
	}
	n.RunUntilIdle()
	s := n.Stats()
	if s.PacketsLost == 0 {
		t.Fatal("no loss injected")
	}
	if delivered == 0 {
		t.Fatal("everything lost at 30% per-hop rate")
	}
	// Per-hop loss 0.3 over 3 hops => survival ~0.343; allow wide noise.
	frac := float64(delivered) / float64(sent)
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("delivery fraction = %v, want ~0.34", frac)
	}
	if s.PacketsLost+int64(delivered) > int64(sent) {
		// Lost counts per-hop drops of distinct packets only; a packet lost
		// at hop 1 is never re-dropped.
		t.Errorf("loss accounting off: lost=%d delivered=%d", s.PacketsLost, delivered)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() int64 {
		routers := []*Router{{Addr: wire.AddrFrom(10, 0, 0, 1)}}
		n := New(Config{Start: t0, Path: func(src, dst wire.Addr) []*Router { return routers },
			LossRate: 0.5, LossSeed: 3})
		dst := wire.AddrFrom(192, 0, 2, 1)
		n.AddHost(dst, HandlerFunc(func(*Network, *wire.Packet) {}))
		for i := 0; i < 200; i++ {
			raw, _ := wire.BuildUDP(wire.Endpoint{Addr: wire.AddrFrom(1, 1, 1, 1), Port: 1},
				wire.Endpoint{Addr: dst, Port: 2}, 64, uint16(i+1), nil)
			n.SendPacket(raw)
		}
		n.RunUntilIdle()
		return n.Stats().PacketsLost
	}
	if a, b := run(), run(); a != b {
		t.Errorf("loss not deterministic: %d vs %d", a, b)
	}
}
