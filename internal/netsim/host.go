package netsim

import (
	"time"

	"shadowmeter/internal/wire"
)

// Host is a protocol multiplexer for one simulated address: UDP services,
// TCP services, a lightweight TCP/UDP client, and an ICMP hook. Vantage
// points, resolvers, web servers and honeypots are all Hosts.
type Host struct {
	Addr wire.Addr

	udpServices map[uint16]UDPService
	tcpServices map[uint16]TCPApp
	onICMP      func(n *Network, pkt *wire.Packet)

	// client state
	nextEphemeral uint16
	nextIPID      uint16
	udpWaiters    map[udpWaiterKey]*udpWaiter
	tcpFlows      map[tcpFlowKey]*clientFlow

	// freeWaiters recycles udpWaiter structs. A waiter returns to the
	// pool only when its (single, typed) timeout event fires — each
	// generation schedules exactly one — so the pool can never hold a
	// waiter that a queued event still refers to under its current
	// generation.
	freeWaiters []*udpWaiter

	// OnUnmatched, if set, sees packets no service or client flow claimed.
	OnUnmatched func(n *Network, pkt *wire.Packet)
}

// UDPService handles datagrams arriving on a UDP port. Return a non-nil
// reply to answer the sender (a nil return means no response).
type UDPService func(n *Network, from wire.Endpoint, payload []byte) []byte

// TCPApp handles one request payload on an accepted TCP "connection" and
// returns the response payload.
type TCPApp func(n *Network, from wire.Endpoint, payload []byte) []byte

// NewHost creates a host and registers it on the network.
func NewHost(n *Network, addr wire.Addr) *Host {
	h := &Host{
		Addr:          addr,
		udpServices:   make(map[uint16]UDPService),
		tcpServices:   make(map[uint16]TCPApp),
		nextEphemeral: 32768,
		udpWaiters:    make(map[udpWaiterKey]*udpWaiter),
		tcpFlows:      make(map[tcpFlowKey]*clientFlow),
	}
	n.AddHost(addr, h)
	return h
}

// ServeUDP registers a UDP service on port.
func (h *Host) ServeUDP(port uint16, svc UDPService) { h.udpServices[port] = svc }

// ServeTCP registers a TCP application on port.
func (h *Host) ServeTCP(port uint16, app TCPApp) { h.tcpServices[port] = app }

// OnICMP registers the ICMP hook (traceroute return channel).
func (h *Host) OnICMP(fn func(n *Network, pkt *wire.Packet)) { h.onICMP = fn }

// Handle implements Handler. It runs once per delivered packet — an
// explicit hot-path root, since interface dispatch hides it from the
// forwarding engine's static call graph.
//
//shadowlint:hotpath
func (h *Host) Handle(n *Network, pkt *wire.Packet) {
	switch {
	case pkt.ICMP != nil:
		if h.onICMP != nil {
			h.onICMP(n, pkt)
			return
		}
	case pkt.UDP != nil:
		if h.handleUDP(n, pkt) {
			return
		}
	case pkt.TCP != nil:
		if h.handleTCP(n, pkt) {
			return
		}
	}
	if h.OnUnmatched != nil {
		h.OnUnmatched(n, pkt)
	}
}

func (h *Host) handleUDP(n *Network, pkt *wire.Packet) bool {
	from := wire.Endpoint{Addr: pkt.IP.Src, Port: pkt.UDP.SrcPort}
	// Server side.
	if svc, ok := h.udpServices[pkt.UDP.DstPort]; ok {
		payload := append([]byte(nil), pkt.UDP.Payload()...)
		if reply := svc(n, from, payload); reply != nil {
			h.sendUDPRaw(n, wire.Endpoint{Addr: h.Addr, Port: pkt.UDP.DstPort}, from, 64, reply)
		}
		return true
	}
	// Client side: a reply to an outstanding request? The waiter leaves
	// the map now but returns to the pool only when its timeout event
	// fires (see udpTimeout); the callbacks are dropped here so the event
	// queue is not what keeps request closures alive.
	if w, ok := h.udpWaiters[udpWaiterKey{dst: from, sport: pkt.UDP.DstPort}]; ok {
		delete(h.udpWaiters, udpWaiterKey{dst: from, sport: pkt.UDP.DstPort})
		cb := w.onReply
		w.onReply, w.onTimeout = nil, nil
		if cb != nil {
			cb(n, append([]byte(nil), pkt.UDP.Payload()...))
		}
		return true
	}
	return false
}

// udpWaiterKey identifies an outstanding UDP request: the destination it
// was sent to plus the ephemeral source port it was sent from. A flat map
// keyed by both avoids a per-destination inner map on every request.
type udpWaiterKey struct {
	dst   wire.Endpoint
	sport uint16
}

// udpWaiter is pooled per host. gen increments on every acquisition, so a
// timeout event carrying (waiter, gen) can tell whether it belongs to the
// request it was armed for or to a later reuse of the same struct.
type udpWaiter struct {
	onReply   func(n *Network, payload []byte)
	onTimeout func(n *Network)
	key       udpWaiterKey
	gen       uint64
}

// newWaiter takes a waiter from the pool (or allocates one) and bumps its
// generation.
func (h *Host) newWaiter() *udpWaiter {
	var w *udpWaiter
	if k := len(h.freeWaiters); k > 0 {
		w = h.freeWaiters[k-1]
		h.freeWaiters = h.freeWaiters[:k-1]
	} else {
		w = &udpWaiter{}
	}
	w.gen++
	return w
}

// releaseWaiter drops the waiter's callback references and pools it.
func (h *Host) releaseWaiter(w *udpWaiter) {
	w.onReply, w.onTimeout = nil, nil
	h.freeWaiters = append(h.freeWaiters, w)
}

// udpTimeout is the dispatch target of a waiter's typed timeout event: the
// sole release point of generation gen. If the generation is stale the
// waiter was already reclaimed and re-armed — nothing to do. If the waiter
// still sits in the map this generation timed out for real; otherwise its
// reply was consumed and the event only needs to return the struct to the
// pool.
func (h *Host) udpTimeout(n *Network, w *udpWaiter, gen uint64) {
	if w.gen != gen {
		return
	}
	if cur, ok := h.udpWaiters[w.key]; ok && cur == w {
		delete(h.udpWaiters, w.key)
		cb := w.onTimeout
		h.releaseWaiter(w)
		if cb != nil {
			cb(n)
		}
		return
	}
	h.releaseWaiter(w)
}

// UDPRequestOpts parameterizes SendUDPRequest.
type UDPRequestOpts struct {
	TTL     uint8         // initial IP TTL; 0 means 64
	IPID    uint16        // 0 means auto-assign
	Timeout time.Duration // 0 means 5s of virtual time
	// OnReply receives the response payload (nil-safe).
	OnReply func(n *Network, payload []byte)
	// OnTimeout fires if no reply arrived before Timeout (nil-safe).
	OnTimeout func(n *Network)
}

// SendUDPRequest sends payload to dst from an ephemeral port and invokes
// OnReply with the response. It returns the chosen source port.
func (h *Host) SendUDPRequest(n *Network, dst wire.Endpoint, payload []byte, opts UDPRequestOpts) uint16 {
	sport := h.allocPort()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = 64
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	w := h.newWaiter()
	w.onReply, w.onTimeout = opts.OnReply, opts.OnTimeout
	w.key = udpWaiterKey{dst: dst, sport: sport}
	h.udpWaiters[w.key] = w
	src := wire.Endpoint{Addr: h.Addr, Port: sport}
	raw, err := wire.BuildUDP(src, dst, ttl, h.ipID(opts.IPID), payload)
	if err == nil {
		n.InjectOwned(raw)
	}
	e := n.newEvent()
	e.udpHost, e.udpW, e.udpGen = h, w, w.gen
	n.scheduleEvent(timeout, e)
	return sport
}

// SendUDPOneShot sends a datagram without waiting for any reply (used by
// Phase II tracerouting, where the interesting response is ICMP, and by
// shadowing exhibitors issuing fire-and-forget probes).
func (h *Host) SendUDPOneShot(n *Network, dst wire.Endpoint, ttl uint8, ipID uint16, payload []byte) {
	src := wire.Endpoint{Addr: h.Addr, Port: h.allocPort()}
	h.sendUDPFrom(n, src, dst, ttl, ipID, payload)
}

func (h *Host) sendUDPFrom(n *Network, src, dst wire.Endpoint, ttl uint8, ipID uint16, payload []byte) {
	if ttl == 0 {
		ttl = 64
	}
	raw, err := wire.BuildUDP(src, dst, ttl, h.ipID(ipID), payload)
	if err == nil {
		n.InjectOwned(raw)
	}
}

func (h *Host) sendUDPRaw(n *Network, src, dst wire.Endpoint, ttl uint8, payload []byte) {
	raw, err := wire.BuildUDP(src, dst, ttl, h.ipID(0), payload)
	if err == nil {
		n.InjectOwned(raw)
	}
}

type tcpFlowKey struct {
	remote wire.Endpoint
	local  uint16
}

type clientFlow struct {
	state      int // 0 syn-sent, 1 established (payload sent), 2 closed
	ttl        uint8
	ipID       uint16
	payload    []byte
	onResponse func(n *Network, payload []byte)
	onFail     func(n *Network)
	isn        uint32
}

const (
	flowSynSent = iota
	flowEstablished
	flowClosed
)

// TCPRequestOpts parameterizes SendTCPRequest.
type TCPRequestOpts struct {
	TTL     uint8
	IPID    uint16
	Timeout time.Duration
	// OnResponse receives the server's response payload.
	OnResponse func(n *Network, payload []byte)
	// OnFail fires on handshake/response timeout.
	OnFail func(n *Network)
}

// SendTCPRequest opens a minimal TCP exchange with dst: SYN, SYN-ACK, ACK,
// one request payload, one response payload. The full exchange crosses the
// simulated path packet by packet, so on-path taps observe the handshake
// and the request bytes exactly as a middlebox would. It returns the local
// port.
func (h *Host) SendTCPRequest(n *Network, dst wire.Endpoint, payload []byte, opts TCPRequestOpts) uint16 {
	sport := h.allocPort()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = 64
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	key := tcpFlowKey{remote: dst, local: sport}
	fl := &clientFlow{
		state:      flowSynSent,
		ttl:        ttl,
		ipID:       opts.IPID,
		payload:    payload,
		onResponse: opts.OnResponse,
		onFail:     opts.OnFail,
		isn:        uint32(sport)<<16 | 0x1234,
	}
	h.tcpFlows[key] = fl
	src := wire.Endpoint{Addr: h.Addr, Port: sport}
	raw, err := wire.BuildTCP(src, dst, ttl, h.ipID(opts.IPID), wire.TCPSyn, fl.isn, 0, nil)
	if err == nil {
		n.InjectOwned(raw)
	}
	n.Schedule(timeout, func() {
		if cur, ok := h.tcpFlows[key]; ok && cur == fl && fl.state != flowClosed {
			fl.state = flowClosed
			delete(h.tcpFlows, key)
			if fl.onFail != nil {
				fl.onFail(n)
			}
		}
	})
	return sport
}

// SendRawTCPPayload emits a single TCP data packet without any handshake —
// the Phase II traceroute mode for HTTP/TLS decoys ("we do not perform TCP
// handshakes with destinations before tracerouting").
func (h *Host) SendRawTCPPayload(n *Network, dst wire.Endpoint, ttl uint8, ipID uint16, payload []byte) {
	src := wire.Endpoint{Addr: h.Addr, Port: h.allocPort()}
	raw, err := wire.BuildTCP(src, dst, ttl, h.ipID(ipID), wire.TCPPsh|wire.TCPAck, 1, 1, payload)
	if err == nil {
		n.InjectOwned(raw)
	}
}

func (h *Host) handleTCP(n *Network, pkt *wire.Packet) bool {
	t := pkt.TCP
	from := wire.Endpoint{Addr: pkt.IP.Src, Port: t.SrcPort}

	// Server side.
	if app, ok := h.tcpServices[t.DstPort]; ok {
		h.serveTCP(n, app, from, t)
		return true
	}

	// Client side.
	key := tcpFlowKey{remote: from, local: t.DstPort}
	fl, ok := h.tcpFlows[key]
	if !ok {
		return false
	}
	local := wire.Endpoint{Addr: h.Addr, Port: t.DstPort}
	switch {
	case fl.state == flowSynSent && t.Flags&wire.TCPSyn != 0 && t.Flags&wire.TCPAck != 0:
		fl.state = flowEstablished
		// Final handshake ACK, then the request payload.
		ack, err := wire.BuildTCP(local, from, fl.ttl, h.ipID(fl.ipID), wire.TCPAck, fl.isn+1, t.Seq+1, nil)
		if err == nil {
			n.InjectOwned(ack)
		}
		data, err := wire.BuildTCP(local, from, fl.ttl, h.ipID(fl.ipID), wire.TCPPsh|wire.TCPAck, fl.isn+1, t.Seq+1, fl.payload)
		if err == nil {
			n.InjectOwned(data)
		}
		return true
	case fl.state == flowSynSent && t.Flags&wire.TCPRst != 0:
		fl.state = flowClosed
		delete(h.tcpFlows, key)
		if fl.onFail != nil {
			fl.onFail(n)
		}
		return true
	case fl.state == flowEstablished && len(t.Payload()) > 0:
		fl.state = flowClosed
		delete(h.tcpFlows, key)
		if fl.onResponse != nil {
			fl.onResponse(n, append([]byte(nil), t.Payload()...))
		}
		return true
	}
	return true // packets for a known flow are consumed even when ignored
}

// serveTCP implements the stateless server side: answer SYN with SYN-ACK,
// answer a data segment by invoking the app and replying with its output
// plus FIN. Statelessness keeps memory flat across millions of decoy
// flows.
func (h *Host) serveTCP(n *Network, app TCPApp, from wire.Endpoint, t *wire.TCP) {
	local := wire.Endpoint{Addr: h.Addr, Port: t.DstPort}
	switch {
	case t.Flags&wire.TCPSyn != 0 && t.Flags&wire.TCPAck == 0:
		sisn := uint32(t.SrcPort)<<16 | 0x5678
		raw, err := wire.BuildTCP(local, from, 64, h.ipID(0), wire.TCPSyn|wire.TCPAck, sisn, t.Seq+1, nil)
		if err == nil {
			n.InjectOwned(raw)
		}
	case len(t.Payload()) > 0:
		payload := append([]byte(nil), t.Payload()...)
		resp := app(n, from, payload)
		if resp == nil {
			return
		}
		raw, err := wire.BuildTCP(local, from, 64, h.ipID(0), wire.TCPPsh|wire.TCPAck|wire.TCPFin, t.Ack, t.Seq+uint32(len(t.Payload())), resp)
		if err == nil {
			n.InjectOwned(raw)
		}
	}
}

func (h *Host) allocPort() uint16 {
	p := h.nextEphemeral
	h.nextEphemeral++
	if h.nextEphemeral == 0 {
		h.nextEphemeral = 32768
	}
	return p
}

func (h *Host) ipID(requested uint16) uint16 {
	if requested != 0 {
		return requested
	}
	h.nextIPID++
	if h.nextIPID == 0 {
		h.nextIPID = 1
	}
	return h.nextIPID
}
