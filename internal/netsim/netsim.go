// Package netsim is a deterministic, discrete-event IPv4 network simulator:
// the stand-in for the real Internet that shadowmeter's measurement
// pipeline runs against.
//
// The simulator moves real serialized packets (internal/wire) across
// router paths with per-hop TTL decrement and ICMP Time Exceeded
// generation, which is exactly the substrate the paper's Phase II
// hop-by-hop traceroute needs. On-path devices attach to routers as Taps
// and see the same bytes a DPI middlebox would.
//
// Time is virtual: a binary-heap event queue advances a simulated clock, so
// a two-month measurement campaign with multi-day data-retention delays
// runs in milliseconds of wall-clock time. All execution is single
// goroutine and fully deterministic for a given seed and call order.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/wire"
)

// Router is one forwarding hop. Routers decrement TTL, generate ICMP Time
// Exceeded when it expires, and expose attached Taps to every packet that
// arrives on their wire.
type Router struct {
	Name string
	// Addr is the interface address exposed in ICMP error messages. A
	// router with ICMPSilent set never answers, modeling the hops that make
	// real traceroutes incomplete (Section 3 "Comparison and limitations").
	Addr       wire.Addr
	ICMPSilent bool

	taps []Tap
}

// AttachTap registers an on-path device at this router.
func (r *Router) AttachTap(t Tap) { r.taps = append(r.taps, t) }

// Taps returns a copy of the attached taps. Callers get their own slice:
// appending to (or reordering) the result cannot mutate routing state
// behind the simulator's back.
func (r *Router) Taps() []Tap { return append([]Tap(nil), r.taps...) }

// Tap is an on-path observer device: it inspects every packet arriving at
// its router. Taps must not mutate the packet; they may call back into the
// Network to schedule their own traffic (that is what a traffic-shadowing
// exhibitor does).
type Tap interface {
	Observe(net *Network, at *Router, pkt *wire.Packet)
}

// Handler terminates packets at a host address (resolver, web server,
// honeypot, vantage point...). The packet's transport payload has already
// been decoded by the network's parser.
type Handler interface {
	Handle(net *Network, pkt *wire.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, pkt *wire.Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(net *Network, pkt *wire.Packet) { f(net, pkt) }

// PathFunc returns the ordered router hops between two addresses, or nil if
// no route exists. It must be deterministic.
type PathFunc func(src, dst wire.Addr) []*Router

// Stats counts simulator activity.
type Stats struct {
	PacketsSent      int64
	PacketsDelivered int64
	PacketsLost      int64
	TTLExpired       int64
	ICMPSent         int64
	NoRoute          int64
	NoHandler        int64
	Events           int64
}

// Config parameterizes a Network.
type Config struct {
	// Start is the virtual-clock origin.
	Start time.Time
	// HopLatency is the one-way latency contributed by each router hop.
	// Zero selects DefaultHopLatency.
	HopLatency time.Duration
	// Path supplies routes. Nil means every src/dst pair is directly
	// connected (useful in unit tests).
	Path PathFunc
	// LossRate drops each packet independently at every hop with this
	// probability (failure injection; deterministic for a given LossSeed
	// and call order). 0 disables loss.
	LossRate float64
	// LossSeed seeds the loss coin.
	LossSeed int64
	// Telemetry receives the simulator's metrics and progress ticks. Nil
	// creates a private set, so the hot path never nil-checks.
	Telemetry *telemetry.Set
}

// DefaultHopLatency approximates a wide-area per-hop delay.
const DefaultHopLatency = 8 * time.Millisecond

// Network is the simulator instance.
type Network struct {
	now    time.Time
	events eventHeap
	seq    int64

	hosts      map[wire.Addr]Handler
	pathFn     PathFunc
	hopLatency time.Duration
	lossRate   float64
	lossRNG    *rand.Rand

	stats  Stats
	parser wire.Parser

	tele        *telemetry.Set
	m           netMetrics
	tapObserves map[*Router]*telemetry.Counter

	maxEvents int64 // safety valve against runaway schedules; 0 = unlimited
}

// netMetrics holds the simulator's registered metric handles. They are
// plain (lock-free) variants: the event loop is single-goroutine.
type netMetrics struct {
	eventsScheduled  *telemetry.Counter
	eventsDispatched *telemetry.Counter
	queuePeak        *telemetry.Gauge
	queueDepth       *telemetry.Histogram
	packetsSent      *telemetry.Counter
	packetsForwarded *telemetry.Counter
	packetsDelivered *telemetry.Counter
	packetsLost      *telemetry.Counter
	ttlExpired       *telemetry.Counter
	icmpSent         *telemetry.Counter
	noRoute          *telemetry.Counter
	noHandler        *telemetry.Counter
	taps             *telemetry.CounterVec
}

// queueDepthBounds buckets event-queue depth by powers of four: deep
// enough to see full-scale campaigns, cheap enough to scan per event.
var queueDepthBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

func newNetMetrics(reg *telemetry.Registry) netMetrics {
	return netMetrics{
		eventsScheduled:  reg.Counter("netsim_events_scheduled_total", "events pushed onto the simulator heap"),
		eventsDispatched: reg.Counter("netsim_events_dispatched_total", "events popped and executed by the event loop"),
		queuePeak:        reg.Gauge("netsim_event_queue_peak", "high-water mark of the event-queue depth"),
		queueDepth:       reg.Histogram("netsim_event_queue_depth", "event-queue depth observed at each dispatch", queueDepthBounds),
		packetsSent:      reg.Counter("netsim_packets_sent_total", "packets injected at their source"),
		packetsForwarded: reg.Counter("netsim_packets_forwarded_total", "per-hop packet arrivals at routers"),
		packetsDelivered: reg.Counter("netsim_packets_delivered_total", "packets terminated at a registered handler"),
		packetsLost:      reg.Counter("netsim_packets_lost_total", "packets dropped by injected per-hop loss"),
		ttlExpired:       reg.Counter("netsim_ttl_expired_total", "packets whose TTL reached zero at a router"),
		icmpSent:         reg.Counter("netsim_icmp_time_exceeded_total", "ICMP Time Exceeded messages generated"),
		noRoute:          reg.Counter("netsim_no_route_total", "sends with no path to the destination"),
		noHandler:        reg.Counter("netsim_no_handler_total", "deliveries to an unregistered address"),
		taps:             reg.CounterVec("netsim_tap_observes_total", "packets shown to on-path taps, per router", "router"),
	}
}

// New creates a network from cfg.
func New(cfg Config) *Network {
	hl := cfg.HopLatency
	if hl == 0 {
		hl = DefaultHopLatency
	}
	tele := cfg.Telemetry
	if tele == nil {
		tele = telemetry.NewSet()
	}
	n := &Network{
		now:         cfg.Start,
		hosts:       make(map[wire.Addr]Handler),
		pathFn:      cfg.Path,
		hopLatency:  hl,
		lossRate:    cfg.LossRate,
		tele:        tele,
		m:           newNetMetrics(tele.Registry),
		tapObserves: make(map[*Router]*telemetry.Counter),
	}
	if tele.Tracer.Clock == nil {
		tele.Tracer.Clock = n.Now
	}
	if cfg.LossRate > 0 {
		n.lossRNG = rand.New(rand.NewSource(cfg.LossSeed))
	}
	return n
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Telemetry returns the simulator's telemetry set (the one from Config,
// or the private set created when none was supplied).
func (n *Network) Telemetry() *telemetry.Set { return n.tele }

// Stats returns a snapshot of simulator counters.
func (n *Network) Stats() Stats { return n.stats }

// SetMaxEvents bounds total processed events (0 disables the bound).
func (n *Network) SetMaxEvents(max int64) { n.maxEvents = max }

// AddHost registers handler as the terminator for addr. Registering an
// address twice replaces the handler.
func (n *Network) AddHost(addr wire.Addr, h Handler) {
	n.hosts[addr] = h
}

// RemoveHost deregisters an address.
func (n *Network) RemoveHost(addr wire.Addr) {
	delete(n.hosts, addr)
}

// HasHost reports whether addr terminates at a registered handler.
func (n *Network) HasHost(addr wire.Addr) bool {
	_, ok := n.hosts[addr]
	return ok
}

// Schedule runs fn after delay of virtual time. A negative delay runs at
// the current instant (still via the queue, preserving causal order).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	heap.Push(&n.events, &event{at: n.now.Add(delay), seq: n.seq, fn: fn})
	n.m.eventsScheduled.Inc()
	n.m.queuePeak.SetMax(int64(len(n.events)))
}

// SendPacket injects a serialized IPv4 packet at its source address. The
// packet traverses the path to its destination hop by hop; taps observe it
// at every router it reaches; TTL expiry produces ICMP Time Exceeded back
// to the source. Errors are returned only for unparseable packets —
// routing failures are counted in Stats, as on the real Internet the
// sender learns nothing synchronously.
func (n *Network) SendPacket(raw []byte) error {
	var probe wire.IPv4
	if err := probe.DecodeFromBytes(raw); err != nil {
		return fmt.Errorf("netsim: refusing to send unparseable packet: %w", err)
	}
	n.stats.PacketsSent++
	n.m.packetsSent.Inc()
	src, dst := probe.Src, probe.Dst

	var path []*Router
	if n.pathFn != nil {
		path = n.pathFn(src, dst)
		if path == nil && src != dst {
			// No route at all (distinct from the empty direct path).
			if _, ok := n.hosts[dst]; !ok {
				n.stats.NoRoute++
				n.m.noRoute.Inc()
				return nil
			}
		}
	}
	// Copy: the caller may reuse its buffer, and routers mutate TTL.
	pkt := append([]byte(nil), raw...)
	n.forward(pkt, src, path, 0)
	return nil
}

// Inject sends a packet that was just produced by a successful
// Serialize/BuildUDP call. SendPacket's only error is an unparseable
// buffer, which at an Inject call site is a construction bug — panic
// loudly instead of dropping the packet silently.
func (n *Network) Inject(raw []byte) {
	if err := n.SendPacket(raw); err != nil {
		panic(err)
	}
}

// forward schedules arrival of pkt at hop index i of path (or at the
// destination when i == len(path)).
func (n *Network) forward(pkt []byte, origin wire.Addr, path []*Router, i int) {
	n.Schedule(n.hopLatency, func() {
		if i < len(path) {
			n.arriveAtRouter(pkt, origin, path, i)
			return
		}
		n.deliver(pkt)
	})
}

func (n *Network) arriveAtRouter(pkt []byte, origin wire.Addr, path []*Router, i int) {
	if n.lossRNG != nil && n.lossRNG.Float64() < n.lossRate {
		n.stats.PacketsLost++
		n.m.packetsLost.Inc()
		return
	}
	r := path[i]
	n.m.packetsForwarded.Inc()
	// DPI taps see the packet on arrival, before the TTL check: a device on
	// the wire observes bytes regardless of whether the router then drops
	// them. This is what makes Phase II's "first TTL that triggers
	// shadowing = observer hop" inference sound.
	if len(r.taps) > 0 {
		var decoded wire.Packet
		if err := n.parser.Decode(pkt, &decoded); err == nil {
			n.tapCounter(r).Add(int64(len(r.taps)))
			for _, t := range r.taps {
				t.Observe(n, r, &decoded)
			}
		}
	}
	ttl, err := wire.DecrementTTL(pkt)
	if err != nil {
		return // malformed in flight; drop silently
	}
	if ttl == 0 {
		n.stats.TTLExpired++
		n.m.ttlExpired.Inc()
		if !r.ICMPSilent {
			n.sendTimeExceeded(r, origin, pkt)
		}
		return
	}
	n.forward(pkt, origin, path, i+1)
}

// tapCounter resolves (and caches) the per-router tap-observation
// counter, labeled by router name.
func (n *Network) tapCounter(r *Router) *telemetry.Counter {
	if c, ok := n.tapObserves[r]; ok {
		return c
	}
	c := n.m.taps.With(r.Name)
	n.tapObserves[r] = c
	return c
}

func (n *Network) sendTimeExceeded(r *Router, origin wire.Addr, expired []byte) {
	te := wire.NewTimeExceeded(expired)
	raw, err := wire.BuildICMP(r.Addr, origin, 64, 0, te, te.Payload())
	if err != nil {
		return
	}
	n.stats.ICMPSent++
	n.m.icmpSent.Inc()
	// The error message returns over the reverse path; the measurement only
	// needs its eventual arrival at the origin, so model the return trip as
	// a direct delayed delivery proportional to the forward distance.
	n.Schedule(n.hopLatency, func() { n.deliver(raw) })
}

func (n *Network) deliver(pkt []byte) {
	var decoded wire.Packet
	if err := n.parser.Decode(pkt, &decoded); err != nil {
		return
	}
	h, ok := n.hosts[decoded.IP.Dst]
	if !ok {
		n.stats.NoHandler++
		n.m.noHandler.Inc()
		return
	}
	n.stats.PacketsDelivered++
	n.m.packetsDelivered.Inc()
	h.Handle(n, &decoded)
}

// Run processes events until the queue is empty or the virtual clock would
// pass deadline. It returns the number of events processed.
func (n *Network) Run(deadline time.Time) int64 {
	var processed int64
	for n.events.Len() > 0 {
		next := n.events[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&n.events)
		if next.at.After(n.now) {
			n.now = next.at
		}
		n.m.queueDepth.Observe(float64(len(n.events) + 1))
		next.fn()
		processed++
		n.stats.Events++
		n.m.eventsDispatched.Inc()
		n.tele.Progress.Tick(n.now, len(n.events))
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			break
		}
	}
	if deadline.After(n.now) {
		n.now = deadline
	}
	return processed
}

// RunUntilIdle drains the event queue completely.
func (n *Network) RunUntilIdle() int64 {
	var processed int64
	for n.events.Len() > 0 {
		next := heap.Pop(&n.events).(*event)
		if next.at.After(n.now) {
			n.now = next.at
		}
		n.m.queueDepth.Observe(float64(len(n.events) + 1))
		next.fn()
		processed++
		n.stats.Events++
		n.m.eventsDispatched.Inc()
		n.tele.Progress.Tick(n.now, len(n.events))
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			break
		}
	}
	return processed
}

// Pending reports the number of queued events.
func (n *Network) Pending() int { return n.events.Len() }

type event struct {
	at  time.Time
	seq int64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
