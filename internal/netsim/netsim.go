// Package netsim is a deterministic, discrete-event IPv4 network simulator:
// the stand-in for the real Internet that shadowmeter's measurement
// pipeline runs against.
//
// The simulator moves real serialized packets (internal/wire) across
// router paths with per-hop TTL decrement and ICMP Time Exceeded
// generation, which is exactly the substrate the paper's Phase II
// hop-by-hop traceroute needs. On-path devices attach to routers as Taps
// and see the same bytes a DPI middlebox would.
//
// Time is virtual: a binary-heap event queue advances a simulated clock, so
// a two-month measurement campaign with multi-day data-retention delays
// runs in milliseconds of wall-clock time. All execution is single
// goroutine and fully deterministic for a given seed and call order.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"shadowmeter/internal/wire"
)

// Router is one forwarding hop. Routers decrement TTL, generate ICMP Time
// Exceeded when it expires, and expose attached Taps to every packet that
// arrives on their wire.
type Router struct {
	Name string
	// Addr is the interface address exposed in ICMP error messages. A
	// router with ICMPSilent set never answers, modeling the hops that make
	// real traceroutes incomplete (Section 3 "Comparison and limitations").
	Addr       wire.Addr
	ICMPSilent bool

	taps []Tap
}

// AttachTap registers an on-path device at this router.
func (r *Router) AttachTap(t Tap) { r.taps = append(r.taps, t) }

// Taps returns the attached taps (read-only use).
func (r *Router) Taps() []Tap { return r.taps }

// Tap is an on-path observer device: it inspects every packet arriving at
// its router. Taps must not mutate the packet; they may call back into the
// Network to schedule their own traffic (that is what a traffic-shadowing
// exhibitor does).
type Tap interface {
	Observe(net *Network, at *Router, pkt *wire.Packet)
}

// Handler terminates packets at a host address (resolver, web server,
// honeypot, vantage point...). The packet's transport payload has already
// been decoded by the network's parser.
type Handler interface {
	Handle(net *Network, pkt *wire.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, pkt *wire.Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(net *Network, pkt *wire.Packet) { f(net, pkt) }

// PathFunc returns the ordered router hops between two addresses, or nil if
// no route exists. It must be deterministic.
type PathFunc func(src, dst wire.Addr) []*Router

// Stats counts simulator activity.
type Stats struct {
	PacketsSent      int64
	PacketsDelivered int64
	PacketsLost      int64
	TTLExpired       int64
	ICMPSent         int64
	NoRoute          int64
	NoHandler        int64
	Events           int64
}

// Config parameterizes a Network.
type Config struct {
	// Start is the virtual-clock origin.
	Start time.Time
	// HopLatency is the one-way latency contributed by each router hop.
	// Zero selects DefaultHopLatency.
	HopLatency time.Duration
	// Path supplies routes. Nil means every src/dst pair is directly
	// connected (useful in unit tests).
	Path PathFunc
	// LossRate drops each packet independently at every hop with this
	// probability (failure injection; deterministic for a given LossSeed
	// and call order). 0 disables loss.
	LossRate float64
	// LossSeed seeds the loss coin.
	LossSeed int64
}

// DefaultHopLatency approximates a wide-area per-hop delay.
const DefaultHopLatency = 8 * time.Millisecond

// Network is the simulator instance.
type Network struct {
	now    time.Time
	events eventHeap
	seq    int64

	hosts      map[wire.Addr]Handler
	pathFn     PathFunc
	hopLatency time.Duration
	lossRate   float64
	lossRNG    *rand.Rand

	stats  Stats
	parser wire.Parser

	maxEvents int64 // safety valve against runaway schedules; 0 = unlimited
}

// New creates a network from cfg.
func New(cfg Config) *Network {
	hl := cfg.HopLatency
	if hl == 0 {
		hl = DefaultHopLatency
	}
	n := &Network{
		now:        cfg.Start,
		hosts:      make(map[wire.Addr]Handler),
		pathFn:     cfg.Path,
		hopLatency: hl,
		lossRate:   cfg.LossRate,
	}
	if cfg.LossRate > 0 {
		n.lossRNG = rand.New(rand.NewSource(cfg.LossSeed))
	}
	return n
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Stats returns a snapshot of simulator counters.
func (n *Network) Stats() Stats { return n.stats }

// SetMaxEvents bounds total processed events (0 disables the bound).
func (n *Network) SetMaxEvents(max int64) { n.maxEvents = max }

// AddHost registers handler as the terminator for addr. Registering an
// address twice replaces the handler.
func (n *Network) AddHost(addr wire.Addr, h Handler) {
	n.hosts[addr] = h
}

// RemoveHost deregisters an address.
func (n *Network) RemoveHost(addr wire.Addr) {
	delete(n.hosts, addr)
}

// HasHost reports whether addr terminates at a registered handler.
func (n *Network) HasHost(addr wire.Addr) bool {
	_, ok := n.hosts[addr]
	return ok
}

// Schedule runs fn after delay of virtual time. A negative delay runs at
// the current instant (still via the queue, preserving causal order).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	heap.Push(&n.events, &event{at: n.now.Add(delay), seq: n.seq, fn: fn})
}

// SendPacket injects a serialized IPv4 packet at its source address. The
// packet traverses the path to its destination hop by hop; taps observe it
// at every router it reaches; TTL expiry produces ICMP Time Exceeded back
// to the source. Errors are returned only for unparseable packets —
// routing failures are counted in Stats, as on the real Internet the
// sender learns nothing synchronously.
func (n *Network) SendPacket(raw []byte) error {
	var probe wire.IPv4
	if err := probe.DecodeFromBytes(raw); err != nil {
		return fmt.Errorf("netsim: refusing to send unparseable packet: %w", err)
	}
	n.stats.PacketsSent++
	src, dst := probe.Src, probe.Dst

	var path []*Router
	if n.pathFn != nil {
		path = n.pathFn(src, dst)
		if path == nil && src != dst {
			// No route at all (distinct from the empty direct path).
			if _, ok := n.hosts[dst]; !ok {
				n.stats.NoRoute++
				return nil
			}
		}
	}
	// Copy: the caller may reuse its buffer, and routers mutate TTL.
	pkt := append([]byte(nil), raw...)
	n.forward(pkt, src, path, 0)
	return nil
}

// Inject sends a packet that was just produced by a successful
// Serialize/BuildUDP call. SendPacket's only error is an unparseable
// buffer, which at an Inject call site is a construction bug — panic
// loudly instead of dropping the packet silently.
func (n *Network) Inject(raw []byte) {
	if err := n.SendPacket(raw); err != nil {
		panic(err)
	}
}

// forward schedules arrival of pkt at hop index i of path (or at the
// destination when i == len(path)).
func (n *Network) forward(pkt []byte, origin wire.Addr, path []*Router, i int) {
	n.Schedule(n.hopLatency, func() {
		if i < len(path) {
			n.arriveAtRouter(pkt, origin, path, i)
			return
		}
		n.deliver(pkt)
	})
}

func (n *Network) arriveAtRouter(pkt []byte, origin wire.Addr, path []*Router, i int) {
	if n.lossRNG != nil && n.lossRNG.Float64() < n.lossRate {
		n.stats.PacketsLost++
		return
	}
	r := path[i]
	// DPI taps see the packet on arrival, before the TTL check: a device on
	// the wire observes bytes regardless of whether the router then drops
	// them. This is what makes Phase II's "first TTL that triggers
	// shadowing = observer hop" inference sound.
	if len(r.taps) > 0 {
		var decoded wire.Packet
		if err := n.parser.Decode(pkt, &decoded); err == nil {
			for _, t := range r.taps {
				t.Observe(n, r, &decoded)
			}
		}
	}
	ttl, err := wire.DecrementTTL(pkt)
	if err != nil {
		return // malformed in flight; drop silently
	}
	if ttl == 0 {
		n.stats.TTLExpired++
		if !r.ICMPSilent {
			n.sendTimeExceeded(r, origin, pkt)
		}
		return
	}
	n.forward(pkt, origin, path, i+1)
}

func (n *Network) sendTimeExceeded(r *Router, origin wire.Addr, expired []byte) {
	te := wire.NewTimeExceeded(expired)
	raw, err := wire.BuildICMP(r.Addr, origin, 64, 0, te, te.Payload())
	if err != nil {
		return
	}
	n.stats.ICMPSent++
	// The error message returns over the reverse path; the measurement only
	// needs its eventual arrival at the origin, so model the return trip as
	// a direct delayed delivery proportional to the forward distance.
	n.Schedule(n.hopLatency, func() { n.deliver(raw) })
}

func (n *Network) deliver(pkt []byte) {
	var decoded wire.Packet
	if err := n.parser.Decode(pkt, &decoded); err != nil {
		return
	}
	h, ok := n.hosts[decoded.IP.Dst]
	if !ok {
		n.stats.NoHandler++
		return
	}
	n.stats.PacketsDelivered++
	h.Handle(n, &decoded)
}

// Run processes events until the queue is empty or the virtual clock would
// pass deadline. It returns the number of events processed.
func (n *Network) Run(deadline time.Time) int64 {
	var processed int64
	for n.events.Len() > 0 {
		next := n.events[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&n.events)
		if next.at.After(n.now) {
			n.now = next.at
		}
		next.fn()
		processed++
		n.stats.Events++
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			break
		}
	}
	if deadline.After(n.now) {
		n.now = deadline
	}
	return processed
}

// RunUntilIdle drains the event queue completely.
func (n *Network) RunUntilIdle() int64 {
	var processed int64
	for n.events.Len() > 0 {
		next := heap.Pop(&n.events).(*event)
		if next.at.After(n.now) {
			n.now = next.at
		}
		next.fn()
		processed++
		n.stats.Events++
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			break
		}
	}
	return processed
}

// Pending reports the number of queued events.
func (n *Network) Pending() int { return n.events.Len() }

type event struct {
	at  time.Time
	seq int64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
