// Package netsim is a deterministic, discrete-event IPv4 network simulator:
// the stand-in for the real Internet that shadowmeter's measurement
// pipeline runs against.
//
// The simulator moves real serialized packets (internal/wire) across
// router paths with per-hop TTL decrement and ICMP Time Exceeded
// generation, which is exactly the substrate the paper's Phase II
// hop-by-hop traceroute needs. On-path devices attach to routers as Taps
// and see the same bytes a DPI middlebox would.
//
// Time is virtual: a binary-heap event queue advances a simulated clock, so
// a two-month measurement campaign with multi-day data-retention delays
// runs in milliseconds of wall-clock time. All execution is single
// goroutine and fully deterministic for a given seed and call order.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"shadowmeter/internal/telemetry"
	"shadowmeter/internal/wire"
)

// Router is one forwarding hop. Routers decrement TTL, generate ICMP Time
// Exceeded when it expires, and expose attached Taps to every packet that
// arrives on their wire.
type Router struct {
	// Name is drawn from the fixed set minted at topology build time, so
	// it is a safe (bounded-cardinality) metric label.
	//
	//shadowlint:bounded
	Name string
	// Addr is the interface address exposed in ICMP error messages. A
	// router with ICMPSilent set never answers, modeling the hops that make
	// real traceroutes incomplete (Section 3 "Comparison and limitations").
	Addr       wire.Addr
	ICMPSilent bool

	taps []Tap
}

// AttachTap registers an on-path device at this router.
func (r *Router) AttachTap(t Tap) { r.taps = append(r.taps, t) }

// Taps returns a copy of the attached taps. Callers get their own slice:
// appending to (or reordering) the result cannot mutate routing state
// behind the simulator's back.
func (r *Router) Taps() []Tap { return append([]Tap(nil), r.taps...) }

// Tap is an on-path observer device: it inspects every packet arriving at
// its router. Taps must not mutate the packet; they may call back into the
// Network to schedule their own traffic (that is what a traffic-shadowing
// exhibitor does).
type Tap interface {
	Observe(net *Network, at *Router, pkt *wire.Packet)
}

// Handler terminates packets at a host address (resolver, web server,
// honeypot, vantage point...). The packet's transport payload has already
// been decoded by the network's parser.
type Handler interface {
	Handle(net *Network, pkt *wire.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, pkt *wire.Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(net *Network, pkt *wire.Packet) { f(net, pkt) }

// PathFunc returns the ordered router hops between two addresses, or nil if
// no route exists. It must be deterministic.
type PathFunc func(src, dst wire.Addr) []*Router

// Stats counts simulator activity.
type Stats struct {
	PacketsSent      int64
	PacketsDelivered int64
	PacketsLost      int64
	TTLExpired       int64
	ICMPSent         int64
	NoRoute          int64
	NoHandler        int64
	Events           int64
}

// Config parameterizes a Network.
type Config struct {
	// Start is the virtual-clock origin.
	Start time.Time
	// HopLatency is the one-way latency contributed by each router hop.
	// Zero selects DefaultHopLatency.
	HopLatency time.Duration
	// Path supplies routes. Nil means every src/dst pair is directly
	// connected (useful in unit tests).
	Path PathFunc
	// LossRate drops each packet independently at every hop with this
	// probability (failure injection; deterministic for a given LossSeed
	// and call order). 0 disables loss.
	LossRate float64
	// LossSeed seeds the loss coin.
	LossSeed int64
	// Telemetry receives the simulator's metrics and progress ticks. Nil
	// creates a private set, so the hot path never nil-checks.
	Telemetry *telemetry.Set
	// Arena, when non-nil, seeds the event/flight pools from a previous
	// world's harvest (see Arena). Purely an allocation amortization: a
	// world behaves identically with or without one.
	Arena *Arena
}

// DefaultHopLatency approximates a wide-area per-hop delay.
const DefaultHopLatency = 8 * time.Millisecond

// Network is the simulator instance.
type Network struct {
	now    time.Time
	events eventHeap
	seq    int64

	hosts      map[wire.Addr]Handler
	pathFn     PathFunc
	hopLatency time.Duration
	lossRate   float64
	lossRNG    *rand.Rand

	stats  Stats
	parser wire.Parser
	// scratch is the single decode target for tap observation and
	// delivery. Taps and handlers receive &scratch and must not retain it
	// past their callback: the next dispatched packet overwrites it (the
	// same contract the shared parser's transport storage already set).
	scratch wire.Packet

	tele        *telemetry.Set
	m           netMetrics
	tapObserves map[*Router]*telemetry.Counter

	// freeEvents and freeFlights recycle the event-loop's two per-hop
	// objects. The worker-pool campaign runner hammers this path with one
	// world per goroutine; pooling keeps the steady state allocation-free.
	freeEvents  []*event
	freeFlights []*flight

	maxEvents int64 // safety valve against runaway schedules; 0 = unlimited
}

// netMetrics holds the simulator's registered metric handles. They are
// plain (lock-free) variants: the event loop is single-goroutine.
type netMetrics struct {
	eventsScheduled  *telemetry.Counter
	eventsDispatched *telemetry.Counter
	queuePeak        *telemetry.Gauge
	queueDepth       *telemetry.Histogram
	packetsSent      *telemetry.Counter
	packetsForwarded *telemetry.Counter
	packetsDelivered *telemetry.Counter
	packetsLost      *telemetry.Counter
	ttlExpired       *telemetry.Counter
	icmpSent         *telemetry.Counter
	noRoute          *telemetry.Counter
	noHandler        *telemetry.Counter
	taps             *telemetry.CounterVec
}

// queueDepthBounds buckets event-queue depth by powers of four: deep
// enough to see full-scale campaigns, cheap enough to scan per event.
var queueDepthBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

func newNetMetrics(reg *telemetry.Registry) netMetrics {
	return netMetrics{
		eventsScheduled:  reg.Counter("netsim_events_scheduled_total", "events pushed onto the simulator heap"),
		eventsDispatched: reg.Counter("netsim_events_dispatched_total", "events popped and executed by the event loop"),
		queuePeak:        reg.Gauge("netsim_event_queue_peak", "high-water mark of the event-queue depth"),
		queueDepth:       reg.Histogram("netsim_event_queue_depth", "event-queue depth observed at each dispatch", queueDepthBounds),
		packetsSent:      reg.Counter("netsim_packets_sent_total", "packets injected at their source"),
		packetsForwarded: reg.Counter("netsim_packets_forwarded_total", "per-hop packet arrivals at routers"),
		packetsDelivered: reg.Counter("netsim_packets_delivered_total", "packets terminated at a registered handler"),
		packetsLost:      reg.Counter("netsim_packets_lost_total", "packets dropped by injected per-hop loss"),
		ttlExpired:       reg.Counter("netsim_ttl_expired_total", "packets whose TTL reached zero at a router"),
		icmpSent:         reg.Counter("netsim_icmp_time_exceeded_total", "ICMP Time Exceeded messages generated"),
		noRoute:          reg.Counter("netsim_no_route_total", "sends with no path to the destination"),
		noHandler:        reg.Counter("netsim_no_handler_total", "deliveries to an unregistered address"),
		taps:             reg.CounterVec("netsim_tap_observes_total", "packets shown to on-path taps, per router", "router"),
	}
}

// New creates a network from cfg.
func New(cfg Config) *Network {
	hl := cfg.HopLatency
	if hl == 0 {
		hl = DefaultHopLatency
	}
	tele := cfg.Telemetry
	if tele == nil {
		tele = telemetry.NewSet()
	}
	n := &Network{
		now:         cfg.Start,
		hosts:       make(map[wire.Addr]Handler),
		pathFn:      cfg.Path,
		hopLatency:  hl,
		lossRate:    cfg.LossRate,
		tele:        tele,
		m:           newNetMetrics(tele.Registry),
		tapObserves: make(map[*Router]*telemetry.Counter),
	}
	if tele.Tracer.Clock == nil {
		tele.Tracer.Clock = n.Now
	}
	if cfg.LossRate > 0 {
		n.lossRNG = rand.New(rand.NewSource(cfg.LossSeed))
	}
	if cfg.Arena != nil {
		cfg.Arena.attach(n)
	}
	return n
}

// Now returns the current virtual time.
func (n *Network) Now() time.Time { return n.now }

// Telemetry returns the simulator's telemetry set (the one from Config,
// or the private set created when none was supplied).
func (n *Network) Telemetry() *telemetry.Set { return n.tele }

// Stats returns a snapshot of simulator counters.
func (n *Network) Stats() Stats { return n.stats }

// SetMaxEvents bounds total processed events (0 disables the bound).
func (n *Network) SetMaxEvents(max int64) { n.maxEvents = max }

// AddHost registers handler as the terminator for addr. Registering an
// address twice replaces the handler.
func (n *Network) AddHost(addr wire.Addr, h Handler) {
	n.hosts[addr] = h
}

// RemoveHost deregisters an address.
func (n *Network) RemoveHost(addr wire.Addr) {
	delete(n.hosts, addr)
}

// HasHost reports whether addr terminates at a registered handler.
func (n *Network) HasHost(addr wire.Addr) bool {
	_, ok := n.hosts[addr]
	return ok
}

// Schedule runs fn after delay of virtual time. A negative delay runs at
// the current instant (still via the queue, preserving causal order).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	e := n.newEvent()
	e.fn = fn
	n.scheduleEvent(delay, e)
}

// scheduleEvent pushes a prepared event onto the queue.
func (n *Network) scheduleEvent(delay time.Duration, e *event) {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	e.at = n.now.Add(delay)
	e.atNS = e.at.UnixNano()
	e.seq = n.seq
	heap.Push(&n.events, e)
	n.m.eventsScheduled.Inc()
	n.m.queuePeak.SetMax(int64(len(n.events)))
}

// newEvent takes an event from the pool (or allocates the pool's next).
func (n *Network) newEvent() *event {
	if k := len(n.freeEvents); k > 0 {
		e := n.freeEvents[k-1]
		n.freeEvents = n.freeEvents[:k-1]
		return e
	}
	return &event{}
}

// releaseEvent clears an event's references and returns it to the pool.
func (n *Network) releaseEvent(e *event) {
	e.fn, e.flight = nil, nil
	e.udpHost, e.udpW = nil, nil
	n.freeEvents = append(n.freeEvents, e)
}

// newFlight takes a packet-flight from the pool and arms it at hop 0.
func (n *Network) newFlight(pkt []byte, origin wire.Addr, path []*Router) *flight {
	var f *flight
	if k := len(n.freeFlights); k > 0 {
		f = n.freeFlights[k-1]
		n.freeFlights = n.freeFlights[:k-1]
	} else {
		f = &flight{}
	}
	f.pkt, f.origin, f.path, f.hop = pkt, origin, path, 0
	return f
}

// releaseFlight drops a flight's buffer references and pools the struct.
// The packet buffer itself is never reused: honeypot captures and decoded
// payloads may alias it for the rest of the run.
func (n *Network) releaseFlight(f *flight) {
	f.pkt, f.path = nil, nil
	n.freeFlights = append(n.freeFlights, f)
}

// Arena carries a Network's recyclable scratch — the event and flight free
// lists plus the drained event-heap backing array — across Network
// lifetimes. A campaign worker running many single-trial worlds in
// sequence attaches one arena to each world in turn, so the event loop's
// steady-state pool is grown once per worker instead of once per trial.
// Pooled objects are fully re-initialized on acquisition and hold no
// references after release, so reuse cannot leak state between worlds. An
// arena belongs to one goroutine at a time; hand-off between worlds must
// be externally ordered (the runner keeps one per worker).
type Arena struct {
	events      []*event
	flights     []*flight
	heapBacking eventHeap
}

// attach seeds n's pools from the arena, leaving the arena empty. New
// calls it before any event is scheduled.
func (a *Arena) attach(n *Network) {
	n.freeEvents, a.events = a.events, nil
	n.freeFlights, a.flights = a.flights, nil
	if cap(a.heapBacking) > 0 {
		n.events, a.heapBacking = a.heapBacking[:0], nil
	}
}

// Harvest reclaims n's pools into the arena once the world has drained
// (every event dispatched, every flight landed). The Network must not be
// run again afterwards. Undispatched events left behind by a truncated
// run stay with the Network — only the released free lists move — so
// harvesting a truncated world is safe, just less fruitful.
func (a *Arena) Harvest(n *Network) {
	if a == nil || n == nil {
		return
	}
	a.events, n.freeEvents = n.freeEvents, nil
	a.flights, n.freeFlights = n.freeFlights, nil
	if len(n.events) == 0 {
		a.heapBacking, n.events = n.events[:0], nil
	}
}

// SendPacket injects a serialized IPv4 packet at its source address. The
// packet traverses the path to its destination hop by hop; taps observe it
// at every router it reaches; TTL expiry produces ICMP Time Exceeded back
// to the source. Errors are returned only for unparseable packets —
// routing failures are counted in Stats, as on the real Internet the
// sender learns nothing synchronously.
func (n *Network) SendPacket(raw []byte) error {
	// Copy: the caller may reuse its buffer, and routers mutate TTL.
	return n.SendPacketOwned(append([]byte(nil), raw...))
}

// SendPacketOwned is SendPacket for buffers the caller hands over: the
// network takes ownership of raw (routers mutate its TTL in place, and
// captures may alias it for the rest of the run), so the caller must not
// touch the buffer afterwards. Freshly built packets take this path to
// skip SendPacket's defensive copy.
func (n *Network) SendPacketOwned(raw []byte) error {
	var probe wire.IPv4
	if err := probe.DecodeFromBytes(raw); err != nil {
		return fmt.Errorf("netsim: refusing to send unparseable packet: %w", err)
	}
	n.stats.PacketsSent++
	n.m.packetsSent.Inc()
	src, dst := probe.Src, probe.Dst

	var path []*Router
	if n.pathFn != nil {
		path = n.pathFn(src, dst)
		if path == nil && src != dst {
			// No route at all (distinct from the empty direct path). This
			// holds even when dst is a registered host: delivering hop-free
			// would bypass every tap and the topology's own verdict.
			n.stats.NoRoute++
			n.m.noRoute.Inc()
			return nil
		}
	}
	n.forward(n.newFlight(raw, src, path))
	return nil
}

// Inject sends a packet that was just produced by a successful
// Serialize/BuildUDP call. SendPacket's only error is an unparseable
// buffer, which at an Inject call site is a construction bug — panic
// loudly instead of dropping the packet silently.
func (n *Network) Inject(raw []byte) {
	if err := n.SendPacket(raw); err != nil {
		panic(err)
	}
}

// InjectOwned is Inject without the defensive copy: ownership of raw
// transfers to the network. Use it when the buffer was freshly built for
// this exact send.
func (n *Network) InjectOwned(raw []byte) {
	if err := n.SendPacketOwned(raw); err != nil {
		panic(err)
	}
}

// flight is one packet in transit: the serialized bytes, the origin
// address (ICMP errors return there), the router path, and the next hop
// index. Flights replace the per-hop closure chain of the original event
// loop: one pooled struct rides the whole path, so forwarding a packet
// over k hops schedules k+1 events without allocating any of them in the
// steady state.
type flight struct {
	pkt    []byte
	origin wire.Addr
	path   []*Router
	hop    int // next hop index; len(path) means delivery
}

// forward schedules the flight's next arrival: hop f.hop of its path, or
// the destination when the path is exhausted.
//
//shadowlint:hotpath
func (n *Network) forward(f *flight) {
	e := n.newEvent()
	e.flight = f
	n.scheduleEvent(n.hopLatency, e)
}

// stepFlight dispatches one flight event.
func (n *Network) stepFlight(f *flight) {
	if f.hop < len(f.path) {
		n.arriveAtRouter(f)
		return
	}
	n.deliver(f.pkt)
	n.releaseFlight(f)
}

func (n *Network) arriveAtRouter(f *flight) {
	if n.lossRNG != nil && n.lossRNG.Float64() < n.lossRate {
		n.stats.PacketsLost++
		n.m.packetsLost.Inc()
		n.releaseFlight(f)
		return
	}
	r := f.path[f.hop]
	n.m.packetsForwarded.Inc()
	// DPI taps see the packet on arrival, before the TTL check: a device on
	// the wire observes bytes regardless of whether the router then drops
	// them. This is what makes Phase II's "first TTL that triggers
	// shadowing = observer hop" inference sound.
	if len(r.taps) > 0 {
		if err := n.parser.Decode(f.pkt, &n.scratch); err == nil {
			n.tapCounter(r).Add(int64(len(r.taps)))
			for _, t := range r.taps {
				t.Observe(n, r, &n.scratch)
			}
		}
	}
	ttl, err := wire.DecrementTTL(f.pkt)
	if err != nil {
		n.releaseFlight(f)
		return // malformed in flight; drop silently
	}
	if ttl == 0 {
		n.stats.TTLExpired++
		n.m.ttlExpired.Inc()
		if !r.ICMPSilent {
			n.sendTimeExceeded(r, f.origin, f.pkt, f.hop)
		}
		n.releaseFlight(f)
		return
	}
	f.hop++
	n.forward(f)
}

// tapCounter resolves (and caches) the per-router tap-observation
// counter, labeled by router name.
func (n *Network) tapCounter(r *Router) *telemetry.Counter {
	if c, ok := n.tapObserves[r]; ok {
		return c
	}
	c := n.m.taps.With(r.Name)
	n.tapObserves[r] = c
	return c
}

// sendTimeExceeded generates the ICMP error for a probe that expired at
// hop index hop of its path.
func (n *Network) sendTimeExceeded(r *Router, origin wire.Addr, expired []byte, hop int) {
	// Build the message directly into its packet buffer: the quote aliases
	// the expired packet only until BuildICMP copies it, so the intermediate
	// copy wire.NewTimeExceeded would make is unnecessary here.
	quote := expired
	if len(quote) > wire.TimeExceededQuoteLen {
		quote = quote[:wire.TimeExceededQuoteLen]
	}
	te := wire.ICMP{Type: wire.ICMPTimeExceeded}
	raw, err := wire.BuildICMP(r.Addr, origin, 64, 0, &te, quote)
	if err != nil {
		return
	}
	n.stats.ICMPSent++
	n.m.icmpSent.Inc()
	// The error message returns over the reverse path; the measurement only
	// needs its eventual arrival at the origin, so model the return trip as
	// a direct delayed delivery proportional to the forward distance: the
	// probe crossed hop+1 links to reach this router, and the error crosses
	// as many on the way back. Per-TTL traceroute RTTs therefore increase
	// with hop distance, as they do on the real Internet.
	f := n.newFlight(raw, r.Addr, nil)
	e := n.newEvent()
	e.flight = f
	n.scheduleEvent(time.Duration(hop+1)*n.hopLatency, e)
}

func (n *Network) deliver(pkt []byte) {
	if err := n.parser.Decode(pkt, &n.scratch); err != nil {
		return
	}
	h, ok := n.hosts[n.scratch.IP.Dst]
	if !ok {
		n.stats.NoHandler++
		n.m.noHandler.Inc()
		return
	}
	n.stats.PacketsDelivered++
	n.m.packetsDelivered.Inc()
	h.Handle(n, &n.scratch)
}

// dispatch executes one popped event and recycles it. The event's payload
// is captured before release so a handler scheduling new work can reuse
// the pooled object immediately. It is the event-loop root: everything it
// reaches — flight hops, handler dispatch, scheduled closures — runs on
// the world's single event-loop goroutine.
//
//shadowlint:hotpath
//shadowlint:eventloop
func (n *Network) dispatch(e *event) {
	f, fn := e.flight, e.fn
	uh, uw, ugen := e.udpHost, e.udpW, e.udpGen
	n.releaseEvent(e)
	if f != nil {
		n.stepFlight(f)
		return
	}
	if uw != nil {
		uh.udpTimeout(n, uw, ugen)
		return
	}
	fn()
}

// Run processes events until the queue is empty or the virtual clock would
// pass deadline. It returns the number of events processed.
func (n *Network) Run(deadline time.Time) int64 {
	var processed int64
	truncated := false
	for n.events.Len() > 0 {
		next := n.events[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&n.events)
		if next.at.After(n.now) {
			n.now = next.at
		}
		n.m.queueDepth.Observe(float64(len(n.events) + 1))
		n.dispatch(next)
		processed++
		n.stats.Events++
		n.m.eventsDispatched.Inc()
		n.tele.Progress.Tick(n.now, len(n.events))
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			truncated = true
			break
		}
	}
	// Fast-forward to the deadline only when the queue genuinely drained to
	// it. A maxEvents break leaves unprocessed events behind; jumping the
	// clock past them would make a later run dispatch them with timestamps
	// in the past.
	if !truncated && deadline.After(n.now) {
		n.now = deadline
	}
	return processed
}

// RunUntilIdle drains the event queue completely.
func (n *Network) RunUntilIdle() int64 {
	var processed int64
	for n.events.Len() > 0 {
		next := heap.Pop(&n.events).(*event)
		if next.at.After(n.now) {
			n.now = next.at
		}
		n.m.queueDepth.Observe(float64(len(n.events) + 1))
		n.dispatch(next)
		processed++
		n.stats.Events++
		n.m.eventsDispatched.Inc()
		n.tele.Progress.Tick(n.now, len(n.events))
		if n.maxEvents > 0 && n.stats.Events >= n.maxEvents {
			break
		}
	}
	return processed
}

// Pending reports the number of queued events.
func (n *Network) Pending() int { return n.events.Len() }

// event is one queued occurrence: a generic callback (fn), a packet-flight
// step (flight), or a typed UDP request timeout (udpW). Exactly one of the
// three is set. The typed timeout exists because SendUDPRequest fires on
// every probe: carrying the waiter and its generation in plain fields
// costs nothing, where the equivalent closure allocated once per request.
// Events are pooled by the Network; they live only between scheduleEvent
// and dispatch.
type event struct {
	at     time.Time
	atNS   int64 // at.UnixNano(), precomputed: heap sifts compare plain ints
	seq    int64 // FIFO tiebreak for simultaneous events
	fn     func()
	flight *flight

	udpHost *Host
	udpW    *udpWaiter
	udpGen  uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].atNS != h[j].atNS {
		return h[i].atNS < h[j].atNS
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
