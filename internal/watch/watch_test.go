package watch

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowmeter/internal/runner"
	"shadowmeter/internal/telemetry"
)

func testServer(t *testing.T, mon *runner.Monitor, bus *telemetry.Bus) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer((&Server{Monitor: mon, Bus: bus}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, nil, nil)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestUnattachedEndpointsAnswer503(t *testing.T) {
	ts := testServer(t, nil, nil)
	for _, path := range []string{"/campaign", "/progress"} {
		if code, _ := get(t, ts.URL+path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with nothing attached = %d, want 503", path, code)
		}
	}
	// /metrics degrades to an empty exposition rather than erroring:
	// a scraper pointed at a not-yet-started campaign just sees nothing.
	if code, _ := get(t, ts.URL+"/metrics"); code != http.StatusOK {
		t.Errorf("/metrics with nothing attached = %d, want 200", code)
	}
}

func TestMetricsIncludesBusAccounting(t *testing.T) {
	bus := telemetry.NewBus(nil, 0)
	bus.Publish(telemetry.StreamEvent{Type: telemetry.EventTrialStarted})
	ts := testServer(t, nil, bus)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "watch_bus_published_total 1") {
		t.Fatalf("/metrics missing bus accounting:\n%s", body)
	}
}

func TestProgressPollSinceAndMissed(t *testing.T) {
	bus := telemetry.NewBus(nil, 4)
	for i := 0; i < 10; i++ {
		bus.Publish(telemetry.StreamEvent{Type: telemetry.EventTrialFinished, Trial: i})
	}
	ts := testServer(t, nil, bus)
	code, body := get(t, ts.URL+"/progress?since=0")
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	var poll struct {
		Events  []telemetry.StreamEvent `json:"events"`
		NextSeq uint64                  `json:"next_seq"`
		Missed  uint64                  `json:"missed"`
	}
	if err := json.Unmarshal([]byte(body), &poll); err != nil {
		t.Fatalf("decoding poll: %v\n%s", err, body)
	}
	if poll.NextSeq != 10 || poll.Missed != 6 || len(poll.Events) != 4 {
		t.Fatalf("poll = next %d missed %d events %d; want 10, 6, 4", poll.NextSeq, poll.Missed, len(poll.Events))
	}
	if code, _ := get(t, ts.URL+"/progress?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", code)
	}
}

// readSSE collects data lines from an SSE stream until want events
// arrived or the deadline passed.
func readSSE(t *testing.T, body io.Reader, want int, out chan<- telemetry.StreamEvent) {
	t.Helper()
	sc := bufio.NewScanner(body)
	seen := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev telemetry.StreamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Errorf("bad SSE data line %q: %v", line, err)
			return
		}
		out <- ev
		seen++
		if seen == want {
			return
		}
	}
}

// TestStreamUnderConcurrentPublish is the -race exercise the issue asks
// for: four workers publish concurrently while an SSE reader streams and
// a poller hammers the JSON endpoints. The reader must see every event
// exactly once, in sequence order, with no race-detector findings.
func TestStreamUnderConcurrentPublish(t *testing.T) {
	bus := telemetry.NewBus(nil, 4096)
	ts := testServer(t, nil, bus)

	const workers, perWorker = 4, 25
	const total = workers * perWorker

	// Seed a small backlog so the stream exercises the replay + dedupe
	// path, not just live delivery.
	backlog := 5
	for i := 0; i < backlog; i++ {
		bus.Publish(telemetry.StreamEvent{Type: telemetry.EventTrialStarted, Trial: i})
	}

	req, err := http.NewRequest("GET", ts.URL+"/progress?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}

	events := make(chan telemetry.StreamEvent, total+backlog)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		readSSE(t, resp.Body, total+backlog, events)
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				bus.Publish(telemetry.StreamEvent{Type: telemetry.EventTrialFinished, Worker: w, Trial: i})
			}
		}(w)
	}
	// Concurrent pollers on the read-side endpoints.
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				get(t, ts.URL+"/progress")
				get(t, ts.URL+"/metrics")
			}
		}()
	}
	wg.Wait()

	select {
	case <-readerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE reader did not receive all events")
	}
	close(events)
	last := int64(-1)
	n := 0
	for ev := range events {
		if int64(ev.Seq) <= last {
			t.Fatalf("SSE delivered seq %d after %d (duplicate or reorder)", ev.Seq, last)
		}
		last = int64(ev.Seq)
		n++
	}
	if n != total+backlog {
		t.Fatalf("SSE delivered %d events, want %d", n, total+backlog)
	}
}
