// Package watch is the live campaign observability plane: an HTTP
// server that exposes a running multi-trial batch — progress stream,
// merged-so-far metrics, campaign status, profiling — without touching
// the deterministic pipeline.
//
// Endpoints:
//
//	/healthz        liveness ("ok")
//	/campaign       campaign identity + completion bitmap + ETA (JSON)
//	/progress       the stream bus: JSON poll (?since=SEQ) or SSE
//	                (?stream=1, or Accept: text/event-stream)
//	/metrics        Prometheus text: merged completed-trial telemetry
//	                plus the live plane's own bus/progress meters
//	/debug/pprof/   net/http/pprof (CPU, heap, goroutine profiles)
//
// Everything served here is a snapshot or a bus copy. The /metrics
// merge folds only telemetry snapshots taken by each trial's own
// goroutine at completion — a scrape can never race a running world —
// and the bus drops rather than blocks, so a stalled watcher cannot
// stall a worker. That is what makes `-watch` provably inert: batch
// stdout and -metrics-json are byte-identical with the plane on or off.
package watch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"shadowmeter/internal/runner"
	"shadowmeter/internal/telemetry"
)

// Server wires the observability plane over a campaign monitor and its
// stream bus. Monitor may be nil (campaign endpoints answer 503), Bus
// may be nil (/progress answers 503) — useful for tests and partial
// wiring.
type Server struct {
	Monitor *runner.Monitor
	Bus     *telemetry.Bus
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/campaign", s.handleCampaign)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	if s.Monitor == nil {
		http.Error(w, "no campaign attached", http.StatusServiceUnavailable)
		return
	}
	b, err := json.MarshalIndent(s.Monitor.Campaign(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, b)
}

// writeBody sends a JSON document plus trailing newline. A write error
// here means the client hung up mid-response; the connection is the
// only place it could be reported, so the handler just stops.
func writeBody(w http.ResponseWriter, b []byte) {
	if _, err := w.Write(append(b, '\n')); err != nil {
		return
	}
}

// handleMetrics serves the Prometheus view: the merged completed-trial
// registry plus the live plane's own meters (bus accounting, campaign
// completion) rendered by hand.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Monitor != nil {
		metrics, _ := s.Monitor.MergedMetrics()
		telemetry.WritePrometheusMetrics(w, metrics)
		snap := s.Monitor.Campaign()
		fmt.Fprintf(w, "# HELP watch_trials_completed trials finished so far in the observed campaign\n")
		fmt.Fprintf(w, "# TYPE watch_trials_completed gauge\nwatch_trials_completed %d\n", snap.Completed)
		fmt.Fprintf(w, "# HELP watch_trials_total trials in the observed campaign\n")
		fmt.Fprintf(w, "# TYPE watch_trials_total gauge\nwatch_trials_total %d\n", snap.Trials)
		fmt.Fprintf(w, "# HELP watch_slow_trial_dumps_total watchdog flight dumps written\n")
		fmt.Fprintf(w, "# TYPE watch_slow_trial_dumps_total counter\nwatch_slow_trial_dumps_total %d\n", snap.SlowTrialDumps)
	}
	if s.Bus != nil {
		st := s.Bus.Stats()
		fmt.Fprintf(w, "# HELP watch_bus_published_total events published to the stream bus\n")
		fmt.Fprintf(w, "# TYPE watch_bus_published_total counter\nwatch_bus_published_total %d\n", st.Published)
		fmt.Fprintf(w, "# HELP watch_bus_evicted_total ring slots overwritten before being polled\n")
		fmt.Fprintf(w, "# TYPE watch_bus_evicted_total counter\nwatch_bus_evicted_total %d\n", st.Evicted)
		fmt.Fprintf(w, "# HELP watch_bus_subscriber_dropped_total events dropped on full subscriber channels\n")
		fmt.Fprintf(w, "# TYPE watch_bus_subscriber_dropped_total counter\nwatch_bus_subscriber_dropped_total %d\n", st.SubscriberDropped)
		fmt.Fprintf(w, "# HELP watch_bus_subscribers current stream subscribers\n")
		fmt.Fprintf(w, "# TYPE watch_bus_subscribers gauge\nwatch_bus_subscribers %d\n", st.Subscribers)
	}
}

// progressPoll is the JSON shape of a /progress poll response.
type progressPoll struct {
	Events []telemetry.StreamEvent `json:"events"`
	// NextSeq is the ?since value that continues from here.
	NextSeq uint64 `json:"next_seq"`
	// Missed counts requested events already evicted from the ring.
	Missed uint64 `json:"missed"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if s.Bus == nil {
		http.Error(w, "no stream bus attached", http.StatusServiceUnavailable)
		return
	}
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	if r.URL.Query().Get("stream") != "" || r.Header.Get("Accept") == "text/event-stream" {
		s.streamProgress(w, r, since)
		return
	}
	events, next, missed := s.Bus.Since(since)
	if events == nil {
		events = []telemetry.StreamEvent{}
	}
	b, err := json.MarshalIndent(progressPoll{Events: events, NextSeq: next, Missed: missed}, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeBody(w, b)
}

// streamProgress serves Server-Sent Events: a replay of the retained
// backlog from ?since, then live events until the client disconnects.
// Subscription happens before the backlog read, so no event published
// in between is lost; the seq guard dedupes the overlap.
func (s *Server) streamProgress(w http.ResponseWriter, r *http.Request, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sub := s.Bus.Subscribe(256)
	defer s.Bus.Unsubscribe(sub)
	backlog, next, _ := s.Bus.Since(since)
	for _, ev := range backlog {
		if !writeSSE(w, ev) {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if ev.Seq < next {
				continue // already sent in the backlog replay
			}
			if !writeSSE(w, ev) {
				return
			}
			flusher.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, ev telemetry.StreamEvent) bool {
	b, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
	return err == nil
}
