package pairresolver

import (
	"testing"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

var t0 = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func TestPairAddr(t *testing.T) {
	cases := map[string]string{
		"1.1.1.1":         "1.1.1.4",
		"8.8.8.8":         "8.8.8.11",
		"114.114.114.114": "114.114.114.117",
		"9.9.9.253":       "9.9.9.2", // wraps past 254
	}
	for in, want := range cases {
		got := PairAddr(wire.MustParseAddr(in))
		if got != wire.MustParseAddr(want) {
			t.Errorf("PairAddr(%s) = %v, want %s", in, got, want)
		}
		if got == wire.MustParseAddr(in) {
			t.Errorf("pair equals resolver for %s", in)
		}
		if !got.SameSlash24(wire.MustParseAddr(in)) {
			t.Errorf("pair %v left the /24 of %s", got, in)
		}
	}
}

// buildScreenWorld: two VPs — one behind a clean path, one behind a path
// with an interception device.
func buildScreenWorld(t *testing.T) (*netsim.Network, *vantage.Platform, *InterceptorTap, *vantage.VP, *vantage.VP) {
	t.Helper()
	cleanRouter := &netsim.Router{Name: "clean", Addr: wire.AddrFrom(10, 0, 0, 1)}
	dirtyRouter := &netsim.Router{Name: "dirty", Addr: wire.AddrFrom(10, 0, 0, 2)}
	tap := &InterceptorTap{SpoofAddr: wire.MustParseAddr("203.0.113.99")}
	dirtyRouter.AttachTap(tap)

	cleanVPAddr := wire.MustParseAddr("100.64.0.1")
	dirtyVPAddr := wire.MustParseAddr("100.64.0.2")
	n := netsim.New(netsim.Config{Start: t0, Path: func(src, dst wire.Addr) []*netsim.Router {
		switch {
		case src == dirtyVPAddr || dst == dirtyVPAddr:
			return []*netsim.Router{dirtyRouter}
		default:
			return []*netsim.Router{cleanRouter}
		}
	}})

	// A real resolver answers on its service address; the pair address has
	// no host at all.
	resolverAddr := wire.MustParseAddr("77.88.8.8")
	res := netsim.NewHost(n, resolverAddr)
	res.ServeUDP(53, func(n *netsim.Network, from wire.Endpoint, payload []byte) []byte {
		q, err := dnswire.Decode(payload)
		if err != nil {
			return nil
		}
		resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
		raw, _ := resp.Encode()
		return raw
	})

	prov := &vantage.Provider{Name: "p", Market: vantage.Global}
	cleanVP := &vantage.VP{Provider: prov, Host: netsim.NewHost(n, cleanVPAddr), Addr: cleanVPAddr}
	dirtyVP := &vantage.VP{Provider: prov, Host: netsim.NewHost(n, dirtyVPAddr), Addr: dirtyVPAddr}
	p := &vantage.Platform{VPs: []*vantage.VP{cleanVP, dirtyVP}}
	return n, p, tap, cleanVP, dirtyVP
}

func TestScreenRemovesInterceptedVP(t *testing.T) {
	n, p, tap, cleanVP, dirtyVP := buildScreenWorld(t)
	report := Screen(n, p, []wire.Addr{wire.MustParseAddr("77.88.8.8")}, 0)
	if report.Tested != 2 {
		t.Errorf("tested = %d", report.Tested)
	}
	if report.Removed != 1 {
		t.Fatalf("removed = %d, want 1", report.Removed)
	}
	if report.RemovedAddrs[0] != dirtyVP.Addr {
		t.Errorf("removed %v, want dirty VP", report.RemovedAddrs[0])
	}
	if len(p.VPs) != 1 || p.VPs[0] != cleanVP {
		t.Errorf("platform VPs = %v", p.VPs)
	}
	if tap.Answered() == 0 {
		t.Error("interceptor never fired — test world broken")
	}
}

func TestInterceptorSpoofsRealResolverToo(t *testing.T) {
	n, _, _, _, dirtyVP := buildScreenWorld(t)
	// The dirty VP queries the REAL resolver; the interceptor races the
	// true answer with a spoofed one carrying its SpoofAddr.
	q := dnswire.NewQuery(7, "victim.example", dnswire.TypeA)
	payload, _ := q.Encode()
	var answers []wire.Addr
	dirtyVP.SendUDPRequest(n, wire.Endpoint{Addr: wire.MustParseAddr("77.88.8.8"), Port: 53}, payload, netsim.UDPRequestOpts{
		OnReply: func(n *netsim.Network, resp []byte) {
			if m, err := dnswire.Decode(resp); err == nil {
				for _, a := range m.Answers {
					answers = append(answers, a.Addr)
				}
			}
		},
	})
	n.RunUntilIdle()
	// The spoofed response wins the race (injected at hop 1, shorter path).
	if len(answers) != 1 || answers[0] != wire.MustParseAddr("203.0.113.99") {
		t.Errorf("answers = %v, want spoofed 203.0.113.99", answers)
	}
}

func TestCleanPathSurvives(t *testing.T) {
	n, p, _, cleanVP, _ := buildScreenWorld(t)
	p.VPs = []*vantage.VP{cleanVP}
	report := Screen(n, p, []wire.Addr{wire.MustParseAddr("77.88.8.8")}, 0)
	if report.Removed != 0 || len(p.VPs) != 1 {
		t.Errorf("clean VP removed: %+v", report)
	}
}
