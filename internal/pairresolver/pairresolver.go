// Package pairresolver implements the Appendix E noise-mitigation
// heuristics: detecting on-path DNS interception with "pair resolvers" and
// removing affected vantage points before the experiment.
//
// A pair resolver of a target resolver is another address in the same /24
// that offers no DNS service (e.g. 1.1.1.4 for 1.1.1.1). Queries to both
// share a forwarding path; if a query to the pair address elicits a DNS
// response, an interception device answered from a spoofed address, and
// the VP's paths cannot be trusted for locating observers.
//
// The package also provides the ground-truth InterceptorTap used to seed
// interception into test worlds — the screening code never reads it.
package pairresolver

import (
	"sync"
	"time"

	"shadowmeter/internal/dnswire"
	"shadowmeter/internal/netsim"
	"shadowmeter/internal/vantage"
	"shadowmeter/internal/wire"
)

// PairAddr derives the pair-resolver address: same /24, host octet offset
// by +3 (mod 254, avoiding 0, 255 and the resolver itself), mirroring the
// paper's 1.1.1.1 -> 1.1.1.4 example.
func PairAddr(resolver wire.Addr) wire.Addr {
	host := int(resolver[3])
	for delta := 3; ; delta++ {
		cand := (host+delta-1)%254 + 1 // stays in 1..254
		if byte(cand) != resolver[3] {
			return wire.Addr{resolver[0], resolver[1], resolver[2], byte(cand)}
		}
	}
}

// Report summarizes one screening run.
type Report struct {
	Tested       int
	Removed      int
	RemovedAddrs []wire.Addr
}

// Screen sends a DNS query from every VP to the pair address of every
// target resolver. VPs receiving any DNS response are removed from the
// platform (interception detected on their paths). It runs the network to
// completion and returns the report.
func Screen(n *netsim.Network, p *vantage.Platform, resolvers []wire.Addr, timeout time.Duration) Report {
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	var mu sync.Mutex
	intercepted := make(map[*vantage.VP]bool)

	for _, vp := range p.VPs {
		vp := vp
		for i, r := range resolvers {
			pair := PairAddr(r)
			q := dnswire.NewQuery(uint16(i+1), "pair-check.experiment.domain", dnswire.TypeA)
			payload, err := q.Encode()
			if err != nil {
				continue
			}
			vp.SendUDPRequest(n, wire.Endpoint{Addr: pair, Port: 53}, payload, netsim.UDPRequestOpts{
				Timeout: timeout,
				OnReply: func(n *netsim.Network, resp []byte) {
					if _, err := dnswire.Decode(resp); err == nil {
						mu.Lock()
						intercepted[vp] = true
						mu.Unlock()
					}
				},
			})
		}
	}
	n.RunUntilIdle()

	report := Report{Tested: len(p.VPs)}
	var kept []*vantage.VP
	for _, vp := range p.VPs {
		if intercepted[vp] {
			report.Removed++
			report.RemovedAddrs = append(report.RemovedAddrs, vp.Addr)
			continue
		}
		kept = append(kept, vp)
	}
	p.VPs = kept
	return report
}

// InterceptorTap is ground truth for tests: an on-path DNS interception
// device that answers *every* UDP/53 query it sees with a spoofed response
// from the original destination address — exactly the behavior the pair-
// resolver heuristic detects (the device cannot tell real resolvers from
// pair addresses, so it spoofs for both).
type InterceptorTap struct {
	// SpoofAddr is the A record value injected into spoofed answers.
	SpoofAddr wire.Addr

	mu       sync.Mutex
	answered int64
}

// Answered reports how many queries the device spoofed.
func (it *InterceptorTap) Answered() int64 {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.answered
}

// Observe implements netsim.Tap.
func (it *InterceptorTap) Observe(n *netsim.Network, at *netsim.Router, pkt *wire.Packet) {
	if pkt.UDP == nil || pkt.UDP.DstPort != 53 {
		return
	}
	q, err := dnswire.Decode(pkt.UDP.Payload())
	if err != nil || q.Header.QR || len(q.Questions) == 0 {
		return
	}
	it.mu.Lock()
	it.answered++
	it.mu.Unlock()

	resp := dnswire.NewResponse(q, dnswire.RcodeNoError)
	resp.Answers = append(resp.Answers, dnswire.RR{
		Name: q.QName(), Type: dnswire.TypeA, TTL: 60, Addr: it.SpoofAddr,
	})
	raw, err := resp.Encode()
	if err != nil {
		return
	}
	// Spoof: source is the original destination, as if the resolver (or
	// pair address) had answered.
	udp := wire.UDP{SrcPort: pkt.UDP.DstPort, DstPort: pkt.UDP.SrcPort}
	seg, err := udp.Serialize(pkt.IP.Dst, pkt.IP.Src, raw)
	if err != nil {
		return
	}
	ip := wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: pkt.IP.Dst, Dst: pkt.IP.Src}
	spoofed, err := ip.Serialize(seg)
	if err != nil {
		return
	}
	n.InjectOwned(spoofed)
}
