package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/geodb"
	"shadowmeter/internal/honeypot"
	"shadowmeter/internal/intel"
	"shadowmeter/internal/traceroute"
	"shadowmeter/internal/wire"
)

var epoch = time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)

func newAnalyzer() *Analyzer {
	geo := geodb.New()
	geo.Register(wire.MustParseAddr("100.64.0.0"), 16, geodb.Info{Country: "DE", ASN: 100, ASName: "DE-DC"})
	geo.Register(wire.MustParseAddr("100.65.0.0"), 16, geodb.Info{Country: "CN", ASN: 101, ASName: "CN-IDC"})
	geo.Register(wire.MustParseAddr("8.8.0.0"), 16, geodb.Info{Country: "US", ASN: 15169, ASName: "Google LLC"})
	geo.Register(wire.MustParseAddr("61.0.0.0"), 8, geodb.Info{Country: "CN", ASN: 4134, ASName: "CHINANET-BACKBONE"})
	geo.Register(wire.MustParseAddr("20.0.0.0"), 8, geodb.Info{Country: "US", ASN: 40444, ASName: "Constant Contact"})
	return &Analyzer{
		Geo:        geo,
		Blocklist:  intel.NewBlocklist(),
		Signatures: intel.DefaultSignatureDB(),
	}
}

func mkEvent(sentProto, capProto decoy.Protocol, vp, dst, origin string, dstName, label string, delay time.Duration) correlate.Unsolicited {
	sent := &correlate.Sent{
		Label: label, Domain: label + ".www.experiment.domain", Protocol: sentProto,
		VP: wire.MustParseAddr(vp), Dst: wire.Endpoint{Addr: wire.MustParseAddr(dst), Port: 53},
		DstName: dstName, Time: epoch,
	}
	comb := sentProto.String() + "-" + capProto.String()
	if capProto == decoy.TLS {
		comb = sentProto.String() + "-HTTPS"
	}
	return correlate.Unsolicited{
		Capture: honeypot.Capture{
			Time: epoch.Add(delay), Protocol: capProto,
			Source: wire.Endpoint{Addr: wire.MustParseAddr(origin), Port: 999},
			Domain: label + ".www.experiment.domain", Label: label,
			HTTPPath: "/admin/",
		},
		Sent: sent, Delay: delay, Combination: comb,
	}
}

func TestFigure3Ratios(t *testing.T) {
	a := newAnalyzer()
	u := NewPathUniverse()
	u.AddPaths(decoy.DNS, "DE", 10)
	u.AddPaths(decoy.DNS, "CN", 10)
	u.VPCountry[wire.MustParseAddr("100.64.0.1")] = "DE"
	u.VPCountry[wire.MustParseAddr("100.65.0.1")] = "CN"

	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", time.Hour),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", 2*time.Hour), // same path
		mkEvent(decoy.DNS, decoy.DNS, "100.65.0.1", "114.114.114.114", "61.1.1.1", "114DNS", "l2", time.Minute),
	}
	rows := a.Figure3(events, u)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Problematic != 1 || r.Total != 10 || math.Abs(r.Ratio-0.1) > 1e-9 {
			t.Errorf("row = %+v", r)
		}
	}
}

func TestDestinationRatios(t *testing.T) {
	a := newAnalyzer()
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", time.Hour),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.2", "77.88.8.8", "8.8.4.4", "Yandex", "l2", time.Hour),
	}
	got := a.DestinationRatios(events, map[string]int{"Yandex": 4, "Google": 4})
	if got["Yandex"] != 0.5 || got["Google"] != 0 {
		t.Errorf("ratios = %v", got)
	}
}

func TestDelayCDF(t *testing.T) {
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", 30*time.Second),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", 48*time.Hour),
		mkEvent(decoy.HTTP, decoy.DNS, "100.64.0.1", "1.2.3.4", "8.8.4.4", "site", "l2", time.Hour),
	}
	cdf := DelayCDF(events, decoy.DNS, map[string]bool{"Yandex": true})
	if cdf.N() != 2 {
		t.Fatalf("N = %d", cdf.N())
	}
	if got := cdf.At(60); got != 0.5 {
		t.Errorf("At(1min) = %v", got)
	}
	// HTTP decoy events only.
	cdf = DelayCDF(events, decoy.HTTP, nil)
	if cdf.N() != 1 {
		t.Errorf("HTTP N = %d", cdf.N())
	}
}

func TestFigure5(t *testing.T) {
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", 10*time.Second),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", 48*time.Hour),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l9", 49*time.Hour),
		mkEvent(decoy.HTTP, decoy.DNS, "100.64.0.1", "1.2.3.4", "8.8.4.4", "site", "l2", time.Hour), // not a DNS decoy
	}
	cells, perDst := Figure5(events)
	if len(cells) != 2 {
		t.Fatalf("cells = %+v", cells)
	}
	if cells[0].Combination != "DNS-DNS" || cells[0].DelayBucket != "<1min" || cells[0].Count != 1 {
		t.Errorf("cell0 = %+v", cells[0])
	}
	if cells[1].Combination != "DNS-HTTP" || cells[1].DelayBucket != ">1d" || cells[1].Count != 2 {
		t.Errorf("cell1 = %+v", cells[1])
	}
	if perDst["Yandex"]["DNS-HTTP"] != 2 { // two distinct decoys
		t.Errorf("perDst = %v", perDst)
	}
}

func TestFigure6(t *testing.T) {
	a := newAnalyzer()
	a.Blocklist.ListAddr(wire.MustParseAddr("61.1.1.1"), intel.ReasonXBL)
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", time.Hour),
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.5", "Yandex", "l2", time.Hour),
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "61.1.1.1", "Yandex", "l3", time.Hour),
	}
	reports := a.Figure6(events, map[string]bool{"Yandex": true}, 5)
	if len(reports) != 1 {
		t.Fatalf("reports = %+v", reports)
	}
	r := reports[0]
	if r.DistinctOrigins != 3 {
		t.Errorf("origins = %d", r.DistinctOrigins)
	}
	if r.TopASes[0].Key != "AS15169" || r.TopASes[0].Count != 2 {
		t.Errorf("top AS = %+v", r.TopASes[0])
	}
	if math.Abs(r.BlocklistedFraction-1.0/3) > 1e-9 {
		t.Errorf("blocklisted = %v", r.BlocklistedFraction)
	}
}

func TestMultiUseStats(t *testing.T) {
	var events []correlate.Unsolicited
	// decoy A: 5 events after 1h; decoy B: 1 event after 1h; decoy C: 12.
	for i := 0; i < 5; i++ {
		events = append(events, mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "A", 2*time.Hour))
	}
	events = append(events, mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "B", 2*time.Hour))
	for i := 0; i < 12; i++ {
		events = append(events, mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "C", 3*time.Hour))
	}
	// Sub-hour events don't count.
	events = append(events, mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "D", time.Minute))

	m := MultiUseStats(events, time.Hour)
	if m.DecoysWithLateEvents != 3 {
		t.Errorf("decoys = %d", m.DecoysWithLateEvents)
	}
	if math.Abs(m.FractionOver3-2.0/3) > 1e-9 {
		t.Errorf("over3 = %v", m.FractionOver3)
	}
	if math.Abs(m.FractionOver10-1.0/3) > 1e-9 {
		t.Errorf("over10 = %v", m.FractionOver10)
	}
}

func TestProbingIncentives(t *testing.T) {
	a := newAnalyzer()
	a.Blocklist.ListAddr(wire.MustParseAddr("61.2.2.2"), intel.ReasonSBL)
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "61.2.2.2", "Yandex", "l1", time.Hour),
		mkEvent(decoy.DNS, decoy.HTTP, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l2", time.Hour),
		mkEvent(decoy.DNS, decoy.TLS, "100.64.0.1", "77.88.8.8", "61.2.2.2", "Yandex", "l3", time.Hour),
	}
	inc := a.ProbingIncentives(events, decoy.DNS)
	if inc.HTTPRequests != 2 {
		t.Errorf("http = %d", inc.HTTPRequests)
	}
	if inc.EnumerationFraction != 1 { // "/admin/" is enumeration
		t.Errorf("enum = %v", inc.EnumerationFraction)
	}
	if inc.ExploitMatches != 0 {
		t.Errorf("exploits = %d", inc.ExploitMatches)
	}
	if inc.HTTPBlocklisted != 0.5 || inc.HTTPSBlocklisted != 1 {
		t.Errorf("blocklisted = %v / %v", inc.HTTPBlocklisted, inc.HTTPSBlocklisted)
	}
	// Filtering by a different decoy protocol excludes everything.
	if got := a.ProbingIncentives(events, decoy.TLS); got.HTTPRequests != 0 {
		t.Errorf("filtered = %+v", got)
	}
}

// fakeSweep builds a traceroute result without running the engine.
func fakeResult(proto decoy.Protocol, hop, dist int, obs string) traceroute.Result {
	s := &traceroute.Sweep{Proto: proto}
	r := traceroute.Result{Sweep: s, ObserverHop: hop, DestDistance: dist}
	if hop >= dist {
		r.AtDestination = true
		r.NormalizedHop = 10
	} else {
		r.NormalizedHop = traceroute.NormalizeHop(hop, dist)
		if obs != "" {
			r.ObserverAddr = wire.MustParseAddr(obs)
		}
	}
	return r
}

func TestTable2(t *testing.T) {
	results := []traceroute.Result{
		fakeResult(decoy.DNS, 8, 8, ""),
		fakeResult(decoy.DNS, 9, 9, ""),
		fakeResult(decoy.HTTP, 3, 8, "61.1.1.1"),
		fakeResult(decoy.HTTP, 4, 8, "61.1.1.2"),
		fakeResult(decoy.TLS, 8, 8, ""),
		{Sweep: &traceroute.Sweep{Proto: decoy.TLS}}, // no leak: excluded
	}
	rows := Table2(results)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	dns := rows[0]
	if dns.Protocol != decoy.DNS || dns.Share[9] != 100 {
		t.Errorf("DNS row = %+v", dns)
	}
	http := rows[1]
	if http.Share[9] != 0 || http.Count != 2 {
		t.Errorf("HTTP row = %+v", http)
	}
	rendered := RenderTable2(rows)
	if !strings.Contains(rendered, "10(dst)") || !strings.Contains(rendered, "DNS") {
		t.Errorf("render = %q", rendered)
	}
}

func TestTable3AndCountryShare(t *testing.T) {
	a := newAnalyzer()
	results := []traceroute.Result{
		fakeResult(decoy.HTTP, 3, 8, "61.1.1.1"),
		fakeResult(decoy.HTTP, 3, 8, "61.1.1.1"), // same addr: dedup
		fakeResult(decoy.HTTP, 4, 8, "61.1.1.2"),
		fakeResult(decoy.HTTP, 4, 8, "20.1.1.1"),
		fakeResult(decoy.TLS, 4, 8, "61.1.1.3"),
	}
	rows, addrs := a.Table3(results, 2)
	if len(rows) != 3 { // 2 HTTP ASes + 1 TLS AS
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].AS != "AS4134" || rows[0].Count != 2 {
		t.Errorf("top = %+v", rows[0])
	}
	if math.Abs(rows[0].Fraction-2.0/3) > 1e-9 {
		t.Errorf("fraction = %v", rows[0].Fraction)
	}
	if len(addrs[decoy.HTTP]) != 3 {
		t.Errorf("HTTP observer addrs = %v", addrs[decoy.HTTP])
	}
	share := a.ObserverCountryShare(addrs)
	if share["CN"] != 3 || share["US"] != 1 {
		t.Errorf("country share = %v", share)
	}
	rendered := RenderTable3(rows)
	if !strings.Contains(rendered, "CHINANET-BACKBONE") {
		t.Errorf("render = %q", rendered)
	}
}

func TestObserverBehaviourByAS(t *testing.T) {
	a := newAnalyzer()
	vp1, dst1 := "100.64.0.1", "1.2.3.4"
	events := []correlate.Unsolicited{
		mkEvent(decoy.HTTP, decoy.DNS, vp1, dst1, "61.5.5.5", "site", "l1", time.Hour), // origin in observer AS
		mkEvent(decoy.HTTP, decoy.HTTP, vp1, dst1, "8.8.4.4", "site", "l2", time.Hour), // origin elsewhere
	}
	key := correlate.PathKey{VP: wire.MustParseAddr(vp1), Dst: wire.MustParseAddr(dst1)}
	resultsByPath := map[correlate.PathKey]traceroute.Result{
		key: fakeResult(decoy.HTTP, 3, 8, "61.1.1.1"), // AS4134 observer
	}
	behaviours := a.ObserverBehaviourByAS(events, resultsByPath)
	if len(behaviours) != 1 {
		t.Fatalf("behaviours = %+v", behaviours)
	}
	b := behaviours[0]
	if b.AS != "AS4134" || b.PathsObserved != 1 {
		t.Errorf("behaviour = %+v", b)
	}
	if b.Combinations["HTTP-DNS"] != 1 || b.Combinations["HTTP-HTTP"] != 1 {
		t.Errorf("combos = %v", b.Combinations)
	}
	if b.SameASOriginFraction != 0.5 {
		t.Errorf("sameAS = %v", b.SameASOriginFraction)
	}
	if got := TopNCoverage(behaviours, 5); got != 1 {
		t.Errorf("coverage = %v", got)
	}
	if got := TopNCoverage(nil, 5); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
}

func TestTimeSeries(t *testing.T) {
	events := []correlate.Unsolicited{
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l1", time.Hour),
		mkEvent(decoy.DNS, decoy.DNS, "100.64.0.1", "77.88.8.8", "8.8.4.4", "Yandex", "l2", 8*24*time.Hour),
		mkEvent(decoy.HTTP, decoy.DNS, "100.64.0.1", "1.2.3.4", "8.8.4.4", "site", "l3", 8*24*time.Hour),
	}
	series := TimeSeries(events, epoch, 7*24*time.Hour, -1)
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	if series[0].Count != 1 || series[1].Count != 2 {
		t.Errorf("series = %+v", series)
	}
	dnsOnly := TimeSeries(events, epoch, 7*24*time.Hour, decoy.DNS)
	if dnsOnly[1].Count != 1 {
		t.Errorf("dns series = %+v", dnsOnly)
	}
	if got := TimeSeries(nil, epoch, 0, -1); len(got) != 1 || got[0].Count != 0 {
		t.Errorf("empty series = %+v", got)
	}
}
