// Package analysis computes every table and figure of the paper's
// evaluation from correlated measurement data: problematic-path ratios
// (Figure 3), observer locations (Table 2), observer networks (Table 3),
// temporal CDFs (Figures 4 and 7), protocol-combination breakdowns
// (Figure 5), origin ASes and blocklist overlap (Figure 6, §5.1-5.2), and
// payload incentives. Inputs are measurement artifacts only — honeypot
// evidence, traceroute results, send logs — never ground truth.
package analysis

import (
	"fmt"
	"sort"
	"time"

	"shadowmeter/internal/correlate"
	"shadowmeter/internal/decoy"
	"shadowmeter/internal/geodb"
	"shadowmeter/internal/intel"
	"shadowmeter/internal/stats"
	"shadowmeter/internal/traceroute"
	"shadowmeter/internal/wire"
)

// Analyzer carries the lookup services the computations need.
type Analyzer struct {
	Geo        *geodb.DB
	Blocklist  *intel.Blocklist
	Signatures *intel.SignatureDB
}

// PathUniverse records how many client-server paths were exercised, per
// protocol and VP country — the denominators of Figure 3.
type PathUniverse struct {
	// Totals[proto][country] = number of (VP, destination) pairs probed.
	Totals map[decoy.Protocol]map[string]int
	// VPCountry maps VP addresses to their discovered country.
	VPCountry map[wire.Addr]string
}

// NewPathUniverse returns an empty universe.
func NewPathUniverse() *PathUniverse {
	return &PathUniverse{
		Totals:    make(map[decoy.Protocol]map[string]int),
		VPCountry: make(map[wire.Addr]string),
	}
}

// AddPaths registers n probed paths for (proto, country).
func (u *PathUniverse) AddPaths(proto decoy.Protocol, country string, n int) {
	m := u.Totals[proto]
	if m == nil {
		m = make(map[string]int)
		u.Totals[proto] = m
	}
	m[country] += n
}

// Figure3Row is one cell of Figure 3.
type Figure3Row struct {
	Country     string
	Protocol    decoy.Protocol
	Problematic int
	Total       int
	Ratio       float64
}

// Figure3 computes the ratio of problematic paths per (VP country,
// protocol). A path is problematic when at least one of its decoys
// triggered an unsolicited request.
func (a *Analyzer) Figure3(events []correlate.Unsolicited, universe *PathUniverse) []Figure3Row {
	type key struct {
		country string
		proto   decoy.Protocol
	}
	problematic := make(map[key]map[correlate.PathKey]bool)
	for _, u := range events {
		country := universe.VPCountry[u.Sent.VP]
		if country == "" {
			country = a.Geo.Country(u.Sent.VP)
		}
		k := key{country, u.Sent.Protocol}
		if problematic[k] == nil {
			problematic[k] = make(map[correlate.PathKey]bool)
		}
		problematic[k][correlate.PathKey{VP: u.Sent.VP, Dst: u.Sent.Dst.Addr}] = true
	}
	var rows []Figure3Row
	for proto, byCountry := range universe.Totals {
		for country, total := range byCountry {
			p := len(problematic[key{country, proto}])
			var ratio float64
			if total > 0 {
				ratio = float64(p) / float64(total)
			}
			rows = append(rows, Figure3Row{Country: country, Protocol: proto, Problematic: p, Total: total, Ratio: ratio})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Protocol != rows[j].Protocol {
			return rows[i].Protocol < rows[j].Protocol
		}
		if rows[i].Ratio != rows[j].Ratio {
			return rows[i].Ratio > rows[j].Ratio
		}
		return rows[i].Country < rows[j].Country
	})
	return rows
}

// DestinationRatios computes, per destination name, the fraction of probed
// paths that are problematic — the per-resolver view of Figure 3 used to
// derive Resolver_h.
func (a *Analyzer) DestinationRatios(events []correlate.Unsolicited, totalPerDst map[string]int) map[string]float64 {
	problem := make(map[string]map[correlate.PathKey]bool)
	for _, u := range events {
		if problem[u.Sent.DstName] == nil {
			problem[u.Sent.DstName] = make(map[correlate.PathKey]bool)
		}
		problem[u.Sent.DstName][correlate.PathKey{VP: u.Sent.VP, Dst: u.Sent.Dst.Addr}] = true
	}
	out := make(map[string]float64, len(totalPerDst))
	for dst, total := range totalPerDst {
		if total == 0 {
			out[dst] = 0
			continue
		}
		out[dst] = float64(len(problem[dst])) / float64(total)
	}
	return out
}

// Table2Row is one protocol row of Table 2: the share of observers at each
// normalized hop position 1..10.
type Table2Row struct {
	Protocol decoy.Protocol
	// Share[i] is the percentage at normalized position i+1.
	Share [10]float64
	Count int
}

// Table2 computes the normalized observer-location distribution from
// traceroute results.
func Table2(results []traceroute.Result) []Table2Row {
	byProto := make(map[decoy.Protocol][]int)
	for _, r := range results {
		if r.NormalizedHop == 0 {
			continue // no leak on this path
		}
		byProto[r.Sweep.Proto] = append(byProto[r.Sweep.Proto], r.NormalizedHop)
	}
	var rows []Table2Row
	for _, proto := range decoy.Protocols {
		hops := byProto[proto]
		if len(hops) == 0 {
			continue
		}
		row := Table2Row{Protocol: proto, Count: len(hops)}
		for _, h := range hops {
			row.Share[h-1] += 100 / float64(len(hops))
		}
		rows = append(rows, row)
	}
	return rows
}

// ObserverASRow is one entry of Table 3.
type ObserverASRow struct {
	Protocol decoy.Protocol
	AS       string
	ASName   string
	Count    int
	Fraction float64
}

// Table3 ranks the ASes of ICMP-revealed observer addresses per protocol.
// It also returns the distinct observer address set per protocol.
func (a *Analyzer) Table3(results []traceroute.Result, topN int) ([]ObserverASRow, map[decoy.Protocol][]wire.Addr) {
	type pa struct {
		proto decoy.Protocol
		as    string
	}
	counts := make(map[pa]int)
	asNames := make(map[string]string)
	totals := make(map[decoy.Protocol]int)
	addrSet := make(map[decoy.Protocol]map[wire.Addr]bool)
	for _, r := range results {
		if r.ObserverAddr.IsZero() {
			continue
		}
		info, ok := a.Geo.Lookup(r.ObserverAddr)
		if !ok {
			continue
		}
		if addrSet[r.Sweep.Proto] == nil {
			addrSet[r.Sweep.Proto] = make(map[wire.Addr]bool)
		}
		if addrSet[r.Sweep.Proto][r.ObserverAddr] {
			continue // count each observer address once per protocol
		}
		addrSet[r.Sweep.Proto][r.ObserverAddr] = true
		counts[pa{r.Sweep.Proto, info.AS()}]++
		asNames[info.AS()] = info.ASName
		totals[r.Sweep.Proto]++
	}
	var rows []ObserverASRow
	for _, proto := range decoy.Protocols {
		var protoRows []ObserverASRow
		for k, c := range counts {
			if k.proto != proto {
				continue
			}
			protoRows = append(protoRows, ObserverASRow{
				Protocol: proto, AS: k.as, ASName: asNames[k.as], Count: c,
				Fraction: float64(c) / float64(totals[proto]),
			})
		}
		sort.Slice(protoRows, func(i, j int) bool {
			if protoRows[i].Count != protoRows[j].Count {
				return protoRows[i].Count > protoRows[j].Count
			}
			return protoRows[i].AS < protoRows[j].AS
		})
		if topN > 0 && len(protoRows) > topN {
			protoRows = protoRows[:topN]
		}
		rows = append(rows, protoRows...)
	}
	addrs := make(map[decoy.Protocol][]wire.Addr)
	for proto, set := range addrSet {
		for addr := range set {
			addrs[proto] = append(addrs[proto], addr)
		}
		sort.Slice(addrs[proto], func(i, j int) bool { return addrs[proto][i].Uint32() < addrs[proto][j].Uint32() })
	}
	return rows, addrs
}

// ObserverCountryShare reports the country distribution of distinct
// observer addresses across all protocols (the "448 of 572 in CN" datum).
func (a *Analyzer) ObserverCountryShare(addrsByProto map[decoy.Protocol][]wire.Addr) map[string]int {
	seen := make(map[wire.Addr]bool)
	out := make(map[string]int)
	for _, addrs := range addrsByProto {
		for _, addr := range addrs {
			if seen[addr] {
				continue
			}
			seen[addr] = true
			out[a.Geo.Country(addr)]++
		}
	}
	return out
}

// DelayCDF builds the Figure 4/7 cumulative distribution of decoy-to-
// unsolicited intervals, filtered by sent protocol and (optionally) a
// destination-name set.
func DelayCDF(events []correlate.Unsolicited, proto decoy.Protocol, dstNames map[string]bool) *stats.CDF {
	var cdf stats.CDF
	for _, u := range events {
		if u.Sent.Protocol != proto {
			continue
		}
		if dstNames != nil && !dstNames[u.Sent.DstName] {
			continue
		}
		cdf.AddDuration(u.Delay)
	}
	return &cdf
}

// Figure5Cell is one (destination, combination, delay bucket) count.
type Figure5Cell struct {
	Destination string
	Combination string
	DelayBucket string
	Count       int
}

// Figure5 breaks down unsolicited requests triggered by DNS decoys per
// destination resolver, by protocol combination and delay bucket. It also
// returns, per destination, the number of distinct decoys triggering each
// combination (the paper normalizes by decoys, not events).
func Figure5(events []correlate.Unsolicited) ([]Figure5Cell, map[string]map[string]int) {
	cellCounts := make(map[Figure5Cell]int)
	decoysPerCombo := make(map[string]map[string]map[string]bool) // dst -> combo -> label set
	for _, u := range events {
		if u.Sent.Protocol != decoy.DNS {
			continue
		}
		cell := Figure5Cell{
			Destination: u.Sent.DstName,
			Combination: u.Combination,
			DelayBucket: stats.DelayBucket(u.Delay),
		}
		cellCounts[cell]++
		if decoysPerCombo[cell.Destination] == nil {
			decoysPerCombo[cell.Destination] = make(map[string]map[string]bool)
		}
		if decoysPerCombo[cell.Destination][cell.Combination] == nil {
			decoysPerCombo[cell.Destination][cell.Combination] = make(map[string]bool)
		}
		decoysPerCombo[cell.Destination][cell.Combination][u.Sent.Label] = true
	}
	var cells []Figure5Cell
	for cell, c := range cellCounts {
		cell.Count = c
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Destination != b.Destination {
			return a.Destination < b.Destination
		}
		if a.Combination != b.Combination {
			return a.Combination < b.Combination
		}
		return a.DelayBucket < b.DelayBucket
	})
	perDst := make(map[string]map[string]int)
	for dst, combos := range decoysPerCombo {
		perDst[dst] = make(map[string]int)
		for combo, labels := range combos {
			perDst[dst][combo] = len(labels)
		}
	}
	return cells, perDst
}

// HTTPishDecoyShare computes, per destination, the fraction of DNS decoys
// whose data re-appeared in unsolicited HTTP or HTTPS requests (distinct
// decoys — a decoy triggering both counts once). totals gives emitted DNS
// decoys per destination.
func HTTPishDecoyShare(events []correlate.Unsolicited, totals map[string]int) map[string]float64 {
	labels := make(map[string]map[string]bool)
	for _, u := range events {
		if u.Sent.Protocol != decoy.DNS {
			continue
		}
		if u.Capture.Protocol != decoy.HTTP && u.Capture.Protocol != decoy.TLS {
			continue
		}
		if labels[u.Sent.DstName] == nil {
			labels[u.Sent.DstName] = make(map[string]bool)
		}
		labels[u.Sent.DstName][u.Sent.Label] = true
	}
	out := make(map[string]float64)
	for dst, total := range totals {
		if total == 0 {
			continue
		}
		out[dst] = float64(len(labels[dst])) / float64(total)
	}
	return out
}

// OriginReport is the Figure 6 output for one destination.
type OriginReport struct {
	Destination string
	TopASes     []stats.Entry
	// BlocklistedFraction is the share of distinct origin addresses on the
	// blocklist.
	BlocklistedFraction float64
	DistinctOrigins     int
}

// Figure6 ranks origin ASes of unsolicited requests triggered by DNS
// decoys, per destination, and computes blocklist overlap.
func (a *Analyzer) Figure6(events []correlate.Unsolicited, dstNames map[string]bool, topN int) []OriginReport {
	type agg struct {
		counter *stats.Counter
		origins map[wire.Addr]bool
	}
	byDst := make(map[string]*agg)
	for _, u := range events {
		if u.Sent.Protocol != decoy.DNS {
			continue
		}
		// Figure 6 analyzes origins of the unsolicited *DNS queries* the
		// decoys trigger; HTTP(S) origins are analyzed separately in the
		// probing-incentives paragraphs.
		if u.Capture.Protocol != decoy.DNS {
			continue
		}
		if dstNames != nil && !dstNames[u.Sent.DstName] {
			continue
		}
		g := byDst[u.Sent.DstName]
		if g == nil {
			g = &agg{counter: stats.NewCounter(), origins: make(map[wire.Addr]bool)}
			byDst[u.Sent.DstName] = g
		}
		g.counter.Add(a.Geo.ASOf(u.Capture.Source.Addr))
		g.origins[u.Capture.Source.Addr] = true
	}
	var out []OriginReport
	for dst, g := range byDst {
		listed := 0
		for addr := range g.origins {
			if a.Blocklist != nil && a.Blocklist.IsListed(addr) {
				listed++
			}
		}
		frac := 0.0
		if len(g.origins) > 0 {
			frac = float64(listed) / float64(len(g.origins))
		}
		out = append(out, OriginReport{
			Destination: dst, TopASes: g.counter.Top(topN),
			BlocklistedFraction: frac, DistinctOrigins: len(g.origins),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Destination < out[j].Destination })
	return out
}

// MultiUse is the §5.1 data-reuse statistic.
type MultiUse struct {
	DecoysWithLateEvents int
	FractionOver3        float64 // decoys with > 3 unsolicited requests after minDelay
	FractionOver10       float64
}

// MultiUseStats computes the share of decoys whose data keeps being used
// after minDelay (paper: 1h; 51% > 3 events, 2.4% > 10).
func MultiUseStats(events []correlate.Unsolicited, minDelay time.Duration) MultiUse {
	counts := correlate.PerDecoyCounts(events, minDelay)
	m := MultiUse{DecoysWithLateEvents: len(counts)}
	if len(counts) == 0 {
		return m
	}
	over3, over10 := 0, 0
	for _, c := range counts {
		if c > 3 {
			over3++
		}
		if c > 10 {
			over10++
		}
	}
	m.FractionOver3 = float64(over3) / float64(len(counts))
	m.FractionOver10 = float64(over10) / float64(len(counts))
	return m
}

// Incentives summarizes the probing-payload analysis of §5.1/§5.2.
type Incentives struct {
	HTTPRequests        int
	EnumerationFraction float64 // HTTP paths classified as enumeration
	ExploitMatches      int     // signature hits (paper: zero)
	// Blocklisted fractions of distinct origin addresses, per request
	// protocol.
	HTTPBlocklisted  float64
	HTTPSBlocklisted float64
}

// ProbingIncentives analyzes HTTP(S) unsolicited requests: path
// enumeration share, exploit signatures, and origin blocklist overlap.
// decoyProto filters by the decoy protocol that planted the data (use
// decoy.DNS for §5.1, decoy.HTTP/decoy.TLS for §5.2); pass -1 for all.
func (a *Analyzer) ProbingIncentives(events []correlate.Unsolicited, decoyProto decoy.Protocol) Incentives {
	var inc Incentives
	httpOrigins := make(map[wire.Addr]bool)
	httpsOrigins := make(map[wire.Addr]bool)
	enum := 0
	for _, u := range events {
		if decoyProto >= 0 && u.Sent.Protocol != decoyProto {
			continue
		}
		switch u.Capture.Protocol {
		case decoy.HTTP:
			inc.HTTPRequests++
			if intel.IsEnumerationPath(u.Capture.HTTPPath) {
				enum++
			}
			if a.Signatures != nil && a.Signatures.Matches(u.Capture.HTTPPath+" "+u.Capture.Payload) {
				inc.ExploitMatches++
			}
			httpOrigins[u.Capture.Source.Addr] = true
		case decoy.TLS:
			httpsOrigins[u.Capture.Source.Addr] = true
		}
	}
	if inc.HTTPRequests > 0 {
		inc.EnumerationFraction = float64(enum) / float64(inc.HTTPRequests)
	}
	inc.HTTPBlocklisted = a.blocklistedFraction(httpOrigins)
	inc.HTTPSBlocklisted = a.blocklistedFraction(httpsOrigins)
	return inc
}

func (a *Analyzer) blocklistedFraction(origins map[wire.Addr]bool) float64 {
	if len(origins) == 0 || a.Blocklist == nil {
		return 0
	}
	listed := 0
	for addr := range origins {
		if a.Blocklist.IsListed(addr) {
			listed++
		}
	}
	return float64(listed) / float64(len(origins))
}

// ObserverBehaviour is the §5.2 per-observer-AS summary.
type ObserverBehaviour struct {
	AS            string
	PathsObserved int
	// Combinations counts unsolicited-request combinations for decoys
	// observed by this AS.
	Combinations map[string]int
	// SameASOriginFraction is the share of unsolicited requests whose
	// origin address sits in the observer's own AS.
	SameASOriginFraction float64
}

// ObserverBehaviourByAS joins traceroute observer attributions with the
// unsolicited events their paths produced. resultsByPath maps a PathKey to
// the traceroute result for that path.
func (a *Analyzer) ObserverBehaviourByAS(events []correlate.Unsolicited, resultsByPath map[correlate.PathKey]traceroute.Result) []ObserverBehaviour {
	type agg struct {
		paths  map[correlate.PathKey]bool
		combos map[string]int
		total  int
		sameAS int
	}
	byAS := make(map[string]*agg)
	for _, u := range events {
		k := correlate.PathKey{VP: u.Sent.VP, Dst: u.Sent.Dst.Addr}
		r, ok := resultsByPath[k]
		if !ok || r.ObserverAddr.IsZero() {
			continue
		}
		obsAS := a.Geo.ASOf(r.ObserverAddr)
		g := byAS[obsAS]
		if g == nil {
			g = &agg{paths: make(map[correlate.PathKey]bool), combos: make(map[string]int)}
			byAS[obsAS] = g
		}
		g.paths[k] = true
		g.combos[u.Combination]++
		g.total++
		if a.Geo.ASOf(u.Capture.Source.Addr) == obsAS {
			g.sameAS++
		}
	}
	var out []ObserverBehaviour
	for as, g := range byAS {
		b := ObserverBehaviour{AS: as, PathsObserved: len(g.paths), Combinations: g.combos}
		if g.total > 0 {
			b.SameASOriginFraction = float64(g.sameAS) / float64(g.total)
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PathsObserved != out[j].PathsObserved {
			return out[i].PathsObserved > out[j].PathsObserved
		}
		return out[i].AS < out[j].AS
	})
	return out
}

// TopNCoverage reports the fraction of observed paths covered by the top n
// observer ASes (paper: top 5 cover >80%).
func TopNCoverage(behaviours []ObserverBehaviour, n int) float64 {
	total, top := 0, 0
	for i, b := range behaviours {
		total += b.PathsObserved
		if i < n {
			top += b.PathsObserved
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// RenderTable2 formats Table 2 in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	tb := stats.NewTable("Table 2: Normalized location of traffic observers",
		"Hops from VP", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10(dst)")
	for _, r := range rows {
		cells := make([]interface{}, 0, 11)
		cells = append(cells, fmt.Sprintf("%s (%% observers)", r.Protocol))
		for _, s := range r.Share {
			cells = append(cells, stats.FormatFloat(s))
		}
		tb.AddRow(cells...)
	}
	return tb.String()
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []ObserverASRow) string {
	tb := stats.NewTable("Table 3: Top networks of on-path traffic observers",
		"Decoy", "AS", "Name", "Observers", "Share")
	for _, r := range rows {
		tb.AddRow(r.Protocol.String(), r.AS, r.ASName, r.Count, stats.FormatPercent(r.Fraction))
	}
	return tb.String()
}

// SeriesPoint is one bucket of a longitudinal series.
type SeriesPoint struct {
	Start time.Time
	Count int
}

// TimeSeries buckets unsolicited-request arrivals into fixed windows over
// the campaign — the longitudinal view of shadowing activity ("switching
// between VPs continuously in a round-robin fashion without stop", §4).
// proto filters by decoy protocol; pass -1 for all.
func TimeSeries(events []correlate.Unsolicited, start time.Time, window time.Duration, proto decoy.Protocol) []SeriesPoint {
	if window <= 0 {
		window = 7 * 24 * time.Hour
	}
	buckets := make(map[int]int)
	maxIdx := 0
	for _, u := range events {
		if proto >= 0 && u.Sent.Protocol != proto {
			continue
		}
		idx := int(u.Capture.Time.Sub(start) / window)
		if idx < 0 {
			idx = 0
		}
		buckets[idx]++
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	out := make([]SeriesPoint, maxIdx+1)
	for i := range out {
		out[i] = SeriesPoint{Start: start.Add(time.Duration(i) * window), Count: buckets[i]}
	}
	return out
}
