package tlswire

import "encoding/binary"

// Encrypted Client Hello support (TLS ECH, draft-ietf-tls-esni; the paper's
// Discussion recommends "deploying updated versions (e.g., TLS 1.3 with
// ECH)" to stop SNI observation on the wire).
//
// The simulator models the privacy property rather than the cryptography:
// an ECH ClientHello carries no clear-text server_name extension; the real
// name travels in an encrypted_client_hello extension whose payload only
// the destination can read (here: an opaque XOR-masked blob — on-path
// observers running ParseClientHello/SNIFromBytes see nothing, while
// ECHServerName recovers it at the terminating server).

// extECH is the encrypted_client_hello extension codepoint (draft-18).
const extECH = 0xFE0D

// echMask is the stand-in for the HPKE encryption: enough to guarantee the
// clear-text name never appears in the wire bytes.
var echMask = []byte{0x5A, 0xC3, 0x96, 0x69}

func echSeal(name string) []byte {
	out := make([]byte, 2+len(name))
	binary.BigEndian.PutUint16(out[0:2], uint16(len(name)))
	for i := 0; i < len(name); i++ {
		out[2+i] = name[i] ^ echMask[i%len(echMask)]
	}
	return out
}

func echOpen(payload []byte) (string, bool) {
	if len(payload) < 2 {
		return "", false
	}
	n := int(binary.BigEndian.Uint16(payload[0:2]))
	if len(payload) < 2+n {
		return "", false
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = payload[2+i] ^ echMask[i%len(echMask)]
	}
	return string(out), true
}

// NewClientHelloECH builds a ClientHello whose server name travels only in
// the encrypted_client_hello extension: clear-text SNI is absent, so
// on-path observers extract nothing, while the destination recovers the
// name with ECHServerName.
func NewClientHelloECH(serverName string, random [32]byte) *ClientHello {
	ch := NewClientHello("", random)
	ch.ECHPayload = echSeal(serverName)
	return ch
}

// ECHServerName decrypts the inner server name — the terminating server's
// view. ok is false when the hello carries no (valid) ECH extension.
func (ch *ClientHello) ECHServerName() (string, bool) {
	if len(ch.ECHPayload) == 0 {
		return "", false
	}
	return echOpen(ch.ECHPayload)
}

// HasECH reports whether the hello carries an ECH extension.
func (ch *ClientHello) HasECH() bool { return len(ch.ECHPayload) > 0 }
