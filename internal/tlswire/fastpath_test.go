package tlswire

import "testing"

// refSNI is the full-parser reference the SNIFromBytes scanner must agree
// with: same acceptance set, same extracted name.
func refSNI(data []byte) (string, bool) {
	ch, err := ParseClientHello(data)
	if err != nil || ch.ServerName == "" {
		return "", false
	}
	return ch.ServerName, true
}

// TestSNIFastPathMatchesParse pins the skipping scanner to the full
// ClientHello parser across plain, ECH, and SNI-less hellos plus every
// truncation of each.
func TestSNIFastPathMatchesParse(t *testing.T) {
	var random [32]byte
	for i := range random {
		random[i] = byte(i)
	}
	var corpus [][]byte
	plain, err := NewClientHello("abc.www.experiment.example", random).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corpus = append(corpus, plain)
	ech, err := NewClientHelloECH("hidden.example", random).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corpus = append(corpus, ech)
	noSNI, err := (&ClientHello{Version: VersionTLS12, Random: random, CipherSuites: defaultCipherSuites}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corpus = append(corpus, noSNI)
	corpus = append(corpus, (&ServerHello{Version: VersionTLS12, CipherSuite: 0x1301}).Encode())
	corpus = append(corpus, []byte("GET / HTTP/1.1\r\n\r\n"), nil)

	for _, full := range corpus {
		for end := 0; end <= len(full); end++ {
			data := full[:end]
			wantName, wantOK := refSNI(data)
			name, err := SNIFromBytes(data)
			gotOK := err == nil && name != ""
			if gotOK != wantOK || (gotOK && name != wantName) {
				t.Fatalf("SNIFromBytes(%x) = (%q, %v), ParseClientHello path = (%q, %v)",
					data, name, gotOK, wantName, wantOK)
			}
		}
	}
}

func BenchmarkSNIFromBytes(b *testing.B) {
	var random [32]byte
	data, err := NewClientHello("abc123def456.www.experiment.example", random).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SNIFromBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}
