// Package tlswire builds and parses TLS ClientHello messages with the
// Server Name Indication extension (RFC 8446 §4.1.2, RFC 6066 §3), plus the
// minimal ServerHello the simulated web fleet answers with. The SNI field
// is the clear-text datum on-path observers sniff from TLS decoys, so the
// framing here is real: record layer, handshake header, extensions.
package tlswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record and handshake constants.
const (
	RecordHandshake  uint8 = 22
	HandshakeClient  uint8 = 1
	HandshakeServer  uint8 = 2
	VersionTLS12           = 0x0303
	VersionTLS13           = 0x0304
	extServerName          = 0
	extSupportedVers       = 43
	sniHostName      uint8 = 0
)

// Errors returned by the parser.
var (
	ErrTruncated    = errors.New("tlswire: truncated message")
	ErrNotHandshake = errors.New("tlswire: not a handshake record")
	ErrNoSNI        = errors.New("tlswire: no server_name extension")
	ErrMalformed    = errors.New("tlswire: malformed message")
)

// Standard-looking cipher suites offered by decoy ClientHellos, matching a
// modern client fingerprint.
var defaultCipherSuites = []uint16{
	0x1301, 0x1302, 0x1303, // TLS 1.3 AES/ChaCha suites
	0xC02B, 0xC02F, 0xCCA9, 0xCCA8, // ECDHE suites
}

// ClientHello is a parsed (or to-be-serialized) ClientHello.
type ClientHello struct {
	Version      uint16
	Random       [32]byte
	SessionID    []byte
	CipherSuites []uint16
	ServerName   string
	// ECHPayload is the opaque encrypted_client_hello extension body (see
	// ech.go); empty when the hello carries clear-text SNI (or none).
	ECHPayload []byte
}

// NewClientHello builds a TLS 1.3-capable ClientHello carrying serverName in
// SNI. random seeds the client random (deterministic for reproducibility).
func NewClientHello(serverName string, random [32]byte) *ClientHello {
	return &ClientHello{
		Version:      VersionTLS12, // legacy_version per RFC 8446
		Random:       random,
		CipherSuites: append([]uint16(nil), defaultCipherSuites...),
		ServerName:   serverName,
	}
}

// Encode serializes the ClientHello wrapped in a TLS record.
func (ch *ClientHello) Encode() ([]byte, error) {
	if len(ch.ServerName) > 0xFFFF-5 {
		return nil, fmt.Errorf("tlswire: server name too long: %d", len(ch.ServerName))
	}
	body := make([]byte, 0, 128+len(ch.ServerName))
	body = appendU16(body, ch.Version)
	body = append(body, ch.Random[:]...)
	body = append(body, byte(len(ch.SessionID)))
	body = append(body, ch.SessionID...)
	body = appendU16(body, uint16(2*len(ch.CipherSuites)))
	for _, cs := range ch.CipherSuites {
		body = appendU16(body, cs)
	}
	body = append(body, 1, 0) // compression methods: null only

	// Extensions.
	var ext []byte
	if ch.ServerName != "" {
		sni := make([]byte, 0, len(ch.ServerName)+5)
		sni = appendU16(sni, uint16(len(ch.ServerName)+3)) // server_name_list length
		sni = append(sni, sniHostName)
		sni = appendU16(sni, uint16(len(ch.ServerName)))
		sni = append(sni, ch.ServerName...)
		ext = appendU16(ext, extServerName)
		ext = appendU16(ext, uint16(len(sni)))
		ext = append(ext, sni...)
	}
	// supported_versions offering TLS 1.3
	sv := []byte{2, 0x03, 0x04}
	ext = appendU16(ext, extSupportedVers)
	ext = appendU16(ext, uint16(len(sv)))
	ext = append(ext, sv...)
	if len(ch.ECHPayload) > 0 {
		ext = appendU16(ext, extECH)
		ext = appendU16(ext, uint16(len(ch.ECHPayload)))
		ext = append(ext, ch.ECHPayload...)
	}

	body = appendU16(body, uint16(len(ext)))
	body = append(body, ext...)

	// Handshake header.
	hs := make([]byte, 4, 4+len(body))
	hs[0] = HandshakeClient
	putU24(hs[1:4], len(body))
	hs = append(hs, body...)

	// Record layer.
	rec := make([]byte, 5, 5+len(hs))
	rec[0] = RecordHandshake
	binary.BigEndian.PutUint16(rec[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(hs)))
	return append(rec, hs...), nil
}

// ParseClientHello parses a record-wrapped ClientHello. This is the routine
// on-path observers run to extract SNI from sniffed bytes.
func ParseClientHello(data []byte) (*ClientHello, error) {
	if len(data) < 5 {
		return nil, ErrTruncated
	}
	if data[0] != RecordHandshake {
		return nil, ErrNotHandshake
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if len(data) < 5+recLen {
		return nil, ErrTruncated
	}
	hs := data[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != HandshakeClient {
		return nil, ErrNotHandshake
	}
	bodyLen := u24(hs[1:4])
	if len(hs) < 4+bodyLen {
		return nil, ErrTruncated
	}
	body := hs[4 : 4+bodyLen]

	var ch ClientHello
	r := reader{buf: body}
	var ok bool
	if ch.Version, ok = r.u16(); !ok {
		return nil, ErrTruncated
	}
	rnd, ok := r.bytes(32)
	if !ok {
		return nil, ErrTruncated
	}
	copy(ch.Random[:], rnd)
	sidLen, ok := r.u8()
	if !ok {
		return nil, ErrTruncated
	}
	sid, ok := r.bytes(int(sidLen))
	if !ok {
		return nil, ErrTruncated
	}
	ch.SessionID = append([]byte(nil), sid...)
	csLen, ok := r.u16()
	if !ok || csLen%2 != 0 {
		return nil, ErrMalformed
	}
	cs, ok := r.bytes(int(csLen))
	if !ok {
		return nil, ErrTruncated
	}
	for i := 0; i+1 < len(cs); i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(cs[i:i+2]))
	}
	compLen, ok := r.u8()
	if !ok {
		return nil, ErrTruncated
	}
	if _, ok = r.bytes(int(compLen)); !ok {
		return nil, ErrTruncated
	}
	if r.len() == 0 {
		return &ch, nil // no extensions
	}
	extLen, ok := r.u16()
	if !ok {
		return nil, ErrTruncated
	}
	exts, ok := r.bytes(int(extLen))
	if !ok {
		return nil, ErrTruncated
	}
	er := reader{buf: exts}
	for er.len() > 0 {
		typ, ok1 := er.u16()
		l, ok2 := er.u16()
		if !ok1 || !ok2 {
			return nil, ErrMalformed
		}
		val, ok := er.bytes(int(l))
		if !ok {
			return nil, ErrTruncated
		}
		switch typ {
		case extServerName:
			name, err := parseSNI(val)
			if err != nil {
				return nil, err
			}
			ch.ServerName = name
		case extECH:
			ch.ECHPayload = append([]byte(nil), val...)
		}
	}
	return &ch, nil
}

func parseSNI(val []byte) (string, error) {
	r := reader{buf: val}
	listLen, ok := r.u16()
	if !ok {
		return "", ErrTruncated
	}
	list, ok := r.bytes(int(listLen))
	if !ok {
		return "", ErrTruncated
	}
	lr := reader{buf: list}
	for lr.len() > 0 {
		typ, ok1 := lr.u8()
		nameLen, ok2 := lr.u16()
		if !ok1 || !ok2 {
			return "", ErrMalformed
		}
		name, ok := lr.bytes(int(nameLen))
		if !ok {
			return "", ErrTruncated
		}
		if typ == sniHostName {
			return string(name), nil
		}
	}
	return "", ErrNoSNI
}

// SNIFromBytes extracts just the server name from a serialized ClientHello,
// the single-field fast path used by observer taps: it walks the same
// framing ParseClientHello validates but skips past the fields it does not
// need, so the only allocation is the returned name.
func SNIFromBytes(data []byte) (string, error) {
	if len(data) < 5 {
		return "", ErrTruncated
	}
	if data[0] != RecordHandshake {
		return "", ErrNotHandshake
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if len(data) < 5+recLen {
		return "", ErrTruncated
	}
	hs := data[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != HandshakeClient {
		return "", ErrNotHandshake
	}
	bodyLen := u24(hs[1:4])
	if len(hs) < 4+bodyLen {
		return "", ErrTruncated
	}
	r := reader{buf: hs[4 : 4+bodyLen]}
	if _, ok := r.u16(); !ok { // legacy_version
		return "", ErrTruncated
	}
	if _, ok := r.bytes(32); !ok { // random
		return "", ErrTruncated
	}
	sidLen, ok := r.u8()
	if !ok {
		return "", ErrTruncated
	}
	if _, ok := r.bytes(int(sidLen)); !ok {
		return "", ErrTruncated
	}
	csLen, ok := r.u16()
	if !ok || csLen%2 != 0 {
		return "", ErrMalformed
	}
	if _, ok := r.bytes(int(csLen)); !ok {
		return "", ErrTruncated
	}
	compLen, ok := r.u8()
	if !ok {
		return "", ErrTruncated
	}
	if _, ok = r.bytes(int(compLen)); !ok {
		return "", ErrTruncated
	}
	if r.len() == 0 {
		return "", ErrNoSNI // no extensions
	}
	extLen, ok := r.u16()
	if !ok {
		return "", ErrTruncated
	}
	exts, ok := r.bytes(int(extLen))
	if !ok {
		return "", ErrTruncated
	}
	er := reader{buf: exts}
	name := ""
	for er.len() > 0 {
		typ, ok1 := er.u16()
		l, ok2 := er.u16()
		if !ok1 || !ok2 {
			return "", ErrMalformed
		}
		val, ok := er.bytes(int(l))
		if !ok {
			return "", ErrTruncated
		}
		if typ == extServerName {
			n, err := parseSNI(val)
			if err != nil {
				return "", err
			}
			name = n
		}
	}
	if name == "" {
		return "", ErrNoSNI
	}
	return name, nil
}

// ServerHello is the minimal reply the simulated web fleet sends,
// sufficient to complete the decoy exchange authentically.
type ServerHello struct {
	Version     uint16
	Random      [32]byte
	CipherSuite uint16
}

// Encode serializes the ServerHello wrapped in a TLS record.
func (sh *ServerHello) Encode() []byte {
	body := make([]byte, 0, 48)
	body = appendU16(body, sh.Version)
	body = append(body, sh.Random[:]...)
	body = append(body, 0) // empty session id
	body = appendU16(body, sh.CipherSuite)
	body = append(body, 0)    // null compression
	body = appendU16(body, 0) // no extensions

	hs := make([]byte, 4, 4+len(body))
	hs[0] = HandshakeServer
	putU24(hs[1:4], len(body))
	hs = append(hs, body...)

	rec := make([]byte, 5, 5+len(hs))
	rec[0] = RecordHandshake
	binary.BigEndian.PutUint16(rec[1:3], VersionTLS12)
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(hs)))
	return append(rec, hs...)
}

// ParseServerHello parses a record-wrapped ServerHello.
func ParseServerHello(data []byte) (*ServerHello, error) {
	if len(data) < 5 || data[0] != RecordHandshake {
		return nil, ErrNotHandshake
	}
	recLen := int(binary.BigEndian.Uint16(data[3:5]))
	if len(data) < 5+recLen {
		return nil, ErrTruncated
	}
	hs := data[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != HandshakeServer {
		return nil, ErrNotHandshake
	}
	body := hs[4:]
	r := reader{buf: body}
	var sh ServerHello
	var ok bool
	if sh.Version, ok = r.u16(); !ok {
		return nil, ErrTruncated
	}
	rnd, ok := r.bytes(32)
	if !ok {
		return nil, ErrTruncated
	}
	copy(sh.Random[:], rnd)
	sidLen, ok := r.u8()
	if !ok {
		return nil, ErrTruncated
	}
	if _, ok = r.bytes(int(sidLen)); !ok {
		return nil, ErrTruncated
	}
	if sh.CipherSuite, ok = r.u16(); !ok {
		return nil, ErrTruncated
	}
	return &sh, nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) len() int { return len(r.buf) - r.off }

func (r *reader) u8() (uint8, bool) {
	if r.len() < 1 {
		return 0, false
	}
	v := r.buf[r.off]
	r.off++
	return v, true
}

func (r *reader) u16() (uint16, bool) {
	if r.len() < 2 {
		return 0, false
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) bytes(n int) ([]byte, bool) {
	if n < 0 || r.len() < n {
		return nil, false
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, true
}

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func putU24(b []byte, v int) {
	b[0], b[1], b[2] = byte(v>>16), byte(v>>8), byte(v)
}

func u24(b []byte) int {
	return int(b[0])<<16 | int(b[1])<<8 | int(b[2])
}
