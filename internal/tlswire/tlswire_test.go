package tlswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func testRandom() [32]byte {
	var r [32]byte
	for i := range r {
		r[i] = byte(i * 7)
	}
	return r
}

func TestClientHelloRoundTrip(t *testing.T) {
	ch := NewClientHello("abc123.www.experiment.domain", testRandom())
	data, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseClientHello(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerName != "abc123.www.experiment.domain" {
		t.Errorf("ServerName = %q", got.ServerName)
	}
	if got.Version != VersionTLS12 {
		t.Errorf("Version = %#x", got.Version)
	}
	if got.Random != testRandom() {
		t.Error("Random mismatch")
	}
	if len(got.CipherSuites) != len(defaultCipherSuites) {
		t.Errorf("CipherSuites = %v", got.CipherSuites)
	}
}

func TestSNIFromBytes(t *testing.T) {
	ch := NewClientHello("sni.experiment.domain", testRandom())
	data, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	name, err := SNIFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "sni.experiment.domain" {
		t.Errorf("SNI = %q", name)
	}
}

func TestNoSNI(t *testing.T) {
	ch := NewClientHello("", testRandom())
	data, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SNIFromBytes(data); err != ErrNoSNI {
		t.Errorf("want ErrNoSNI, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseClientHello(nil); err != ErrTruncated {
		t.Errorf("nil: %v", err)
	}
	if _, err := ParseClientHello([]byte{23, 3, 3, 0, 0}); err != ErrNotHandshake {
		t.Errorf("appdata record: %v", err)
	}
	ch := NewClientHello("x.example", testRandom())
	data, _ := ch.Encode()
	if _, err := ParseClientHello(data[:len(data)-5]); err == nil {
		t.Error("truncated hello should fail")
	}
	// ServerHello bytes are not a ClientHello.
	sh := &ServerHello{Version: VersionTLS12, CipherSuite: 0x1301}
	if _, err := ParseClientHello(sh.Encode()); err != ErrNotHandshake {
		t.Errorf("serverhello as clienthello: %v", err)
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{Version: VersionTLS12, Random: testRandom(), CipherSuite: 0x1301}
	got, err := ParseServerHello(sh.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.CipherSuite != 0x1301 || got.Version != VersionTLS12 || got.Random != testRandom() {
		t.Errorf("ServerHello mismatch: %+v", got)
	}
}

func TestSessionIDPreserved(t *testing.T) {
	ch := NewClientHello("a.example", testRandom())
	ch.SessionID = []byte{1, 2, 3, 4}
	data, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseClientHello(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SessionID) != 4 || got.SessionID[3] != 4 {
		t.Errorf("SessionID = %v", got.SessionID)
	}
}

func TestSNIRoundTripProperty(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyz0123456789-."
	f := func(seed uint64, n uint8) bool {
		l := int(n%60) + 1
		var sb strings.Builder
		s := seed
		for i := 0; i < l; i++ {
			c := letters[int(s%uint64(len(letters)-2))] // avoid '.' runs for simplicity
			sb.WriteByte(c)
			s = s*6364136223846793005 + 1442695040888963407
		}
		name := sb.String()
		ch := NewClientHello(name, testRandom())
		data, err := ch.Encode()
		if err != nil {
			return false
		}
		got, err := SNIFromBytes(data)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeClientHello(b *testing.B) {
	r := testRandom()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch := NewClientHello("id.www.experiment.domain", r)
		if _, err := ch.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSNIExtraction(b *testing.B) {
	ch := NewClientHello("id.www.experiment.domain", testRandom())
	data, _ := ch.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SNIFromBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestECHHidesSNIFromWire(t *testing.T) {
	ch := NewClientHelloECH("secret.www.experiment.domain", testRandom())
	data, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The wire bytes must not contain the clear-text name anywhere.
	if strings.Contains(string(data), "secret.www.experiment.domain") {
		t.Fatal("ECH hello leaks the name in clear text")
	}
	// An on-path observer extracting SNI sees nothing.
	if _, err := SNIFromBytes(data); err != ErrNoSNI {
		t.Errorf("SNI extraction = %v, want ErrNoSNI", err)
	}
	// The destination recovers it.
	parsed, err := ParseClientHello(data)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.HasECH() {
		t.Fatal("ECH extension lost on the wire")
	}
	name, ok := parsed.ECHServerName()
	if !ok || name != "secret.www.experiment.domain" {
		t.Errorf("ECHServerName = %q, %v", name, ok)
	}
}

func TestECHRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		l := int(n%50) + 1
		letters := "abcdefghijklmnopqrstuvwxyz0123456789-."
		var sb strings.Builder
		s := seed
		for i := 0; i < l; i++ {
			sb.WriteByte(letters[int(s%uint64(len(letters)))])
			s = s*6364136223846793005 + 1442695040888963407
		}
		name := sb.String()
		ch := NewClientHelloECH(name, testRandom())
		data, err := ch.Encode()
		if err != nil {
			return false
		}
		parsed, err := ParseClientHello(data)
		if err != nil {
			return false
		}
		got, ok := parsed.ECHServerName()
		return ok && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlainHelloHasNoECH(t *testing.T) {
	ch := NewClientHello("plain.example", testRandom())
	data, _ := ch.Encode()
	parsed, err := ParseClientHello(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.HasECH() {
		t.Error("plain hello should not carry ECH")
	}
	if _, ok := parsed.ECHServerName(); ok {
		t.Error("ECHServerName on plain hello")
	}
}
